// Paper Query 2, scaled: a 3-sigma filter over normally distributed
// measurements — a structural query whose per-cell result is "a list of
// zero or more values" (section 2.4.2).
//
// Demonstrates list-valued outputs, the ~0.135% selectivity the paper
// relies on, and SIDR early results for filter queries (figure 11's
// workload).
#include <cstdio>

#include "sidr/sidr.hpp"

int main() {
  using namespace sidr;

  nd::Coord inputShape{144, 40, 40, 10};
  sh::StructuralQuery query;
  query.variable = "measurements";
  query.op = sh::OperatorKind::kFilter;
  query.filterThreshold = 3.0;  // mean 0, sigma 1 -> keep > 3 sigma
  query.extractionShape = nd::Coord{2, 20, 20, 5};
  std::printf("query: %s over %s\n", sh::describe(query).c_str(),
              inputShape.toString().c_str());

  sh::ValueFn normal = sh::normalField(0.0, 1.0);
  core::QueryPlanner planner(query, inputShape);
  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 8;
  opts.desiredSplitCount = 24;
  core::QueryPlan plan = planner.plan(normal, opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  std::uint64_t cells = 0;
  std::uint64_t outliers = 0;
  std::uint64_t emptyCells = 0;
  double maxSeen = 0;
  for (const mr::ReduceOutput& out : result.outputs) {
    for (const mr::KeyValue& kv : out.records) {
      ++cells;
      const auto& xs = kv.value.asList();
      if (xs.empty()) ++emptyCells;
      outliers += xs.size();
      for (double x : xs) maxSeen = std::max(maxSeen, x);
    }
  }
  double totalValues = static_cast<double>(inputShape.volume());
  std::printf(
      "cells=%llu (empty: %llu)  outliers=%llu of %.0f values (%.3f%%; "
      "theory for >3 sigma: 0.135%%)  max=%.2f sigma\n",
      static_cast<unsigned long long>(cells),
      static_cast<unsigned long long>(emptyCells),
      static_cast<unsigned long long>(outliers), totalValues,
      100.0 * static_cast<double>(outliers) / totalValues, maxSeen);
  std::printf("first keyblock of outliers available at %.1f ms (%.0f%% of "
              "the %.1f ms run)\n",
              result.firstResultSeconds * 1e3,
              100.0 * result.firstResultSeconds / result.totalSeconds,
              result.totalSeconds * 1e3);
  if (result.annotationViolations != 0) {
    std::printf("count-annotation validation FAILED\n");
    return 1;
  }
  // Selectivity sanity: within 3x of the theoretical 0.135%.
  double sel = static_cast<double>(outliers) / totalValues;
  if (sel < 0.00045 || sel > 0.00405) {
    std::printf("selectivity outside expected band\n");
    return 1;
  }
  std::printf("ok\n");
  return 0;
}
