// Keyblock prioritization (paper section 3.4): computational steering
// and burst-buffer scenarios want specific portions of the OUTPUT space
// first. Because SIDR schedules Reduce tasks (maps become eligible as a
// side effect), prioritizing a keyblock pulls exactly its dependency
// cone forward.
//
// Scenario: a scientist watching a hurricane season cares about the
// LAST weeks of the year first. We prioritize the keyblocks covering
// the end of the time range and show they commit first, long before the
// job finishes.
#include <algorithm>
#include <cstdio>

#include "sidr/sidr.hpp"

int main() {
  using namespace sidr;

  nd::Coord inputShape{364, 100, 40};
  sh::StructuralQuery query;
  query.variable = "temperature";
  query.op = sh::OperatorKind::kMax;  // weekly maxima: storm indicator
  query.extractionShape = nd::Coord{7, 5, 1};
  std::printf("query: %s over %s\n", sh::describe(query).c_str(),
              inputShape.toString().c_str());

  core::QueryPlanner planner(query, inputShape);
  constexpr std::uint32_t kReducers = 8;

  auto run = [&](std::vector<std::uint32_t> priority, const char* label) {
    core::PlanOptions opts;
    opts.system = core::SystemMode::kSidr;
    opts.numReducers = kReducers;
    opts.desiredSplitCount = 26;
    opts.reducePriority = std::move(priority);
    opts.reduceSlots = 2;  // scarce slots: priority order is visible
    opts.mapSlots = 2;
    opts.numThreads = 2;
    core::QueryPlan plan = planner.plan(sh::temperatureField(), opts);
    mr::JobResult res = mr::Engine(std::move(plan.spec)).run();
    std::vector<std::uint32_t> commits;
    for (const auto& ev : res.events) {
      if (ev.kind == mr::TaskEvent::Kind::kReduceEnd) {
        commits.push_back(ev.taskId);
      }
    }
    std::printf("%-28s commit order:", label);
    for (std::uint32_t kb : commits) std::printf(" %u", kb);
    std::printf("\n");
    return commits;
  };

  // Default: keyblock id order (time-ascending: week 0 first).
  run({}, "default (id order)");

  // Steered: the keyblocks owning the last weeks first. Keyblocks are
  // contiguous in K', so the end of the year is the highest ids.
  std::vector<std::uint32_t> steered(kReducers);
  for (std::uint32_t i = 0; i < kReducers; ++i) {
    steered[i] = kReducers - 1 - i;
  }
  std::vector<std::uint32_t> commits =
      run(steered, "steered (last weeks first)");

  // The two highest-priority keyblocks must be the first two commits.
  if (commits.size() < 2 || commits[0] != kReducers - 1 ||
      commits[1] != kReducers - 2) {
    std::printf("steering did not take effect\n");
    return 1;
  }
  std::printf("steering honored: the hurricane-season keyblocks were "
              "computed and committed first\n");
  return 0;
}
