// Paper Query 1, scaled to run in-process: a median (holistic operator)
// over a 4-D windspeed dataset, comparing SciHadoop's global barrier
// with SIDR's dependency barriers on the real execution engine.
//
// The full-size experiment ({7200,360,720,50}, 348 GB) is reproduced by
// the cluster simulator (bench_fig9/10); this example runs the same
// query shape at 1/1000 scale so every byte actually flows through
// map, shuffle, merge and reduce, and verifies the output against a
// serial oracle.
#include <algorithm>
#include <cstdio>

#include "sidr/sidr.hpp"

int main() {
  using namespace sidr;

  // Same aspect ratios as the paper's Query 1.
  nd::Coord inputShape{144, 36, 36, 10};
  sh::StructuralQuery query;
  query.variable = "windspeed";
  query.op = sh::OperatorKind::kMedian;
  query.extractionShape = nd::Coord{2, 18, 18, 5};
  std::printf("query: %s over %s\n", sh::describe(query).c_str(),
              inputShape.toString().c_str());

  sh::ValueFn wind = sh::windspeedField();
  core::QueryPlanner planner(query, inputShape);

  auto runOne = [&](core::SystemMode system) {
    core::PlanOptions opts;
    opts.system = system;
    opts.numReducers = 6;
    opts.desiredSplitCount = 24;
    opts.reduceSlots = 6;
    opts.numThreads = 4;
    core::QueryPlan plan = planner.plan(wind, opts);
    mr::JobResult res = mr::Engine(std::move(plan.spec)).run();

    double lastMapEnd = 0;
    double firstReduceStart = 1e18;
    for (const auto& ev : res.events) {
      if (ev.kind == mr::TaskEvent::Kind::kMapEnd) {
        lastMapEnd = std::max(lastMapEnd, ev.seconds);
      } else if (ev.kind == mr::TaskEvent::Kind::kReduceStart) {
        firstReduceStart = std::min(firstReduceStart, ev.seconds);
      }
    }
    std::printf(
        "%-10s total=%6.1f ms  firstResult=%6.1f ms  first reduce started "
        "%s the last map  connections=%llu\n",
        core::systemModeName(system).c_str(), res.totalSeconds * 1e3,
        res.firstResultSeconds * 1e3,
        firstReduceStart < lastMapEnd ? "BEFORE" : "after",
        static_cast<unsigned long long>(res.shuffleConnections));
    return res;
  };

  mr::JobResult scihadoop = runOne(core::SystemMode::kSciHadoop);
  mr::JobResult sidr = runOne(core::SystemMode::kSidr);

  // Both systems must agree with the serial oracle exactly.
  sh::ExtractionMap ex(query, inputShape);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(query, ex, wind);
  for (const auto* res : {&scihadoop, &sidr}) {
    std::vector<mr::KeyValue> got = res->collectAll();
    if (got.size() != oracle.size()) {
      std::printf("SIZE MISMATCH vs oracle\n");
      return 1;
    }
    for (std::size_t i = 0; i < got.size(); ++i) {
      if (got[i].key != oracle[i].key ||
          got[i].value.asScalar() != oracle[i].value.asScalar()) {
        std::printf("VALUE MISMATCH at %zu\n", i);
        return 1;
      }
    }
  }
  std::printf("both systems match the serial oracle (%zu medians)\n",
              oracle.size());

  // A few medians for flavor.
  for (std::size_t i = 0; i < std::min<std::size_t>(3, oracle.size()); ++i) {
    std::printf("  median%s = %.2f m/s\n", oracle[i].key.toString().c_str(),
                oracle[i].value.asScalar());
  }
  return 0;
}
