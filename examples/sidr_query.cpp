// sidr_query: a command-line front end for structural queries — the
// closest thing to "running SciHadoop/SIDR from a shell".
//
//   sidr_query '<query>' [options]
//
//   query   SciHadoop's array query language, e.g.
//             'mean(temperature, eshape={7,5,1})'
//             'filter(noise, eshape={2,20,20,5}, threshold=3)'
//   options --shape {a,b,...}   logical input shape (default {56,25,20})
//           --data temp|wind|normal   synthetic dataset (default temp)
//           --file PATH.sndf    query a real SNDF dataset instead (the
//                               query's variable name selects the var;
//                               --shape/--data are then ignored)
//           --make-file PATH    generate the synthetic dataset into an
//                               SNDF file and exit (pairs with --file)
//           --system hadoop|scihadoop|sidr   (default sidr)
//           --reducers N        (default 4)
//           --splits N          (default 16)
//           --out DIR           write dense SNDF chunks per keyblock
//
// Example:
//   sidr_query 'median(wind, eshape={2,5,5,2})' --shape {48,10,10,4}
//              --data wind --reducers 6
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "scihadoop/query_parser.hpp"
#include "sidr/sidr.hpp"

namespace {

using namespace sidr;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s '<query>' [--shape {a,b,..}] [--data "
               "temp|wind|normal] [--system hadoop|scihadoop|sidr] "
               "[--reducers N] [--splits N] [--out DIR]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  try {
    sh::StructuralQuery query = sh::parseQuery(argv[1]);

    nd::Coord shape{56, 25, 20};
    std::string data = "temp";
    std::string filePath;
    std::string makePath;
    core::PlanOptions opts;
    opts.system = core::SystemMode::kSidr;
    opts.numReducers = 4;
    opts.desiredSplitCount = 16;
    std::string outDir;

    for (int i = 2; i < argc; ++i) {
      auto want = [&](const char* flag) {
        if (std::strcmp(argv[i], flag) != 0) return false;
        if (i + 1 >= argc) throw std::invalid_argument("missing value");
        return true;
      };
      if (want("--shape")) {
        shape = nd::Coord::parse(argv[++i]);
      } else if (want("--data")) {
        data = argv[++i];
      } else if (want("--file")) {
        filePath = argv[++i];
      } else if (want("--make-file")) {
        makePath = argv[++i];
      } else if (want("--system")) {
        std::string s = argv[++i];
        if (s == "hadoop") {
          opts.system = core::SystemMode::kHadoop;
        } else if (s == "scihadoop") {
          opts.system = core::SystemMode::kSciHadoop;
        } else if (s == "sidr") {
          opts.system = core::SystemMode::kSidr;
        } else {
          return usage(argv[0]);
        }
      } else if (want("--reducers")) {
        opts.numReducers = static_cast<std::uint32_t>(std::stoul(argv[++i]));
      } else if (want("--splits")) {
        opts.desiredSplitCount = std::stoul(argv[++i]);
      } else if (want("--out")) {
        outDir = argv[++i];
      } else {
        return usage(argv[0]);
      }
    }

    sh::ValueFn fn;
    if (data == "temp") {
      fn = sh::temperatureField();
    } else if (data == "wind") {
      fn = sh::windspeedField();
    } else if (data == "normal") {
      fn = sh::normalField(0.0, 1.0);
    } else {
      return usage(argv[0]);
    }

    if (!makePath.empty()) {
      // Materialize the synthetic field as a real SNDF file and exit.
      auto storage = std::make_shared<sci::FileStorage>(
          makePath, sci::FileStorage::Mode::kCreate);
      sci::Dataset ds = sci::Dataset::create(
          storage, sh::arrayMetadata(query.variable,
                                     sci::DataType::kFloat64, shape));
      sh::fillDataset(ds, 0, fn);
      storage->flush();
      std::printf("wrote %s: variable '%s' of shape %s\n",
                  makePath.c_str(), query.variable.c_str(),
                  shape.toString().c_str());
      return 0;
    }

    std::shared_ptr<sci::Dataset> dataset;
    if (!filePath.empty()) {
      dataset = std::make_shared<sci::Dataset>(
          sci::Dataset::open(std::make_shared<sci::FileStorage>(
              filePath, sci::FileStorage::Mode::kOpenReadOnly)));
      std::size_t varIdx = dataset->metadata().variableIndex(query.variable);
      shape = dataset->metadata().variableShape(varIdx);
      std::printf("file:   %s\n%s", filePath.c_str(),
                  dataset->metadata().toText().c_str());
    }

    std::printf("query:  %s\n", sh::toQueryString(query).c_str());
    std::string source =
        filePath.empty() ? "synthetic '" + data + "' data" : "from file";
    std::printf("input:  %s %s, %s, %u reducers\n",
                shape.toString().c_str(), source.c_str(),
                core::systemModeName(opts.system).c_str(), opts.numReducers);

    core::QueryPlanner planner(query, shape);
    core::QueryPlan plan =
        dataset ? planner.plan(dataset,
                               dataset->metadata().variableIndex(
                                   query.variable),
                               opts)
                : planner.plan(fn, opts);
    std::printf("plan:   %zu splits, K' = %s (%lld keys)\n",
                plan.spec.splits.size(),
                plan.extraction->instanceGridShape().toString().c_str(),
                static_cast<long long>(plan.extraction->instanceCount()));

    auto partitionPlus = plan.partitionPlus;
    auto extraction = plan.extraction;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

    std::size_t total = 0;
    for (const auto& out : result.outputs) total += out.records.size();
    std::printf(
        "run:    %.1f ms total, first keyblock at %.1f ms, %zu result "
        "keys, %llu shuffle connections\n",
        result.totalSeconds * 1e3, result.firstResultSeconds * 1e3, total,
        static_cast<unsigned long long>(result.shuffleConnections));
    if (result.annotationViolations != 0) {
      std::printf("ANNOTATION VALIDATION FAILED\n");
      return 1;
    }

    // Show the first few results.
    std::size_t shown = 0;
    for (const auto& out : result.outputs) {
      for (const auto& kv : out.records) {
        if (shown++ >= 5) break;
        if (kv.value.kind() == mr::ValueKind::kScalar) {
          std::printf("  %s = %.4f\n", kv.key.toString().c_str(),
                      kv.value.asScalar());
        } else {
          std::printf("  %s = list of %zu values\n",
                      kv.key.toString().c_str(), kv.value.asList().size());
        }
      }
      if (shown >= 5) break;
    }

    if (!outDir.empty() && partitionPlus != nullptr) {
      std::filesystem::create_directories(outDir);
      for (const auto& out : result.outputs) {
        if (out.records.empty() ||
            out.records[0].value.kind() != mr::ValueKind::kScalar) {
          continue;
        }
        auto regions = partitionPlus->keyblockRegions(out.keyblock);
        std::size_t consumed = 0;
        for (std::size_t i = 0; i < regions.size(); ++i) {
          std::vector<double> values;
          for (nd::Index k = 0; k < regions[i].volume(); ++k) {
            values.push_back(
                out.records[consumed + static_cast<std::size_t>(k)]
                    .value.asScalar());
          }
          consumed += values.size();
          std::string path = outDir + "/kb" + std::to_string(out.keyblock) +
                             "_" + std::to_string(i) + ".sndf";
          sci::writeDenseChunk(path, query.variable, sci::DataType::kFloat64,
                               extraction->instanceGridShape(), regions[i],
                               values);
        }
      }
      std::printf("output: dense chunks written to %s\n", outDir.c_str());
    }
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
