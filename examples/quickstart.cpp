// Quickstart: the paper's running example end to end.
//
// Dataset: one year of daily temperatures on a 1/10-degree grid over
// the eastern US — dimensions {365, 250, 200} (figures 1 and 2).
// Query:   weekly averages, down-sampling latitude from 1/10 to 1/2
//          degree -> extraction shape {7, 5, 1}; the intermediate
//          keyspace K' is {52, 50, 200} (section 3's example).
//
// The example runs the query through the SIDR engine, shows the early
// (pre-barrier) results SIDR produces, and writes each reduce task's
// keyblock as a dense, contiguous SNDF chunk.
#include <cstdio>
#include <filesystem>

#include "sidr/sidr.hpp"

int main() {
  using namespace sidr;

  // --- 1. Describe the dataset (figure 1 metadata) and the query. ---
  nd::Coord inputShape{365, 250, 200};
  sh::StructuralQuery query;
  query.variable = "temperature";
  query.op = sh::OperatorKind::kMean;
  query.extractionShape = nd::Coord{7, 5, 1};

  std::printf("dataset metadata (cf. paper figure 1):\n%s\n",
              sh::temperatureMetadata().toText().c_str());
  std::printf("query: %s\n", sh::describe(query).c_str());

  // --- 2. Plan: splits, partition+ keyblocks, dependencies I_l. ---
  core::QueryPlanner planner(query, inputShape);
  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 8;
  opts.desiredSplitCount = 24;
  core::QueryPlan plan = planner.plan(sh::temperatureField(), opts);

  std::printf("\nintermediate keyspace K' = %s (%lld keys)\n",
              plan.extraction->instanceGridShape().toString().c_str(),
              static_cast<long long>(plan.extraction->instanceCount()));
  std::printf("partition+ granule %s; realized skew %lld keys\n",
              plan.partitionPlus->granuleShape().toString().c_str(),
              static_cast<long long>(plan.partitionPlus->realizedSkew()));
  for (std::uint32_t kb = 0; kb < opts.numReducers; ++kb) {
    const auto& deps = plan.dependencies.keyblockToSplits[kb];
    std::printf("  keyblock %u: %lld keys, depends on %zu/%zu splits\n", kb,
                static_cast<long long>(plan.partitionPlus->keyblockSize(kb)),
                deps.size(), plan.spec.splits.size());
  }

  // --- 3. Execute with the multi-threaded engine. ---
  std::size_t numSplits = plan.spec.splits.size();
  auto partitionPlus = plan.partitionPlus;
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  std::printf("\nran %zu maps + %u reduces in %.0f ms; first keyblock "
              "committed at %.0f ms (%.0f%% of the run)\n",
              numSplits, opts.numReducers, result.totalSeconds * 1e3,
              result.firstResultSeconds * 1e3,
              100.0 * result.firstResultSeconds / result.totalSeconds);
  std::printf("shuffle connections: %llu (global barrier would use %zu)\n",
              static_cast<unsigned long long>(result.shuffleConnections),
              numSplits * opts.numReducers);
  if (result.annotationViolations != 0) {
    std::printf("count-annotation validation FAILED\n");
    return 1;
  }
  std::printf("count-annotation validation passed for every reduce task\n");

  // --- 4. Write each keyblock as a dense contiguous chunk (sec 4.4). ---
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "sidr_quickstart";
  fs::create_directories(dir);
  for (const mr::ReduceOutput& out : result.outputs) {
    if (out.records.empty()) continue;
    auto regions = partitionPlus->keyblockRegions(out.keyblock);
    std::size_t consumed = 0;
    for (std::size_t i = 0; i < regions.size(); ++i) {
      std::vector<double> values;
      values.reserve(static_cast<std::size_t>(regions[i].volume()));
      for (nd::Index k = 0; k < regions[i].volume(); ++k) {
        values.push_back(out.records[consumed + static_cast<std::size_t>(k)]
                             .value.asScalar());
      }
      consumed += values.size();
      std::string path = (dir / ("weekly_kb" + std::to_string(out.keyblock) +
                                 "_" + std::to_string(i) + ".sndf"))
                             .string();
      sci::writeDenseChunk(path, "weekly_mean", sci::DataType::kFloat64,
                           plan.extraction->instanceGridShape(), regions[i],
                           values);
    }
  }
  std::printf("wrote dense output chunks to %s\n", dir.string().c_str());

  // --- 5. Peek at a result: average of week 22, lat cell 6, lon 82 —
  // the cell containing the paper's example key {157, 34, 82}. ---
  for (const mr::ReduceOutput& out : result.outputs) {
    for (const mr::KeyValue& kv : out.records) {
      if (kv.key == nd::Coord{22, 6, 82}) {
        std::printf("weekly mean at K' {22, 6, 82} (paper's example key "
                    "{157,34,82} maps here): %.2f degrees\n",
                    kv.value.asScalar());
      }
    }
  }
  return 0;
}
