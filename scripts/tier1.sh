#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-
# sensitive engine tests again under ThreadSanitizer (the engine's
# locking discipline — lock-free reduce fetch over published segment
# handles, atomic attempt commits of spilled map output — is exactly
# what TSan checks). engine_test and randomized_test cover BOTH shuffle
# paths: the fault-plan / recovery suites (Engine.SpillRecoveryRaceHammer,
# Engine.FaultPlan*, RandomizedFaultPlan.*) run with spillDirectory set,
# so the spilled path's recovery races are sanitized too, not just the
# in-memory path.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target engine_test randomized_test \
  linear_fastpath_test sort_spill_parity_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/engine_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/randomized_test
# The fast-path parity suite under TSan exercises packed segments' lazy
# materialization on concurrently running reduce tasks.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/linear_fastpath_test
# The sort/spill parity suite under TSan hammers the spill-writer pool:
# SpillPoolHammer re-runs failed maps (pool workers re-encoding attempt
# files) while other reduces' lock-free fetches read committed segments,
# and SpillWriterParity crosses pool sizes {1,2,8} with fault injection.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/sort_spill_parity_test

# Keep the perf tree building and the map-side benchmark runnable: a
# --quick pass catches bit-rot in the frozen legacy arm and the JSON
# emission without waiting for stable timings.
cmake --preset bench
cmake --build --preset bench -j"$(nproc)" --target bench_map_pipeline
./build-bench/bench/bench_map_pipeline --quick
