#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-
# sensitive engine tests again under ThreadSanitizer (the engine's
# locking discipline — lock-free reduce fetch over published segment
# handles, atomic attempt commits of spilled map output — is exactly
# what TSan checks). engine_test and randomized_test cover BOTH shuffle
# paths: the fault-plan / recovery suites (Engine.SpillRecoveryRaceHammer,
# Engine.FaultPlan*, RandomizedFaultPlan.*) run with spillDirectory set,
# so the spilled path's recovery races are sanitized too, not just the
# in-memory path. The trace suites run under TSan as well: the lock-free
# span recorder publishes chunks concurrently from workers and the
# spill-writer pool, and the invariant checks read them back after join.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j"$(nproc)"
# Fast loop first (*Hammer* stress tests carry the `slow` label), then
# the slow ones — same coverage, but a broken fast test fails sooner.
ctest --test-dir build --output-on-failure -j"$(nproc)" -LE slow
ctest --test-dir build --output-on-failure -j"$(nproc)" -L slow

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target engine_test randomized_test \
  linear_fastpath_test sort_spill_parity_test trace_invariants_test \
  trace_differential_test out_of_core_test engine_service_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/engine_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/randomized_test
# The fast-path parity suite under TSan exercises packed segments' lazy
# materialization on concurrently running reduce tasks.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/linear_fastpath_test
# The sort/spill parity suite under TSan hammers the spill-writer pool:
# SpillPoolHammer re-runs failed maps (pool workers re-encoding attempt
# files) while other reduces' lock-free fetches read committed segments,
# and SpillWriterParity crosses pool sizes {1,2,8} with fault injection.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/sort_spill_parity_test
# Trace recording ON across randomized geometries/faults (in-memory AND
# spill): sanitizes the per-thread chunk publication and the registry.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/trace_invariants_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/trace_differential_test
# The out-of-core suite under TSan hammers the bounded-memory mode
# (DESIGN.md section 14): pressure eviction handing cold keyblocks to
# pool workers races recovery republication and lock-free reduce
# fetches that stream evicted inputs through bounded windows.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/out_of_core_test
# The multi-job service suite under TSan: N jobs share worker threads,
# one spill-writer pool and one spill directory, with cancellation and
# finalize racing task completion — the service->job lock order and the
# per-task recorder/sort-sink installs are exactly what TSan checks.
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/engine_service_test

# ASan pass over the same suites: the windowed SegmentStream decoder and
# the compressed varint codec move buffer boundaries around under
# pressure — exactly where an off-by-one would hide from TSan — and the
# service's job teardown (namespace removal, handle-outlives-service
# results) is where a use-after-free would.
cmake --preset asan
cmake --build --preset asan -j"$(nproc)" --target out_of_core_test \
  engine_service_test
./build-asan/tests/out_of_core_test
./build-asan/tests/engine_service_test

# Keep the perf tree building and the map-side benchmark runnable: a
# --quick pass catches bit-rot in the frozen legacy arm and the JSON
# emission without waiting for stable timings. The quick pass also
# emits BENCH_trace_phases.json (per-phase totals from a traced run)
# and checks the disabled-recorder arm stays within its overhead gate.
cmake --preset bench
cmake --build --preset bench -j"$(nproc)" --target bench_map_pipeline \
  bench_engine_service
./build-bench/bench/bench_map_pipeline --quick
# The multi-job fleet driver is a correctness gate, not just a timing:
# 72 queued jobs against one EngineService, every success bit-identical
# to its solo baseline, failed/cancelled namespaces left empty, partial
# results observed mid-run (exits non-zero on any violation).
./build-bench/bench/bench_engine_service --quick
