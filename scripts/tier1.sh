#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-
# sensitive engine tests again under ThreadSanitizer (the engine's
# locking discipline — lock-free reduce fetch over published segment
# handles — is exactly what TSan checks).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"

cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target engine_test randomized_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/engine_test
TSAN_OPTIONS=halt_on_error=1 ./build-tsan/tests/randomized_test
