#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, then the concurrency-
# sensitive engine tests again under ThreadSanitizer (the engine's
# locking discipline — lock-free reduce fetch over published segment
# handles, atomic attempt commits of spilled map output — is exactly
# what TSan checks). engine_test and randomized_test cover BOTH shuffle
# paths: the fault-plan / recovery suites (Engine.SpillRecoveryRaceHammer,
# Engine.FaultPlan*, RandomizedFaultPlan.*) run with spillDirectory set,
# so the spilled path's recovery races are sanitized too, not just the
# in-memory path. The trace suites run under TSan as well: the lock-free
# span recorder publishes chunks concurrently from workers and the
# spill-writer pool, and the invariant checks read them back after join.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake --preset default
cmake --build --preset default -j"$(nproc)"
# Fast loop first (*Hammer* stress tests carry the `slow` label), then
# the slow ones — same coverage, but a broken fast test fails sooner.
ctest --test-dir build --output-on-failure -j"$(nproc)" -LE slow
ctest --test-dir build --output-on-failure -j"$(nproc)" -L slow

# The TSan sweep, one suite per line. Why each is here:
#   engine_test / randomized_test    both shuffle paths + recovery races
#   linear_fastpath_test             packed segments' lazy materialization
#                                    on concurrently running reduces
#   sort_spill_parity_test           spill-writer pool re-encoding failed
#                                    attempts while lock-free fetches read
#                                    committed segments
#   trace_invariants_test            per-thread span-chunk publication
#   trace_differential_test          engine-vs-sim traces, recorder on
#   out_of_core_test                 pressure eviction vs recovery vs
#                                    streaming fetch (DESIGN.md section 14)
#   engine_service_test              N jobs sharing workers, one pool, one
#                                    spill dir; cancel/finalize races
#   segment_cache_test               warm claims racing donation, eviction
#                                    under pressure, cancel-mid-donation
#                                    (DESIGN.md section 16)
#   shuffle_transport_test           socket server threads serializing
#                                    segments concurrently with recovery
#                                    republication and mid-fetch cancels
#                                    (DESIGN.md section 17)
#   skew_join_test                   two-input maps feeding one shuffle,
#                                    refined-deal routing under every
#                                    regime/transport, join reduces over
#                                    dual-side segments (DESIGN.md §18)
TSAN_SUITES=(
  engine_test
  randomized_test
  linear_fastpath_test
  sort_spill_parity_test
  trace_invariants_test
  trace_differential_test
  out_of_core_test
  engine_service_test
  segment_cache_test
  shuffle_transport_test
  skew_join_test
)
cmake --preset tsan
cmake --build --preset tsan -j"$(nproc)" --target "${TSAN_SUITES[@]}"
for suite in "${TSAN_SUITES[@]}"; do
  TSAN_OPTIONS=halt_on_error=1 "./build-tsan/tests/${suite}"
done

# ASan pass over the memory-motion-heavy suites: the windowed
# SegmentStream decoder and the compressed varint codec move buffer
# boundaries around under pressure — exactly where an off-by-one would
# hide from TSan — the service's job teardown (namespace removal,
# handle-outlives-service results) is where a use-after-free would, and
# the segment cache hands shared_ptr segment handles across job
# lifetimes (donation after finalize, claims from later jobs). The
# transport suite's framed-decode fuzzing and chunked file serving are
# classic heap-overflow territory, so it rides in the ASan pass too.
# skew_join_test joins two value streams inside one reduce (side-tagged
# list payloads, sorted in place) across every spill regime — buffer
# reuse across sides is where a stale-pointer bug would live.
ASAN_SUITES=(
  out_of_core_test
  engine_service_test
  segment_cache_test
  shuffle_transport_test
  skew_join_test
)
cmake --preset asan
cmake --build --preset asan -j"$(nproc)" --target "${ASAN_SUITES[@]}"
for suite in "${ASAN_SUITES[@]}"; do
  "./build-asan/tests/${suite}"
done

# Keep the perf tree building and the map-side benchmark runnable: a
# --quick pass catches bit-rot in the frozen legacy arm and the JSON
# emission without waiting for stable timings. The quick pass also
# emits BENCH_trace_phases.json (per-phase totals from a traced run)
# and checks the disabled-recorder arm stays within its overhead gate.
cmake --preset bench
cmake --build --preset bench -j"$(nproc)" --target bench_map_pipeline \
  bench_engine_service bench_shuffle_transport bench_join_skew
./build-bench/bench/bench_map_pipeline --quick
# The multi-job fleet driver is a correctness gate, not just a timing:
# 72 queued jobs against one EngineService, every success bit-identical
# to its solo baseline, failed/cancelled namespaces left empty, partial
# results observed mid-run, and the warm-resubmission arm hitting the
# segment cache with zero map tasks (exits non-zero on any violation).
./build-bench/bench/bench_engine_service --quick
# Transport sweep: socket and file-served data planes must reproduce
# the in-process run bit-identically (exits non-zero on divergence).
./build-bench/bench/bench_shuffle_transport --quick
# Skew-adaptive join gate: refined plan bit-identical to uniform, both
# matching the nested-loop oracle, p99 keyblock load improved >= 1.5x
# (exits non-zero on any violation).
./build-bench/bench/bench_join_skew --quick
