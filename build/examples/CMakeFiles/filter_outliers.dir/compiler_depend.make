# Empty compiler generated dependencies file for filter_outliers.
# This may be replaced when dependencies are built.
