file(REMOVE_RECURSE
  "CMakeFiles/filter_outliers.dir/filter_outliers.cpp.o"
  "CMakeFiles/filter_outliers.dir/filter_outliers.cpp.o.d"
  "filter_outliers"
  "filter_outliers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
