# Empty compiler generated dependencies file for steering_priority.
# This may be replaced when dependencies are built.
