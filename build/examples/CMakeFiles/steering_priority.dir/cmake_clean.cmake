file(REMOVE_RECURSE
  "CMakeFiles/steering_priority.dir/steering_priority.cpp.o"
  "CMakeFiles/steering_priority.dir/steering_priority.cpp.o.d"
  "steering_priority"
  "steering_priority.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steering_priority.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
