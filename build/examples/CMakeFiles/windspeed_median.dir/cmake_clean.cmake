file(REMOVE_RECURSE
  "CMakeFiles/windspeed_median.dir/windspeed_median.cpp.o"
  "CMakeFiles/windspeed_median.dir/windspeed_median.cpp.o.d"
  "windspeed_median"
  "windspeed_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/windspeed_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
