# Empty dependencies file for windspeed_median.
# This may be replaced when dependencies are built.
