file(REMOVE_RECURSE
  "CMakeFiles/sidr_query.dir/sidr_query.cpp.o"
  "CMakeFiles/sidr_query.dir/sidr_query.cpp.o.d"
  "sidr_query"
  "sidr_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
