# Empty compiler generated dependencies file for sidr_query.
# This may be replaced when dependencies are built.
