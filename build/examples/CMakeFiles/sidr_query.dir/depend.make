# Empty dependencies file for sidr_query.
# This may be replaced when dependencies are built.
