file(REMOVE_RECURSE
  "libsidr_dfs.a"
)
