# Empty compiler generated dependencies file for sidr_dfs.
# This may be replaced when dependencies are built.
