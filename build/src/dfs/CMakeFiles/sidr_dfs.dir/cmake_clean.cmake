file(REMOVE_RECURSE
  "CMakeFiles/sidr_dfs.dir/namenode.cpp.o"
  "CMakeFiles/sidr_dfs.dir/namenode.cpp.o.d"
  "libsidr_dfs.a"
  "libsidr_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
