file(REMOVE_RECURSE
  "libsidr_ndarray.a"
)
