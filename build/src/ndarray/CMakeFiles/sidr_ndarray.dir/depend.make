# Empty dependencies file for sidr_ndarray.
# This may be replaced when dependencies are built.
