file(REMOVE_RECURSE
  "CMakeFiles/sidr_ndarray.dir/coord.cpp.o"
  "CMakeFiles/sidr_ndarray.dir/coord.cpp.o.d"
  "CMakeFiles/sidr_ndarray.dir/region.cpp.o"
  "CMakeFiles/sidr_ndarray.dir/region.cpp.o.d"
  "CMakeFiles/sidr_ndarray.dir/tiling.cpp.o"
  "CMakeFiles/sidr_ndarray.dir/tiling.cpp.o.d"
  "libsidr_ndarray.a"
  "libsidr_ndarray.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_ndarray.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
