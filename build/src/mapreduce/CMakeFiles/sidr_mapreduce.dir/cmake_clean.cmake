file(REMOVE_RECURSE
  "CMakeFiles/sidr_mapreduce.dir/engine.cpp.o"
  "CMakeFiles/sidr_mapreduce.dir/engine.cpp.o.d"
  "CMakeFiles/sidr_mapreduce.dir/segment.cpp.o"
  "CMakeFiles/sidr_mapreduce.dir/segment.cpp.o.d"
  "libsidr_mapreduce.a"
  "libsidr_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
