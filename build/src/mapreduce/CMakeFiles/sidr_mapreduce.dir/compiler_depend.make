# Empty compiler generated dependencies file for sidr_mapreduce.
# This may be replaced when dependencies are built.
