file(REMOVE_RECURSE
  "libsidr_mapreduce.a"
)
