file(REMOVE_RECURSE
  "CMakeFiles/sidr_sim.dir/sim_engine.cpp.o"
  "CMakeFiles/sidr_sim.dir/sim_engine.cpp.o.d"
  "CMakeFiles/sidr_sim.dir/trace.cpp.o"
  "CMakeFiles/sidr_sim.dir/trace.cpp.o.d"
  "CMakeFiles/sidr_sim.dir/workload.cpp.o"
  "CMakeFiles/sidr_sim.dir/workload.cpp.o.d"
  "libsidr_sim.a"
  "libsidr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
