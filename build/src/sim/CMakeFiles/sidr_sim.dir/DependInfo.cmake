
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/sim_engine.cpp" "src/sim/CMakeFiles/sidr_sim.dir/sim_engine.cpp.o" "gcc" "src/sim/CMakeFiles/sidr_sim.dir/sim_engine.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/sidr_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/sidr_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/workload.cpp" "src/sim/CMakeFiles/sidr_sim.dir/workload.cpp.o" "gcc" "src/sim/CMakeFiles/sidr_sim.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sidr/CMakeFiles/sidr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/sidr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/scihadoop/CMakeFiles/sidr_scihadoop.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sidr_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/scifile/CMakeFiles/sidr_scifile.dir/DependInfo.cmake"
  "/root/repo/build/src/ndarray/CMakeFiles/sidr_ndarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
