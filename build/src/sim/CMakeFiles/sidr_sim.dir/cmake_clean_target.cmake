file(REMOVE_RECURSE
  "libsidr_sim.a"
)
