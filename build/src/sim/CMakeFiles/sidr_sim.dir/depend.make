# Empty dependencies file for sidr_sim.
# This may be replaced when dependencies are built.
