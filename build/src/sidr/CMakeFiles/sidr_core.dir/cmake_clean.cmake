file(REMOVE_RECURSE
  "CMakeFiles/sidr_core.dir/dependency.cpp.o"
  "CMakeFiles/sidr_core.dir/dependency.cpp.o.d"
  "CMakeFiles/sidr_core.dir/partition_plus.cpp.o"
  "CMakeFiles/sidr_core.dir/partition_plus.cpp.o.d"
  "CMakeFiles/sidr_core.dir/planner.cpp.o"
  "CMakeFiles/sidr_core.dir/planner.cpp.o.d"
  "libsidr_core.a"
  "libsidr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
