# Empty dependencies file for sidr_core.
# This may be replaced when dependencies are built.
