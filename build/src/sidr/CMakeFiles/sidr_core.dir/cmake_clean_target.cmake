file(REMOVE_RECURSE
  "libsidr_core.a"
)
