
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scifile/cdl.cpp" "src/scifile/CMakeFiles/sidr_scifile.dir/cdl.cpp.o" "gcc" "src/scifile/CMakeFiles/sidr_scifile.dir/cdl.cpp.o.d"
  "/root/repo/src/scifile/dataset.cpp" "src/scifile/CMakeFiles/sidr_scifile.dir/dataset.cpp.o" "gcc" "src/scifile/CMakeFiles/sidr_scifile.dir/dataset.cpp.o.d"
  "/root/repo/src/scifile/metadata.cpp" "src/scifile/CMakeFiles/sidr_scifile.dir/metadata.cpp.o" "gcc" "src/scifile/CMakeFiles/sidr_scifile.dir/metadata.cpp.o.d"
  "/root/repo/src/scifile/output_writers.cpp" "src/scifile/CMakeFiles/sidr_scifile.dir/output_writers.cpp.o" "gcc" "src/scifile/CMakeFiles/sidr_scifile.dir/output_writers.cpp.o.d"
  "/root/repo/src/scifile/storage.cpp" "src/scifile/CMakeFiles/sidr_scifile.dir/storage.cpp.o" "gcc" "src/scifile/CMakeFiles/sidr_scifile.dir/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndarray/CMakeFiles/sidr_ndarray.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
