file(REMOVE_RECURSE
  "libsidr_scifile.a"
)
