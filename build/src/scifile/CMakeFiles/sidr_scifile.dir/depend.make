# Empty dependencies file for sidr_scifile.
# This may be replaced when dependencies are built.
