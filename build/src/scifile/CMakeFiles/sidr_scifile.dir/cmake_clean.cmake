file(REMOVE_RECURSE
  "CMakeFiles/sidr_scifile.dir/cdl.cpp.o"
  "CMakeFiles/sidr_scifile.dir/cdl.cpp.o.d"
  "CMakeFiles/sidr_scifile.dir/dataset.cpp.o"
  "CMakeFiles/sidr_scifile.dir/dataset.cpp.o.d"
  "CMakeFiles/sidr_scifile.dir/metadata.cpp.o"
  "CMakeFiles/sidr_scifile.dir/metadata.cpp.o.d"
  "CMakeFiles/sidr_scifile.dir/output_writers.cpp.o"
  "CMakeFiles/sidr_scifile.dir/output_writers.cpp.o.d"
  "CMakeFiles/sidr_scifile.dir/storage.cpp.o"
  "CMakeFiles/sidr_scifile.dir/storage.cpp.o.d"
  "libsidr_scifile.a"
  "libsidr_scifile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_scifile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
