# CMake generated Testfile for 
# Source directory: /root/repo/src/scihadoop
# Build directory: /root/repo/build/src/scihadoop
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
