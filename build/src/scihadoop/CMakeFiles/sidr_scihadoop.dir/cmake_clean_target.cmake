file(REMOVE_RECURSE
  "libsidr_scihadoop.a"
)
