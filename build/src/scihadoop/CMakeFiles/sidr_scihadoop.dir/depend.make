# Empty dependencies file for sidr_scihadoop.
# This may be replaced when dependencies are built.
