file(REMOVE_RECURSE
  "CMakeFiles/sidr_scihadoop.dir/datagen.cpp.o"
  "CMakeFiles/sidr_scihadoop.dir/datagen.cpp.o.d"
  "CMakeFiles/sidr_scihadoop.dir/extraction.cpp.o"
  "CMakeFiles/sidr_scihadoop.dir/extraction.cpp.o.d"
  "CMakeFiles/sidr_scihadoop.dir/operators.cpp.o"
  "CMakeFiles/sidr_scihadoop.dir/operators.cpp.o.d"
  "CMakeFiles/sidr_scihadoop.dir/query_parser.cpp.o"
  "CMakeFiles/sidr_scihadoop.dir/query_parser.cpp.o.d"
  "CMakeFiles/sidr_scihadoop.dir/record_reader.cpp.o"
  "CMakeFiles/sidr_scihadoop.dir/record_reader.cpp.o.d"
  "CMakeFiles/sidr_scihadoop.dir/split_gen.cpp.o"
  "CMakeFiles/sidr_scihadoop.dir/split_gen.cpp.o.d"
  "libsidr_scihadoop.a"
  "libsidr_scihadoop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidr_scihadoop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
