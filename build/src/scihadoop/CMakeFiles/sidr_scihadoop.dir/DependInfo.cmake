
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scihadoop/datagen.cpp" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/datagen.cpp.o" "gcc" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/datagen.cpp.o.d"
  "/root/repo/src/scihadoop/extraction.cpp" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/extraction.cpp.o" "gcc" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/extraction.cpp.o.d"
  "/root/repo/src/scihadoop/operators.cpp" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/operators.cpp.o" "gcc" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/operators.cpp.o.d"
  "/root/repo/src/scihadoop/query_parser.cpp" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/query_parser.cpp.o" "gcc" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/query_parser.cpp.o.d"
  "/root/repo/src/scihadoop/record_reader.cpp" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/record_reader.cpp.o" "gcc" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/record_reader.cpp.o.d"
  "/root/repo/src/scihadoop/split_gen.cpp" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/split_gen.cpp.o" "gcc" "src/scihadoop/CMakeFiles/sidr_scihadoop.dir/split_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ndarray/CMakeFiles/sidr_ndarray.dir/DependInfo.cmake"
  "/root/repo/build/src/scifile/CMakeFiles/sidr_scifile.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/sidr_mapreduce.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
