# Empty dependencies file for bench_ablation_skew_bound.
# This may be replaced when dependencies are built.
