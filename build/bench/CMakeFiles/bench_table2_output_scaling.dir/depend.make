# Empty dependencies file for bench_table2_output_scaling.
# This may be replaced when dependencies are built.
