# Empty dependencies file for bench_table3_connections.
# This may be replaced when dependencies are built.
