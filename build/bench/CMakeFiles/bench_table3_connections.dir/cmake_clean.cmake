file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_connections.dir/bench_table3_connections.cpp.o"
  "CMakeFiles/bench_table3_connections.dir/bench_table3_connections.cpp.o.d"
  "bench_table3_connections"
  "bench_table3_connections.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_connections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
