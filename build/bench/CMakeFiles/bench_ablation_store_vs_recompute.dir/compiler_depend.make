# Empty compiler generated dependencies file for bench_ablation_store_vs_recompute.
# This may be replaced when dependencies are built.
