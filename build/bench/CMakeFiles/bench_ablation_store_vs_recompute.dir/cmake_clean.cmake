file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_store_vs_recompute.dir/bench_ablation_store_vs_recompute.cpp.o"
  "CMakeFiles/bench_ablation_store_vs_recompute.dir/bench_ablation_store_vs_recompute.cpp.o.d"
  "bench_ablation_store_vs_recompute"
  "bench_ablation_store_vs_recompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_store_vs_recompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
