# Empty dependencies file for bench_ablation_sailfish.
# This may be replaced when dependencies are built.
