file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sailfish.dir/bench_ablation_sailfish.cpp.o"
  "CMakeFiles/bench_ablation_sailfish.dir/bench_ablation_sailfish.cpp.o.d"
  "bench_ablation_sailfish"
  "bench_ablation_sailfish.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sailfish.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
