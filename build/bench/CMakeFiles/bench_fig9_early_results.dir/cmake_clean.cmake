file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_early_results.dir/bench_fig9_early_results.cpp.o"
  "CMakeFiles/bench_fig9_early_results.dir/bench_fig9_early_results.cpp.o.d"
  "bench_fig9_early_results"
  "bench_fig9_early_results.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_early_results.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
