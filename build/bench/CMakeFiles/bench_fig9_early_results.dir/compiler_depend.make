# Empty compiler generated dependencies file for bench_fig9_early_results.
# This may be replaced when dependencies are built.
