# Empty compiler generated dependencies file for bench_fig12_variance.
# This may be replaced when dependencies are built.
