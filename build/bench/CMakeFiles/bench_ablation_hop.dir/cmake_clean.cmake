file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hop.dir/bench_ablation_hop.cpp.o"
  "CMakeFiles/bench_ablation_hop.dir/bench_ablation_hop.cpp.o.d"
  "bench_ablation_hop"
  "bench_ablation_hop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
