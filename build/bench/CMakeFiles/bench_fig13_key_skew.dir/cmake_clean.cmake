file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_key_skew.dir/bench_fig13_key_skew.cpp.o"
  "CMakeFiles/bench_fig13_key_skew.dir/bench_fig13_key_skew.cpp.o.d"
  "bench_fig13_key_skew"
  "bench_fig13_key_skew.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_key_skew.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
