# Empty dependencies file for bench_fig13_key_skew.
# This may be replaced when dependencies are built.
