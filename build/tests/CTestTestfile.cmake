# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/ndarray_test[1]_include.cmake")
include("/root/repo/build/tests/scifile_test[1]_include.cmake")
include("/root/repo/build/tests/segment_test[1]_include.cmake")
include("/root/repo/build/tests/extraction_test[1]_include.cmake")
include("/root/repo/build/tests/partition_plus_test[1]_include.cmake")
include("/root/repo/build/tests/dependency_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/dfs_test[1]_include.cmake")
include("/root/repo/build/tests/splitgen_test[1]_include.cmake")
include("/root/repo/build/tests/operators_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/query_parser_test[1]_include.cmake")
include("/root/repo/build/tests/planner_test[1]_include.cmake")
include("/root/repo/build/tests/randomized_test[1]_include.cmake")
include("/root/repo/build/tests/subset_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
