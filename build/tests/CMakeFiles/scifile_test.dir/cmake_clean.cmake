file(REMOVE_RECURSE
  "CMakeFiles/scifile_test.dir/scifile_test.cpp.o"
  "CMakeFiles/scifile_test.dir/scifile_test.cpp.o.d"
  "scifile_test"
  "scifile_test.pdb"
  "scifile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scifile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
