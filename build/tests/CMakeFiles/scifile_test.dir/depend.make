# Empty dependencies file for scifile_test.
# This may be replaced when dependencies are built.
