# Empty dependencies file for splitgen_test.
# This may be replaced when dependencies are built.
