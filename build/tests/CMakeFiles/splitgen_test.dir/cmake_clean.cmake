file(REMOVE_RECURSE
  "CMakeFiles/splitgen_test.dir/splitgen_test.cpp.o"
  "CMakeFiles/splitgen_test.dir/splitgen_test.cpp.o.d"
  "splitgen_test"
  "splitgen_test.pdb"
  "splitgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/splitgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
