# Empty dependencies file for ndarray_test.
# This may be replaced when dependencies are built.
