file(REMOVE_RECURSE
  "CMakeFiles/ndarray_test.dir/ndarray_test.cpp.o"
  "CMakeFiles/ndarray_test.dir/ndarray_test.cpp.o.d"
  "ndarray_test"
  "ndarray_test.pdb"
  "ndarray_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ndarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
