file(REMOVE_RECURSE
  "CMakeFiles/partition_plus_test.dir/partition_plus_test.cpp.o"
  "CMakeFiles/partition_plus_test.dir/partition_plus_test.cpp.o.d"
  "partition_plus_test"
  "partition_plus_test.pdb"
  "partition_plus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/partition_plus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
