# Empty dependencies file for partition_plus_test.
# This may be replaced when dependencies are built.
