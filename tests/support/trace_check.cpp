#include "support/trace_check.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <unordered_map>

namespace sidr::testsupport {

void ExpectEventLogWellPaired(const mr::JobResult& result) {
  using Kind = mr::TaskEvent::Kind;
  // key: (isMap, taskId, attempt)
  std::map<std::tuple<bool, std::uint32_t, std::uint32_t>, int> starts;
  std::map<std::tuple<bool, std::uint32_t, std::uint32_t>, int> finishes;
  for (const mr::TaskEvent& ev : result.events) {
    EXPECT_GE(ev.attempt, 1u);
    bool isMap = ev.kind == Kind::kMapStart || ev.kind == Kind::kMapEnd ||
                 ev.kind == Kind::kMapFail;
    auto key = std::make_tuple(isMap, ev.taskId, ev.attempt);
    if (ev.kind == Kind::kMapStart || ev.kind == Kind::kReduceStart) {
      ++starts[key];
    } else {
      ++finishes[key];
    }
  }
  for (const auto& [key, n] : starts) {
    EXPECT_EQ(n, 1) << "duplicate start for task " << std::get<1>(key)
                    << " attempt " << std::get<2>(key);
    auto it = finishes.find(key);
    ASSERT_NE(it, finishes.end())
        << "start without end/fail for task " << std::get<1>(key)
        << " attempt " << std::get<2>(key);
    EXPECT_EQ(it->second, 1);
  }
  EXPECT_EQ(starts.size(), finishes.size()) << "end/fail without a start";
}

void ExpectSpansWellNested(const obs::Trace& trace) {
  std::unordered_map<std::uint32_t, std::vector<obs::Span>> lanes;
  for (const obs::Span& s : trace.spans) {
    EXPECT_LE(s.start, s.end)
        << "span ends before it starts: " << obs::phaseName(s.phase)
        << " task " << s.taskId;
    lanes[s.tid].push_back(s);
  }
  for (auto& [tid, spans] : lanes) {
    std::stable_sort(spans.begin(), spans.end(),
                     [](const obs::Span& a, const obs::Span& b) {
                       return a.start < b.start ||
                              (a.start == b.start && a.end > b.end);
                     });
    // Stack of open end times: each next span must start at or after
    // the innermost open span's start (guaranteed by the sort) and end
    // at or before its end, or begin after it closed.
    std::vector<double> open;
    for (const obs::Span& s : spans) {
      while (!open.empty() && s.start >= open.back() &&
             !(s.start == open.back() && s.end == s.start)) {
        // A zero-width span exactly at an enclosing end counts as
        // inside it (commit markers sit at attempt end).
        open.pop_back();
      }
      if (!open.empty()) {
        EXPECT_LE(s.end, open.back())
            << "crossing spans on lane " << tid << ": "
            << obs::phaseName(s.phase) << " task " << s.taskId
            << " [" << s.start << ", " << s.end << "] escapes its parent";
      }
      open.push_back(s.end);
    }
  }
}

namespace {

using AttemptKey = std::tuple<bool, std::uint32_t, std::uint32_t>;

}  // namespace

void ExpectAttemptSpansMatchEvents(const obs::Trace& trace,
                                   const mr::JobResult& result) {
  using Kind = mr::TaskEvent::Kind;
  // (isMap, task, attempt) -> failed?
  std::map<AttemptKey, bool> fromEvents;
  for (const mr::TaskEvent& ev : result.events) {
    bool isMap = ev.kind == Kind::kMapStart || ev.kind == Kind::kMapEnd ||
                 ev.kind == Kind::kMapFail;
    if (ev.kind == Kind::kMapStart || ev.kind == Kind::kReduceStart) continue;
    bool failed = ev.kind == Kind::kMapFail || ev.kind == Kind::kReduceFail;
    auto [it, inserted] = fromEvents.try_emplace(
        std::make_tuple(isMap, ev.taskId, ev.attempt), failed);
    EXPECT_TRUE(inserted) << "duplicate finish event for task " << ev.taskId
                          << " attempt " << ev.attempt;
  }
  std::map<AttemptKey, bool> fromSpans;
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kTaskAttempt) continue;
    bool isMap = s.side == obs::TaskSide::kMap;
    auto [it, inserted] = fromSpans.try_emplace(
        std::make_tuple(isMap, s.taskId, s.attempt),
        s.outcome == obs::Outcome::kFail);
    EXPECT_TRUE(inserted) << "duplicate attempt span for task " << s.taskId
                          << " attempt " << s.attempt;
  }
  EXPECT_EQ(fromSpans, fromEvents)
      << "attempt spans and event log disagree on the set of attempts "
         "or their outcomes";
}

void ExpectCommitGating(const obs::Trace& trace,
                        const std::vector<std::vector<std::uint32_t>>& deps) {
  // (map, keyblock) -> earliest commit end. The earliest suffices: any
  // committed attempt makes the segment fetchable from then on.
  std::map<std::pair<std::uint32_t, std::uint32_t>, double> commitEnd;
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kRenameCommit) continue;
    auto key = std::make_pair(s.taskId, s.keyblock);
    auto [it, inserted] = commitEnd.try_emplace(key, s.end);
    if (!inserted) it->second = std::min(it->second, s.end);
  }
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kTaskAttempt ||
        s.side != obs::TaskSide::kReduce) {
      continue;
    }
    ASSERT_LT(s.taskId, deps.size());
    for (std::uint32_t m : deps[s.taskId]) {
      auto it = commitEnd.find(std::make_pair(m, s.taskId));
      ASSERT_NE(it, commitEnd.end())
          << "reduce " << s.taskId << " attempt " << s.attempt
          << " ran but map " << m << " never committed its segment";
      EXPECT_LE(it->second, s.start)
          << "reduce " << s.taskId << " attempt " << s.attempt
          << " started before map " << m << " committed (paper section "
          << "3.2: reduces start only when I_l is fully committed)";
    }
  }
}

void ExpectFetchTalliesMatchCommits(
    const obs::Trace& trace,
    const std::vector<std::vector<std::uint32_t>>& deps) {
  // (map, keyblock) -> annotation of the LAST committed attempt: a
  // re-executed map republishes, and the reduce fetches what is
  // current when it runs. Committed annotations are identical across
  // attempts (same input split), so any committed one matches.
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> committed;
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kRenameCommit) continue;
    committed[std::make_pair(s.taskId, s.keyblock)] = s.represents;
  }
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kFetch || s.side != obs::TaskSide::kReduce) {
      continue;
    }
    ASSERT_LT(s.taskId, deps.size());
    std::uint64_t expected = 0;
    for (std::uint32_t m : deps[s.taskId]) {
      auto it = committed.find(std::make_pair(m, s.taskId));
      ASSERT_NE(it, committed.end());
      expected += it->second;
    }
    EXPECT_EQ(s.represents, expected)
        << "reduce " << s.taskId << " attempt " << s.attempt
        << " fetched an annotation tally that disagrees with the commit "
        << "spans of its dependency set";
  }
}

std::vector<std::vector<std::uint32_t>> barrierDeps(std::uint32_t numMaps,
                                                    std::uint32_t numReduces) {
  std::vector<std::vector<std::uint32_t>> deps(numReduces);
  for (auto& d : deps) {
    d.resize(numMaps);
    for (std::uint32_t m = 0; m < numMaps; ++m) d[m] = m;
  }
  return deps;
}

AttemptSummary summarizeAttempts(const obs::Trace& trace) {
  // attempt-number order, then flattened to the outcome sequence
  std::map<std::pair<obs::TaskSide, std::uint32_t>,
           std::map<std::uint32_t, obs::Outcome>>
      byAttempt;
  for (const obs::Span& s : trace.spans) {
    if (s.phase != obs::Phase::kTaskAttempt) continue;
    byAttempt[{s.side, s.taskId}][s.attempt] = s.outcome;
  }
  AttemptSummary summary;
  for (const auto& [task, attempts] : byAttempt) {
    std::uint32_t expect = 1;
    for (const auto& [attempt, outcome] : attempts) {
      EXPECT_EQ(attempt, expect)
          << "attempts of task " << task.second << " are not 1..n";
      ++expect;
      summary[task].push_back(outcome);
    }
  }
  return summary;
}

void CheckJobTrace(const mr::JobResult& result) {
  ExpectEventLogWellPaired(result);
  if (!result.trace.spans.empty()) {
    ExpectSpansWellNested(result.trace);
    ExpectAttemptSpansMatchEvents(result.trace, result);
  }
}

}  // namespace sidr::testsupport
