// Reusable trace/event-log invariant checkers (DESIGN.md section 13).
//
// The engine's event log and the obs span trace describe the same
// execution from two angles; these helpers pin both to the paper's
// scheduling contract:
//   - every start event pairs with exactly one end-or-fail event of the
//     same task AND attempt (promoted from engine_test's local helper);
//   - spans on one lane are well nested (an attempt span contains its
//     phase spans);
//   - attempt spans agree 1:1 with the event log, including outcomes
//     (kMapFail / kReduceFail <=> Outcome::kFail);
//   - no reduce attempt starts before the rename-commit spans of ALL
//     maps in its dependency set I_l (SIDR) or of every map (barrier);
//   - a reduce's fetched annotation tally equals the sum of the commit
//     annotations it depends on.
// All checkers use EXPECT_* internally so a failing invariant reports
// context without aborting the suite.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "mapreduce/job.hpp"
#include "obs/trace.hpp"

namespace sidr::testsupport {

/// Event-log invariant: every start event pairs with exactly one end
/// OR fail event of the same task and attempt, and no start repeats.
void ExpectEventLogWellPaired(const mr::JobResult& result);

/// Per-lane nesting: after sorting by (start asc, end desc), spans on
/// each lane form a forest — a later-starting span either begins after
/// the enclosing span ends or ends within it (with <= tolerance for
/// zero-width and boundary-tied spans).
void ExpectSpansWellNested(const obs::Trace& trace);

/// Attempt spans <-> event log: each (side, task, attempt) appears as
/// exactly one kTaskAttempt span AND one start/end-or-fail event pair,
/// with Outcome::kFail exactly where the event log says kMapFail /
/// kReduceFail.
void ExpectAttemptSpansMatchEvents(const obs::Trace& trace,
                                   const mr::JobResult& result);

/// Scheduling gate: for every reduce attempt span R and every map m in
/// deps[R.taskId], some rename-commit span (m -> R.taskId) ends at or
/// before R starts. Covers re-attempts: EVERY reduce attempt (not just
/// the last) must have been gated on committed map output.
void ExpectCommitGating(const obs::Trace& trace,
                        const std::vector<std::vector<std::uint32_t>>& deps);

/// Count-annotation cross-check (engine traces): each reduce attempt's
/// fetch-span `represents` tally equals the sum of the LAST committed
/// annotation from each dependency map.
void ExpectFetchTalliesMatchCommits(
    const obs::Trace& trace,
    const std::vector<std::vector<std::uint32_t>>& deps);

/// The global barrier as a dependency set: every reduce depends on
/// every map.
std::vector<std::vector<std::uint32_t>> barrierDeps(std::uint32_t numMaps,
                                                    std::uint32_t numReduces);

/// Outcome sequence of each task's attempts in order, keyed by
/// (side, taskId) — the schedule-independent skeleton two executions of
/// the same plan must share (sim vs engine differential).
using AttemptSummary =
    std::map<std::pair<obs::TaskSide, std::uint32_t>,
             std::vector<obs::Outcome>>;
AttemptSummary summarizeAttempts(const obs::Trace& trace);

/// One-line per-test check: event log well paired, and when the result
/// carries a recorded trace, spans well nested and consistent with the
/// event log.
void CheckJobTrace(const mr::JobResult& result);

}  // namespace sidr::testsupport
