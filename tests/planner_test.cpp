#include <gtest/gtest.h>

#include "mapreduce/partitioners.hpp"
#include "sidr/planner.hpp"

namespace sidr::core {
namespace {

sh::StructuralQuery weeklyQuery() {
  sh::StructuralQuery q;
  q.variable = "temperature";
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5, 1};
  return q;
}

TEST(QueryPlanner, SidrPlanIsFullyWired) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 5;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);

  EXPECT_EQ(plan.spec.mode, mr::ExecutionMode::kSidr);
  EXPECT_NE(plan.partitionPlus, nullptr);
  EXPECT_EQ(plan.spec.partitioner.get(), plan.partitionPlus.get());
  EXPECT_EQ(plan.spec.reduceDeps.size(), 4u);
  EXPECT_EQ(plan.spec.expectedRepresents.size(), 4u);
  EXPECT_EQ(plan.dependencies.keyblockToSplits, plan.spec.reduceDeps);

  // Every split that produces output appears in some dependency set.
  std::vector<bool> covered(plan.spec.splits.size(), false);
  for (const auto& deps : plan.spec.reduceDeps) {
    for (std::uint32_t s : deps) covered[s] = true;
  }
  for (const auto& split : plan.spec.splits) {
    sh::ExtractionMap ex(weeklyQuery(), nd::Coord{70, 25, 10});
    bool produces = false;
    for (const auto& region : split.regions) {
      if (ex.instanceRangeOf(region)) produces = true;
    }
    EXPECT_EQ(covered[split.id], produces) << "split " << split.id;
  }
}

TEST(QueryPlanner, StockPlanUsesModuloAndBarrier) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  for (SystemMode system : {SystemMode::kHadoop, SystemMode::kSciHadoop}) {
    PlanOptions opts;
    opts.system = system;
    opts.numReducers = 4;
    QueryPlan plan = planner.plan(sh::temperatureField(), opts);
    EXPECT_EQ(plan.spec.mode, mr::ExecutionMode::kGlobalBarrier);
    EXPECT_EQ(plan.partitionPlus, nullptr);
    EXPECT_NE(dynamic_cast<const mr::ModuloPartitioner*>(
                  plan.spec.partitioner.get()),
              nullptr);
    EXPECT_TRUE(plan.spec.reduceDeps.empty());
  }
}

TEST(QueryPlanner, SailfishRejectedByRealEngine) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSailfish;
  EXPECT_THROW(planner.plan(sh::temperatureField(), opts),
               std::invalid_argument);
}

TEST(QueryPlanner, OptionPassThrough) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 4;
  opts.mapSlots = 7;
  opts.reduceSlots = 5;
  opts.numThreads = 9;
  opts.recovery = mr::RecoveryModel::kRecomputeDeps;
  opts.faultPlan.failReduce(2).failMap(1, 2);
  opts.faultPlan.maxAttempts = 3;
  opts.reducePriority = {2, 0, 1};
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  EXPECT_EQ(plan.spec.mapSlots, 7u);
  EXPECT_EQ(plan.spec.reduceSlots, 5u);
  EXPECT_EQ(plan.spec.numThreads, 9u);
  EXPECT_EQ(plan.spec.recovery, mr::RecoveryModel::kRecomputeDeps);
  ASSERT_EQ(plan.spec.faultPlan.faults.size(), 2u);
  EXPECT_EQ(plan.spec.faultPlan.faults[0],
            (mr::FaultSpec{mr::TaskKind::kReduce, 2, 1}));
  EXPECT_EQ(plan.spec.faultPlan.faults[1],
            (mr::FaultSpec{mr::TaskKind::kMap, 1, 2}));
  EXPECT_EQ(plan.spec.faultPlan.maxAttempts, 3u);
  EXPECT_EQ(plan.spec.reducePriority, (std::vector<std::uint32_t>{2, 0, 1}));
}

TEST(QueryPlanner, ExplicitSplitTargetOverridesCount) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSciHadoop;
  opts.splitTargetElements = 7 * 25 * 10;  // one week of rows per split
  opts.desiredSplitCount = 2;              // would give huge splits; ignored
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  EXPECT_EQ(plan.spec.splits.size(), 10u);
}

TEST(QueryPlanner, SkewBoundFlowsFromQuery) {
  sh::StructuralQuery q = weeklyQuery();
  q.skewBound = 25;
  QueryPlanner planner(q, nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 2;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  EXPECT_LE(plan.partitionPlus->granuleSize(), 25);
}

TEST(QueryPlanner, ValidateAnnotationsOptional) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.validateAnnotations = false;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  EXPECT_TRUE(plan.spec.expectedRepresents.empty());
}

TEST(QueryPlanner, TransportRecommendationFollowsSpillMode) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;

  // No spill: zero-copy in-process handoff, transport left unset.
  QueryPlan inMemory = planner.plan(sh::temperatureField(), opts);
  EXPECT_EQ(inMemory.recommendedTransport,
            mr::ShuffleTransportKind::kInProcess);
  EXPECT_FALSE(inMemory.spec.transport.has_value());

  // Eager spill: map output is committed files, so serve the files.
  opts.spillDirectory = "/tmp/sidr_planner_transport";
  QueryPlan eager = planner.plan(sh::temperatureField(), opts);
  EXPECT_EQ(eager.recommendedTransport,
            mr::ShuffleTransportKind::kFileServed);

  // Hybrid budget: segments are (mostly) resident; back to in-process.
  opts.memoryBudgetBytes = 1 << 20;
  QueryPlan hybrid = planner.plan(sh::temperatureField(), opts);
  EXPECT_EQ(hybrid.recommendedTransport,
            mr::ShuffleTransportKind::kInProcess);
}

TEST(QueryPlanner, TransportKnobsForwardToSpec) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.transport = mr::ShuffleTransportKind::kSocket;
  opts.transportConnections = 5;
  opts.transportTimeoutMillis = 250;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  ASSERT_TRUE(plan.spec.transport.has_value());
  EXPECT_EQ(*plan.spec.transport, mr::ShuffleTransportKind::kSocket);
  EXPECT_EQ(plan.spec.transportConnections, 5u);
  EXPECT_EQ(plan.spec.transportTimeoutMillis, 250u);
}

TEST(QueryPlanner, FileServedWithoutEagerSpillRejectedAtPlanTime) {
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.transport = mr::ShuffleTransportKind::kFileServed;
  // No spill directory at all.
  EXPECT_THROW(planner.plan(sh::temperatureField(), opts),
               std::invalid_argument);
  // Hybrid budget is equally invalid: evicted-or-resident slots are not
  // a committed-file store.
  opts.spillDirectory = "/tmp/sidr_planner_transport";
  opts.memoryBudgetBytes = 1 << 20;
  EXPECT_THROW(planner.plan(sh::temperatureField(), opts),
               std::invalid_argument);
  opts.memoryBudgetBytes = 0;
  EXPECT_NO_THROW(planner.plan(sh::temperatureField(), opts));
}

TEST(QueryPlanner, TransportDoesNotLeakIntoMapFingerprint) {
  // The transport moves bytes; it cannot change them. A resubmission
  // that switches data planes must still hit the segment cache.
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.datasetId = "weekly-v1";
  QueryPlan base = planner.plan(sh::temperatureField(), opts);
  ASSERT_TRUE(base.spec.mapFingerprint.has_value());

  opts.transport = mr::ShuffleTransportKind::kSocket;
  opts.transportConnections = 9;
  opts.transportTimeoutMillis = 123;
  QueryPlan socketed = planner.plan(sh::temperatureField(), opts);
  ASSERT_TRUE(socketed.spec.mapFingerprint.has_value());
  EXPECT_EQ(*base.spec.mapFingerprint, *socketed.spec.mapFingerprint);
}

TEST(Engine, AnnotationValidatorDetectsWrongExpectations) {
  // Mutation check: feed the engine deliberately wrong expected tallies
  // and confirm the validator flags every reduce.
  QueryPlanner planner(weeklyQuery(), nd::Coord{70, 25, 10});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  for (auto& e : plan.spec.expectedRepresents) e += 1;  // corrupt
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  EXPECT_EQ(result.annotationViolations, 4u);
}

}  // namespace
}  // namespace sidr::core
