#include <gtest/gtest.h>

#include "scihadoop/operators.hpp"

namespace sidr::sh {
namespace {

/// Collects emissions from a StructuralMapper for inspection.
class CapturingContext final : public mr::MapContext {
 public:
  void emit(const nd::Coord& key, mr::Value value,
            std::uint64_t represents) override {
    records.push_back(mr::KeyValue{key, std::move(value), represents});
  }
  std::vector<mr::KeyValue> records;
};

StructuralQuery makeQuery(OperatorKind op, nd::Coord eshape,
                          double threshold = 0.0) {
  StructuralQuery q;
  q.op = op;
  q.extractionShape = eshape;
  q.filterThreshold = threshold;
  return q;
}

TEST(StructuralMapper, CombinesDistributivePerCell) {
  StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{2, 2});
  auto ex = std::make_shared<const ExtractionMap>(q, nd::Coord{4, 4});
  StructuralMapper mapper(q, ex);
  CapturingContext ctx;
  // Feed one full cell (4 values) and part of another (2 values).
  mapper.map(nd::Coord{0, 0}, 1.0, ctx);
  mapper.map(nd::Coord{0, 1}, 2.0, ctx);
  mapper.map(nd::Coord{1, 0}, 3.0, ctx);
  mapper.map(nd::Coord{1, 1}, 4.0, ctx);
  mapper.map(nd::Coord{0, 2}, 10.0, ctx);
  mapper.map(nd::Coord{1, 2}, 20.0, ctx);
  EXPECT_TRUE(ctx.records.empty()) << "combining mapper buffers until finish";
  mapper.finish(ctx);
  ASSERT_EQ(ctx.records.size(), 2u);
  EXPECT_EQ(ctx.records[0].key, (nd::Coord{0, 0}));
  EXPECT_EQ(ctx.records[0].represents, 4u);
  EXPECT_DOUBLE_EQ(ctx.records[0].value.asPartial().mean(), 2.5);
  EXPECT_EQ(ctx.records[1].key, (nd::Coord{0, 1}));
  EXPECT_EQ(ctx.records[1].represents, 2u);
  EXPECT_DOUBLE_EQ(ctx.records[1].value.asPartial().sum, 30.0);
}

TEST(StructuralMapper, MedianShipsFullLists) {
  StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{3});
  auto ex = std::make_shared<const ExtractionMap>(q, nd::Coord{6});
  StructuralMapper mapper(q, ex);
  CapturingContext ctx;
  for (nd::Index i = 0; i < 6; ++i) {
    mapper.map(nd::Coord{i}, static_cast<double>(i * i), ctx);
  }
  mapper.finish(ctx);
  ASSERT_EQ(ctx.records.size(), 2u);
  EXPECT_EQ(ctx.records[0].value.asList(), (std::vector<double>{0, 1, 4}));
  EXPECT_EQ(ctx.records[1].value.asList(), (std::vector<double>{9, 16, 25}));
}

TEST(StructuralMapper, FilterEmitsEmptyListsWithCounts) {
  // Cells with no survivors still emit an (empty) record so that the
  // count annotation covers every consumed input pair.
  StructuralQuery q = makeQuery(OperatorKind::kFilter, nd::Coord{2}, 100.0);
  auto ex = std::make_shared<const ExtractionMap>(q, nd::Coord{4});
  StructuralMapper mapper(q, ex);
  CapturingContext ctx;
  mapper.map(nd::Coord{0}, 1.0, ctx);
  mapper.map(nd::Coord{1}, 2.0, ctx);
  mapper.map(nd::Coord{2}, 500.0, ctx);
  mapper.map(nd::Coord{3}, 3.0, ctx);
  mapper.finish(ctx);
  ASSERT_EQ(ctx.records.size(), 2u);
  EXPECT_TRUE(ctx.records[0].value.asList().empty());
  EXPECT_EQ(ctx.records[0].represents, 2u);
  EXPECT_EQ(ctx.records[1].value.asList(), (std::vector<double>{500.0}));
  EXPECT_EQ(ctx.records[1].represents, 2u);
}

TEST(StructuralMapper, DropsKeysOutsideInstances) {
  StructuralQuery q = makeQuery(OperatorKind::kSum, nd::Coord{2});
  q.stride = nd::Coord{3};
  auto ex = std::make_shared<const ExtractionMap>(q, nd::Coord{7});
  StructuralMapper mapper(q, ex);
  CapturingContext ctx;
  for (nd::Index i = 0; i < 7; ++i) {
    mapper.map(nd::Coord{i}, 1.0, ctx);
  }
  mapper.finish(ctx);
  // Instances at 0-1 and 3-4; keys 2, 5, 6 dropped.
  ASSERT_EQ(ctx.records.size(), 2u);
  EXPECT_EQ(ctx.records[0].represents + ctx.records[1].represents, 4u);
}

TEST(FinalizeCell, AllDistributiveOperators) {
  mr::Partial p;
  p.merge(mr::Partial::ofValue(3.0));
  p.merge(mr::Partial::ofValue(-1.0));
  p.merge(mr::Partial::ofValue(7.0));
  EXPECT_DOUBLE_EQ(
      finalizeCell(makeQuery(OperatorKind::kMean, {}), p, {}).asScalar(),
      3.0);
  EXPECT_DOUBLE_EQ(
      finalizeCell(makeQuery(OperatorKind::kSum, {}), p, {}).asScalar(), 9.0);
  EXPECT_DOUBLE_EQ(
      finalizeCell(makeQuery(OperatorKind::kMin, {}), p, {}).asScalar(),
      -1.0);
  EXPECT_DOUBLE_EQ(
      finalizeCell(makeQuery(OperatorKind::kMax, {}), p, {}).asScalar(), 7.0);
  EXPECT_DOUBLE_EQ(
      finalizeCell(makeQuery(OperatorKind::kCount, {}), p, {}).asScalar(),
      3.0);
}

TEST(FinalizeCell, MedianLowerMiddle) {
  auto q = makeQuery(OperatorKind::kMedian, {});
  EXPECT_DOUBLE_EQ(finalizeCell(q, {}, {5.0}).asScalar(), 5.0);
  EXPECT_DOUBLE_EQ(finalizeCell(q, {}, {3.0, 1.0, 2.0}).asScalar(), 2.0);
  // Even count: lower median.
  EXPECT_DOUBLE_EQ(finalizeCell(q, {}, {4.0, 1.0, 3.0, 2.0}).asScalar(), 2.0);
  EXPECT_THROW(finalizeCell(q, {}, {}), std::logic_error);
}

TEST(FinalizeCell, FilterSortsSurvivors) {
  auto q = makeQuery(OperatorKind::kFilter, {}, 0.0);
  mr::Value v = finalizeCell(q, {}, {3.0, 1.0, 2.0});
  EXPECT_EQ(v.asList(), (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_TRUE(finalizeCell(q, {}, {}).asList().empty());
}

TEST(StructuralReducer, MergesPartialsAcrossMaps) {
  StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{2});
  StructuralReducer reducer(q);
  mr::Value a = mr::Value::partial(mr::Partial::ofValue(10.0));
  mr::Value b = mr::Value::partial(mr::Partial::ofValue(20.0));
  std::vector<const mr::Value*> values{&a, &b};
  class Ctx final : public mr::ReduceContext {
   public:
    void emit(const nd::Coord& k, mr::Value v) override {
      key = k;
      value = std::move(v);
    }
    nd::Coord key;
    mr::Value value;
  } ctx;
  reducer.reduce(nd::Coord{3}, values, ctx);
  EXPECT_EQ(ctx.key, (nd::Coord{3}));
  EXPECT_DOUBLE_EQ(ctx.value.asScalar(), 15.0);
}

TEST(StructuralReducer, ConcatenatesListsAcrossMaps) {
  StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{2});
  StructuralReducer reducer(q);
  mr::Value a = mr::Value::list({5.0, 1.0});
  mr::Value b = mr::Value::list({3.0});
  std::vector<const mr::Value*> values{&a, &b};
  class Ctx final : public mr::ReduceContext {
   public:
    void emit(const nd::Coord&, mr::Value v) override { value = std::move(v); }
    mr::Value value;
  } ctx;
  reducer.reduce(nd::Coord{0}, values, ctx);
  EXPECT_DOUBLE_EQ(ctx.value.asScalar(), 3.0);  // median of {1,3,5}
}

TEST(SerialOracle, MatchesHandComputedMeans) {
  StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{2, 2});
  ExtractionMap ex(q, nd::Coord{4, 4});
  auto fn = [](const nd::Coord& c) {
    return static_cast<double>(c[0] * 4 + c[1]);
  };
  auto out = runSerialOracle(q, ex, fn);
  ASSERT_EQ(out.size(), 4u);
  // Cell {0,0}: values 0,1,4,5 -> mean 2.5.
  EXPECT_EQ(out[0].key, (nd::Coord{0, 0}));
  EXPECT_DOUBLE_EQ(out[0].value.asScalar(), 2.5);
  // Cell {1,1}: values 10,11,14,15 -> mean 12.5.
  EXPECT_EQ(out[3].key, (nd::Coord{1, 1}));
  EXPECT_DOUBLE_EQ(out[3].value.asScalar(), 12.5);
  for (const auto& kv : out) EXPECT_EQ(kv.represents, 4u);
}

}  // namespace
}  // namespace sidr::sh
