#include <gtest/gtest.h>

#include <numeric>

#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace sidr::sim {
namespace {

/// A scaled-down Query-1-like workload that keeps the simulator tests
/// fast (hundreds of maps, not thousands).
WorkloadSpec smallWorkload() {
  WorkloadSpec w = query1Workload();
  w.inputShape = nd::Coord{2880, 36, 144, 20};
  w.query.extractionShape = nd::Coord{2, 36, 36, 10};
  w.numSplits = 96;
  return w;
}

TEST(Workload, VolumesAreConserved) {
  WorkloadSpec w = smallWorkload();
  for (auto system : {core::SystemMode::kSciHadoop, core::SystemMode::kSidr}) {
    BuiltWorkload built = buildWorkload(w, system, 8);
    // Input bytes: every split carries its region's bytes.
    std::uint64_t inputBytes = std::accumulate(
        built.job.splitBytes.begin(), built.job.splitBytes.end(),
        std::uint64_t{0});
    EXPECT_EQ(inputBytes,
              static_cast<std::uint64_t>(w.inputShape.volume()) * 4);
    // Shuffle bytes: map outputs equal reduce inputs.
    std::uint64_t mapOut = 0;
    for (const auto& mo : built.job.mapOutput) {
      for (const auto& [kb, b] : mo) mapOut += b;
    }
    std::uint64_t reduceIn = std::accumulate(
        built.job.reduceInputBytes.begin(), built.job.reduceInputBytes.end(),
        std::uint64_t{0});
    EXPECT_EQ(mapOut, reduceIn);
    // Intermediate ~ input x factor (plus per-record overheads).
    EXPECT_GT(reduceIn, inputBytes);  // factor 1.0 + overhead
    EXPECT_LT(reduceIn, inputBytes + inputBytes / 10);
  }
}

TEST(Workload, SidrRoutesOnlyToDependencies) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload built = buildWorkload(w, core::SystemMode::kSidr, 8);
  ASSERT_EQ(built.job.reduceDeps.size(), 8u);
  for (std::uint32_t m = 0; m < built.job.numMaps; ++m) {
    for (const auto& [kb, bytes] : built.job.mapOutput[m]) {
      if (bytes == 0) continue;
      const auto& deps = built.job.reduceDeps[kb];
      EXPECT_TRUE(std::binary_search(deps.begin(), deps.end(), m))
          << "map " << m << " routed bytes to keyblock " << kb
          << " without a declared dependency";
    }
  }
}

TEST(Workload, SidrBalancesStockModuloDoesNotSkewHere) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload sidr = buildWorkload(w, core::SystemMode::kSidr, 8);
  std::uint64_t mn = UINT64_MAX;
  std::uint64_t mx = 0;
  for (std::uint64_t b : sidr.job.reduceInputBytes) {
    mn = std::min(mn, b);
    mx = std::max(mx, b);
  }
  EXPECT_LT(mx - mn, mx / 4) << "partition+ loads must be balanced";
}

TEST(Workload, SkewWorkloadStarvesOddReducers) {
  WorkloadSpec w = skewWorkload();
  w.inputShape = nd::Coord{2880, 36, 144, 20};
  w.query.extractionShape = nd::Coord{2, 36, 36, 10};
  w.numSplits = 96;
  BuiltWorkload stock = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  std::uint64_t total = 0;
  std::uint32_t nonEmpty = 0;
  for (std::size_t kb = 0; kb < 8; ++kb) {
    total += stock.job.reduceInputBytes[kb];
    if (stock.job.reduceInputBytes[kb] > 0) ++nonEmpty;
    if (kb % 2 == 1) {
      EXPECT_EQ(stock.job.reduceInputBytes[kb], 0u)
          << "odd keyblock " << kb << " must starve under modulo";
    }
  }
  EXPECT_GT(total, 0u);
  EXPECT_LE(nonEmpty, 4u) << "at most the even keyblocks receive data";
  BuiltWorkload sidr = buildWorkload(w, core::SystemMode::kSidr, 8);
  for (std::size_t kb = 0; kb < 8; ++kb) {
    EXPECT_GT(sidr.job.reduceInputBytes[kb], 0u);
  }
}

TEST(ClusterSim, DeterministicForFixedSeed) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload built = buildWorkload(w, core::SystemMode::kSidr, 8);
  ClusterConfig cfg;
  cfg.mapNoiseSigma = 0.2;
  SimResult a = ClusterSim(cfg, built.job).run();
  SimResult b = ClusterSim(cfg, built.job).run();
  EXPECT_EQ(a.totalTime, b.totalTime);
  EXPECT_EQ(a.firstResult, b.firstResult);
  EXPECT_EQ(a.shuffleConnections, b.shuffleConnections);
  cfg.seed = 99;
  SimResult c = ClusterSim(cfg, built.job).run();
  EXPECT_NE(a.totalTime, c.totalTime);
}

TEST(ClusterSim, EveryTaskCompletes) {
  WorkloadSpec w = smallWorkload();
  for (auto system : {core::SystemMode::kSciHadoop, core::SystemMode::kSidr}) {
    BuiltWorkload built = buildWorkload(w, system, 8);
    SimResult res = ClusterSim(ClusterConfig{}, built.job).run();
    for (const auto& m : res.maps) {
      EXPECT_GT(m.end, 0.0);
      EXPECT_GE(m.end, m.start);
    }
    for (const auto& r : res.reduces) {
      EXPECT_GT(r.end, 0.0);
      EXPECT_GE(r.end, r.start);
    }
    EXPECT_GE(res.totalTime, res.lastMapEnd);
  }
}

TEST(ClusterSim, GlobalBarrierHoldsInStockMode) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload built = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  SimResult res = ClusterSim(ClusterConfig{}, built.job).run();
  // No reduce may COMMIT before the last map ends (it also cannot start
  // merging, but commit is what we observe).
  EXPECT_GE(res.firstResult, res.lastMapEnd);
}

TEST(ClusterSim, SidrProducesEarlyResults) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload built = buildWorkload(w, core::SystemMode::kSidr, 8);
  // A smaller cluster so the 96 maps run in several waves — otherwise
  // the map phase is one wave and nothing can commit "early".
  ClusterConfig cfg;
  cfg.numNodes = 6;
  SimResult res = ClusterSim(cfg, built.job).run();
  EXPECT_LT(res.firstResult, res.lastMapEnd)
      << "a SIDR reduce must commit before the map phase ends";
}

TEST(ClusterSim, ConnectionCountsMatchModel) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload stock = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  SimResult stockRes = ClusterSim(ClusterConfig{}, stock.job).run();
  EXPECT_EQ(stockRes.shuffleConnections,
            static_cast<std::uint64_t>(stock.job.numMaps) * 8);

  BuiltWorkload sidr = buildWorkload(w, core::SystemMode::kSidr, 8);
  SimResult sidrRes = ClusterSim(ClusterConfig{}, sidr.job).run();
  EXPECT_EQ(sidrRes.shuffleConnections,
            sidr.dependencies.totalConnections());
  EXPECT_LT(sidrRes.shuffleConnections, stockRes.shuffleConnections);
}

TEST(ClusterSim, MoreReducersHelpSidrNotStock) {
  WorkloadSpec w = smallWorkload();
  auto total = [&](core::SystemMode system, std::uint32_t r) {
    BuiltWorkload built = buildWorkload(w, system, r);
    return ClusterSim(ClusterConfig{}, built.job).run();
  };
  SimResult sidr8 = total(core::SystemMode::kSidr, 8);
  SimResult sidr32 = total(core::SystemMode::kSidr, 32);
  EXPECT_LT(sidr32.firstResult, sidr8.firstResult);
  EXPECT_LE(sidr32.totalTime, sidr8.totalTime * 1.05);

  SimResult stock8 = total(core::SystemMode::kSciHadoop, 8);
  SimResult stock32 = total(core::SystemMode::kSciHadoop, 32);
  // The barrier pins stock's first result to the map phase regardless.
  EXPECT_GE(stock32.firstResult, stock32.lastMapEnd);
  EXPECT_GE(stock8.firstResult, stock8.lastMapEnd);
}

TEST(ClusterSim, PriorityOrderIsHonored) {
  WorkloadSpec w = smallWorkload();
  std::vector<std::uint32_t> priority{7, 6, 5, 4, 3, 2, 1, 0};
  BuiltWorkload built =
      buildWorkload(w, core::SystemMode::kSidr, 8, priority);
  ClusterConfig cfg;
  cfg.reduceSlotsPerNode = 1;
  cfg.numNodes = 2;  // scarce slots: scheduling order observable
  cfg.mapSlotsPerNode = 8;
  SimResult res = ClusterSim(cfg, built.job).run();
  // High-priority keyblocks are SCHEDULED first and commit before the
  // low-priority tail (computational steering).
  EXPECT_LT(res.reduces[7].start, res.reduces[0].start);
  EXPECT_LT(res.reduces[7].end, res.reduces[0].end);
  EXPECT_LT(res.reduces[6].end, res.reduces[1].end);
}

TEST(ClusterSim, HadoopModeSlowerThanSciHadoop) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload h = buildWorkload(w, core::SystemMode::kHadoop, 8);
  BuiltWorkload sh = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  SimResult hr = ClusterSim(ClusterConfig{}, h.job).run();
  SimResult shr = ClusterSim(ClusterConfig{}, sh.job).run();
  EXPECT_GT(hr.totalTime, 1.5 * shr.totalTime);
}

TEST(ClusterSim, SailfishBalancesButStrengthensBarrier) {
  // Paper section 5: Sailfish eliminates skew by deferring keyblock
  // assignment, at the cost of a strengthened barrier — no fetch can
  // overlap the map phase, and first results arrive after everything.
  WorkloadSpec w = smallWorkload();
  BuiltWorkload sailfish = buildWorkload(w, core::SystemMode::kSailfish, 8);
  // Balanced like partition+.
  std::uint64_t mn = UINT64_MAX;
  std::uint64_t mx = 0;
  for (std::uint64_t b : sailfish.job.reduceInputBytes) {
    mn = std::min(mn, b);
    mx = std::max(mx, b);
  }
  EXPECT_LT(mx - mn, mx / 4);
  EXPECT_TRUE(sailfish.job.deferFetchUntilAllMaps);

  ClusterConfig cfg;
  cfg.numNodes = 6;
  SimResult sail = ClusterSim(cfg, sailfish.job).run();
  EXPECT_GE(sail.firstResult, sail.lastMapEnd);

  // The same cluster running SIDR overlaps copy with maps and commits
  // earlier overall.
  BuiltWorkload sidr = buildWorkload(w, core::SystemMode::kSidr, 8);
  SimResult sidrRes = ClusterSim(cfg, sidr.job).run();
  EXPECT_LT(sidrRes.firstResult, sail.firstResult);
  EXPECT_LT(sidrRes.totalTime, sail.totalTime);

  // And stock (non-deferred) finishes no later than Sailfish: deferring
  // can only delay the copy phase.
  BuiltWorkload stock = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  SimResult stockRes = ClusterSim(cfg, stock.job).run();
  EXPECT_LE(stockRes.totalTime, sail.totalTime + 1e-9);
}

TEST(ClusterSim, VolatileIntermediateSkipsSpillCost) {
  // Section 6's non-failure-case saving: with volatile intermediate
  // data maps skip the output spill, so (failure-free) runs finish
  // strictly no later and the map phase shortens.
  WorkloadSpec w = smallWorkload();
  BuiltWorkload persisted = buildWorkload(w, core::SystemMode::kSidr, 8);
  BuiltWorkload volatileJob = buildWorkload(w, core::SystemMode::kSidr, 8);
  volatileJob.job.volatileIntermediate = true;
  ClusterConfig cfg;
  cfg.numNodes = 6;
  SimResult persistedRes = ClusterSim(cfg, persisted.job).run();
  SimResult volatileRes = ClusterSim(cfg, volatileJob.job).run();
  EXPECT_LT(volatileRes.lastMapEnd, persistedRes.lastMapEnd);
  EXPECT_LE(volatileRes.totalTime, persistedRes.totalTime);
  EXPECT_EQ(volatileRes.mapsReExecuted, 0u);
}

TEST(ClusterSim, ReduceFailureRecoveryModels) {
  WorkloadSpec w = smallWorkload();
  ClusterConfig cfg;
  cfg.numNodes = 6;

  // Baseline: no failure.
  BuiltWorkload base = buildWorkload(w, core::SystemMode::kSidr, 8);
  SimResult baseRes = ClusterSim(cfg, base.job).run();

  // Persisted intermediate: a failed reduce re-fetches and re-merges
  // but re-runs no maps.
  BuiltWorkload persisted = buildWorkload(w, core::SystemMode::kSidr, 8);
  persisted.job.failOnceReduces = {3};
  SimResult persistedRes = ClusterSim(cfg, persisted.job).run();
  EXPECT_EQ(persistedRes.reduceFailures, 1u);
  EXPECT_EQ(persistedRes.mapsReExecuted, 0u);
  EXPECT_GT(persistedRes.reduces[3].end, baseRes.reduces[3].end);

  // Volatile intermediate: the failure re-executes exactly |I_3| maps.
  BuiltWorkload volatileJob = buildWorkload(w, core::SystemMode::kSidr, 8);
  volatileJob.job.volatileIntermediate = true;
  volatileJob.job.failOnceReduces = {3};
  SimResult volatileRes = ClusterSim(cfg, volatileJob.job).run();
  EXPECT_EQ(volatileRes.reduceFailures, 1u);
  EXPECT_EQ(volatileRes.mapsReExecuted,
            volatileJob.dependencies.keyblockToSplits[3].size());
  // Other keyblocks' results are unaffected by the recovery.
  for (std::uint32_t kb = 0; kb < 8; ++kb) {
    EXPECT_GT(volatileRes.reduces[kb].end, 0.0);
  }
}

TEST(ClusterSim, MapFailureInjectionReRunsMap) {
  // Mirrors the engine's map-attempt failure injection: the failed map
  // releases its slot, re-queues, and re-runs in full; reduces depending
  // on it simply see its (only) completion later.
  WorkloadSpec w = smallWorkload();
  ClusterConfig cfg;
  cfg.numNodes = 6;

  BuiltWorkload base = buildWorkload(w, core::SystemMode::kSidr, 8);
  SimResult baseRes = ClusterSim(cfg, base.job).run();

  BuiltWorkload failing = buildWorkload(w, core::SystemMode::kSidr, 8);
  failing.job.failOnceMaps = {2};
  SimResult res = ClusterSim(cfg, failing.job).run();
  EXPECT_EQ(res.mapFailures, 1u);
  EXPECT_EQ(res.mapsReExecuted, 1u);
  EXPECT_EQ(res.reduceFailures, 0u);
  EXPECT_GE(res.maps[2].end, baseRes.maps[2].end);
  for (std::uint32_t kb = 0; kb < 8; ++kb) {
    EXPECT_GT(res.reduces[kb].end, 0.0);
  }
  EXPECT_GE(res.totalTime, baseRes.totalTime);

  // Map-failure injection works in stock mode too (unlike reduce
  // injection, it does not rely on SIDR's dependency bookkeeping).
  BuiltWorkload stock = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  stock.job.failOnceMaps = {0};
  SimResult stockRes = ClusterSim(cfg, stock.job).run();
  EXPECT_EQ(stockRes.mapFailures, 1u);
  EXPECT_EQ(stockRes.mapsReExecuted, 1u);
}

TEST(ClusterSim, OutOfRangeFailureIdsRejected) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload badMap = buildWorkload(w, core::SystemMode::kSidr, 8);
  badMap.job.failOnceMaps = {badMap.job.numMaps};
  EXPECT_THROW(ClusterSim(ClusterConfig{}, badMap.job).run(),
               std::invalid_argument);

  BuiltWorkload badReduce = buildWorkload(w, core::SystemMode::kSidr, 8);
  badReduce.job.failOnceReduces = {8};
  EXPECT_THROW(ClusterSim(ClusterConfig{}, badReduce.job).run(),
               std::invalid_argument);
}

TEST(ClusterSim, HopEstimatesAreOrderedAndPreFinal) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload built = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  built.job.hopEstimates = true;
  ClusterConfig cfg;
  cfg.numNodes = 6;
  SimResult res = ClusterSim(cfg, built.job).run();
  ASSERT_EQ(res.estimates.size(), 3u);
  double prev = 0;
  for (const auto& [frac, t] : res.estimates) {
    EXPECT_GT(frac, 0.0);
    EXPECT_LT(frac, 1.0);
    EXPECT_GT(t, prev);
    prev = t;
    EXPECT_LT(t, res.firstResult) << "estimates precede the exact output";
  }
  // Snapshot work costs something: the exact answer is no earlier than
  // a plain stock run's.
  BuiltWorkload plain = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  SimResult plainRes = ClusterSim(cfg, plain.job).run();
  EXPECT_GE(res.totalTime, plainRes.totalTime);
}

TEST(ClusterSim, HopRejectedInSidrMode) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload built = buildWorkload(w, core::SystemMode::kSidr, 8);
  built.job.hopEstimates = true;
  EXPECT_THROW(ClusterSim(ClusterConfig{}, built.job).run(),
               std::invalid_argument);
}

TEST(ClusterSim, FailureInjectionRequiresSidr) {
  WorkloadSpec w = smallWorkload();
  BuiltWorkload stock = buildWorkload(w, core::SystemMode::kSciHadoop, 8);
  stock.job.failOnceReduces = {0};
  EXPECT_THROW(ClusterSim(ClusterConfig{}, stock.job).run(),
               std::invalid_argument);
}

TEST(ClusterSim, MalformedJobsRejected) {
  SimJob job;
  job.numMaps = 2;
  job.numReduces = 1;
  EXPECT_THROW(ClusterSim(ClusterConfig{}, job).run(),
               std::invalid_argument);
}

TEST(Trace, CompletionSeriesEndsAtOne) {
  std::vector<double> ends{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  CompletionSeries s = completionSeries(ends, 4);
  EXPECT_EQ(s.fractions.back(), 1.0);
  EXPECT_EQ(s.times.back(), 10.0);
  for (std::size_t i = 1; i < s.times.size(); ++i) {
    EXPECT_GE(s.times[i], s.times[i - 1]);
    EXPECT_GT(s.fractions[i], s.fractions[i - 1]);
  }
}

TEST(Trace, TimeAtFraction) {
  std::vector<double> ends{10, 20, 30, 40};
  EXPECT_EQ(timeAtFraction(ends, 0.25), 10.0);
  EXPECT_EQ(timeAtFraction(ends, 0.5), 20.0);
  EXPECT_EQ(timeAtFraction(ends, 0.51), 30.0);
  EXPECT_EQ(timeAtFraction(ends, 1.0), 40.0);
  EXPECT_THROW(timeAtFraction(ends, 0.0), std::invalid_argument);
  EXPECT_THROW(timeAtFraction(ends, 1.1), std::invalid_argument);
  EXPECT_THROW(timeAtFraction({}, 0.5), std::invalid_argument);
}

TEST(Trace, FractionStatsAcrossRuns) {
  std::vector<std::vector<double>> runs{{10, 20, 30, 40},
                                        {12, 22, 32, 42},
                                        {8, 18, 28, 38}};
  FractionStats st = fractionStats(runs, 4);
  ASSERT_EQ(st.fractions.size(), 4u);
  EXPECT_DOUBLE_EQ(st.meanTimes[0], 10.0);
  EXPECT_DOUBLE_EQ(st.meanTimes[3], 40.0);
  EXPECT_NEAR(st.stddevTimes[0], std::sqrt(8.0 / 3.0), 1e-9);
}

TEST(Trace, VarianceShrinksWithMoreReducers) {
  // Figure 12's claim, validated on the small workload across 5 seeds.
  WorkloadSpec w = smallWorkload();
  auto spread = [&](std::uint32_t r) {
    std::vector<std::vector<double>> runs;
    for (int i = 0; i < 5; ++i) {
      ClusterConfig cfg;
      cfg.mapNoiseSigma = 0.3;
      cfg.seed = 100 + static_cast<std::uint64_t>(i);
      BuiltWorkload built = buildWorkload(w, core::SystemMode::kSidr, r);
      runs.push_back(ClusterSim(cfg, built.job).run().sortedReduceEnds());
    }
    FractionStats st = fractionStats(runs, 10);
    double maxDev = 0;
    for (double d : st.stddevTimes) maxDev = std::max(maxDev, d);
    return maxDev;
  };
  EXPECT_LT(spread(32), spread(4) * 1.2)
      << "more reducers should not inflate completion variance";
}

}  // namespace
}  // namespace sidr::sim
