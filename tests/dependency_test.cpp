#include <gtest/gtest.h>

#include <set>

#include "scihadoop/split_gen.hpp"
#include "sidr/dependency.hpp"

namespace sidr::core {
namespace {

struct DepSetup {
  std::shared_ptr<const sh::ExtractionMap> extraction;
  std::shared_ptr<const PartitionPlus> plan;
  std::vector<mr::InputSplit> splits;
};

DepSetup makeSetup(const nd::Coord& input, const nd::Coord& eshape,
                std::uint32_t reducers, nd::Index bound,
                std::size_t splitCount,
                sh::EdgeMode edge = sh::EdgeMode::kTruncate) {
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = eshape;
  q.edgeMode = edge;
  DepSetup s;
  s.extraction = std::make_shared<const sh::ExtractionMap>(q, input);
  s.plan = std::make_shared<const PartitionPlus>(s.extraction, reducers, bound);
  sh::SplitOptions opts;
  opts.targetElements = sh::targetElementsForCount(input, splitCount);
  s.splits = sh::generateSplits(input, opts);
  return s;
}

/// Brute-force ground truth: run every key of every split through the
/// extraction map and partitioner.
std::vector<std::set<std::uint32_t>> bruteForceSplitToKeyblocks(
    const DepSetup& s) {
  std::vector<std::set<std::uint32_t>> result(s.splits.size());
  for (const auto& split : s.splits) {
    for (const nd::Region& region : split.regions) {
      for (nd::RegionCursor cur(region); cur.valid(); cur.next()) {
        auto g = s.extraction->instanceOf(cur.coord());
        if (g) result[split.id].insert(s.plan->keyblockOfInstance(*g));
      }
    }
  }
  return result;
}

TEST(DependencyCalculator, MatchesBruteForce) {
  DepSetup s = makeSetup(nd::Coord{56, 20}, nd::Coord{7, 5}, 4, 2, 9);
  DependencyCalculator calc(s.plan);
  auto truth = bruteForceSplitToKeyblocks(s);
  for (const auto& split : s.splits) {
    auto kbs = calc.keyblocksForSplit(split);
    std::set<std::uint32_t> got(kbs.begin(), kbs.end());
    EXPECT_EQ(got, truth[split.id]) << "split " << split.id;
  }
}

TEST(DependencyCalculator, InversionIsConsistent) {
  DepSetup s = makeSetup(nd::Coord{60, 24}, nd::Coord{5, 4}, 5, 3, 7);
  DependencyCalculator calc(s.plan);
  DependencyInfo info = calc.computeAll(s.splits);
  ASSERT_EQ(info.keyblockToSplits.size(), 5u);
  ASSERT_EQ(info.splitToKeyblocks.size(), s.splits.size());
  for (std::uint32_t kb = 0; kb < 5; ++kb) {
    for (std::uint32_t sp : info.keyblockToSplits[kb]) {
      const auto& kbs = info.splitToKeyblocks[sp];
      EXPECT_TRUE(std::find(kbs.begin(), kbs.end(), kb) != kbs.end());
    }
  }
  for (const auto& split : s.splits) {
    for (std::uint32_t kb : info.splitToKeyblocks[split.id]) {
      const auto& sps = info.keyblockToSplits[kb];
      EXPECT_TRUE(std::binary_search(sps.begin(), sps.end(), split.id));
    }
  }
}

TEST(DependencyCalculator, StoreVsRecomputeAgree) {
  // Section 3.2.1: dependencies can be stored at submission or
  // recomputed per task; both must agree.
  DepSetup s = makeSetup(nd::Coord{63, 25}, nd::Coord{7, 5}, 6, 4, 11);
  DependencyCalculator calc(s.plan);
  DependencyInfo info = calc.computeAll(s.splits);
  for (std::uint32_t kb = 0; kb < 6; ++kb) {
    EXPECT_EQ(calc.recomputeSplitsFor(kb, s.splits),
              info.keyblockToSplits[kb]);
  }
}

TEST(DependencyCalculator, IndexedRecomputeAgreesWithScratchAndStore) {
  // The indexed overload answers a recovery-time I_l query from the
  // stored splitToKeyblocks index; it must agree with both computeAll's
  // stored sets and the geometric from-scratch recomputation.
  for (std::size_t splitCount : {5u, 11u, 16u}) {
    DepSetup s = makeSetup(nd::Coord{63, 25}, nd::Coord{7, 5}, 6, 4,
                           splitCount);
    DependencyCalculator calc(s.plan);
    DependencyInfo info = calc.computeAll(s.splits);
    for (std::uint32_t kb = 0; kb < 6; ++kb) {
      auto indexed = calc.recomputeSplitsFor(kb, s.splits, info);
      EXPECT_EQ(indexed, info.keyblockToSplits[kb]) << "kb " << kb;
      EXPECT_EQ(indexed, calc.recomputeSplitsFor(kb, s.splits)) << "kb " << kb;
    }
  }
}

TEST(DependencyCalculator, ExpectedRepresentsMatchesBruteForce) {
  for (sh::EdgeMode edge : {sh::EdgeMode::kTruncate, sh::EdgeMode::kPad}) {
    DepSetup s = makeSetup(nd::Coord{23, 11}, nd::Coord{7, 5}, 3, 1, 4, edge);
    DependencyCalculator calc(s.plan);
    DependencyInfo info = calc.computeAll(s.splits);
    std::vector<std::uint64_t> truth(3, 0);
    for (nd::RegionCursor cur(nd::Region::wholeSpace(nd::Coord{23, 11}));
         cur.valid(); cur.next()) {
      auto g = s.extraction->instanceOf(cur.coord());
      if (g) ++truth[s.plan->keyblockOfInstance(*g)];
    }
    EXPECT_EQ(info.expectedRepresents, truth);
  }
}

TEST(DependencyCalculator, AlignedSplitsHaveDisjointDependencies) {
  // When split boundaries align with extraction cells and keyblock
  // boundaries, each keyblock depends only on its own splits (the
  // figure 8(b) picture: keyblock 0 only needs the first half).
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5};
  auto ex = std::make_shared<const sh::ExtractionMap>(q, nd::Coord{56, 20});
  auto plan = std::make_shared<const PartitionPlus>(ex, 2, 16);
  sh::SplitOptions opts;
  opts.targetElements = 14 * 20;  // 2 weeks per split, aligned
  auto splits = sh::generateSplits(nd::Coord{56, 20}, *ex, opts);
  ASSERT_EQ(splits.size(), 4u);
  DependencyCalculator calc(plan);
  DependencyInfo info = calc.computeAll(splits);
  EXPECT_EQ(info.keyblockToSplits[0],
            (std::vector<std::uint32_t>{0, 1}));
  EXPECT_EQ(info.keyblockToSplits[1],
            (std::vector<std::uint32_t>{2, 3}));
  EXPECT_EQ(info.totalConnections(), 4u);
}

TEST(DependencyCalculator, MisalignedSplitsOverlapByOne) {
  // Splits that straddle a keyblock boundary appear in both I_l sets.
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 1};
  auto ex = std::make_shared<const sh::ExtractionMap>(q, nd::Coord{20, 4});
  auto plan = std::make_shared<const PartitionPlus>(ex, 2, 1);
  sh::SplitOptions opts;
  opts.targetElements = 3 * 4;  // 3-row splits: misaligned with eshape 2
  auto splits = sh::generateSplits(nd::Coord{20, 4}, opts);
  DependencyCalculator calc(plan);
  DependencyInfo info = calc.computeAll(splits);
  std::uint64_t total = info.totalConnections();
  // More than the disjoint minimum (7 splits), less than global (14).
  EXPECT_GT(total, splits.size());
  EXPECT_LT(total, 2 * splits.size());
}

TEST(DependencyCalculator, SplitInTruncatedTailHasNoKeyblocks) {
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5};
  auto ex = std::make_shared<const sh::ExtractionMap>(q, nd::Coord{60, 20});
  auto plan = std::make_shared<const PartitionPlus>(ex, 2, 4);
  DependencyCalculator calc(plan);
  // Rows 56..59 are beyond the last full week (weeks end at row 55).
  EXPECT_TRUE(calc.keyblocksForSplit(
                      nd::Region(nd::Coord{56, 0}, nd::Coord{4, 20}))
                  .empty());
}

TEST(DependencyCalculator, Table3ConnectionScaling) {
  // Shape check for Table 3: stock connections are maps x reduces;
  // SIDR connections grow by at most (overlap) and stay near the split
  // count as r grows.
  DepSetup s = makeSetup(nd::Coord{360, 36, 20}, nd::Coord{2, 36, 10}, 2, 0, 90);
  std::uint64_t prev = 0;
  for (std::uint32_t r : {2u, 4u, 8u, 16u}) {
    auto plan = std::make_shared<const PartitionPlus>(s.extraction, r, 0);
    DependencyCalculator calc(plan);
    DependencyInfo info = calc.computeAll(s.splits);
    std::uint64_t sidrConn = info.totalConnections();
    std::uint64_t stockConn = s.splits.size() * r;
    EXPECT_LT(sidrConn, stockConn);
    EXPECT_GE(sidrConn, s.splits.size());  // every split fetched >= once
    EXPECT_GE(sidrConn, prev);             // grows (slowly) with r
    prev = sidrConn;
    // Near-flat growth: well under 2 fetches per split even at r=16.
    EXPECT_LT(sidrConn, 2 * s.splits.size());
  }
}

}  // namespace
}  // namespace sidr::core
