// Subset queries: a structural query addressed to a coordinate range of
// the input ("requesting all of the data for a given range of
// coordinates", paper section 2.4.2). Extraction instances tile the
// subset from its corner; everything outside it produces nothing.
#include <gtest/gtest.h>

#include "mapreduce/engine.hpp"
#include "scihadoop/query_parser.hpp"
#include "sidr/planner.hpp"

namespace sidr::core {
namespace {

sh::StructuralQuery subsetQuery() {
  // Weeks 2..6 of a limited latitude band.
  sh::StructuralQuery q;
  q.variable = "temperature";
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5};
  q.subset = nd::Region(nd::Coord{14, 10}, nd::Coord{28, 15});
  return q;
}

TEST(SubsetQuery, DomainAndGrid) {
  sh::ExtractionMap ex(subsetQuery(), nd::Coord{70, 40});
  EXPECT_EQ(ex.domain().corner(), (nd::Coord{14, 10}));
  EXPECT_EQ(ex.domain().shape(), (nd::Coord{28, 15}));
  EXPECT_EQ(ex.instanceGridShape(), (nd::Coord{4, 3}));
}

TEST(SubsetQuery, KeysOutsideSubsetProduceNothing) {
  sh::ExtractionMap ex(subsetQuery(), nd::Coord{70, 40});
  EXPECT_FALSE(ex.keyFor(nd::Coord{0, 0}).has_value());
  EXPECT_FALSE(ex.keyFor(nd::Coord{13, 12}).has_value());  // before corner
  EXPECT_FALSE(ex.keyFor(nd::Coord{42, 9}).has_value());   // lat too low
  auto kp = ex.keyFor(nd::Coord{14, 10});  // the subset corner
  ASSERT_TRUE(kp.has_value());
  EXPECT_EQ(*kp, (nd::Coord{0, 0}));
  auto kp2 = ex.keyFor(nd::Coord{21, 16});
  ASSERT_TRUE(kp2.has_value());
  EXPECT_EQ(*kp2, (nd::Coord{1, 1}));
}

TEST(SubsetQuery, CellsLiveInOriginalCoordinates) {
  sh::ExtractionMap ex(subsetQuery(), nd::Coord{70, 40});
  nd::Region cell = ex.cellOf(nd::Coord{0, 0});
  EXPECT_EQ(cell.corner(), (nd::Coord{14, 10}));
  EXPECT_EQ(cell.shape(), (nd::Coord{7, 5}));
  // Every cell lies inside the domain.
  for (nd::RegionCursor g(nd::Region::wholeSpace(ex.instanceGridShape()));
       g.valid(); g.next()) {
    EXPECT_TRUE(ex.domain().containsRegion(ex.cellOf(g.coord())));
  }
}

TEST(SubsetQuery, InstanceRangeClipsToDomain) {
  sh::ExtractionMap ex(subsetQuery(), nd::Coord{70, 40});
  // A region entirely before the subset.
  EXPECT_FALSE(ex.instanceRangeOf(nd::Region(nd::Coord{0, 0},
                                             nd::Coord{10, 10}))
                   .has_value());
  // The whole space touches exactly the full grid.
  auto all =
      ex.instanceRangeOf(nd::Region::wholeSpace(nd::Coord{70, 40}));
  ASSERT_TRUE(all.has_value());
  EXPECT_EQ(all->shape(), ex.instanceGridShape());
}

TEST(SubsetQuery, PreserveCoordsKeysOffsetByCorner) {
  sh::StructuralQuery q = subsetQuery();
  q.keyMode = sh::KeyMode::kPreserveCoords;
  sh::ExtractionMap ex(q, nd::Coord{70, 40});
  EXPECT_EQ(ex.keyForInstance(nd::Coord{0, 0}), (nd::Coord{14, 10}));
  EXPECT_EQ(ex.keyForInstance(nd::Coord{2, 1}), (nd::Coord{28, 15}));
  EXPECT_EQ(ex.instanceForKey(nd::Coord{28, 15}), (nd::Coord{2, 1}));
}

TEST(SubsetQuery, PlannerSplitsCoverExactlyTheSubset) {
  QueryPlanner planner(subsetQuery(), nd::Coord{70, 40});
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 4;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  nd::Region domain = plan.extraction->domain();
  std::int64_t covered = 0;
  for (const auto& split : plan.spec.splits) {
    for (const auto& region : split.regions) {
      EXPECT_TRUE(domain.containsRegion(region));
      covered += region.volume();
    }
  }
  EXPECT_EQ(covered, domain.volume());
}

TEST(SubsetQuery, EngineMatchesOracle) {
  sh::StructuralQuery q = subsetQuery();
  sh::ValueFn fn = sh::temperatureField(37);
  QueryPlanner planner(q, nd::Coord{70, 40});
  for (SystemMode system : {SystemMode::kSciHadoop, SystemMode::kSidr}) {
    PlanOptions opts;
    opts.system = system;
    opts.numReducers = 3;
    opts.desiredSplitCount = 5;
    QueryPlan plan = planner.plan(fn, opts);
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.annotationViolations, 0u);

    sh::ExtractionMap ex(q, nd::Coord{70, 40});
    std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, ex, fn);
    std::vector<mr::KeyValue> got = result.collectAll();
    ASSERT_EQ(got.size(), oracle.size());
    ASSERT_EQ(got.size(), 12u);  // the 4x3 instance grid
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].key, oracle[i].key);
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(),
                  1e-9);
    }
  }
}

TEST(SubsetQuery, ParserSubsetSyntax) {
  sh::StructuralQuery q = sh::parseQuery(
      "mean(temperature[14:42, 10:25], eshape={7,5})");
  ASSERT_TRUE(q.subset.has_value());
  EXPECT_EQ(q.subset->corner(), (nd::Coord{14, 10}));
  EXPECT_EQ(q.subset->shape(), (nd::Coord{28, 15}));
  // Round trip.
  sh::StructuralQuery back = sh::parseQuery(sh::toQueryString(q));
  EXPECT_EQ(back.subset, q.subset);
  // Errors.
  EXPECT_THROW(sh::parseQuery("mean(v[5:5], eshape={1})"),
               std::invalid_argument);
  EXPECT_THROW(sh::parseQuery("mean(v[5:], eshape={1})"),
               std::invalid_argument);
  EXPECT_THROW(sh::parseQuery("mean(v[5:9, eshape={1})"),
               std::invalid_argument);
}

TEST(SubsetQuery, SubsetOutsideInputRejected) {
  sh::StructuralQuery q = subsetQuery();
  EXPECT_THROW(sh::ExtractionMap(q, nd::Coord{30, 20}),
               std::invalid_argument);
  // eshape larger than the subset extent.
  q.subset = nd::Region(nd::Coord{0, 0}, nd::Coord{5, 4});
  EXPECT_THROW(sh::ExtractionMap(q, nd::Coord{70, 40}),
               std::invalid_argument);
}

}  // namespace
}  // namespace sidr::core
