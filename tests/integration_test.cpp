// End-to-end integration: a real on-disk SNDF dataset flows through
// coordinate splits, the SIDR engine (with segments spilled to real
// map-output files), and back out as dense contiguous SNDF chunks that
// reassemble into the oracle answer. Every storage and runtime layer of
// the library participates.
#include <gtest/gtest.h>

#include <filesystem>

#include "scifile/cdl.hpp"
#include "scihadoop/query_parser.hpp"
#include "sidr/sidr.hpp"
#include "sim/workload.hpp"

namespace sidr {
namespace {

namespace fs = std::filesystem;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "sidr_integration";
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  fs::path dir_;
};

TEST_F(IntegrationTest, FileDatasetThroughEngineToChunksAndBack) {
  // --- 1. Create an on-disk dataset from a CDL schema. ---
  sci::Metadata meta = sci::parseCdl(
      "dimensions:\n"
      "  time = 42;\n"
      "  lat = 20;\n"
      "  lon = 10;\n"
      "variables:\n"
      "  float temperature(time, lat, lon);\n");
  nd::Coord inputShape = meta.variableShape(0);
  sh::ValueFn fn = sh::temperatureField(31);
  auto storage = std::make_shared<sci::FileStorage>(
      path("input.sndf"), sci::FileStorage::Mode::kCreate);
  {
    sci::Dataset ds = sci::Dataset::create(storage, meta);
    sh::fillDataset(ds, 0, fn);
    storage->flush();
  }

  // --- 2. Plan and run a weekly-mean query with SIDR, spilling map
  // output to real segment files. ---
  sh::StructuralQuery q = sh::parseQuery("mean(temperature, eshape={7,5,2})");
  auto dataset = std::make_shared<sci::Dataset>(sci::Dataset::open(
      std::make_shared<sci::FileStorage>(path("input.sndf"),
                                         sci::FileStorage::Mode::kOpenReadOnly)));
  core::QueryPlanner planner(q, inputShape);
  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 7;
  core::QueryPlan plan = planner.plan(dataset, 0, opts);
  plan.spec.spillDirectory = path("spill");
  auto partitionPlus = plan.partitionPlus;
  auto extraction = plan.extraction;
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  EXPECT_EQ(result.annotationViolations, 0u);

  // The values flowed through float32 on disk; compare against an
  // oracle over the same truncated precision.
  sh::ValueFn f32 = [fn](const nd::Coord& c) {
    return static_cast<double>(static_cast<float>(fn(c)));
  };
  sh::ExtractionMap exm(q, inputShape);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, exm, f32);

  // --- 3. Write each keyblock as dense chunks and reassemble. ---
  std::vector<std::pair<nd::Coord, double>> reassembled;
  for (const mr::ReduceOutput& out : result.outputs) {
    if (out.records.empty()) continue;
    auto regions = partitionPlus->keyblockRegions(out.keyblock);
    std::size_t consumed = 0;
    for (std::size_t i = 0; i < regions.size(); ++i) {
      std::vector<double> values;
      for (nd::Index k = 0; k < regions[i].volume(); ++k) {
        values.push_back(out.records[consumed + static_cast<std::size_t>(k)]
                             .value.asScalar());
      }
      consumed += values.size();
      std::string chunkPath = path("out_kb" + std::to_string(out.keyblock) +
                                   "_" + std::to_string(i) + ".sndf");
      sci::writeDenseChunk(chunkPath, "weekly_mean", sci::DataType::kFloat64,
                           extraction->instanceGridShape(), regions[i],
                           values);

      // Read the chunk back and expand to (coordinate, value) pairs.
      auto [origin, back] = sci::readDenseChunk(chunkPath, "weekly_mean");
      EXPECT_EQ(origin, regions[i].corner());
      std::size_t j = 0;
      for (nd::RegionCursor cur(regions[i]); cur.valid(); cur.next()) {
        reassembled.emplace_back(cur.coord(), back[j++]);
      }
    }
    EXPECT_EQ(consumed, out.records.size());
  }
  std::sort(reassembled.begin(), reassembled.end());

  // --- 4. The reassembled chunks ARE the oracle answer. ---
  ASSERT_EQ(reassembled.size(), oracle.size());
  for (std::size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(reassembled[i].first, oracle[i].key);
    EXPECT_NEAR(reassembled[i].second, oracle[i].value.asScalar(), 1e-6);
  }

  // Spill files were really created (one per map x keyblock).
  std::size_t segFiles = 0;
  for (const auto& entry : fs::recursive_directory_iterator(path("spill"))) {
    if (entry.is_regular_file()) ++segFiles;
  }
  EXPECT_EQ(segFiles, 7u * 3u);
}

TEST_F(IntegrationTest, SimAndEngineAgreeOnConnections) {
  // The simulator and the real engine must derive identical SIDR
  // shuffle-connection counts from the same geometry — they share the
  // DependencyCalculator, and the engine actually performs the fetches.
  sh::StructuralQuery q =
      sh::parseQuery("median(windspeed, eshape={2,6,6,2})");
  nd::Coord inputShape{48, 12, 12, 4};

  core::QueryPlanner planner(q, inputShape);
  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 5;
  opts.desiredSplitCount = 12;
  core::QueryPlan plan = planner.plan(sh::windspeedField(), opts);
  std::uint64_t expected = plan.dependencies.totalConnections();
  mr::JobResult engineResult = mr::Engine(std::move(plan.spec)).run();
  EXPECT_EQ(engineResult.shuffleConnections, expected);

  sim::WorkloadSpec w;
  w.query = q;
  w.inputShape = inputShape;
  w.numSplits = 12;
  sim::BuiltWorkload built =
      sim::buildWorkload(w, core::SystemMode::kSidr, 5);
  sim::SimResult simResult =
      sim::ClusterSim(sim::ClusterConfig{}, built.job).run();
  EXPECT_EQ(simResult.shuffleConnections, expected);
}

}  // namespace
}  // namespace sidr
