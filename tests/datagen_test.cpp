#include <gtest/gtest.h>

#include <cmath>

#include "scihadoop/datagen.hpp"

namespace sidr::sh {
namespace {

TEST(Datagen, FieldsAreDeterministic) {
  ValueFn a = temperatureField(5);
  ValueFn b = temperatureField(5);
  ValueFn c = temperatureField(6);
  bool anyDiffer = false;
  for (nd::Index i = 0; i < 50; ++i) {
    nd::Coord coord{i, i % 7, i % 11};
    EXPECT_EQ(a(coord), b(coord));
    if (a(coord) != c(coord)) anyDiffer = true;
  }
  EXPECT_TRUE(anyDiffer) << "seeds must change the field";
}

TEST(Datagen, TemperatureFieldPlausibleRange) {
  ValueFn t = temperatureField();
  for (nd::RegionCursor cur(
           nd::Region::wholeSpace(nd::Coord{20, 20, 20}));
       cur.valid(); cur.next()) {
    double v = t(cur.coord());
    EXPECT_GT(v, -40.0);
    EXPECT_LT(v, 60.0);
  }
}

TEST(Datagen, TemperatureFieldHasSeasonalSwing) {
  ValueFn t = temperatureField();
  // Winter (day 0) vs summer (day ~91, peak of the sine) at a fixed
  // location should differ by several degrees.
  double jan = t(nd::Coord{0, 100, 100});
  double apr = t(nd::Coord{91, 100, 100});
  EXPECT_GT(apr - jan, 5.0);
}

TEST(Datagen, WindspeedNonNegativeAndAltitudeTrend) {
  ValueFn w = windspeedField();
  double sumLow = 0;
  double sumHigh = 0;
  for (nd::Index i = 0; i < 200; ++i) {
    nd::Coord low{i, 3, 5, 0};
    nd::Coord high{i, 3, 5, 49};
    EXPECT_GE(w(low), 0.0);
    sumLow += w(low);
    sumHigh += w(high);
  }
  EXPECT_GT(sumHigh, sumLow) << "wind speeds rise with elevation";
}

TEST(Datagen, NormalFieldMoments) {
  ValueFn n = normalField(10.0, 2.0);
  double sum = 0;
  double sumSq = 0;
  const nd::Coord shape{40, 40, 40};
  for (nd::RegionCursor cur(nd::Region::wholeSpace(shape)); cur.valid();
       cur.next()) {
    double v = n(cur.coord());
    sum += v;
    sumSq += v * v;
  }
  auto count = static_cast<double>(shape.volume());
  double mean = sum / count;
  double stddev = std::sqrt(sumSq / count - mean * mean);
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(stddev, 2.0, 0.05);
}

TEST(Datagen, NormalFieldTailProbability) {
  // The Query 2 premise: ~0.135% of values exceed 3 sigma.
  ValueFn n = normalField(0.0, 1.0);
  std::int64_t above = 0;
  const nd::Coord shape{60, 60, 60};
  for (nd::RegionCursor cur(nd::Region::wholeSpace(shape)); cur.valid();
       cur.next()) {
    if (n(cur.coord()) > 3.0) ++above;
  }
  double frac = static_cast<double>(above) /
                static_cast<double>(shape.volume());
  EXPECT_GT(frac, 0.0005);
  EXPECT_LT(frac, 0.0035);
}

TEST(Datagen, TemperatureMetadataMatchesFigure1) {
  sci::Metadata meta = temperatureMetadata();
  EXPECT_EQ(meta.dimensions().size(), 3u);
  EXPECT_EQ(meta.variableShape(0), (nd::Coord{365, 250, 200}));
  EXPECT_EQ(meta.variable(0).name, "temperature");
  EXPECT_EQ(meta.variable(0).type, sci::DataType::kInt32);
}

TEST(Datagen, MakeMemoryDatasetRoundTrip) {
  ValueFn fn = [](const nd::Coord& c) {
    return static_cast<double>(c[0] * 10 + c[1]);
  };
  auto ds = makeMemoryDataset("v", sci::DataType::kFloat64,
                              nd::Coord{5, 4}, fn);
  auto values =
      ds->readRegion(0, nd::Region::wholeSpace(nd::Coord{5, 4}));
  std::size_t i = 0;
  for (nd::RegionCursor cur(nd::Region::wholeSpace(nd::Coord{5, 4}));
       cur.valid(); cur.next()) {
    EXPECT_EQ(values[i++], fn(cur.coord()));
  }
}

TEST(Datagen, ArrayMetadataShapes) {
  sci::Metadata meta =
      arrayMetadata("wind", sci::DataType::kFloat32, nd::Coord{7, 8, 9});
  EXPECT_EQ(meta.variableShape(0), (nd::Coord{7, 8, 9}));
  EXPECT_EQ(meta.dimensions()[1].name, "dim1");
}

}  // namespace
}  // namespace sidr::sh
