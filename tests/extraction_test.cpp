#include <gtest/gtest.h>

#include "scihadoop/extraction.hpp"

namespace sidr::sh {
namespace {

StructuralQuery weeklyQuery() {
  // Paper section 3, Area 2/3 running example: weekly averages that
  // also down-sample latitude from 1/10 deg to 1/2 deg over the
  // {365, 250, 200} temperature dataset -> eshape {7, 5, 1}.
  StructuralQuery q;
  q.variable = "temperature";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5, 1};
  return q;
}

TEST(ExtractionMap, PaperKeyTranslation) {
  ExtractionMap ex(weeklyQuery(), nd::Coord{365, 250, 200});
  // "an arbitrary key in K, say {157,34,82}, maps to {22,6,82} in K'".
  auto kp = ex.keyFor(nd::Coord{157, 34, 82});
  ASSERT_TRUE(kp.has_value());
  EXPECT_EQ(*kp, (nd::Coord{22, 6, 82}));
}

TEST(ExtractionMap, PaperIntermediateSpace) {
  ExtractionMap ex(weeklyQuery(), nd::Coord{365, 250, 200});
  // "{52, 50, 200} K'^T ... assuming we throw away the 365-th day".
  EXPECT_EQ(ex.instanceGridShape(), (nd::Coord{52, 50, 200}));
  EXPECT_EQ(ex.instanceCount(), 52LL * 50 * 200);
  EXPECT_EQ(ex.intermediateSpaceShape(), (nd::Coord{52, 50, 200}));
}

TEST(ExtractionMap, TruncateDropsRaggedTail) {
  ExtractionMap ex(weeklyQuery(), nd::Coord{365, 250, 200});
  // Day 364 (the 365th) belongs to no instance in truncate mode.
  EXPECT_FALSE(ex.keyFor(nd::Coord{364, 0, 0}).has_value());
  EXPECT_TRUE(ex.keyFor(nd::Coord{363, 0, 0}).has_value());
}

TEST(ExtractionMap, PadKeepsRaggedTail) {
  StructuralQuery q = weeklyQuery();
  q.edgeMode = EdgeMode::kPad;
  ExtractionMap ex(q, nd::Coord{365, 250, 200});
  EXPECT_EQ(ex.instanceGridShape(), (nd::Coord{53, 50, 200}));
  auto kp = ex.keyFor(nd::Coord{364, 0, 0});
  ASSERT_TRUE(kp.has_value());
  EXPECT_EQ(*kp, (nd::Coord{52, 0, 0}));
  // The edge cell is clipped to one day.
  EXPECT_EQ(ex.cellVolume(nd::Coord{52, 0, 0}), 1 * 5 * 1);
  EXPECT_EQ(ex.cellVolume(nd::Coord{0, 0, 0}), 7 * 5 * 1);
}

TEST(ExtractionMap, Query1Geometry) {
  // Paper Query 1: {7200,360,720,50} with eshape {2,36,36,10}.
  StructuralQuery q;
  q.op = OperatorKind::kMedian;
  q.extractionShape = nd::Coord{2, 36, 36, 10};
  ExtractionMap ex(q, nd::Coord{7200, 360, 720, 50});
  EXPECT_EQ(ex.instanceGridShape(), (nd::Coord{3600, 10, 20, 5}));
}

TEST(ExtractionMap, UpSamplingOneToMany) {
  // Figure 6(a): one K value maps into multiple K' values is modelled
  // as an eshape of 1s over a smaller grid (each input key is its own
  // cell); SIDR's mapping itself is many-to-one or one-to-one, so an
  // eshape of {1,1} gives the identity grid.
  StructuralQuery q;
  q.op = OperatorKind::kSum;
  q.extractionShape = nd::Coord{1, 1};
  ExtractionMap ex(q, nd::Coord{4, 4});
  EXPECT_EQ(ex.instanceGridShape(), (nd::Coord{4, 4}));
  EXPECT_EQ(*ex.keyFor(nd::Coord{3, 2}), (nd::Coord{3, 2}));
}

TEST(ExtractionMap, StrideGapsProduceNoKeys) {
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2};
  q.stride = nd::Coord{5};
  ExtractionMap ex(q, nd::Coord{23});
  // Instances at 0-1, 5-6, 10-11, 15-16, 20-21.
  EXPECT_EQ(ex.instanceGridShape(), (nd::Coord{5}));
  EXPECT_TRUE(ex.keyFor(nd::Coord{6}).has_value());
  EXPECT_FALSE(ex.keyFor(nd::Coord{7}).has_value());   // gap
  EXPECT_FALSE(ex.keyFor(nd::Coord{22}).has_value());  // truncated tail
  EXPECT_EQ(*ex.instanceOf(nd::Coord{21}), (nd::Coord{4}));
}

TEST(ExtractionMap, PreserveCoordsKeyMode) {
  // Strided selection keeping original coordinates: every intermediate
  // key becomes even -> the figure 13 skew pathology.
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{1, 1};
  q.stride = nd::Coord{2, 2};
  q.keyMode = KeyMode::kPreserveCoords;
  ExtractionMap ex(q, nd::Coord{8, 8});
  auto kp = ex.keyFor(nd::Coord{4, 6});
  ASSERT_TRUE(kp.has_value());
  EXPECT_EQ(*kp, (nd::Coord{4, 6}));
  EXPECT_EQ(ex.intermediateSpaceShape(), (nd::Coord{8, 8}));
  EXPECT_EQ(ex.instanceForKey(nd::Coord{4, 6}), (nd::Coord{2, 3}));
  for (nd::Index i = 0; i < 4; ++i) {
    nd::Coord key = ex.keyForInstance(nd::Coord{i, i});
    EXPECT_EQ(key[0] % 2, 0) << "preserved keys must be even";
  }
}

TEST(ExtractionMap, CellOfMatchesInstanceMembership) {
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{3, 2};
  ExtractionMap ex(q, nd::Coord{10, 7});
  for (nd::RegionCursor g(nd::Region::wholeSpace(ex.instanceGridShape()));
       g.valid(); g.next()) {
    nd::Region cell = ex.cellOf(g.coord());
    for (nd::RegionCursor c(cell); c.valid(); c.next()) {
      auto inst = ex.instanceOf(c.coord());
      ASSERT_TRUE(inst.has_value());
      EXPECT_EQ(*inst, g.coord());
    }
  }
}

TEST(ExtractionMap, InstanceRangeOfWholeSpace) {
  ExtractionMap ex(weeklyQuery(), nd::Coord{365, 250, 200});
  auto range =
      ex.instanceRangeOf(nd::Region::wholeSpace(nd::Coord{365, 250, 200}));
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->corner(), nd::Coord::zeros(3));
  EXPECT_EQ(range->shape(), ex.instanceGridShape());
}

TEST(ExtractionMap, InstanceRangeOfSlab) {
  ExtractionMap ex(weeklyQuery(), nd::Coord{365, 250, 200});
  // Days 7..13 are exactly week 1.
  auto range = ex.instanceRangeOf(
      nd::Region(nd::Coord{7, 0, 0}, nd::Coord{7, 250, 200}));
  ASSERT_TRUE(range.has_value());
  EXPECT_EQ(range->corner()[0], 1);
  EXPECT_EQ(range->shape()[0], 1);
  // Days 6..7 straddle weeks 0 and 1.
  auto straddle = ex.instanceRangeOf(
      nd::Region(nd::Coord{6, 0, 0}, nd::Coord{2, 250, 200}));
  ASSERT_TRUE(straddle.has_value());
  EXPECT_EQ(straddle->corner()[0], 0);
  EXPECT_EQ(straddle->shape()[0], 2);
}

TEST(ExtractionMap, InstanceRangeOfTruncatedTailIsEmpty) {
  ExtractionMap ex(weeklyQuery(), nd::Coord{365, 250, 200});
  auto range = ex.instanceRangeOf(
      nd::Region(nd::Coord{364, 0, 0}, nd::Coord{1, 250, 200}));
  EXPECT_FALSE(range.has_value());
}

TEST(ExtractionMap, InstanceRangeOfGapIsEmpty) {
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2};
  q.stride = nd::Coord{5};
  ExtractionMap ex(q, nd::Coord{23});
  EXPECT_FALSE(
      ex.instanceRangeOf(nd::Region(nd::Coord{7}, nd::Coord{3})).has_value());
  auto r = ex.instanceRangeOf(nd::Region(nd::Coord{7}, nd::Coord{4}));
  ASSERT_TRUE(r.has_value());  // reaches key 10 = instance 2
  EXPECT_EQ(r->corner(), (nd::Coord{2}));
  EXPECT_EQ(r->shape(), (nd::Coord{1}));
}

TEST(ExtractionMap, ValidationErrors) {
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5};
  EXPECT_THROW(ExtractionMap(q, nd::Coord{365, 250, 200}),
               std::invalid_argument);
  q.extractionShape = nd::Coord{400, 5, 1};
  EXPECT_THROW(ExtractionMap(q, nd::Coord{365, 250, 200}),
               std::invalid_argument);
  q.extractionShape = nd::Coord{7, 5, 1};
  q.stride = nd::Coord{6, 5, 1};  // stride < eshape
  EXPECT_THROW(ExtractionMap(q, nd::Coord{365, 250, 200}),
               std::invalid_argument);
}

TEST(ExtractionMap, IsDistributiveClassification) {
  EXPECT_TRUE(isDistributive(OperatorKind::kMean));
  EXPECT_TRUE(isDistributive(OperatorKind::kSum));
  EXPECT_TRUE(isDistributive(OperatorKind::kMin));
  EXPECT_TRUE(isDistributive(OperatorKind::kMax));
  EXPECT_TRUE(isDistributive(OperatorKind::kCount));
  EXPECT_FALSE(isDistributive(OperatorKind::kMedian));
  EXPECT_FALSE(isDistributive(OperatorKind::kFilter));
}

// Property sweep: every input key either maps to the instance whose cell
// contains it, or to nothing; and instanceRangeOf agrees with the
// per-key mapping.
struct SweepCase {
  nd::Coord input;
  nd::Coord eshape;
  std::optional<nd::Coord> stride;
  EdgeMode edge;
};

class ExtractionSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ExtractionSweep, KeyMappingConsistent) {
  const SweepCase& tc = GetParam();
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = tc.eshape;
  q.stride = tc.stride;
  q.edgeMode = tc.edge;
  ExtractionMap ex(q, tc.input);

  std::int64_t mapped = 0;
  for (nd::RegionCursor cur(nd::Region::wholeSpace(tc.input)); cur.valid();
       cur.next()) {
    auto g = ex.instanceOf(cur.coord());
    if (g) {
      ++mapped;
      EXPECT_TRUE(ex.cellOf(*g).contains(cur.coord()));
    }
  }
  // Total mapped keys == sum of cell volumes.
  std::int64_t cellSum = 0;
  for (nd::RegionCursor g(nd::Region::wholeSpace(ex.instanceGridShape()));
       g.valid(); g.next()) {
    cellSum += ex.cellVolume(g.coord());
  }
  EXPECT_EQ(mapped, cellSum);
}

TEST_P(ExtractionSweep, RegionRangeMatchesBruteForce) {
  const SweepCase& tc = GetParam();
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = tc.eshape;
  q.stride = tc.stride;
  q.edgeMode = tc.edge;
  ExtractionMap ex(q, tc.input);

  // A few probe regions, including edges.
  std::vector<nd::Region> probes;
  probes.push_back(nd::Region::wholeSpace(tc.input));
  nd::Coord half = tc.input;
  for (std::size_t d = 0; d < half.rank(); ++d) {
    half[d] = std::max<nd::Index>(1, half[d] / 2);
  }
  probes.emplace_back(nd::Coord::zeros(tc.input.rank()), half);
  probes.emplace_back(tc.input.minus(half), half);

  for (const nd::Region& probe : probes) {
    auto range = ex.instanceRangeOf(probe);
    // Brute force: instances whose cells intersect the probe.
    std::vector<nd::Coord> touched;
    for (nd::RegionCursor g(nd::Region::wholeSpace(ex.instanceGridShape()));
         g.valid(); g.next()) {
      if (ex.cellOf(g.coord()).overlaps(probe)) touched.push_back(g.coord());
    }
    if (touched.empty()) {
      EXPECT_FALSE(range.has_value());
    } else {
      ASSERT_TRUE(range.has_value());
      for (const nd::Coord& g : touched) {
        EXPECT_TRUE(range->contains(g));
      }
      // The analytic range must not be larger than the bounding box of
      // the brute-force set (tight per dimension).
      nd::Coord lo = touched.front();
      nd::Coord hi = touched.front();
      for (const nd::Coord& g : touched) {
        lo = lo.min(g);
        hi = hi.max(g);
      }
      EXPECT_EQ(range->corner(), lo);
      EXPECT_EQ(range->last(), hi);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ExtractionSweep,
    ::testing::Values(
        SweepCase{nd::Coord{21, 10}, nd::Coord{7, 5}, std::nullopt,
                  EdgeMode::kTruncate},
        SweepCase{nd::Coord{23, 11}, nd::Coord{7, 5}, std::nullopt,
                  EdgeMode::kTruncate},
        SweepCase{nd::Coord{23, 11}, nd::Coord{7, 5}, std::nullopt,
                  EdgeMode::kPad},
        SweepCase{nd::Coord{20}, nd::Coord{2}, nd::Coord{5},
                  EdgeMode::kTruncate},
        SweepCase{nd::Coord{22}, nd::Coord{2}, nd::Coord{5}, EdgeMode::kPad},
        SweepCase{nd::Coord{12, 9, 8}, nd::Coord{3, 2, 4}, std::nullopt,
                  EdgeMode::kTruncate},
        SweepCase{nd::Coord{13, 9, 9}, nd::Coord{3, 2, 4}, std::nullopt,
                  EdgeMode::kPad},
        SweepCase{nd::Coord{16, 16}, nd::Coord{1, 1}, nd::Coord{2, 2},
                  EdgeMode::kTruncate}));

}  // namespace
}  // namespace sidr::sh
