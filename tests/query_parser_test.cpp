#include <gtest/gtest.h>

#include "scihadoop/query_parser.hpp"

namespace sidr::sh {
namespace {

TEST(QueryParser, PaperQuery1) {
  StructuralQuery q = parseQuery("median(windspeed, eshape={2,36,36,10})");
  EXPECT_EQ(q.op, OperatorKind::kMedian);
  EXPECT_EQ(q.variable, "windspeed");
  EXPECT_EQ(q.extractionShape, (nd::Coord{2, 36, 36, 10}));
  EXPECT_FALSE(q.stride.has_value());
  EXPECT_EQ(q.edgeMode, EdgeMode::kTruncate);
  EXPECT_EQ(q.keyMode, KeyMode::kRenumber);
}

TEST(QueryParser, PaperQuery2WithThreshold) {
  StructuralQuery q = parseQuery(
      "filter(measurements, eshape={2,40,40,10}, threshold=3.0)");
  EXPECT_EQ(q.op, OperatorKind::kFilter);
  EXPECT_DOUBLE_EQ(q.filterThreshold, 3.0);
}

TEST(QueryParser, AllOperators) {
  for (auto [name, kind] :
       {std::pair{"mean", OperatorKind::kMean},
        std::pair{"sum", OperatorKind::kSum},
        std::pair{"min", OperatorKind::kMin},
        std::pair{"max", OperatorKind::kMax},
        std::pair{"count", OperatorKind::kCount},
        std::pair{"range", OperatorKind::kRange},
        std::pair{"median", OperatorKind::kMedian},
        std::pair{"filter", OperatorKind::kFilter},
        std::pair{"sort", OperatorKind::kSort}}) {
    StructuralQuery q =
        parseQuery(std::string(name) + "(v, eshape={2,2})");
    EXPECT_EQ(q.op, kind) << name;
  }
}

TEST(QueryParser, AllModifiers) {
  StructuralQuery q = parseQuery(
      "mean(samples, eshape={2,2}, stride={4,4}, edge=pad, keys=preserve, "
      "skew=1000)");
  ASSERT_TRUE(q.stride.has_value());
  EXPECT_EQ(*q.stride, (nd::Coord{4, 4}));
  EXPECT_EQ(q.edgeMode, EdgeMode::kPad);
  EXPECT_EQ(q.keyMode, KeyMode::kPreserveCoords);
  EXPECT_EQ(q.skewBound, 1000);
}

TEST(QueryParser, WhitespaceTolerant) {
  StructuralQuery q = parseQuery(
      "  mean ( temperature ,  eshape = { 7 , 5 , 1 } )  ");
  EXPECT_EQ(q.variable, "temperature");
  EXPECT_EQ(q.extractionShape, (nd::Coord{7, 5, 1}));
}

TEST(QueryParser, NegativeAndScientificNumbers) {
  EXPECT_DOUBLE_EQ(
      parseQuery("filter(v, eshape={2}, threshold=-1.5)").filterThreshold,
      -1.5);
  EXPECT_DOUBLE_EQ(
      parseQuery("filter(v, eshape={2}, threshold=2.5e-3)").filterThreshold,
      0.0025);
}

TEST(QueryParser, Errors) {
  EXPECT_THROW(parseQuery(""), std::invalid_argument);
  EXPECT_THROW(parseQuery("frobnicate(v, eshape={2})"),
               std::invalid_argument);
  EXPECT_THROW(parseQuery("mean(v)"), std::invalid_argument);  // no eshape
  EXPECT_THROW(parseQuery("mean(v, eshape={2}"), std::invalid_argument);
  EXPECT_THROW(parseQuery("mean(v, eshape={2}) trailing"),
               std::invalid_argument);
  EXPECT_THROW(parseQuery("mean(v, bogus=1, eshape={2})"),
               std::invalid_argument);
  EXPECT_THROW(parseQuery("mean(v, edge=sideways, eshape={2})"),
               std::invalid_argument);
  EXPECT_THROW(parseQuery("mean(v, eshape={2,)"), std::invalid_argument);
}

TEST(QueryParser, RoundTrip) {
  for (const char* text :
       {"median(windspeed, eshape={2, 36, 36, 10})",
        "filter(m, eshape={2, 40, 40, 10}, threshold=3)",
        "mean(s, eshape={2, 2}, stride={4, 4}, edge=pad, keys=preserve, "
        "skew=1000)",
        "sort(day, eshape={24, 1})"}) {
    StructuralQuery q = parseQuery(text);
    StructuralQuery back = parseQuery(toQueryString(q));
    EXPECT_EQ(back.op, q.op);
    EXPECT_EQ(back.variable, q.variable);
    EXPECT_EQ(back.extractionShape, q.extractionShape);
    EXPECT_EQ(back.stride, q.stride);
    EXPECT_EQ(back.edgeMode, q.edgeMode);
    EXPECT_EQ(back.keyMode, q.keyMode);
    EXPECT_DOUBLE_EQ(back.filterThreshold, q.filterThreshold);
    EXPECT_EQ(back.skewBound, q.skewBound);
  }
}

}  // namespace
}  // namespace sidr::sh
