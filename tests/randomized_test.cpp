// Randomized end-to-end property testing: for seeded random
// (shape, extraction, stride, operator, system, reducer-count, split)
// configurations, the engine's output must equal the serial oracle and
// every SIDR invariant must hold. This is the library's broadest net —
// any geometry corner case the targeted tests miss tends to surface
// here first.
#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <random>
#include <tuple>

#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

struct RandomConfig {
  nd::Coord input;
  sh::StructuralQuery query;
  std::uint32_t reducers;
  std::size_t splitCount;
  SystemMode system;
  bool byteRangeSplits;
};

RandomConfig makeConfig(std::mt19937_64& rng) {
  auto pick = [&rng](nd::Index lo, nd::Index hi) {
    return lo + static_cast<nd::Index>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  RandomConfig cfg;
  std::size_t rank = 1 + rng() % 3;
  cfg.input = nd::Coord::zeros(rank);
  cfg.query.extractionShape = nd::Coord::zeros(rank);
  nd::Coord stride = nd::Coord::zeros(rank);
  bool useStride = rng() % 3 == 0;
  for (std::size_t d = 0; d < rank; ++d) {
    cfg.query.extractionShape[d] = pick(1, 4);
    stride[d] = useStride ? pick(cfg.query.extractionShape[d],
                                 cfg.query.extractionShape[d] + 2)
                          : cfg.query.extractionShape[d];
    // Input extent: at least one full cell, with a possible ragged tail.
    cfg.input[d] = cfg.query.extractionShape[d] + pick(0, 17);
  }
  if (useStride) cfg.query.stride = stride;
  // Occasionally address only a subset of the input.
  if (rng() % 3 == 0) {
    nd::Coord corner = nd::Coord::zeros(rank);
    nd::Coord shape = nd::Coord::zeros(rank);
    bool ok = true;
    for (std::size_t d = 0; d < rank; ++d) {
      nd::Index maxCorner = cfg.input[d] - cfg.query.extractionShape[d];
      corner[d] = maxCorner > 0 ? pick(0, maxCorner) : 0;
      nd::Index room = cfg.input[d] - corner[d];
      if (room < cfg.query.extractionShape[d]) {
        ok = false;
        break;
      }
      shape[d] = pick(cfg.query.extractionShape[d], room);
    }
    if (ok) cfg.query.subset = nd::Region(corner, shape);
  }
  cfg.query.edgeMode =
      (rng() % 2 == 0) ? sh::EdgeMode::kTruncate : sh::EdgeMode::kPad;
  cfg.query.variable = "v";
  switch (rng() % 5) {
    case 0: cfg.query.op = sh::OperatorKind::kMean; break;
    case 1: cfg.query.op = sh::OperatorKind::kMedian; break;
    case 2: cfg.query.op = sh::OperatorKind::kSum; break;
    case 3: cfg.query.op = sh::OperatorKind::kRange; break;
    default:
      cfg.query.op = sh::OperatorKind::kFilter;
      cfg.query.filterThreshold = 15.0 + static_cast<double>(rng() % 10);
      break;
  }
  cfg.reducers = static_cast<std::uint32_t>(1 + rng() % 6);
  cfg.splitCount = 1 + rng() % 9;
  cfg.system = (rng() % 4 == 0) ? SystemMode::kSciHadoop : SystemMode::kSidr;
  cfg.byteRangeSplits = rng() % 3 == 0;
  return cfg;
}

class RandomizedOracle : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedOracle, EngineMatchesOracle) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  RandomConfig cfg = makeConfig(rng);
  SCOPED_TRACE("input " + cfg.input.toString() + " query " +
               sh::describe(cfg.query) + " r=" + std::to_string(cfg.reducers) +
               " splits~" + std::to_string(cfg.splitCount) +
               (cfg.byteRangeSplits ? " (byte-range)" : ""));

  sh::ValueFn fn = sh::temperatureField(static_cast<std::uint64_t>(
      GetParam() + 100));
  sh::ExtractionMap exm(cfg.query, cfg.input);

  mr::JobResult result = [&] {
    if (!cfg.byteRangeSplits) {
      QueryPlanner planner(cfg.query, cfg.input);
      PlanOptions opts;
      opts.system = cfg.system;
      opts.numReducers = cfg.reducers;
      opts.desiredSplitCount = cfg.splitCount;
      opts.numThreads = 3;
      opts.recordTrace = true;
      return mr::Engine(planner.plan(fn, opts).spec).run();
    }
    // Hand-assembled byte-range variant.
    auto extraction =
        std::make_shared<const sh::ExtractionMap>(cfg.query, cfg.input);
    mr::JobSpec spec;
    spec.splits = sh::generateByteRangeSplits(cfg.input, cfg.splitCount);
    spec.readerFactory = sh::makeSyntheticReaderFactory(fn);
    spec.mapperFactory =
        sh::makeStructuralMapperFactory(cfg.query, extraction);
    spec.reducerFactory = sh::makeStructuralReducerFactory(cfg.query);
    spec.numReducers = cfg.reducers;
    if (cfg.system == SystemMode::kSidr) {
      auto pp = std::make_shared<const PartitionPlus>(extraction,
                                                      cfg.reducers, 0);
      spec.partitioner = pp;
      spec.mode = mr::ExecutionMode::kSidr;
      DependencyCalculator calc(pp);
      DependencyInfo deps = calc.computeAll(spec.splits);
      spec.reduceDeps = deps.keyblockToSplits;
      spec.expectedRepresents = deps.expectedRepresents;
    } else {
      spec.partitioner = std::make_shared<const mr::ModuloPartitioner>(
          extraction->intermediateSpaceShape());
      spec.mode = mr::ExecutionMode::kGlobalBarrier;
    }
    spec.recordTrace = true;
    return mr::Engine(std::move(spec)).run();
  }();

  EXPECT_EQ(result.annotationViolations, 0u);
  testsupport::CheckJobTrace(result);

  std::vector<mr::KeyValue> oracle =
      sh::runSerialOracle(cfg.query, exm, fn);
  std::vector<mr::KeyValue> got = result.collectAll();
  ASSERT_EQ(got.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].key, oracle[i].key);
    ASSERT_EQ(got[i].value.kind(), oracle[i].value.kind());
    if (got[i].value.kind() == mr::ValueKind::kScalar) {
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(),
                  1e-9);
    } else {
      const auto& a = got[i].value.asList();
      const auto& b = oracle[i].value.asList();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t j = 0; j < a.size(); ++j) {
        EXPECT_NEAR(a[j], b[j], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedOracle, ::testing::Range(0, 24));

// ---- randomized fault-plan property test ----
//
// Random map+reduce attempt failures over both recovery models and both
// shuffle modes: whatever the injected fault schedule, the engine must
// converge to the serial oracle with zero annotation violations, and
// the attempt-aware event log must pair every start with exactly one
// end-or-fail of the same task and attempt.

class RandomizedFaultPlan : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedFaultPlan, EngineMatchesOracleUnderInjectedFaults) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 13);
  nd::Coord input{static_cast<nd::Index>(20 + rng() % 20),
                  static_cast<nd::Index>(8 + rng() % 8)};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (rng() % 2 == 0) ? sh::OperatorKind::kMean : sh::OperatorKind::kMedian;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + rng() % 3),
                                static_cast<nd::Index>(2 + rng() % 3)};
  sh::ValueFn fn = sh::temperatureField(static_cast<std::uint64_t>(
      GetParam() + 500));

  const bool spill = rng() % 2 == 0;
  const bool stock = rng() % 4 == 0;
  PlanOptions opts;
  opts.system = stock ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(2 + rng() % 5);
  opts.desiredSplitCount = 4 + rng() % 9;
  opts.numThreads = static_cast<std::uint32_t>(2 + rng() % 5);
  opts.recovery = (rng() % 2 == 0) ? mr::RecoveryModel::kPersistAll
                                   : mr::RecoveryModel::kRecomputeDeps;
  // Half the SIDR runs plan skew-adapted: faults must recover
  // identically against refined dependency sets (DESIGN.md §18).
  opts.skewAdapt = !stock && rng() % 2 == 0;
  opts.skewSampleFraction = 1.0;

  opts.recordTrace = true;
  QueryPlanner planner(q, input);
  QueryPlan plan = planner.plan(fn, opts);

  // Faults are drawn against the ACTUAL split count, after planning.
  const auto numMaps = static_cast<std::uint32_t>(plan.spec.splits.size());
  mr::FaultPlan& fp = plan.spec.faultPlan;
  std::uint32_t expectReduceFailures = 0;
  std::uint32_t expectMapFailures = 0;
  for (std::uint32_t i = 0, n = static_cast<std::uint32_t>(rng() % 4); i < n;
       ++i) {
    std::uint32_t kb = static_cast<std::uint32_t>(rng()) % opts.numReducers;
    std::uint32_t upTo = 1 + static_cast<std::uint32_t>(rng() % 2);
    for (std::uint32_t a = 1; a <= upTo; ++a) {
      if (fp.shouldFail(mr::TaskKind::kReduce, kb, a)) continue;
      fp.failReduce(kb, a);
      ++expectReduceFailures;
    }
  }
  for (std::uint32_t i = 0, n = static_cast<std::uint32_t>(rng() % 3); i < n;
       ++i) {
    std::uint32_t m = static_cast<std::uint32_t>(rng()) % numMaps;
    if (fp.shouldFail(mr::TaskKind::kMap, m, 1)) continue;
    fp.failMap(m, 1);
    ++expectMapFailures;
  }

  std::string dir;
  if (spill) {
    dir = (std::filesystem::temp_directory_path() /
           ("sidr_randfault_" + std::to_string(GetParam())))
              .string();
    plan.spec.spillDirectory = dir;
  }
  SCOPED_TRACE("input " + input.toString() + " r=" +
               std::to_string(opts.numReducers) + " maps=" +
               std::to_string(numMaps) + (spill ? " spill" : " mem") +
               (stock ? " stock" : " sidr") +
               (opts.recovery == mr::RecoveryModel::kRecomputeDeps
                    ? " recompute"
                    : " persist") +
               " faults=" + std::to_string(fp.faults.size()));

  // Dependency sets survive the spec move so the gating checks can use
  // them: SIDR uses the plan's I_l, stock the full barrier set.
  std::vector<std::vector<std::uint32_t>> deps =
      stock ? testsupport::barrierDeps(numMaps, opts.numReducers)
            : plan.spec.reduceDeps;

  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  if (spill) std::filesystem::remove_all(dir);

  EXPECT_EQ(result.annotationViolations, 0u);
  EXPECT_EQ(result.reduceFailures, expectReduceFailures);
  EXPECT_EQ(result.mapFailures, expectMapFailures);

  // Shared invariants: event log pairing, span nesting, span/event
  // agreement, and the scheduling gate — every reduce attempt started
  // only after all its dependency maps committed.
  testsupport::CheckJobTrace(result);
  testsupport::ExpectCommitGating(result.trace, deps);
  testsupport::ExpectFetchTalliesMatchCommits(result.trace, deps);

  std::vector<mr::KeyValue> oracle =
      sh::runSerialOracle(q, sh::ExtractionMap(q, input), fn);
  std::vector<mr::KeyValue> got = result.collectAll();
  ASSERT_EQ(got.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].key, oracle[i].key);
    if (got[i].value.kind() == mr::ValueKind::kScalar) {
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedFaultPlan,
                         ::testing::Range(0, 16));

// ---- randomized two-input join fault plans ----
//
// The same property net over kJoin jobs (DESIGN.md §18): random join
// geometry, faults drawn against the ACTUAL post-planning split set
// (which spans BOTH inputs), spill and skew-adapt coin flips — output
// must equal the nested-loop join oracle exactly, with zero annotation
// violations and every reduce attempt gated on its committed deps.

class RandomizedJoinFaultPlan : public ::testing::TestWithParam<int> {};

TEST_P(RandomizedJoinFaultPlan, JoinMatchesOracleUnderInjectedFaults) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 7);
  auto pick = [&rng](nd::Index lo, nd::Index hi) {
    return lo + static_cast<nd::Index>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  const nd::Coord grid{pick(4, 10), pick(3, 8)};
  sh::StructuralQuery q;
  q.variable = "left";
  q.op = sh::OperatorKind::kJoin;
  q.extractionShape = nd::Coord{pick(1, 3), pick(1, 3)};
  sh::JoinSpec js;
  js.variable = "right";
  js.extractionShape = nd::Coord{pick(1, 3), pick(1, 3)};
  js.inputShape = nd::Coord{grid[0] * js.extractionShape[0],
                            grid[1] * js.extractionShape[1]};
  if (rng() % 2 == 0) js.leftThreshold = 18.0;
  if (rng() % 3 == 0) js.rightThreshold = 16.0;
  q.join = js;
  const nd::Coord input{grid[0] * q.extractionShape[0],
                        grid[1] * q.extractionShape[1]};
  sh::ValueFn leftFn = sh::temperatureField(
      static_cast<std::uint64_t>(GetParam() + 900));
  sh::ValueFn rightFn = sh::temperatureField(
      static_cast<std::uint64_t>(GetParam() + 901));

  const bool spill = rng() % 2 == 0;
  const bool stock = rng() % 4 == 0;
  PlanOptions opts;
  opts.system = stock ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(2 + rng() % 5);
  opts.desiredSplitCount = 3 + rng() % 6;
  opts.numThreads = static_cast<std::uint32_t>(2 + rng() % 4);
  opts.recovery = (rng() % 2 == 0) ? mr::RecoveryModel::kPersistAll
                                   : mr::RecoveryModel::kRecomputeDeps;
  opts.skewAdapt = !stock && rng() % 2 == 0;
  opts.skewSampleFraction = 1.0;
  opts.recordTrace = true;

  QueryPlanner planner(q, input);
  QueryPlan plan = planner.planJoin(leftFn, rightFn, opts);

  // Faults over the REAL split set — ids cover both inputs' splits.
  const auto numMaps = static_cast<std::uint32_t>(plan.spec.splits.size());
  mr::FaultPlan& fp = plan.spec.faultPlan;
  std::uint32_t expectReduceFailures = 0;
  std::uint32_t expectMapFailures = 0;
  for (std::uint32_t i = 0, n = static_cast<std::uint32_t>(rng() % 3); i < n;
       ++i) {
    std::uint32_t kb = static_cast<std::uint32_t>(rng()) % opts.numReducers;
    if (fp.shouldFail(mr::TaskKind::kReduce, kb, 1)) continue;
    fp.failReduce(kb, 1);
    ++expectReduceFailures;
  }
  for (std::uint32_t i = 0, n = static_cast<std::uint32_t>(rng() % 3); i < n;
       ++i) {
    std::uint32_t m = static_cast<std::uint32_t>(rng()) % numMaps;
    if (fp.shouldFail(mr::TaskKind::kMap, m, 1)) continue;
    fp.failMap(m, 1);
    ++expectMapFailures;
  }

  std::string dir;
  if (spill) {
    dir = (std::filesystem::temp_directory_path() /
           ("sidr_randjoinfault_" + std::to_string(GetParam())))
              .string();
    plan.spec.spillDirectory = dir;
  }
  SCOPED_TRACE("grid " + grid.toString() + " r=" +
               std::to_string(opts.numReducers) + " maps=" +
               std::to_string(numMaps) + (spill ? " spill" : " mem") +
               (stock ? " stock" : " sidr") +
               (opts.skewAdapt ? " adapt" : "") +
               " faults=" + std::to_string(fp.faults.size()));

  std::vector<std::vector<std::uint32_t>> deps =
      stock ? testsupport::barrierDeps(numMaps, opts.numReducers)
            : plan.spec.reduceDeps;

  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  if (spill) std::filesystem::remove_all(dir);

  EXPECT_EQ(result.annotationViolations, 0u);
  EXPECT_EQ(result.reduceFailures, expectReduceFailures);
  EXPECT_EQ(result.mapFailures, expectMapFailures);
  testsupport::CheckJobTrace(result);
  testsupport::ExpectCommitGating(result.trace, deps);
  testsupport::ExpectFetchTalliesMatchCommits(result.trace, deps);

  sh::ExtractionMap leftEx(q, input);
  sh::ExtractionMap rightEx(sh::joinRightQuery(q), js.inputShape);
  std::vector<mr::KeyValue> oracle =
      sh::runJoinOracle(q, leftEx, rightEx, leftFn, rightFn);
  std::vector<mr::KeyValue> got = result.collectAll();
  ASSERT_EQ(got.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].key, oracle[i].key);
    EXPECT_EQ(got[i].value, oracle[i].value) << "record " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedJoinFaultPlan,
                         ::testing::Range(0, 16));

}  // namespace
}  // namespace sidr::core
