// Differential sort/spill suite pinning PR 4's two rewrites
// (DESIGN.md section 12) bit-for-bit against the behavior they replace:
//
//  * the LSD radix sort in Segment::sortPacked vs a FROZEN copy of the
//    seed's stable comparison sort on (u64 lin, u32 index) pairs —
//    identical packed order, identical encoded segment bytes, and
//    stable duplicate-key emission order, across dense, shuffled,
//    duplicate-heavy, single-key, empty, sub-threshold and >2^32-span
//    key populations;
//  * the spill-writer pool vs the sequential encode+write path —
//    byte-identical committed segment files and identical collectAll
//    output for pool sizes {1, 2, 8}, including under FaultPlan
//    map/reduce re-attempts, with no torn or double-committed tmp
//    files left behind.
//
// SIDR's early-start correctness depends on every segment arriving
// sorted and count-annotated, so the sort/spill rewrite ships pinned by
// this equivalence suite — the same store-vs-recompute discipline the
// metadata plumbing uses.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "mapreduce/combiners.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/map_pipeline.hpp"
#include "mapreduce/partitioners.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace sidr::core {
namespace {

using sh::OperatorKind;

// ---- frozen comparison sort: the seed's Segment::sortPacked ----
//
// Kept verbatim as the differential oracle; the production path must
// reproduce this permutation exactly (radix included).
void frozenComparisonSortPacked(std::vector<mr::PackedRecord>& packed) {
  struct LinIdx {
    std::uint64_t lin;
    std::uint32_t idx;
  };
  std::vector<LinIdx> order(packed.size());
  for (std::size_t i = 0; i < packed.size(); ++i) {
    order[i] = {packed[i].lin, static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(), [](const LinIdx& a, const LinIdx& b) {
    return a.lin < b.lin || (a.lin == b.lin && a.idx < b.idx);
  });
  std::vector<mr::PackedRecord> sorted;
  sorted.reserve(packed.size());
  for (const LinIdx& li : order) sorted.push_back(packed[li.idx]);
  packed = std::move(sorted);
}

enum class KeyShape {
  kDense,           ///< contiguous [base, base+n) range, shuffled
  kShuffled,        ///< uniform over the whole span
  kDuplicateHeavy,  ///< few distinct keys, many repeats
  kSingleKey,       ///< one key for every record
};

const char* keyShapeName(KeyShape s) {
  switch (s) {
    case KeyShape::kDense: return "dense";
    case KeyShape::kShuffled: return "shuffled";
    case KeyShape::kDuplicateHeavy: return "duplicate-heavy";
    case KeyShape::kSingleKey: return "single-key";
  }
  return "?";
}

/// Builds n packed records whose `represents` field tags the emission
/// index (1-based) — any instability between the two sorts reorders
/// equal keys and flips the tags.
std::vector<mr::PackedRecord> makeRecords(KeyShape shape, std::size_t n,
                                          std::uint64_t span,
                                          std::mt19937_64& rng) {
  std::vector<mr::PackedRecord> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    mr::PackedRecord& r = v[i];
    switch (shape) {
      case KeyShape::kDense:
        // Contiguous block inside the span (wrapping when n exceeds it,
        // which just adds duplicates — keys must stay within the span:
        // emit validates them and delinearize assumes them).
        r.lin = (span / 3 + i) % span;
        break;
      case KeyShape::kShuffled:
        r.lin = rng() % span;
        break;
      case KeyShape::kDuplicateHeavy:
        r.lin = rng() % std::min<std::uint64_t>(span, 13);
        break;
      case KeyShape::kSingleKey:
        r.lin = 7 % span;
        break;
    }
    r.represents = i + 1;
    if (i % 2 == 0) {
      r.kind = mr::ValueKind::kScalar;
      r.payload.scalar = static_cast<double>(i) * 0.5;
    } else {
      r.kind = mr::ValueKind::kPartial;
      r.payload.partial = mr::Partial::ofValue(static_cast<double>(i));
    }
  }
  if (shape == KeyShape::kDense) std::shuffle(v.begin(), v.end(), rng);
  return v;
}

void expectSamePackedOrder(const std::vector<mr::PackedRecord>& got,
                           const std::vector<mr::PackedRecord>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i].lin, want[i].lin) << "at " << i;
    ASSERT_EQ(got[i].represents, want[i].represents)
        << "duplicate-key emission order broken at " << i;
    ASSERT_EQ(got[i].kind, want[i].kind) << "at " << i;
    switch (got[i].kind) {
      case mr::ValueKind::kScalar:
        EXPECT_EQ(got[i].payload.scalar, want[i].payload.scalar) << "at " << i;
        break;
      case mr::ValueKind::kPartial:
        EXPECT_EQ(got[i].payload.partial, want[i].payload.partial)
            << "at " << i;
        break;
      case mr::ValueKind::kList:
        EXPECT_EQ(got[i].payload.listIndex, want[i].payload.listIndex)
            << "at " << i;
        break;
    }
  }
}

// ---- radix vs frozen comparison, packed order ----

TEST(SortParity, RadixMatchesFrozenComparisonAcrossShapes) {
  std::mt19937_64 rng(20260806);
  const std::uint64_t span = 5 * 7 * 11;
  for (KeyShape shape :
       {KeyShape::kDense, KeyShape::kShuffled, KeyShape::kDuplicateHeavy,
        KeyShape::kSingleKey}) {
    // Sizes bracket the sub-threshold boundary (empty, tiny, one under
    // and exactly at kRadixSortMinRecords) and go well past it.
    for (std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                          mr::kRadixSortMinRecords - 1,
                          mr::kRadixSortMinRecords, std::size_t{257},
                          std::size_t{4096}}) {
      SCOPED_TRACE(std::string(keyShapeName(shape)) + " n=" +
                   std::to_string(n));
      auto base = makeRecords(shape, n, span, rng);
      auto viaRadix = base;
      mr::radixSortPacked(viaRadix);
      auto viaComparison = base;
      frozenComparisonSortPacked(viaComparison);
      expectSamePackedOrder(viaRadix, viaComparison);
      EXPECT_TRUE(std::is_sorted(
          viaRadix.begin(), viaRadix.end(),
          [](const mr::PackedRecord& a, const mr::PackedRecord& b) {
            return a.lin < b.lin;
          }));
    }
  }
}

TEST(SortParity, KeysBeyondU32SpanExerciseHighBytePasses) {
  std::mt19937_64 rng(97);
  const std::uint64_t span = std::uint64_t{1} << 40;  // bytes 0..4 vary
  auto base = makeRecords(KeyShape::kShuffled, 2048, span, rng);
  // Salt in collisions that differ only in high bytes, and exact
  // duplicates, so both tie-breaking and byte-4 ordering are observable.
  for (std::size_t i = 0; i + 4 < base.size(); i += 97) {
    base[i + 1].lin = base[i].lin;                            // duplicate
    base[i + 2].lin = base[i].lin ^ (std::uint64_t{1} << 36); // high-byte twin
  }
  auto viaRadix = base;
  mr::SortStats& stats = mr::sortStats();
  stats.reset();
  mr::radixSortPacked(viaRadix);
  EXPECT_EQ(stats.radixSorts, 1u);
  EXPECT_EQ(stats.radixPasses, 5u) << "bytes 0-4 vary under a 2^40 span";
  EXPECT_EQ(stats.radixPassesSkipped, 3u) << "bytes 5-7 are constant zero";
  auto viaComparison = base;
  frozenComparisonSortPacked(viaComparison);
  expectSamePackedOrder(viaRadix, viaComparison);
}

// ---- radix vs frozen comparison, encoded segment bytes ----

/// Materializes the eager KeyValue view of a packed buffer (the frozen
/// path's input), sorts it with a stable lexicographic sort, and
/// asserts the production packed Segment — sorted through sortByKey,
/// radix included — serializes to the identical bytes.
void expectSegmentBytesMatchFrozenOracle(
    std::vector<mr::PackedRecord> packed,
    std::vector<std::vector<double>> lists, const nd::Coord& keySpace) {
  std::vector<mr::KeyValue> eager;
  eager.reserve(packed.size());
  for (const mr::PackedRecord& r : packed) {
    mr::KeyValue kv;
    kv.key = nd::delinearize(static_cast<nd::Index>(r.lin), keySpace);
    kv.represents = r.represents;
    switch (r.kind) {
      case mr::ValueKind::kScalar:
        kv.value = mr::Value::scalar(r.payload.scalar);
        break;
      case mr::ValueKind::kPartial:
        kv.value = mr::Value::partial(r.payload.partial);
        break;
      case mr::ValueKind::kList:
        kv.value = mr::Value::list(lists[r.payload.listIndex]);
        break;
    }
    eager.push_back(std::move(kv));
  }
  std::stable_sort(eager.begin(), eager.end(),
                   [](const mr::KeyValue& a, const mr::KeyValue& b) {
                     return a.key < b.key;
                   });
  mr::Segment oracle(3, 1, std::move(eager));

  mr::Segment fast(3, 1, std::move(packed), std::move(lists), keySpace);
  fast.sortByKey();
  EXPECT_EQ(fast.header(), oracle.header());
  EXPECT_EQ(fast.serialize(), oracle.serialize());
}

TEST(SortParity, EncodedSegmentBytesIdentical) {
  std::mt19937_64 rng(11);
  const nd::Coord keySpace{5, 7, 11};
  const auto span = static_cast<std::uint64_t>(keySpace.volume());
  for (KeyShape shape :
       {KeyShape::kDense, KeyShape::kShuffled, KeyShape::kDuplicateHeavy,
        KeyShape::kSingleKey}) {
    for (std::size_t n :
         {std::size_t{0}, std::size_t{17}, std::size_t{500}}) {
      SCOPED_TRACE(std::string(keyShapeName(shape)) + " n=" +
                   std::to_string(n));
      auto packed = makeRecords(shape, n, span, rng);
      // Sprinkle in out-of-line list payloads so every value kind
      // crosses the codec.
      std::vector<std::vector<double>> lists;
      for (std::size_t i = 0; i < packed.size(); i += 5) {
        packed[i].kind = mr::ValueKind::kList;
        packed[i].payload.listIndex = static_cast<std::uint32_t>(lists.size());
        lists.push_back({static_cast<double>(i), 0.25});
      }
      expectSegmentBytesMatchFrozenOracle(std::move(packed), std::move(lists),
                                          keySpace);
    }
  }
}

TEST(SortParity, EncodedSegmentBytesIdenticalBeyondU32Span) {
  std::mt19937_64 rng(13);
  const nd::Coord keySpace{4096, 4096, 512};  // volume 2^33 > 2^32
  const auto span = static_cast<std::uint64_t>(keySpace.volume());
  auto packed = makeRecords(KeyShape::kShuffled, 600, span, rng);
  expectSegmentBytesMatchFrozenOracle(std::move(packed), {}, keySpace);
}

// ---- sorted-run detection: no re-sort of sorted input ----

std::vector<mr::PackedRecord> sortedPartials(std::size_t n) {
  std::vector<mr::PackedRecord> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i].lin = i / 2;  // nondecreasing with duplicates
    v[i].represents = 1;
    v[i].kind = mr::ValueKind::kPartial;
    v[i].payload.partial = mr::Partial::ofValue(static_cast<double>(i));
  }
  return v;
}

TEST(SortedSkip, SortedPackedInputDoesNoSortWork) {
  const nd::Coord keySpace{16, 16};
  mr::Segment seg(0, 0, sortedPartials(128), {}, keySpace);
  mr::SortStats& stats = mr::sortStats();
  stats.reset();
  seg.sortByKey();
  EXPECT_EQ(stats.sortedSkips, 1u);
  EXPECT_EQ(stats.radixSorts, 0u);
  EXPECT_EQ(stats.radixPasses, 0u);
  EXPECT_EQ(stats.comparisonSorts, 0u);
  EXPECT_TRUE(seg.packed()) << "the sorted check must not materialize";
}

TEST(SortedSkip, CombinerOutputNotReSorted) {
  // Regression for the re-sort of already-sorted combiner output: after
  // sort + combine, a consumer calling sortByKey again (as the merge
  // path may) must detect the sorted run in one pass and do zero sort
  // work — no radix passes, no comparison sort.
  const nd::Coord keySpace{16, 16};
  auto packed = sortedPartials(200);
  std::mt19937_64 rng(5);
  std::shuffle(packed.begin(), packed.end(), rng);
  mr::Segment seg(0, 0, std::move(packed), {}, keySpace);
  mr::SortStats& stats = mr::sortStats();
  stats.reset();
  seg.sortByKey();
  EXPECT_EQ(stats.radixSorts, 1u);  // shuffled input radix-sorts once
  mr::PartialMergeCombiner combiner;
  seg.combineWith(combiner);
  ASSERT_TRUE(seg.isSorted());
  stats.reset();
  seg.sortByKey();
  EXPECT_EQ(stats.sortedSkips, 1u) << "single-pass sorted check";
  EXPECT_EQ(stats.radixSorts, 0u);
  EXPECT_EQ(stats.radixPasses, 0u);
  EXPECT_EQ(stats.comparisonSorts, 0u);
}

double cellValue(const nd::Coord& c) {
  double v = 1.0;
  for (std::size_t d = 0; d < c.rank(); ++d) {
    v += static_cast<double>(c[d]) * 0.25;
  }
  return v;
}

TEST(SortedSkip, RowMajorEmissionSkipsSortCallEntirely) {
  // The pipeline tracks nondecreasing emission per keyblock, so the
  // common row-major case invokes NO sort — not even the O(n) scan.
  class IdentityMapper final : public mr::Mapper {
   public:
    void map(const nd::Coord& key, double value,
             mr::MapContext& ctx) override {
      ctx.emit(key, mr::Value::scalar(value), 1);
    }
  };
  const nd::Coord shape{6, 8, 4};
  mr::ModuloPartitioner part(shape);
  auto factory = sh::makeSyntheticReaderFactory(cellValue);
  auto split = mr::InputSplit::single(0, nd::Region::wholeSpace(shape));
  IdentityMapper mapper;
  mr::SortStats& stats = mr::sortStats();
  stats.reset();
  auto segs = mr::runMapPipeline(split, 0, factory, mapper, part, 3, nullptr,
                                 shape);
  EXPECT_EQ(stats.sortedSkips, 0u) << "sort call skipped outright";
  EXPECT_EQ(stats.radixSorts, 0u);
  EXPECT_EQ(stats.comparisonSorts, 0u);
  for (const auto& seg : segs) EXPECT_TRUE(seg.isSorted());
}

// ---- spill-writer pool: byte-identical files, clean commit protocol ----

void expectSameCollected(const std::vector<mr::KeyValue>& xs,
                         const std::vector<mr::KeyValue>& ys) {
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].key, ys[i].key) << "at " << i;
    EXPECT_EQ(xs[i].value, ys[i].value) << "at " << i;
    EXPECT_EQ(xs[i].represents, ys[i].represents) << "at " << i;
  }
}

/// Reads every committed file in a spill directory; fails the test if
/// any attempt-temporary (torn or double-committed) file survived.
std::map<std::string, std::vector<char>> readSpillDir(
    const std::string& dir) {
  std::map<std::string, std::vector<char>> files;
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string name =
        entry.path().lexically_relative(dir).generic_string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "dangling attempt file: " << name;
    std::ifstream in(entry.path(), std::ios::binary);
    files[name] = {std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>()};
  }
  return files;
}

class SpillWriterParity : public ::testing::TestWithParam<int> {};

TEST_P(SpillWriterParity, PoolSizesProduceByteIdenticalSpills) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  nd::Coord input{static_cast<nd::Index>(14 + rng() % 12),
                  static_cast<nd::Index>(8 + rng() % 6)};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (rng() % 2 == 0) ? OperatorKind::kMean : OperatorKind::kMedian;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + rng() % 3),
                                static_cast<nd::Index>(2 + rng() % 3)};
  sh::ValueFn fn = sh::temperatureField(static_cast<std::uint64_t>(
      GetParam() + 900));
  PlanOptions opts;
  opts.system = (rng() % 4 == 0) ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(2 + rng() % 3);
  opts.desiredSplitCount = 4 + rng() % 5;
  opts.numThreads = 3;
  opts.recovery = (rng() % 2 == 0) ? mr::RecoveryModel::kPersistAll
                                   : mr::RecoveryModel::kRecomputeDeps;
  QueryPlanner planner(q, input);

  // Draw the fault schedule once, against the actual split count, so
  // every pool size replays the identical re-attempt pattern.
  mr::FaultPlan faults;
  {
    QueryPlan probe = planner.plan(fn, opts);
    const auto numMaps =
        static_cast<std::uint32_t>(probe.spec.splits.size());
    if (rng() % 2 == 0) {
      faults.failReduce(static_cast<std::uint32_t>(rng()) % opts.numReducers,
                        1);
    }
    if (rng() % 2 == 0) {
      faults.failMap(static_cast<std::uint32_t>(rng()) % numMaps, 1);
    }
  }

  SCOPED_TRACE("input " + input.toString() + " r=" +
               std::to_string(opts.numReducers) +
               " faults=" + std::to_string(faults.faults.size()));

  std::map<std::string, std::vector<char>> referenceFiles;
  std::vector<mr::KeyValue> referenceCollected;
  for (std::uint32_t writers : {1u, 2u, 8u}) {
    SCOPED_TRACE("writers=" + std::to_string(writers));
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("sidr_spill_parity_" + std::to_string(GetParam()) + "_w" +
          std::to_string(writers)))
            .string();
    std::filesystem::remove_all(dir);
    QueryPlan plan = planner.plan(fn, opts);
    plan.spec.spillDirectory = dir;
    plan.spec.spillWriters = writers;
    plan.spec.faultPlan = faults;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.annotationViolations, 0u);
    auto files = readSpillDir(dir);
    auto collected = result.collectAll();
    std::filesystem::remove_all(dir);
    if (writers == 1) {
      referenceFiles = std::move(files);
      referenceCollected = std::move(collected);
      continue;
    }
    // Committed files must be byte-identical to the sequential path's,
    // name for name — the pool may only change WHEN tmp files get
    // written, never what gets committed.
    ASSERT_EQ(files.size(), referenceFiles.size());
    for (const auto& [name, bytes] : referenceFiles) {
      auto it = files.find(name);
      ASSERT_NE(it, files.end()) << "missing committed file " << name;
      EXPECT_EQ(it->second, bytes) << "bytes differ in " << name;
    }
    expectSameCollected(collected, referenceCollected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpillWriterParity, ::testing::Range(0, 16));

// ---- parallel-spill hammer (run under TSan via scripts/tier1.sh) ----

TEST(SpillPoolHammer, ReattemptDuringConcurrentReduceFetch) {
  // Parallel-spill twin of Engine.SpillRecoveryRaceHammer: with
  // kRecomputeDeps, failed reduces force their I_l maps to re-run, so
  // pool workers re-encode and re-write attempt files while OTHER
  // reduces' lock-free fetches read committed files of the same
  // (map, keyblock) grid. The attempt-suffixed tmp + atomic-rename
  // protocol must keep every committed inode immutable regardless of
  // which pool worker wrote it.
  const nd::Coord input{36, 10};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{3, 5};
  sh::ValueFn fn = sh::temperatureField(43);
  QueryPlanner planner(q, input);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sidr_spillpool_hammer")
          .string();
  sh::ExtractionMap ex(q, input);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, ex, fn);
  for (int iter = 0; iter < 3; ++iter) {
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 6;
    opts.desiredSplitCount = 12;
    opts.numThreads = 8;
    opts.reduceSlots = 4;
    opts.mapSlots = 4;
    opts.recovery = mr::RecoveryModel::kRecomputeDeps;
    opts.faultPlan.failReduce(0).failReduce(2).failReduce(3).failReduce(5);
    opts.faultPlan.failMap(1).failMap(7);
    QueryPlan plan = planner.plan(fn, opts);
    plan.spec.spillDirectory = dir;
    plan.spec.spillWriters = 8;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.reduceFailures, 4u);
    EXPECT_EQ(result.mapFailures, 2u);
    EXPECT_EQ(result.annotationViolations, 0u);
    readSpillDir(dir);  // asserts no dangling .tmp attempt files
    auto got = result.collectAll();
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].key, oracle[i].key);
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(), 1e-9);
    }
  }
  std::filesystem::remove_all(dir);
}

TEST(SpillWriters, ZeroWritersRejected) {
  const nd::Coord input{8, 8};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{4, 4};
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.numReducers = 2;
  QueryPlan plan = planner.plan(sh::temperatureField(1), opts);
  plan.spec.spillWriters = 0;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

}  // namespace
}  // namespace sidr::core
