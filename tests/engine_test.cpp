#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <tuple>

#include "mapreduce/combiners.hpp"
#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

using sh::OperatorKind;
using testsupport::CheckJobTrace;

sh::StructuralQuery makeQuery(OperatorKind op, nd::Coord eshape,
                              double threshold = 0.0) {
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = op;
  q.extractionShape = eshape;
  q.filterThreshold = threshold;
  return q;
}

void expectMatchesOracle(const mr::JobResult& result,
                         const std::vector<mr::KeyValue>& oracle) {
  auto got = result.collectAll();
  ASSERT_EQ(got.size(), oracle.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].key, oracle[i].key) << "at " << i;
    ASSERT_EQ(got[i].value.kind(), oracle[i].value.kind());
    if (got[i].value.kind() == mr::ValueKind::kScalar) {
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(), 1e-9);
    } else if (got[i].value.kind() == mr::ValueKind::kList) {
      const auto& a = got[i].value.asList();
      const auto& b = oracle[i].value.asList();
      ASSERT_EQ(a.size(), b.size());
      for (std::size_t j = 0; j < a.size(); ++j) {
        EXPECT_NEAR(a[j], b[j], 1e-9);
      }
    }
  }
}

struct EngineCase {
  OperatorKind op;
  SystemMode system;
};

class EngineOracle : public ::testing::TestWithParam<EngineCase> {};

TEST_P(EngineOracle, MatchesSerialExecution) {
  const auto& tc = GetParam();
  nd::Coord input{28, 15, 8};
  sh::StructuralQuery q = makeQuery(tc.op, nd::Coord{7, 5, 2},
                                    /*threshold=*/18.0);
  sh::ValueFn fn = sh::temperatureField(11);

  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = tc.system;
  opts.numReducers = 4;
  opts.desiredSplitCount = 9;
  opts.numThreads = 3;
  opts.recordTrace = true;
  QueryPlan plan = planner.plan(fn, opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  sh::ExtractionMap ex(q, input);
  expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  EXPECT_EQ(result.annotationViolations, 0u);
  EXPECT_EQ(result.reduceFailures, 0u);
  CheckJobTrace(result);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperatorsBothSystems, EngineOracle,
    ::testing::Values(
        EngineCase{OperatorKind::kMean, SystemMode::kSciHadoop},
        EngineCase{OperatorKind::kMean, SystemMode::kSidr},
        EngineCase{OperatorKind::kSum, SystemMode::kSidr},
        EngineCase{OperatorKind::kMin, SystemMode::kSciHadoop},
        EngineCase{OperatorKind::kMin, SystemMode::kSidr},
        EngineCase{OperatorKind::kMax, SystemMode::kSidr},
        EngineCase{OperatorKind::kCount, SystemMode::kSidr},
        EngineCase{OperatorKind::kMedian, SystemMode::kSciHadoop},
        EngineCase{OperatorKind::kMedian, SystemMode::kSidr},
        EngineCase{OperatorKind::kFilter, SystemMode::kSciHadoop},
        EngineCase{OperatorKind::kFilter, SystemMode::kSidr}));

TEST(Engine, SidrShuffleConnectionsAreSumOfDeps) {
  nd::Coord input{40, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{2, 5});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 5;
  opts.desiredSplitCount = 8;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  std::uint64_t expected = plan.dependencies.totalConnections();
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  EXPECT_EQ(result.shuffleConnections, expected);
  CheckJobTrace(result);
  // Stock contacts every map from every reduce.
  PlanOptions stockOpts = opts;
  stockOpts.system = SystemMode::kSciHadoop;
  QueryPlan stock = planner.plan(sh::temperatureField(), stockOpts);
  std::size_t numSplits = stock.spec.splits.size();
  mr::JobResult stockResult = mr::Engine(std::move(stock.spec)).run();
  CheckJobTrace(stockResult);
  EXPECT_EQ(stockResult.shuffleConnections, numSplits * 5);
  EXPECT_LT(result.shuffleConnections, stockResult.shuffleConnections);
}

TEST(Engine, SidrReducesStartBeforeAllMapsFinish) {
  nd::Coord input{64, 12};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 8;
  opts.desiredSplitCount = 16;
  opts.reduceSlots = 8;
  opts.numThreads = 2;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  double lastMapEnd = 0;
  double firstReduceStart = 1e18;
  for (const auto& ev : result.events) {
    if (ev.kind == mr::TaskEvent::Kind::kMapEnd) {
      lastMapEnd = std::max(lastMapEnd, ev.seconds);
    }
    if (ev.kind == mr::TaskEvent::Kind::kReduceStart) {
      firstReduceStart = std::min(firstReduceStart, ev.seconds);
    }
  }
  // The defining SIDR behaviour: some reduce starts before the global
  // barrier would have allowed (i.e. before the last map ends).
  EXPECT_LT(firstReduceStart, lastMapEnd);
  CheckJobTrace(result);
}

TEST(Engine, StockReducesWaitForGlobalBarrier) {
  nd::Coord input{64, 12};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSciHadoop;
  opts.numReducers = 8;
  opts.desiredSplitCount = 16;
  opts.numThreads = 2;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  double lastMapEnd = 0;
  double firstReduceStart = 1e18;
  for (const auto& ev : result.events) {
    if (ev.kind == mr::TaskEvent::Kind::kMapEnd) {
      lastMapEnd = std::max(lastMapEnd, ev.seconds);
    }
    if (ev.kind == mr::TaskEvent::Kind::kReduceStart) {
      firstReduceStart = std::min(firstReduceStart, ev.seconds);
    }
  }
  EXPECT_GE(firstReduceStart, lastMapEnd);
  CheckJobTrace(result);
}

TEST(Engine, KeyblockPrioritySchedulesFirst) {
  nd::Coord input{64, 12};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 8;
  opts.desiredSplitCount = 16;
  opts.reduceSlots = 1;  // strictly serial reduces: order is observable
  opts.mapSlots = 1;
  opts.numThreads = 1;
  opts.reducePriority = {5, 6, 7, 0, 1, 2, 3, 4};
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  std::vector<std::uint32_t> commitOrder;
  for (const auto& ev : result.events) {
    if (ev.kind == mr::TaskEvent::Kind::kReduceEnd) {
      commitOrder.push_back(ev.taskId);
    }
  }
  ASSERT_EQ(commitOrder.size(), 8u);
  // The prioritized keyblocks commit first (computational steering).
  EXPECT_EQ(commitOrder[0], 5u);
  EXPECT_EQ(commitOrder[1], 6u);
  EXPECT_EQ(commitOrder[2], 7u);
  CheckJobTrace(result);
}

TEST(Engine, RecoveryRecomputeOnlyDeps) {
  nd::Coord input{48, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 5});
  sh::ValueFn fn = sh::temperatureField(7);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 12;
  opts.recovery = mr::RecoveryModel::kRecomputeDeps;
  opts.faultPlan.failReduce(1);
  QueryPlan plan = planner.plan(fn, opts);
  std::size_t depsOfFailed = plan.dependencies.keyblockToSplits[1].size();
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  EXPECT_EQ(result.reduceFailures, 1u);
  EXPECT_EQ(result.mapsReExecuted, depsOfFailed);
  EXPECT_EQ(result.annotationViolations, 0u);
  sh::ExtractionMap ex(q, input);
  expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  CheckJobTrace(result);
}

TEST(Engine, RecoveryPersistAllReRunsNothing) {
  nd::Coord input{48, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 5});
  sh::ValueFn fn = sh::temperatureField(7);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 12;
  opts.recovery = mr::RecoveryModel::kPersistAll;
  opts.faultPlan.failReduce(1).failReduce(3);
  QueryPlan plan = planner.plan(fn, opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  EXPECT_EQ(result.reduceFailures, 2u);
  EXPECT_EQ(result.mapsReExecuted, 0u);
  sh::ExtractionMap ex(q, input);
  expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  CheckJobTrace(result);
}

TEST(Engine, FaultPlanMapAndReduceFailuresBothShuffleModes) {
  // The acceptance scenario: >=2 map failures and >=2 reduce failures
  // (fail-on-attempt-2 included — reduce 1 dies on attempts 1 AND 2),
  // in both spill and in-memory modes. The job completes with correct
  // output and counters matching the plan exactly.
  nd::Coord input{28, 12};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  sh::ValueFn fn = sh::temperatureField(31);
  QueryPlanner planner(q, input);
  for (bool spill : {false, true}) {
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 4;
    opts.desiredSplitCount = 8;
    opts.numThreads = 4;
    opts.recovery = mr::RecoveryModel::kPersistAll;
    opts.faultPlan.failMap(0).failMap(2).failReduce(1, 1).failReduce(1, 2);
    QueryPlan plan = planner.plan(fn, opts);
    std::string dir =
        (std::filesystem::temp_directory_path() / "sidr_fault_spill")
            .string();
    if (spill) plan.spec.spillDirectory = dir;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    if (spill) std::filesystem::remove_all(dir);
    SCOPED_TRACE(spill ? "spill" : "in-memory");
    EXPECT_EQ(result.mapFailures, 2u);
    EXPECT_EQ(result.reduceFailures, 2u);
    // Persist-all recovery re-runs nothing for the reduce failures; the
    // two failed map attempts retry once each.
    EXPECT_EQ(result.mapsReExecuted, 2u);
    EXPECT_EQ(result.annotationViolations, 0u);
    CheckJobTrace(result);
    sh::ExtractionMap ex(q, input);
    expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  }
}

TEST(Engine, FaultPlanUnderRecomputeDepsRecovery) {
  // Same multi-fault plan under dependency-bounded recovery: each
  // reduce failure re-executes its I_l subset, so re-execution cost is
  // at least the two map retries and the job still matches the oracle.
  nd::Coord input{28, 12};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{4, 4});
  sh::ValueFn fn = sh::temperatureField(37);
  QueryPlanner planner(q, input);
  for (bool spill : {false, true}) {
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 4;
    opts.desiredSplitCount = 8;
    opts.numThreads = 4;
    opts.recovery = mr::RecoveryModel::kRecomputeDeps;
    opts.faultPlan.failMap(1).failMap(3).failReduce(2, 1).failReduce(2, 2);
    QueryPlan plan = planner.plan(fn, opts);
    std::size_t depsOfFailed = plan.dependencies.keyblockToSplits[2].size();
    std::string dir =
        (std::filesystem::temp_directory_path() / "sidr_fault_spill_rc")
            .string();
    if (spill) plan.spec.spillDirectory = dir;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    if (spill) std::filesystem::remove_all(dir);
    SCOPED_TRACE(spill ? "spill" : "in-memory");
    EXPECT_EQ(result.mapFailures, 2u);
    EXPECT_EQ(result.reduceFailures, 2u);
    // Two failed-attempt retries plus both recoveries' I_2 re-runs.
    EXPECT_GE(result.mapsReExecuted, 2u + 2u * depsOfFailed);
    EXPECT_EQ(result.annotationViolations, 0u);
    CheckJobTrace(result);
    sh::ExtractionMap ex(q, input);
    expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  }
}

TEST(Engine, RetryLimitRaisesJobErrorNamingTaskAndAttempt) {
  nd::Coord input{16, 8};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 4;
  opts.recovery = mr::RecoveryModel::kRecomputeDeps;
  opts.faultPlan.maxAttempts = 2;
  opts.faultPlan.failReduce(1, 1).failReduce(1, 2);
  QueryPlan plan = planner.plan(sh::temperatureField(5), opts);
  try {
    mr::Engine(std::move(plan.spec)).run();
    FAIL() << "expected JobError";
  } catch (const mr::JobError& e) {
    EXPECT_EQ(e.taskKind(), mr::TaskKind::kReduce);
    EXPECT_EQ(e.taskId(), 1u);
    EXPECT_EQ(e.attempt(), 2u);
    EXPECT_NE(std::string(e.what()).find("reduce task 1"), std::string::npos);
  }

  // Map-side variant: a map that dies on every allowed attempt.
  PlanOptions mopts;
  mopts.system = SystemMode::kSidr;
  mopts.numReducers = 4;
  mopts.desiredSplitCount = 4;
  mopts.faultPlan.maxAttempts = 2;
  mopts.faultPlan.failMap(0, 1).failMap(0, 2);
  QueryPlan mplan = planner.plan(sh::temperatureField(5), mopts);
  try {
    mr::Engine(std::move(mplan.spec)).run();
    FAIL() << "expected JobError";
  } catch (const mr::JobError& e) {
    EXPECT_EQ(e.taskKind(), mr::TaskKind::kMap);
    EXPECT_EQ(e.taskId(), 0u);
    EXPECT_EQ(e.attempt(), 2u);
  }
}

TEST(Engine, SpillRecoveryRaceHammer) {
  // Regression for the spill-mode recovery race: a recovering map used
  // to rewrite mapX_kbY.seg IN PLACE (truncating via
  // FileStorage::Mode::kCreate) while another reduce's lock-free fetch
  // could be mid-read of the same file. Attempt-suffixed temp files +
  // atomic rename commits keep every committed file immutable at its
  // inode. Hammer recovery with spill enabled and many threads; run
  // under TSan via scripts/tier1.sh.
  nd::Coord input{36, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{3, 5});
  sh::ValueFn fn = sh::temperatureField(43);
  QueryPlanner planner(q, input);
  std::string dir =
      (std::filesystem::temp_directory_path() / "sidr_recovery_hammer")
          .string();
  sh::ExtractionMap ex(q, input);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, ex, fn);
  for (int iter = 0; iter < 3; ++iter) {
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 6;
    opts.desiredSplitCount = 12;
    opts.numThreads = 8;
    opts.reduceSlots = 4;
    opts.mapSlots = 4;
    opts.recovery = mr::RecoveryModel::kRecomputeDeps;
    opts.faultPlan.failReduce(0).failReduce(2).failReduce(3).failReduce(5);
    QueryPlan plan = planner.plan(fn, opts);
    plan.spec.spillDirectory = dir;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.reduceFailures, 4u);
    EXPECT_EQ(result.annotationViolations, 0u);
    CheckJobTrace(result);
    expectMatchesOracle(result, oracle);
  }
  std::filesystem::remove_all(dir);
}

TEST(Engine, InvalidReducePriorityRejected) {
  nd::Coord input{16, 8};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 4;

  QueryPlan outOfRange = planner.plan(sh::temperatureField(5), opts);
  outOfRange.spec.reducePriority = {0, 1, 2, 9};  // keyblock 9 of 4
  EXPECT_THROW(mr::Engine{std::move(outOfRange.spec)}, std::invalid_argument);

  QueryPlan duplicate = planner.plan(sh::temperatureField(5), opts);
  duplicate.spec.reducePriority = {0, 1, 1, 3};  // kb 1 twice, kb 2 never
  EXPECT_THROW(mr::Engine{std::move(duplicate.spec)}, std::invalid_argument);
}

TEST(Engine, ShortExpectedRepresentsRejected) {
  nd::Coord input{16, 8};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 4;
  QueryPlan plan = planner.plan(sh::temperatureField(5), opts);
  ASSERT_EQ(plan.spec.expectedRepresents.size(), 4u);
  plan.spec.expectedRepresents.pop_back();  // would be an OOB read
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(Engine, InvalidFaultPlanRejected) {
  nd::Coord input{16, 8};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 4;

  QueryPlan badReduce = planner.plan(sh::temperatureField(5), opts);
  badReduce.spec.faultPlan.failReduce(99);  // silently ignored before
  EXPECT_THROW(mr::Engine{std::move(badReduce.spec)}, std::invalid_argument);

  QueryPlan badMap = planner.plan(sh::temperatureField(5), opts);
  badMap.spec.faultPlan.failMap(
      static_cast<std::uint32_t>(badMap.spec.splits.size()));
  EXPECT_THROW(mr::Engine{std::move(badMap.spec)}, std::invalid_argument);

  QueryPlan badAttempt = planner.plan(sh::temperatureField(5), opts);
  badAttempt.spec.faultPlan.failReduce(0, 0);  // attempts are 1-based
  EXPECT_THROW(mr::Engine{std::move(badAttempt.spec)}, std::invalid_argument);

  QueryPlan badLimit = planner.plan(sh::temperatureField(5), opts);
  badLimit.spec.faultPlan.maxAttempts = 0;
  EXPECT_THROW(mr::Engine{std::move(badLimit.spec)}, std::invalid_argument);
}

TEST(Engine, SkewMeasuredUnderModuloVsPartitionPlus) {
  // Strided selection with preserved (all-even) coordinates: modulo
  // starves half the reducers, partition+ balances them (section 4.3).
  nd::Coord input{32, 32};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{1, 1});
  q.stride = nd::Coord{2, 2};
  q.keyMode = sh::KeyMode::kPreserveCoords;
  QueryPlanner planner(q, input);

  PlanOptions stock;
  stock.system = SystemMode::kSciHadoop;
  stock.numReducers = 4;
  stock.desiredSplitCount = 8;
  mr::JobResult stockRes =
      mr::Engine(planner.plan(sh::temperatureField(), stock).spec).run();
  CheckJobTrace(stockRes);
  std::uint64_t stockMax = 0;
  std::uint64_t stockMin = UINT64_MAX;
  for (std::uint64_t c : stockRes.recordsPerReducer) {
    stockMax = std::max(stockMax, c);
    stockMin = std::min(stockMin, c);
  }
  EXPECT_EQ(stockMin, 0u) << "odd reducers must starve under modulo";

  PlanOptions sidrOpts = stock;
  sidrOpts.system = SystemMode::kSidr;
  mr::JobResult sidrRes =
      mr::Engine(planner.plan(sh::temperatureField(), sidrOpts).spec).run();
  CheckJobTrace(sidrRes);
  std::uint64_t sidrMax = 0;
  std::uint64_t sidrMin = UINT64_MAX;
  std::uint64_t total = 0;
  for (std::uint64_t c : sidrRes.recordsPerReducer) {
    sidrMax = std::max(sidrMax, c);
    sidrMin = std::min(sidrMin, c);
    total += c;
  }
  EXPECT_GT(sidrMin, 0u);
  EXPECT_LT(sidrMax - sidrMin, total / 4) << "partition+ must balance";
}

TEST(Engine, InvalidSpecsRejected) {
  mr::JobSpec spec;
  EXPECT_THROW(mr::Engine{std::move(spec)}, std::invalid_argument);

  nd::Coord input{8, 8};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{2, 2});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 2;
  opts.desiredSplitCount = 2;
  QueryPlan plan = planner.plan(sh::temperatureField(), opts);
  plan.spec.reduceDeps.pop_back();  // break the dependency sets
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(Engine, SingleThreadSingleReducer) {
  nd::Coord input{14, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{7, 5});
  sh::ValueFn fn = sh::temperatureField(3);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 1;
  opts.desiredSplitCount = 3;
  opts.numThreads = 1;
  opts.mapSlots = 1;
  opts.reduceSlots = 1;
  opts.recordTrace = true;
  QueryPlan plan = planner.plan(fn, opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  sh::ExtractionMap ex(q, input);
  expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  CheckJobTrace(result);
}

TEST(Engine, ByteRangeSplitsMatchOracle) {
  // Stock Hadoop's byte-range splits cut rows and extraction cells
  // arbitrarily (multi-region splits); results must still be exact.
  nd::Coord input{20, 15, 4};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 5, 2});
  sh::ValueFn fn = sh::temperatureField(13);
  sh::ExtractionMap exm(q, input);
  auto extraction = std::make_shared<const sh::ExtractionMap>(q, input);

  mr::JobSpec spec;
  spec.splits = sh::generateByteRangeSplits(input, 11);
  spec.readerFactory = sh::makeSyntheticReaderFactory(fn);
  spec.mapperFactory = sh::makeStructuralMapperFactory(q, extraction);
  spec.reducerFactory = sh::makeStructuralReducerFactory(q);
  spec.numReducers = 3;
  auto pp = std::make_shared<const PartitionPlus>(extraction, 3, 0);
  spec.partitioner = pp;
  spec.mode = mr::ExecutionMode::kSidr;
  DependencyCalculator calc(pp);
  DependencyInfo deps = calc.computeAll(spec.splits);
  spec.reduceDeps = deps.keyblockToSplits;
  spec.expectedRepresents = deps.expectedRepresents;

  mr::JobResult result = mr::Engine(std::move(spec)).run();
  EXPECT_EQ(result.annotationViolations, 0u);
  expectMatchesOracle(result, sh::runSerialOracle(q, exm, fn));
  CheckJobTrace(result);
}

TEST(Engine, RangeAndSortOperators) {
  // The other two section 2.2 example queries: 24h-variation (range)
  // and per-day sort.
  nd::Coord input{24, 10};
  for (OperatorKind op : {OperatorKind::kRange, OperatorKind::kSort}) {
    sh::StructuralQuery q = makeQuery(op, nd::Coord{6, 5});
    sh::ValueFn fn = sh::temperatureField(17);
    QueryPlanner planner(q, input);
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 3;
    opts.desiredSplitCount = 6;
    opts.recordTrace = true;
    QueryPlan plan = planner.plan(fn, opts);
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    sh::ExtractionMap ex(q, input);
    expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
    CheckJobTrace(result);
  }
}

TEST(Engine, SpilledSegmentsMatchInMemory) {
  // With spillDirectory set, map output lives in real files and reduces
  // tally annotations from 32-byte header reads; results must be
  // identical to the in-memory run.
  nd::Coord input{30, 12, 6};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{5, 4, 3});
  sh::ValueFn fn = sh::windspeedField(9);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 10;

  opts.recordTrace = true;
  QueryPlan mem = planner.plan(fn, opts);
  mr::JobResult memResult = mr::Engine(std::move(mem.spec)).run();
  CheckJobTrace(memResult);

  QueryPlan spill = planner.plan(fn, opts);
  spill.spec.spillDirectory =
      (std::filesystem::temp_directory_path() / "sidr_engine_spill").string();
  mr::JobResult spillResult = mr::Engine(std::move(spill.spec)).run();
  std::filesystem::remove_all(spill.spec.spillDirectory);
  CheckJobTrace(spillResult);

  EXPECT_EQ(spillResult.annotationViolations, 0u);
  EXPECT_EQ(spillResult.shuffleConnections, memResult.shuffleConnections);
  // In-memory mode is zero-copy: no bytes cross the wire format. Spill
  // mode moves every segment through encode + decode.
  EXPECT_EQ(memResult.shuffleBytes, 0u);
  EXPECT_GT(spillResult.shuffleBytes, 0u);
  // Identical per-keyblock outputs AND annotation tallies.
  ASSERT_EQ(spillResult.outputs.size(), memResult.outputs.size());
  for (std::size_t kb = 0; kb < memResult.outputs.size(); ++kb) {
    EXPECT_EQ(spillResult.outputs[kb].annotationTally,
              memResult.outputs[kb].annotationTally);
    ASSERT_EQ(spillResult.outputs[kb].records.size(),
              memResult.outputs[kb].records.size());
    for (std::size_t i = 0; i < memResult.outputs[kb].records.size(); ++i) {
      EXPECT_EQ(spillResult.outputs[kb].records[i].key,
                memResult.outputs[kb].records[i].key);
      EXPECT_EQ(spillResult.outputs[kb].records[i].value,
                memResult.outputs[kb].records[i].value);
    }
  }
  auto a = memResult.collectAll();
  auto b = spillResult.collectAll();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].value, b[i].value);
  }
  sh::ExtractionMap ex(q, input);
  expectMatchesOracle(spillResult, sh::runSerialOracle(q, ex, fn));
}

TEST(Engine, InMemoryShuffleIsZeroCopy) {
  // The acceptance property of the zero-copy shuffle: with spill
  // disabled, no reduce-side segment copy or decode happens at all, so
  // the shuffleBytes counter stays exactly zero while real data flows.
  nd::Coord input{40, 16};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 8;
  QueryPlan plan = planner.plan(sh::temperatureField(3), opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  EXPECT_EQ(result.shuffleBytes, 0u);
  EXPECT_GE(result.shuffleFetchSeconds, 0.0);
  CheckJobTrace(result);
  std::uint64_t totalRecords = 0;
  for (std::uint64_t c : result.recordsPerReducer) totalRecords += c;
  EXPECT_GT(totalRecords, 0u);
}

TEST(Engine, ReduceExceptionPropagatesWithoutWedging) {
  // A reducer that throws must surface its error from run() — not hang
  // on slot accounting (the scheduledActive slot is released in the
  // worker's failure path).
  nd::Coord input{16, 8};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 4;
  opts.reduceSlots = 1;  // a leaked slot would be maximally visible
  QueryPlan plan = planner.plan(sh::temperatureField(5), opts);
  plan.spec.reducerFactory = [] {
    class ThrowingReducer final : public mr::Reducer {
      void reduce(const nd::Coord&, std::span<const mr::Value* const>,
                  mr::ReduceContext&) override {
        throw std::runtime_error("reduce task died");
      }
    };
    return std::make_unique<ThrowingReducer>();
  };
  EXPECT_THROW(mr::Engine(std::move(plan.spec)).run(), std::runtime_error);
}

TEST(Engine, RepeatedRunsAreStableUnderThreads) {
  // Concurrency stress: many threads, repeated runs; results must be
  // identical every time (the dataflow is deterministic even though the
  // schedule is not).
  nd::Coord input{36, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{3, 5});
  sh::ValueFn fn = sh::temperatureField(21);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 6;
  opts.desiredSplitCount = 12;
  opts.numThreads = 8;
  opts.reduceSlots = 2;
  opts.mapSlots = 3;

  std::vector<mr::KeyValue> reference;
  for (int run = 0; run < 5; ++run) {
    QueryPlan plan = planner.plan(fn, opts);
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.annotationViolations, 0u);
    CheckJobTrace(result);
    auto got = result.collectAll();
    if (run == 0) {
      reference = std::move(got);
    } else {
      ASSERT_EQ(got.size(), reference.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].key, reference[i].key);
        EXPECT_EQ(got[i].value, reference[i].value);
      }
    }
  }
}

namespace {

/// A mapper that emits one raw record per input pair (no map-side
/// aggregation) — exercises the engine-level Combiner path.
class RawEmitMapper final : public mr::Mapper {
 public:
  explicit RawEmitMapper(std::shared_ptr<const sh::ExtractionMap> ex)
      : ex_(std::move(ex)) {}
  void map(const nd::Coord& key, double value,
           mr::MapContext& ctx) override {
    auto kp = ex_->keyFor(key);
    if (kp) ctx.emit(*kp, mr::Value::partial(mr::Partial::ofValue(value)));
  }

 private:
  std::shared_ptr<const sh::ExtractionMap> ex_;
};

}  // namespace

TEST(Engine, CombinerShrinksSegmentsWithoutChangingResults) {
  nd::Coord input{24, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 5});
  sh::ValueFn fn = sh::temperatureField(29);
  auto extraction = std::make_shared<const sh::ExtractionMap>(q, input);

  auto makeSpec = [&](bool withCombiner) {
    QueryPlanner planner(q, input);
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 3;
    opts.desiredSplitCount = 6;
    QueryPlan plan = planner.plan(fn, opts);
    // Swap in the raw mapper (one record per input pair).
    plan.spec.mapperFactory = [extraction] {
      return std::make_unique<RawEmitMapper>(extraction);
    };
    if (withCombiner) {
      plan.spec.combinerFactory = [] {
        return std::make_unique<mr::PartialMergeCombiner>();
      };
    }
    return std::move(plan.spec);
  };

  mr::JobResult raw = mr::Engine(makeSpec(false)).run();
  mr::JobResult combined = mr::Engine(makeSpec(true)).run();
  CheckJobTrace(raw);
  CheckJobTrace(combined);

  // Identical results...
  auto a = raw.collectAll();
  auto b = combined.collectAll();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_NEAR(a[i].value.asScalar(), b[i].value.asScalar(), 1e-9);
  }
  // ...but far fewer intermediate records shuffled.
  std::uint64_t rawRecords = 0;
  std::uint64_t combinedRecords = 0;
  for (std::uint64_t c : raw.recordsPerReducer) rawRecords += c;
  for (std::uint64_t c : combined.recordsPerReducer) combinedRecords += c;
  // Without a combiner every consumed input pair ships as one record.
  EXPECT_EQ(rawRecords, static_cast<std::uint64_t>(input.volume()));
  EXPECT_LT(combinedRecords, rawRecords / 10);
  // The annotation tallies remain exact in both runs.
  EXPECT_EQ(raw.annotationViolations, 0u);
  EXPECT_EQ(combined.annotationViolations, 0u);
  sh::ExtractionMap exm(q, input);
  expectMatchesOracle(combined, sh::runSerialOracle(q, exm, fn));
}

TEST(Engine, DatasetBackedRun) {
  nd::Coord input{21, 10};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{7, 5});
  sh::ValueFn fn = sh::temperatureField(5);
  auto dataset =
      sh::makeMemoryDataset("v", sci::DataType::kFloat64, input, fn);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 2;
  opts.desiredSplitCount = 4;
  opts.recordTrace = true;
  QueryPlan plan = planner.plan(dataset, 0, opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  sh::ExtractionMap ex(q, input);
  expectMatchesOracle(result, sh::runSerialOracle(q, ex, fn));
  CheckJobTrace(result);
}

}  // namespace
}  // namespace sidr::core
