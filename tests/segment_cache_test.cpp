// Segment-cache suite (DESIGN.md §16): warm map output across repeated
// structural queries must be invisible except for the skipped work —
//
//  * the MapFingerprint utility: pinned digests (the algorithm is a
//    frozen key format), unambiguous field boundaries, determinism;
//  * planner keying: byte-identical plans share a fingerprint; every
//    field that changes map-output bytes changes the key; execution
//    knobs (threads, slots, spill plumbing, trace, faults) do not;
//  * SegmentCache in isolation: hit/miss accounting, first-donor-wins,
//    LRU eviction under a cap, demotion to committed spill files and
//    promotion back, graceful miss when the backing files vanish;
//  * through EngineService: a warm resubmission is bit-identical to its
//    cold run with ZERO map tasks (pinned by attempt-span counts),
//    across the in-memory / eager-spill / compressed / hybrid regimes;
//    negative keying, faulted and cancelled jobs never donate, eviction
//    under admission pressure, and cache-off behaves exactly like PR 7;
//  * a 16-seed cache-on/off differential and concurrency hammers (slow
//    label; run under TSan/ASan by tier1.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/engine.hpp"
#include "mapreduce/engine_service.hpp"
#include "mapreduce/segment_cache.hpp"
#include "scifile/storage.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/fingerprint.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

namespace fs = std::filesystem;
namespace ts = testsupport;
using sh::OperatorKind;

std::string tempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

void expectSameCollected(const std::vector<mr::KeyValue>& xs,
                         const std::vector<mr::KeyValue>& ys) {
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].key, ys[i].key) << "at " << i;
    EXPECT_EQ(xs[i].value, ys[i].value) << "at " << i;
    EXPECT_EQ(xs[i].represents, ys[i].represents) << "at " << i;
  }
}

mr::JobResult runSolo(const QueryPlan& plan, std::uint64_t soloId) {
  mr::JobSpec spec = plan.spec;
  spec.jobId = soloId;
  return mr::Engine(std::move(spec)).run();
}

/// Submit-and-wait that COPIES the result out: JobHandle::wait's
/// reference is only valid while a handle to the job lives.
mr::JobResult runService(mr::EngineService& service, mr::JobSpec spec) {
  mr::JobHandle handle = service.submit(std::move(spec));
  return handle.wait();
}

std::size_t countSpans(const obs::Trace& trace, obs::Phase phase,
                       obs::TaskSide side) {
  return static_cast<std::size_t>(std::count_if(
      trace.spans.begin(), trace.spans.end(), [&](const obs::Span& s) {
        return s.phase == phase && s.side == side;
      }));
}

/// The shuffle regimes a cached query can run under. kFaulted is the
/// control arm: fault-injected jobs are excluded from the cache by
/// construction and must behave exactly as without it.
enum class Regime { kInMemory, kEagerSpill, kCompressed, kHybrid, kFaulted };

/// One fingerprinted query plan per (regime, seed). recordTrace is on
/// so tests can pin span-level facts (zero map attempts on a warm run).
QueryPlan cachePlan(Regime regime, const std::string& spillDir,
                    const std::string& datasetId, std::uint64_t seed = 31) {
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2};
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 6;
  opts.numThreads = 2;
  opts.recordTrace = true;
  opts.datasetId = datasetId;
  switch (regime) {
    case Regime::kInMemory:
      break;
    case Regime::kEagerSpill:
      opts.spillDirectory = spillDir;
      break;
    case Regime::kCompressed:
      opts.spillDirectory = spillDir;
      opts.compressSpill = true;
      break;
    case Regime::kHybrid:
      opts.spillDirectory = spillDir;
      opts.memoryBudgetBytes = 2 * mr::SegmentPagePool::kPageBytes;
      opts.mergeWindowBytes = 4096;
      break;
    case Regime::kFaulted:
      opts.spillDirectory = spillDir;
      opts.faultPlan.failMap(0, 1);
      opts.faultPlan.failReduce(1, 1);
      break;
  }
  return QueryPlanner(q, nd::Coord{16, 12})
      .plan(sh::temperatureField(seed), opts);
}

// ---- rendezvous reducer (mirrors the engine_service suite) ----

struct ReduceGate {
  std::mutex m;
  std::condition_variable cv;
  bool blocked = false;
  bool open = false;

  void arriveAndWait() {
    std::unique_lock lk(m);
    blocked = true;
    cv.notify_all();
    cv.wait(lk, [this] { return open; });
  }
  bool waitUntilBlocked() {
    std::unique_lock lk(m);
    return cv.wait_for(lk, std::chrono::seconds(30),
                       [this] { return blocked; });
  }
  void release() {
    std::scoped_lock lk(m);
    open = true;
    cv.notify_all();
  }
};

class GatedReducer : public mr::Reducer {
 public:
  GatedReducer(std::unique_ptr<mr::Reducer> inner,
               std::shared_ptr<ReduceGate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  void reduce(const nd::Coord& key, std::span<const mr::Value* const> values,
              mr::ReduceContext& ctx) override {
    if (gate_ != nullptr) {
      gate_->arriveAndWait();
      gate_ = nullptr;
    }
    inner_->reduce(key, values, ctx);
  }

 private:
  std::unique_ptr<mr::Reducer> inner_;
  std::shared_ptr<ReduceGate> gate_;
};

mr::ReducerFactory gateNthReducer(mr::ReducerFactory inner,
                                  std::shared_ptr<ReduceGate> gate,
                                  std::uint32_t nth) {
  auto counter = std::make_shared<std::atomic<std::uint32_t>>(0);
  return [inner = std::move(inner), gate = std::move(gate), counter,
          nth]() -> std::unique_ptr<mr::Reducer> {
    std::unique_ptr<mr::Reducer> r = inner();
    if (counter->fetch_add(1) == nth) {
      return std::make_unique<GatedReducer>(std::move(r), gate);
    }
    return r;
  };
}

// ---- the fingerprint utility: a frozen key format ----

// These digests ARE the cache key format. If an edit to the builder or
// its serialization changes them, every cached entry in the wild keys
// differently — that is a format break and must be a loud, deliberate
// decision (bump the planner's version tag), not a silent drift.
TEST(Fingerprint, PinnedDigests) {
  const FingerprintBuilder empty;
  EXPECT_EQ(toHex(empty.digest()), "c0f182bc22fd0906fdbe77283c370e4e");

  FingerprintBuilder tag;
  tag.addString("sidr.mapfp.v1");
  EXPECT_EQ(toHex(tag.digest()), "ebca0937a2f8eb256ddadf4db76e17b2");

  FingerprintBuilder mixed;
  mixed.addU64(0x0123456789abcdefULL)
      .addU32(42)
      .addBool(true)
      .addBool(false)
      .addI64(-7)
      .addDouble(1.5)
      .addDouble(-0.0)
      .addString("dataset/v1")
      .addCoord(nd::Coord{4, 3})
      .addRegion(nd::Region(nd::Coord{1, 2}, nd::Coord{3, 4}));
  EXPECT_EQ(toHex(mixed.digest()), "f2c55f4785d439b7895b241391de2099");
}

TEST(Fingerprint, DigestIsDeterministicAndNonConsuming) {
  FingerprintBuilder b;
  b.addString("abc").addU64(7);
  const Fingerprint128 first = b.digest();
  EXPECT_EQ(first, b.digest()) << "digest() must not consume the stream";

  FingerprintBuilder again;
  again.addString("abc").addU64(7);
  EXPECT_EQ(again.digest(), first);
}

TEST(Fingerprint, FieldBoundariesAreUnambiguous) {
  // Length prefixes: the concatenated bytes are identical, the field
  // split is not — the digests must differ.
  FingerprintBuilder ab_c;
  ab_c.addString("ab").addString("c");
  FingerprintBuilder a_bc;
  a_bc.addString("a").addString("bc");
  EXPECT_NE(ab_c.digest(), a_bc.digest());

  // Fixed widths: two u32s never alias one u64 of the same bits.
  FingerprintBuilder two32;
  two32.addU32(1).addU32(0);
  FingerprintBuilder one64;
  one64.addU64(1);
  EXPECT_NE(two32.digest(), one64.digest());

  // IEEE bit patterns: -0.0 and 0.0 compare equal as doubles but are
  // distinct inputs (the planner never relies on float equality).
  FingerprintBuilder pos;
  pos.addDouble(0.0);
  FingerprintBuilder neg;
  neg.addDouble(-0.0);
  EXPECT_NE(pos.digest(), neg.digest());
}

TEST(Fingerprint, CoordsAreRankPrefixed) {
  FingerprintBuilder flat;
  flat.addCoord(nd::Coord{2, 3});
  FingerprintBuilder deeper;
  deeper.addCoord(nd::Coord{2, 3, 1});
  EXPECT_NE(flat.digest(), deeper.digest());

  // An empty coord is still a field, not a no-op.
  FingerprintBuilder withEmpty;
  withEmpty.addCoord(nd::Coord{});
  EXPECT_NE(withEmpty.digest(), FingerprintBuilder{}.digest());
}

// ---- planner keying: what may (and may not) leak into the key ----

TEST(FingerprintPlanner, ByteIdenticalPlansShareAFingerprint) {
  const QueryPlan a = cachePlan(Regime::kInMemory, "", "ds");
  const QueryPlan b = cachePlan(Regime::kInMemory, "", "ds");
  ASSERT_TRUE(a.spec.mapFingerprint.has_value());
  ASSERT_TRUE(b.spec.mapFingerprint.has_value());
  EXPECT_EQ(*a.spec.mapFingerprint, *b.spec.mapFingerprint);
}

TEST(FingerprintPlanner, EmptyDatasetIdLeavesThePlanUnfingerprinted) {
  // The planner cannot know two reader factories feed the same bytes;
  // the caller asserts input identity by naming it. No name, no key.
  const QueryPlan plan = cachePlan(Regime::kInMemory, "", "");
  EXPECT_FALSE(plan.spec.mapFingerprint.has_value());
}

TEST(FingerprintPlanner, KeyedFieldsChangeTheFingerprint) {
  auto fingerprintOf = [](auto mutate) {
    sh::StructuralQuery q;
    q.variable = "v";
    q.op = OperatorKind::kMean;
    q.extractionShape = nd::Coord{2, 2};
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 3;
    opts.desiredSplitCount = 6;
    opts.recordTrace = true;
    opts.datasetId = "ds";
    nd::Coord input{16, 12};
    mutate(q, opts, input);
    const QueryPlan plan =
        QueryPlanner(q, input).plan(sh::temperatureField(31), opts);
    EXPECT_TRUE(plan.spec.mapFingerprint.has_value());
    return toHex(*plan.spec.mapFingerprint);
  };

  const std::string base =
      fingerprintOf([](sh::StructuralQuery&, PlanOptions&, nd::Coord&) {});

  // Every mutation below changes the bytes the map phase produces (or
  // the partition plan over them) and MUST produce a distinct key —
  // pairwise distinct, not just distinct from base.
  const std::vector<std::string> variants = {
      fingerprintOf([](sh::StructuralQuery& q, PlanOptions&, nd::Coord&) {
        q.extractionShape = nd::Coord{3, 2};
      }),
      fingerprintOf([](sh::StructuralQuery& q, PlanOptions&, nd::Coord&) {
        q.op = OperatorKind::kMedian;
      }),
      fingerprintOf([](sh::StructuralQuery& q, PlanOptions&, nd::Coord&) {
        q.filterThreshold = 0.5;
      }),
      fingerprintOf([](sh::StructuralQuery& q, PlanOptions&, nd::Coord&) {
        q.subset = nd::Region(nd::Coord{0, 0}, nd::Coord{12, 12});
      }),
      fingerprintOf([](sh::StructuralQuery& q, PlanOptions&, nd::Coord&) {
        q.stride = nd::Coord{4, 4};
      }),
      fingerprintOf([](sh::StructuralQuery&, PlanOptions& o, nd::Coord&) {
        o.desiredSplitCount = 5;  // split geometry
      }),
      fingerprintOf([](sh::StructuralQuery&, PlanOptions& o, nd::Coord&) {
        o.numReducers = 4;  // partition plan
      }),
      fingerprintOf([](sh::StructuralQuery&, PlanOptions& o, nd::Coord&) {
        o.system = SystemMode::kSciHadoop;
      }),
      fingerprintOf([](sh::StructuralQuery&, PlanOptions& o, nd::Coord&) {
        o.datasetId = "other-dataset";
      }),
      fingerprintOf([](sh::StructuralQuery&, PlanOptions&, nd::Coord& in) {
        in = nd::Coord{18, 12};  // input shape
      }),
  };
  std::set<std::string> distinct(variants.begin(), variants.end());
  distinct.insert(base);
  EXPECT_EQ(distinct.size(), variants.size() + 1)
      << "two different queries collapsed onto one cache key";
}

TEST(FingerprintPlanner, ExecutionKnobsDoNotLeakIntoTheKey) {
  const QueryPlan base = cachePlan(Regime::kInMemory, "", "ds");
  ASSERT_TRUE(base.spec.mapFingerprint.has_value());

  // Same query, different execution plumbing: where segments spill,
  // how many threads run, whether a trace is recorded, what faults are
  // injected — none of it changes the committed map-output bytes, so
  // none of it may change the key. (Faulted jobs are excluded from the
  // cache at the SERVICE level, not by keying them differently.)
  const std::string dir = tempDir("sidr_fp_nonkey");
  for (const Regime regime :
       {Regime::kEagerSpill, Regime::kCompressed, Regime::kHybrid,
        Regime::kFaulted}) {
    const QueryPlan other = cachePlan(regime, dir, "ds");
    ASSERT_TRUE(other.spec.mapFingerprint.has_value());
    EXPECT_EQ(*other.spec.mapFingerprint, *base.spec.mapFingerprint)
        << "regime " << static_cast<int>(regime);
  }

  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2};
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 6;
  opts.datasetId = "ds";
  opts.recordTrace = false;   // vs true in cachePlan
  opts.numThreads = 7;
  opts.mapSlots = 1;
  opts.reduceSlots = 1;
  opts.jobWeight = 4.0;
  opts.keepSpillOnFailure = true;
  opts.reducePriority = {2, 1, 0};
  const QueryPlan tuned =
      QueryPlanner(q, nd::Coord{16, 12}).plan(sh::temperatureField(31), opts);
  ASSERT_TRUE(tuned.spec.mapFingerprint.has_value());
  EXPECT_EQ(*tuned.spec.mapFingerprint, *base.spec.mapFingerprint);
}

// ---- SegmentCache in isolation ----

std::shared_ptr<const mr::Segment> makeSegment(std::uint32_t map,
                                               std::uint32_t kb,
                                               std::size_t records,
                                               double base) {
  std::vector<mr::KeyValue> kvs;
  kvs.reserve(records);
  for (std::size_t i = 0; i < records; ++i) {
    mr::KeyValue kv;
    kv.key = nd::Coord{static_cast<nd::Index>(i)};
    kv.value = mr::Value::scalar(base + static_cast<double>(i));
    kv.represents = 2;
    kvs.push_back(std::move(kv));
  }
  return std::make_shared<const mr::Segment>(map, kb, std::move(kvs));
}

mr::SegmentCacheDonation makeDonation(Fingerprint128 key, std::uint32_t maps,
                                      std::uint32_t reduces, double base) {
  mr::SegmentCacheDonation d;
  d.present = true;
  d.key = key;
  d.numMaps = maps;
  d.numReduces = reduces;
  d.segments.resize(maps);
  for (std::uint32_t m = 0; m < maps; ++m) {
    for (std::uint32_t kb = 0; kb < reduces; ++kb) {
      d.segments[m].push_back(makeSegment(m, kb, 4, base));
    }
  }
  return d;
}

Fingerprint128 testKey(std::uint64_t salt) {
  FingerprintBuilder b;
  b.addString("segment-cache-test").addU64(salt);
  return b.digest();
}

TEST(SegmentCacheUnit, InsertThenClaimServesHandleCopies) {
  mr::SegmentCache cache(/*capBytes=*/0);
  cache.insert(makeDonation(testKey(1), 2, 3, 10.0));
  EXPECT_EQ(cache.entryCount(), 1u);
  EXPECT_GT(cache.residentBytes(), 0u);

  const auto claimed = cache.claim(testKey(1), 2, 3);
  ASSERT_TRUE(claimed.has_value());
  ASSERT_EQ(claimed->segments.size(), 2u);
  ASSERT_EQ(claimed->segments[0].size(), 3u);
  EXPECT_EQ(claimed->bytesServed, cache.residentBytes());
  EXPECT_EQ(claimed->segments[1][2]->records()[0].value.asScalar(), 10.0);
  EXPECT_EQ(claimed->segments[1][2]->records()[0].represents, 2u);

  const mr::SegmentCacheStats& stats = cache.stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.bytesServed, claimed->bytesServed);
}

TEST(SegmentCacheUnit, UnknownKeyMisses) {
  mr::SegmentCache cache(0);
  EXPECT_FALSE(cache.claim(testKey(99), 2, 3).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(SegmentCacheUnit, GeometryMismatchDropsTheEntry) {
  // Same fingerprint, different matrix shape would be a planner
  // canonicalization bug; the cache treats it as a miss and drops the
  // suspect entry rather than serving wrong-shaped data.
  mr::SegmentCache cache(0);
  cache.insert(makeDonation(testKey(1), 2, 3, 1.0));
  EXPECT_FALSE(cache.claim(testKey(1), 2, 4).has_value());
  EXPECT_EQ(cache.entryCount(), 0u);
  EXPECT_EQ(cache.residentBytes(), 0u);
  EXPECT_FALSE(cache.claim(testKey(1), 2, 3).has_value())
      << "the mismatched entry must be gone entirely";
}

TEST(SegmentCacheUnit, FirstDonorWinsOnDuplicateKeys) {
  mr::SegmentCache cache(0);
  cache.insert(makeDonation(testKey(1), 1, 1, 10.0));
  cache.insert(makeDonation(testKey(1), 1, 1, 99.0));  // dropped
  EXPECT_EQ(cache.stats().insertions, 1u);
  const auto claimed = cache.claim(testKey(1), 1, 1);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_EQ(claimed->segments[0][0]->records()[0].value.asScalar(), 10.0);
}

TEST(SegmentCacheUnit, CapEvictsLeastRecentlyUsedFirst) {
  mr::SegmentCache probe(0);
  probe.insert(makeDonation(testKey(0), 1, 1, 0.0));
  const std::uint64_t oneEntry = probe.residentBytes();
  ASSERT_GT(oneEntry, 0u);

  // Room for two entries, not three; entry 1 is touched so entry 2 is
  // the LRU victim when entry 3 arrives.
  mr::SegmentCache cache(2 * oneEntry);
  cache.insert(makeDonation(testKey(1), 1, 1, 1.0));
  cache.insert(makeDonation(testKey(2), 1, 1, 2.0));
  ASSERT_TRUE(cache.claim(testKey(1), 1, 1).has_value());
  cache.insert(makeDonation(testKey(3), 1, 1, 3.0));

  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_TRUE(cache.claim(testKey(1), 1, 1).has_value());
  EXPECT_FALSE(cache.claim(testKey(2), 1, 1).has_value());
  EXPECT_TRUE(cache.claim(testKey(3), 1, 1).has_value());
}

TEST(SegmentCacheUnit, ShedToZeroEmptiesMemoryOnlyEntries) {
  mr::SegmentCache cache(0);
  cache.insert(makeDonation(testKey(1), 2, 2, 1.0));
  cache.insert(makeDonation(testKey(2), 2, 2, 2.0));
  cache.shedTo(0);
  EXPECT_EQ(cache.residentBytes(), 0u);
  EXPECT_EQ(cache.entryCount(), 0u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.stats().demotions, 0u);
}

TEST(SegmentCacheUnit, FileBackedEntryDemotesAndPromotes) {
  const std::string dir = tempDir("sidr_cache_files");
  // Write one committed-segment file the way the spill path frames an
  // uncompressed segment: Segment::serialize bytes, whole file.
  const auto original = makeSegment(0, 0, 5, 7.0);
  const std::vector<std::byte> bytes = original->serialize();
  const std::string path = dir + "/seg_m0_kb0.seg";
  {
    sci::FileStorage file(path, sci::FileStorage::Mode::kCreate);
    file.resize(bytes.size());
    file.writeAt(0, bytes);
    file.flush();
  }

  mr::SegmentCacheDonation d;
  d.present = true;
  d.key = testKey(1);
  d.numMaps = 1;
  d.numReduces = 1;
  d.compressed = false;
  d.keySpace = nd::Coord{8};
  d.paths = {{path}};
  mr::SegmentCache cache(0);
  cache.insert(std::move(d));
  EXPECT_EQ(cache.residentBytes(), 0u) << "file-backed entries born demoted";

  // First claim promotes: reload, relinearize, serve.
  const auto claimed = cache.claim(testKey(1), 1, 1);
  ASSERT_TRUE(claimed.has_value());
  EXPECT_GT(cache.residentBytes(), 0u);
  const auto& records = claimed->segments[0][0]->records();
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[2].value.asScalar(), 9.0);
  EXPECT_TRUE(claimed->segments[0][0]->hasLinearKeys());

  // Shedding demotes (the files still back it) instead of evicting.
  cache.shedTo(0);
  EXPECT_EQ(cache.residentBytes(), 0u);
  EXPECT_EQ(cache.entryCount(), 1u);
  EXPECT_EQ(cache.stats().demotions, 1u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // And a later claim promotes it right back.
  const auto again = cache.claim(testKey(1), 1, 1);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->segments[0][0]->records()[0].value.asScalar(), 7.0);
}

TEST(SegmentCacheUnit, VanishedBackingFilesDegradeToAMiss) {
  mr::SegmentCacheDonation d;
  d.present = true;
  d.key = testKey(1);
  d.numMaps = 1;
  d.numReduces = 1;
  d.paths = {{"/nonexistent/sidr/seg_m0_kb0.seg"}};
  mr::SegmentCache cache(0);
  cache.insert(std::move(d));
  EXPECT_EQ(cache.entryCount(), 1u);

  EXPECT_FALSE(cache.claim(testKey(1), 1, 1).has_value());
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.entryCount(), 0u) << "unloadable entries are dropped";
}

// ---- through the service: warm hits must be invisible ----

TEST(SegmentCacheService, WarmResubmissionBitIdenticalWithZeroMapTasks) {
  const std::string dir = tempDir("sidr_cache_warm");
  const QueryPlan plan = cachePlan(Regime::kInMemory, "", "ds/warm");
  const mr::JobResult solo = runSolo(plan, 500);
  const auto numMaps = static_cast<std::uint32_t>(plan.spec.splits.size());

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  const mr::JobResult cold = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(cold.collectAll(), solo.collectAll());
  EXPECT_EQ(cold.cacheServedMaps, 0u);
  EXPECT_GT(countSpans(cold.trace, obs::Phase::kTaskAttempt,
                       obs::TaskSide::kMap),
            0u);

  const mr::JobResult warm = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(warm.collectAll(), solo.collectAll());
  EXPECT_EQ(warm.annotationViolations, 0u);
  EXPECT_EQ(warm.recordsPerReducer, solo.recordsPerReducer);

  // The headline claim, pinned at span granularity: the warm run
  // executed ZERO map tasks — no map attempt spans, one cache-fetch
  // span per skipped map instead — yet committed every keyblock under
  // the same gating invariants a cold run obeys.
  EXPECT_EQ(countSpans(warm.trace, obs::Phase::kTaskAttempt,
                       obs::TaskSide::kMap),
            0u);
  EXPECT_EQ(countSpans(warm.trace, obs::Phase::kCacheFetch,
                       obs::TaskSide::kMap),
            numMaps);
  EXPECT_EQ(countSpans(warm.trace, obs::Phase::kRenameCommit,
                       obs::TaskSide::kMap),
            static_cast<std::size_t>(numMaps) * plan.spec.numReducers);
  EXPECT_EQ(warm.cacheServedMaps, numMaps);
  EXPECT_GT(warm.cacheBytesServed, 0u);
  EXPECT_EQ(warm.trace.counterValue("cache.servedMaps"), numMaps);
  ts::CheckJobTrace(warm);
  ts::ExpectCommitGating(warm.trace, plan.dependencies.keyblockToSplits);

  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheMisses, 1u);
  EXPECT_EQ(stats.cacheHits, 1u);
  EXPECT_EQ(stats.cacheInsertions, 1u);
  EXPECT_EQ(stats.cacheBytesServed, warm.cacheBytesServed);
  EXPECT_GT(stats.cacheResidentBytes, 0u);
}

TEST(SegmentCacheService, SpillDonorsServeWarmHitsFromCommittedFiles) {
  // Eager-spill and compressed donors donate file-backed entries (born
  // demoted, zero resident charge); the warm claim re-loads them
  // through the same decode paths a reduce fetch uses.
  for (const Regime regime : {Regime::kEagerSpill, Regime::kCompressed}) {
    const std::string dir =
        tempDir(std::string("sidr_cache_spill_") +
                (regime == Regime::kCompressed ? "z" : "raw"));
    const QueryPlan plan = cachePlan(regime, dir, "ds/spill");
    const mr::JobResult solo = runSolo(plan, 500);
    const auto numMaps = static_cast<std::uint32_t>(plan.spec.splits.size());

    mr::ServiceConfig config;
    config.numThreads = 3;
    config.segmentCacheEnabled = true;
    mr::EngineService service(config);

    const mr::JobResult cold = runService(service, mr::JobSpec(plan.spec));
    expectSameCollected(cold.collectAll(), solo.collectAll());
    EXPECT_EQ(service.stats().cacheResidentBytes, 0u)
        << "spill donations must not charge resident memory at insert";

    const mr::JobResult warm = runService(service, mr::JobSpec(plan.spec));
    expectSameCollected(warm.collectAll(), solo.collectAll());
    EXPECT_EQ(warm.cacheServedMaps, numMaps);
    EXPECT_EQ(countSpans(warm.trace, obs::Phase::kTaskAttempt,
                         obs::TaskSide::kMap),
              0u);
    EXPECT_EQ(service.stats().cacheHits, 1u);
  }
}

TEST(SegmentCacheService, HybridBudgetJobsHitWarmUnderPressure) {
  const std::string dir = tempDir("sidr_cache_hybrid");
  const QueryPlan plan = cachePlan(Regime::kHybrid, dir, "ds/hybrid");
  const mr::JobResult solo = runSolo(plan, 500);

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  const mr::JobResult cold = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(cold.collectAll(), solo.collectAll());
  const mr::JobResult warm = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(warm.collectAll(), solo.collectAll());
  EXPECT_EQ(warm.cacheServedMaps,
            static_cast<std::uint32_t>(plan.spec.splits.size()));
  EXPECT_EQ(service.stats().cacheHits, 1u);
}

TEST(SegmentCacheService, NegativeKeyingRunsEveryVariantCold) {
  const std::string dir = tempDir("sidr_cache_negative");
  const QueryPlan base = cachePlan(Regime::kInMemory, "", "ds/neg");

  // Variants that differ in exactly one keyed dimension.
  std::vector<QueryPlan> variants;
  {
    sh::StructuralQuery q;
    q.variable = "v";
    q.op = OperatorKind::kMean;
    q.extractionShape = nd::Coord{3, 2};  // different extraction shape
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 3;
    opts.desiredSplitCount = 6;
    opts.numThreads = 2;
    opts.recordTrace = true;
    opts.datasetId = "ds/neg";
    variants.push_back(
        QueryPlanner(q, nd::Coord{16, 12}).plan(sh::temperatureField(31), opts));

    q.extractionShape = nd::Coord{2, 2};
    opts.desiredSplitCount = 5;  // different split geometry
    variants.push_back(
        QueryPlanner(q, nd::Coord{16, 12}).plan(sh::temperatureField(31), opts));

    opts.desiredSplitCount = 6;
    opts.numReducers = 4;  // different keyspace / partition plan
    variants.push_back(
        QueryPlanner(q, nd::Coord{16, 12}).plan(sh::temperatureField(31), opts));

    opts.numReducers = 3;
    opts.datasetId = "ds/OTHER";  // different input identity
    variants.push_back(
        QueryPlanner(q, nd::Coord{16, 12}).plan(sh::temperatureField(31), opts));
  }

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  const mr::JobResult cold = runService(service, mr::JobSpec(base.spec));
  EXPECT_EQ(cold.cacheServedMaps, 0u);

  for (std::size_t i = 0; i < variants.size(); ++i) {
    const mr::JobResult solo = runSolo(variants[i], 600 + i);
    const mr::JobResult got =
        runService(service, mr::JobSpec(variants[i].spec));
    EXPECT_EQ(got.cacheServedMaps, 0u) << "variant " << i << " must MISS";
    expectSameCollected(got.collectAll(), solo.collectAll());
  }
  EXPECT_EQ(service.stats().cacheHits, 0u);
  EXPECT_EQ(service.stats().cacheMisses, 1u + variants.size());

  // And the control: the byte-identical resubmission still hits.
  const mr::JobResult warm = runService(service, mr::JobSpec(base.spec));
  EXPECT_EQ(warm.cacheServedMaps,
            static_cast<std::uint32_t>(base.spec.splits.size()));
  EXPECT_EQ(service.stats().cacheHits, 1u);
}

TEST(SegmentCacheService, FaultedJobsNeverTouchTheCache) {
  // A FaultPlan means recovery may re-execute and republish maps; such
  // a job is excluded from the cache entirely (neither donor nor
  // claimant), so recovery can never republish over a cache-served
  // slot — the exclusion makes the race unrepresentable.
  const std::string dir = tempDir("sidr_cache_fault");
  const QueryPlan plan = cachePlan(Regime::kFaulted, dir, "ds/fault");
  ASSERT_TRUE(plan.spec.mapFingerprint.has_value())
      << "faults do not change the key; eligibility is a service gate";
  const mr::JobResult solo = runSolo(plan, 500);

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  for (int run = 0; run < 2; ++run) {
    const mr::JobResult got = runService(service, mr::JobSpec(plan.spec));
    expectSameCollected(got.collectAll(), solo.collectAll());
    EXPECT_EQ(got.cacheServedMaps, 0u) << "run " << run;
    EXPECT_GT(got.mapFailures, 0u) << "the injected fault must fire";
  }
  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheHits, 0u);
  EXPECT_EQ(stats.cacheMisses, 0u) << "ineligible jobs never even probe";
  EXPECT_EQ(stats.cacheInsertions, 0u);
}

TEST(SegmentCacheService, CancelledJobsNeverDonate) {
  const std::string dir = tempDir("sidr_cache_cancel");
  // One reduce slot and a gate on the second reduce attempt: the job is
  // mid-run (some maps committed) when the cancel lands.
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2};
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 5;
  opts.reduceSlots = 1;
  opts.numThreads = 2;
  opts.recordTrace = true;
  opts.datasetId = "ds/cancel";
  QueryPlan plan =
      QueryPlanner(q, nd::Coord{18, 12}).plan(sh::temperatureField(11), opts);
  const mr::JobResult solo = runSolo(plan, 500);

  auto gate = std::make_shared<ReduceGate>();
  mr::JobSpec gated = plan.spec;
  gated.reducerFactory = gateNthReducer(std::move(gated.reducerFactory), gate, 1);

  mr::ServiceConfig config;
  config.numThreads = 2;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  mr::JobHandle doomed = service.submit(std::move(gated));
  ASSERT_TRUE(gate->waitUntilBlocked());
  EXPECT_TRUE(doomed.cancel());
  gate->release();
  EXPECT_THROW(doomed.wait(), mr::JobCancelled);
  EXPECT_EQ(service.stats().cacheInsertions, 0u)
      << "a cancelled job committed maps but must not donate them";

  // The resubmission finds a cold cache, runs everything itself, and
  // becomes the first donor.
  const mr::JobResult retry = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(retry.collectAll(), solo.collectAll());
  EXPECT_EQ(retry.cacheServedMaps, 0u);
  EXPECT_EQ(service.stats().cacheHits, 0u);
  EXPECT_EQ(service.stats().cacheInsertions, 1u);
}

TEST(SegmentCacheService, TinyCapEvictsMemoryOnlyDonationsButStaysCorrect) {
  const QueryPlan plan = cachePlan(Regime::kInMemory, "", "ds/tiny");
  const mr::JobResult solo = runSolo(plan, 500);

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.segmentCacheEnabled = true;
  config.segmentCacheBytes = 1;  // nothing fits resident
  mr::EngineService service(config);

  const mr::JobResult cold = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(cold.collectAll(), solo.collectAll());
  EXPECT_GE(service.stats().cacheEvictions, 1u)
      << "an in-memory donation has no files to demote to";

  const mr::JobResult second = runService(service, mr::JobSpec(plan.spec));
  expectSameCollected(second.collectAll(), solo.collectAll());
  EXPECT_EQ(second.cacheServedMaps, 0u) << "evicted entries cannot serve";
}

TEST(SegmentCacheService, TinyCapDemotesSpillDonationsAndStillServes) {
  const std::string dir = tempDir("sidr_cache_tiny_spill");
  const QueryPlan plan = cachePlan(Regime::kEagerSpill, dir, "ds/tinyspill");
  const mr::JobResult solo = runSolo(plan, 500);

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.segmentCacheEnabled = true;
  config.segmentCacheBytes = 1;
  mr::EngineService service(config);

  runService(service, mr::JobSpec(plan.spec));
  // The warm claim promotes the entry, serves handle copies, and the
  // cap immediately demotes it back to its files — every round trip.
  for (int round = 0; round < 2; ++round) {
    const mr::JobResult warm = runService(service, mr::JobSpec(plan.spec));
    expectSameCollected(warm.collectAll(), solo.collectAll());
    EXPECT_EQ(warm.cacheServedMaps,
              static_cast<std::uint32_t>(plan.spec.splits.size()))
        << "round " << round;
  }
  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheHits, 2u);
  EXPECT_GE(stats.cacheDemotions, 2u);
  EXPECT_LE(stats.cacheResidentBytes, 1u);
}

TEST(SegmentCacheService, AdmissionPressureShedsTheCacheJobsWin) {
  const std::string dir = tempDir("sidr_cache_ledger");
  constexpr auto kPage = mr::SegmentPagePool::kPageBytes;
  QueryPlan plan = cachePlan(Regime::kHybrid, dir, "ds/ledger");

  mr::ServiceConfig config;
  config.numThreads = 3;
  config.memoryBudgetBytes = 3 * kPage;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  // The donor (2-page budget) completes and donates a resident entry.
  runService(service, mr::JobSpec(plan.spec));
  EXPECT_GT(service.stats().cacheResidentBytes, 0u);

  // A job claiming the WHOLE ledger must not wait on cache residency:
  // admission sheds the cache first (memory-only entry -> evicted).
  // Unfingerprinted, so it neither claims the entry nor re-donates one
  // after its reservation is released.
  mr::JobSpec hungry = plan.spec;
  hungry.memoryBudgetBytes = 3 * kPage;
  hungry.mapFingerprint.reset();
  runService(service, std::move(hungry));
  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheResidentBytes, 0u);
  EXPECT_GE(stats.cacheEvictions, 1u);
  EXPECT_EQ(stats.succeeded, 2u);
}

TEST(SegmentCacheService, DisabledCacheKeepsColdBehavior) {
  const QueryPlan plan = cachePlan(Regime::kInMemory, "", "ds/off");
  const mr::JobResult solo = runSolo(plan, 500);

  mr::EngineService service;  // ServiceConfig default: cache OFF
  ASSERT_FALSE(service.config().segmentCacheEnabled);

  for (int run = 0; run < 2; ++run) {
    const mr::JobResult got = runService(service, mr::JobSpec(plan.spec));
    expectSameCollected(got.collectAll(), solo.collectAll());
    EXPECT_EQ(got.cacheServedMaps, 0u);
    EXPECT_EQ(got.cacheBytesServed, 0u);
    EXPECT_GT(countSpans(got.trace, obs::Phase::kTaskAttempt,
                         obs::TaskSide::kMap),
              0u)
        << "run " << run << " must execute its own maps";
  }
  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cacheHits, 0u);
  EXPECT_EQ(stats.cacheMisses, 0u);
  EXPECT_EQ(stats.cacheInsertions, 0u);
  EXPECT_EQ(stats.cacheResidentBytes, 0u);
}

// ---- the differential: 16 seeds x cache on/off x every regime ----

TEST(SegmentCacheService, SixteenSeedDifferentialCacheOnOff) {
  const std::string dir = tempDir("sidr_cache_diff");
  for (std::uint64_t seed = 0; seed < 16; ++seed) {
    const auto regime = static_cast<Regime>(seed % 5);
    const std::string seedDir = dir + "/s" + std::to_string(seed);
    fs::create_directories(seedDir);
    const QueryPlan plan =
        cachePlan(regime, seedDir, "ds/diff" + std::to_string(seed),
                  31 + seed);
    const mr::JobResult solo = runSolo(plan, 500 + seed);

    for (const bool cacheOn : {true, false}) {
      mr::ServiceConfig config;
      config.numThreads = 3;
      config.segmentCacheEnabled = cacheOn;
      mr::EngineService service(config);
      const mr::JobResult cold = runService(service, mr::JobSpec(plan.spec));
      const mr::JobResult warm = runService(service, mr::JobSpec(plan.spec));
      expectSameCollected(cold.collectAll(), solo.collectAll());
      expectSameCollected(warm.collectAll(), solo.collectAll());
      EXPECT_EQ(cold.annotationViolations, 0u);
      EXPECT_EQ(warm.annotationViolations, 0u);
      const bool expectHit = cacheOn && regime != Regime::kFaulted;
      EXPECT_EQ(warm.cacheServedMaps,
                expectHit ? static_cast<std::uint32_t>(plan.spec.splits.size())
                          : 0u)
          << "seed " << seed << " cacheOn " << cacheOn;
    }
  }
}

// ---- hammers (slow label; tier1.sh runs them under TSan and ASan) ----

TEST(SegmentCacheHammer, ConcurrentFingerprintsRaceDonationAndClaim) {
  // 24 jobs over 3 fingerprints x every regime, racing on 4 workers
  // with a cap small enough to force eviction/demotion churn while
  // claims are in flight. Every job must match its solo baseline.
  const std::string dir = tempDir("sidr_cache_hammer");
  constexpr std::size_t kDistinct = 3;
  constexpr std::size_t kJobs = 24;

  std::vector<QueryPlan> plans;
  std::vector<mr::JobResult> solos;
  for (std::size_t i = 0; i < kDistinct; ++i) {
    const auto regime = static_cast<Regime>(i % 5);
    plans.push_back(cachePlan(regime, dir, "ds/hammer" + std::to_string(i),
                              41 + i));
    solos.push_back(runSolo(plans.back(), 900 + i));
  }

  mr::ServiceConfig config;
  config.numThreads = 4;
  config.maxConcurrentJobs = 4;
  config.segmentCacheEnabled = true;
  config.segmentCacheBytes = 64 * 1024;
  mr::EngineService service(config);

  std::vector<mr::JobHandle> handles;
  for (std::size_t i = 0; i < kJobs; ++i) {
    handles.push_back(service.submit(mr::JobSpec(plans[i % kDistinct].spec)));
  }
  for (std::size_t i = 0; i < kJobs; ++i) {
    const mr::JobResult& result = handles[i].wait();
    expectSameCollected(result.collectAll(),
                        solos[i % kDistinct].collectAll());
    EXPECT_EQ(result.annotationViolations, 0u) << "job " << i;
  }
  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.succeeded, kJobs);
  EXPECT_EQ(stats.cacheHits + stats.cacheMisses, kJobs)
      << "every eligible job probes exactly once";
}

TEST(SegmentCacheHammer, CancelsRaceDonationWithoutPoisoningTheCache) {
  // Interleave doomed (cancelled asap) and healthy submissions of the
  // SAME fingerprint: whatever the cancels land on, every SUCCEEDED
  // job must be exact, and donations only ever come from successes.
  const std::string dir = tempDir("sidr_cache_hammer_cancel");
  const QueryPlan plan =
      cachePlan(Regime::kInMemory, "", "ds/hammer-cancel", 53);
  const mr::JobResult solo = runSolo(plan, 900);

  mr::ServiceConfig config;
  config.numThreads = 4;
  config.maxConcurrentJobs = 3;
  config.segmentCacheEnabled = true;
  mr::EngineService service(config);

  constexpr int kRounds = 12;
  std::vector<mr::JobHandle> doomed;
  std::vector<mr::JobHandle> healthy;
  for (int i = 0; i < kRounds; ++i) {
    mr::JobHandle d = service.submit(mr::JobSpec(plan.spec));
    d.cancel();  // races admission, donation, and the claim path
    doomed.push_back(std::move(d));
    healthy.push_back(service.submit(mr::JobSpec(plan.spec)));
  }

  std::uint64_t cancelled = 0;
  for (mr::JobHandle& h : doomed) {
    try {
      expectSameCollected(h.wait().collectAll(), solo.collectAll());
    } catch (const mr::JobCancelled&) {
      ++cancelled;
    }
  }
  for (mr::JobHandle& h : healthy) {
    expectSameCollected(h.wait().collectAll(), solo.collectAll());
  }

  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, cancelled);
  EXPECT_EQ(stats.succeeded + stats.cancelled, 2 * kRounds);
  EXPECT_LE(stats.cacheInsertions, 1u) << "one fingerprint, one donor";
  EXPECT_GE(stats.succeeded, static_cast<std::uint64_t>(kRounds));
}

}  // namespace
}  // namespace sidr::core
