#include <gtest/gtest.h>

#include <set>

#include "dfs/namenode.hpp"

namespace sidr::dfs {
namespace {

TEST(Namenode, BlocksCoverFileExactly) {
  Namenode nn(24);
  FileId id = nn.addFile("data", 1000, 128);
  const FileInfo& info = nn.file(id);
  EXPECT_EQ(info.blocks.size(), 8u);  // ceil(1000/128)
  std::uint64_t covered = 0;
  for (const auto& b : info.blocks) {
    EXPECT_EQ(b.offset, covered);
    covered += b.length;
  }
  EXPECT_EQ(covered, 1000u);
  EXPECT_EQ(info.blocks.back().length, 1000u % 128u);
}

TEST(Namenode, ReplicationFactorHonored) {
  Namenode nn(24, 3);
  FileId id = nn.addFile("data", 10 * 128, 128);
  for (const auto& b : nn.file(id).blocks) {
    EXPECT_EQ(b.replicas.size(), 3u);
    std::set<NodeId> distinct(b.replicas.begin(), b.replicas.end());
    EXPECT_EQ(distinct.size(), 3u) << "replicas must be on distinct nodes";
    for (NodeId n : b.replicas) EXPECT_LT(n, 24u);
  }
}

TEST(Namenode, ReplicationClampedToClusterSize) {
  Namenode nn(2, 3);
  FileId id = nn.addFile("data", 128, 128);
  EXPECT_EQ(nn.file(id).blocks[0].replicas.size(), 2u);
}

TEST(Namenode, DeterministicPlacementPerSeed) {
  Namenode a(24, 3, 7);
  Namenode b(24, 3, 7);
  Namenode c(24, 3, 8);
  FileId fa = a.addFile("x", 20 * 128, 128);
  FileId fb = b.addFile("x", 20 * 128, 128);
  FileId fc = c.addFile("x", 20 * 128, 128);
  bool anyDiffer = false;
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(a.file(fa).blocks[i].replicas, b.file(fb).blocks[i].replicas);
    if (a.file(fa).blocks[i].replicas != c.file(fc).blocks[i].replicas) {
      anyDiffer = true;
    }
  }
  EXPECT_TRUE(anyDiffer) << "different seeds should differ somewhere";
}

TEST(Namenode, BlockAtAndRangeLookup) {
  Namenode nn(8);
  FileId id = nn.addFile("data", 1024, 256);
  EXPECT_EQ(nn.blockAt(id, 0).offset, 0u);
  EXPECT_EQ(nn.blockAt(id, 255).offset, 0u);
  EXPECT_EQ(nn.blockAt(id, 256).offset, 256u);
  EXPECT_THROW(nn.blockAt(id, 1024), std::out_of_range);
  // A range's locality comes from the block holding its midpoint.
  EXPECT_EQ(&nn.hostsForRange(id, 0, 256), &nn.blockAt(id, 127).replicas);
  EXPECT_EQ(&nn.hostsForRange(id, 200, 200), &nn.blockAt(id, 299).replicas);
}

TEST(Namenode, IsLocalMatchesReplicas) {
  Namenode nn(8);
  FileId id = nn.addFile("data", 512, 256);
  const auto& hosts = nn.hostsForRange(id, 0, 256);
  for (NodeId n = 0; n < 8; ++n) {
    bool expected =
        std::find(hosts.begin(), hosts.end(), n) != hosts.end();
    EXPECT_EQ(nn.isLocal(id, 0, 256, n), expected);
  }
}

TEST(Namenode, WriterNodeGetsFirstReplica) {
  Namenode nn(16);
  FileId id = nn.addFile("data", 4 * 128, 128, /*writerNode=*/5);
  for (const auto& b : nn.file(id).blocks) {
    EXPECT_EQ(b.replicas.front(), 5u);
  }
}

TEST(Namenode, RotatingWriterSpreadsFirstReplicas) {
  Namenode nn(4);
  FileId id = nn.addFile("data", 8 * 128, 128);
  std::set<NodeId> firsts;
  for (const auto& b : nn.file(id).blocks) firsts.insert(b.replicas.front());
  EXPECT_EQ(firsts.size(), 4u) << "bulk ingest should rotate writers";
}

TEST(Namenode, Validation) {
  Namenode nn(4);
  EXPECT_THROW(Namenode(0), std::invalid_argument);
  EXPECT_THROW(nn.addFile("x", 100, 0), std::invalid_argument);
  nn.addFile("dup", 100, 10);
  EXPECT_THROW(nn.addFile("dup", 100, 10), std::invalid_argument);
  EXPECT_THROW(nn.fileByName("missing"), std::invalid_argument);
  EXPECT_EQ(nn.fileByName("dup").name, "dup");
}

}  // namespace
}  // namespace sidr::dfs
