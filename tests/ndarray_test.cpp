#include <gtest/gtest.h>

#include <unordered_set>

#include "ndarray/coord.hpp"
#include "ndarray/region.hpp"
#include "ndarray/tiling.hpp"

namespace sidr::nd {
namespace {

TEST(Coord, ConstructionAndAccess) {
  Coord c{7200, 360, 720, 50};
  EXPECT_EQ(c.rank(), 4u);
  EXPECT_EQ(c[0], 7200);
  EXPECT_EQ(c[3], 50);
  EXPECT_EQ(c.at(3), 50);
  EXPECT_THROW(c.at(4), std::out_of_range);
}

TEST(Coord, RankLimit) {
  EXPECT_THROW((Coord{1, 2, 3, 4, 5, 6, 7, 8, 9}), std::length_error);
  EXPECT_NO_THROW((Coord{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Coord, FilledZerosOnes) {
  EXPECT_EQ(Coord::zeros(3), (Coord{0, 0, 0}));
  EXPECT_EQ(Coord::ones(2), (Coord{1, 1}));
  EXPECT_EQ(Coord::filled(2, 9), (Coord{9, 9}));
}

TEST(Coord, Volume) {
  EXPECT_EQ((Coord{365, 250, 200}).volume(), 365 * 250 * 200);
  EXPECT_EQ(Coord().volume(), 1);  // empty product
  EXPECT_EQ((Coord{7200, 360, 720, 50}).volume(), 93312000000LL);
}

TEST(Coord, Arithmetic) {
  Coord a{10, 20};
  Coord b{3, 4};
  EXPECT_EQ(a.plus(b), (Coord{13, 24}));
  EXPECT_EQ(a.minus(b), (Coord{7, 16}));
  EXPECT_EQ(a.times(b), (Coord{30, 80}));
  EXPECT_EQ(a.min(b), (Coord{3, 4}));
  EXPECT_EQ(a.max(b), (Coord{10, 20}));
  EXPECT_THROW(a.plus(Coord{1}), std::invalid_argument);
}

TEST(Coord, FloorDivision) {
  // The paper's key translation example: {157, 34, 82} with extraction
  // shape {7, 5, 1} maps to {22, 6, 82}.
  Coord k{157, 34, 82};
  Coord e{7, 5, 1};
  EXPECT_EQ(k.dividedBy(e), (Coord{22, 6, 82}));
  EXPECT_THROW(k.dividedBy(Coord{0, 1, 1}), std::invalid_argument);
}

TEST(Coord, LexicographicOrder) {
  EXPECT_LT((Coord{1, 9}), (Coord{2, 0}));
  EXPECT_LT((Coord{1, 1}), (Coord{1, 2}));
  EXPECT_EQ((Coord{1, 2}), (Coord{1, 2}));
}

TEST(Coord, ToStringAndParseRoundTrip) {
  Coord c{365, 250, 200};
  EXPECT_EQ(c.toString(), "{365, 250, 200}");
  EXPECT_EQ(Coord::parse(c.toString()), c);
  EXPECT_EQ(Coord::parse("{ 1 ,2, 3 }"), (Coord{1, 2, 3}));
  EXPECT_EQ(Coord::parse("{}"), Coord());
  EXPECT_EQ(Coord::parse("{-5}"), (Coord{-5}));
  EXPECT_THROW(Coord::parse("1,2"), std::invalid_argument);
  EXPECT_THROW(Coord::parse("{1,2"), std::invalid_argument);
  EXPECT_THROW(Coord::parse("{1,,2}"), std::invalid_argument);
}

TEST(Coord, HashDistinguishesRankAndValues) {
  EXPECT_NE((Coord{1, 0}).hash(), (Coord{1}).hash());
  EXPECT_NE((Coord{1, 2}).hash(), (Coord{2, 1}).hash());
  EXPECT_EQ((Coord{3, 4}).hash(), (Coord{3, 4}).hash());
}

TEST(Linearize, RowMajorOrderMatchesCursor) {
  Coord shape{3, 4, 5};
  Index expected = 0;
  for (RegionCursor cur(Region::wholeSpace(shape)); cur.valid(); cur.next()) {
    EXPECT_EQ(linearize(cur.coord(), shape), expected);
    EXPECT_EQ(delinearize(expected, shape), cur.coord());
    ++expected;
  }
  EXPECT_EQ(expected, shape.volume());
}

TEST(Region, BasicProperties) {
  Region r(Coord{10, 20}, Coord{5, 6});
  EXPECT_EQ(r.volume(), 30);
  EXPECT_EQ(r.end(), (Coord{15, 26}));
  EXPECT_EQ(r.last(), (Coord{14, 25}));
  EXPECT_TRUE(r.contains(Coord{10, 20}));
  EXPECT_TRUE(r.contains(Coord{14, 25}));
  EXPECT_FALSE(r.contains(Coord{15, 20}));
  EXPECT_FALSE(r.contains(Coord{9, 20}));
  EXPECT_THROW(Region(Coord{0}, Coord{0}), std::invalid_argument);
  EXPECT_THROW(Region(Coord{0, 0}, Coord{1}), std::invalid_argument);
}

TEST(Region, ContainsRegion) {
  Region outer(Coord{0, 0}, Coord{10, 10});
  EXPECT_TRUE(outer.containsRegion(Region(Coord{2, 3}, Coord{4, 5})));
  EXPECT_TRUE(outer.containsRegion(outer));
  EXPECT_FALSE(outer.containsRegion(Region(Coord{8, 8}, Coord{3, 3})));
}

TEST(Region, Intersection) {
  Region a(Coord{0, 0}, Coord{10, 10});
  Region b(Coord{5, 5}, Coord{10, 10});
  auto i = a.intersect(b);
  ASSERT_TRUE(i.has_value());
  EXPECT_EQ(i->corner(), (Coord{5, 5}));
  EXPECT_EQ(i->shape(), (Coord{5, 5}));
  EXPECT_FALSE(a.intersect(Region(Coord{10, 0}, Coord{1, 1})).has_value());
  EXPECT_FALSE(a.overlaps(Region(Coord{20, 20}, Coord{2, 2})));
}

TEST(Region, LinearOffsetRoundTrip) {
  Region r(Coord{3, 7}, Coord{4, 9});
  Index off = 0;
  for (RegionCursor cur(r); cur.valid(); cur.next()) {
    EXPECT_EQ(r.linearOffsetOf(cur.coord()), off);
    EXPECT_EQ(r.coordAtOffset(off), cur.coord());
    ++off;
  }
}

TEST(RegionCursor, VisitsEveryCoordinateOnce) {
  Region r(Coord{1, 2, 3}, Coord{2, 3, 2});
  std::unordered_set<Coord> seen;
  for (RegionCursor cur(r); cur.valid(); cur.next()) {
    EXPECT_TRUE(r.contains(cur.coord()));
    EXPECT_TRUE(seen.insert(cur.coord()).second) << "duplicate coordinate";
  }
  EXPECT_EQ(static_cast<Index>(seen.size()), r.volume());
}

TEST(Tiling, GridShapeCeil) {
  Tiling t(Coord{10, 9}, Coord{4, 3});
  EXPECT_EQ(t.gridShape(), (Coord{3, 3}));
  EXPECT_EQ(t.tileCount(), 9);
}

TEST(Tiling, EdgeTilesClipped) {
  Tiling t(Coord{10, 9}, Coord{4, 3});
  Region edge = t.tileRegion(Coord{2, 2});
  EXPECT_EQ(edge.corner(), (Coord{8, 6}));
  EXPECT_EQ(edge.shape(), (Coord{2, 3}));
  EXPECT_THROW(t.tileRegion(Coord{3, 0}), std::out_of_range);
}

TEST(Tiling, TileOfAndRegionsPartitionSpace) {
  Tiling t(Coord{7, 5}, Coord{3, 2});
  // Every coordinate belongs to exactly the tile whose region contains it.
  for (RegionCursor cur(Region::wholeSpace(Coord{7, 5})); cur.valid();
       cur.next()) {
    Coord g = t.tileOf(cur.coord());
    EXPECT_TRUE(t.tileRegion(g).contains(cur.coord()));
  }
  // Tile regions are disjoint and cover the space.
  Index total = 0;
  for (Index i = 0; i < t.tileCount(); ++i) {
    total += t.tileRegionAt(i).volume();
  }
  EXPECT_EQ(total, (Coord{7, 5}).volume());
}

TEST(Tiling, TileRangeOfRegion) {
  Tiling t(Coord{12, 12}, Coord{4, 4});
  Region r(Coord{3, 5}, Coord{6, 2});
  Region range = t.tileRangeOf(r);
  EXPECT_EQ(range.corner(), (Coord{0, 1}));
  EXPECT_EQ(range.shape(), (Coord{3, 1}));
}

// Property sweep: linearize/delinearize round trip across shapes.
class LinearizeSweep : public ::testing::TestWithParam<Coord> {};

TEST_P(LinearizeSweep, RoundTrip) {
  const Coord shape = GetParam();
  const Index n = shape.volume();
  for (Index i = 0; i < n; ++i) {
    Coord c = delinearize(i, shape);
    EXPECT_EQ(linearize(c, shape), i);
    for (std::size_t d = 0; d < shape.rank(); ++d) {
      EXPECT_GE(c[d], 0);
      EXPECT_LT(c[d], shape[d]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, LinearizeSweep,
                         ::testing::Values(Coord{7}, Coord{2, 3},
                                           Coord{5, 1, 4}, Coord{2, 2, 2, 2},
                                           Coord{1, 1, 1}, Coord{3, 4, 5}));

}  // namespace
}  // namespace sidr::nd
