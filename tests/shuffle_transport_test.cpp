// ShuffleTransport suite (DESIGN.md §17): the pluggable shuffle data
// plane — in-process handle handoff, localhost socket framing, and the
// file-served plane over committed spill files — must be an invisible
// execution detail:
//
//  * wire-framing fuzz/property tests drive the production frame
//    decoder with truncated / corrupt / oversized / reordered byte
//    strings and assert every violation maps to a typed TransportError
//    (never a hang, never a crash, never an unbounded allocation);
//  * JobSpec validation for the transport knobs and FetchFaultSpec;
//  * a 16-seed differential: {in-process, socket, file-served} x
//    {in-memory, eager spill, compressed, hybrid budget} x {fault-free,
//    injected task faults} produce bit-identical collectAll output,
//    identical committed segment bytes (eager regimes), satisfy the §13
//    trace invariants, and mirror the net.* counters;
//  * injected connection drops: bounded retry succeeds without double
//    counting shuffleBytes or emitting unpaired spans; exhaustion
//    surfaces as a JobError naming the reduce task;
//  * socket-level rogue peers (silent server -> kTimeout, refused
//    connection -> kConnectionDrop);
//  * hammers (TSan/ASan via tier1.sh): concurrent socket fetches racing
//    re-attempt republication, and mid-fetch job cancellation through
//    the service.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/engine.hpp"
#include "mapreduce/engine_service.hpp"
#include "mapreduce/shuffle_transport.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

namespace ts = testsupport;
namespace fs = std::filesystem;
using sh::OperatorKind;

void expectSameCollected(const std::vector<mr::KeyValue>& xs,
                         const std::vector<mr::KeyValue>& ys) {
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].key, ys[i].key) << "at " << i;
    EXPECT_EQ(xs[i].value, ys[i].value) << "at " << i;
    EXPECT_EQ(xs[i].represents, ys[i].represents) << "at " << i;
  }
}

std::string tempDir(const std::string& name) {
  return (fs::temp_directory_path() / name).string();
}

// ---- wire framing: property and fuzz coverage ----

mr::Segment sampleSegment(std::uint32_t map, std::uint32_t kb,
                          std::size_t records) {
  std::vector<mr::KeyValue> kvs;
  for (std::size_t i = 0; i < records; ++i) {
    kvs.push_back({nd::Coord{static_cast<nd::Index>(i % 7),
                             static_cast<nd::Index>(i / 7)},
                   mr::Value::scalar(static_cast<double>(i) * 0.5),
                   i % 3 + 1});
  }
  mr::Segment seg(map, kb, std::move(kvs));
  seg.sortByKey();
  return seg;
}

/// A full valid per-map response byte string: header frame + data
/// frames of `chunk` payload bytes each.
std::vector<std::byte> buildResponseBytes(const mr::Segment& seg,
                                          std::size_t chunk) {
  std::vector<std::byte> payload;
  seg.serializeInto(payload);
  mr::wire::SegmentResponseHeader h;
  h.mapTask = seg.header().mapTask;
  h.keyblock = seg.header().keyblock;
  h.flags = 0;
  h.totalBytes = payload.size();
  std::vector<std::byte> out;
  mr::wire::appendFrame(out, mr::wire::encodeSegmentResponseHeader(h));
  for (std::size_t off = 0; off < payload.size(); off += chunk) {
    const std::size_t n = std::min(chunk, payload.size() - off);
    mr::wire::appendFrame(
        out, std::span<const std::byte>(payload).subspan(off, n));
  }
  return out;
}

TEST(WireFraming, FetchRequestRoundTrip) {
  const std::vector<std::uint32_t> maps{3, 0, 17, 5};
  std::vector<std::byte> framed = mr::wire::encodeFetchRequest(9, maps);
  mr::wire::SpanByteSource src(framed);
  mr::FetchStats stats;
  std::vector<std::byte> payload = mr::wire::readFrame(src, &stats);
  EXPECT_EQ(stats.framesReceived, 1u);
  EXPECT_EQ(stats.wireBytes, framed.size());
  mr::wire::FetchRequestFrame req = mr::wire::decodeFetchRequest(payload);
  EXPECT_EQ(req.keyblock, 9u);
  EXPECT_EQ(req.maps, maps);
  EXPECT_EQ(src.consumed(), framed.size());
}

TEST(WireFraming, SegmentResponseRoundTripAcrossChunkSizes) {
  mr::Segment seg = sampleSegment(4, 2, 50);
  std::vector<std::byte> whole;
  seg.serializeInto(whole);
  for (std::size_t chunk : {std::size_t{1}, std::size_t{7},
                            std::size_t{64}, whole.size()}) {
    std::vector<std::byte> bytes = buildResponseBytes(seg, chunk);
    mr::wire::SpanByteSource src(bytes);
    std::vector<std::byte> payload;
    mr::wire::SegmentResponseHeader h =
        mr::wire::readSegmentResponse(src, 4, 2, payload, nullptr);
    EXPECT_EQ(h.totalBytes, whole.size());
    ASSERT_EQ(payload.size(), whole.size());
    EXPECT_EQ(std::memcmp(payload.data(), whole.data(), whole.size()), 0)
        << "chunk " << chunk;
  }
}

TEST(WireFraming, EveryPrefixTruncationIsTypedNeverAHang) {
  // PR 1's codec truncation property lifted onto the framed path: every
  // proper prefix of a valid response stream must produce
  // kTruncatedFrame — wherever the cut lands (inside a length prefix,
  // inside a header, between frames, mid-data).
  mr::Segment seg = sampleSegment(1, 0, 24);
  std::vector<std::byte> bytes = buildResponseBytes(seg, 64);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    mr::wire::SpanByteSource src(
        std::span<const std::byte>(bytes.data(), len));
    std::vector<std::byte> payload;
    try {
      mr::wire::readSegmentResponse(src, 1, 0, payload, nullptr);
      FAIL() << "prefix " << len << " of " << bytes.size() << " decoded";
    } catch (const mr::TransportError& e) {
      EXPECT_EQ(e.fault(), mr::TransportFaultKind::kTruncatedFrame)
          << "prefix " << len << ": " << e.what();
    }
  }
}

TEST(WireFraming, CorruptRequestMagicRejected) {
  std::vector<std::uint32_t> maps{0, 1};
  std::vector<std::byte> framed = mr::wire::encodeFetchRequest(0, maps);
  mr::wire::SpanByteSource src(framed);
  std::vector<std::byte> payload = mr::wire::readFrame(src, nullptr);
  payload[0] ^= std::byte{0xff};
  try {
    mr::wire::decodeFetchRequest(payload);
    FAIL() << "corrupt magic decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kCorruptFrame);
  }
}

TEST(WireFraming, CorruptResponseMagicRejected) {
  mr::Segment seg = sampleSegment(2, 1, 8);
  std::vector<std::byte> bytes = buildResponseBytes(seg, 256);
  bytes[4] ^= std::byte{0xff};  // first payload byte = header magic
  mr::wire::SpanByteSource src(bytes);
  std::vector<std::byte> payload;
  try {
    mr::wire::readSegmentResponse(src, 2, 1, payload, nullptr);
    FAIL() << "corrupt magic decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kCorruptFrame);
  }
}

TEST(WireFraming, OversizedFrameRejectedBeforeAllocation) {
  // A length prefix beyond kFrameMax must be rejected from the four
  // prefix bytes alone — the decoder never trusts it enough to allocate.
  std::vector<std::byte> bytes(4);
  const std::uint32_t huge = mr::wire::kFrameMax + 1;
  std::memcpy(bytes.data(), &huge, 4);
  mr::wire::SpanByteSource src(bytes);
  try {
    mr::wire::readFrame(src, nullptr);
    FAIL() << "oversized frame decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kOversizedFrame);
  }
}

TEST(WireFraming, OversizedSegmentTotalRejected) {
  mr::wire::SegmentResponseHeader h;
  h.mapTask = 0;
  h.keyblock = 0;
  h.totalBytes = mr::wire::kSegmentMax + 1;
  std::vector<std::byte> bytes;
  mr::wire::appendFrame(bytes, mr::wire::encodeSegmentResponseHeader(h));
  mr::wire::SpanByteSource src(bytes);
  std::vector<std::byte> payload;
  try {
    mr::wire::readSegmentResponse(src, 0, 0, payload, nullptr);
    FAIL() << "oversized segment decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kOversizedFrame);
  }
}

TEST(WireFraming, UndersizedSegmentTotalRejected) {
  // totalBytes below the 32-byte codec header cannot be a segment.
  mr::wire::SegmentResponseHeader h;
  h.totalBytes = mr::Segment::kHeaderBytes - 1;
  std::vector<std::byte> bytes;
  mr::wire::appendFrame(bytes, mr::wire::encodeSegmentResponseHeader(h));
  mr::wire::SpanByteSource src(bytes);
  std::vector<std::byte> payload;
  try {
    mr::wire::readSegmentResponse(src, 0, 0, payload, nullptr);
    FAIL() << "undersized segment decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kCorruptFrame);
  }
}

TEST(WireFraming, ReorderedResponseRejected) {
  mr::Segment seg = sampleSegment(6, 3, 8);
  std::vector<std::byte> bytes = buildResponseBytes(seg, 256);
  for (auto [expectMap, expectKb] :
       {std::pair<std::uint32_t, std::uint32_t>{7, 3},
        std::pair<std::uint32_t, std::uint32_t>{6, 2}}) {
    mr::wire::SpanByteSource src(bytes);
    std::vector<std::byte> payload;
    try {
      mr::wire::readSegmentResponse(src, expectMap, expectKb, payload,
                                    nullptr);
      FAIL() << "reordered response decoded";
    } catch (const mr::TransportError& e) {
      EXPECT_EQ(e.fault(), mr::TransportFaultKind::kReorderedFrame);
    }
  }
}

TEST(WireFraming, DataFrameOvershootRejected) {
  mr::Segment seg = sampleSegment(0, 0, 8);
  std::vector<std::byte> payload;
  seg.serializeInto(payload);
  mr::wire::SegmentResponseHeader h;
  h.totalBytes = payload.size() - 5;  // lies small; data overshoots
  std::vector<std::byte> bytes;
  mr::wire::appendFrame(bytes, mr::wire::encodeSegmentResponseHeader(h));
  mr::wire::appendFrame(bytes, payload);
  mr::wire::SpanByteSource src(bytes);
  std::vector<std::byte> got;
  try {
    mr::wire::readSegmentResponse(src, 0, 0, got, nullptr);
    FAIL() << "overshooting data frame decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kCorruptFrame);
  }
}

TEST(WireFraming, EmptyDataFrameRejected) {
  // A zero-length data frame makes no progress toward totalBytes; the
  // decoder must reject it rather than loop forever.
  mr::wire::SegmentResponseHeader h;
  h.totalBytes = mr::Segment::kHeaderBytes;
  std::vector<std::byte> bytes;
  mr::wire::appendFrame(bytes, mr::wire::encodeSegmentResponseHeader(h));
  mr::wire::appendFrame(bytes, {});
  mr::wire::SpanByteSource src(bytes);
  std::vector<std::byte> payload;
  try {
    mr::wire::readSegmentResponse(src, 0, 0, payload, nullptr);
    FAIL() << "empty data frame decoded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kCorruptFrame);
  }
}

TEST(WireFraming, RandomMutationFuzzNeverHangsOrCrashes) {
  // Seeded fuzz: random byte strings and random single/multi-byte
  // mutations of a valid stream. Every outcome must be either a clean
  // decode or a typed TransportError — anything else (hang, crash,
  // std::bad_alloc from a trusted length) fails the test run itself.
  std::mt19937_64 rng(0xf00du);
  mr::Segment seg = sampleSegment(3, 1, 40);
  const std::vector<std::byte> valid = buildResponseBytes(seg, 128);
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::byte> bytes;
    if (iter % 3 == 0) {
      bytes.resize(rng() % 600);
      for (auto& b : bytes) b = static_cast<std::byte>(rng() & 0xff);
    } else {
      bytes = valid;
      const std::size_t flips = 1 + rng() % 8;
      for (std::size_t f = 0; f < flips; ++f) {
        bytes[rng() % bytes.size()] ^=
            static_cast<std::byte>(1 + (rng() & 0xff));
      }
      if (rng() % 4 == 0) bytes.resize(rng() % (bytes.size() + 1));
    }
    mr::wire::SpanByteSource src(bytes);
    std::vector<std::byte> payload;
    try {
      mr::wire::readSegmentResponse(src, 3, 1, payload, nullptr);
    } catch (const mr::TransportError&) {
      // typed rejection: exactly what malformed input must produce
    }
    // Request decoder on the same garbage.
    mr::wire::SpanByteSource src2(bytes);
    try {
      std::vector<std::byte> p = mr::wire::readFrame(src2, nullptr);
      mr::wire::decodeFetchRequest(p);
    } catch (const mr::TransportError&) {
    }
  }
}

// ---- rogue socket peers: timeout and refusal are typed ----

TEST(WireSocket, SilentServerTimesOutTyped) {
  // A listener that accepts and never writes: the client's framed read
  // must give up after transportTimeoutMillis with kTimeout.
  int listenFd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(listenFd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(listenFd, reinterpret_cast<sockaddr*>(&addr),
                   sizeof(addr)), 0);
  ASSERT_EQ(::listen(listenFd, 1), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(listenFd, reinterpret_cast<sockaddr*>(&addr),
                          &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  std::atomic<bool> stop{false};
  std::thread server([&] {
    int fd = ::accept(listenFd, nullptr, nullptr);
    while (fd >= 0 && !stop.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    if (fd >= 0) ::close(fd);
  });

  mr::wire::SocketConnection conn(port, 150);
  const std::vector<std::uint32_t> oneMap{0};
  std::vector<std::byte> req = mr::wire::encodeFetchRequest(0, oneMap);
  conn.writeAll(req);
  try {
    mr::wire::readFrame(conn, nullptr);
    FAIL() << "silent server produced a frame";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kTimeout);
  }
  stop.store(true);
  ::shutdown(listenFd, SHUT_RDWR);
  ::close(listenFd);
  server.join();
}

TEST(WireSocket, RefusedConnectionIsTypedDrop) {
  // Bind-then-close gives a port with no listener.
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const std::uint16_t port = ntohs(addr.sin_port);
  ::close(fd);
  try {
    mr::wire::SocketConnection conn(port, 100);
    FAIL() << "connection to a dead port succeeded";
  } catch (const mr::TransportError& e) {
    EXPECT_EQ(e.fault(), mr::TransportFaultKind::kConnectionDrop);
  }
}

// ---- JobSpec validation of the transport knobs ----

QueryPlan smallPlan() {
  const nd::Coord input{8, 8};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{4, 4};
  PlanOptions opts;
  opts.numReducers = 2;
  return QueryPlanner(q, input).plan(sh::temperatureField(1), opts);
}

TEST(TransportValidation, FileServedRequiresSpillDirectory) {
  QueryPlan plan = smallPlan();
  plan.spec.transport = mr::ShuffleTransportKind::kFileServed;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(TransportValidation, FileServedRejectsHybridBudget) {
  QueryPlan plan = smallPlan();
  plan.spec.transport = mr::ShuffleTransportKind::kFileServed;
  plan.spec.spillDirectory = tempDir("sidr_transport_reject");
  plan.spec.memoryBudgetBytes = 1 << 20;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(TransportValidation, ZeroConnectionsRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.transportConnections = 0;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(TransportValidation, ZeroTimeoutRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.transportTimeoutMillis = 0;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(TransportValidation, FetchFaultAttemptIdsAreOneBased) {
  QueryPlan plan = smallPlan();
  plan.spec.faultPlan.dropFetch(0, 0);
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(TransportValidation, FetchFaultKeyblockMustBeInRange) {
  QueryPlan plan = smallPlan();
  plan.spec.faultPlan.dropFetch(plan.spec.numReducers);
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(TransportValidation, ZeroMaxFetchAttemptsRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.faultPlan.maxFetchAttempts = 0;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

// ---- 16-seed cross-transport differential ----

struct Regime {
  const char* name;
  bool spill;
  bool hybrid;     ///< tight memory budget (pressure eviction)
  bool compress;
};

/// Recursively snapshots every regular file under `dir` as
/// relative-path -> bytes: the commit-rename publication protocol must
/// leave byte-identical committed segments whichever transport fetched
/// them.
std::map<std::string, std::string> snapshotFiles(const std::string& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    std::ifstream in(entry.path(), std::ios::binary);
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    out.emplace(fs::relative(entry.path(), dir).string(), std::move(bytes));
  }
  return out;
}

class TransportParity : public ::testing::TestWithParam<int> {};

TEST_P(TransportParity, BackendsProduceIdenticalOutputAndCommits) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 29);
  nd::Coord input{static_cast<nd::Index>(16 + rng() % 12),
                  static_cast<nd::Index>(8 + rng() % 8)};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (rng() % 2 == 0) ? OperatorKind::kMean : OperatorKind::kMax;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + rng() % 3),
                                static_cast<nd::Index>(2 + rng() % 3)};
  sh::ValueFn fn =
      sh::temperatureField(static_cast<std::uint64_t>(GetParam() + 900));
  PlanOptions opts;
  opts.system = (rng() % 4 == 0) ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(3 + rng() % 3);
  opts.desiredSplitCount = 4 + rng() % 4;
  opts.numThreads = 3;
  opts.reduceSlots = 1 + static_cast<std::uint32_t>(rng() % 2);
  opts.recovery = (rng() % 2 == 0) ? mr::RecoveryModel::kPersistAll
                                   : mr::RecoveryModel::kRecomputeDeps;
  opts.recordTrace = true;
  QueryPlanner planner(q, input);

  // One fault schedule for every (regime, transport) cell, drawn
  // against the actual split count — half the seeds replay a map and/or
  // reduce re-attempt through every backend.
  mr::FaultPlan faults;
  std::vector<std::vector<std::uint32_t>> deps;
  {
    QueryPlan probe = planner.plan(fn, opts);
    const auto numMaps = static_cast<std::uint32_t>(probe.spec.splits.size());
    if (rng() % 2 == 0) {
      faults.failReduce(static_cast<std::uint32_t>(rng()) % opts.numReducers,
                        1);
    }
    if (rng() % 2 == 0) {
      faults.failMap(static_cast<std::uint32_t>(rng()) % numMaps, 1);
    }
    deps = opts.system == SystemMode::kSidr
               ? probe.spec.reduceDeps
               : ts::barrierDeps(numMaps, opts.numReducers);
  }

  const std::uint64_t tight =
      (1 + rng() % 4) * mr::SegmentPagePool::kPageBytes;
  const Regime regimes[] = {
      {"in-memory", false, false, false},
      {"spill-eager", true, false, false},
      {"spill-eager-compress", true, false, true},
      {"hybrid-tight", true, true, false},
  };
  SCOPED_TRACE("input " + input.toString() + " r=" +
               std::to_string(opts.numReducers) +
               " faults=" + std::to_string(faults.faults.size()));

  for (const Regime& regime : regimes) {
    SCOPED_TRACE(regime.name);
    // kFileServed only exists for eager spill; everything takes the
    // socket and in-process planes.
    std::vector<mr::ShuffleTransportKind> kinds = {
        mr::ShuffleTransportKind::kInProcess,
        mr::ShuffleTransportKind::kSocket};
    if (regime.spill && !regime.hybrid) {
      kinds.push_back(mr::ShuffleTransportKind::kFileServed);
    }

    std::vector<mr::KeyValue> reference;
    std::map<std::string, std::string> referenceFiles;
    for (mr::ShuffleTransportKind kind : kinds) {
      SCOPED_TRACE(mr::shuffleTransportName(kind));
      const std::string dir =
          tempDir("sidr_tp_parity_" + std::to_string(GetParam()) + "_" +
                  regime.name + "_" + mr::shuffleTransportName(kind));
      fs::remove_all(dir);
      QueryPlan plan = planner.plan(fn, opts);
      if (regime.spill) plan.spec.spillDirectory = dir;
      plan.spec.memoryBudgetBytes = regime.hybrid ? tight : 0;
      plan.spec.mergeWindowBytes = 4096;
      plan.spec.compressSpill = regime.compress;
      plan.spec.faultPlan = faults;
      plan.spec.transport = kind;
      plan.spec.transportConnections = 1 + static_cast<std::uint32_t>(
          GetParam() % 3);
      mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
      EXPECT_EQ(result.annotationViolations, 0u);

      // The §13 invariants hold identically across backends: commit
      // gating, well-paired events, fetch tallies vs commit sums.
      ts::CheckJobTrace(result);
      ts::ExpectCommitGating(result.trace, deps);
      ts::ExpectFetchTalliesMatchCommits(result.trace, deps);

      // Every kFetch span wraps exactly one successful kTransportFetch
      // attempt here (no injected drops in this suite), and transport
      // spans carry the Table 3 connection tallies.
      std::size_t fetchSpans = 0, transportSpans = 0;
      for (const obs::Span& s : result.trace.spans) {
        if (s.phase == obs::Phase::kFetch) ++fetchSpans;
        if (s.phase == obs::Phase::kTransportFetch) {
          ++transportSpans;
          EXPECT_EQ(s.outcome, obs::Outcome::kOk);
          EXPECT_GT(s.connections, 0u);
        }
      }
      EXPECT_GT(fetchSpans, 0u);
      EXPECT_EQ(transportSpans, fetchSpans);

      // net.* counters mirror the result's transport totals.
      const mr::TransportStats& t = result.transportTotals;
      EXPECT_EQ(result.trace.counterValue("net.wireBytes"), t.wireBytes);
      EXPECT_EQ(result.trace.counterValue("net.framesSent"), t.framesSent);
      EXPECT_EQ(result.trace.counterValue("net.framesReceived"),
                t.framesReceived);
      EXPECT_EQ(result.trace.counterValue("net.connectionsOpened"),
                t.connectionsOpened);
      EXPECT_EQ(result.trace.counterValue("net.fetchRetries"),
                t.fetchRetries);
      EXPECT_EQ(t.fetchRetries, 0u);
      EXPECT_EQ(t.wastedWireBytes, 0u);
      if (kind == mr::ShuffleTransportKind::kInProcess) {
        EXPECT_EQ(t.wireBytes, 0u);
        EXPECT_EQ(t.connectionsOpened, 0u);
      } else {
        EXPECT_GT(t.wireBytes, 0u);
        EXPECT_GT(t.framesSent, 0u);
        EXPECT_GT(t.framesReceived, 0u);
        EXPECT_GT(t.connectionsOpened, 0u);
      }

      auto collected = result.collectAll();
      std::map<std::string, std::string> files;
      // Committed bytes are deterministic only in eager regimes (every
      // map commits every keyblock); hybrid eviction is timing-driven.
      if (regime.spill && !regime.hybrid) files = snapshotFiles(dir);
      fs::remove_all(dir);

      if (kind == mr::ShuffleTransportKind::kInProcess) {
        reference = std::move(collected);
        referenceFiles = std::move(files);
        continue;
      }
      expectSameCollected(collected, reference);
      if (regime.spill && !regime.hybrid) {
        ASSERT_EQ(files.size(), referenceFiles.size());
        for (const auto& [path, bytes] : referenceFiles) {
          auto it = files.find(path);
          ASSERT_NE(it, files.end()) << "missing committed file " << path;
          EXPECT_EQ(it->second, bytes)
              << "committed bytes diverge for " << path;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransportParity, ::testing::Range(0, 16));

// ---- injected connection drops: retry, accounting, exhaustion ----

struct FaultArm {
  const char* name;
  mr::ShuffleTransportKind kind;
  bool spill;
};

TEST(TransportFaults, DroppedFetchRetriesWithoutDoubleCounting) {
  const nd::Coord input{20, 12};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{4, 3};
  sh::ValueFn fn = sh::temperatureField(55);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 6;
  opts.recordTrace = true;

  const FaultArm arms[] = {
      {"in-process", mr::ShuffleTransportKind::kInProcess, false},
      {"socket", mr::ShuffleTransportKind::kSocket, false},
      {"socket-spill", mr::ShuffleTransportKind::kSocket, true},
      {"file-served", mr::ShuffleTransportKind::kFileServed, true},
  };
  for (const FaultArm& arm : arms) {
    SCOPED_TRACE(arm.name);
    const std::string dir = tempDir(std::string("sidr_tp_drop_") + arm.name);

    auto runOnce = [&](bool injectDrop) {
      fs::remove_all(dir);
      QueryPlan plan = planner.plan(fn, opts);
      if (arm.spill) plan.spec.spillDirectory = dir;
      plan.spec.transport = arm.kind;
      if (injectDrop) plan.spec.faultPlan.dropFetch(1, 1);
      return mr::Engine(std::move(plan.spec)).run();
    };

    mr::JobResult clean = runOnce(false);
    mr::JobResult dropped = runOnce(true);
    fs::remove_all(dir);

    EXPECT_EQ(dropped.annotationViolations, 0u);
    EXPECT_EQ(dropped.transportTotals.fetchRetries, 1u);
    expectSameCollected(dropped.collectAll(), clean.collectAll());
    // The retry re-fetches; the failed attempt must not have leaked
    // into the §3.2.1 accounting.
    EXPECT_EQ(dropped.shuffleBytes, clean.shuffleBytes);
    EXPECT_EQ(dropped.shuffleConnections, clean.shuffleConnections);

    // Trace shape: keyblock 1's single kFetch span wraps exactly two
    // kTransportFetch attempts — one failed, one ok — and no other
    // keyblock grew extra spans.
    ts::CheckJobTrace(dropped);
    std::size_t kb1Fetch = 0, kb1Transport = 0, kb1Failed = 0;
    std::size_t otherTransport = 0, otherFetch = 0;
    for (const obs::Span& s : dropped.trace.spans) {
      if (s.phase == obs::Phase::kFetch) {
        (s.keyblock == 1 ? kb1Fetch : otherFetch) += 1;
      }
      if (s.phase == obs::Phase::kTransportFetch) {
        if (s.keyblock == 1) {
          ++kb1Transport;
          if (s.outcome == obs::Outcome::kFail) ++kb1Failed;
        } else {
          ++otherTransport;
          EXPECT_EQ(s.outcome, obs::Outcome::kOk);
        }
      }
    }
    EXPECT_EQ(kb1Fetch, 1u);
    EXPECT_EQ(kb1Transport, 2u);
    EXPECT_EQ(kb1Failed, 1u);
    EXPECT_EQ(otherTransport, otherFetch);
    // Socket arms discard the partially-exchanged attempt's bytes into
    // wastedWireBytes; they never count toward net.wireBytes twice.
    if (arm.kind != mr::ShuffleTransportKind::kInProcess) {
      EXPECT_GT(dropped.transportTotals.wastedWireBytes, 0u);
    }
    EXPECT_EQ(dropped.trace.counterValue("net.wastedWireBytes"),
              dropped.transportTotals.wastedWireBytes);
  }
}

TEST(TransportFaults, ExhaustedRetriesFailTheJobNamingTheTask) {
  QueryPlan plan = smallPlan();
  plan.spec.transport = mr::ShuffleTransportKind::kSocket;
  plan.spec.faultPlan.maxFetchAttempts = 3;
  plan.spec.faultPlan.dropFetch(1, 1).dropFetch(1, 2).dropFetch(1, 3);
  try {
    mr::Engine(std::move(plan.spec)).run();
    FAIL() << "exhausted fetch retries did not fail the job";
  } catch (const mr::JobError& e) {
    EXPECT_EQ(e.taskKind(), mr::TaskKind::kReduce);
    EXPECT_EQ(e.taskId(), 1u);
    const std::string what = e.what();
    EXPECT_NE(what.find("connection-drop"), std::string::npos) << what;
    EXPECT_NE(what.find("socket"), std::string::npos) << what;
  }
}

TEST(TransportFaults, ServiceResolvesDefaultTransport) {
  // A submitted spec that never names a transport inherits the
  // service-wide default; wireBytes > 0 proves the socket plane ran.
  mr::ServiceConfig config;
  config.numThreads = 4;
  config.defaultTransport = mr::ShuffleTransportKind::kSocket;
  mr::EngineService service(config);
  QueryPlan plan = smallPlan();
  ASSERT_FALSE(plan.spec.transport.has_value());
  mr::JobHandle handle = service.submit(std::move(plan.spec));
  const mr::JobResult& result = handle.wait();
  EXPECT_GT(result.transportTotals.wireBytes, 0u);

  // An explicit per-job choice wins over the default.
  QueryPlan inproc = smallPlan();
  inproc.spec.transport = mr::ShuffleTransportKind::kInProcess;
  mr::JobHandle h2 = service.submit(std::move(inproc.spec));
  EXPECT_EQ(h2.wait().transportTotals.wireBytes, 0u);
}

// ---- hammers (TSan/ASan via tier1.sh) ----

TEST(ShuffleTransportHammer, ConcurrentSocketFetchRacesRepublication) {
  // Socket servers serialize segments from slots the owning job mutates
  // under recovery: kRecomputeDeps + injected map/reduce failures force
  // republication of the very segments concurrent reduces are fetching
  // over the wire, plus injected connection drops retrying mid-storm.
  // Every interleaving must stay bit-identical to the serial oracle.
  const nd::Coord input{36, 10};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{3, 5};
  sh::ValueFn fn = sh::temperatureField(43);
  QueryPlanner planner(q, input);
  const std::string dir = tempDir("sidr_tp_hammer");
  sh::ExtractionMap ex(q, input);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, ex, fn);
  for (int iter = 0; iter < 3; ++iter) {
    fs::remove_all(dir);
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 6;
    opts.desiredSplitCount = 12;
    opts.numThreads = 8;
    opts.reduceSlots = 4;
    opts.mapSlots = 4;
    opts.recovery = mr::RecoveryModel::kRecomputeDeps;
    opts.faultPlan.failReduce(0).failReduce(3);
    opts.faultPlan.failMap(1).failMap(7);
    opts.faultPlan.dropFetch(2, 1).dropFetch(5, 1).dropFetch(5, 2);
    QueryPlan plan = planner.plan(fn, opts);
    const bool spill = (iter != 1);  // iter 1: pure in-memory sockets
    if (spill) {
      plan.spec.spillDirectory = dir;
      plan.spec.compressSpill = (iter == 2);
    }
    plan.spec.transport = (spill && iter == 2)
                              ? mr::ShuffleTransportKind::kFileServed
                              : mr::ShuffleTransportKind::kSocket;
    plan.spec.transportConnections = 3;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.reduceFailures, 2u);
    EXPECT_EQ(result.mapFailures, 2u);
    EXPECT_EQ(result.annotationViolations, 0u);
    EXPECT_GE(result.transportTotals.fetchRetries, 3u);
    auto got = result.collectAll();
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].key, oracle[i].key);
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(), 1e-9);
    }
  }
  fs::remove_all(dir);
}

TEST(ShuffleTransportHammer, MidFetchCancelTearsDownSocketsCleanly) {
  // Cancelling jobs whose reduces are mid-socket-fetch must drain
  // without wedging a server thread or leaking a namespace; the
  // surviving jobs stay exact.
  const nd::Coord input{28, 10};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{4, 5};
  sh::ValueFn fn = sh::temperatureField(77);
  QueryPlanner planner(q, input);
  sh::ExtractionMap ex(q, input);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, ex, fn);
  const std::string dir = tempDir("sidr_tp_cancel");
  fs::remove_all(dir);

  mr::ServiceConfig config;
  config.numThreads = 6;
  config.maxConcurrentJobs = 4;
  config.defaultTransport = mr::ShuffleTransportKind::kSocket;
  mr::EngineService service(config);

  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 5;
  opts.desiredSplitCount = 10;
  opts.reduceSlots = 3;
  std::vector<mr::JobHandle> cancelled;
  std::vector<mr::JobHandle> kept;
  for (int i = 0; i < 8; ++i) {
    QueryPlan plan = planner.plan(fn, opts);
    plan.spec.spillDirectory = dir;
    mr::JobHandle h = service.submit(std::move(plan.spec));
    if (i % 2 == 0) {
      cancelled.push_back(h);
    } else {
      kept.push_back(h);
    }
  }
  // Let some fetches get in flight, then cancel half the fleet.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  for (mr::JobHandle& h : cancelled) h.cancel();
  service.drain();

  for (mr::JobHandle& h : kept) {
    const mr::JobResult& result = h.wait();
    auto got = result.collectAll();
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].key, oracle[i].key);
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(), 1e-9);
    }
  }
  for (mr::JobHandle& h : cancelled) {
    // A cancel can lose the race to completion; both outcomes are
    // legal, but a cancelled job must have dropped its namespace.
    if (h.status() == mr::JobState::kCancelled) {
      EXPECT_FALSE(
          fs::exists(fs::path(dir) / mr::jobSpillDirName(h.id())));
    }
  }
}

}  // namespace
}  // namespace sidr::core
