// Property tests for the obs trace layer (DESIGN.md section 13): over
// randomized geometries, modes, spill settings and fault plans, the
// recorded spans must satisfy the paper's scheduling contract —
//   - spans are well nested per lane and agree 1:1 with the event log;
//   - SIDR: no reduce attempt starts before the rename-commit spans of
//     ALL maps in its I_l (fault re-attempts included);
//   - global barrier: no reduce attempt starts before the last map
//     commit;
//   - reduce-side fetch tallies equal the sum of the committed
//     annotations they depend on;
// plus targeted tests for the counter registry (SortStats surfaced in
// JobResult), the Chrome trace exporter, and the disabled recorder.
#include <gtest/gtest.h>

#include <filesystem>
#include <random>
#include <sstream>

#include "mapreduce/engine.hpp"
#include "obs/report.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

namespace ts = testsupport;

class TraceInvariants : public ::testing::TestWithParam<int> {};

TEST_P(TraceInvariants, RandomizedSchedulingContract) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 3);
  nd::Coord input{static_cast<nd::Index>(18 + rng() % 24),
                  static_cast<nd::Index>(8 + rng() % 10)};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (rng() % 2 == 0) ? sh::OperatorKind::kMean : sh::OperatorKind::kSum;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + rng() % 3),
                                static_cast<nd::Index>(2 + rng() % 3)};
  sh::ValueFn fn =
      sh::temperatureField(static_cast<std::uint64_t>(GetParam() + 900));

  const bool stock = rng() % 3 == 0;
  const bool spill = rng() % 2 == 0;
  PlanOptions opts;
  opts.system = stock ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(2 + rng() % 5);
  opts.desiredSplitCount = 4 + rng() % 8;
  opts.numThreads = static_cast<std::uint32_t>(2 + rng() % 5);
  opts.recovery = (rng() % 2 == 0) ? mr::RecoveryModel::kPersistAll
                                   : mr::RecoveryModel::kRecomputeDeps;
  opts.recordTrace = true;

  QueryPlanner planner(q, input);
  QueryPlan plan = planner.plan(fn, opts);
  const auto numMaps = static_cast<std::uint32_t>(plan.spec.splits.size());

  // Random injected faults, drawn against the actual split count. A
  // re-attempt after a fault is STILL a gated reduce start: the
  // invariants below quantify over every attempt, not just the last.
  mr::FaultPlan& fp = plan.spec.faultPlan;
  for (std::uint32_t i = 0, n = static_cast<std::uint32_t>(rng() % 3); i < n;
       ++i) {
    std::uint32_t kb = static_cast<std::uint32_t>(rng()) % opts.numReducers;
    if (!fp.shouldFail(mr::TaskKind::kReduce, kb, 1)) fp.failReduce(kb, 1);
  }
  for (std::uint32_t i = 0, n = static_cast<std::uint32_t>(rng() % 3); i < n;
       ++i) {
    std::uint32_t m = static_cast<std::uint32_t>(rng()) % numMaps;
    if (!fp.shouldFail(mr::TaskKind::kMap, m, 1)) fp.failMap(m, 1);
  }

  std::string dir;
  if (spill) {
    dir = (std::filesystem::temp_directory_path() /
           ("sidr_traceinv_" + std::to_string(GetParam())))
              .string();
    plan.spec.spillDirectory = dir;
  }
  SCOPED_TRACE(std::string(stock ? "stock" : "sidr") +
               (spill ? " spill" : " mem") +
               " faults=" + std::to_string(fp.faults.size()));

  std::vector<std::vector<std::uint32_t>> deps =
      stock ? ts::barrierDeps(numMaps, opts.numReducers)
            : plan.spec.reduceDeps;

  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  if (spill) std::filesystem::remove_all(dir);

  EXPECT_EQ(result.annotationViolations, 0u);
  ASSERT_FALSE(result.trace.spans.empty());
  ts::CheckJobTrace(result);
  ts::ExpectCommitGating(result.trace, deps);
  ts::ExpectFetchTalliesMatchCommits(result.trace, deps);

  // The registry mirrors the scalar JobResult surface exactly.
  EXPECT_EQ(result.trace.counterValue("shuffle.connections"),
            result.shuffleConnections);
  EXPECT_EQ(result.trace.counterValue("job.mapFailures"),
            result.mapFailures);
  EXPECT_EQ(result.trace.counterValue("job.reduceFailures"),
            result.reduceFailures);
  EXPECT_EQ(result.trace.counterValue("job.annotationViolations"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, TraceInvariants, ::testing::Range(0, 16));

TEST(TraceInvariants, BothShuffleModesWithFaultsDeterministic) {
  // The acceptance scenario pinned deterministically: SIDR mode, both
  // shuffle modes, with map AND reduce fault injection (including a
  // fail-on-attempt-2), every trace invariant holding.
  nd::Coord input{30, 12};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{3, 4};
  sh::ValueFn fn = sh::temperatureField(77);
  QueryPlanner planner(q, input);
  for (bool spill : {false, true}) {
    SCOPED_TRACE(spill ? "spill" : "in-memory");
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 4;
    opts.desiredSplitCount = 8;
    opts.numThreads = 4;
    opts.recordTrace = true;
    opts.faultPlan.failMap(1).failReduce(2, 1).failReduce(2, 2);
    QueryPlan plan = planner.plan(fn, opts);
    std::vector<std::vector<std::uint32_t>> deps = plan.spec.reduceDeps;
    std::string dir =
        (std::filesystem::temp_directory_path() / "sidr_traceinv_det")
            .string();
    if (spill) plan.spec.spillDirectory = dir;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    if (spill) std::filesystem::remove_all(dir);

    ts::CheckJobTrace(result);
    ts::ExpectCommitGating(result.trace, deps);
    ts::ExpectFetchTalliesMatchCommits(result.trace, deps);

    // The fault plan shows up as failed attempt spans: map 1 attempt 1
    // and reduce 2 attempts 1 AND 2 failed, each followed by retries.
    ts::AttemptSummary attempts = ts::summarizeAttempts(result.trace);
    auto mapIt = attempts.find({obs::TaskSide::kMap, 1});
    ASSERT_NE(mapIt, attempts.end());
    EXPECT_EQ(mapIt->second,
              (std::vector<obs::Outcome>{obs::Outcome::kFail,
                                         obs::Outcome::kOk}));
    auto redIt = attempts.find({obs::TaskSide::kReduce, 2});
    ASSERT_NE(redIt, attempts.end());
    EXPECT_EQ(redIt->second,
              (std::vector<obs::Outcome>{obs::Outcome::kFail,
                                         obs::Outcome::kFail,
                                         obs::Outcome::kOk}));

    // Spill mode must carry spill-phase spans; in-memory must not.
    bool sawSpillWrite = false;
    bool sawEncode = false;
    for (const obs::Span& s : result.trace.spans) {
      sawSpillWrite |= s.phase == obs::Phase::kSpillWrite;
      sawEncode |= s.phase == obs::Phase::kSpillEncode;
    }
    EXPECT_EQ(sawSpillWrite, spill);
    EXPECT_EQ(sawEncode, spill);
  }
}

// Planner-built jobs emit in key order (the StructuralMapper flushes
// its cell map at finish()), so the sorted-skip fast path elides every
// sort call. To exercise real sorts the job must emit out of order: a
// transposing identity mapper reads row-major but keys column-major.
mr::JobSpec transposeJob(nd::Index side, std::uint32_t numReducers) {
  class TransposeMapper final : public mr::Mapper {
   public:
    void map(const nd::Coord& key, double value,
             mr::MapContext& ctx) override {
      ctx.emit(nd::Coord{key[1], key[0]}, mr::Value::scalar(value), 1);
    }
  };
  class FirstValueReducer final : public mr::Reducer {
   public:
    void reduce(const nd::Coord& key, std::span<const mr::Value* const> vs,
                mr::ReduceContext& ctx) override {
      ctx.emit(key, *vs.front());
    }
  };
  const nd::Coord shape{side, side};
  mr::JobSpec spec;
  const nd::Index half = side / 2;
  spec.splits.push_back(mr::InputSplit::single(
      0, nd::Region(nd::Coord{0, 0}, nd::Coord{half, side})));
  spec.splits.push_back(mr::InputSplit::single(
      1, nd::Region(nd::Coord{half, 0}, nd::Coord{side - half, side})));
  spec.readerFactory = sh::makeSyntheticReaderFactory(
      [](const nd::Coord& c) { return static_cast<double>(c[0] * 100 + c[1]); });
  spec.mapperFactory = [] { return std::make_unique<TransposeMapper>(); };
  spec.reducerFactory = [] { return std::make_unique<FirstValueReducer>(); };
  spec.partitioner = std::make_shared<const mr::ModuloPartitioner>(shape);
  spec.numReducers = numReducers;
  spec.mode = mr::ExecutionMode::kGlobalBarrier;
  spec.keySpace = shape;  // linearized fast path: packed radix sorts
  spec.numThreads = 2;
  return spec;
}

TEST(TraceInvariants, SortTotalsSurfacedInJobResult) {
  // The transposing mapper forces out-of-order emission, so packed
  // sorts must run — and their formerly thread-local counters must
  // surface in JobResult::sortTotals AND the counter registry.
  mr::JobSpec spec = transposeJob(32, 2);
  spec.recordTrace = true;
  mr::JobResult result = mr::Engine(std::move(spec)).run();

  const mr::SortStats& st = result.sortTotals;
  EXPECT_GT(st.comparisonSorts + st.radixSorts, 0u)
      << "no sort activity surfaced at all";
  EXPECT_EQ(result.trace.counterValue("sort.sortedSkips"), st.sortedSkips);
  EXPECT_EQ(result.trace.counterValue("sort.comparisonSorts"),
            st.comparisonSorts);
  EXPECT_EQ(result.trace.counterValue("sort.radixSorts"), st.radixSorts);
  EXPECT_EQ(result.trace.counterValue("sort.radixPasses"), st.radixPasses);

  // Sort spans accompany the counters.
  bool sawSort = false;
  for (const obs::Span& s : result.trace.spans) {
    sawSort |= s.phase == obs::Phase::kSortPacked;
  }
  EXPECT_TRUE(sawSort);
}

TEST(TraceInvariants, PlannerJobsEmitInOrderAndSkipSorts) {
  // The flip side of the test above, pinned so a pipeline regression
  // cannot silently reintroduce sorting: planner-built jobs emit in
  // key order, so NO sort of any kind runs and no sort span appears.
  nd::Coord input{32, 32};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMedian;
  q.extractionShape = nd::Coord{32, 1};
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 2;
  opts.desiredSplitCount = 4;
  opts.recordTrace = true;
  QueryPlan plan = planner.plan(sh::temperatureField(19), opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();

  const mr::SortStats& st = result.sortTotals;
  EXPECT_EQ(st.sortedSkips + st.comparisonSorts + st.radixSorts, 0u)
      << "sorted-skip fast path stopped covering planner jobs";
  for (const obs::Span& s : result.trace.spans) {
    EXPECT_NE(s.phase, obs::Phase::kSortPacked);
  }
}

TEST(TraceInvariants, DisabledRecorderStillFillsSortTotals) {
  mr::JobSpec spec = transposeJob(24, 3);
  ASSERT_FALSE(spec.recordTrace);  // the default: recording off
  mr::JobResult result = mr::Engine(std::move(spec)).run();

  EXPECT_TRUE(result.trace.spans.empty());
  EXPECT_TRUE(result.trace.counters.empty());
  // sortTotals is part of the always-on surface, not the trace.
  const mr::SortStats& st = result.sortTotals;
  EXPECT_GT(st.comparisonSorts + st.radixSorts, 0u);
}

TEST(TraceInvariants, ChromeExportMatchesDocumentedSchema) {
  nd::Coord input{20, 10};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{4, 5};
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 5;
  opts.recordTrace = true;
  QueryPlan plan = planner.plan(sh::temperatureField(29), opts);
  mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
  ASSERT_FALSE(result.trace.spans.empty());

  std::ostringstream os;
  obs::writeChromeTrace(os, result.trace);
  const std::string json = os.str();

  // One complete ("ph":"X") event per span, the displayTimeUnit, and
  // the counter registry under otherData — the schema DESIGN.md
  // section 13 documents for chrome://tracing / Perfetto.
  std::size_t events = 0;
  for (std::size_t pos = 0;
       (pos = json.find("\"ph\":\"X\"", pos)) != std::string::npos;
       pos += 8) {
    ++events;
  }
  EXPECT_EQ(events, result.trace.spans.size());
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\":{"), std::string::npos);
  EXPECT_NE(json.find("\"shuffle.connections\":"), std::string::npos);
  EXPECT_NE(json.find("\"map:attempt\""), std::string::npos);
  EXPECT_NE(json.find("\"reduce:fetch\""), std::string::npos);
  // Timestamps are microseconds with fixed-point formatting — no
  // scientific notation or NaNs that would break JSON consumers.
  EXPECT_EQ(json.find("e+"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);

  // The per-phase rollup covers exactly the (side, phase) pairs present.
  std::vector<obs::PhaseTotal> totals = obs::phaseTotals(result.trace);
  ASSERT_FALSE(totals.empty());
  std::uint64_t spansCovered = 0;
  for (const obs::PhaseTotal& t : totals) {
    EXPECT_GT(t.spans, 0u);
    spansCovered += t.spans;
  }
  EXPECT_EQ(spansCovered, result.trace.spans.size());
}

}  // namespace
}  // namespace sidr::core
