// Parity suite for the linearized-key fast path (DESIGN.md section 11).
//
// The fast path must be a pure optimization: with a keySpace declared
// the pipeline batches reads, routes through partitionRun, buffers
// packed records, and sorts (u64, index) pairs — yet every observable
// artifact (segment wire bytes, reduce outputs, annotation tallies)
// must be identical to the per-record lexicographic fallback. These
// tests pin that equivalence at three levels: the map pipeline's
// segments, the packed Segment representation itself, and whole engine
// runs (in-memory, spilled, and under fault recovery).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <random>
#include <tuple>
#include <vector>

#include "mapreduce/combiners.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/map_pipeline.hpp"
#include "mapreduce/partitioners.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace sidr::core {
namespace {

using sh::OperatorKind;

double cellValue(const nd::Coord& c) {
  double v = 1.0;
  for (std::size_t d = 0; d < c.rank(); ++d) {
    v += static_cast<double>(c[d]) * 0.25;
  }
  return v;
}

/// Folds every input coordinate into the key space by per-dimension
/// modulo, so keys repeat (stability is observable) and emission order
/// is far from sorted. The per-emission counter makes each value
/// unique: any reordering between the two paths flips bytes.
class FoldingMapper final : public mr::Mapper {
 public:
  FoldingMapper(nd::Coord keySpace, bool partialOnly)
      : keySpace_(keySpace), partialOnly_(partialOnly) {}

  void map(const nd::Coord& c, double v, mr::MapContext& ctx) override {
    nd::Coord key = c;
    for (std::size_t d = 0; d < c.rank(); ++d) key[d] = c[d] % keySpace_[d];
    const double tagged = v + 0.001 * static_cast<double>(counter_);
    const std::uint64_t represents = counter_ % 4 + 1;
    mr::Value value;
    switch (partialOnly_ ? counter_ % 2 : counter_ % 3) {
      case 0:
        value = mr::Value::scalar(tagged);
        break;
      case 1:
        value = mr::Value::partial(mr::Partial::ofValue(tagged));
        break;
      default:
        value = mr::Value::list({tagged, tagged + 1.0});
        break;
    }
    ++counter_;
    ctx.emit(key, std::move(value), represents);
  }

 private:
  nd::Coord keySpace_;
  bool partialOnly_;
  std::uint64_t counter_ = 0;
};

nd::Coord randomShape(std::mt19937_64& rng, std::size_t rank, int lo, int hi) {
  std::vector<nd::Index> dims(rank);
  std::uniform_int_distribution<nd::Index> dist(lo, hi);
  for (auto& d : dims) d = dist(rng);
  return nd::Coord(std::span<const nd::Index>(dims));
}

/// Byte-for-byte segment equality, the strongest parity statement the
/// wire format allows.
void expectSegmentsBitIdentical(const std::vector<mr::Segment>& fast,
                                const std::vector<mr::Segment>& fallback) {
  ASSERT_EQ(fast.size(), fallback.size());
  for (std::size_t kb = 0; kb < fast.size(); ++kb) {
    SCOPED_TRACE("keyblock " + std::to_string(kb));
    EXPECT_EQ(fast[kb].header(), fallback[kb].header());
    EXPECT_EQ(fast[kb].serialize(), fallback[kb].serialize());
  }
}

void expectSameCollected(const mr::JobResult& a, const mr::JobResult& b) {
  auto xs = a.collectAll();
  auto ys = b.collectAll();
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].key, ys[i].key) << "at " << i;
    EXPECT_EQ(xs[i].value, ys[i].value) << "at " << i;
    EXPECT_EQ(xs[i].represents, ys[i].represents) << "at " << i;
  }
}

/// Event-log invariant (mirrors engine_test): every start pairs with
/// exactly one end-or-fail of the same task and attempt.
void expectEventLogWellPaired(const mr::JobResult& result) {
  using Kind = mr::TaskEvent::Kind;
  std::map<std::tuple<bool, std::uint32_t, std::uint32_t>, int> starts;
  std::map<std::tuple<bool, std::uint32_t, std::uint32_t>, int> finishes;
  for (const mr::TaskEvent& ev : result.events) {
    bool isMap = ev.kind == Kind::kMapStart || ev.kind == Kind::kMapEnd ||
                 ev.kind == Kind::kMapFail;
    auto key = std::make_tuple(isMap, ev.taskId, ev.attempt);
    if (ev.kind == Kind::kMapStart || ev.kind == Kind::kReduceStart) {
      ++starts[key];
    } else {
      ++finishes[key];
    }
  }
  EXPECT_EQ(starts.size(), finishes.size());
  for (const auto& [key, n] : starts) {
    EXPECT_EQ(n, 1);
    auto it = finishes.find(key);
    ASSERT_NE(it, finishes.end());
    EXPECT_EQ(it->second, 1);
  }
}

// ---- map-pipeline level ----

TEST(MapPipelineParity, RandomizedSegmentsBitIdentical) {
  std::mt19937_64 rng(20260806);
  for (int trial = 0; trial < 12; ++trial) {
    const std::size_t rank = trial % 4 + 1;
    const nd::Coord keySpace = randomShape(rng, rank, 2, 7);
    const nd::Coord inputShape = randomShape(rng, rank, 3, 9);
    const std::uint32_t reducers = trial % 2 ? 3 : 5;
    SCOPED_TRACE("trial " + std::to_string(trial));

    mr::ModuloPartitioner part(keySpace);
    auto factory = sh::makeSyntheticReaderFactory(cellValue);
    auto split = mr::InputSplit::single(0, nd::Region::wholeSpace(inputShape));

    FoldingMapper fastMapper(keySpace, /*partialOnly=*/false);
    auto fast = mr::runMapPipeline(split, 0, factory, fastMapper, part,
                                   reducers, nullptr, keySpace);
    FoldingMapper slowMapper(keySpace, /*partialOnly=*/false);
    auto fallback = mr::runMapPipeline(split, 0, factory, slowMapper, part,
                                       reducers, nullptr, nd::Coord());
    // Without a combiner the fast path's segments are still packed —
    // the map side never materializes KeyValues.
    for (const auto& seg : fast) EXPECT_TRUE(seg.packed());
    expectSegmentsBitIdentical(fast, fallback);
  }
}

TEST(MapPipelineParity, CombinerSegmentsBitIdentical) {
  std::mt19937_64 rng(7);
  mr::PartialMergeCombiner combiner;
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t rank = trial % 3 + 1;
    const nd::Coord keySpace = randomShape(rng, rank, 2, 5);
    const nd::Coord inputShape = randomShape(rng, rank, 4, 9);
    SCOPED_TRACE("trial " + std::to_string(trial));

    mr::ModuloPartitioner part(keySpace);
    auto factory = sh::makeSyntheticReaderFactory(cellValue);
    auto split = mr::InputSplit::single(0, nd::Region::wholeSpace(inputShape));

    FoldingMapper fastMapper(keySpace, /*partialOnly=*/true);
    auto fast = mr::runMapPipeline(split, 0, factory, fastMapper, part, 4,
                                   &combiner, keySpace);
    FoldingMapper slowMapper(keySpace, /*partialOnly=*/true);
    auto fallback = mr::runMapPipeline(split, 0, factory, slowMapper, part, 4,
                                       &combiner, nd::Coord());
    expectSegmentsBitIdentical(fast, fallback);
  }
}

TEST(MapPipelineParity, DuplicateKeysKeepEmissionOrder) {
  // Every emission lands on one of two keys; values encode emission
  // order. A non-stable sort anywhere in the fast path would reorder
  // equal keys and flip the serialized bytes.
  class TwoKeyMapper final : public mr::Mapper {
   public:
    void map(const nd::Coord& c, double, mr::MapContext& ctx) override {
      nd::Coord key = c;
      for (std::size_t d = 0; d < c.rank(); ++d) key[d] = c[d] % 2;
      ctx.emit(key, mr::Value::scalar(static_cast<double>(counter_++)), 1);
    }

   private:
    std::uint64_t counter_ = 0;
  };

  const nd::Coord inputShape{6, 10};
  const nd::Coord keySpace{2, 2};
  mr::ModuloPartitioner part(keySpace);
  auto factory = sh::makeSyntheticReaderFactory(cellValue);
  auto split = mr::InputSplit::single(0, nd::Region::wholeSpace(inputShape));

  TwoKeyMapper fastMapper;
  auto fast =
      mr::runMapPipeline(split, 0, factory, fastMapper, part, 2, nullptr,
                         keySpace);
  TwoKeyMapper slowMapper;
  auto fallback = mr::runMapPipeline(split, 0, factory, slowMapper, part, 2,
                                     nullptr, nd::Coord());
  expectSegmentsBitIdentical(fast, fallback);
}

TEST(MapPipelineParity, BatchedReadersMatchPerRecord) {
  const nd::Coord inputShape{5, 7, 3};
  const nd::Region region = nd::Region::wholeSpace(inputShape);
  auto dataset = sh::makeMemoryDataset("v", sci::DataType::kFloat64,
                                       inputShape, cellValue);
  auto synthetic = sh::makeSyntheticReaderFactory(cellValue);
  auto fromDataset = sh::makeDatasetReaderFactory(dataset, 0);
  for (const auto& makeReader : {synthetic, fromDataset}) {
    // Reference stream via per-record next().
    std::vector<nd::Coord> refKeys;
    std::vector<double> refValues;
    {
      auto reader = makeReader(region);
      nd::Coord k;
      double v;
      while (reader->next(k, v)) {
        refKeys.push_back(k);
        refValues.push_back(v);
      }
    }
    EXPECT_EQ(refKeys.size(), static_cast<std::size_t>(region.volume()));
    // Batch sizes around and off row boundaries, including size 1.
    for (std::size_t batch : {std::size_t{1}, std::size_t{2}, std::size_t{3},
                              std::size_t{7}, std::size_t{64}}) {
      SCOPED_TRACE("batch " + std::to_string(batch));
      auto reader = makeReader(region);
      std::vector<nd::Coord> keys(batch);
      std::vector<double> values(batch);
      std::size_t seen = 0;
      std::size_t n;
      while ((n = reader->nextBatch({keys.data(), batch},
                                    {values.data(), batch})) > 0) {
        ASSERT_LE(seen + n, refKeys.size());
        for (std::size_t i = 0; i < n; ++i) {
          EXPECT_EQ(keys[i], refKeys[seen + i]);
          EXPECT_EQ(values[i], refValues[seen + i]);
        }
        seen += n;
      }
      EXPECT_EQ(seen, refKeys.size());
    }
  }
}

// ---- packed Segment representation ----

TEST(PackedSegment, LazyMaterializationMatchesEagerConstruction) {
  const nd::Coord keySpace{4, 6};
  std::vector<mr::KeyValue> eager;
  std::vector<mr::PackedRecord> packed;
  std::vector<std::vector<double>> lists;
  auto add = [&](nd::Coord key, mr::Value v, std::uint64_t rep) {
    mr::PackedRecord r;
    r.lin = static_cast<std::uint64_t>(nd::linearize(key, keySpace));
    r.represents = rep;
    r.kind = v.kind();
    switch (v.kind()) {
      case mr::ValueKind::kScalar:
        r.payload.scalar = v.asScalar();
        break;
      case mr::ValueKind::kPartial:
        r.payload.partial = v.asPartial();
        break;
      case mr::ValueKind::kList:
        r.payload.listIndex = static_cast<std::uint32_t>(lists.size());
        lists.push_back(v.asList());
        break;
    }
    packed.push_back(r);
    eager.push_back(mr::KeyValue{key, std::move(v), rep});
  };
  add(nd::Coord{3, 5}, mr::Value::list({9.0, 8.0}), 2);
  add(nd::Coord{0, 1}, mr::Value::scalar(1.5), 1);
  add(nd::Coord{3, 5}, mr::Value::scalar(4.0), 3);  // duplicate key
  add(nd::Coord{2, 0}, mr::Value::partial(mr::Partial::ofValue(7.0)), 4);
  add(nd::Coord{0, 1}, mr::Value::list({2.0}), 1);  // duplicate key

  mr::Segment lazy(1, 2, std::move(packed), std::move(lists), keySpace);
  mr::Segment reference(1, 2, std::move(eager));
  EXPECT_TRUE(lazy.packed());
  EXPECT_FALSE(lazy.empty());
  EXPECT_TRUE(lazy.hasLinearKeys());
  EXPECT_EQ(lazy.header(), reference.header());
  EXPECT_EQ(lazy.header().numRecords, 5u);
  EXPECT_EQ(lazy.header().represents, 11u);

  lazy.sortByKey();
  reference.sortByKey();
  EXPECT_TRUE(lazy.packed()) << "sorting must not materialize";
  EXPECT_TRUE(lazy.isSorted());
  EXPECT_EQ(lazy.serialize(), reference.serialize());
  EXPECT_TRUE(lazy.packed()) << "serialization encodes straight from the "
                                "packed form without materializing";

  // Accessing the records forces the one materialization; the
  // materialized linear-key cache matches linearize() per record.
  auto lins = lazy.linearKeys();
  ASSERT_EQ(lins.size(), lazy.records().size());
  for (std::size_t i = 0; i < lins.size(); ++i) {
    EXPECT_EQ(lins[i], static_cast<std::uint64_t>(
                           nd::linearize(lazy.records()[i].key, keySpace)));
  }
}

TEST(PackedSegment, SpillRoundTripPreservesRecords) {
  const nd::Coord keySpace{3, 3};
  std::vector<mr::PackedRecord> packed;
  std::vector<std::vector<double>> lists;
  for (int i = 8; i >= 0; --i) {
    mr::PackedRecord r;
    r.lin = static_cast<std::uint64_t>(i);
    r.represents = 1;
    r.kind = mr::ValueKind::kScalar;
    r.payload.scalar = static_cast<double>(i) * 0.5;
    packed.push_back(r);
  }
  mr::Segment seg(0, 0, std::move(packed), std::move(lists), keySpace);
  seg.sortByKey();
  auto bytes = seg.serialize();
  mr::Segment back = mr::Segment::deserialize(bytes);
  EXPECT_EQ(back.header(), seg.header());
  back.computeLinearKeys(keySpace);
  ASSERT_EQ(back.records().size(), seg.records().size());
  for (std::size_t i = 0; i < back.records().size(); ++i) {
    EXPECT_EQ(back.records()[i].key, seg.records()[i].key);
    EXPECT_EQ(back.records()[i].value, seg.records()[i].value);
    EXPECT_EQ(back.linearKeys()[i], seg.linearKeys()[i]);
  }
}

TEST(PackedSegment, InvalidKeySpaceRejected) {
  std::vector<mr::PackedRecord> packed(1);
  EXPECT_THROW(mr::Segment(0, 0, packed, {}, nd::Coord()),
               std::invalid_argument);
  EXPECT_THROW(mr::Segment(0, 0, packed, {}, nd::Coord{4, 0}),
               std::invalid_argument);
}

// ---- engine level ----

sh::StructuralQuery makeQuery(OperatorKind op, nd::Coord eshape,
                              double threshold = 0.0) {
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = op;
  q.extractionShape = eshape;
  q.filterThreshold = threshold;
  return q;
}

TEST(EngineParity, FastVsFallbackEndToEnd) {
  const nd::Coord input{28, 15, 8};
  sh::ValueFn fn = sh::temperatureField(11);
  for (OperatorKind op :
       {OperatorKind::kMean, OperatorKind::kMedian, OperatorKind::kFilter}) {
    for (SystemMode system : {SystemMode::kSidr, SystemMode::kSciHadoop}) {
      SCOPED_TRACE(static_cast<int>(op));
      sh::StructuralQuery q = makeQuery(op, nd::Coord{7, 5, 2}, 18.0);
      QueryPlanner planner(q, input);
      PlanOptions opts;
      opts.system = system;
      opts.numReducers = 4;
      opts.desiredSplitCount = 9;
      opts.numThreads = 3;

      QueryPlan fastPlan = planner.plan(fn, opts);
      ASSERT_GT(fastPlan.spec.keySpace.rank(), 0u)
          << "planner must enable the fast path";
      mr::JobResult fast = mr::Engine(std::move(fastPlan.spec)).run();

      QueryPlan slowPlan = planner.plan(fn, opts);
      slowPlan.spec.keySpace = nd::Coord();  // force the fallback
      mr::JobResult fallback = mr::Engine(std::move(slowPlan.spec)).run();

      EXPECT_EQ(fast.annotationViolations, 0u);
      EXPECT_EQ(fallback.annotationViolations, 0u);
      expectSameCollected(fast, fallback);

      sh::ExtractionMap ex(q, input);
      auto oracle = sh::runSerialOracle(q, ex, fn);
      auto got = fast.collectAll();
      ASSERT_EQ(got.size(), oracle.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].key, oracle[i].key);
      }
    }
  }
}

TEST(EngineParity, SpilledFastVsFallback) {
  const nd::Coord input{30, 12, 6};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMedian, nd::Coord{5, 4, 3});
  sh::ValueFn fn = sh::windspeedField(9);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 4;
  opts.desiredSplitCount = 10;
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sidr_fastpath_spill")
          .string();

  QueryPlan fastPlan = planner.plan(fn, opts);
  fastPlan.spec.spillDirectory = dir;
  mr::JobResult fast = mr::Engine(std::move(fastPlan.spec)).run();

  QueryPlan slowPlan = planner.plan(fn, opts);
  slowPlan.spec.spillDirectory = dir + "_fb";
  slowPlan.spec.keySpace = nd::Coord();
  mr::JobResult fallback = mr::Engine(std::move(slowPlan.spec)).run();

  QueryPlan memPlan = planner.plan(fn, opts);
  mr::JobResult inMemory = mr::Engine(std::move(memPlan.spec)).run();

  std::filesystem::remove_all(dir);
  std::filesystem::remove_all(dir + "_fb");

  EXPECT_EQ(fast.annotationViolations, 0u);
  EXPECT_GT(fast.shuffleBytes, 0u) << "spill mode must hit the wire format";
  expectSameCollected(fast, fallback);
  expectSameCollected(fast, inMemory);
}

TEST(EngineParity, FaultRecoveryOnFastPath) {
  const nd::Coord input{28, 12};
  sh::StructuralQuery q = makeQuery(OperatorKind::kMean, nd::Coord{4, 4});
  sh::ValueFn fn = sh::temperatureField(31);
  QueryPlanner planner(q, input);
  for (bool spill : {false, true}) {
    SCOPED_TRACE(spill ? "spill" : "in-memory");
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 4;
    opts.desiredSplitCount = 8;
    opts.numThreads = 4;
    opts.recovery = mr::RecoveryModel::kRecomputeDeps;
    opts.faultPlan.failMap(0).failReduce(1);
    const std::string dir =
        (std::filesystem::temp_directory_path() / "sidr_fastpath_fault")
            .string();

    QueryPlan fastPlan = planner.plan(fn, opts);
    if (spill) fastPlan.spec.spillDirectory = dir;
    mr::JobResult fast = mr::Engine(std::move(fastPlan.spec)).run();

    QueryPlan slowPlan = planner.plan(fn, opts);
    if (spill) slowPlan.spec.spillDirectory = dir + "_fb";
    slowPlan.spec.keySpace = nd::Coord();
    mr::JobResult fallback = mr::Engine(std::move(slowPlan.spec)).run();

    if (spill) {
      std::filesystem::remove_all(dir);
      std::filesystem::remove_all(dir + "_fb");
    }

    EXPECT_EQ(fast.mapFailures, 1u);
    EXPECT_EQ(fast.reduceFailures, 1u);
    EXPECT_EQ(fast.annotationViolations, 0u);
    expectEventLogWellPaired(fast);
    expectSameCollected(fast, fallback);
  }
}

}  // namespace
}  // namespace sidr::core
