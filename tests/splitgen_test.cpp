#include <gtest/gtest.h>

#include "scihadoop/split_gen.hpp"

namespace sidr::sh {
namespace {

void expectExactPartition(const std::vector<mr::InputSplit>& splits,
                          const nd::Coord& inputShape) {
  std::vector<bool> covered(
      static_cast<std::size_t>(inputShape.volume()), false);
  for (const auto& split : splits) {
    for (const nd::Region& region : split.regions) {
    for (nd::RegionCursor cur(region); cur.valid(); cur.next()) {
      auto li = static_cast<std::size_t>(
          nd::linearize(cur.coord(), inputShape));
      EXPECT_FALSE(covered[li]) << "overlap at " << cur.coord().toString();
      covered[li] = true;
    }
    }
  }
  for (std::size_t i = 0; i < covered.size(); ++i) {
    EXPECT_TRUE(covered[i]) << "gap at linear " << i;
  }
}

TEST(SplitGen, CoversSpaceExactly) {
  SplitOptions opts;
  opts.targetElements = 100;
  auto splits = generateSplits(nd::Coord{17, 9}, opts);
  expectExactPartition(splits, nd::Coord{17, 9});
  // Ids are dense and ordered.
  for (std::size_t i = 0; i < splits.size(); ++i) {
    EXPECT_EQ(splits[i].id, i);
  }
}

TEST(SplitGen, RespectsTargetSize) {
  SplitOptions opts;
  opts.targetElements = 1000;
  auto splits = generateSplits(nd::Coord{100, 20}, opts);
  for (const auto& s : splits) {
    EXPECT_LE(s.volume(), 1000);
  }
  // Slabs of 50 rows -> 2 splits.
  EXPECT_EQ(splits.size(), 2u);
}

TEST(SplitGen, DescendsWhenRowsExceedTarget) {
  // One leading row (1x1000) is larger than the target, so the
  // generator must slice an inner dimension.
  SplitOptions opts;
  opts.targetElements = 250;
  auto splits = generateSplits(nd::Coord{4, 1000}, opts);
  expectExactPartition(splits, nd::Coord{4, 1000});
  EXPECT_EQ(splits.size(), 16u);
  for (const auto& s : splits) {
    ASSERT_EQ(s.regions.size(), 1u);
    EXPECT_EQ(s.regions[0].shape()[0], 1);
    EXPECT_EQ(s.regions[0].shape()[1], 250);
  }
}

TEST(SplitGen, SingleSplitWhenTargetHuge) {
  SplitOptions opts;
  opts.targetElements = 1 << 30;
  auto splits = generateSplits(nd::Coord{10, 10}, opts);
  ASSERT_EQ(splits.size(), 1u);
  ASSERT_EQ(splits[0].regions.size(), 1u);
  EXPECT_EQ(splits[0].regions[0], nd::Region::wholeSpace(nd::Coord{10, 10}));
}

TEST(ByteRangeSplits, CoverSpaceExactly) {
  auto splits = generateByteRangeSplits(nd::Coord{17, 9}, 7);
  EXPECT_EQ(splits.size(), 7u);
  expectExactPartition(splits, nd::Coord{17, 9});
}

TEST(ByteRangeSplits, BalancedWithinOneElement) {
  auto splits = generateByteRangeSplits(nd::Coord{100, 7}, 9);
  nd::Index mn = INT64_MAX;
  nd::Index mx = 0;
  for (const auto& s : splits) {
    mn = std::min(mn, s.volume());
    mx = std::max(mx, s.volume());
  }
  EXPECT_LE(mx - mn, 1);
}

TEST(ByteRangeSplits, RegionCountBounded) {
  auto splits = generateByteRangeSplits(nd::Coord{11, 7, 5}, 13);
  for (const auto& s : splits) {
    EXPECT_LE(s.regions.size(), 2u * 3u + 1u);
    EXPECT_GE(s.regions.size(), 1u);
  }
}

TEST(ByteRangeSplits, PaperSplitCountReproduced) {
  // The layout the paper's 348 GB / 128 MB HDFS blocks induce: exactly
  // 2,781 splits, each ~2.59 leading rows, straddling cell boundaries.
  auto splits =
      generateByteRangeSplits(nd::Coord{7200, 360, 720, 50}, 2781);
  EXPECT_EQ(splits.size(), 2781u);
  nd::Index total = 0;
  for (const auto& s : splits) total += s.volume();
  EXPECT_EQ(total, (nd::Coord{7200, 360, 720, 50}).volume());
}

TEST(ByteRangeSplits, MoreSplitsThanElementsClamps) {
  auto splits = generateByteRangeSplits(nd::Coord{3, 2}, 100);
  EXPECT_EQ(splits.size(), 6u);
  expectExactPartition(splits, nd::Coord{3, 2});
}

TEST(ByteRangeSplits, Validation) {
  EXPECT_THROW(generateByteRangeSplits(nd::Coord{4}, 0),
               std::invalid_argument);
}

TEST(SplitGen, ElementTargetOfOne) {
  SplitOptions opts;
  opts.targetElements = 1;
  auto splits = generateSplits(nd::Coord{3, 2}, opts);
  EXPECT_EQ(splits.size(), 6u);
  expectExactPartition(splits, nd::Coord{3, 2});
}

TEST(SplitGen, AlignmentSnapsToStride) {
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5};
  ExtractionMap ex(q, nd::Coord{70, 20});
  SplitOptions opts;
  opts.targetElements = 16 * 20;  // 16 rows: not a multiple of 7
  opts.alignToExtraction = true;
  auto splits = generateSplits(nd::Coord{70, 20}, ex, opts);
  expectExactPartition(splits, nd::Coord{70, 20});
  // Slab thickness snapped down to 14 (a multiple of the stride 7).
  EXPECT_EQ(splits[0].regions[0].shape()[0], 14);
}

TEST(SplitGen, AlignmentSkippedWhenTargetTooSmall) {
  StructuralQuery q;
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{7, 5};
  ExtractionMap ex(q, nd::Coord{70, 20});
  SplitOptions opts;
  opts.targetElements = 3 * 20;  // below one stride of rows
  opts.alignToExtraction = true;
  auto splits = generateSplits(nd::Coord{70, 20}, ex, opts);
  expectExactPartition(splits, nd::Coord{70, 20});
  EXPECT_EQ(splits[0].regions[0].shape()[0], 3);
}

TEST(SplitGen, PaperScaleSplitCounts) {
  // 348 GB / 128 MB -> the paper's 2781 splits; our coordinate slabs of
  // 2 leading rows give 3600 (the closest row-aligned layout).
  nd::Coord shape{7200, 360, 720, 50};
  nd::Index target = targetElementsForCount(shape, 2781);
  EXPECT_EQ(target, shape.volume() / 2781);
  SplitOptions opts;
  opts.targetElements = target;
  auto splits = generateSplits(shape, opts);
  EXPECT_EQ(splits.size(), 3600u);
  for (const auto& s : splits) {
    EXPECT_EQ(s.regions[0].shape()[0], 2);
  }
}

TEST(SplitGen, Validation) {
  SplitOptions opts;
  opts.targetElements = 0;
  EXPECT_THROW(generateSplits(nd::Coord{4, 4}, opts), std::invalid_argument);
  EXPECT_THROW(targetElementsForCount(nd::Coord{4}, 0),
               std::invalid_argument);
  // More desired splits than elements degrades to 1 element per split.
  EXPECT_EQ(targetElementsForCount(nd::Coord{4}, 100), 1);
}

}  // namespace
}  // namespace sidr::sh
