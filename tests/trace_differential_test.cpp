// Differential test: the SAME logical workload executed by the real
// in-process engine and by the cluster simulator must produce traces in
// the same schema that agree on every event-ORDERING invariant — span
// nesting, commit-before-reduce gating, attempt/outcome sequences —
// even though absolute times differ (wall clock vs simulated seconds).
// This is what makes the simulator's figure-level claims trustworthy:
// its schedule obeys the same contract the engine provably executes.
#include <gtest/gtest.h>

#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "sim/sim_engine.hpp"
#include "sim/trace.hpp"
#include "sim/workload.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

namespace ts = testsupport;

struct Geometry {
  nd::Coord input;
  sh::StructuralQuery query;
  std::uint32_t reducers;
  std::size_t splits;
};

Geometry smallGeometry() {
  Geometry g;
  g.input = nd::Coord{36, 12};
  g.query.variable = "v";
  g.query.op = sh::OperatorKind::kMean;
  g.query.extractionShape = nd::Coord{3, 4};
  g.reducers = 4;
  g.splits = 9;
  return g;
}

/// Runs the engine on the geometry, returning the result plus the
/// dependency sets used for gating checks.
mr::JobResult runEngine(const Geometry& g, SystemMode system,
                        const mr::FaultPlan& faults,
                        std::vector<std::vector<std::uint32_t>>* depsOut) {
  QueryPlanner planner(g.query, g.input);
  PlanOptions opts;
  opts.system = system;
  opts.numReducers = g.reducers;
  opts.desiredSplitCount = g.splits;
  opts.numThreads = 4;
  opts.recovery = mr::RecoveryModel::kPersistAll;
  opts.faultPlan = faults;
  opts.recordTrace = true;
  QueryPlan plan = planner.plan(sh::temperatureField(3), opts);
  *depsOut =
      system == SystemMode::kSidr
          ? plan.spec.reduceDeps
          : ts::barrierDeps(static_cast<std::uint32_t>(plan.spec.splits.size()),
                            g.reducers);
  return mr::Engine(std::move(plan.spec)).run();
}

/// Builds and runs the simulator on the same geometry with matching
/// fault injection.
sim::SimResult runSim(const Geometry& g, SystemMode system,
                      std::vector<std::uint32_t> failMaps,
                      std::vector<std::uint32_t> failReduces,
                      std::vector<std::vector<std::uint32_t>>* depsOut) {
  sim::WorkloadSpec ws;
  ws.query = g.query;
  ws.inputShape = g.input;
  ws.numSplits = g.splits;
  sim::BuiltWorkload built = sim::buildWorkload(ws, system, g.reducers);
  *depsOut = system == SystemMode::kSidr
                 ? built.job.reduceDeps
                 : ts::barrierDeps(built.job.numMaps, g.reducers);
  built.job.failOnceMaps = std::move(failMaps);
  built.job.failOnceReduces = std::move(failReduces);
  sim::ClusterSim cluster(sim::ClusterConfig{}, built.job);
  return cluster.run();
}

void expectSameOrderingInvariants(
    const obs::Trace& engineTrace,
    const std::vector<std::vector<std::uint32_t>>& engineDeps,
    const obs::Trace& simTrace,
    const std::vector<std::vector<std::uint32_t>>& simDeps) {
  // Same dependency structure (both derive from the real
  // DependencyCalculator over the same split geometry)...
  EXPECT_EQ(engineDeps, simDeps);
  // ...and both traces obey the shared contract under it.
  ts::ExpectSpansWellNested(engineTrace);
  ts::ExpectSpansWellNested(simTrace);
  ts::ExpectCommitGating(engineTrace, engineDeps);
  ts::ExpectCommitGating(simTrace, simDeps);
  // Identical attempt skeleton: the same tasks ran the same attempt
  // sequence with the same outcomes in both executions.
  EXPECT_EQ(ts::summarizeAttempts(engineTrace),
            ts::summarizeAttempts(simTrace));
}

TEST(TraceDifferential, SidrFaultFreeAgrees) {
  Geometry g = smallGeometry();
  std::vector<std::vector<std::uint32_t>> engineDeps;
  std::vector<std::vector<std::uint32_t>> simDeps;
  mr::JobResult er = runEngine(g, SystemMode::kSidr, {}, &engineDeps);
  sim::SimResult sr = runSim(g, SystemMode::kSidr, {}, {}, &simDeps);

  ts::CheckJobTrace(er);
  expectSameOrderingInvariants(er.trace, engineDeps, sr.trace, simDeps);

  // Both count the SIDR shuffle identically (Table 3's property),
  // through the same counter registry name.
  EXPECT_EQ(er.trace.counterValue("shuffle.connections"),
            sr.trace.counterValue("shuffle.connections"));
}

TEST(TraceDifferential, GlobalBarrierAgrees) {
  Geometry g = smallGeometry();
  std::vector<std::vector<std::uint32_t>> engineDeps;
  std::vector<std::vector<std::uint32_t>> simDeps;
  mr::JobResult er = runEngine(g, SystemMode::kSciHadoop, {}, &engineDeps);
  sim::SimResult sr = runSim(g, SystemMode::kSciHadoop, {}, {}, &simDeps);

  ts::CheckJobTrace(er);
  expectSameOrderingInvariants(er.trace, engineDeps, sr.trace, simDeps);

  // Barrier property in BOTH traces: no reduce attempt starts before
  // the last map commit.
  for (const obs::Trace* t : {&er.trace, &sr.trace}) {
    double lastMapCommit = 0.0;
    for (const obs::Span& s : t->spans) {
      if (s.phase == obs::Phase::kRenameCommit) {
        lastMapCommit = std::max(lastMapCommit, s.end);
      }
    }
    for (const obs::Span& s : t->spans) {
      if (s.phase == obs::Phase::kTaskAttempt &&
          s.side == obs::TaskSide::kReduce) {
        EXPECT_GE(s.start, lastMapCommit);
      }
    }
  }
}

TEST(TraceDifferential, InjectedFaultsProduceSameAttemptSkeleton) {
  // One map and one reduce die once each, persisted recovery: engine
  // and sim must both show attempt sequences [fail, ok] for exactly
  // those tasks and single ok attempts everywhere else, with gating
  // holding across the re-attempts.
  Geometry g = smallGeometry();
  mr::FaultPlan fp;
  fp.failMap(1).failReduce(2);
  std::vector<std::vector<std::uint32_t>> engineDeps;
  std::vector<std::vector<std::uint32_t>> simDeps;
  mr::JobResult er = runEngine(g, SystemMode::kSidr, fp, &engineDeps);
  sim::SimResult sr = runSim(g, SystemMode::kSidr, {1}, {2}, &simDeps);

  ts::CheckJobTrace(er);
  expectSameOrderingInvariants(er.trace, engineDeps, sr.trace, simDeps);

  ts::AttemptSummary attempts = ts::summarizeAttempts(sr.trace);
  EXPECT_EQ(attempts.at({obs::TaskSide::kMap, 1}),
            (std::vector<obs::Outcome>{obs::Outcome::kFail,
                                       obs::Outcome::kOk}));
  EXPECT_EQ(attempts.at({obs::TaskSide::kReduce, 2}),
            (std::vector<obs::Outcome>{obs::Outcome::kFail,
                                       obs::Outcome::kOk}));
  EXPECT_EQ(er.trace.counterValue("job.mapFailures"), 1u);
  EXPECT_EQ(sr.trace.counterValue("job.mapFailures"), 1u);
  EXPECT_EQ(er.trace.counterValue("job.reduceFailures"), 1u);
  EXPECT_EQ(sr.trace.counterValue("job.reduceFailures"), 1u);
}

TEST(TraceDifferential, TraceAloneReproducesCompletionSeries) {
  // sortedAttemptEnds over the sim trace must equal the SimResult's
  // own completion series — the trace is a lossless view of task
  // completion, so figure plots can be driven from either surface.
  Geometry g = smallGeometry();
  std::vector<std::vector<std::uint32_t>> simDeps;
  sim::SimResult sr = runSim(g, SystemMode::kSidr, {}, {}, &simDeps);

  EXPECT_EQ(sim::sortedAttemptEnds(sr.trace, obs::TaskSide::kReduce),
            sr.sortedReduceEnds());
  EXPECT_EQ(sim::sortedAttemptEnds(sr.trace, obs::TaskSide::kMap),
            sr.sortedMapEnds());
}

}  // namespace
}  // namespace sidr::core
