// Out-of-core engine suite (DESIGN.md section 14): the bounded-memory
// hybrid mode — segment page accounting, pressure-driven eviction of
// cold committed keyblocks, and the windowed streaming reduce merge —
// must be an invisible execution detail:
//
//  * SegmentPagePool accounting: page rounding, peak tracking and the
//    high/low watermark hysteresis the eviction loop keys on;
//  * constructor validation for the new JobSpec knobs;
//  * a deterministic pressure test where a tight budget forces
//    evictions and the output still matches the unlimited run;
//  * a 16-seed differential: budget ∈ {unlimited, tight} × spill ×
//    compression × faults produce bit-identical collectAll output,
//    satisfy the commit-before-reduce trace invariants, and mirror the
//    mem.* counters into the trace registry;
//  * an eviction/recovery race hammer (run under TSan by tier1.sh).
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

namespace ts = testsupport;
using sh::OperatorKind;

void expectSameCollected(const std::vector<mr::KeyValue>& xs,
                         const std::vector<mr::KeyValue>& ys) {
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].key, ys[i].key) << "at " << i;
    EXPECT_EQ(xs[i].value, ys[i].value) << "at " << i;
    EXPECT_EQ(xs[i].represents, ys[i].represents) << "at " << i;
  }
}

/// Walks a spill directory; fails on any surviving attempt-temporary.
void expectNoDanglingAttempts(const std::string& dir) {
  for (const auto& entry :
       std::filesystem::recursive_directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "dangling attempt file: " << name;
  }
}

// ---- page pool accounting ----

TEST(SegmentPagePool, ChargesWholePagesAndTracksPeak) {
  constexpr auto kPage = mr::SegmentPagePool::kPageBytes;
  mr::SegmentPagePool pool(8 * kPage);
  EXPECT_FALSE(pool.unlimited());
  EXPECT_EQ(pool.residentBytes(), 0u);

  // Sub-page charges round up to a full page.
  const std::uint64_t c1 = pool.charge(1);
  EXPECT_EQ(c1, kPage);
  const std::uint64_t c2 = pool.charge(kPage + 1);
  EXPECT_EQ(c2, 2 * kPage);
  EXPECT_EQ(pool.charge(kPage), kPage);
  EXPECT_EQ(pool.residentBytes(), 4 * kPage);
  EXPECT_EQ(pool.peakResidentBytes(), 4 * kPage);

  // Peak is monotone across release/recharge.
  pool.release(c2);
  EXPECT_EQ(pool.residentBytes(), 2 * kPage);
  EXPECT_EQ(pool.peakResidentBytes(), 4 * kPage);
  pool.charge(kPage);
  EXPECT_EQ(pool.peakResidentBytes(), 4 * kPage);
}

TEST(SegmentPagePool, WatermarkHysteresis) {
  constexpr auto kPage = mr::SegmentPagePool::kPageBytes;
  const std::uint64_t budget = 8 * kPage;
  mr::SegmentPagePool pool(budget);
  EXPECT_EQ(pool.highWaterBytes(), budget - budget / 8);
  EXPECT_EQ(pool.lowWaterBytes(), budget - budget / 4);
  EXPECT_LT(pool.lowWaterBytes(), pool.highWaterBytes())
      << "eviction must drain strictly below the trigger point";

  EXPECT_FALSE(pool.overHighWater());
  const std::uint64_t big = pool.charge(7 * kPage);  // 7/8 of budget
  EXPECT_FALSE(pool.overHighWater()) << "exactly at high water is admitted";
  pool.charge(1);
  EXPECT_TRUE(pool.overHighWater());
  pool.release(big);
  EXPECT_FALSE(pool.overHighWater());
}

TEST(SegmentPagePool, UnlimitedPoolNeverSignalsPressure) {
  mr::SegmentPagePool pool(0);
  EXPECT_TRUE(pool.unlimited());
  pool.charge(std::uint64_t{1} << 33);
  EXPECT_FALSE(pool.overHighWater());
  EXPECT_EQ(pool.peakResidentBytes(),
            mr::SegmentPagePool::pageRound(std::uint64_t{1} << 33))
      << "unlimited pools still meter peak residency";
}

// ---- constructor validation of the out-of-core knobs ----

QueryPlan smallPlan() {
  const nd::Coord input{8, 8};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{4, 4};
  PlanOptions opts;
  opts.numReducers = 2;
  return QueryPlanner(q, input).plan(sh::temperatureField(1), opts);
}

TEST(OutOfCoreValidation, BudgetWithoutSpillDirectoryRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.memoryBudgetBytes = 1 << 20;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(OutOfCoreValidation, BudgetSmallerThanOnePageRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.spillDirectory =
      (std::filesystem::temp_directory_path() / "sidr_ooc_reject").string();
  plan.spec.memoryBudgetBytes = mr::SegmentPagePool::kPageBytes - 1;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(OutOfCoreValidation, ZeroMergeWindowWithBudgetRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.spillDirectory =
      (std::filesystem::temp_directory_path() / "sidr_ooc_reject").string();
  plan.spec.memoryBudgetBytes = 1 << 20;
  plan.spec.mergeWindowBytes = 0;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(OutOfCoreValidation, CompressWithoutSpillDirectoryRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.compressSpill = true;
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

TEST(OutOfCoreValidation, CompressWithoutKeySpaceRejected) {
  QueryPlan plan = smallPlan();
  plan.spec.spillDirectory =
      (std::filesystem::temp_directory_path() / "sidr_ooc_reject").string();
  plan.spec.compressSpill = true;
  plan.spec.keySpace = nd::Coord{};  // the codec delta-encodes linear keys
  EXPECT_THROW(mr::Engine{std::move(plan.spec)}, std::invalid_argument);
}

// ---- deterministic pressure: a tight budget must actually evict ----

TEST(OutOfCore, TightBudgetEvictsAndMatchesUnlimitedRun) {
  const nd::Coord input{36, 12};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{3, 3};
  sh::ValueFn fn = sh::temperatureField(77);
  QueryPlanner planner(q, input);
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 6;
  opts.desiredSplitCount = 8;
  // One reduce slot: at most one keyblock is runnable at a time, so the
  // other five hold committed segments that only eviction can reclaim.
  opts.mapSlots = 2;
  opts.reduceSlots = 1;
  opts.numThreads = 2;

  QueryPlan reference = planner.plan(fn, opts);
  mr::JobResult unlimited = mr::Engine(std::move(reference.spec)).run();
  EXPECT_EQ(unlimited.pressureSpillEvents, 0u);
  EXPECT_GT(unlimited.peakResidentSegmentBytes, 0u)
      << "the pool meters residency even without a budget";

  const std::string dir =
      (std::filesystem::temp_directory_path() / "sidr_ooc_pressure").string();
  std::filesystem::remove_all(dir);
  QueryPlan plan = planner.plan(fn, opts);
  // Two pages of budget against ~8x6 published segments: every
  // publication crosses high water while five keyblocks are cold.
  plan.spec.spillDirectory = dir;
  plan.spec.memoryBudgetBytes = 2 * mr::SegmentPagePool::kPageBytes;
  plan.spec.mergeWindowBytes = 4096;
  mr::JobResult bounded = mr::Engine(std::move(plan.spec)).run();
  EXPECT_GT(bounded.pressureSpillEvents, 0u);
  EXPECT_EQ(bounded.annotationViolations, 0u);
  expectNoDanglingAttempts(dir);
  expectSameCollected(bounded.collectAll(), unlimited.collectAll());
  std::filesystem::remove_all(dir);
}

// ---- 16-seed differential across the mode matrix ----

struct Arm {
  const char* name;
  bool spill;
  std::uint64_t budget;
  bool compress;
};

class OutOfCoreParity : public ::testing::TestWithParam<int> {};

TEST_P(OutOfCoreParity, ModeMatrixProducesIdenticalOutput) {
  std::mt19937_64 rng(static_cast<std::uint64_t>(GetParam()) * 9173 + 11);
  nd::Coord input{static_cast<nd::Index>(16 + rng() % 14),
                  static_cast<nd::Index>(8 + rng() % 8)};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (rng() % 2 == 0) ? OperatorKind::kMean : OperatorKind::kMedian;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + rng() % 3),
                                static_cast<nd::Index>(2 + rng() % 3)};
  sh::ValueFn fn =
      sh::temperatureField(static_cast<std::uint64_t>(GetParam() + 400));
  PlanOptions opts;
  opts.system = (rng() % 4 == 0) ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(3 + rng() % 3);
  opts.desiredSplitCount = 4 + rng() % 5;
  opts.numThreads = 3;
  opts.reduceSlots = 1 + static_cast<std::uint32_t>(rng() % 2);
  opts.recovery = (rng() % 2 == 0) ? mr::RecoveryModel::kPersistAll
                                   : mr::RecoveryModel::kRecomputeDeps;
  opts.recordTrace = true;
  QueryPlanner planner(q, input);

  // Draw the fault schedule once, against the actual split count, so
  // every arm replays the identical re-attempt pattern.
  mr::FaultPlan faults;
  std::vector<std::vector<std::uint32_t>> deps;
  {
    QueryPlan probe = planner.plan(fn, opts);
    const auto numMaps = static_cast<std::uint32_t>(probe.spec.splits.size());
    if (rng() % 2 == 0) {
      faults.failReduce(static_cast<std::uint32_t>(rng()) % opts.numReducers,
                        1);
    }
    if (rng() % 2 == 0) {
      faults.failMap(static_cast<std::uint32_t>(rng()) % numMaps, 1);
    }
    deps = opts.system == SystemMode::kSidr
               ? probe.spec.reduceDeps
               : ts::barrierDeps(numMaps, opts.numReducers);
  }

  // Seed-derived tight budget in [1, 8] pages; window small enough that
  // streamed inputs decode through many refills.
  const std::uint64_t tight =
      (1 + rng() % 8) * mr::SegmentPagePool::kPageBytes;
  const Arm arms[] = {
      {"spill-eager", true, 0, false},
      {"in-memory", false, 0, false},
      {"hybrid-tight", true, tight, false},
      {"hybrid-tight-compress", true, tight, true},
      {"spill-eager-compress", true, 0, true},
  };
  SCOPED_TRACE("input " + input.toString() + " r=" +
               std::to_string(opts.numReducers) +
               " faults=" + std::to_string(faults.faults.size()) +
               " tight=" + std::to_string(tight));

  std::vector<mr::KeyValue> referenceCollected;
  for (const Arm& arm : arms) {
    SCOPED_TRACE(arm.name);
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("sidr_ooc_parity_" + std::to_string(GetParam()) + "_" + arm.name))
            .string();
    std::filesystem::remove_all(dir);
    QueryPlan plan = planner.plan(fn, opts);
    if (arm.spill) plan.spec.spillDirectory = dir;
    plan.spec.memoryBudgetBytes = arm.budget;
    plan.spec.mergeWindowBytes = 4096;
    plan.spec.compressSpill = arm.compress;
    plan.spec.faultPlan = faults;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.annotationViolations, 0u);
    if (arm.spill) expectNoDanglingAttempts(dir);

    // Scheduling contract holds in every mode: eviction's extra
    // rename-commit spans must not weaken commit gating, and their
    // represents annotations must keep the fetch tallies consistent.
    ts::CheckJobTrace(result);
    ts::ExpectCommitGating(result.trace, deps);
    ts::ExpectFetchTalliesMatchCommits(result.trace, deps);

    // mem.* counters mirror into the trace registry.
    EXPECT_EQ(result.trace.counterValue("mem.peakResidentSegmentBytes"),
              result.peakResidentSegmentBytes);
    EXPECT_EQ(result.trace.counterValue("mem.pressureSpillEvents"),
              result.pressureSpillEvents);
    EXPECT_EQ(result.trace.counterValue("mem.spillCompressedBytes"),
              result.spillCompressedBytes);
    // In-memory and hybrid runs keep published segments resident, so
    // the pool must have metered them; eager spill writes map output
    // straight to disk and these small jobs never buffer a full page.
    if (!arm.spill || arm.budget > 0) {
      EXPECT_GT(result.peakResidentSegmentBytes, 0u);
    }
    // Eager spill always encodes; hybrid only writes when pressure
    // actually evicted something (an eviction that loses the republish
    // race still counts encoded bytes, so no upper assertion there).
    if (arm.compress && (arm.budget == 0 || result.pressureSpillEvents > 0)) {
      EXPECT_GT(result.spillCompressedBytes, 0u);
    }
    if (!arm.compress) {
      EXPECT_EQ(result.spillCompressedBytes, 0u);
    }
    if (arm.budget == 0) {
      EXPECT_EQ(result.pressureSpillEvents, 0u);
    }

    auto collected = result.collectAll();
    std::filesystem::remove_all(dir);
    if (referenceCollected.empty() && std::string(arm.name) == "spill-eager") {
      referenceCollected = std::move(collected);
      continue;
    }
    expectSameCollected(collected, referenceCollected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OutOfCoreParity, ::testing::Range(0, 16));

// ---- eviction/recovery race hammer (run under TSan via tier1.sh) ----

TEST(OutOfCoreHammer, EvictionRacesRecoveryAndStreamingFetch) {
  // Tight budget + kRecomputeDeps + injected map/reduce failures: the
  // pressure evictor hands cold keyblocks to pool workers while failed
  // reduces force their I_l maps to republish the very segments being
  // evicted, and other reduces stream evicted inputs through bounded
  // windows. The pointer-equality finalize guard and the
  // evictingCount runnable gate must keep every interleaving
  // bit-identical to the serial oracle.
  const nd::Coord input{36, 10};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{3, 5};
  sh::ValueFn fn = sh::temperatureField(43);
  QueryPlanner planner(q, input);
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sidr_ooc_hammer").string();
  sh::ExtractionMap ex(q, input);
  std::vector<mr::KeyValue> oracle = sh::runSerialOracle(q, ex, fn);
  for (int iter = 0; iter < 3; ++iter) {
    std::filesystem::remove_all(dir);
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = 6;
    opts.desiredSplitCount = 12;
    opts.numThreads = 8;
    opts.reduceSlots = 4;
    opts.mapSlots = 4;
    opts.recovery = mr::RecoveryModel::kRecomputeDeps;
    opts.faultPlan.failReduce(0).failReduce(2).failReduce(3).failReduce(5);
    opts.faultPlan.failMap(1).failMap(7);
    QueryPlan plan = planner.plan(fn, opts);
    plan.spec.spillDirectory = dir;
    plan.spec.spillWriters = 8;
    plan.spec.memoryBudgetBytes = 2 * mr::SegmentPagePool::kPageBytes;
    plan.spec.mergeWindowBytes = 1024;
    plan.spec.compressSpill = (iter % 2 == 1);
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    EXPECT_EQ(result.reduceFailures, 4u);
    EXPECT_EQ(result.mapFailures, 2u);
    EXPECT_EQ(result.annotationViolations, 0u);
    expectNoDanglingAttempts(dir);
    auto got = result.collectAll();
    ASSERT_EQ(got.size(), oracle.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].key, oracle[i].key);
      EXPECT_NEAR(got[i].value.asScalar(), oracle[i].value.asScalar(), 1e-9);
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sidr::core
