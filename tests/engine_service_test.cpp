// EngineService suite (DESIGN.md section 15): the long-lived multi-job
// engine must make N concurrent jobs an invisible execution detail —
// every job bit-identical to a solo Engine::run of the same spec:
//
//  * config/spec validation shared with the Engine constructor;
//  * a mixed fleet (in-memory, eager spill, hybrid budget, compressed,
//    faulted, barrier) over ONE shared spill directory, each output and
//    each job's sort counters identical to its solo baseline;
//  * failed jobs: wait() rethrows JobError, the job's spill namespace
//    is removed (kept with keepSpillOnFailure), committed keyblocks
//    stay readable and exact through partialResults();
//  * cancellation: queued jobs die without touching disk; a running job
//    drains, finalizes kCancelled and removes its namespace, with
//    partial results observable mid-run via a gated reducer;
//  * per-job trace isolation (jobId stamping, commit gating, event/span
//    invariants) while jobs share worker threads;
//  * all three scheduling policies produce identical outputs;
//  * the admission ledger serializes jobs whose declared budgets exceed
//    the service total (and never wedges an oversized head job);
//  * a multi-job hammer (slow label; run under TSan/ASan by tier1.sh).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "mapreduce/engine.hpp"
#include "mapreduce/engine_service.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

namespace fs = std::filesystem;
namespace ts = testsupport;
using sh::OperatorKind;

std::string tempDir(const std::string& name) {
  const std::string dir = (fs::temp_directory_path() / name).string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string jobNamespace(const std::string& spillDir, std::uint64_t jobId) {
  return spillDir + "/" + mr::jobSpillDirName(jobId);
}

void expectSameCollected(const std::vector<mr::KeyValue>& xs,
                         const std::vector<mr::KeyValue>& ys) {
  ASSERT_EQ(xs.size(), ys.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(xs[i].key, ys[i].key) << "at " << i;
    EXPECT_EQ(xs[i].value, ys[i].value) << "at " << i;
    EXPECT_EQ(xs[i].represents, ys[i].represents) << "at " << i;
  }
}

void expectSameOutput(const mr::ReduceOutput& got, const mr::ReduceOutput& want) {
  EXPECT_EQ(got.keyblock, want.keyblock);
  ASSERT_EQ(got.records.size(), want.records.size())
      << "keyblock " << want.keyblock;
  for (std::size_t i = 0; i < got.records.size(); ++i) {
    EXPECT_EQ(got.records[i].key, want.records[i].key);
    EXPECT_EQ(got.records[i].value, want.records[i].value);
    EXPECT_EQ(got.records[i].represents, want.records[i].represents);
  }
}

void expectSameSortTotals(const mr::SortStats& got, const mr::SortStats& want) {
  EXPECT_EQ(got.sortedSkips, want.sortedSkips);
  EXPECT_EQ(got.comparisonSorts, want.comparisonSorts);
  EXPECT_EQ(got.radixSorts, want.radixSorts);
  EXPECT_EQ(got.radixPasses, want.radixPasses);
  EXPECT_EQ(got.radixPassesSkipped, want.radixPassesSkipped);
}

void expectNoDanglingAttempts(const std::string& dir) {
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    EXPECT_EQ(name.find(".tmp"), std::string::npos)
        << "dangling attempt file: " << name;
  }
}

/// One of six job shapes cycled by the fleet tests. All six succeed;
/// they cover every shuffle regime the engine has plus injected-fault
/// recovery and the barrier mode.
QueryPlan makePlan(int variant, const std::string& spillDir) {
  const int v = variant % 6;
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (variant % 2 == 0) ? OperatorKind::kMean : OperatorKind::kMedian;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + v % 3), 2};
  const nd::Coord input{static_cast<nd::Index>(16 + 2 * (variant % 5)), 12};
  PlanOptions opts;
  opts.system = (v == 5) ? SystemMode::kSciHadoop : SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(3 + variant % 3);
  opts.desiredSplitCount = 6;
  opts.numThreads = 2;  // ignored by the service; used by solo baselines
  if (v != 0) opts.spillDirectory = spillDir;
  if (v == 2) {
    opts.memoryBudgetBytes = 2 * mr::SegmentPagePool::kPageBytes;
    opts.mergeWindowBytes = 4096;
  }
  if (v == 3) opts.compressSpill = true;
  if (v == 4) {
    opts.faultPlan.failMap(0, 1);
    opts.faultPlan.failReduce(1, 1);
    opts.recordTrace = true;
  }
  return QueryPlanner(q, input).plan(
      sh::temperatureField(static_cast<std::uint64_t>(31 + variant)), opts);
}

/// A job whose keyblock 0 fails on every attempt: terminally kFailed.
QueryPlan fatalPlan(const std::string& spillDir) {
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2};
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 5;
  opts.numThreads = 2;
  opts.spillDirectory = spillDir;
  opts.faultPlan.maxAttempts = 2;
  opts.faultPlan.failReduce(0, 1).failReduce(0, 2);
  return QueryPlanner(q, nd::Coord{18, 10})
      .plan(sh::temperatureField(7), opts);
}

/// Solo Engine baseline for a plan's spec, namespaced by `soloId` so it
/// can share a spill directory with the service jobs it is compared to.
mr::JobResult runSolo(const QueryPlan& plan, std::uint64_t soloId) {
  mr::JobSpec spec = plan.spec;
  spec.jobId = soloId;
  return mr::Engine(std::move(spec)).run();
}

// ---- gated reducers: deterministic mid-run observation points ----

/// Rendezvous between the test thread and one reducer: the reducer
/// parks at the gate until the test releases it.
struct ReduceGate {
  std::mutex m;
  std::condition_variable cv;
  bool blocked = false;
  bool open = false;

  void arriveAndWait() {
    std::unique_lock lk(m);
    blocked = true;
    cv.notify_all();
    cv.wait(lk, [this] { return open; });
  }
  bool waitUntilBlocked() {
    std::unique_lock lk(m);
    return cv.wait_for(lk, std::chrono::seconds(30),
                       [this] { return blocked; });
  }
  void release() {
    std::scoped_lock lk(m);
    open = true;
    cv.notify_all();
  }
};

class GatedReducer : public mr::Reducer {
 public:
  GatedReducer(std::unique_ptr<mr::Reducer> inner,
               std::shared_ptr<ReduceGate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}

  void reduce(const nd::Coord& key, std::span<const mr::Value* const> values,
              mr::ReduceContext& ctx) override {
    if (gate_ != nullptr) {
      gate_->arriveAndWait();
      gate_ = nullptr;
    }
    inner_->reduce(key, values, ctx);
  }

 private:
  std::unique_ptr<mr::Reducer> inner_;
  std::shared_ptr<ReduceGate> gate_;
};

/// Wraps a reducer factory so the `nth` reducer it creates (0-based,
/// i.e. the nth reduce attempt to start merging) parks at `gate`.
mr::ReducerFactory gateNthReducer(mr::ReducerFactory inner,
                                  std::shared_ptr<ReduceGate> gate,
                                  std::uint32_t nth) {
  auto counter = std::make_shared<std::atomic<std::uint32_t>>(0);
  return [inner = std::move(inner), gate = std::move(gate), counter,
          nth]() -> std::unique_ptr<mr::Reducer> {
    std::unique_ptr<mr::Reducer> r = inner();
    if (counter->fetch_add(1) == nth) {
      return std::make_unique<GatedReducer>(std::move(r), gate);
    }
    return r;
  };
}

// ---- validation ----

TEST(EngineServiceValidation, ZeroSpillWritersRejected) {
  mr::ServiceConfig config;
  config.spillWriters = 0;
  EXPECT_THROW(mr::EngineService{config}, std::invalid_argument);
}

TEST(EngineServiceValidation, SubmitRejectsBadSpecsLikeEngine) {
  const std::string dir = tempDir("sidr_svc_validate");
  QueryPlan plan = makePlan(1, dir);
  mr::JobSpec bad = plan.spec;
  bad.weight = 0.0;
  EXPECT_THROW(mr::Engine{mr::JobSpec(bad)}, std::invalid_argument);
  mr::EngineService service;
  EXPECT_THROW(service.submit(std::move(bad)), std::invalid_argument);
  // A rejected submission never reached the queue.
  EXPECT_EQ(service.stats().submitted, 0u);
}

TEST(EngineServiceValidation, ZeroThreadsClampedToOne) {
  mr::ServiceConfig config;
  config.numThreads = 0;
  mr::EngineService service(config);
  EXPECT_EQ(service.config().numThreads, 1u);
  QueryPlan plan = makePlan(0, "");
  mr::JobHandle handle = service.submit(mr::JobSpec(plan.spec));
  EXPECT_NO_THROW(handle.wait());
}

// ---- single job: the service is a drop-in for Engine::run ----

TEST(EngineService, SingleJobMatchesSoloEngine) {
  const std::string dir = tempDir("sidr_svc_single");
  QueryPlan plan = makePlan(1, dir);
  const mr::JobResult solo = runSolo(plan, 500);

  mr::ServiceConfig config;
  config.numThreads = 3;
  mr::EngineService service(config);
  mr::JobHandle handle = service.submit(mr::JobSpec(plan.spec));
  ASSERT_TRUE(handle.valid());
  const mr::JobResult& result = handle.wait();

  EXPECT_EQ(handle.status(), mr::JobState::kSucceeded);
  EXPECT_TRUE(handle.done());
  expectSameCollected(result.collectAll(), solo.collectAll());
  EXPECT_EQ(result.shuffleConnections, solo.shuffleConnections);
  EXPECT_EQ(result.recordsPerReducer, solo.recordsPerReducer);
  EXPECT_EQ(result.annotationViolations, 0u);
  expectSameSortTotals(result.sortTotals, solo.sortTotals);

  // Terminal partials are the full output set; cancel is a no-op now.
  EXPECT_EQ(handle.partialResults().size(), result.outputs.size());
  EXPECT_FALSE(handle.cancel());

  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.succeeded, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.cancelled, 0u);
}

// ---- the fleet: mixed regimes over one shared spill directory ----

TEST(EngineService, ConcurrentMixedJobsBitIdenticalToSolo) {
  const std::string dir = tempDir("sidr_svc_fleet");
  constexpr std::size_t kJobs = 12;

  std::vector<QueryPlan> plans;
  std::vector<mr::JobResult> solos;
  for (std::size_t i = 0; i < kJobs; ++i) {
    plans.push_back(makePlan(static_cast<int>(i), dir));
    solos.push_back(runSolo(plans.back(), 500 + i));
  }

  mr::ServiceConfig config;
  config.numThreads = 4;
  config.maxConcurrentJobs = 4;
  mr::EngineService service(config);
  std::vector<mr::JobHandle> handles;
  for (std::size_t i = 0; i < kJobs; ++i) {
    handles.push_back(service.submit(mr::JobSpec(plans[i].spec)));
  }

  for (std::size_t i = 0; i < kJobs; ++i) {
    const mr::JobResult& result = handles[i].wait();
    expectSameCollected(result.collectAll(), solos[i].collectAll());
    EXPECT_EQ(result.shuffleConnections, solos[i].shuffleConnections)
        << "job " << i;
    EXPECT_EQ(result.recordsPerReducer, solos[i].recordsPerReducer);
    EXPECT_EQ(result.annotationViolations, 0u);
    // The old thread_local baseline/delta fold bled counts across jobs
    // sharing a thread; per-attempt sinks must reproduce the solo
    // counters exactly even with 4 jobs interleaving on 4 workers.
    expectSameSortTotals(result.sortTotals, solos[i].sortTotals);
    EXPECT_EQ(result.mapFailures, solos[i].mapFailures);
    EXPECT_EQ(result.reduceFailures, solos[i].reduceFailures);
  }

  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kJobs);
  EXPECT_EQ(stats.succeeded, kJobs);
  expectNoDanglingAttempts(dir);
}

// ---- failure: cleanup, opt-out, and exact surviving partials ----

TEST(EngineService, FailedJobRemovesSpillNamespace) {
  const std::string dir = tempDir("sidr_svc_fail");
  QueryPlan plan = fatalPlan(dir);

  // Healthy twin of the same plan: the oracle for surviving partials.
  QueryPlan healthyPlan = fatalPlan(dir);
  healthyPlan.spec.faultPlan = mr::FaultPlan{};
  const mr::JobResult healthy = runSolo(healthyPlan, 500);

  // Solo Engine::run cleans up too (the fix is engine-wide, not
  // service-only).
  {
    mr::JobSpec spec = plan.spec;
    spec.jobId = 501;
    EXPECT_THROW(mr::Engine(std::move(spec)).run(), mr::JobError);
    EXPECT_FALSE(fs::exists(jobNamespace(dir, 501)))
        << "solo failed job stranded its spill namespace";
  }

  mr::EngineService service;
  mr::JobHandle handle = service.submit(mr::JobSpec(plan.spec));
  EXPECT_THROW(handle.wait(), mr::JobError);
  EXPECT_EQ(handle.status(), mr::JobState::kFailed);
  EXPECT_FALSE(fs::exists(jobNamespace(dir, handle.id())))
      << "failed job stranded its spill namespace";
  EXPECT_EQ(service.stats().failed, 1u);

  // Keyblocks that committed before the failure stay readable and
  // exact; the faulted keyblock 0 is never among them.
  for (const mr::ReduceOutput& out : handle.partialResults()) {
    EXPECT_NE(out.keyblock, 0u);
    ASSERT_LT(out.keyblock, healthy.outputs.size());
    expectSameOutput(out, healthy.outputs[out.keyblock]);
  }
}

TEST(EngineService, KeepSpillOnFailurePreservesNamespace) {
  const std::string dir = tempDir("sidr_svc_keep");
  QueryPlan plan = fatalPlan(dir);
  plan.spec.keepSpillOnFailure = true;

  mr::EngineService service;
  mr::JobHandle handle = service.submit(std::move(plan.spec));
  EXPECT_THROW(handle.wait(), mr::JobError);
  const std::string ns = jobNamespace(dir, handle.id());
  EXPECT_TRUE(fs::exists(ns)) << "keepSpillOnFailure must preserve " << ns;
  std::size_t files = 0;
  for (const auto& entry : fs::recursive_directory_iterator(ns)) {
    if (entry.is_regular_file()) ++files;
  }
  EXPECT_GT(files, 0u) << "the preserved namespace holds the committed "
                          "map output the post-mortem needs";
}

// ---- cancellation ----

TEST(EngineService, CancelQueuedJobNeverTouchesDisk) {
  const std::string dir = tempDir("sidr_svc_cancel_q");
  auto gate = std::make_shared<ReduceGate>();
  QueryPlan blocker = makePlan(1, dir);
  blocker.spec.reducerFactory =
      gateNthReducer(std::move(blocker.spec.reducerFactory), gate, 0);

  mr::ServiceConfig config;
  config.numThreads = 2;
  config.maxConcurrentJobs = 1;  // the blocker monopolizes admission
  mr::EngineService service(config);
  mr::JobHandle blocked = service.submit(std::move(blocker.spec));
  ASSERT_TRUE(gate->waitUntilBlocked());

  QueryPlan queuedPlan = makePlan(2, dir);
  mr::JobHandle queued = service.submit(mr::JobSpec(queuedPlan.spec));
  EXPECT_EQ(queued.status(), mr::JobState::kQueued);
  EXPECT_TRUE(queued.partialResults().empty());
  EXPECT_TRUE(queued.cancel());
  EXPECT_EQ(queued.status(), mr::JobState::kCancelled);
  EXPECT_THROW(queued.wait(), mr::JobCancelled);
  EXPECT_FALSE(fs::exists(jobNamespace(dir, queued.id())))
      << "a never-admitted job must not create its namespace";
  EXPECT_FALSE(queued.cancel()) << "cancel on a terminal job is a no-op";

  gate->release();
  EXPECT_NO_THROW(blocked.wait());
  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.cancelled, 1u);
  EXPECT_EQ(stats.succeeded, 1u);
}

TEST(EngineService, CancelMidShuffleDropsNamespaceKeepsExactPartials) {
  const std::string dir = tempDir("sidr_svc_cancel_r");
  // 3+ keyblocks, one reduce slot: reduces commit one at a time, the
  // SECOND reduce attempt parks at the gate, the third never starts
  // once the cancel lands — so the job cannot slip to kSucceeded.
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2};
  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 5;
  opts.reduceSlots = 1;
  opts.numThreads = 2;
  opts.spillDirectory = dir;
  QueryPlanner planner(q, nd::Coord{18, 12});
  QueryPlan plan = planner.plan(sh::temperatureField(11), opts);

  const mr::JobResult solo = runSolo(plan, 500);
  for (const mr::ReduceOutput& out : solo.outputs) {
    ASSERT_FALSE(out.records.empty())
        << "precondition: every keyblock produces output, so every "
           "reduce attempt reaches its reducer (and the gate)";
  }

  auto gate = std::make_shared<ReduceGate>();
  plan.spec.reducerFactory =
      gateNthReducer(std::move(plan.spec.reducerFactory), gate, 1);

  mr::ServiceConfig config;
  config.numThreads = 2;
  mr::EngineService service(config);
  mr::JobHandle handle = service.submit(std::move(plan.spec));
  ASSERT_TRUE(gate->waitUntilBlocked());

  // One reduce has committed (the slot freed for the parked one):
  // SIDR's early exact results are observable before the job ends.
  const std::vector<mr::ReduceOutput> early = handle.partialResults();
  EXPECT_EQ(handle.status(), mr::JobState::kRunning);
  ASSERT_EQ(early.size(), 1u);
  expectSameOutput(early[0], solo.outputs[early[0].keyblock]);

  EXPECT_TRUE(handle.cancel());
  gate->release();  // the parked reduce drains (and commits)
  EXPECT_THROW(handle.wait(), mr::JobCancelled);
  EXPECT_EQ(handle.status(), mr::JobState::kCancelled);
  EXPECT_FALSE(fs::exists(jobNamespace(dir, handle.id())))
      << "cancelled job stranded its spill namespace";

  // The two committed keyblocks survive, exact; the third never ran.
  const std::vector<mr::ReduceOutput> partial = handle.partialResults();
  EXPECT_EQ(partial.size(), 2u);
  for (const mr::ReduceOutput& out : partial) {
    expectSameOutput(out, solo.outputs[out.keyblock]);
  }
  EXPECT_EQ(service.stats().cancelled, 1u);
}

// ---- per-job observability while sharing threads ----

TEST(EngineService, TracesStayIsolatedPerJob) {
  const std::string dir = tempDir("sidr_svc_trace");
  constexpr int kJobs = 4;
  std::vector<QueryPlan> plans;
  for (int i = 0; i < kJobs; ++i) {
    // Variant 4 is the faulted + recordTrace shape; vary the seed via
    // the variant stride so the four jobs differ.
    plans.push_back(makePlan(4 + 6 * i, dir));
  }

  mr::ServiceConfig config;
  config.numThreads = 4;
  mr::EngineService service(config);
  std::vector<mr::JobHandle> handles;
  for (QueryPlan& plan : plans) {
    handles.push_back(service.submit(mr::JobSpec(plan.spec)));
  }

  for (std::size_t i = 0; i < static_cast<std::size_t>(kJobs); ++i) {
    const mr::JobResult& result = handles[i].wait();
    EXPECT_EQ(result.trace.jobId, handles[i].id())
        << "trace must carry the identity of the job that produced it";
    ts::CheckJobTrace(result);
    // SIDR commit gating holds per job even though the four jobs'
    // spans were recorded by the same four worker threads.
    ts::ExpectCommitGating(result.trace,
                           plans[i].dependencies.keyblockToSplits);
  }
}

// ---- scheduling policies ----

TEST(EngineService, AllPoliciesProduceIdenticalResults) {
  const std::string baseDir = tempDir("sidr_svc_policy");
  constexpr int kJobs = 6;
  std::vector<QueryPlan> plans;
  std::vector<mr::JobResult> solos;
  for (int i = 0; i < kJobs; ++i) {
    plans.push_back(makePlan(i, baseDir + "/solo"));
    solos.push_back(runSolo(plans[static_cast<std::size_t>(i)],
                            500 + static_cast<std::uint64_t>(i)));
  }

  for (const mr::SchedulingPolicy policy :
       {mr::SchedulingPolicy::kFifo, mr::SchedulingPolicy::kWeightedFair,
        mr::SchedulingPolicy::kReduceFirst}) {
    const std::string dir =
        tempDir(std::string("sidr_svc_policy_") + schedulingPolicyName(policy));
    mr::ServiceConfig config;
    config.numThreads = 4;
    config.policy = policy;
    mr::EngineService service(config);
    std::vector<mr::JobHandle> handles;
    for (int i = 0; i < kJobs; ++i) {
      mr::JobSpec spec = plans[static_cast<std::size_t>(i)].spec;
      if (!spec.spillDirectory.empty()) spec.spillDirectory = dir;
      spec.weight = (i % 2 == 0) ? 1.0 : 4.0;  // exercised by kWeightedFair
      handles.push_back(service.submit(std::move(spec)));
    }
    for (int i = 0; i < kJobs; ++i) {
      const mr::JobResult& result = handles[static_cast<std::size_t>(i)].wait();
      expectSameCollected(result.collectAll(),
                          solos[static_cast<std::size_t>(i)].collectAll());
    }
    EXPECT_EQ(service.stats().succeeded, static_cast<std::uint64_t>(kJobs))
        << schedulingPolicyName(policy);
  }
}

// ---- admission ledger ----

TEST(EngineService, AdmissionLedgerSerializesOverBudgetJobs) {
  const std::string dir = tempDir("sidr_svc_ledger");
  constexpr auto kPage = mr::SegmentPagePool::kPageBytes;
  QueryPlan plan = makePlan(2, dir);  // hybrid-budget variant
  plan.spec.memoryBudgetBytes = 3 * kPage;

  mr::ServiceConfig config;
  config.numThreads = 4;
  config.maxConcurrentJobs = 0;       // unbounded: the ledger is the gate
  config.memoryBudgetBytes = 4 * kPage;  // two 3-page jobs cannot coexist
  mr::EngineService service(config);
  std::vector<mr::JobHandle> handles;
  for (int i = 0; i < 3; ++i) {
    handles.push_back(service.submit(mr::JobSpec(plan.spec)));
  }
  for (mr::JobHandle& handle : handles) EXPECT_NO_THROW(handle.wait());

  const mr::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.succeeded, 3u);
  EXPECT_EQ(stats.peakConcurrentJobs, 1u)
      << "3-page reservations against a 4-page ledger must serialize";
  EXPECT_EQ(stats.peakAdmittedBytes, 3 * kPage);
}

TEST(EngineService, OversizedHeadJobAdmittedAlone) {
  const std::string dir = tempDir("sidr_svc_oversized");
  constexpr auto kPage = mr::SegmentPagePool::kPageBytes;
  QueryPlan plan = makePlan(2, dir);
  plan.spec.memoryBudgetBytes = 16 * kPage;

  mr::ServiceConfig config;
  config.memoryBudgetBytes = 4 * kPage;
  mr::EngineService service(config);
  mr::JobHandle handle = service.submit(std::move(plan.spec));
  EXPECT_NO_THROW(handle.wait())
      << "a head job larger than the whole ledger must run alone, "
         "not deadlock the queue";
  EXPECT_EQ(service.stats().peakConcurrentJobs, 1u);
  EXPECT_EQ(service.stats().peakAdmittedBytes, 16 * kPage);
}

// ---- lifecycle ----

TEST(EngineService, DrainAllowsReuse) {
  const std::string dir = tempDir("sidr_svc_drain");
  mr::EngineService service;
  QueryPlan plan = makePlan(1, dir);
  service.submit(mr::JobSpec(plan.spec));
  service.submit(mr::JobSpec(plan.spec));
  service.drain();
  EXPECT_EQ(service.stats().succeeded, 2u);
  mr::JobHandle handle = service.submit(mr::JobSpec(plan.spec));
  EXPECT_NO_THROW(handle.wait());
  EXPECT_EQ(service.stats().succeeded, 3u);
}

// ---- hammer: many jobs, every outcome class, all policies (slow) ----

TEST(MultiJobServiceHammer, FleetWithFailuresAndCancels) {
  for (const mr::SchedulingPolicy policy :
       {mr::SchedulingPolicy::kFifo, mr::SchedulingPolicy::kWeightedFair,
        mr::SchedulingPolicy::kReduceFirst}) {
    const std::string dir = tempDir(
        std::string("sidr_svc_hammer_") + schedulingPolicyName(policy));
    constexpr std::size_t kJobs = 18;

    std::vector<QueryPlan> plans;
    std::vector<mr::JobResult> solos;
    for (std::size_t i = 0; i < kJobs; ++i) {
      plans.push_back(makePlan(static_cast<int>(i), dir));
      solos.push_back(runSolo(plans.back(), 500 + i));
    }
    QueryPlan fatal = fatalPlan(dir);

    mr::ServiceConfig config;
    config.numThreads = 8;
    config.maxConcurrentJobs = 6;
    config.policy = policy;
    mr::EngineService service(config);

    std::vector<mr::JobHandle> handles;
    std::vector<mr::JobHandle> failing;
    for (std::size_t i = 0; i < kJobs; ++i) {
      mr::JobSpec spec = plans[i].spec;
      spec.weight = 1.0 + static_cast<double>(i % 3);
      handles.push_back(service.submit(std::move(spec)));
      if (i % 6 == 5) {
        failing.push_back(service.submit(mr::JobSpec(fatal.spec)));
      }
    }
    // Cancel a tail job immediately: depending on timing it dies queued
    // or drains mid-run — both must leave a clean namespace.
    mr::JobHandle cancelled = service.submit(mr::JobSpec(plans[0].spec));
    const bool cancelLanded = cancelled.cancel();

    for (std::size_t i = 0; i < kJobs; ++i) {
      const mr::JobResult& result = handles[i].wait();
      expectSameCollected(result.collectAll(), solos[i].collectAll());
      expectSameSortTotals(result.sortTotals, solos[i].sortTotals);
    }
    for (mr::JobHandle& handle : failing) {
      EXPECT_THROW(handle.wait(), mr::JobError);
      EXPECT_FALSE(fs::exists(jobNamespace(dir, handle.id())));
    }
    if (cancelLanded) {
      EXPECT_THROW(cancelled.wait(), mr::JobCancelled);
      EXPECT_FALSE(fs::exists(jobNamespace(dir, cancelled.id())));
    } else {
      EXPECT_NO_THROW(cancelled.wait());
    }

    const mr::ServiceStats stats = service.stats();
    const std::uint64_t submitted = kJobs + 1 + failing.size();
    EXPECT_EQ(stats.submitted, submitted);
    EXPECT_EQ(stats.succeeded + stats.failed + stats.cancelled, submitted);
    EXPECT_EQ(stats.failed, failing.size());
    EXPECT_GE(stats.peakConcurrentJobs, 2u)
        << "the hammer must actually exercise concurrent jobs";
    expectNoDanglingAttempts(dir);
  }
}

}  // namespace
}  // namespace sidr::core
