// Skew-adaptive partitioning + two-array structural join suite
// (DESIGN.md §18).
//
// The headline property is a 16-seed differential: a skew-adapted plan
// must produce BIT-IDENTICAL collectAll() output to the unrefined plan
// for the same query, across shuffle regimes (in-memory / eager spill /
// hybrid budget / compressed) and transports (in-process / socket /
// file-served) — refinement may only move keys between keyblocks, never
// change a single output byte. The join operator is pinned by a frozen
// test-local nested-loop oracle written against floor-division geometry
// (independent of ExtractionMap), and refined dependency sets are
// checked EXACT against brute-force realized (split, keyblock) pairs.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <random>
#include <set>

#include "mapreduce/engine.hpp"
#include "mapreduce/engine_service.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"
#include "sidr/skew_sampler.hpp"
#include "support/trace_check.hpp"

namespace sidr::core {
namespace {

// ---- shared helpers ----

/// Deterministic per-coordinate hash in [0, 1).
double coordHash(const nd::Coord& c, std::uint64_t salt) {
  std::uint64_t h = salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  for (std::size_t d = 0; d < c.rank(); ++d) {
    h ^= static_cast<std::uint64_t>(c[d]) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h *= 0x2545f4914f6cdd1dULL;
  }
  return static_cast<double>(h >> 11) * 0x1p-53;
}

/// Values whose >threshold survivors cluster in the leading `hotRows`
/// rows of axis 0 — uniform key counts, heavily skewed load.
sh::ValueFn hotspotField(nd::Index hotRows, double threshold,
                         std::uint64_t salt) {
  return [=](const nd::Coord& c) {
    const double u = coordHash(c, salt);
    if (c[0] < hotRows) return threshold + 1.0 + u;  // all survive
    return threshold - 1.0 - u;                      // none survive
  };
}

/// Bitwise output equality: keys, kinds, and every double exactly
/// (Value::operator== is defaulted, i.e. exact double comparison).
void ExpectBitIdentical(const std::vector<mr::KeyValue>& a,
                        const std::vector<mr::KeyValue>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].key, b[i].key) << "record " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "record " << i;
  }
}

/// Shuffle regime rotation shared by the differential suites.
struct Regime {
  bool spill = false;
  bool compress = false;
  std::uint64_t budget = 0;
  mr::ShuffleTransportKind transport = mr::ShuffleTransportKind::kInProcess;
};

Regime regimeFor(int seed, const std::string& dirTag) {
  Regime r;
  switch (seed % 4) {
    case 0:  // in-memory
      r.transport = (seed / 4) % 2 == 0 ? mr::ShuffleTransportKind::kInProcess
                                        : mr::ShuffleTransportKind::kSocket;
      break;
    case 1:  // eager spill: all three transports are legal
      r.spill = true;
      switch ((seed / 4) % 3) {
        case 0: r.transport = mr::ShuffleTransportKind::kInProcess; break;
        case 1: r.transport = mr::ShuffleTransportKind::kSocket; break;
        default: r.transport = mr::ShuffleTransportKind::kFileServed; break;
      }
      break;
    case 2:  // hybrid memory budget
      r.spill = true;
      r.budget = 1 << 20;
      r.transport = (seed / 4) % 2 == 0 ? mr::ShuffleTransportKind::kInProcess
                                        : mr::ShuffleTransportKind::kSocket;
      break;
    default:  // eager spill, compressed framing
      r.spill = true;
      r.compress = true;
      r.transport = (seed / 4) % 2 == 0 ? mr::ShuffleTransportKind::kSocket
                                        : mr::ShuffleTransportKind::kFileServed;
      break;
  }
  (void)dirTag;
  return r;
}

void applyRegime(PlanOptions& opts, const Regime& r, const std::string& dir) {
  if (r.spill) opts.spillDirectory = dir;
  opts.compressSpill = r.compress;
  opts.memoryBudgetBytes = r.budget;
  opts.transport = r.transport;
}

std::string regimeName(const Regime& r) {
  std::string s = r.spill ? (r.budget ? "hybrid" : "spill") : "mem";
  if (r.compress) s += "+z";
  s += std::string("/") + mr::shuffleTransportName(r.transport);
  return s;
}

// ---- PartitionPlus::refine unit tests ----

std::shared_ptr<const sh::ExtractionMap> makeExtraction(
    const nd::Coord& input, const nd::Coord& eshape) {
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = eshape;
  return std::make_shared<const sh::ExtractionMap>(q, input);
}

TEST(RefineBoundaries, WrongWeightCountThrows) {
  PartitionPlus pp(makeExtraction(nd::Coord{24, 8}, nd::Coord{2, 2}), 4, 4);
  std::vector<double> w(static_cast<std::size_t>(pp.granuleCount()) + 1, 1.0);
  EXPECT_THROW(pp.refine(w), std::invalid_argument);
  std::vector<double> bad(static_cast<std::size_t>(pp.granuleCount()), 1.0);
  bad[0] = -1.0;
  EXPECT_THROW(pp.refine(bad), std::invalid_argument);
}

TEST(RefineBoundaries, ZeroWeightsKeepUniformDeal) {
  PartitionPlus pp(makeExtraction(nd::Coord{24, 8}, nd::Coord{2, 2}), 4, 4);
  std::vector<double> w(static_cast<std::size_t>(pp.granuleCount()), 0.0);
  EXPECT_FALSE(pp.refine(w));
  EXPECT_FALSE(pp.refined());
  EXPECT_EQ(pp.refinement(), nullptr);
}

TEST(RefineBoundaries, UniformWeightsOnDivisibleGridAreANoOp) {
  // 12x8 grid of 2x2 cells = 24 instances... choose geometry where the
  // granule count divides the reducer count evenly, so equal weights
  // reproduce the uniform deal exactly and refine() must refuse.
  PartitionPlus pp(makeExtraction(nd::Coord{32, 8}, nd::Coord{2, 2}), 4, 4);
  ASSERT_EQ(pp.granuleCount() % 4, 0);
  std::vector<double> w(static_cast<std::size_t>(pp.granuleCount()), 3.5);
  EXPECT_FALSE(pp.refine(w));
  EXPECT_FALSE(pp.refined());
}

TEST(RefineBoundaries, ConcentratedLoadRespectsTheBound) {
  PartitionPlus pp(makeExtraction(nd::Coord{64, 8}, nd::Coord{2, 2}), 8, 4);
  const auto m = static_cast<std::size_t>(pp.granuleCount());
  ASSERT_GE(m, 16u);
  // 90% of the load in the first one-eighth of the granules.
  std::vector<double> w(m, 1.0);
  for (std::size_t g = 0; g < m / 8; ++g) w[g] = 9.0 * 8.0 * 7.0 / 1.0;
  ASSERT_TRUE(pp.refine(w));
  ASSERT_TRUE(pp.refined());
  const RefinedPartition& rp = *pp.refinement();

  // Boundary vector structure.
  ASSERT_EQ(rp.granuleStart.size(), 9u);
  EXPECT_EQ(rp.granuleStart.front(), 0);
  EXPECT_EQ(rp.granuleStart.back(), pp.granuleCount());
  for (std::size_t k = 1; k < rp.granuleStart.size(); ++k) {
    EXPECT_LE(rp.granuleStart[k - 1], rp.granuleStart[k]);
  }

  // The refinement guarantee: one granule of quantization slack.
  EXPECT_LE(rp.maxLoadAfter,
            rp.totalWeight / 8.0 + rp.maxGranuleWeight + 1e-9);
  EXPECT_LT(rp.maxLoadAfter, rp.maxLoadBefore);
  EXPECT_GT(rp.splitKeyblocks, 0u);

  // Routing agrees with the boundary vector.
  for (nd::Index g = 0; g < pp.granuleCount(); ++g) {
    std::uint32_t kb = pp.keyblockOfGranule(g);
    EXPECT_LE(rp.granuleStart[kb], g);
    EXPECT_LT(g, rp.granuleStart[kb + 1]);
  }
}

// ---- the headline differential ----

struct DiffConfig {
  nd::Coord input;
  sh::StructuralQuery query;
  std::uint32_t reducers = 4;
  std::size_t splitCount = 6;
  bool join = false;
  nd::Coord rightInput;  ///< join only
};

DiffConfig makeDiffConfig(std::mt19937_64& rng) {
  DiffConfig cfg;
  auto pick = [&rng](nd::Index lo, nd::Index hi) {
    return lo + static_cast<nd::Index>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  const nd::Index g0 = pick(8, 16);
  const nd::Index g1 = pick(4, 9);
  cfg.query.variable = "left";
  cfg.query.extractionShape = nd::Coord{pick(2, 3), pick(2, 3)};
  switch (rng() % 4) {
    case 0:
      cfg.query.op = sh::OperatorKind::kFilter;
      cfg.query.filterThreshold = 5.0;
      break;
    case 1: cfg.query.op = sh::OperatorKind::kMedian; break;
    case 2: cfg.query.op = sh::OperatorKind::kMean; break;
    default: {
      cfg.query.op = sh::OperatorKind::kJoin;
      cfg.join = true;
      sh::JoinSpec js;
      js.variable = "right";
      js.extractionShape = nd::Coord{pick(2, 3), pick(2, 3)};
      js.inputShape = nd::Coord{g0 * js.extractionShape[0],
                                g1 * js.extractionShape[1]};
      js.leftThreshold = 5.0;  // hotspot survivors drive join load skew
      cfg.rightInput = js.inputShape;
      cfg.query.join = js;
      break;
    }
  }
  // Exact-multiple inputs: both sides share the {g0, g1} instance grid.
  cfg.input = nd::Coord{g0 * cfg.query.extractionShape[0],
                        g1 * cfg.query.extractionShape[1]};
  cfg.reducers = static_cast<std::uint32_t>(3 + rng() % 6);
  cfg.splitCount = 4 + rng() % 7;
  return cfg;
}

class SkewAdaptDifferential : public ::testing::TestWithParam<int> {};

TEST_P(SkewAdaptDifferential, RefinedPlanIsBitIdenticalToUnrefined) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 1442695041 + 11);
  DiffConfig cfg = makeDiffConfig(rng);
  const Regime regime = regimeFor(seed, "diff");
  const std::string dirBase =
      (std::filesystem::temp_directory_path() /
       ("sidr_skewdiff_" + std::to_string(seed)))
          .string();
  SCOPED_TRACE("input " + cfg.input.toString() + " " +
               sh::describe(cfg.query) + " r=" + std::to_string(cfg.reducers) +
               " " + regimeName(regime));

  sh::ValueFn leftFn = hotspotField(cfg.input[0] / 4, 5.0,
                                    static_cast<std::uint64_t>(seed) + 1);
  sh::ValueFn rightFn = [seed](const nd::Coord& c) {
    return 1.0 + coordHash(c, static_cast<std::uint64_t>(seed) + 77);
  };

  QueryPlanner planner(cfg.query, cfg.input);
  auto runArm = [&](bool adapt, const std::string& dir,
                    mr::SkewAdaptStats* statsOut,
                    std::vector<std::vector<std::uint32_t>>* depsOut) {
    PlanOptions opts;
    opts.system = SystemMode::kSidr;
    opts.numReducers = cfg.reducers;
    opts.desiredSplitCount = cfg.splitCount;
    opts.numThreads = 3;
    opts.recordTrace = true;
    opts.skewAdapt = adapt;
    opts.skewSampleFraction = 1.0;  // exhaustive estimate: always refines
    opts.skewSampleMaxRecords = 1 << 17;
    applyRegime(opts, regime, dir);
    QueryPlan plan = cfg.join ? planner.planJoin(leftFn, rightFn, opts)
                              : planner.plan(leftFn, opts);
    if (statsOut != nullptr) *statsOut = plan.spec.skewStats;
    if (depsOut != nullptr) *depsOut = plan.spec.reduceDeps;
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    std::filesystem::remove_all(dir);
    return result;
  };

  mr::SkewAdaptStats stats;
  std::vector<std::vector<std::uint32_t>> plainDeps;
  std::vector<std::vector<std::uint32_t>> refinedDeps;
  mr::JobResult plain = runArm(false, dirBase + "_a", nullptr, &plainDeps);
  mr::JobResult adapted = runArm(true, dirBase + "_b", &stats, &refinedDeps);

  EXPECT_EQ(plain.annotationViolations, 0u);
  EXPECT_EQ(adapted.annotationViolations, 0u);
  testsupport::CheckJobTrace(plain);
  testsupport::CheckJobTrace(adapted);
  testsupport::ExpectCommitGating(plain.trace, plainDeps);
  testsupport::ExpectCommitGating(adapted.trace, refinedDeps);
  testsupport::ExpectFetchTalliesMatchCommits(adapted.trace, refinedDeps);

  // The point of the suite: refinement may move keys between keyblocks
  // but can never change one output byte.
  ExpectBitIdentical(adapted.collectAll(), plain.collectAll());

  // The trace mirrors the planner's stats.
  EXPECT_EQ(adapted.trace.counterValue("skew.refined"),
            stats.refined ? 1u : 0u);
  EXPECT_EQ(adapted.trace.counterValue("skew.sampledRecords"),
            stats.sampledRecords);
  EXPECT_GT(stats.sampledRecords, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewAdaptDifferential, ::testing::Range(0, 16));

// ---- the join against a frozen oracle ----
//
// The oracle below is written against FLOOR-DIVISION geometry — cell of
// instance (i,j) is [i*e0,(i+1)*e0) x [j*e1,(j+1)*e1) — with the join
// semantics frozen by DESIGN.md §18: per instance, ascending surviving
// left values x ascending surviving right values, nested-loop products
// a*b (right side fastest), empty side => empty list (record still
// emitted), represents = both cells' pre-filter volumes.

std::vector<mr::KeyValue> frozenJoinOracle(
    const nd::Coord& grid, const nd::Coord& le, const nd::Coord& re,
    const sh::ValueFn& leftFn, const sh::ValueFn& rightFn, double lt,
    double rt) {
  std::vector<mr::KeyValue> out;
  for (nd::Index gi = 0; gi < grid[0]; ++gi) {
    for (nd::Index gj = 0; gj < grid[1]; ++gj) {
      auto side = [&](const nd::Coord& e, const sh::ValueFn& fn,
                      double keep) {
        std::vector<double> vs;
        for (nd::Index a = gi * e[0]; a < (gi + 1) * e[0]; ++a) {
          for (nd::Index b = gj * e[1]; b < (gj + 1) * e[1]; ++b) {
            double v = fn(nd::Coord{a, b});
            if (v > keep) vs.push_back(v);
          }
        }
        std::sort(vs.begin(), vs.end());
        return vs;
      };
      std::vector<double> ls = side(le, leftFn, lt);
      std::vector<double> rs = side(re, rightFn, rt);
      std::vector<double> products;
      for (double a : ls) {
        for (double b : rs) products.push_back(a * b);
      }
      mr::KeyValue kv;
      kv.key = nd::Coord{gi, gj};
      kv.value = mr::Value::list(std::move(products));
      kv.represents = static_cast<std::uint64_t>(le.volume() + re.volume());
      out.push_back(std::move(kv));
    }
  }
  return out;
}

class JoinMatchesFrozenOracle : public ::testing::TestWithParam<int> {};

TEST_P(JoinMatchesFrozenOracle, EngineAndLibraryOracleMatch) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 104729 + 3);
  auto pick = [&rng](nd::Index lo, nd::Index hi) {
    return lo + static_cast<nd::Index>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  const nd::Coord grid{pick(3, 9), pick(3, 8)};
  const nd::Coord le{pick(1, 3), pick(1, 3)};
  const nd::Coord re{pick(1, 3), pick(1, 3)};

  sh::StructuralQuery q;
  q.variable = "left";
  q.op = sh::OperatorKind::kJoin;
  q.extractionShape = le;
  sh::JoinSpec js;
  js.variable = "right";
  js.extractionShape = re;
  js.inputShape = nd::Coord{grid[0] * re[0], grid[1] * re[1]};
  if (seed % 2 == 0) js.leftThreshold = 5.0;
  if (seed % 3 == 0) js.rightThreshold = 1.5;
  q.join = js;
  const nd::Coord input{grid[0] * le[0], grid[1] * le[1]};

  sh::ValueFn leftFn = hotspotField(std::max<nd::Index>(1, input[0] / 3), 5.0,
                                    static_cast<std::uint64_t>(seed) + 9);
  sh::ValueFn rightFn = [seed](const nd::Coord& c) {
    return 1.0 + coordHash(c, static_cast<std::uint64_t>(seed) + 31);
  };

  std::vector<mr::KeyValue> frozen = frozenJoinOracle(
      grid, le, re, leftFn, rightFn, js.leftThreshold, js.rightThreshold);

  // The library's serial oracle must implement the same frozen
  // semantics...
  sh::ExtractionMap leftEx(q, input);
  sh::ExtractionMap rightEx(sh::joinRightQuery(q), js.inputShape);
  std::vector<mr::KeyValue> lib =
      sh::runJoinOracle(q, leftEx, rightEx, leftFn, rightFn);
  ASSERT_EQ(lib.size(), frozen.size());
  for (std::size_t i = 0; i < lib.size(); ++i) {
    ASSERT_EQ(lib[i].key, frozen[i].key);
    EXPECT_EQ(lib[i].represents, frozen[i].represents) << "record " << i;
  }
  ExpectBitIdentical(lib, frozen);

  // ...and so must the engine, under both SIDR and the barrier system,
  // with and without skew adaptation.
  QueryPlanner planner(q, input);
  for (SystemMode system : {SystemMode::kSidr, SystemMode::kSciHadoop}) {
    for (bool adapt : {false, true}) {
      if (adapt && system != SystemMode::kSidr) continue;
      PlanOptions opts;
      opts.system = system;
      opts.numReducers = static_cast<std::uint32_t>(2 + seed % 5);
      opts.desiredSplitCount = 5;
      opts.numThreads = 3;
      opts.recordTrace = true;
      opts.skewAdapt = adapt;
      opts.skewSampleFraction = 1.0;
      QueryPlan plan = planner.planJoin(leftFn, rightFn, opts);
      SCOPED_TRACE(systemModeName(system) + (adapt ? "+adapt" : ""));
      mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
      EXPECT_EQ(result.annotationViolations, 0u);
      testsupport::CheckJobTrace(result);
      ExpectBitIdentical(result.collectAll(), frozen);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, JoinMatchesFrozenOracle,
                         ::testing::Range(0, 16));

// ---- refined dependency sets are EXACT ----

class RefinedDependenciesExact : public ::testing::TestWithParam<int> {};

TEST_P(RefinedDependenciesExact, DeclaredSetsEqualBruteForceRealizedSets) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 40503 + 7);
  auto pick = [&rng](nd::Index lo, nd::Index hi) {
    return lo + static_cast<nd::Index>(
                    rng() % static_cast<std::uint64_t>(hi - lo + 1));
  };
  // Non-rectangular keyspaces: prime-ish grid extents so keyblock
  // instance ranges wrap rows and refined boundaries land mid-row.
  const bool join = seed % 2 == 1;
  const nd::Coord grid{pick(5, 11), pick(5, 13)};
  const nd::Coord le{pick(1, 3), pick(1, 3)};

  sh::StructuralQuery q;
  q.variable = "left";
  q.extractionShape = le;
  nd::Coord rightInput;
  if (join) {
    q.op = sh::OperatorKind::kJoin;
    sh::JoinSpec js;
    js.variable = "right";
    js.extractionShape = nd::Coord{pick(1, 3), pick(1, 3)};
    js.inputShape = nd::Coord{grid[0] * js.extractionShape[0],
                              grid[1] * js.extractionShape[1]};
    js.leftThreshold = 5.0;
    rightInput = js.inputShape;
    q.join = js;
  } else {
    q.op = sh::OperatorKind::kFilter;
    q.filterThreshold = 5.0;
  }
  const nd::Coord input{grid[0] * le[0], grid[1] * le[1]};

  sh::ValueFn leftFn = hotspotField(std::max<nd::Index>(1, input[0] / 4), 5.0,
                                    static_cast<std::uint64_t>(seed) + 40);
  sh::ValueFn rightFn = [seed](const nd::Coord& c) {
    return 1.0 + coordHash(c, static_cast<std::uint64_t>(seed) + 41);
  };

  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(3 + seed % 6);
  opts.desiredSplitCount = static_cast<std::size_t>(4 + seed % 6);
  opts.skewAdapt = true;
  opts.skewSampleFraction = 1.0;
  QueryPlanner planner(q, input);
  QueryPlan plan = join ? planner.planJoin(leftFn, rightFn, opts)
                        : planner.plan(leftFn, opts);
  SCOPED_TRACE((join ? "join " : "filter ") + input.toString() + " r=" +
               std::to_string(opts.numReducers) +
               (plan.spec.skewStats.refined ? " refined" : " uniform"));

  auto rightEx = join ? std::make_shared<const sh::ExtractionMap>(
                            sh::joinRightQuery(q), rightInput)
                      : nullptr;

  // Brute force: walk EVERY input coordinate of every split, map it
  // through its side's extraction, route the key through the real
  // partitioner, and record (keyblock -> split) plus per-keyblock
  // consumed counts.
  std::vector<std::set<std::uint32_t>> realized(opts.numReducers);
  std::vector<std::uint64_t> consumed(opts.numReducers, 0);
  for (const mr::InputSplit& split : plan.spec.splits) {
    const sh::ExtractionMap& ex =
        split.input == 0 ? *plan.extraction : *rightEx;
    for (const nd::Region& region : split.regions) {
      for (nd::RegionCursor c(region); c.valid(); c.next()) {
        auto key = ex.keyFor(c.coord());
        if (!key) continue;
        std::uint32_t kb =
            plan.spec.partitioner->partition(*key, opts.numReducers);
        realized[kb].insert(split.id);
        ++consumed[kb];
      }
    }
  }

  DependencyCalculator calc =
      join ? DependencyCalculator(plan.partitionPlus, rightEx)
           : DependencyCalculator(plan.partitionPlus);
  for (std::uint32_t kb = 0; kb < opts.numReducers; ++kb) {
    std::vector<std::uint32_t> want(realized[kb].begin(), realized[kb].end());
    EXPECT_EQ(plan.spec.reduceDeps[kb], want) << "keyblock " << kb;
    EXPECT_EQ(plan.dependencies.expectedRepresents[kb], consumed[kb])
        << "keyblock " << kb;
    // Both recompute paths agree with the stored sets.
    EXPECT_EQ(calc.recomputeSplitsFor(kb, plan.spec.splits), want)
        << "keyblock " << kb;
    EXPECT_EQ(
        calc.recomputeSplitsFor(kb, plan.spec.splits, plan.dependencies),
        want)
        << "keyblock " << kb;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinedDependenciesExact,
                         ::testing::Range(0, 12));

// ---- service submission and plan validation ----

TEST(JoinThroughService, AdaptedJoinRunsAlongsideAFilterJob) {
  sh::StructuralQuery q;
  q.variable = "left";
  q.op = sh::OperatorKind::kJoin;
  q.extractionShape = nd::Coord{2, 2};
  sh::JoinSpec js;
  js.variable = "right";
  js.extractionShape = nd::Coord{3, 2};
  js.inputShape = nd::Coord{36, 16};
  js.leftThreshold = 5.0;
  q.join = js;
  const nd::Coord input{24, 16};

  sh::ValueFn leftFn = hotspotField(6, 5.0, 1234);
  sh::ValueFn rightFn = [](const nd::Coord& c) {
    return 1.0 + coordHash(c, 4321);
  };

  PlanOptions opts;
  opts.system = SystemMode::kSidr;
  opts.numReducers = 5;
  opts.skewAdapt = true;
  opts.skewSampleFraction = 1.0;
  opts.recordTrace = true;
  QueryPlanner planner(q, input);
  QueryPlan joinPlan = planner.planJoin(leftFn, rightFn, opts);

  sh::StructuralQuery fq;
  fq.variable = "v";
  fq.op = sh::OperatorKind::kFilter;
  fq.filterThreshold = 5.0;
  fq.extractionShape = nd::Coord{2, 2};
  QueryPlanner filterPlanner(fq, input);
  QueryPlan filterPlan = filterPlanner.plan(leftFn, opts);

  mr::EngineService service;
  mr::JobHandle j1 = service.submit(std::move(joinPlan.spec));
  mr::JobHandle j2 = service.submit(std::move(filterPlan.spec));
  const mr::JobResult& joinResult = j1.wait();
  const mr::JobResult& filterResult = j2.wait();

  EXPECT_EQ(joinResult.annotationViolations, 0u);
  EXPECT_EQ(filterResult.annotationViolations, 0u);
  sh::ExtractionMap leftEx(q, input);
  sh::ExtractionMap rightEx(sh::joinRightQuery(q), js.inputShape);
  ExpectBitIdentical(joinResult.collectAll(),
                     sh::runJoinOracle(q, leftEx, rightEx, leftFn, rightFn));
  ExpectBitIdentical(filterResult.collectAll(),
                     sh::runSerialOracle(fq, leftEx, leftFn));
}

TEST(PlanValidation, JoinMisuseThrows) {
  sh::StructuralQuery q;
  q.variable = "left";
  q.op = sh::OperatorKind::kJoin;
  q.extractionShape = nd::Coord{2, 2};
  sh::JoinSpec js;
  js.variable = "right";
  js.extractionShape = nd::Coord{2, 2};
  js.inputShape = nd::Coord{16, 16};
  q.join = js;
  sh::ValueFn fn = [](const nd::Coord&) { return 1.0; };
  PlanOptions opts;

  // plan() rejects two-input queries.
  EXPECT_THROW(QueryPlanner(q, nd::Coord{16, 16}).plan(fn, opts),
               std::invalid_argument);
  // planJoin() rejects single-input queries.
  sh::StructuralQuery mean;
  mean.variable = "v";
  mean.op = sh::OperatorKind::kMean;
  mean.extractionShape = nd::Coord{2, 2};
  EXPECT_THROW(QueryPlanner(mean, nd::Coord{16, 16}).planJoin(fn, fn, opts),
               std::invalid_argument);
  // Grid mismatch: left grid 8x8, right grid 4x8.
  sh::StructuralQuery bad = q;
  bad.join->inputShape = nd::Coord{8, 16};
  EXPECT_THROW(QueryPlanner(bad, nd::Coord{16, 16}).planJoin(fn, fn, opts),
               std::invalid_argument);
  // Joins key on the shared grid; preserve-coords is meaningless.
  sh::StructuralQuery pc = q;
  pc.keyMode = sh::KeyMode::kPreserveCoords;
  EXPECT_THROW(QueryPlanner(pc, nd::Coord{16, 16}).planJoin(fn, fn, opts),
               std::invalid_argument);
  // The serial single-input oracle rejects joins.
  sh::ExtractionMap ex(mean, nd::Coord{16, 16});
  EXPECT_THROW(sh::runSerialOracle(q, ex, fn), std::invalid_argument);
}

TEST(PlanValidation, EngineRejectsInconsistentTwoInputSpecs) {
  sh::StructuralQuery q;
  q.variable = "left";
  q.op = sh::OperatorKind::kJoin;
  q.extractionShape = nd::Coord{2, 2};
  sh::JoinSpec js;
  js.variable = "right";
  js.extractionShape = nd::Coord{2, 2};
  js.inputShape = nd::Coord{16, 8};
  q.join = js;
  sh::ValueFn fn = [](const nd::Coord& c) { return coordHash(c, 5); };
  QueryPlanner planner(q, nd::Coord{16, 8});
  PlanOptions opts;

  {
    // Secondary factories must be set together.
    QueryPlan plan = planner.planJoin(fn, fn, opts);
    plan.spec.secondaryReaderFactory = nullptr;
    EXPECT_THROW(mr::Engine(std::move(plan.spec)).run(),
                 std::invalid_argument);
  }
  {
    // Splits referencing input 1 need the factories.
    QueryPlan plan = planner.planJoin(fn, fn, opts);
    plan.spec.secondaryReaderFactory = nullptr;
    plan.spec.secondaryMapperFactory = nullptr;
    EXPECT_THROW(mr::Engine(std::move(plan.spec)).run(),
                 std::invalid_argument);
  }
  {
    // Input ids beyond 1 are rejected.
    QueryPlan plan = planner.planJoin(fn, fn, opts);
    plan.spec.splits.back().input = 2;
    EXPECT_THROW(mr::Engine(std::move(plan.spec)).run(),
                 std::invalid_argument);
  }
  {
    // Secondary factories without any input-1 split are rejected too.
    sh::StructuralQuery mq;
    mq.variable = "v";
    mq.op = sh::OperatorKind::kMean;
    mq.extractionShape = nd::Coord{2, 2};
    QueryPlan plan = QueryPlanner(mq, nd::Coord{16, 8}).plan(fn, opts);
    QueryPlan donor = planner.planJoin(fn, fn, opts);
    plan.spec.secondaryReaderFactory = donor.spec.secondaryReaderFactory;
    plan.spec.secondaryMapperFactory = donor.spec.secondaryMapperFactory;
    EXPECT_THROW(mr::Engine(std::move(plan.spec)).run(),
                 std::invalid_argument);
  }
}

// ---- seed-matrix hammer (ctest label: slow) ----

class SkewJoinHammer : public ::testing::TestWithParam<int> {};

TEST_P(SkewJoinHammer, FullRegimeMatrixStaysBitIdentical) {
  const int seed = GetParam();
  for (int regimeSeed = 0; regimeSeed < 8; ++regimeSeed) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 31337 +
                        static_cast<std::uint64_t>(regimeSeed));
    DiffConfig cfg = makeDiffConfig(rng);
    const Regime regime = regimeFor(regimeSeed, "hammer");
    const std::string dirBase =
        (std::filesystem::temp_directory_path() /
         ("sidr_skewhammer_" + std::to_string(seed) + "_" +
          std::to_string(regimeSeed)))
            .string();
    SCOPED_TRACE("regime " + regimeName(regime) + " " +
                 sh::describe(cfg.query));

    sh::ValueFn leftFn =
        hotspotField(cfg.input[0] / 4, 5.0,
                     static_cast<std::uint64_t>(seed * 100 + regimeSeed));
    sh::ValueFn rightFn = [seed](const nd::Coord& c) {
      return 1.0 + coordHash(c, static_cast<std::uint64_t>(seed) + 1000);
    };

    QueryPlanner planner(cfg.query, cfg.input);
    auto runArm = [&](bool adapt, const std::string& dir) {
      PlanOptions opts;
      opts.system = SystemMode::kSidr;
      opts.numReducers = cfg.reducers;
      opts.desiredSplitCount = cfg.splitCount;
      opts.numThreads = 4;
      opts.skewAdapt = adapt;
      opts.skewSampleFraction = 1.0;
      applyRegime(opts, regime, dir);
      QueryPlan plan = cfg.join ? planner.planJoin(leftFn, rightFn, opts)
                                : planner.plan(leftFn, opts);
      mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
      std::filesystem::remove_all(dir);
      return result;
    };
    mr::JobResult plain = runArm(false, dirBase + "_a");
    mr::JobResult adapted = runArm(true, dirBase + "_b");
    EXPECT_EQ(plain.annotationViolations, 0u);
    EXPECT_EQ(adapted.annotationViolations, 0u);
    ExpectBitIdentical(adapted.collectAll(), plain.collectAll());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SkewJoinHammer, ::testing::Range(0, 4));

}  // namespace
}  // namespace sidr::core
