#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "sidr/partition_plus.hpp"

namespace sidr::core {
namespace {

std::shared_ptr<const sh::ExtractionMap> makeExtraction(
    const nd::Coord& input, const nd::Coord& eshape,
    sh::KeyMode keyMode = sh::KeyMode::kRenumber) {
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = eshape;
  q.keyMode = keyMode;
  return std::make_shared<const sh::ExtractionMap>(q, input);
}

TEST(LinearRangeToRegions, WholeSpaceIsOneBox) {
  nd::Coord shape{4, 5, 6};
  auto boxes = linearRangeToRegions(0, shape.volume(), shape);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0], nd::Region::wholeSpace(shape));
}

TEST(LinearRangeToRegions, EmptyRange) {
  EXPECT_TRUE(linearRangeToRegions(5, 5, nd::Coord{10}).empty());
  EXPECT_TRUE(linearRangeToRegions(7, 3, nd::Coord{10}).empty());
}

TEST(LinearRangeToRegions, AlignedSlab) {
  // Rows 2..5 of a {10, 6} space: one box.
  nd::Coord shape{10, 6};
  auto boxes = linearRangeToRegions(12, 30, shape);
  ASSERT_EQ(boxes.size(), 1u);
  EXPECT_EQ(boxes[0].corner(), (nd::Coord{2, 0}));
  EXPECT_EQ(boxes[0].shape(), (nd::Coord{3, 6}));
}

TEST(LinearRangeToRegions, UnalignedRangeDecomposes) {
  // [3, 15) of a {4, 6} space: partial row, full row, partial row.
  nd::Coord shape{4, 6};
  auto boxes = linearRangeToRegions(3, 15, shape);
  std::int64_t total = 0;
  for (const auto& b : boxes) total += b.volume();
  EXPECT_EQ(total, 12);
  EXPECT_LE(boxes.size(), 4u);  // <= 2 * rank
}

class LinearRangeSweep
    : public ::testing::TestWithParam<std::tuple<nd::Coord, int>> {};

TEST_P(LinearRangeSweep, ExactCoverNoOverlap) {
  auto [shape, seed] = GetParam();
  nd::Index n = shape.volume();
  // Probe a spread of ranges derived from the seed.
  for (int k = 0; k < 20; ++k) {
    nd::Index a = (seed * 7 + k * 13) % (n + 1);
    nd::Index b = (seed * 11 + k * 29) % (n + 1);
    if (a > b) std::swap(a, b);
    auto boxes = linearRangeToRegions(a, b, shape);
    std::vector<bool> covered(static_cast<std::size_t>(n), false);
    for (const auto& box : boxes) {
      EXPECT_LE(boxes.size(), 2 * shape.rank() + 1);
      for (nd::RegionCursor cur(box); cur.valid(); cur.next()) {
        nd::Index li = nd::linearize(cur.coord(), shape);
        EXPECT_GE(li, a);
        EXPECT_LT(li, b);
        EXPECT_FALSE(covered[static_cast<std::size_t>(li)]) << "overlap";
        covered[static_cast<std::size_t>(li)] = true;
      }
    }
    for (nd::Index i = a; i < b; ++i) {
      EXPECT_TRUE(covered[static_cast<std::size_t>(i)]) << "gap at " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LinearRangeSweep,
    ::testing::Combine(::testing::Values(nd::Coord{24}, nd::Coord{6, 5},
                                         nd::Coord{3, 4, 5},
                                         nd::Coord{2, 3, 2, 3}),
                       ::testing::Values(1, 2, 3)));

TEST(PartitionPlus, GranuleRespectsSkewBound) {
  auto ex = makeExtraction(nd::Coord{365, 250, 200}, nd::Coord{7, 5, 1});
  PartitionPlus pp(ex, 22, /*skewBound=*/10000);
  EXPECT_LE(pp.granuleSize(), 10000);
  EXPECT_GE(pp.granuleSize(), 1);
  // Granule shape is a prefix slab: 10000 / 200 = 50 full lat rows.
  EXPECT_EQ(pp.granuleShape(), (nd::Coord{1, 50, 200}));
}

TEST(PartitionPlus, KeyblocksPartitionTheKeyspace) {
  auto ex = makeExtraction(nd::Coord{56, 20}, nd::Coord{7, 5});
  PartitionPlus pp(ex, 5, 3);
  // Every intermediate key routes to exactly one keyblock, and
  // instanceRange() agrees with partition().
  std::vector<std::int64_t> counts(5, 0);
  for (nd::RegionCursor g(nd::Region::wholeSpace(ex->instanceGridShape()));
       g.valid(); g.next()) {
    nd::Coord key = ex->keyForInstance(g.coord());
    std::uint32_t kb = pp.partition(key, 5);
    ASSERT_LT(kb, 5u);
    ++counts[kb];
    auto [a, b] = pp.instanceRange(kb);
    nd::Index li = nd::linearize(g.coord(), ex->instanceGridShape());
    EXPECT_GE(li, a);
    EXPECT_LT(li, b);
  }
  std::int64_t total = 0;
  for (std::uint32_t kb = 0; kb < 5; ++kb) {
    EXPECT_EQ(counts[kb], pp.keyblockSize(kb));
    total += counts[kb];
  }
  EXPECT_EQ(total, ex->instanceCount());
}

TEST(PartitionPlus, SkewWithinOneGranule) {
  auto ex = makeExtraction(nd::Coord{365, 250, 200}, nd::Coord{7, 5, 1});
  for (std::uint32_t r : {3u, 22u, 66u, 176u}) {
    PartitionPlus pp(ex, r, 997);  // prime bound: maximally unaligned
    EXPECT_LE(pp.realizedSkew(), pp.granuleSize())
        << "r=" << r << " skew must be bounded by one granule";
  }
}

TEST(PartitionPlus, KeyblocksAreContiguous) {
  auto ex = makeExtraction(nd::Coord{56, 20}, nd::Coord{7, 5});
  PartitionPlus pp(ex, 3, 4);
  nd::Index expectedStart = 0;
  for (std::uint32_t kb = 0; kb < 3; ++kb) {
    auto [a, b] = pp.instanceRange(kb);
    EXPECT_EQ(a, expectedStart) << "keyblocks must tile linearly in order";
    expectedStart = b;
  }
  EXPECT_EQ(expectedStart, ex->instanceCount());
}

TEST(PartitionPlus, KeyblockRegionsCoverExactly) {
  auto ex = makeExtraction(nd::Coord{30, 14}, nd::Coord{3, 2});
  PartitionPlus pp(ex, 4, 5);
  std::vector<bool> covered(
      static_cast<std::size_t>(ex->instanceCount()), false);
  for (std::uint32_t kb = 0; kb < 4; ++kb) {
    for (const nd::Region& box : pp.keyblockRegions(kb)) {
      for (nd::RegionCursor cur(box); cur.valid(); cur.next()) {
        EXPECT_EQ(pp.keyblockOfInstance(cur.coord()), kb);
        nd::Index li = nd::linearize(cur.coord(), ex->instanceGridShape());
        EXPECT_FALSE(covered[static_cast<std::size_t>(li)]);
        covered[static_cast<std::size_t>(li)] = true;
      }
    }
  }
  for (bool c : covered) EXPECT_TRUE(c);
}

TEST(PartitionPlus, SystemChosenBound) {
  auto ex = makeExtraction(nd::Coord{365, 250, 200}, nd::Coord{7, 5, 1});
  PartitionPlus pp(ex, 22);  // skewBound = 0: system chooses
  EXPECT_GE(pp.granuleSize(), 1);
  // Skew must be well under a keyblock's share.
  nd::Index share = ex->instanceCount() / 22;
  EXPECT_LE(pp.realizedSkew(), share / 8);
}

TEST(PartitionPlus, MoreReducersThanKeysYieldsEmptyTailBlocks) {
  auto ex = makeExtraction(nd::Coord{6, 4}, nd::Coord{3, 2});
  // 4 instances, 7 reducers.
  PartitionPlus pp(ex, 7, 1);
  std::int64_t nonEmpty = 0;
  std::int64_t total = 0;
  for (std::uint32_t kb = 0; kb < 7; ++kb) {
    nd::Index s = pp.keyblockSize(kb);
    total += s;
    if (s > 0) ++nonEmpty;
  }
  EXPECT_EQ(total, 4);
  EXPECT_EQ(nonEmpty, 4);
}

TEST(PartitionPlus, WrongReducerCountAtRouteTimeThrows) {
  auto ex = makeExtraction(nd::Coord{14, 10}, nd::Coord{7, 5});
  PartitionPlus pp(ex, 2, 1);
  EXPECT_THROW(pp.partition(nd::Coord{0, 0}, 3), std::logic_error);
  EXPECT_THROW(pp.instanceRange(2), std::out_of_range);
  EXPECT_THROW(PartitionPlus(ex, 0, 1), std::invalid_argument);
}

TEST(PartitionPlus, PreserveCoordsRouting) {
  auto ex = makeExtraction(nd::Coord{16, 16}, nd::Coord{1, 1},
                           sh::KeyMode::kRenumber);
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{1, 1};
  q.stride = nd::Coord{2, 2};
  q.keyMode = sh::KeyMode::kPreserveCoords;
  auto exp = std::make_shared<const sh::ExtractionMap>(q, nd::Coord{16, 16});
  PartitionPlus pp(exp, 4, 8);
  // Even-coordinate (preserved) keys still spread over ALL keyblocks.
  std::vector<std::int64_t> counts(4, 0);
  for (nd::RegionCursor g(nd::Region::wholeSpace(exp->instanceGridShape()));
       g.valid(); g.next()) {
    ++counts[pp.partition(exp->keyForInstance(g.coord()), 4)];
  }
  for (std::int64_t c : counts) EXPECT_EQ(c, 16);  // 64 instances / 4
}

// Parameterized invariants across (shape, reducers, bound).
struct PPCase {
  nd::Coord input;
  nd::Coord eshape;
  std::uint32_t reducers;
  nd::Index bound;
};

class PartitionPlusSweep : public ::testing::TestWithParam<PPCase> {};

TEST_P(PartitionPlusSweep, CoverageContiguitySkew) {
  const PPCase& tc = GetParam();
  auto ex = makeExtraction(tc.input, tc.eshape);
  PartitionPlus pp(ex, tc.reducers, tc.bound);

  // 1. Contiguous, ordered, exact tiling of the linear instance space.
  nd::Index expectedStart = 0;
  for (std::uint32_t kb = 0; kb < tc.reducers; ++kb) {
    auto [a, b] = pp.instanceRange(kb);
    EXPECT_EQ(a, expectedStart);
    EXPECT_LE(a, b);
    expectedStart = b;
  }
  EXPECT_EQ(expectedStart, ex->instanceCount());

  // 2. Routing agrees with ranges.
  for (nd::RegionCursor g(nd::Region::wholeSpace(ex->instanceGridShape()));
       g.valid(); g.next()) {
    std::uint32_t kb = pp.keyblockOfInstance(g.coord());
    auto [a, b] = pp.instanceRange(kb);
    nd::Index li = nd::linearize(g.coord(), ex->instanceGridShape());
    EXPECT_GE(li, a);
    EXPECT_LT(li, b);
  }

  // 3. Skew bounded by one granule, granule within the requested bound.
  EXPECT_LE(pp.granuleSize(), std::max<nd::Index>(tc.bound, 1));
  EXPECT_LE(pp.realizedSkew(), pp.granuleSize());
}

INSTANTIATE_TEST_SUITE_P(
    Plans, PartitionPlusSweep,
    ::testing::Values(PPCase{nd::Coord{56, 20}, nd::Coord{7, 5}, 1, 4},
                      PPCase{nd::Coord{56, 20}, nd::Coord{7, 5}, 3, 4},
                      PPCase{nd::Coord{56, 20}, nd::Coord{7, 5}, 8, 1},
                      PPCase{nd::Coord{63, 25}, nd::Coord{7, 5}, 7, 13},
                      PPCase{nd::Coord{64, 16, 8}, nd::Coord{4, 4, 2}, 6, 9},
                      PPCase{nd::Coord{30}, nd::Coord{2}, 5, 2},
                      PPCase{nd::Coord{30}, nd::Coord{2}, 16, 1}));

// Refined-partition property sweep (DESIGN.md §18): for every weight
// family, refine() must preserve every structural invariant of the
// uniform deal (exact contiguous tiling, routing agreement) while
// delivering the load guarantee maxLoadAfter <= total/r + maxGranule.
class RefinedPartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(RefinedPartitionSweep, TilingRoutingAndLoadBoundHold) {
  const int seed = GetParam();
  std::mt19937_64 rng(static_cast<std::uint64_t>(seed) * 48271 + 5);
  const nd::Coord inputs[] = {nd::Coord{56, 20}, nd::Coord{63, 25},
                              nd::Coord{64, 16, 8}, nd::Coord{30}};
  const nd::Coord eshapes[] = {nd::Coord{7, 5}, nd::Coord{7, 5},
                               nd::Coord{4, 4, 2}, nd::Coord{2}};
  const std::size_t which = static_cast<std::size_t>(seed) % 4;
  auto ex = makeExtraction(inputs[which], eshapes[which]);
  const auto reducers = static_cast<std::uint32_t>(2 + rng() % 9);
  const auto bound = static_cast<nd::Index>(1 + rng() % 8);
  PartitionPlus pp(ex, reducers, bound);
  const auto m = static_cast<std::size_t>(pp.granuleCount());

  // Weight family rotates: uniform noise, zipf-ish decay, a hot block,
  // and sparse (mostly-zero) loads.
  std::vector<double> w(m, 0.0);
  switch (seed % 4) {
    case 0:
      for (auto& x : w) x = 1.0 + static_cast<double>(rng() % 100) / 100.0;
      break;
    case 1:
      for (std::size_t g = 0; g < m; ++g) {
        w[g] = 1000.0 / static_cast<double>(1 + g);
      }
      break;
    case 2:
      for (std::size_t g = 0; g < m; ++g) {
        w[g] = g < std::max<std::size_t>(1, m / 10) ? 500.0 : 1.0;
      }
      break;
    default:
      for (auto& x : w) {
        if (rng() % 4 == 0) x = static_cast<double>(1 + rng() % 50);
      }
      break;
  }
  const bool refined = pp.refine(w);

  // 1. Exact contiguous tiling, refined or not.
  nd::Index expectedStart = 0;
  for (std::uint32_t kb = 0; kb < reducers; ++kb) {
    auto [a, b] = pp.instanceRange(kb);
    EXPECT_EQ(a, expectedStart);
    EXPECT_LE(a, b);
    expectedStart = b;
  }
  EXPECT_EQ(expectedStart, ex->instanceCount());

  // 2. Every instance routes to exactly one keyblock, and partition(),
  // keyblockOfInstance() and instanceRange() all agree on which.
  for (nd::RegionCursor g(nd::Region::wholeSpace(ex->instanceGridShape()));
       g.valid(); g.next()) {
    std::uint32_t kb = pp.keyblockOfInstance(g.coord());
    EXPECT_EQ(pp.partition(ex->keyForInstance(g.coord()), reducers), kb);
    auto [a, b] = pp.instanceRange(kb);
    nd::Index li = nd::linearize(g.coord(), ex->instanceGridShape());
    EXPECT_GE(li, a);
    EXPECT_LT(li, b);
  }

  if (!refined) {
    EXPECT_EQ(pp.refinement(), nullptr);
    return;
  }
  const RefinedPartition& rp = *pp.refinement();

  // 3. Boundary vector: monotone cover of [0, granuleCount].
  ASSERT_EQ(rp.granuleStart.size(), static_cast<std::size_t>(reducers) + 1);
  EXPECT_EQ(rp.granuleStart.front(), 0);
  EXPECT_EQ(rp.granuleStart.back(), pp.granuleCount());
  for (std::size_t k = 1; k < rp.granuleStart.size(); ++k) {
    EXPECT_LE(rp.granuleStart[k - 1], rp.granuleStart[k]);
  }

  // 4. Load accounting recomputed from scratch matches, and the
  // refinement guarantee holds: one granule of quantization slack.
  double total = 0.0;
  double maxGranule = 0.0;
  for (double x : w) {
    total += x;
    maxGranule = std::max(maxGranule, x);
  }
  EXPECT_DOUBLE_EQ(rp.totalWeight, total);
  EXPECT_DOUBLE_EQ(rp.maxGranuleWeight, maxGranule);
  double worst = 0.0;
  for (std::uint32_t kb = 0; kb < reducers; ++kb) {
    double load = 0.0;
    for (nd::Index g = rp.granuleStart[kb]; g < rp.granuleStart[kb + 1];
         ++g) {
      load += w[static_cast<std::size_t>(g)];
      EXPECT_EQ(pp.keyblockOfGranule(g), kb);
    }
    worst = std::max(worst, load);
  }
  EXPECT_DOUBLE_EQ(rp.maxLoadAfter, worst);
  EXPECT_LE(rp.maxLoadAfter,
            total / static_cast<double>(reducers) + maxGranule + 1e-9);
  EXPECT_LE(rp.maxLoadAfter, rp.maxLoadBefore + 1e-9);

  // 5. Split/coalesce tallies agree with a direct comparison against
  // the uniform deal's granule counts.
  const nd::Index q = pp.granuleCount() / reducers;
  const nd::Index extra = pp.granuleCount() % reducers;
  std::uint32_t splits = 0;
  std::uint32_t coalesced = 0;
  for (std::uint32_t kb = 0; kb < reducers; ++kb) {
    const nd::Index uniformCount =
        q + (kb >= reducers - static_cast<std::uint32_t>(extra) ? 1 : 0);
    const nd::Index refinedCount =
        rp.granuleStart[kb + 1] - rp.granuleStart[kb];
    if (refinedCount < uniformCount) ++splits;
    if (refinedCount > uniformCount) ++coalesced;
  }
  EXPECT_EQ(rp.splitKeyblocks, splits);
  EXPECT_EQ(rp.coalescedKeyblocks, coalesced);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinedPartitionSweep,
                         ::testing::Range(0, 24));

}  // namespace
}  // namespace sidr::core
