#include <gtest/gtest.h>

#include <random>

#include "mapreduce/combiners.hpp"
#include "mapreduce/partitioners.hpp"
#include "mapreduce/segment.hpp"
#include "scifile/storage.hpp"

namespace sidr::mr {
namespace {

TEST(Partial, MergeTracksAllAggregates) {
  Partial p = Partial::ofValue(3.0);
  p.merge(Partial::ofValue(-1.0));
  p.merge(Partial::ofValue(10.0));
  EXPECT_EQ(p.sum, 12.0);
  EXPECT_EQ(p.min, -1.0);
  EXPECT_EQ(p.max, 10.0);
  EXPECT_EQ(p.count, 3);
  EXPECT_DOUBLE_EQ(p.mean(), 4.0);
}

TEST(Partial, MergeWithEmpty) {
  Partial empty;
  Partial p = Partial::ofValue(5.0);
  empty.merge(p);
  EXPECT_EQ(empty, p);
  Partial q = Partial::ofValue(7.0);
  q.merge(Partial{});
  EXPECT_EQ(q.count, 1);
  EXPECT_EQ(q.sum, 7.0);
}

TEST(Value, KindAccessors) {
  Value s = Value::scalar(2.5);
  EXPECT_EQ(s.kind(), ValueKind::kScalar);
  EXPECT_EQ(s.asScalar(), 2.5);
  EXPECT_THROW(s.asList(), std::logic_error);

  Value l = Value::list({1.0, 2.0});
  EXPECT_EQ(l.kind(), ValueKind::kList);
  EXPECT_EQ(l.asList().size(), 2u);
  EXPECT_THROW(l.asPartial(), std::logic_error);

  Value p = Value::partial(Partial::ofValue(1.0));
  EXPECT_EQ(p.kind(), ValueKind::kPartial);
  EXPECT_EQ(p.asPartial().count, 1);
  EXPECT_THROW(p.asScalar(), std::logic_error);
}

std::vector<KeyValue> sampleRecords() {
  return {
      {nd::Coord{2, 1}, Value::scalar(5.0), 1},
      {nd::Coord{0, 3}, Value::partial(Partial::ofValue(2.0)), 4},
      {nd::Coord{1, 0}, Value::list({3.0, 1.0, 2.0}), 3},
      {nd::Coord{0, 1}, Value::list({}), 2},
  };
}

TEST(Segment, HeaderAnnotationsSumRepresents) {
  Segment seg(7, 3, sampleRecords());
  EXPECT_EQ(seg.header().mapTask, 7u);
  EXPECT_EQ(seg.header().keyblock, 3u);
  EXPECT_EQ(seg.header().numRecords, 4u);
  EXPECT_EQ(seg.header().represents, 1u + 4u + 3u + 2u);
}

TEST(Segment, SortByKey) {
  Segment seg(0, 0, sampleRecords());
  EXPECT_FALSE(seg.isSorted());
  seg.sortByKey();
  EXPECT_TRUE(seg.isSorted());
  EXPECT_EQ(seg.records().front().key, (nd::Coord{0, 1}));
  EXPECT_EQ(seg.records().back().key, (nd::Coord{2, 1}));
}

TEST(Segment, SerializeRoundTrip) {
  Segment seg(9, 2, sampleRecords());
  seg.sortByKey();
  auto bytes = seg.serialize();
  Segment back = Segment::deserialize(bytes);
  EXPECT_EQ(back.header(), seg.header());
  ASSERT_EQ(back.records().size(), seg.records().size());
  for (std::size_t i = 0; i < seg.records().size(); ++i) {
    EXPECT_EQ(back.records()[i].key, seg.records()[i].key);
    EXPECT_EQ(back.records()[i].value, seg.records()[i].value);
    EXPECT_EQ(back.records()[i].represents, seg.records()[i].represents);
  }
}

TEST(Segment, PeekHeaderWithoutParsingRecords) {
  // Section 3.2.1: reduces tally annotations "without having to read
  // and parse those files" — the header must be readable standalone.
  Segment seg(4, 1, sampleRecords());
  auto bytes = seg.serialize();
  SegmentHeader h = Segment::peekHeader(bytes);
  EXPECT_EQ(h, seg.header());
  // Header parse also works on a truncated buffer holding only 32 bytes.
  std::vector<std::byte> headOnly(bytes.begin(), bytes.begin() + 32);
  EXPECT_EQ(Segment::peekHeader(headOnly), seg.header());
}

TEST(Segment, DeserializeRejectsTruncation) {
  Segment seg(0, 0, sampleRecords());
  auto bytes = seg.serialize();
  bytes.resize(bytes.size() - 1);
  EXPECT_THROW(Segment::deserialize(bytes), std::out_of_range);
}

TEST(Segment, SerializedSizeIsExact) {
  for (auto& records :
       {sampleRecords(), std::vector<KeyValue>{},
        std::vector<KeyValue>{{nd::Coord{}, Value::scalar(1.0), 1}}}) {
    Segment seg(1, 2, records);
    EXPECT_EQ(seg.serializedSize(), seg.serialize().size());
  }
}

TEST(Segment, DeserializeRejectsEveryTruncationPoint) {
  // Cutting the encoding anywhere must throw — never crash, never
  // succeed with partial data.
  Segment seg(3, 1, sampleRecords());
  auto bytes = seg.serialize();
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::byte> prefix(bytes.begin(),
                                  bytes.begin() + static_cast<long>(cut));
    EXPECT_THROW(Segment::deserialize(prefix), std::exception)
        << "prefix length " << cut;
  }
}

TEST(Segment, DeserializeRejectsCorruptRecordCount) {
  // A corrupt header claiming a huge record count must be rejected by
  // comparing against the remaining byte count, BEFORE any reserve.
  Segment seg(0, 0, sampleRecords());
  auto bytes = seg.serialize();
  auto writeU64At = [&](std::size_t off, std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      bytes[off + static_cast<std::size_t>(b)] =
          static_cast<std::byte>((x >> (b * 8)) & 0xff);
    }
  };
  writeU64At(16, std::uint64_t{1} << 60);  // numRecords word
  EXPECT_THROW(Segment::deserialize(bytes), std::out_of_range);
}

TEST(Segment, DeserializeRejectsCorruptListLength) {
  Segment seg(0, 0, {{nd::Coord{1}, Value::list({1.0, 2.0}), 1}});
  auto bytes = seg.serialize();
  // Layout: header (32) + rank (8) + 1 coord (8) + represents (8) +
  // kind (8) = 64 bytes before the list length word.
  std::uint64_t huge = std::uint64_t{1} << 60;
  for (int b = 0; b < 8; ++b) {
    bytes[64 + static_cast<std::size_t>(b)] =
        static_cast<std::byte>((huge >> (b * 8)) & 0xff);
  }
  EXPECT_THROW(Segment::deserialize(bytes), std::out_of_range);
}

TEST(Segment, DeserializeRejectsCorruptRank) {
  Segment seg(0, 0, {{nd::Coord{1}, Value::scalar(2.0), 1}});
  auto bytes = seg.serialize();
  bytes[32] = static_cast<std::byte>(200);  // rank word: > kMaxRank
  EXPECT_THROW(Segment::deserialize(bytes), std::runtime_error);
}

TEST(Segment, DeserializeRejectsTrailingBytes) {
  Segment seg(0, 0, sampleRecords());
  auto bytes = seg.serialize();
  bytes.push_back(std::byte{0});
  EXPECT_THROW(Segment::deserialize(bytes), std::runtime_error);
}

TEST(Segment, RoundTripPropertyAllValueKinds) {
  // Randomized round-trip sweep over every ValueKind, ranks 0..4
  // (including rank-0 keys) and empty segments.
  std::mt19937_64 rng(1234);
  for (int trial = 0; trial < 50; ++trial) {
    std::size_t rank = rng() % 5;
    std::size_t count = trial == 0 ? 0 : rng() % 40;
    std::vector<KeyValue> records;
    for (std::size_t i = 0; i < count; ++i) {
      KeyValue kv;
      nd::Coord key = nd::Coord::zeros(rank);
      for (std::size_t d = 0; d < rank; ++d) {
        key[d] = static_cast<nd::Index>(rng() % 1000) - 500;
      }
      kv.key = key;
      kv.represents = rng() % 1000;
      switch (rng() % 3) {
        case 0:
          kv.value = Value::scalar(static_cast<double>(rng() % 997) / 13.0);
          break;
        case 1: {
          Partial p;
          p.sum = static_cast<double>(rng() % 997) / 7.0;
          p.min = -p.sum;
          p.max = p.sum * 2;
          p.count = static_cast<std::int64_t>(rng() % 100);
          kv.value = Value::partial(p);
          break;
        }
        default: {
          std::vector<double> xs(rng() % 9);  // includes empty lists
          for (auto& x : xs) x = static_cast<double>(rng() % 997) / 3.0;
          kv.value = Value::list(std::move(xs));
          break;
        }
      }
      records.push_back(std::move(kv));
    }
    Segment seg(static_cast<std::uint32_t>(rng() % 64),
                static_cast<std::uint32_t>(rng() % 16), std::move(records));
    auto bytes = seg.serialize();
    ASSERT_EQ(bytes.size(), seg.serializedSize());
    Segment back = Segment::deserialize(bytes);
    EXPECT_EQ(back.header(), seg.header());
    ASSERT_EQ(back.records().size(), seg.records().size());
    for (std::size_t i = 0; i < seg.records().size(); ++i) {
      EXPECT_EQ(back.records()[i].key, seg.records()[i].key);
      EXPECT_EQ(back.records()[i].value, seg.records()[i].value);
      EXPECT_EQ(back.records()[i].represents, seg.records()[i].represents);
    }
  }
}

TEST(Segment, EmptySegment) {
  Segment seg(1, 2, {});
  EXPECT_TRUE(seg.empty());
  EXPECT_EQ(seg.header().represents, 0u);
  Segment back = Segment::deserialize(seg.serialize());
  EXPECT_TRUE(back.empty());
}

TEST(Segment, CombineWithMergesEqualKeys) {
  Segment seg(0, 0,
              {{nd::Coord{1}, Value::partial(Partial::ofValue(2.0)), 1},
               {nd::Coord{1}, Value::partial(Partial::ofValue(4.0)), 2},
               {nd::Coord{2}, Value::partial(Partial::ofValue(9.0)), 1},
               {nd::Coord{1}, Value::partial(Partial::ofValue(6.0)), 1}});
  seg.sortByKey();
  std::uint64_t representsBefore = seg.header().represents;
  PartialMergeCombiner combiner;
  seg.combineWith(combiner);
  ASSERT_EQ(seg.records().size(), 2u);
  EXPECT_EQ(seg.records()[0].key, (nd::Coord{1}));
  EXPECT_EQ(seg.records()[0].value.asPartial().sum, 12.0);
  EXPECT_EQ(seg.records()[0].value.asPartial().count, 3);
  EXPECT_EQ(seg.records()[0].represents, 4u);
  EXPECT_EQ(seg.records()[1].value.asPartial().sum, 9.0);
  // The count annotation total is invariant under combining
  // (section 3.2.1: combined pairs still represent their inputs).
  EXPECT_EQ(seg.header().represents, representsBefore);
  EXPECT_EQ(seg.header().numRecords, 2u);
  // Serialization stays self-consistent after combining.
  Segment back = Segment::deserialize(seg.serialize());
  EXPECT_EQ(back.header(), seg.header());
}

TEST(Segment, ListConcatCombiner) {
  Segment seg(0, 0,
              {{nd::Coord{5}, Value::list({1.0, 2.0}), 2},
               {nd::Coord{5}, Value::list({3.0}), 1}});
  seg.sortByKey();
  ListConcatCombiner combiner;
  seg.combineWith(combiner);
  ASSERT_EQ(seg.records().size(), 1u);
  EXPECT_EQ(seg.records()[0].value.asList(),
            (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(seg.records()[0].represents, 3u);
}

TEST(SegmentMerger, GroupsAcrossSegments) {
  Segment a(0, 0,
            {{nd::Coord{1}, Value::scalar(1.0), 1},
             {nd::Coord{3}, Value::scalar(3.0), 1}});
  Segment b(1, 0,
            {{nd::Coord{1}, Value::scalar(10.0), 2},
             {nd::Coord{2}, Value::scalar(2.0), 1}});
  a.sortByKey();
  b.sortByKey();
  std::vector<const Segment*> segs{&a, &b};
  SegmentMerger merger(segs);
  std::vector<std::pair<nd::Coord, std::size_t>> groups;
  std::vector<std::uint64_t> reps;
  merger.forEachGroup([&](const nd::Coord& key,
                          std::span<const Value* const> values,
                          std::uint64_t represents) {
    groups.emplace_back(key, values.size());
    reps.push_back(represents);
  });
  ASSERT_EQ(groups.size(), 3u);
  EXPECT_EQ(groups[0], std::make_pair(nd::Coord{1}, std::size_t{2}));
  EXPECT_EQ(groups[1], std::make_pair(nd::Coord{2}, std::size_t{1}));
  EXPECT_EQ(groups[2], std::make_pair(nd::Coord{3}, std::size_t{1}));
  EXPECT_EQ(reps, (std::vector<std::uint64_t>{3, 1, 1}));
}

TEST(SegmentMerger, ManySegmentsStaySorted) {
  std::vector<Segment> segs;
  for (std::uint32_t m = 0; m < 10; ++m) {
    std::vector<KeyValue> recs;
    for (nd::Index k = 0; k < 20; ++k) {
      recs.push_back({nd::Coord{(k * 7 + m) % 40}, Value::scalar(1.0), 1});
    }
    Segment s(m, 0, std::move(recs));
    s.sortByKey();
    segs.push_back(std::move(s));
  }
  std::vector<const Segment*> ptrs;
  for (const auto& s : segs) ptrs.push_back(&s);
  SegmentMerger merger(ptrs);
  nd::Coord prev;
  bool first = true;
  std::size_t total = 0;
  merger.forEachGroup([&](const nd::Coord& key,
                          std::span<const Value* const> values,
                          std::uint64_t) {
    if (!first) {
      EXPECT_LT(prev, key);
    }
    prev = key;
    first = false;
    total += values.size();
  });
  EXPECT_EQ(total, 200u);
}

TEST(SegmentMerger, EmptyInput) {
  SegmentMerger merger(std::span<const Segment* const>{});
  int calls = 0;
  merger.forEachGroup([&](auto&&...) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ModuloPartitioner, LinearIndexModulo) {
  ModuloPartitioner part(nd::Coord{10, 10});
  EXPECT_EQ(part.partition(nd::Coord{0, 0}, 4), 0u);
  EXPECT_EQ(part.partition(nd::Coord{0, 5}, 4), 1u);
  EXPECT_EQ(part.partition(nd::Coord{2, 3}, 4), 23u % 4);
}

TEST(ModuloPartitioner, EvenKeysSkewToEvenReducers) {
  // The paper's section 4.3 pathology: patterned (all-even) keys starve
  // odd-numbered reduce tasks under modulo partitioning.
  ModuloPartitioner part(nd::Coord{16, 16});
  std::vector<int> counts(4, 0);
  for (nd::Index i = 0; i < 16; i += 2) {
    for (nd::Index j = 0; j < 16; j += 2) {
      ++counts[part.partition(nd::Coord{i, j}, 4)];
    }
  }
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[2], 0);
  EXPECT_EQ(counts[1], 0);  // odd reducers receive nothing
  EXPECT_EQ(counts[3], 0);
}

TEST(HashPartitioner, BreaksKeyPatterns) {
  HashPartitioner part;
  std::vector<int> counts(4, 0);
  for (nd::Index i = 0; i < 16; i += 2) {
    for (nd::Index j = 0; j < 16; j += 2) {
      ++counts[part.partition(nd::Coord{i, j}, 4)];
    }
  }
  for (int c : counts) EXPECT_GT(c, 0) << "hash must spread patterned keys";
}

// ---- streaming decoder + compressed spill framing ----

std::unique_ptr<sci::Storage> memoryStorageOf(
    std::span<const std::byte> bytes) {
  auto storage = std::make_unique<sci::MemoryStorage>();
  storage->writeAt(0, bytes);
  return storage;
}

/// Random sorted segment whose keys all lie inside `keySpace`, covering
/// every value kind (lists include empty and window-busting big ones).
Segment randomSortedSegment(std::mt19937_64& rng, const nd::Coord& keySpace,
                            std::size_t count) {
  nd::Index space = 1;
  for (std::size_t d = 0; d < keySpace.rank(); ++d) space *= keySpace[d];
  std::vector<KeyValue> records;
  for (std::size_t i = 0; i < count; ++i) {
    KeyValue kv;
    kv.key = nd::delinearize(static_cast<nd::Index>(
                                 rng() % static_cast<std::uint64_t>(space)),
                             keySpace);
    kv.represents = rng() % 1000;
    switch (rng() % 4) {
      case 0:
        kv.value = Value::scalar(static_cast<double>(rng() % 997) / 13.0);
        break;
      case 1: {
        Partial p;
        p.sum = static_cast<double>(rng() % 997) / 7.0;
        p.min = -p.sum;
        p.max = p.sum * 2;
        p.count = static_cast<std::int64_t>(rng() % 100);
        kv.value = Value::partial(p);
        break;
      }
      case 2: {
        std::vector<double> xs(rng() % 9);  // includes empty lists
        for (auto& x : xs) x = static_cast<double>(rng() % 997) / 3.0;
        kv.value = Value::list(std::move(xs));
        break;
      }
      default: {
        // Bigger than the smallest test window, so the stream's
        // grow-for-one-record path is exercised.
        std::vector<double> xs(40 + rng() % 30);
        for (auto& x : xs) x = static_cast<double>(rng() % 997);
        kv.value = Value::list(std::move(xs));
        break;
      }
    }
    records.push_back(std::move(kv));
  }
  Segment seg(1, 0, std::move(records));
  seg.computeLinearKeys(keySpace);
  seg.sortByKey();
  return seg;
}

void expectStreamMatches(SegmentStream& stream, const Segment& want,
                         bool wantLin, const nd::Coord& keySpace) {
  EXPECT_EQ(stream.header(), want.header());
  EXPECT_EQ(stream.hasLin(), wantLin);
  for (std::size_t i = 0; i < want.records().size(); ++i) {
    ASSERT_FALSE(stream.exhausted());
    if (wantLin) {
      EXPECT_EQ(stream.currentLin(),
                static_cast<std::uint64_t>(
                    nd::linearize(want.records()[i].key, keySpace)));
    }
    KeyValue got = stream.take();
    EXPECT_EQ(got.key, want.records()[i].key);
    EXPECT_EQ(got.value, want.records()[i].value);
    EXPECT_EQ(got.represents, want.records()[i].represents);
  }
  EXPECT_TRUE(stream.exhausted());
}

TEST(SegmentStream, WindowedDecodeMatchesDeserialize) {
  const nd::Coord keySpace{6, 7, 8};
  std::mt19937_64 rng(99);
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{80}}) {
    Segment seg = randomSortedSegment(rng, keySpace, count);
    auto bytes = seg.serialize();
    // Windows below one record, around a few records, and way past the
    // whole encoding must all decode identically.
    for (std::size_t window : {std::size_t{64}, std::size_t{4096},
                               std::size_t{1} << 20}) {
      SegmentStream stream(memoryStorageOf(bytes), window,
                           /*compressed=*/false, keySpace);
      expectStreamMatches(stream, seg, /*wantLin=*/true, keySpace);
      EXPECT_EQ(stream.bytesRead(), bytes.size());
      if (window == 64 && count == 80) {
        EXPECT_LT(stream.peakWindowBytes(), bytes.size())
            << "a small window must never buffer the whole file";
      }
    }
    // Without a key space the stream serves no linear keys but the
    // records are the same.
    SegmentStream plain(memoryStorageOf(bytes), 512, false, nd::Coord());
    expectStreamMatches(plain, seg, /*wantLin=*/false, keySpace);
  }
}

TEST(SegmentStream, CompressedRoundTripMatches) {
  const nd::Coord keySpace{6, 7, 8};
  std::mt19937_64 rng(7);
  for (std::size_t count : {std::size_t{0}, std::size_t{1}, std::size_t{80}}) {
    Segment seg = randomSortedSegment(rng, keySpace, count);
    auto bytes = seg.serializeCompressed(keySpace);
    ASSERT_EQ(bytes.size(), seg.serializedCompressedSize(keySpace));
    EXPECT_EQ(Segment::peekHeader(bytes), seg.header())
        << "compressed framing keeps the raw header (annotation peek)";
    for (std::size_t window : {std::size_t{64}, std::size_t{1} << 20}) {
      SegmentStream stream(memoryStorageOf(bytes), window,
                           /*compressed=*/true, keySpace);
      expectStreamMatches(stream, seg, /*wantLin=*/true, keySpace);
    }
    // fromStream materializes the same segment (the eager-spill decode
    // path for compressed files).
    SegmentStream stream(memoryStorageOf(bytes), 256, true, keySpace);
    Segment back = Segment::fromStream(stream);
    EXPECT_EQ(back.header(), seg.header());
    ASSERT_EQ(back.records().size(), seg.records().size());
    for (std::size_t i = 0; i < seg.records().size(); ++i) {
      EXPECT_EQ(back.records()[i].key, seg.records()[i].key);
      EXPECT_EQ(back.records()[i].value, seg.records()[i].value);
      EXPECT_EQ(back.records()[i].represents, seg.records()[i].represents);
    }
    EXPECT_TRUE(back.hasLinearKeys());
  }
}

TEST(SegmentStream, CompressedPackedEncodeMatchesMaterialized) {
  // The packed-direct compressed encoder must emit byte-identical
  // output to encoding the materialized view of the same records.
  const nd::Coord keySpace{4, 5};
  std::vector<PackedRecord> packed;
  std::vector<std::vector<double>> lists;
  auto addPacked = [&](std::uint64_t lin, Value v, std::uint64_t rep) {
    PackedRecord r;
    r.lin = lin;
    r.represents = rep;
    r.kind = v.kind();
    switch (v.kind()) {
      case ValueKind::kScalar:
        r.payload.scalar = v.asScalar();
        break;
      case ValueKind::kPartial:
        r.payload.partial = v.asPartial();
        break;
      case ValueKind::kList:
        r.payload.listIndex = static_cast<std::uint32_t>(lists.size());
        lists.push_back(v.asList());
        break;
    }
    packed.push_back(r);
  };
  addPacked(0, Value::scalar(1.0), 2);
  addPacked(1, Value::list({5.0, 6.0}), 1);  // dense run 0,1,2
  addPacked(2, Value::partial(Partial::ofValue(3.0)), 4);
  addPacked(7, Value::list({}), 9);
  addPacked(19, Value::scalar(-2.5), 1);
  Segment lazy(0, 0, std::move(packed), std::move(lists), keySpace);
  Segment eager = Segment::deserialize(lazy.serialize());
  EXPECT_EQ(lazy.serializeCompressed(keySpace),
            eager.serializeCompressed(keySpace));
  EXPECT_TRUE(lazy.packed()) << "compressed encode must not materialize";
}

TEST(SegmentStream, RejectsEveryTruncationPoint) {
  const nd::Coord keySpace{6, 7, 8};
  std::mt19937_64 rng(31);
  Segment seg = randomSortedSegment(rng, keySpace, 12);
  for (bool compressed : {false, true}) {
    auto bytes =
        compressed ? seg.serializeCompressed(keySpace) : seg.serialize();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      std::span<const std::byte> prefix(bytes.data(), cut);
      EXPECT_THROW(
          {
            SegmentStream stream(memoryStorageOf(prefix), 64, compressed,
                                 keySpace);
            while (!stream.exhausted()) stream.advance();
          },
          std::exception)
          << (compressed ? "compressed" : "uncompressed") << " prefix length "
          << cut;
    }
  }
}

TEST(SegmentStream, RejectsStructuralCorruption) {
  const nd::Coord keySpace{4, 4};
  Segment seg(0, 0,
              {{nd::Coord{1, 2}, Value::scalar(2.0), 1},
               {nd::Coord{3, 0}, Value::list({1.0}), 2}});
  auto drain = [&](std::span<const std::byte> bytes, bool compressed) {
    SegmentStream stream(memoryStorageOf(bytes), 64, compressed, keySpace);
    while (!stream.exhausted()) stream.advance();
  };
  {
    // Uncompressed: bad value-kind word.
    auto bytes = seg.serialize();
    // header(32) + rank(8) + 2 coords(16) + represents(8) = kind at 64.
    bytes[64] = std::byte{7};
    EXPECT_THROW(drain(bytes, false), std::runtime_error);
  }
  {
    // Uncompressed: trailing bytes after the last record.
    auto bytes = seg.serialize();
    bytes.push_back(std::byte{0});
    EXPECT_THROW(drain(bytes, false), std::runtime_error);
  }
  {
    // Uncompressed: header represents disagrees with the record sum.
    auto bytes = seg.serialize();
    bytes[24] = std::byte{0xff};  // represents word (little-endian)
    EXPECT_THROW(drain(bytes, false), std::runtime_error);
  }
  {
    // Compressed: bad kind byte in the first record.
    auto bytes = seg.serializeCompressed(keySpace);
    // header(32) + rank varint(1) + two extent varints(2) +
    // lin varint(1) + represents varint(1) = kind byte at offset 37.
    bytes[37] = std::byte{9};
    EXPECT_THROW(drain(bytes, true), std::runtime_error);
  }
}

TEST(SegmentStream, CompressedRejectsKeySpaceMismatch) {
  const nd::Coord keySpace{4, 4};
  Segment seg(0, 0, {{nd::Coord{1, 2}, Value::scalar(2.0), 1}});
  auto bytes = seg.serializeCompressed(keySpace);
  EXPECT_THROW(
      {
        SegmentStream stream(memoryStorageOf(bytes), 64, true,
                             nd::Coord{5, 4});
        while (!stream.exhausted()) stream.advance();
      },
      std::runtime_error);
  // An empty caller key space defers to the embedded one.
  SegmentStream ok(memoryStorageOf(bytes), 64, true, nd::Coord());
  EXPECT_EQ(ok.take().key, (nd::Coord{1, 2}));
}

TEST(SegmentStream, MergerOverStreamsMatchesInMemory) {
  // Mixed-source merge: one resident segment, one streamed — group
  // sequence must be identical to merging both in memory.
  const nd::Coord keySpace{8, 8};
  std::mt19937_64 rng(5);
  Segment a = randomSortedSegment(rng, keySpace, 30);
  Segment b = randomSortedSegment(rng, keySpace, 45);
  auto bytesB = b.serialize();

  struct Group {
    nd::Coord key;
    std::vector<Value> values;
    std::uint64_t represents;
  };
  auto collect = [](SegmentMerger& merger) {
    std::vector<Group> groups;
    merger.forEachGroup([&](const nd::Coord& key,
                            std::span<const Value* const> values,
                            std::uint64_t represents) {
      Group g;
      g.key = key;
      for (const Value* v : values) g.values.push_back(*v);
      g.represents = represents;
      groups.push_back(std::move(g));
    });
    return groups;
  };

  std::vector<const Segment*> both{&a, &b};
  SegmentMerger reference{std::span<const Segment* const>(both)};
  auto want = collect(reference);

  SegmentStream streamB(memoryStorageOf(bytesB), 128, false, keySpace);
  std::vector<SegmentMerger::Input> inputs(2);
  inputs[0].segment = &a;
  inputs[1].stream = &streamB;
  SegmentMerger mixed{std::span<const SegmentMerger::Input>(inputs)};
  auto got = collect(mixed);

  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(got[i].key, want[i].key);
    EXPECT_EQ(got[i].represents, want[i].represents);
    ASSERT_EQ(got[i].values.size(), want[i].values.size());
    for (std::size_t j = 0; j < want[i].values.size(); ++j) {
      EXPECT_EQ(got[i].values[j], want[i].values[j]);
    }
  }
}

}  // namespace
}  // namespace sidr::mr
