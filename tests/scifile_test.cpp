#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "scifile/cdl.hpp"
#include "scifile/dataset.hpp"
#include "scifile/output_writers.hpp"

namespace sidr::sci {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  TempDir() {
    path_ = fs::temp_directory_path() /
            ("sidr_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string file(const std::string& name) const {
    return (path_ / name).string();
  }

 private:
  fs::path path_;
  static inline int counter_ = 0;
};

Metadata paperMetadata() {
  Metadata meta;
  meta.addDimension("time", 365);
  meta.addDimension("lat", 250);
  meta.addDimension("lon", 200);
  meta.addVariable("temperature", DataType::kInt32, {"time", "lat", "lon"});
  return meta;
}

TEST(Metadata, DataTypeSizes) {
  EXPECT_EQ(dataTypeSize(DataType::kInt32), 4u);
  EXPECT_EQ(dataTypeSize(DataType::kInt64), 8u);
  EXPECT_EQ(dataTypeSize(DataType::kFloat32), 4u);
  EXPECT_EQ(dataTypeSize(DataType::kFloat64), 8u);
}

TEST(Metadata, VariableShapeAndSizes) {
  Metadata meta = paperMetadata();
  EXPECT_EQ(meta.variableShape(0), (nd::Coord{365, 250, 200}));
  EXPECT_EQ(meta.variableElementCount(0), 365LL * 250 * 200);
  EXPECT_EQ(meta.variableByteSize(0), 365ULL * 250 * 200 * 4);
}

TEST(Metadata, UnknownNamesThrow) {
  Metadata meta = paperMetadata();
  EXPECT_THROW(meta.variableIndex("windspeed"), std::invalid_argument);
  EXPECT_THROW(meta.addVariable("v", DataType::kInt32, {"nope"}),
               std::invalid_argument);
  EXPECT_THROW(meta.addDimension("bad", 0), std::invalid_argument);
}

TEST(Metadata, TextRenderingMatchesPaperFigure1) {
  // Figure 1 of the paper renders this exact structure.
  std::string text = paperMetadata().toText();
  EXPECT_NE(text.find("time = 365;"), std::string::npos);
  EXPECT_NE(text.find("lat = 250;"), std::string::npos);
  EXPECT_NE(text.find("lon = 200;"), std::string::npos);
  EXPECT_NE(text.find("int temperature(time, lat, lon);"),
            std::string::npos);
}

TEST(Metadata, SerializeRoundTrip) {
  Metadata meta = paperMetadata();
  meta.setAttribute("origin", "{0, 0, 0}");
  meta.setAttribute("note", "unit test");
  Metadata back = Metadata::deserialize(meta.serialize());
  EXPECT_EQ(back, meta);
  EXPECT_EQ(back.attribute("origin"), "{0, 0, 0}");
  EXPECT_EQ(back.attribute("missing"), "");
}

TEST(Metadata, AttributeReplace) {
  Metadata meta;
  meta.setAttribute("k", "v1");
  meta.setAttribute("k", "v2");
  EXPECT_EQ(meta.attribute("k"), "v2");
  EXPECT_EQ(meta.attributes().size(), 1u);
}

TEST(MemoryStorage, ReadWriteResize) {
  MemoryStorage s;
  std::vector<std::byte> data{std::byte{1}, std::byte{2}, std::byte{3}};
  s.writeAt(5, data);
  EXPECT_EQ(s.size(), 8u);
  std::vector<std::byte> back(3);
  s.readAt(5, back);
  EXPECT_EQ(back, data);
  EXPECT_THROW(s.readAt(7, back), std::out_of_range);
  s.resize(2);
  EXPECT_EQ(s.size(), 2u);
}

TEST(FileStorage, ReadWritePersistence) {
  TempDir dir;
  std::string path = dir.file("f.bin");
  std::vector<std::byte> data(100, std::byte{0xAB});
  {
    FileStorage s(path, FileStorage::Mode::kCreate);
    s.writeAt(10, data);
    s.flush();
    EXPECT_EQ(s.size(), 110u);
  }
  {
    FileStorage s(path, FileStorage::Mode::kOpenReadOnly);
    std::vector<std::byte> back(100);
    s.readAt(10, back);
    EXPECT_EQ(back, data);
    EXPECT_THROW(s.writeAt(0, data), std::logic_error);
  }
}

TEST(FileStorage, OpenMissingFileThrows) {
  EXPECT_THROW(FileStorage("/nonexistent/dir/file.bin",
                           FileStorage::Mode::kOpenExisting),
               std::system_error);
}

TEST(Dataset, RegionRoundTripMemory) {
  auto storage = std::make_shared<MemoryStorage>();
  Dataset ds = Dataset::create(storage, paperMetadata());
  nd::Region r(nd::Coord{100, 50, 20}, nd::Coord{3, 4, 5});
  std::vector<double> values(static_cast<std::size_t>(r.volume()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i) - 30.0;
  }
  ds.writeRegion(0, r, values);
  EXPECT_EQ(ds.readRegion(0, r), values);
}

TEST(Dataset, RegionOutOfBoundsThrows) {
  auto storage = std::make_shared<MemoryStorage>();
  Dataset ds = Dataset::create(storage, paperMetadata());
  nd::Region bad(nd::Coord{364, 0, 0}, nd::Coord{2, 1, 1});
  std::vector<double> v(2, 0.0);
  EXPECT_THROW(ds.writeRegion(0, bad, v), std::out_of_range);
  EXPECT_THROW(
      ds.writeRegion(0, nd::Region(nd::Coord{0, 0, 0}, nd::Coord{1, 1, 1}), v),
      std::invalid_argument);
}

TEST(Dataset, Int32TypeConversionTruncates) {
  auto storage = std::make_shared<MemoryStorage>();
  Dataset ds = Dataset::create(storage, paperMetadata());
  nd::Region r(nd::Coord{0, 0, 0}, nd::Coord{1, 1, 2});
  ds.writeRegion(0, r, std::vector<double>{3.9, -2.9});
  std::vector<double> back = ds.readRegion(0, r);
  EXPECT_EQ(back[0], 3.0);   // int32 storage truncates
  EXPECT_EQ(back[1], -2.0);
}

TEST(Dataset, OpenRoundTripFile) {
  TempDir dir;
  std::string path = dir.file("ds.sndf");
  nd::Region r(nd::Coord{7, 8, 9}, nd::Coord{2, 2, 2});
  std::vector<double> values{1, 2, 3, 4, 5, 6, 7, 8};
  {
    auto storage = std::make_shared<FileStorage>(path,
                                                 FileStorage::Mode::kCreate);
    Dataset ds = Dataset::create(storage, paperMetadata());
    ds.writeRegion(0, r, values);
    storage->flush();
  }
  {
    auto storage = std::make_shared<FileStorage>(
        path, FileStorage::Mode::kOpenReadOnly);
    Dataset ds = Dataset::open(storage);
    EXPECT_EQ(ds.metadata(), paperMetadata());
    EXPECT_EQ(ds.readRegion(0, r), values);
  }
}

TEST(Dataset, OpenRejectsGarbage) {
  auto storage = std::make_shared<MemoryStorage>();
  std::vector<std::byte> junk(64, std::byte{0x5A});
  storage->writeAt(0, junk);
  EXPECT_THROW(Dataset::open(storage), std::runtime_error);
}

TEST(Dataset, FillWholeVariable) {
  Metadata meta;
  meta.addDimension("x", 100);
  meta.addDimension("y", 100);
  meta.addVariable("v", DataType::kFloat64, {"x", "y"});
  auto storage = std::make_shared<MemoryStorage>();
  Dataset ds = Dataset::create(storage, meta);
  ds.fill(0, -99.0);
  auto all = ds.readRegion(0, nd::Region::wholeSpace(nd::Coord{100, 100}));
  for (double v : all) EXPECT_EQ(v, -99.0);
}

TEST(Dataset, MultipleVariablesHaveDisjointPayloads) {
  Metadata meta;
  meta.addDimension("x", 10);
  meta.addVariable("a", DataType::kFloat64, {"x"});
  meta.addVariable("b", DataType::kFloat64, {"x"});
  auto storage = std::make_shared<MemoryStorage>();
  Dataset ds = Dataset::create(storage, meta);
  std::vector<double> va(10, 1.0);
  std::vector<double> vb(10, 2.0);
  nd::Region whole = nd::Region::wholeSpace(nd::Coord{10});
  ds.writeRegion(0, whole, va);
  ds.writeRegion(1, whole, vb);
  EXPECT_EQ(ds.readRegion(0, whole), va);
  EXPECT_EQ(ds.readRegion(1, whole), vb);
  EXPECT_EQ(ds.variableOffset(1) - ds.variableOffset(0), 80u);
}

TEST(OutputWriters, DenseChunkRoundTrip) {
  TempDir dir;
  nd::Coord total{52, 50, 200};
  nd::Region chunk(nd::Coord{13, 0, 0}, nd::Coord{13, 50, 200});
  std::vector<double> values(static_cast<std::size_t>(chunk.volume()));
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i % 97);
  }
  WriteReport rep = writeDenseChunk(dir.file("chunk.sndf"), "out",
                                    DataType::kFloat64, total, chunk, values);
  EXPECT_EQ(rep.bytesWritten, values.size() * 8);
  // Dense chunk file size ~ chunk bytes + small header, NOT total bytes.
  EXPECT_LT(rep.fileSize, values.size() * 8 + 4096);

  auto [origin, back] = readDenseChunk(dir.file("chunk.sndf"), "out");
  EXPECT_EQ(origin, (nd::Coord{13, 0, 0}));
  EXPECT_EQ(back, values);
}

TEST(OutputWriters, SentinelFileIsTotalSized) {
  TempDir dir;
  nd::Coord total{40, 40};
  std::vector<nd::Coord> coords{{3, 3}, {10, 20}, {39, 39}};
  std::vector<double> values{1.5, 2.5, 3.5};
  WriteReport rep =
      writeSentinelFile(dir.file("sent.sndf"), "out", DataType::kFloat64,
                        total, -9999.0, coords, values);
  // The file must hold the WHOLE output space regardless of how few
  // keys this reduce task owns — the Table 2 pathology.
  EXPECT_GE(rep.fileSize, 40u * 40u * 8u);

  auto storage = std::make_shared<FileStorage>(
      dir.file("sent.sndf"), FileStorage::Mode::kOpenReadOnly);
  Dataset ds = Dataset::open(storage);
  nd::Coord one = nd::Coord::ones(2);
  EXPECT_EQ(ds.readRegion(0, nd::Region(coords[1], one))[0], 2.5);
  EXPECT_EQ(ds.readRegion(0, nd::Region(nd::Coord{0, 0}, one))[0], -9999.0);
}

TEST(OutputWriters, CoordPairsRoundTrip) {
  TempDir dir;
  std::vector<nd::Coord> coords{{1, 2, 3}, {4, 5, 6}};
  std::vector<double> values{-1.25, 8.75};
  WriteReport rep = writeCoordPairs(dir.file("pairs.bin"), coords, values);
  // Storage overhead: rank coords + value per element, plus tiny header.
  EXPECT_EQ(rep.fileSize, 16u + 2u * (3u + 1u) * 8u);
  auto [backCoords, backValues] = readCoordPairs(dir.file("pairs.bin"));
  EXPECT_EQ(backCoords, coords);
  EXPECT_EQ(backValues, values);
}

TEST(OutputWriters, MismatchedSpansThrow) {
  TempDir dir;
  std::vector<nd::Coord> coords{{1, 1}};
  std::vector<double> values{1.0, 2.0};
  EXPECT_THROW(writeCoordPairs(dir.file("x.bin"), coords, values),
               std::invalid_argument);
  EXPECT_THROW(writeSentinelFile(dir.file("y.sndf"), "v", DataType::kFloat64,
                                 nd::Coord{4, 4}, 0.0, coords, values),
               std::invalid_argument);
}

TEST(Cdl, ParsesPaperFigure1) {
  Metadata meta = parseCdl(
      "dimensions:\n"
      "  time = 365;\n"
      "  lat = 250;\n"
      "  lon = 200;\n"
      "variables:\n"
      "  int temperature(time, lat, lon);\n");
  EXPECT_EQ(meta, paperMetadata());
}

TEST(Cdl, RoundTripsToText) {
  Metadata meta;
  meta.addDimension("x", 10);
  meta.addDimension("y", 20);
  meta.addVariable("a", DataType::kFloat64, {"x", "y"});
  meta.addVariable("b", DataType::kInt64, {"y"});
  meta.addVariable("c", DataType::kFloat32, {"x"});
  EXPECT_EQ(parseCdl(meta.toText()), meta);
}

TEST(Cdl, AllTypes) {
  Metadata meta = parseCdl(
      "dimensions:\n n = 4;\n"
      "variables:\n"
      " int a(n);\n long b(n);\n float c(n);\n double d(n);\n");
  EXPECT_EQ(meta.variable(0).type, DataType::kInt32);
  EXPECT_EQ(meta.variable(1).type, DataType::kInt64);
  EXPECT_EQ(meta.variable(2).type, DataType::kFloat32);
  EXPECT_EQ(meta.variable(3).type, DataType::kFloat64);
}

TEST(Cdl, Errors) {
  EXPECT_THROW(parseCdl("time = 365;"), std::invalid_argument);  // no section
  EXPECT_THROW(parseCdl("dimensions:\n time = 365"),  // missing ';'
               std::invalid_argument);
  EXPECT_THROW(parseCdl("dimensions:\n = 365;"), std::invalid_argument);
  EXPECT_THROW(parseCdl("dimensions:\n t = 0;"), std::invalid_argument);
  EXPECT_THROW(parseCdl("variables:\n int v(missing);"),
               std::invalid_argument);
  EXPECT_THROW(parseCdl("variables:\n quux v();"), std::invalid_argument);
  EXPECT_THROW(parseCdl("variables:\n intv(n);"), std::invalid_argument);
}

TEST(Cdl, ScalarVariableWithNoDims) {
  Metadata meta = parseCdl("variables:\n double v();\n");
  EXPECT_TRUE(meta.variable(0).dimIndices.empty());
}

}  // namespace
}  // namespace sidr::sci
