// Figure 12: Variance in SIDR task completion times across 10 runs of
// Query 1, at 22 vs 88 Reduce tasks (error bars = stddev at each
// completion fraction).
//
// Paper headline observations: with SIDR, a reduce's barrier is only
// its dependency set, so reduces inherit at least the variance of the
// maps they wait on; MORE reducers shrink each dependency set and with
// it the odds of waiting on several abnormally slow maps — completion
// variance drops and the curve tightens toward the map curve.
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Figure 12 - completion variance over 10 runs: SS 22 vs 88",
                "error bars shrink as reducers increase; reduce curves "
                "track the 2781-mapper curve");

  sim::WorkloadSpec w = sim::query1Workload();
  constexpr int kRuns = 10;

  std::vector<std::vector<double>> mapRuns;
  std::vector<std::vector<double>> reduce22;
  std::vector<std::vector<double>> reduce88;
  for (int run = 0; run < kRuns; ++run) {
    sim::ClusterConfig cfg;
    cfg.mapNoiseSigma = 0.25;  // straggler-y map durations
    cfg.seed = 1000 + static_cast<std::uint64_t>(run);
    {
      auto built = sim::buildWorkload(w, core::SystemMode::kSidr, 22);
      auto res = sim::ClusterSim(cfg, built.job).run();
      mapRuns.push_back(res.sortedMapEnds());
      reduce22.push_back(res.sortedReduceEnds());
    }
    {
      auto built = sim::buildWorkload(w, core::SystemMode::kSidr, 88);
      auto res = sim::ClusterSim(cfg, built.job).run();
      reduce88.push_back(res.sortedReduceEnds());
    }
  }

  auto report = [](const char* label, const sim::FractionStats& st) {
    double maxDev = 0;
    for (double d : st.stddevTimes) maxDev = std::max(maxDev, d);
    std::printf("%-14s mean total=%7.0fs  max stddev=%5.1fs\n", label,
                st.meanTimes.back(), maxDev);
    return maxDev;
  };

  sim::FractionStats mapStats = sim::fractionStats(mapRuns);
  sim::FractionStats st22 = sim::fractionStats(reduce22);
  sim::FractionStats st88 = sim::fractionStats(reduce88);
  report("Mappers", mapStats);
  double d22 = report("22 Reducers", st22);
  double d88 = report("88 Reducers", st88);

  std::printf("\nshape checks (paper -> measured):\n");
  std::printf("  variance shrinks with more reducers: paper yes -> %s "
              "(%.1fs vs %.1fs)\n",
              d88 < d22 ? "yes" : "NO", d88, d22);
  std::printf("  88-reducer curve closer to map curve than 22: %s\n",
              (st88.meanTimes.back() <= st22.meanTimes.back()) ? "yes" : "NO");

  std::printf("\nseries (label,fraction,mean_s,stddev_s):\n");
  auto dump = [](const char* label, const sim::FractionStats& st) {
    for (std::size_t i = 0; i < st.fractions.size(); ++i) {
      std::printf("%s,%.2f,%.1f,%.1f\n", label, st.fractions[i],
                  st.meanTimes[i], st.stddevTimes[i]);
    }
  };
  dump("mappers", mapStats);
  dump("reduce22", st22);
  dump("reduce88", st88);
  return 0;
}
