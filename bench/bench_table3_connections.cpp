// Table 3: network connection scaling. Hadoop requires every Reduce
// task to contact every completed Map task (maps x reduces); SIDR's
// reduces contact only the maps in their dependency set (sum |I_l|).
//
// Paper numbers (2781 maps):
//   reduces   Hadoop       SIDR
//   22        61,182       2,820
//   66        183,546      2,905
//   132       367,092      3,031
//   264       734,184      3,267
//   528       1,468,368    3,760
//   1024      2,936,736    5,106
//
// Connection counts are pure dependency arithmetic, so this bench runs
// the real DependencyCalculator over Query 1's geometry — no simulation.
// Two split layouts are reported: 3-row splits that straddle extraction
// cells (comparable to the paper's byte-aligned 2,781 splits) and
// cell-aligned splits (SIDR's splits can be snapped to the extraction
// shape, making dependency sets perfectly disjoint — flat at one fetch
// per split).
#include "scihadoop/split_gen.hpp"
#include "bench_common.hpp"

namespace {

void reportLayout(const char* label,
                  const std::vector<sidr::mr::InputSplit>& splits,
                  std::shared_ptr<const sidr::sh::ExtractionMap> extraction) {
  using namespace sidr;
  std::printf("\n[%s] %zu splits\n", label, splits.size());
  std::printf("%8s %16s %16s %22s\n", "reduces", "Hadoop(#conn)",
              "SIDR(#conn)", "SIDR avg fetch/reduce");
  for (std::uint32_t r : {22u, 66u, 132u, 264u, 528u, 1024u}) {
    auto plan = std::make_shared<const core::PartitionPlus>(extraction, r, 0);
    core::DependencyCalculator calc(plan);
    core::DependencyInfo info = calc.computeAll(splits);
    std::uint64_t sidrConn = info.totalConnections();
    std::uint64_t hadoopConn =
        static_cast<std::uint64_t>(splits.size()) * r;
    std::printf("%8u %16llu %16llu %22.1f\n", r,
                static_cast<unsigned long long>(hadoopConn),
                static_cast<unsigned long long>(sidrConn),
                static_cast<double>(sidrConn) / r);
  }
}

}  // namespace

int main() {
  using namespace sidr;
  bench::header("Table 3 - shuffle connection scaling (Query 1 geometry)",
                "Hadoop 61,182 -> 2,936,736 (multiplicative); SIDR 2,820 "
                "-> 5,106 (near-flat) for 2781 maps, r=22..1024");

  sim::WorkloadSpec w = sim::query1Workload();
  auto extraction =
      std::make_shared<const sh::ExtractionMap>(w.query, w.inputShape);

  // Layout A: splits of 3 leading rows — NOT aligned with the eshape's
  // leading extent of 2, so half the splits straddle two keyblock rows
  // (the paper's byte-range splits were similarly unaligned).
  {
    sh::SplitOptions opts;
    opts.targetElements = 3 * 360 * 720 * 50;
    auto splits = sh::generateSplits(w.inputShape, opts);
    reportLayout("cell-straddling splits (paper-like)", splits,
                 extraction);
  }

  // Layout B: EXACT paper layout — 2,781 byte-range splits, each ~2.59
  // leading rows, cutting rows and cells arbitrarily.
  {
    auto splits = sh::generateByteRangeSplits(w.inputShape, 2781);
    reportLayout("byte-range splits (paper's 2781)", splits,
                 extraction);
  }

  // Layout C: cell-aligned splits — dependency sets become disjoint.
  {
    sh::SplitOptions opts;
    opts.targetElements = 2 * 360 * 720 * 50;
    opts.alignToExtraction = true;
    auto splits = sh::generateSplits(w.inputShape, *extraction, opts);
    reportLayout("cell-aligned splits (best case)", splits,
                 extraction);
  }

  std::printf("\nshape checks:\n");
  std::printf("  Hadoop connections scale multiplicatively with r: yes by "
              "construction (maps x r)\n");
  std::printf("  SIDR connections stay within ~2x of the split count while "
              "r grows 46x: see tables above\n");
  return 0;
}
