// Section 4.5: partition+ overhead micro-benchmark.
//
// The paper loads 6.48M intermediate key/value pairs into memory and
// measures only partitioning time: Hadoop's default partitioner took
// 200 ms (sd 18.8) and partition+ 223 ms (sd 21) — i.e. partition+'s
// routing adds ~12% to a step that is itself a rounding error against
// map tasks that run for tens of seconds to tens of minutes.
//
// This bench reproduces that comparison with google-benchmark over the
// same pair count, on Query 1's intermediate keyspace, for the default
// modulo partitioner, the byte-hash variant and partition+.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "mapreduce/partitioners.hpp"
#include "sidr/partition_plus.hpp"
#include "sim/workload.hpp"

namespace {

using namespace sidr;

constexpr std::size_t kPairs = 6'480'000;  // the paper's 6.48M
constexpr std::uint32_t kReducers = 22;

/// 6.48M keys drawn from Query 1's intermediate grid {3600,10,20,5}.
const std::vector<nd::Coord>& keys() {
  static const std::vector<nd::Coord> k = [] {
    std::vector<nd::Coord> v;
    v.reserve(kPairs);
    nd::Coord grid{3600, 10, 20, 5};
    nd::Index n = grid.volume();
    std::uint64_t x = 88172645463325252ULL;
    for (std::size_t i = 0; i < kPairs; ++i) {
      // xorshift over the dense instance space.
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      v.push_back(nd::delinearize(
          static_cast<nd::Index>(x % static_cast<std::uint64_t>(n)), grid));
    }
    return v;
  }();
  return k;
}

std::shared_ptr<const sh::ExtractionMap> query1Extraction() {
  static const auto ex = [] {
    sim::WorkloadSpec w = sim::query1Workload();
    return std::make_shared<const sh::ExtractionMap>(w.query, w.inputShape);
  }();
  return ex;
}

void BM_DefaultModuloPartitioner(benchmark::State& state) {
  mr::ModuloPartitioner part(nd::Coord{3600, 10, 20, 5});
  const auto& ks = keys();  // materialize outside the timed region
  benchmark::DoNotOptimize(ks.size());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const nd::Coord& k : keys()) acc += part.partition(k, kReducers);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}
BENCHMARK(BM_DefaultModuloPartitioner)->Unit(benchmark::kMillisecond);

void BM_HashPartitioner(benchmark::State& state) {
  mr::HashPartitioner part;
  const auto& ks = keys();
  benchmark::DoNotOptimize(ks.size());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const nd::Coord& k : keys()) acc += part.partition(k, kReducers);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}
BENCHMARK(BM_HashPartitioner)->Unit(benchmark::kMillisecond);

void BM_PartitionPlus(benchmark::State& state) {
  core::PartitionPlus part(query1Extraction(), kReducers, 0);
  const auto& ks = keys();
  benchmark::DoNotOptimize(ks.size());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const nd::Coord& k : keys()) acc += part.partition(k, kReducers);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}
BENCHMARK(BM_PartitionPlus)->Unit(benchmark::kMillisecond);

/// The routing decision that partition+ adds over modulo, in isolation
/// (instance lookup + granule division) — the paper's 23 ms delta.
void BM_PartitionPlusDeltaOnly(benchmark::State& state) {
  auto ex = query1Extraction();
  core::PartitionPlus part(ex, kReducers, 0);
  const auto& ks = keys();
  benchmark::DoNotOptimize(ks.size());
  for (auto _ : state) {
    std::uint64_t acc = 0;
    for (const nd::Coord& k : keys()) acc += part.keyblockOfInstance(k);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kPairs));
}
BENCHMARK(BM_PartitionPlusDeltaOnly)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
