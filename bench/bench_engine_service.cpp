// Multi-job service driver (DESIGN.md section 15): submits a fleet of
// 72 queued jobs to one EngineService — cycling every shuffle regime
// (in-memory, eager spill, hybrid budget, compressed spill, injected
// faults with recovery, barrier mode) plus terminally-failing and
// cancelled jobs — over ONE shared spill directory, and verifies the
// service is a correctness-preserving substrate:
//
//   * every successful job's collectAll() is bit-identical to a solo
//     Engine::run of the same spec, and its sort / shuffle counters
//     match the solo run exactly (no cross-job bleed);
//   * failed and cancelled jobs leave ZERO files in their spill
//     namespace;
//   * partial results are observable before completion (a gated
//     reducer pins one job mid-run while the driver reads its early
//     exact reduces).
//
// A second arm benchmarks the service's segment cache (DESIGN.md §16):
// the SAME fig10-style structural query submitted K times to a
// cache-enabled service. The first run is cold; every resubmission must
// hit the cache, run ZERO map tasks (pinned by trace span counts) and
// produce bit-identical output, with the measured warm speedup emitted
// as a metric. The fleet arm above runs with the cache OFF, so its
// numbers stay comparable across versions.
//
// Emits BENCH_engine_service.json: fleet wall seconds vs summed solo
// seconds, jobs/sec, outcome counts, the identical-output flag, plus
// cache_hit_rate / warm_speedup / warm_identical from the cache arm.
// Exits non-zero on any correctness violation, so tier1.sh can run it
// as a gate.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/engine_service.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace {

using namespace sidr;
namespace fs = std::filesystem;

bool sameCollected(const std::vector<mr::KeyValue>& xs,
                   const std::vector<mr::KeyValue>& ys) {
  if (xs.size() != ys.size()) return false;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].key != ys[i].key || xs[i].value != ys[i].value ||
        xs[i].represents != ys[i].represents) {
      return false;
    }
  }
  return true;
}

bool sameSortTotals(const mr::SortStats& a, const mr::SortStats& b) {
  return a.sortedSkips == b.sortedSkips &&
         a.comparisonSorts == b.comparisonSorts &&
         a.radixSorts == b.radixSorts && a.radixPasses == b.radixPasses &&
         a.radixPassesSkipped == b.radixPassesSkipped;
}

std::size_t filesUnder(const std::string& dir) {
  if (!fs::exists(dir)) return 0;
  std::size_t n = 0;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (entry.is_regular_file()) ++n;
  }
  return n;
}

/// Six successful job shapes covering every shuffle regime.
core::QueryPlan makePlan(int variant, const std::string& spillDir,
                         bool quick) {
  const int v = variant % 6;
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = (variant % 2 == 0) ? sh::OperatorKind::kMean
                            : sh::OperatorKind::kMedian;
  q.extractionShape = nd::Coord{static_cast<nd::Index>(2 + v % 3), 2, 2};
  const nd::Index rows = quick ? 12 : 24;
  const nd::Coord input{static_cast<nd::Index>(rows + 2 * (variant % 5)), 12,
                        8};
  core::PlanOptions opts;
  opts.system =
      (v == 5) ? core::SystemMode::kSciHadoop : core::SystemMode::kSidr;
  opts.numReducers = static_cast<std::uint32_t>(3 + variant % 4);
  opts.desiredSplitCount = quick ? 6 : 10;
  opts.numThreads = 2;  // solo baselines only; the service has its own
  if (v != 0) opts.spillDirectory = spillDir;
  if (v == 2) {
    opts.memoryBudgetBytes = 2 * mr::SegmentPagePool::kPageBytes;
    opts.mergeWindowBytes = 4096;
  }
  if (v == 3) opts.compressSpill = true;
  if (v == 4) {
    opts.faultPlan.failMap(0, 1);
    opts.faultPlan.failReduce(1, 1);
  }
  return core::QueryPlanner(q, input).plan(
      sh::temperatureField(static_cast<std::uint64_t>(101 + variant)), opts);
}

/// A job whose keyblock 0 exhausts its retry budget: terminally failed.
core::QueryPlan fatalPlan(const std::string& spillDir) {
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2, 2};
  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 3;
  opts.desiredSplitCount = 5;
  opts.numThreads = 2;
  opts.spillDirectory = spillDir;
  opts.faultPlan.maxAttempts = 2;
  opts.faultPlan.failReduce(0, 1).failReduce(0, 2);
  return core::QueryPlanner(q, nd::Coord{16, 10, 8})
      .plan(sh::temperatureField(7), opts);
}

// Rendezvous pinning one job mid-run so partial results are provably
// observable before completion (same shape as the test suite's gate).
struct ReduceGate {
  std::mutex m;
  std::condition_variable cv;
  bool blocked = false;
  bool open = false;
  void arriveAndWait() {
    std::unique_lock lk(m);
    blocked = true;
    cv.notify_all();
    cv.wait(lk, [this] { return open; });
  }
  bool waitUntilBlocked() {
    std::unique_lock lk(m);
    return cv.wait_for(lk, std::chrono::seconds(60),
                       [this] { return blocked; });
  }
  void release() {
    std::scoped_lock lk(m);
    open = true;
    cv.notify_all();
  }
};

class GatedReducer : public mr::Reducer {
 public:
  GatedReducer(std::unique_ptr<mr::Reducer> inner,
               std::shared_ptr<ReduceGate> gate)
      : inner_(std::move(inner)), gate_(std::move(gate)) {}
  void reduce(const nd::Coord& key, std::span<const mr::Value* const> values,
              mr::ReduceContext& ctx) override {
    if (gate_ != nullptr) {
      gate_->arriveAndWait();
      gate_ = nullptr;
    }
    inner_->reduce(key, values, ctx);
  }

 private:
  std::unique_ptr<mr::Reducer> inner_;
  std::shared_ptr<ReduceGate> gate_;
};

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::header(
      "EngineService fleet - 72 queued jobs, one shared spill directory",
      "multi-job serving substrate, DESIGN.md section 15; every job must "
      "be bit-identical to its solo Engine::run baseline");

  constexpr std::size_t kSuccessJobs = 64;
  constexpr std::size_t kFatalJobs = 4;
  constexpr std::size_t kCancelJobs = 4;

  const std::string dir =
      (fs::temp_directory_path() / "sidr_bench_engine_service").string();
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Solo baselines (namespaced alongside the service jobs: isolation is
  // part of what the fleet exercises).
  std::vector<core::QueryPlan> plans;
  std::vector<mr::JobResult> solos;
  double soloSecs = 0;
  for (std::size_t i = 0; i < kSuccessJobs; ++i) {
    plans.push_back(makePlan(static_cast<int>(i), dir, quick));
    mr::JobSpec spec = plans.back().spec;
    spec.jobId = 1000 + i;
    const auto t0 = std::chrono::steady_clock::now();
    solos.push_back(mr::Engine(std::move(spec)).run());
    soloSecs +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
  }
  core::QueryPlan fatal = fatalPlan(dir);

  mr::ServiceConfig config;
  config.numThreads = 8;
  config.maxConcurrentJobs = 6;
  config.policy = mr::SchedulingPolicy::kReduceFirst;
  mr::EngineService service(config);

  // The gated job goes in first so it holds an admission slot while the
  // driver observes its early exact reduces mid-run.
  auto gate = std::make_shared<ReduceGate>();
  core::QueryPlan gatedPlan = makePlan(1, dir, quick);
  {
    mr::ReducerFactory inner = std::move(gatedPlan.spec.reducerFactory);
    auto counter = std::make_shared<std::atomic<std::uint32_t>>(0);
    gatedPlan.spec.reducerFactory =
        [inner = std::move(inner), gate,
         counter]() -> std::unique_ptr<mr::Reducer> {
      std::unique_ptr<mr::Reducer> r = inner();
      if (counter->fetch_add(1) == 1) {
        return std::make_unique<GatedReducer>(std::move(r), gate);
      }
      return r;
    };
  }
  gatedPlan.spec.reduceSlots = 1;  // one reduce commits, the next parks
  const mr::JobResult gatedSolo = [&] {
    mr::JobSpec spec = makePlan(1, dir, quick).spec;
    spec.jobId = 999;
    spec.reduceSlots = 1;
    return mr::Engine(std::move(spec)).run();
  }();

  const auto t0 = std::chrono::steady_clock::now();
  mr::JobHandle gated = service.submit(std::move(gatedPlan.spec));

  std::vector<mr::JobHandle> handles;
  std::vector<mr::JobHandle> fatals;
  std::vector<mr::JobHandle> cancels;
  for (std::size_t i = 0; i < kSuccessJobs; ++i) {
    handles.push_back(service.submit(mr::JobSpec(plans[i].spec)));
    if (i % (kSuccessJobs / kFatalJobs) == 3) {
      fatals.push_back(service.submit(mr::JobSpec(fatal.spec)));
    }
    if (i % (kSuccessJobs / kCancelJobs) == 9) {
      cancels.push_back(service.submit(mr::JobSpec(plans[i].spec)));
    }
  }

  // --- partial results BEFORE completion, exact against solo ---
  int violations = 0;
  if (!gate->waitUntilBlocked()) {
    std::fprintf(stderr, "FAIL: gated job never reached its reducer\n");
    return 1;
  }
  const std::vector<mr::ReduceOutput> early = gated.partialResults();
  const bool earlyObserved = !gated.done() && !early.empty();
  for (const mr::ReduceOutput& out : early) {
    const mr::ReduceOutput& want = gatedSolo.outputs[out.keyblock];
    if (out.records.size() != want.records.size()) ++violations;
  }
  gate->release();

  // Cancels race the fleet: queued ones die instantly, admitted ones
  // drain — either way their namespace must end up empty.
  std::size_t cancelLanded = 0;
  for (mr::JobHandle& handle : cancels) {
    if (handle.cancel()) ++cancelLanded;
  }

  std::size_t identical = 0;
  std::size_t countersIsolated = 0;
  for (std::size_t i = 0; i < kSuccessJobs; ++i) {
    const mr::JobResult& result = handles[i].wait();
    if (sameCollected(result.collectAll(), solos[i].collectAll())) {
      ++identical;
    } else {
      ++violations;
      std::fprintf(stderr, "FAIL: job %zu output differs from solo run\n", i);
    }
    if (sameSortTotals(result.sortTotals, solos[i].sortTotals) &&
        result.shuffleConnections == solos[i].shuffleConnections &&
        result.recordsPerReducer == solos[i].recordsPerReducer) {
      ++countersIsolated;
    } else {
      ++violations;
      std::fprintf(stderr, "FAIL: job %zu counters bled across jobs\n", i);
    }
  }
  if (!sameCollected(gated.wait().collectAll(), gatedSolo.collectAll())) {
    ++violations;
    std::fprintf(stderr, "FAIL: gated job output differs from solo run\n");
  }
  for (mr::JobHandle& handle : fatals) {
    bool failed = false;
    try {
      handle.wait();
    } catch (const mr::JobError&) {
      failed = true;
    }
    const std::size_t leftover =
        filesUnder(dir + "/" + mr::jobSpillDirName(handle.id()));
    if (!failed || leftover != 0) {
      ++violations;
      std::fprintf(stderr, "FAIL: failed job %llu left %zu files\n",
                   static_cast<unsigned long long>(handle.id()), leftover);
    }
  }
  for (mr::JobHandle& handle : cancels) {
    try {
      handle.wait();
    } catch (const mr::JobCancelled&) {
    }
    const std::size_t leftover =
        handle.status() == mr::JobState::kCancelled
            ? filesUnder(dir + "/" + mr::jobSpillDirName(handle.id()))
            : 0;
    if (leftover != 0) {
      ++violations;
      std::fprintf(stderr, "FAIL: cancelled job %llu left %zu files\n",
                   static_cast<unsigned long long>(handle.id()), leftover);
    }
  }
  const double fleetSecs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  // --- warm-resubmission arm: the segment cache (DESIGN.md §16) ---
  //
  // One fig10-style mean query (in-memory shuffle: the zero-copy warm
  // path), submitted 1 cold + K warm times to a cache-enabled service.
  // Gates: every warm run bit-identical to the cold one, zero map
  // attempt spans, one cache-fetch span per skipped map.
  const std::size_t kWarmRuns = quick ? 4 : 8;
  double coldSecs = 0;
  double warmSecsTotal = 0;
  std::size_t warmIdentical = 0;
  std::size_t warmZeroMaps = 0;
  mr::ServiceStats cacheStats;
  {
    sh::StructuralQuery q;
    q.variable = "v";
    q.op = sh::OperatorKind::kMean;
    q.extractionShape = nd::Coord{2, 2, 2};
    core::PlanOptions opts;
    opts.system = core::SystemMode::kSidr;
    opts.numReducers = 4;
    opts.desiredSplitCount = quick ? 8 : 12;
    opts.recordTrace = true;
    opts.datasetId = "bench/fig10-warm";
    const nd::Coord input = quick ? nd::Coord{32, 16, 8} : nd::Coord{64, 24, 16};
    core::QueryPlan warmPlan =
        core::QueryPlanner(q, input).plan(sh::temperatureField(211), opts);
    const auto numMaps = static_cast<std::uint32_t>(warmPlan.spec.splits.size());

    mr::ServiceConfig warmConfig;
    warmConfig.numThreads = 4;
    warmConfig.segmentCacheEnabled = true;
    mr::EngineService warmService(warmConfig);

    const auto tc0 = std::chrono::steady_clock::now();
    mr::JobHandle coldHandle = warmService.submit(mr::JobSpec(warmPlan.spec));
    const mr::JobResult& cold = coldHandle.wait();
    coldSecs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - tc0)
            .count();
    const std::vector<mr::KeyValue> coldCollected = cold.collectAll();
    if (cold.cacheServedMaps != 0) {
      ++violations;
      std::fprintf(stderr, "FAIL: cold run claims cache-served maps\n");
    }

    for (std::size_t k = 0; k < kWarmRuns; ++k) {
      const auto tw0 = std::chrono::steady_clock::now();
      mr::JobHandle warmHandle = warmService.submit(mr::JobSpec(warmPlan.spec));
      const mr::JobResult& warm = warmHandle.wait();
      warmSecsTotal +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() - tw0)
              .count();
      if (sameCollected(warm.collectAll(), coldCollected)) {
        ++warmIdentical;
      } else {
        ++violations;
        std::fprintf(stderr, "FAIL: warm run %zu differs from cold\n", k);
      }
      std::size_t mapAttempts = 0;
      std::size_t cacheFetches = 0;
      for (const obs::Span& s : warm.trace.spans) {
        if (s.side != obs::TaskSide::kMap) continue;
        if (s.phase == obs::Phase::kTaskAttempt) ++mapAttempts;
        if (s.phase == obs::Phase::kCacheFetch) ++cacheFetches;
      }
      if (warm.cacheServedMaps == numMaps && mapAttempts == 0 &&
          cacheFetches == numMaps) {
        ++warmZeroMaps;
      } else {
        ++violations;
        std::fprintf(stderr,
                     "FAIL: warm run %zu executed maps (served=%u/%u, "
                     "attempts=%zu, fetches=%zu)\n",
                     k, warm.cacheServedMaps, numMaps, mapAttempts,
                     cacheFetches);
      }
    }
    cacheStats = warmService.stats();
  }
  const double warmSecsAvg = warmSecsTotal / static_cast<double>(kWarmRuns);
  const double warmSpeedup = warmSecsAvg > 0 ? coldSecs / warmSecsAvg : 0;
  const double cacheHitRate =
      cacheStats.cacheHits + cacheStats.cacheMisses > 0
          ? static_cast<double>(cacheStats.cacheHits) /
                static_cast<double>(cacheStats.cacheHits +
                                    cacheStats.cacheMisses)
          : 0;

  const mr::ServiceStats stats = service.stats();
  const std::size_t submitted = kSuccessJobs + kFatalJobs + kCancelJobs + 1;
  std::printf(
      "fleet: %zu jobs (%zu success shapes, %zu fatal, %zu cancel-raced, "
      "1 gated)\n",
      submitted, kSuccessJobs, kFatalJobs, kCancelJobs);
  std::printf("  %-28s %llu\n", "succeeded",
              static_cast<unsigned long long>(stats.succeeded));
  std::printf("  %-28s %llu\n", "failed",
              static_cast<unsigned long long>(stats.failed));
  std::printf("  %-28s %llu (of %zu cancel attempts, %zu landed)\n",
              "cancelled", static_cast<unsigned long long>(stats.cancelled),
              kCancelJobs, cancelLanded);
  std::printf("  %-28s %u\n", "peak concurrent jobs",
              stats.peakConcurrentJobs);
  std::printf("  %-28s %zu/%zu\n", "bit-identical to solo", identical,
              kSuccessJobs);
  std::printf("  %-28s %zu/%zu\n", "counters isolated", countersIsolated,
              kSuccessJobs);
  std::printf("  %-28s %s\n", "partials before completion",
              earlyObserved ? "yes" : "NO");
  std::printf("  %-28s %.2fs service vs %.2fs summed solo (%.2fx)\n",
              "wall time", fleetSecs, soloSecs, soloSecs / fleetSecs);

  std::printf("\nwarm resubmission: 1 cold + %zu warm of one fig10-style "
              "query (cache-enabled service)\n",
              kWarmRuns);
  std::printf("  %-28s %zu/%zu\n", "warm bit-identical", warmIdentical,
              kWarmRuns);
  std::printf("  %-28s %zu/%zu\n", "warm ran zero map tasks", warmZeroMaps,
              kWarmRuns);
  std::printf("  %-28s %.2f\n", "cache hit rate", cacheHitRate);
  std::printf("  %-28s %llu\n", "cache bytes served",
              static_cast<unsigned long long>(cacheStats.cacheBytesServed));
  std::printf("  %-28s %.2fms cold vs %.2fms warm avg (%.2fx)\n",
              "warm speedup", coldSecs * 1e3, warmSecsAvg * 1e3, warmSpeedup);

  bench::BenchJson json("engine_service");
  json.metric("jobs_submitted", static_cast<double>(stats.submitted));
  json.metric("jobs_succeeded", static_cast<double>(stats.succeeded));
  json.metric("jobs_failed", static_cast<double>(stats.failed));
  json.metric("jobs_cancelled", static_cast<double>(stats.cancelled));
  json.metric("peak_concurrent_jobs",
              static_cast<double>(stats.peakConcurrentJobs));
  json.metric("identical_outputs", static_cast<double>(identical));
  json.metric("counters_isolated", static_cast<double>(countersIsolated));
  json.metric("partials_before_completion", earlyObserved ? 1 : 0);
  json.metric("fleet_seconds", fleetSecs, "s");
  json.metric("solo_seconds_summed", soloSecs, "s");
  json.metric("jobs_per_sec", static_cast<double>(submitted) / fleetSecs);
  json.metric("cache_hit_rate", cacheHitRate);
  json.metric("cache_bytes_served",
              static_cast<double>(cacheStats.cacheBytesServed), "B");
  json.metric("warm_runs", static_cast<double>(kWarmRuns));
  json.metric("warm_identical", static_cast<double>(warmIdentical));
  json.metric("warm_zero_map_runs", static_cast<double>(warmZeroMaps));
  json.metric("cold_seconds", coldSecs, "s");
  json.metric("warm_seconds_avg", warmSecsAvg, "s");
  json.metric("warm_speedup", warmSpeedup, "x");
  json.write();
  std::printf("\nwrote BENCH_engine_service.json\n");

  if (!earlyObserved) {
    std::fprintf(stderr, "FAIL: no partial results observed mid-run\n");
    ++violations;
  }
  fs::remove_all(dir);
  return violations == 0 ? 0 : 1;
}
