// Figure 13: intermediate-key skew. A structural query whose
// intermediate keys preserve original coordinates yields all-even
// linearized keys; Hadoop's modulo partition function then assigns data
// to even-numbered reduce tasks only — odd tasks starve while even ones
// carry a double share.
//
// Paper headline numbers: stock's lightly-loaded reduce tasks finish
// almost immediately after the barrier while overloaded ones straggle;
// SIDR distributes evenly and completes the query 42% faster.
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Figure 13 - key skew: patterned (all-even) keys, 22 reducers",
                "stock: odd reducers get 0 keys, even ones 2x; SIDR "
                "balanced, ~42% faster");

  sim::WorkloadSpec w = sim::skewWorkload();
  auto stockBuilt = sim::buildWorkload(w, core::SystemMode::kSciHadoop, 22);
  auto sidrBuilt = sim::buildWorkload(w, core::SystemMode::kSidr, 22);

  // Per-reducer intermediate load under each partitioner.
  auto printLoads = [](const char* label, const sim::SimJob& job) {
    std::uint64_t mn = UINT64_MAX;
    std::uint64_t mx = 0;
    std::uint32_t empty = 0;
    for (std::uint64_t b : job.reduceInputBytes) {
      mn = std::min(mn, b);
      mx = std::max(mx, b);
      if (b == 0) ++empty;
    }
    std::printf("%-8s reducer load: min=%.2f GB max=%.2f GB empty=%u/22\n",
                label, static_cast<double>(mn) / 1e9,
                static_cast<double>(mx) / 1e9, empty);
    return empty;
  };
  std::uint32_t stockEmpty = printLoads("stock", stockBuilt.job);
  std::uint32_t sidrEmpty = printLoads("SIDR", sidrBuilt.job);

  auto stock = bench::runSim(w, core::SystemMode::kSciHadoop, 22,
                             "stock-22 (modulo)");
  auto ss = bench::runSim(w, core::SystemMode::kSidr, 22, "SIDR-22");

  std::printf("\nshape checks (paper -> measured):\n");
  std::printf("  odd reducers starve under modulo: paper 11/22 empty -> "
              "%u/22 empty (SIDR: %u empty)\n",
              stockEmpty, sidrEmpty);
  std::printf("  SIDR faster by: paper 42%% -> %.0f%%\n",
              100.0 * (1.0 - ss.result.totalTime / stock.result.totalTime));
  std::printf("  stock CDF jumps to ~0.5 at the barrier then straggles: "
              "t(50%%)=%.0fs t(100%%)=%.0fs\n",
              sim::timeAtFraction(stock.result.sortedReduceEnds(), 0.5),
              stock.result.totalTime);

  std::printf("\nseries (label,time_s,fraction_complete):\n");
  bench::printRunSeries(stock, true);
  bench::printRunSeries(ss, false);

  // ---- skew-ADAPTIVE arm (DESIGN.md §18) ----
  //
  // Figure 13's skew is a key-COUNT pathology that partition+ fixes by
  // construction. The complementary case is value-dependent LOAD skew:
  // the hotspot filter workload keeps key counts perfectly uniform but
  // concentrates filter survivors in the first 1/8 of the time axis.
  // The count-balanced deal is blind to it; the refinement pre-pass
  // (WorkloadSpec::skewAdapt) re-deals granules against the estimated
  // load.
  std::printf("\nskew-adaptive refinement (hotspot filter, 22 reducers):\n");
  sim::WorkloadSpec hot = sim::hotspotFilterWorkload();
  auto loadStats = [](const sim::SimJob& job) {
    std::uint64_t mx = 0;
    std::uint64_t total = 0;
    for (std::uint64_t b : job.reduceInputBytes) {
      mx = std::max(mx, b);
      total += b;
    }
    return std::pair<std::uint64_t, std::uint64_t>(mx, total);
  };
  auto uniformBuilt = sim::buildWorkload(hot, core::SystemMode::kSidr, 22);
  hot.skewAdapt = true;
  auto adaptedBuilt = sim::buildWorkload(hot, core::SystemMode::kSidr, 22);
  auto [uniformMax, uniformTotal] = loadStats(uniformBuilt.job);
  auto [adaptedMax, adaptedTotal] = loadStats(adaptedBuilt.job);
  std::printf("  count-balanced: max reduce input = %.2f GB (ideal %.2f GB)\n",
              static_cast<double>(uniformMax) / 1e9,
              static_cast<double>(uniformTotal) / 22.0 / 1e9);
  std::printf("  load-refined:   max reduce input = %.2f GB (%.2fx better)\n",
              static_cast<double>(adaptedMax) / 1e9,
              static_cast<double>(uniformMax) /
                  static_cast<double>(adaptedMax));

  bench::BenchJson json("fig13_key_skew");
  json.metric("stock_empty_reducers", stockEmpty, "count");
  json.metric("sidr_empty_reducers", sidrEmpty, "count");
  json.metric("stock_total_time", stock.result.totalTime, "s");
  json.metric("sidr_total_time", ss.result.totalTime, "s");
  json.metric("sidr_speedup_fraction",
              1.0 - ss.result.totalTime / stock.result.totalTime);
  json.metric("hotspot_uniform_max_reduce_bytes",
              static_cast<double>(uniformMax), "bytes");
  json.metric("hotspot_adapted_max_reduce_bytes",
              static_cast<double>(adaptedMax), "bytes");
  json.metric("hotspot_load_improvement",
              static_cast<double>(uniformMax) /
                  static_cast<double>(adaptedMax),
              "x");
  json.write();
  return 0;
}
