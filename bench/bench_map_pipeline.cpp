// Map-side pipeline micro-benchmark: per-record lexicographic baseline
// vs. the linearized-key fast path (DESIGN.md section 11).
//
// Three workloads cover the fast path's three wins:
//   * identity_pp   — identity mapper over partition+; row-major (already
//     sorted) emission, so the gain is batched reading + run-cached
//     granule routing + the O(n) sorted check replacing a full sort;
//   * transpose_mod — mapper transposes the key, so emission order is
//     NOT sorted and the (u64, index) permutation sort carries the win;
//   * struct_mean_pp — the real structural-mean operator (pre-aggregating
//     mapper + combiner), the fig10-style end-to-end map task.
//
// Arms per workload:
//   * legacy     — frozen copy of the seed map loop: per-record next(),
//     per-emit virtual partition(), full std::sort under lexicographic
//     Coord compares (the pre-PR behavior, kept as an honest baseline);
//   * fallback   — today's pipeline with keySpace absent (batched reads,
//     stable lex sort with sorted precheck);
//   * linearized — today's pipeline with keySpace set (the fast path).
//
// A fourth group, BM_SortMicro, isolates the sort stage: the LSD radix
// sort vs a frozen copy of the seed's (u64, index) comparison sort on
// identical packed buffers. Its results are written to a separate
// BENCH_sort_micro.json (see main) so the sort trajectory is trackable
// independently of the whole-pipeline numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "bench_common.hpp"
#include "mapreduce/map_pipeline.hpp"
#include "mapreduce/partitioners.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "scihadoop/operators.hpp"
#include "scihadoop/record_reader.hpp"
#include "sidr/partition_plus.hpp"

namespace {

using namespace sidr;

constexpr std::uint32_t kReducers = 16;

double cellValue(const nd::Coord& c) {
  double v = 1.0;
  for (std::size_t d = 0; d < c.rank(); ++d) {
    v += static_cast<double>(c[d]) * 0.25;
  }
  return v;
}

/// Emits every input record unchanged — maximal pressure on the
/// read/emit/route path itself.
class IdentityMapper final : public mr::Mapper {
 public:
  void map(const nd::Coord& key, double value, mr::MapContext& ctx) override {
    ctx.emit(key, mr::Value::scalar(value), 1);
  }
};

/// Emits the reversed coordinate: a row-major input stream becomes a
/// maximally unsorted intermediate stream, putting the whole load on
/// the sort stage.
class TransposeMapper final : public mr::Mapper {
 public:
  void map(const nd::Coord& key, double value, mr::MapContext& ctx) override {
    nd::Coord t = key;
    for (std::size_t d = 0; d < key.rank(); ++d) {
      t[d] = key[key.rank() - 1 - d];
    }
    ctx.emit(t, mr::Value::scalar(value), 1);
  }
};

struct Workload {
  mr::InputSplit split;
  mr::RecordReaderFactory readerFactory;
  mr::MapperFactory mapperFactory;
  mr::CombinerFactory combinerFactory;  // may be null
  std::shared_ptr<const mr::Partitioner> partitioner;
  nd::Coord keySpace;
  std::int64_t records = 0;
};

Workload identityPartitionPlus() {
  const nd::Coord inputShape{48, 64, 128};
  sh::StructuralQuery q;
  q.extractionShape = nd::Coord{1, 1, 1};  // grid == input: identity keys
  auto ex = std::make_shared<const sh::ExtractionMap>(q, inputShape);
  Workload w;
  w.split = mr::InputSplit::single(0, nd::Region::wholeSpace(inputShape));
  w.readerFactory = sh::makeSyntheticReaderFactory(cellValue);
  w.mapperFactory = [] { return std::make_unique<IdentityMapper>(); };
  w.partitioner = std::make_shared<const core::PartitionPlus>(ex, kReducers);
  w.keySpace = ex->intermediateSpaceShape();
  w.records = inputShape.volume();
  return w;
}

Workload transposeModulo() {
  const nd::Coord inputShape{64, 64, 96};
  const nd::Coord keySpace{96, 64, 64};  // reversed input shape
  Workload w;
  w.split = mr::InputSplit::single(0, nd::Region::wholeSpace(inputShape));
  w.readerFactory = sh::makeSyntheticReaderFactory(cellValue);
  w.mapperFactory = [] { return std::make_unique<TransposeMapper>(); };
  w.partitioner = std::make_shared<const mr::ModuloPartitioner>(keySpace);
  w.keySpace = keySpace;
  w.records = inputShape.volume();
  return w;
}

Workload structuralMeanPartitionPlus() {
  const nd::Coord inputShape{64, 64, 96};
  sh::StructuralQuery q;
  q.op = sh::OperatorKind::kMean;
  q.extractionShape = nd::Coord{2, 2, 4};
  auto ex = std::make_shared<const sh::ExtractionMap>(q, inputShape);
  Workload w;
  w.split = mr::InputSplit::single(0, nd::Region::wholeSpace(inputShape));
  w.readerFactory = sh::makeSyntheticReaderFactory(cellValue);
  w.mapperFactory = sh::makeStructuralMapperFactory(q, ex);
  w.partitioner = std::make_shared<const core::PartitionPlus>(ex, kReducers);
  w.keySpace = ex->intermediateSpaceShape();
  w.records = inputShape.volume();
  return w;
}

// ---- frozen legacy map loop (seed behavior, the baseline) ----
namespace legacy {

class BufferingMapContext final : public mr::MapContext {
 public:
  BufferingMapContext(const mr::Partitioner& partitioner,
                      std::uint32_t numReducers)
      : partitioner_(partitioner), buffers_(numReducers) {}

  void emit(const nd::Coord& key, mr::Value value,
            std::uint64_t represents) override {
    std::uint32_t kb = partitioner_.partition(
        key, static_cast<std::uint32_t>(buffers_.size()));
    buffers_[kb].push_back(mr::KeyValue{key, std::move(value), represents});
  }

  std::vector<std::vector<mr::KeyValue>>& buffers() noexcept {
    return buffers_;
  }

 private:
  const mr::Partitioner& partitioner_;
  std::vector<std::vector<mr::KeyValue>> buffers_;
};

std::vector<mr::Segment> runMap(const Workload& w, mr::Mapper& mapper,
                                const mr::Combiner* combiner) {
  BufferingMapContext ctx(*w.partitioner, kReducers);
  nd::Coord key;
  double value = 0;
  for (const nd::Region& region : w.split.regions) {
    auto reader = w.readerFactory(region);
    while (reader->next(key, value)) mapper.map(key, value, ctx);
  }
  mapper.finish(ctx);
  std::vector<mr::Segment> segs;
  segs.reserve(kReducers);
  for (std::uint32_t kb = 0; kb < kReducers; ++kb) {
    // The seed's Segment::sortByKey: unconditional std::sort under
    // lexicographic Coord compares, swapping whole KeyValues.
    std::vector<mr::KeyValue>& buf = ctx.buffers()[kb];
    std::sort(buf.begin(), buf.end(),
              [](const mr::KeyValue& a, const mr::KeyValue& b) {
                return a.key < b.key;
              });
    mr::Segment seg(0, kb, std::move(buf));
    if (combiner != nullptr) seg.combineWith(*combiner);
    segs.push_back(std::move(seg));
  }
  return segs;
}

}  // namespace legacy

enum class Arm { kLegacy, kFallback, kLinearized, kTraced };

void BM_MapPipeline(benchmark::State& state, Workload (*make)(), Arm arm) {
  const Workload w = make();
  for (auto _ : state) {
    auto mapper = w.mapperFactory();
    std::unique_ptr<mr::Combiner> combiner =
        w.combinerFactory ? w.combinerFactory() : nullptr;
    std::vector<mr::Segment> segs;
    switch (arm) {
      case Arm::kLegacy:
        segs = legacy::runMap(w, *mapper, combiner.get());
        break;
      case Arm::kFallback:
        segs = mr::runMapPipeline(w.split, 0, w.readerFactory, *mapper,
                                  *w.partitioner, kReducers, combiner.get(),
                                  nd::Coord());
        break;
      case Arm::kLinearized:
        segs = mr::runMapPipeline(w.split, 0, w.readerFactory, *mapper,
                                  *w.partitioner, kReducers, combiner.get(),
                                  w.keySpace);
        break;
      case Arm::kTraced: {
        // The fast path with span recording ON: the traced-vs-linearized
        // delta is the ENABLED recorder's cost (recorder construction and
        // teardown included); linearized-vs-seed trend covers the
        // disabled case, whose span scopes are a TLS load and a branch.
        obs::TraceRecorder recorder;
        obs::ScopedRecorder scoped(&recorder);
        segs = mr::runMapPipeline(w.split, 0, w.readerFactory, *mapper,
                                  *w.partitioner, kReducers, combiner.get(),
                                  w.keySpace);
        break;
      }
    }
    benchmark::DoNotOptimize(segs.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * w.records);
}

BENCHMARK_CAPTURE(BM_MapPipeline, identity_pp_legacy, &identityPartitionPlus,
                  Arm::kLegacy)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, identity_pp_fallback, &identityPartitionPlus,
                  Arm::kFallback)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, identity_pp_linearized,
                  &identityPartitionPlus, Arm::kLinearized)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, transpose_mod_legacy, &transposeModulo,
                  Arm::kLegacy)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, transpose_mod_fallback, &transposeModulo,
                  Arm::kFallback)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, transpose_mod_linearized, &transposeModulo,
                  Arm::kLinearized)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, struct_mean_pp_legacy,
                  &structuralMeanPartitionPlus, Arm::kLegacy)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, struct_mean_pp_fallback,
                  &structuralMeanPartitionPlus, Arm::kFallback)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, struct_mean_pp_linearized,
                  &structuralMeanPartitionPlus, Arm::kLinearized)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, identity_pp_traced, &identityPartitionPlus,
                  Arm::kTraced)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, transpose_mod_traced, &transposeModulo,
                  Arm::kTraced)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_MapPipeline, struct_mean_pp_traced,
                  &structuralMeanPartitionPlus, Arm::kTraced)
    ->Unit(benchmark::kMillisecond);

// ---- sort-only micro arm: radix vs frozen comparison sort ----

/// The seed's Segment::sortPacked body, frozen verbatim as the
/// comparison baseline (same oracle tests/sort_spill_parity_test.cpp
/// pins the radix sort against for correctness).
void frozenComparisonSortPacked(std::vector<mr::PackedRecord>& packed) {
  struct LinIdx {
    std::uint64_t lin;
    std::uint32_t idx;
  };
  std::vector<LinIdx> order(packed.size());
  for (std::size_t i = 0; i < packed.size(); ++i) {
    order[i] = {packed[i].lin, static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(), [](const LinIdx& a, const LinIdx& b) {
    return a.lin < b.lin || (a.lin == b.lin && a.idx < b.idx);
  });
  std::vector<mr::PackedRecord> sorted;
  sorted.reserve(packed.size());
  for (const LinIdx& li : order) sorted.push_back(packed[li.idx]);
  packed = std::move(sorted);
}

/// Shuffled keys over a 4n span — the transpose-workload shape: a few
/// low lin bytes vary, the high ones are constant, so the radix sort's
/// pass skipping engages exactly as it does on real map output.
std::vector<mr::PackedRecord> makeSortInput(std::size_t n) {
  std::mt19937_64 rng(42);
  const std::uint64_t span = 4 * static_cast<std::uint64_t>(n);
  std::vector<mr::PackedRecord> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i].lin = rng() % span;
    v[i].represents = 1;
    v[i].kind = mr::ValueKind::kScalar;
    v[i].payload.scalar = static_cast<double>(i);
  }
  return v;
}

void BM_SortMicro(benchmark::State& state, bool radix) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::vector<mr::PackedRecord> base = makeSortInput(n);
  std::vector<mr::PackedRecord> buf;
  for (auto _ : state) {
    state.PauseTiming();
    buf = base;
    state.ResumeTiming();
    if (radix) {
      mr::radixSortPacked(buf);
    } else {
      frozenComparisonSortPacked(buf);
    }
    benchmark::DoNotOptimize(buf.data());
    benchmark::ClobberMemory();
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n));
}

BENCHMARK_CAPTURE(BM_SortMicro, radix, true)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_SortMicro, comparison, false)
    ->Arg(1 << 16)->Arg(1 << 20)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  // Same contract as bench::runBenchmarksWithJson, but split across two
  // JSON files: the pipeline arms keep BENCH_map_pipeline.json and the
  // sort micro-arm gets its own BENCH_sort_micro.json.
  static std::string quickFlag = "--benchmark_min_time=0.01";
  std::vector<char*> args(argv, argv + argc);
  for (char*& a : args) {
    if (std::string(a) == "--quick") a = quickFlag.data();
  }
  int n = static_cast<int>(args.size());
  ::benchmark::Initialize(&n, args.data());
  {
    sidr::bench::BenchJson json("map_pipeline");
    sidr::bench::JsonCapturingReporter reporter(json);
    ::benchmark::RunSpecifiedBenchmarks(&reporter, "BM_MapPipeline.*");
    json.write();
  }
  {
    sidr::bench::BenchJson json("sort_micro");
    sidr::bench::JsonCapturingReporter reporter(json);
    ::benchmark::RunSpecifiedBenchmarks(&reporter, "BM_SortMicro.*");
    json.write();
  }
  // Per-phase breakdown of ONE traced execution of each workload,
  // written as BENCH_trace_phases.json: where a map task's time goes
  // (read / map / sortPacked), straight from the span recorder.
  {
    sidr::bench::BenchJson json("trace_phases");
    const std::pair<const char*, Workload (*)()> workloads[] = {
        {"identity_pp", &identityPartitionPlus},
        {"transpose_mod", &transposeModulo},
        {"struct_mean_pp", &structuralMeanPartitionPlus},
    };
    for (const auto& [label, make] : workloads) {
      const Workload w = make();
      auto mapper = w.mapperFactory();
      std::unique_ptr<mr::Combiner> combiner =
          w.combinerFactory ? w.combinerFactory() : nullptr;
      obs::TraceRecorder recorder;
      {
        obs::ScopedRecorder scoped(&recorder);
        auto segs = mr::runMapPipeline(w.split, 0, w.readerFactory, *mapper,
                                       *w.partitioner, kReducers,
                                       combiner.get(), w.keySpace);
        benchmark::DoNotOptimize(segs.data());
      }
      const obs::Trace trace = recorder.collect();
      for (const obs::PhaseTotal& pt : obs::phaseTotals(trace)) {
        const std::string row = std::string(label) + "." +
                                obs::taskSideName(pt.side) + ":" +
                                obs::phaseName(pt.phase);
        json.metric(row + ".seconds", pt.seconds, "s");
        json.metric(row + ".spans", static_cast<double>(pt.spans));
        json.metric(row + ".records", static_cast<double>(pt.records));
      }
    }
    json.write();
  }
  ::benchmark::Shutdown();
  return 0;
}
