// Microbenchmark for the map-output segment codec and the in-memory
// shuffle path.
//
// `legacy::` freezes the original byte-at-a-time codec (push_back per
// byte on serialize, shift-loop per word on deserialize) so the bulk
// codec in `Segment` can be compared against it in one binary. The
// engine benchmark runs a fig10-style reduce sweep on the real
// in-process engine with the in-memory (zero-copy) segment store.
#include <benchmark/benchmark.h>

#include <cstring>
#include <random>
#include <stdexcept>

#include "bench_common.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/segment.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace sidr::mr {
namespace legacy {

// --- frozen copy of the pre-bulk codec, for baseline comparison ---

void putU64(std::vector<std::byte>& out, std::uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::byte>((x >> (b * 8)) & 0xff));
  }
}

void putF64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint64_t getU64() {
    if (pos_ + 8 > bytes_.size()) {
      throw std::out_of_range("legacy deserialize: truncated");
    }
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(b)])
           << (b * 8);
    }
    pos_ += 8;
    return x;
  }

  double getF64() {
    std::uint64_t bits = getU64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

std::vector<std::byte> serialize(const Segment& seg) {
  std::vector<std::byte> out;
  const SegmentHeader& h = seg.header();
  putU64(out, h.mapTask);
  putU64(out, h.keyblock);
  putU64(out, h.numRecords);
  putU64(out, h.represents);
  for (const KeyValue& kv : seg.records()) {
    putU64(out, kv.key.rank());
    for (nd::Index c : kv.key) putU64(out, static_cast<std::uint64_t>(c));
    putU64(out, kv.represents);
    putU64(out, static_cast<std::uint64_t>(kv.value.kind()));
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        putF64(out, kv.value.asScalar());
        break;
      case ValueKind::kPartial: {
        const Partial& p = kv.value.asPartial();
        putF64(out, p.sum);
        putF64(out, p.min);
        putF64(out, p.max);
        putU64(out, static_cast<std::uint64_t>(p.count));
        break;
      }
      case ValueKind::kList: {
        const auto& xs = kv.value.asList();
        putU64(out, xs.size());
        for (double x : xs) putF64(out, x);
        break;
      }
    }
  }
  return out;
}

Segment deserialize(std::span<const std::byte> bytes) {
  Cursor cur(bytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.getU64());
  h.keyblock = static_cast<std::uint32_t>(cur.getU64());
  h.numRecords = cur.getU64();
  h.represents = cur.getU64();
  std::vector<KeyValue> records;
  records.reserve(h.numRecords);
  for (std::uint64_t i = 0; i < h.numRecords; ++i) {
    KeyValue kv;
    std::uint64_t rank = cur.getU64();
    nd::Coord key = nd::Coord::zeros(rank);
    for (std::uint64_t d = 0; d < rank; ++d) {
      key[d] = static_cast<nd::Index>(cur.getU64());
    }
    kv.key = key;
    kv.represents = cur.getU64();
    auto kind = static_cast<ValueKind>(cur.getU64());
    switch (kind) {
      case ValueKind::kScalar:
        kv.value = Value::scalar(cur.getF64());
        break;
      case ValueKind::kPartial: {
        Partial p;
        p.sum = cur.getF64();
        p.min = cur.getF64();
        p.max = cur.getF64();
        p.count = static_cast<std::int64_t>(cur.getU64());
        kv.value = Value::partial(p);
        break;
      }
      case ValueKind::kList: {
        std::uint64_t n = cur.getU64();
        std::vector<double> xs(n);
        for (auto& x : xs) x = cur.getF64();
        kv.value = Value::list(std::move(xs));
        break;
      }
      default:
        throw std::runtime_error("legacy deserialize: bad value kind");
    }
    records.push_back(std::move(kv));
  }
  return Segment(h.mapTask, h.keyblock, std::move(records));
}

}  // namespace legacy

namespace {

/// Benchmark workloads. Mixed: rank-3 keys, alternating scalar /
/// partial / short-list values — an algebraic-query shuffle. Median:
/// every value is a ~32-63 element list — what a holistic operator
/// (paper Query 1, median over windspeed) actually ships, where the
/// payload dwarfs the per-record framing.
enum Workload : std::int64_t { kMixed = 0, kMedian = 1 };

Segment makeSegment(std::size_t numRecords, Workload workload) {
  std::mt19937_64 rng(42);
  std::vector<KeyValue> records;
  records.reserve(numRecords);
  for (std::size_t i = 0; i < numRecords; ++i) {
    KeyValue kv;
    kv.key = nd::Coord{static_cast<nd::Index>(rng() % 512),
                       static_cast<nd::Index>(rng() % 128),
                       static_cast<nd::Index>(rng() % 64)};
    kv.represents = 1 + rng() % 32;
    if (workload == kMedian) {
      std::vector<double> xs(32 + rng() % 32);
      for (auto& x : xs) x = static_cast<double>(rng() % 1000) / 7.0;
      kv.represents = xs.size();
      kv.value = Value::list(std::move(xs));
    } else {
      switch (i % 3) {
        case 0:
          kv.value = Value::scalar(static_cast<double>(rng() % 1000) / 7.0);
          break;
        case 1:
          kv.value = Value::partial(
              Partial::ofValue(static_cast<double>(rng() % 1000) / 7.0));
          break;
        default: {
          std::vector<double> xs(1 + rng() % 6);
          for (auto& x : xs) x = static_cast<double>(rng() % 1000) / 7.0;
          kv.value = Value::list(std::move(xs));
          break;
        }
      }
    }
    records.push_back(std::move(kv));
  }
  Segment seg(3, 1, std::move(records));
  seg.sortByKey();
  return seg;
}

Segment makeSegment(const benchmark::State& state) {
  return makeSegment(static_cast<std::size_t>(state.range(0)),
                     static_cast<Workload>(state.range(1)));
}

void BM_LegacySerialize(benchmark::State& state) {
  Segment seg = makeSegment(state);
  std::size_t bytes = legacy::serialize(seg).size();
  for (auto _ : state) {
    auto out = legacy::serialize(seg);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}

void BM_BulkSerialize(benchmark::State& state) {
  Segment seg = makeSegment(state);
  std::size_t bytes = seg.serialize().size();
  for (auto _ : state) {
    auto out = seg.serialize();
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}

void BM_LegacyDeserialize(benchmark::State& state) {
  Segment seg = makeSegment(state);
  auto bytes = seg.serialize();
  for (auto _ : state) {
    Segment back = legacy::deserialize(bytes);
    benchmark::DoNotOptimize(back.records().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}

void BM_BulkDeserialize(benchmark::State& state) {
  Segment seg = makeSegment(state);
  auto bytes = seg.serialize();
  for (auto _ : state) {
    Segment back = Segment::deserialize(bytes);
    benchmark::DoNotOptimize(back.records().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes.size()) *
                          state.iterations());
}

void BM_LegacyRoundTrip(benchmark::State& state) {
  Segment seg = makeSegment(state);
  std::size_t bytes = legacy::serialize(seg).size();
  for (auto _ : state) {
    auto out = legacy::serialize(seg);
    Segment back = legacy::deserialize(out);
    benchmark::DoNotOptimize(back.records().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * 2 *
                          state.iterations());
}

void BM_BulkRoundTrip(benchmark::State& state) {
  Segment seg = makeSegment(state);
  std::size_t bytes = seg.serialize().size();
  for (auto _ : state) {
    auto out = seg.serialize();
    Segment back = Segment::deserialize(out);
    benchmark::DoNotOptimize(back.records().data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) * 2 *
                          state.iterations());
}

/// The map side's actual spill pattern: serializeInto() with one
/// buffer reused across segments, so steady-state encoding never
/// allocates at all.
void BM_BulkSerializeReuse(benchmark::State& state) {
  Segment seg = makeSegment(state);
  std::size_t bytes = seg.serializedSize();
  std::vector<std::byte> buf;
  for (auto _ : state) {
    seg.serializeInto(buf);
    benchmark::DoNotOptimize(buf.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes) *
                          state.iterations());
}

#define CODEC_WORKLOADS(bm)                                      \
  BENCHMARK(bm)                                                  \
      ->ArgNames({"records", "median"})                          \
      ->Args({1000, kMixed})                                     \
      ->Args({20000, kMixed})                                    \
      ->Args({4000, kMedian})

CODEC_WORKLOADS(BM_LegacySerialize);
CODEC_WORKLOADS(BM_BulkSerialize);
CODEC_WORKLOADS(BM_BulkSerializeReuse);
CODEC_WORKLOADS(BM_LegacyDeserialize);
CODEC_WORKLOADS(BM_BulkDeserialize);
CODEC_WORKLOADS(BM_LegacyRoundTrip);
CODEC_WORKLOADS(BM_BulkRoundTrip);

#undef CODEC_WORKLOADS

/// Fig10-style reduce sweep on the REAL engine with the in-memory
/// segment store: a mean query over a 3-D grid, SIDR scheduling,
/// reducer count as the benchmark argument. Wall-clock here is
/// dominated by map compute + shuffle + merge, so the zero-copy
/// in-memory fetch shows up directly.
void BM_EngineInMemoryReduceSweep(benchmark::State& state) {
  nd::Coord input{96, 48, 8};
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMedian;  // holistic: all records shuffle
  q.extractionShape = nd::Coord{4, 4, 2};
  sh::ValueFn fn = sh::temperatureField(11);

  std::uint64_t shuffleBytes = 0;
  for (auto _ : state) {
    core::QueryPlanner planner(q, input);
    core::PlanOptions opts;
    opts.system = core::SystemMode::kSidr;
    opts.numReducers = static_cast<std::uint32_t>(state.range(0));
    opts.desiredSplitCount = 24;
    opts.numThreads = 4;
    JobResult result = Engine(planner.plan(fn, opts).spec).run();
    benchmark::DoNotOptimize(result.outputs.data());
    shuffleBytes = result.shuffleBytes;
  }
  state.counters["shuffleBytes"] =
      static_cast<double>(shuffleBytes);
}

BENCHMARK(BM_EngineInMemoryReduceSweep)
    ->Arg(4)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace sidr::mr

int main(int argc, char** argv) {
  return sidr::bench::runBenchmarksWithJson("segment_codec", argc, argv);
}
