// Figure 9: Map and Reduce task completion over time for Query 1
// (median over {7200,360,720,50} windspeed, eshape {2,36,36,10}) run
// with Hadoop, SciHadoop and SIDR at 22 Reduce tasks.
//
// Paper headline numbers:
//   SIDR first result   ~625 s
//   SciHadoop first result ~1,132 s ; total 1,250 s
//   Hadoop first result   ~2,797 s  (2.5x slower than SIDR's query)
//   SIDR total           1,264 s  (slightly > SciHadoop: the last
//                         contiguous keyblock drains the final maps)
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Figure 9 - early results: Query 1, 22 reducers",
                "H first ~2797s | SH first ~1132s, total 1250s | "
                "SS first ~625s, total 1264s");

  sim::WorkloadSpec w = sim::query1Workload();
  auto h = bench::runSim(w, core::SystemMode::kHadoop, 22, "Hadoop-22");
  auto sh = bench::runSim(w, core::SystemMode::kSciHadoop, 22, "SciHadoop-22");
  auto ss = bench::runSim(w, core::SystemMode::kSidr, 22, "SIDR-22");

  std::printf("\nshape checks (paper -> measured):\n");
  std::printf("  Hadoop/SciHadoop total time ratio: paper 2.24x -> %.2fx\n",
              h.result.totalTime / sh.result.totalTime);
  std::printf("  SIDR first result vs SciHadoop total: paper 0.50 -> %.2f\n",
              ss.result.firstResult / sh.result.totalTime);
  std::printf("  SIDR first result vs SciHadoop first: paper 0.55 -> %.2f\n",
              ss.result.firstResult / sh.result.firstResult);
  std::printf("  SIDR total vs SciHadoop total: paper 1.01 -> %.2f\n",
              ss.result.totalTime / sh.result.totalTime);

  std::printf("\nseries (label,time_s,fraction_complete):\n");
  bench::printRunSeries(h, true);
  bench::printRunSeries(sh, true);
  bench::printRunSeries(ss, true);
  return 0;
}
