// Ablation: failure recovery via dependency-bounded map re-execution
// (paper section 6, future work: "re-execute subsets of Map tasks in
// the event of a Reduce task failure in place of persisting all
// intermediate data to disk. Our hypothesis is that the performance
// savings in the non-failure case will offset said re-execution cost.")
//
// This bench runs the REAL in-process engine (not the simulator) on a
// scaled Query-1-like median workload, injecting failures at BOTH sites
// (a map attempt and a reduce attempt, via the FaultPlan), under both
// recovery models, and reports re-executed maps and wall time; then
// uses the simulator to mirror the same two failure sites and size the
// paper-scale trade-off: persist-all pays a full intermediate spill
// every run, recompute pays |I_l| map re-executions only when a failure
// happens.
#include <chrono>

#include "mapreduce/engine.hpp"
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Ablation - recovery: persist-all vs recompute-deps",
                "section 6 (future work), implemented: re-execute only "
                "I_l on reduce failure");

  // Real engine, scaled geometry: median over {128, 24, 10}.
  sh::StructuralQuery q;
  q.variable = "v";
  q.op = sh::OperatorKind::kMedian;
  q.extractionShape = nd::Coord{2, 6, 5};
  core::QueryPlanner planner(q, nd::Coord{128, 24, 10});

  // Engine: failures injected at both sites — map 3 dies on its first
  // attempt (retried), reduce 1 dies on its first attempt (recovered
  // per model).
  std::printf("%-18s %6s %6s %11s %12s %10s\n", "recovery", "mFail",
              "rFail", "maps re-run", "deps of kb1", "wall ms");
  for (auto [model, label] :
       {std::pair{mr::RecoveryModel::kPersistAll, "persist-all"},
        std::pair{mr::RecoveryModel::kRecomputeDeps, "recompute-deps"}}) {
    core::PlanOptions opts;
    opts.system = core::SystemMode::kSidr;
    opts.numReducers = 8;
    opts.desiredSplitCount = 32;
    opts.recovery = model;
    opts.faultPlan.failMap(3).failReduce(1);
    core::QueryPlan plan = planner.plan(sh::windspeedField(), opts);
    std::size_t deps = plan.dependencies.keyblockToSplits[1].size();
    auto t0 = std::chrono::steady_clock::now();
    mr::JobResult res = mr::Engine(std::move(plan.spec)).run();
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    std::printf("%-18s %6u %6u %11u %12zu %10.1f\n", label, res.mapFailures,
                res.reduceFailures, res.mapsReExecuted, deps, ms);
    if (res.annotationViolations != 0) {
      std::printf("ANNOTATION VIOLATIONS: %u\n", res.annotationViolations);
      return 1;
    }
  }

  // Paper-scale measurement on the simulated testbed (Query 1, 66 r).
  sim::WorkloadSpec w = sim::query1Workload();
  sim::ClusterConfig cfg;

  auto persisted = sim::buildWorkload(w, core::SystemMode::kSidr, 66);
  sim::SimResult persistedRes = sim::ClusterSim(cfg, persisted.job).run();

  auto volatileOk = sim::buildWorkload(w, core::SystemMode::kSidr, 66);
  volatileOk.job.volatileIntermediate = true;
  sim::SimResult volatileOkRes = sim::ClusterSim(cfg, volatileOk.job).run();

  auto volatileFail = sim::buildWorkload(w, core::SystemMode::kSidr, 66);
  volatileFail.job.volatileIntermediate = true;
  volatileFail.job.failOnceReduces = {33};
  sim::SimResult volatileFailRes =
      sim::ClusterSim(cfg, volatileFail.job).run();

  // Map-site failure, mirroring the engine's map-attempt injection: the
  // failed attempt retries before any dependent reduce can start, so
  // the penalty is one map re-execution on the critical path.
  auto mapFail = sim::buildWorkload(w, core::SystemMode::kSidr, 66);
  mapFail.job.volatileIntermediate = true;
  mapFail.job.failOnceMaps = {7};
  sim::SimResult mapFailRes = sim::ClusterSim(cfg, mapFail.job).run();

  std::printf(
      "\npaper-scale simulation (Query 1, 66 reducers, 24 nodes):\n"
      "  persist-all, no failure:    total %7.0f s\n"
      "  volatile,    no failure:    total %7.0f s (saves %.0f s of "
      "spill I/O per run)\n"
      "  volatile, 1 reduce failure: total %7.0f s, %u maps re-run "
      "(failure penalty %.0f s)\n"
      "  volatile, 1 map failure:    total %7.0f s, %u map retried "
      "(failure penalty %.0f s)\n",
      persistedRes.totalTime, volatileOkRes.totalTime,
      persistedRes.totalTime - volatileOkRes.totalTime,
      volatileFailRes.totalTime, volatileFailRes.mapsReExecuted,
      volatileFailRes.totalTime - volatileOkRes.totalTime,
      mapFailRes.totalTime, mapFailRes.mapsReExecuted,
      mapFailRes.totalTime - volatileOkRes.totalTime);
  double saving = persistedRes.totalTime - volatileOkRes.totalTime;
  double penalty = volatileFailRes.totalTime - volatileOkRes.totalTime;
  std::printf(
      "  break-even: recompute wins below a ~%.0f%% per-run failure "
      "rate — supporting the paper's hypothesis that the non-failure "
      "saving offsets the re-execution cost\n",
      100.0 * std::min(1.0, saving / std::max(penalty, 1e-9)));
  return 0;
}
