// Ablation: early results vs early ESTIMATES (paper section 5,
// MapReduce Online / HOP).
//
// HOP starts all reduces at job begin and pushes map output to them
// directly, emitting running estimates of the final answer at fixed
// fractions of the data (25/50/75/100%). The paper's critique: the
// estimates are approximations (downstream computations must re-run
// after every emission), only distributive operators are supported,
// and each snapshot re-processes everything fetched so far. SIDR's
// early results are CORRECT finals for their keyblocks — consumed once.
//
// This bench runs Query 1's geometry with HOP-style snapshots against
// SIDR's correct-partial-result curve on the same simulated testbed.
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Ablation - HOP estimates vs SIDR correct early results",
                "section 5: HOP emits estimates at 25/50/75% of the data; "
                "SIDR emits exact keyblocks that never need re-running");

  sim::WorkloadSpec w = sim::query1Workload();

  // HOP over the stock (SciHadoop-read-path) system.
  auto hopBuilt = sim::buildWorkload(w, core::SystemMode::kSciHadoop, 22);
  hopBuilt.job.hopEstimates = true;
  sim::SimResult hop = sim::ClusterSim(sim::ClusterConfig{}, hopBuilt.job).run();
  std::printf("HOP-22 estimates (fraction of maps -> emitted at):\n");
  for (const auto& [frac, t] : hop.estimates) {
    std::printf("  %3.0f%% -> %6.0f s (approximate answer)\n", 100 * frac, t);
  }
  std::printf("  final -> %6.0f s (first exact output)\n", hop.firstResult);

  auto ss = bench::runSim(w, core::SystemMode::kSidr, 22, "SIDR-22");
  auto sh = bench::runSim(w, core::SystemMode::kSciHadoop, 22,
                          "SciHadoop-22 (no HOP)");

  std::printf("\nshape checks:\n");
  std::printf(
      "  HOP's snapshot overhead delays the exact answer: %.0fs vs plain "
      "stock %.0fs\n",
      hop.totalTime, sh.result.totalTime);
  auto ends = ss.result.sortedReduceEnds();
  std::printf(
      "  by HOP's 50%%-estimate time (%.0fs), SIDR has committed %.0f%% of "
      "the output EXACTLY\n",
      hop.estimates.size() > 1 ? hop.estimates[1].second : 0.0,
      hop.estimates.size() > 1
          ? 100.0 *
                static_cast<double>(
                    std::lower_bound(ends.begin(), ends.end(),
                                     hop.estimates[1].second) -
                    ends.begin()) /
                static_cast<double>(ends.size())
          : 0.0);
  std::printf("  SIDR's first exact keyblock at %.0fs; HOP's first exact "
              "output only after the barrier at %.0fs\n",
              ss.result.firstResult, hop.firstResult);

  std::printf("\nseries (label,time_s,fraction_complete):\n");
  bench::printRunSeries(ss, true);
  for (const auto& [frac, t] : hop.estimates) {
    std::printf("hop-estimate,%.1f,%.2f\n", t, frac);
  }
  return 0;
}
