// Figure 10: Reduce-task completion for Query 1 as the number of SIDR
// Reduce tasks grows (22, 66, 176, 528), against SciHadoop at 22.
//
// Paper headline numbers: time-to-first-result and total time both fall
// as reducers increase; at 528 reducers SIDR finishes 29% faster than
// SciHadoop and the reduce line nearly parallels the map line
// ("close to optimal"). Extra reducers do NOT help SciHadoop/Hadoop
// (global barrier).
#include "bench_common.hpp"
#include "obs/report.hpp"

int main() {
  using namespace sidr;
  bench::header("Figure 10 - reduce sweep: Query 1, SIDR r in {22,66,176,528}",
                "SS-528 total ~29% below SH-22 (1250s); first result and "
                "total decrease monotonically with r");

  sim::WorkloadSpec w = sim::query1Workload();
  auto sh = bench::runSim(w, core::SystemMode::kSciHadoop, 22, "SciHadoop-22");
  // Extra reducers cannot help a global-barrier system; show it.
  auto sh176 =
      bench::runSim(w, core::SystemMode::kSciHadoop, 176, "SciHadoop-176");

  std::vector<bench::RunSummary> runs;
  for (std::uint32_t r : {22u, 66u, 176u, 528u}) {
    runs.push_back(bench::runSim(w, core::SystemMode::kSidr, r,
                                 "SIDR-" + std::to_string(r)));
  }

  std::printf("\nshape checks (paper -> measured):\n");
  std::printf("  SIDR-528 total vs SciHadoop-22 total: paper 0.71 -> %.2f\n",
              runs[3].result.totalTime / sh.result.totalTime);
  bool monotonic = true;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].result.firstResult > runs[i - 1].result.firstResult ||
        runs[i].result.totalTime > runs[i - 1].result.totalTime) {
      monotonic = false;
    }
  }
  std::printf("  first result & total decrease with r: %s\n",
              monotonic ? "yes" : "NO");
  std::printf(
      "  extra reducers help SciHadoop? paper: no -> measured: %s "
      "(SH-176 %.0fs vs SH-22 %.0fs)\n",
      sh176.result.totalTime < 0.97 * sh.result.totalTime ? "YES (unexpected)"
                                                          : "no",
      sh176.result.totalTime, sh.result.totalTime);
  // "close to optimal": the reduce line shifted from the map line by the
  // per-reduce processing time.
  std::printf("  SIDR-528 total - lastMap gap: %.0fs (near-optimal tail)\n",
              runs[3].result.totalTime - runs[3].result.lastMapEnd);

  std::printf("\nseries (label,time_s,fraction_complete):\n");
  bench::printRunSeries(sh, true);
  for (const auto& r : runs) bench::printRunSeries(r, false);

  bench::BenchJson json("fig10_reduce_sweep");
  for (const bench::RunSummary* rs : {&sh, &sh176}) {
    json.metric(rs->label + ".total", rs->result.totalTime, "s");
    json.metric(rs->label + ".first_result", rs->result.firstResult, "s");
  }
  for (const auto& r : runs) {
    json.metric(r.label + ".total", r.result.totalTime, "s");
    json.metric(r.label + ".first_result", r.result.firstResult, "s");
  }
  // Phase breakdown of the headline SIDR-528 run, from the simulator's
  // span trace (same schema as the engine's; DESIGN.md section 13):
  // aggregate simulated seconds per (side, phase). The fetch/merge/
  // reduce split is the figure's mechanism — overlap of the copy phase
  // with map execution is exactly what the span starts show.
  for (const obs::PhaseTotal& pt : obs::phaseTotals(runs[3].result.trace)) {
    json.metric(std::string("SIDR-528.phase.") + obs::taskSideName(pt.side) +
                    ":" + obs::phaseName(pt.phase) + ".seconds",
                pt.seconds, "s");
  }
  json.write();
  // Full Chrome trace of that run for chrome://tracing / Perfetto.
  if (obs::writeChromeTraceFile("BENCH_fig10_sidr528_trace.json",
                                runs[3].result.trace)) {
    std::printf("\nwrote BENCH_fig10_sidr528_trace.json (chrome://tracing)\n");
  }
  return 0;
}
