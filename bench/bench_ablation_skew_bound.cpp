// Ablation: the skew-bound trade-off of partition+ (paper section 3.1,
// footnote 1: "Accepting a small amount of skew to create keyblocks of
// simpler shapes can result in more efficient communications and
// reduced data dependencies between tasks").
//
// Sweeping the permissible skew bound for Query 1's geometry shows the
// three-way trade: smaller granules -> tighter balance but finer
// keyblock boundaries that straddle more splits (wider dependency
// sets / more connections) and more boxes per keyblock (more complex
// routing/output shapes).
#include "scihadoop/split_gen.hpp"
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Ablation - partition+ skew bound (Query 1, 66 reducers)",
                "footnote 1, section 3.1: skew vs dependency width vs "
                "keyblock shape complexity");

  sim::WorkloadSpec w = sim::query1Workload();
  auto extraction =
      std::make_shared<const sh::ExtractionMap>(w.query, w.inputShape);
  sh::SplitOptions opts;
  opts.targetElements = 3 * 360 * 720 * 50;  // cell-straddling splits
  auto splits = sh::generateSplits(w.inputShape, opts);
  constexpr std::uint32_t kReducers = 66;

  std::printf("%12s %12s %14s %12s %14s %16s\n", "skew_bound", "granule",
              "realized_skew", "max_boxes", "sum|I_l|", "avg deps/reduce");
  for (nd::Index bound : {nd::Index{100}, nd::Index{1000}, nd::Index{10000},
                          nd::Index{54000}, nd::Index{545454}}) {
    auto plan =
        std::make_shared<const core::PartitionPlus>(extraction, kReducers,
                                                    bound);
    core::DependencyCalculator calc(plan);
    core::DependencyInfo info = calc.computeAll(splits);
    std::size_t maxBoxes = 0;
    for (std::uint32_t kb = 0; kb < kReducers; ++kb) {
      maxBoxes = std::max(maxBoxes, plan->keyblockRegions(kb).size());
    }
    std::printf("%12lld %12lld %14lld %12zu %14llu %16.1f\n",
                static_cast<long long>(bound),
                static_cast<long long>(plan->granuleSize()),
                static_cast<long long>(plan->realizedSkew()), maxBoxes,
                static_cast<unsigned long long>(info.totalConnections()),
                static_cast<double>(info.totalConnections()) / kReducers);
  }

  std::printf("\nreading: a tiny bound minimizes skew but cuts keyblocks "
              "mid-row (more boxes, wider dependencies); a huge bound "
              "gives single-box keyblocks whose sizes differ by up to one "
              "granule.\n");
  return 0;
}
