// Ablation: skew-elimination strategies (paper section 5, related
// work). Sailfish (Rao et al., SoCC '12) also removes intermediate key
// skew — by deferring keyblock assignment until all intermediate keys
// exist — but that STRENGTHENS the global barrier: reduces can no
// longer overlap their copy phase with map execution, and early results
// are impossible. "For structural queries, SIDR eliminates key skew
// without strengthening the global barrier (the barrier is actually
// weakened)."
//
// Three-way comparison on the all-even-keys skew workload (figure 13's
// query): stock modulo (skewed), Sailfish (balanced, hardened barrier),
// SIDR (balanced, weakened barrier).
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Ablation - skew handling: modulo vs Sailfish vs SIDR",
                "section 5: Sailfish balances but strengthens the "
                "barrier; SIDR balances AND produces early results");

  sim::WorkloadSpec w = sim::skewWorkload();
  auto stock = bench::runSim(w, core::SystemMode::kSciHadoop, 22,
                             "stock-22 (modulo)");
  auto sailfish =
      bench::runSim(w, core::SystemMode::kSailfish, 22, "Sailfish-22");
  auto ss = bench::runSim(w, core::SystemMode::kSidr, 22, "SIDR-22");

  std::printf("\nshape checks:\n");
  std::printf("  both Sailfish and SIDR beat skewed modulo: %s "
              "(%.0fs / %.0fs vs %.0fs)\n",
              (sailfish.result.totalTime < stock.result.totalTime &&
               ss.result.totalTime < stock.result.totalTime)
                  ? "yes"
                  : "NO",
              sailfish.result.totalTime, ss.result.totalTime,
              stock.result.totalTime);
  std::printf("  Sailfish first result is pinned past the barrier: "
              "first=%.0fs vs lastMap=%.0fs\n",
              sailfish.result.firstResult, sailfish.result.lastMapEnd);
  std::printf("  SIDR keeps early results: first=%.0fs (%.0f%% of "
              "Sailfish's first)\n",
              ss.result.firstResult,
              100.0 * ss.result.firstResult / sailfish.result.firstResult);
  std::printf("  SIDR total vs Sailfish total: %.0fs vs %.0fs\n",
              ss.result.totalTime, sailfish.result.totalTime);

  std::printf("\nseries (label,time_s,fraction_complete):\n");
  bench::printRunSeries(stock, true);
  bench::printRunSeries(sailfish, false);
  bench::printRunSeries(ss, false);
  return 0;
}
