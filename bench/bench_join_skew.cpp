// Skew-adaptive join bench (DESIGN.md §18): a two-array structural
// join whose left-side survivors cluster in the leading rows of the
// shared instance grid. Key COUNTS per keyblock are perfectly uniform,
// so partition+'s count-balanced deal is blind to the skew — the hot
// keyblocks carry orders of magnitude more join products than the cold
// ones. The skew-adapted plan samples both sides, refines the granule
// deal against the estimated per-granule product load, and must cut
// the p99 per-keyblock reduce load by >= 1.5x while producing
// BIT-IDENTICAL output.
//
// This bench GATES: any violated check exits non-zero (CI runs it with
// --quick), and the measured loads land in BENCH_join_skew.json.
#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace {

double coordHash(const sidr::nd::Coord& c, std::uint64_t salt) {
  std::uint64_t h = salt * 0x9e3779b97f4a7c15ULL + 0x2545f4914f6cdd1dULL;
  for (std::size_t d = 0; d < c.rank(); ++d) {
    h ^= static_cast<std::uint64_t>(c[d]) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h *= 0x2545f4914f6cdd1dULL;
  }
  return static_cast<double>(h >> 11) * 0x1p-53;
}

/// Per-keyblock reduce load: total join-product values each keyblock's
/// reduce emitted (the §18 skew measure — list sizes, not record
/// counts, since every instance emits exactly one record).
std::vector<std::uint64_t> keyblockLoads(const sidr::mr::JobResult& r) {
  std::vector<std::uint64_t> loads(r.outputs.size(), 0);
  for (const sidr::mr::ReduceOutput& out : r.outputs) {
    for (const sidr::mr::KeyValue& kv : out.records) {
      if (kv.value.kind() == sidr::mr::ValueKind::kList) {
        loads[out.keyblock] += kv.value.asList().size();
      }
    }
  }
  return loads;
}

std::uint64_t p99(std::vector<std::uint64_t> loads) {
  std::sort(loads.begin(), loads.end());
  const std::size_t idx = (loads.size() * 99) / 100;
  return loads[std::min(idx, loads.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  using namespace sidr;
  const bool quick =
      argc > 1 && std::strcmp(argv[1], "--quick") == 0;
  bench::header(
      "Skew-adaptive two-array join: p99 keyblock load, before/after",
      "DESIGN.md section 18 - count-balanced deal vs load-refined deal");

  // Shared instance grid; the left side's >threshold survivors live in
  // the first 1/8 of the grid rows only.
  const nd::Index cell = 4;
  const nd::Index gridRows = quick ? 64 : 128;
  const nd::Index gridCols = quick ? 64 : 128;
  const std::uint32_t reducers = quick ? 32 : 64;
  const nd::Coord input{gridRows * cell, gridCols * cell};
  const nd::Index hotRows = (gridRows / 8) * cell;

  sh::StructuralQuery q;
  q.variable = "left";
  q.op = sh::OperatorKind::kJoin;
  q.extractionShape = nd::Coord{cell, cell};
  sh::JoinSpec js;
  js.variable = "right";
  js.extractionShape = nd::Coord{cell, cell};
  js.inputShape = input;
  js.leftThreshold = 5.0;
  q.join = js;

  sh::ValueFn leftFn = [hotRows](const nd::Coord& c) {
    const double u = coordHash(c, 17);
    return c[0] < hotRows ? 6.0 + u : 4.0 - u;  // survive iff hot
  };
  sh::ValueFn rightFn = [](const nd::Coord& c) {
    return 1.0 + coordHash(c, 23);
  };

  core::QueryPlanner planner(q, input);
  bool refined = false;
  auto runArm = [&](bool adapt) {
    core::PlanOptions opts;
    opts.system = core::SystemMode::kSidr;
    opts.numReducers = reducers;
    opts.desiredSplitCount = quick ? 12 : 24;
    opts.numThreads = 4;
    opts.skewAdapt = adapt;
    opts.skewSampleFraction = 0.25;
    opts.skewSampleMaxRecords = 1ull << 17;
    core::QueryPlan plan = planner.planJoin(leftFn, rightFn, opts);
    if (adapt) refined = plan.spec.skewStats.refined;
    return mr::Engine(std::move(plan.spec)).run();
  };

  mr::JobResult uniform = runArm(false);
  mr::JobResult adapted = runArm(true);

  const std::vector<std::uint64_t> uniformLoads = keyblockLoads(uniform);
  const std::vector<std::uint64_t> adaptedLoads = keyblockLoads(adapted);
  const std::uint64_t uniformP99 = p99(uniformLoads);
  const std::uint64_t adaptedP99 = p99(adaptedLoads);
  const std::uint64_t uniformMax =
      *std::max_element(uniformLoads.begin(), uniformLoads.end());
  const std::uint64_t adaptedMax =
      *std::max_element(adaptedLoads.begin(), adaptedLoads.end());
  const double improvement =
      adaptedP99 > 0 ? static_cast<double>(uniformP99) /
                           static_cast<double>(adaptedP99)
                     : 0.0;

  std::printf("grid=%lldx%lld cell=%lldx%lld reducers=%u hotRows=%lld\n",
              static_cast<long long>(gridRows),
              static_cast<long long>(gridCols), static_cast<long long>(cell),
              static_cast<long long>(cell), reducers,
              static_cast<long long>(hotRows / cell));
  std::printf("count-balanced  p99 keyblock load = %llu values (max %llu)\n",
              static_cast<unsigned long long>(uniformP99),
              static_cast<unsigned long long>(uniformMax));
  std::printf("skew-adapted    p99 keyblock load = %llu values (max %llu)\n",
              static_cast<unsigned long long>(adaptedP99),
              static_cast<unsigned long long>(adaptedMax));
  std::printf("p99 improvement = %.2fx (gate: >= 1.5x)\n", improvement);

  bench::BenchJson json("join_skew");
  json.metric("uniform_p99_keyblock_load", static_cast<double>(uniformP99),
              "values");
  json.metric("adapted_p99_keyblock_load", static_cast<double>(adaptedP99),
              "values");
  json.metric("uniform_max_keyblock_load", static_cast<double>(uniformMax),
              "values");
  json.metric("adapted_max_keyblock_load", static_cast<double>(adaptedMax),
              "values");
  json.metric("p99_improvement", improvement, "x");
  json.write();

  // ---- gates ----
  int failures = 0;
  auto gate = [&failures](bool ok, const char* what) {
    std::printf("%s %s\n", ok ? "PASS" : "FAIL", what);
    if (!ok) ++failures;
  };

  gate(uniform.annotationViolations == 0 &&
           adapted.annotationViolations == 0,
       "zero annotation violations in both arms");
  gate(refined, "skew-adapted arm actually refined the deal");

  // Refinement must not change one output byte.
  std::vector<mr::KeyValue> a = uniform.collectAll();
  std::vector<mr::KeyValue> b = adapted.collectAll();
  bool identical = a.size() == b.size();
  for (std::size_t i = 0; identical && i < a.size(); ++i) {
    identical = a[i].key == b[i].key && a[i].value == b[i].value;
  }
  gate(identical, "adapted output bit-identical to count-balanced output");

  // Both match the serial nested-loop oracle.
  sh::ExtractionMap leftEx(q, input);
  sh::ExtractionMap rightEx(sh::joinRightQuery(q), js.inputShape);
  std::vector<mr::KeyValue> oracle =
      sh::runJoinOracle(q, leftEx, rightEx, leftFn, rightFn);
  bool matches = a.size() == oracle.size();
  for (std::size_t i = 0; matches && i < a.size(); ++i) {
    matches = a[i].key == oracle[i].key && a[i].value == oracle[i].value;
  }
  gate(matches, "output matches the frozen nested-loop join oracle");

  gate(improvement >= 1.5, "p99 keyblock load improved >= 1.5x");

  if (failures > 0) {
    std::printf("\n%d gate(s) FAILED\n", failures);
    return 1;
  }
  std::printf("\nall gates passed\n");
  return 0;
}
