// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (section 4): it prints a header identifying the experiment,
// the paper's reported values for reference, the values this
// reproduction measures, and (for figures) "label,time,fraction" CSV
// series that plot the same curves.
#pragma once

#include <cstdio>
#include <iostream>
#include <string>

#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace sidr::bench {

inline void header(const std::string& title, const std::string& paperRef) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paperRef.c_str());
  std::printf("==============================================================\n");
}

struct RunSummary {
  std::string label;
  sim::SimResult result;
};

/// Runs one (workload, system, reducers) combination on the simulated
/// paper testbed and prints its one-line summary.
inline RunSummary runSim(const sim::WorkloadSpec& w, core::SystemMode system,
                         std::uint32_t reducers, const std::string& label,
                         const sim::ClusterConfig& cfg = {}) {
  sim::BuiltWorkload built = sim::buildWorkload(w, system, reducers);
  sim::ClusterSim cluster(cfg, built.job);
  RunSummary rs{label, cluster.run()};
  std::printf(
      "%-24s maps=%-5zu lastMap=%7.0fs firstResult=%7.0fs total=%7.0fs "
      "connections=%llu\n",
      label.c_str(), built.numSplits, rs.result.lastMapEnd,
      rs.result.firstResult, rs.result.totalTime,
      static_cast<unsigned long long>(rs.result.shuffleConnections));
  return rs;
}

/// Prints the map and reduce completion series of a run as CSV rows.
inline void printRunSeries(const RunSummary& rs, bool includeMaps) {
  if (includeMaps) {
    sim::printSeriesCsv(
        std::cout, "map:" + rs.label,
        sim::completionSeries(rs.result.sortedMapEnds(), 40));
  }
  sim::printSeriesCsv(
      std::cout, "reduce:" + rs.label,
      sim::completionSeries(rs.result.sortedReduceEnds(), 40));
}

}  // namespace sidr::bench
