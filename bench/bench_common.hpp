// Shared helpers for the experiment harnesses in bench/.
//
// Each bench binary regenerates one table or figure from the paper's
// evaluation (section 4): it prints a header identifying the experiment,
// the paper's reported values for reference, the values this
// reproduction measures, and (for figures) "label,time,fraction" CSV
// series that plot the same curves.
#pragma once

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "sim/trace.hpp"
#include "sim/workload.hpp"

namespace sidr::bench {

/// Machine-readable headline emission: collects (name, value, unit)
/// metrics and writes them as BENCH_<name>.json in the working
/// directory, in addition to whatever the bench prints — so the perf
/// trajectory across PRs is trackable without parsing stdout.
class BenchJson {
 public:
  explicit BenchJson(std::string benchName) : name_(std::move(benchName)) {}

  void metric(const std::string& name, double value,
              const std::string& unit = "") {
    metrics_.push_back(Metric{name, unit, value});
  }

  /// Writes BENCH_<name>.json; returns false (after a warning on
  /// stderr) if the file cannot be opened, so benches never fail on a
  /// read-only working directory.
  bool write() const {
    const std::string path = "BENCH_" + name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "BenchJson: cannot write %s\n", path.c_str());
      return false;
    }
    out << "{\n  \"bench\": \"" << escape(name_) << "\",\n  \"metrics\": [";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      out << (i == 0 ? "\n" : ",\n");
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", m.value);
      out << "    {\"name\": \"" << escape(m.name) << "\", \"unit\": \""
          << escape(m.unit) << "\", \"value\": " << buf << "}";
    }
    out << "\n  ]\n}\n";
    return out.good();
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    double value;
  };

  static std::string escape(const std::string& s) {
    std::string e;
    e.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') e.push_back('\\');
      e.push_back(c);
    }
    return e;
  }

  std::string name_;
  std::vector<Metric> metrics_;
};

inline void header(const std::string& title, const std::string& paperRef) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("paper reference: %s\n", paperRef.c_str());
  std::printf("==============================================================\n");
}

struct RunSummary {
  std::string label;
  sim::SimResult result;
};

/// Runs one (workload, system, reducers) combination on the simulated
/// paper testbed and prints its one-line summary.
inline RunSummary runSim(const sim::WorkloadSpec& w, core::SystemMode system,
                         std::uint32_t reducers, const std::string& label,
                         const sim::ClusterConfig& cfg = {}) {
  sim::BuiltWorkload built = sim::buildWorkload(w, system, reducers);
  sim::ClusterSim cluster(cfg, built.job);
  RunSummary rs{label, cluster.run()};
  std::printf(
      "%-24s maps=%-5zu lastMap=%7.0fs firstResult=%7.0fs total=%7.0fs "
      "connections=%llu\n",
      label.c_str(), built.numSplits, rs.result.lastMapEnd,
      rs.result.firstResult, rs.result.totalTime,
      static_cast<unsigned long long>(rs.result.shuffleConnections));
  return rs;
}

/// Prints the map and reduce completion series of a run as CSV rows.
inline void printRunSeries(const RunSummary& rs, bool includeMaps) {
  if (includeMaps) {
    sim::printSeriesCsv(
        std::cout, "map:" + rs.label,
        sim::completionSeries(rs.result.sortedMapEnds(), 40));
  }
  sim::printSeriesCsv(
      std::cout, "reduce:" + rs.label,
      sim::completionSeries(rs.result.sortedReduceEnds(), 40));
}

#ifdef BENCHMARK_BENCHMARK_H_
// google-benchmark adapter, compiled only when <benchmark/benchmark.h>
// is included BEFORE this header (CSV-style benches don't link against
// the benchmark library, so this cannot be unconditional).

/// Console reporter that additionally captures every successful run's
/// adjusted real time and counters into a BenchJson.
class JsonCapturingReporter final : public ::benchmark::ConsoleReporter {
 public:
  explicit JsonCapturingReporter(BenchJson& json) : json_(json) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) continue;
      json_.metric(run.benchmark_name() + ".real_time",
                   run.GetAdjustedRealTime(),
                   ::benchmark::GetTimeUnitString(run.time_unit));
      // Counters arrive already rate-adjusted by the runner (e.g. the
      // SetItemsProcessed-derived items_per_second).
      for (const auto& [name, counter] : run.counters) {
        json_.metric(run.benchmark_name() + "." + name, counter.value);
      }
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchJson& json_;
};

/// Drop-in main body for google-benchmark benches: initializes the
/// library, runs everything through a JsonCapturingReporter, and writes
/// BENCH_<name>.json. Recognizes `--quick` (not a gbench flag) and
/// rewrites it to a short-min-time smoke configuration so CI can
/// exercise perf binaries cheaply.
inline int runBenchmarksWithJson(const std::string& benchName, int argc,
                                 char** argv) {
  static std::string quickFlag = "--benchmark_min_time=0.01";
  std::vector<char*> args(argv, argv + argc);
  for (char*& a : args) {
    if (std::string(a) == "--quick") a = quickFlag.data();
  }
  int n = static_cast<int>(args.size());
  ::benchmark::Initialize(&n, args.data());
  BenchJson json(benchName);
  JsonCapturingReporter reporter(json);
  ::benchmark::RunSpecifiedBenchmarks(&reporter);
  json.write();
  ::benchmark::Shutdown();
  return 0;
}
#endif  // BENCHMARK_BENCHMARK_H_

}  // namespace sidr::bench
