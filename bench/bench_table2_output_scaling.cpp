// Table 2: individual Reduce write time and size scaling — REAL file
// I/O through the scifile library (not simulated).
//
// The experiment fixes the data written per reduce task and scales the
// total output (doubling data and simulated task count each step). A
// representative task writes its share under each strategy:
//   * Hadoop sentinel files: the file covers the WHOLE output space, so
//     per-task write time and file size grow linearly with total output
//     (paper: 6s/494MB -> 11.4s/988MB -> 24.2s/1976MB);
//   * SIDR dense contiguous chunk: constant time and size regardless of
//     scale (paper: 0.3s / 24.8MB);
//   * coordinate/value pairs: constant per useful byte but with rank*8
//     bytes of overhead per element (section 4.4's third option).
//
// Sizes are scaled down ~16x from the paper so the bench runs in
// seconds; the SCALING LAW, not the absolute seconds, is the result.
#include <cmath>
#include <filesystem>
#include <random>

#include "scifile/output_writers.hpp"
#include "bench_common.hpp"

namespace {

struct Stats {
  double mean = 0;
  double stddev = 0;
};

template <typename Fn>
Stats timeRuns(int runs, Fn&& fn) {
  fn();  // warm-up: allocator and file-system metadata paths
  double sum = 0;
  double sumSq = 0;
  for (int i = 0; i < runs; ++i) {
    double s = fn();
    sum += s;
    sumSq += s * s;
  }
  double mean = sum / runs;
  return {mean, std::sqrt(std::max(0.0, sumSq / runs - mean * mean))};
}

}  // namespace

int main() {
  using namespace sidr;
  namespace fs = std::filesystem;
  bench::header(
      "Table 2 - reduce output write scaling (real file I/O)",
      "sentinel: 6s/494MB -> 11.4s/988MB -> 24.2s/1976MB as reducers "
      "x2; SIDR dense chunk constant 0.3s/24.8MB");

  fs::path dir = fs::temp_directory_path() / "sidr_table2";
  fs::create_directories(dir);

  constexpr int kRuns = 5;
  // Per-task useful data is FIXED (as in the paper); total output space
  // doubles with the simulated reducer count.
  const nd::Index perTaskKeys = 384 * 1024;  // 1.5 MB of float32 per task

  std::printf(
      "%-22s %8s %14s %16s %14s\n", "strategy", "reducers",
      "time_mean_s(sd)", "bytes_written", "file_size_MB");

  double firstSentinelMean = 0;
  double lastSentinelMean = 0;
  double denseMean = 0;
  for (int reducers : {20, 40, 80}) {
    // Output space: reducers * perTaskKeys values in a 2-D grid.
    nd::Coord totalShape{reducers * 64, perTaskKeys / 64};
    // --- Hadoop sentinel: this task's keys are scattered over the whole
    // space by the modulo partitioner (every reducers-th key).
    std::vector<nd::Coord> coords;
    std::vector<double> values;
    coords.reserve(static_cast<std::size_t>(perTaskKeys) / 64);
    std::mt19937_64 rng(7);
    for (nd::Index i = 0; i < perTaskKeys / 64; ++i) {
      nd::Index linear = i * reducers + 3;  // this task's modulo class
      coords.push_back(nd::delinearize(linear % totalShape.volume(),
                                       totalShape));
      values.push_back(static_cast<double>(rng() % 1000));
    }
    sci::WriteReport rep;
    Stats st = timeRuns(kRuns, [&] {
      rep = sci::writeSentinelFile((dir / "sentinel.sndf").string(), "out",
                                   sci::DataType::kFloat32, totalShape,
                                   -9999.0, coords, values);
      return rep.seconds;
    });
    if (reducers == 20) firstSentinelMean = st.mean;
    lastSentinelMean = st.mean;
    std::printf("%-22s %8d %9.3f(%.3f) %16llu %14.1f\n", "Hadoop sentinel",
                reducers, st.mean, st.stddev,
                static_cast<unsigned long long>(rep.bytesWritten),
                static_cast<double>(rep.fileSize) / 1e6);
  }

  // --- SIDR dense chunk: same useful data, contiguous keyblock.
  {
    nd::Coord totalShape{80 * 64, perTaskKeys / 64};
    nd::Region chunk(nd::Coord{0, 0}, nd::Coord{64, perTaskKeys / 64});
    std::vector<double> values(static_cast<std::size_t>(chunk.volume()));
    for (std::size_t i = 0; i < values.size(); ++i) {
      values[i] = static_cast<double>(i % 1000);
    }
    sci::WriteReport rep;
    Stats st = timeRuns(kRuns, [&] {
      rep = sci::writeDenseChunk((dir / "chunk.sndf").string(), "out",
                                 sci::DataType::kFloat32, totalShape, chunk,
                                 values);
      return rep.seconds;
    });
    denseMean = st.mean;
    std::printf("%-22s %8s %9.3f(%.3f) %16llu %14.1f\n", "SIDR dense chunk",
                "any", st.mean, st.stddev,
                static_cast<unsigned long long>(rep.bytesWritten),
                static_cast<double>(rep.fileSize) / 1e6);
  }

  // --- coordinate/value pairs: constant, but with per-element overhead.
  {
    std::vector<nd::Coord> coords;
    std::vector<double> values;
    nd::Coord totalShape{80 * 64, perTaskKeys / 64};
    for (nd::Index i = 0; i < perTaskKeys / 64; ++i) {
      coords.push_back(nd::delinearize(i * 80 + 3, totalShape));
      values.push_back(static_cast<double>(i));
    }
    sci::WriteReport rep;
    Stats st = timeRuns(kRuns, [&] {
      rep = sci::writeCoordPairs((dir / "pairs.bin").string(), coords,
                                 values);
      return rep.seconds;
    });
    std::printf("%-22s %8s %9.3f(%.3f) %16llu %14.1f\n", "coord/value pairs",
                "any", st.mean, st.stddev,
                static_cast<unsigned long long>(rep.bytesWritten),
                static_cast<double>(rep.fileSize) / 1e6);
  }

  std::printf("\nshape checks (paper -> measured):\n");
  std::printf("  sentinel time grows ~4x from 20 to 80 reducers: paper "
              "4.0x -> %.1fx\n",
              lastSentinelMean / firstSentinelMean);
  std::printf("  dense chunk vs sentinel@20: paper 20x faster -> %.0fx\n",
              firstSentinelMean / std::max(denseMean, 1e-9));

  std::error_code ec;
  fs::remove_all(dir, ec);
  return 0;
}
