// Figure 11: Reduce-task completion for Query 2 — a 3-sigma filter over
// a {7200,360,720,50} dataset of normally distributed values (0.1%
// selectivity, eshape {2,40,40,10}) — SciHadoop at 22 reducers vs SIDR
// at 22, 66 and 176.
//
// Paper headline observations: reduce tasks are tiny, so completion
// lines approach optimal with fewer reducers than Query 1, and the
// total-time improvement over SciHadoop is much smaller than Query 1's.
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  bench::header("Figure 11 - filter query (Query 2): SH-22 vs SS {22,66,176}",
                "small reduce work -> near-optimal with few reducers; "
                "little total-time headroom for SIDR");

  sim::WorkloadSpec w = sim::query2Workload();
  auto sh = bench::runSim(w, core::SystemMode::kSciHadoop, 22, "SciHadoop-22");
  std::vector<bench::RunSummary> runs;
  for (std::uint32_t r : {22u, 66u, 176u}) {
    runs.push_back(bench::runSim(w, core::SystemMode::kSidr, r,
                                 "SIDR-" + std::to_string(r)));
  }

  std::printf("\nshape checks (paper -> measured):\n");
  double gain = 1.0 - runs[0].result.totalTime / sh.result.totalTime;
  std::printf(
      "  SIDR-22 total-time gain vs SciHadoop (paper: 'much smaller than "
      "Query 1'): %.1f%%\n",
      100.0 * gain);
  std::printf(
      "  SIDR-22 reduce tail (total - lastMap): %.0fs (Query 1 had ~%d00s)\n",
      runs[0].result.totalTime - runs[0].result.lastMapEnd, 4);
  std::printf("  SIDR first results long before the barrier: first=%.0fs vs "
              "SH first=%.0fs\n",
              runs[0].result.firstResult, sh.result.firstResult);

  std::printf("\nseries (label,time_s,fraction_complete):\n");
  bench::printRunSeries(sh, true);
  for (const auto& r : runs) bench::printRunSeries(r, false);
  return 0;
}
