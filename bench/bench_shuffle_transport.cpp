// Shuffle-transport sweep: the paper's Query 1 (median over windspeed)
// through the REAL engine on each shuffle data plane (DESIGN.md §17).
// Arms are transport x shuffle-regime cells:
//
//   * inproc / socket over the in-memory shuffle — zero-copy handle
//     handoff vs. serializing every segment through framed localhost
//     TCP (the cost of a real network data plane, measured);
//   * inproc / socket / file-served over eager spill — the socket plane
//     serves committed files in bounded chunks; file-served streams
//     them through SegmentStream windows on the receive side too.
//
// Every arm is a correctness gate, not just a timing: collectAll must
// be bit-identical to the in-process in-memory baseline, or the bench
// exits non-zero. Emits BENCH_shuffle_transport.json: per-arm wall
// seconds, throughput, shuffle bytes, wire bytes/frames/connections.
//
// `--quick` shrinks the geometry to a CI smoke configuration.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace {

using namespace sidr;

struct Arm {
  std::string label;
  mr::ShuffleTransportKind kind;
  bool spill;
};

bool sameCollected(const std::vector<mr::KeyValue>& xs,
                   const std::vector<mr::KeyValue>& ys) {
  if (xs.size() != ys.size()) return false;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].key != ys[i].key || xs[i].value != ys[i].value ||
        xs[i].represents != ys[i].represents) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::header(
      "Shuffle-transport sweep - Query 1 (median/windspeed), real engine",
      "pluggable shuffle data plane, DESIGN.md section 17; every "
      "transport must reproduce the in-process run bit-identically");

  nd::Coord input{360, 36, 72, 25};
  nd::Coord eshape{2, 6, 12, 5};
  std::size_t splitCount = 48;
  if (quick) {
    input = nd::Coord{72, 18, 36, 10};
    eshape = nd::Coord{2, 6, 6, 5};
    splitCount = 12;
  }

  sh::StructuralQuery q;
  q.variable = "windspeed";
  q.op = sh::OperatorKind::kMedian;
  q.extractionShape = eshape;
  sh::ValueFn fn = sh::windspeedField(2);
  core::QueryPlanner planner(q, input);

  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 22;
  opts.desiredSplitCount = splitCount;
  opts.mapSlots = 4;
  opts.reduceSlots = 3;
  opts.numThreads = 8;

  const std::vector<Arm> arms = {
      {"inproc", mr::ShuffleTransportKind::kInProcess, false},
      {"socket", mr::ShuffleTransportKind::kSocket, false},
      {"inproc-spill", mr::ShuffleTransportKind::kInProcess, true},
      {"socket-spill", mr::ShuffleTransportKind::kSocket, true},
      {"file-served", mr::ShuffleTransportKind::kFileServed, true},
  };

  const double cells = static_cast<double>(input.volume());
  std::printf("input %s (%.1fM cells), eshape %s, r=%u, %zu splits\n\n",
              input.toString().c_str(), cells / 1e6,
              eshape.toString().c_str(), opts.numReducers, splitCount);

  constexpr double kMiB = 1024.0 * 1024.0;
  bench::BenchJson json("shuffle_transport");
  json.metric("input_cells", cells);
  std::vector<mr::KeyValue> baseline;
  double baselineSecs = 0;
  for (const Arm& arm : arms) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("sidr_bench_transport_" + arm.label))
            .string();
    std::filesystem::remove_all(dir);
    core::QueryPlan plan = planner.plan(fn, opts);
    if (arm.spill) plan.spec.spillDirectory = dir;
    plan.spec.transport = arm.kind;
    plan.spec.transportConnections = 4;
    const auto t0 = std::chrono::steady_clock::now();
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    auto collected = result.collectAll();
    std::filesystem::remove_all(dir);

    bool identical = true;
    if (baseline.empty() && arm.label == "inproc") {
      baseline = std::move(collected);
      baselineSecs = secs;
    } else {
      identical = sameCollected(collected, baseline);
    }
    const mr::TransportStats& t = result.transportTotals;
    std::printf(
        "%-13s %7.2fs  %6.1fM cells/s  shuffle=%7.1fMiB  wire=%7.1fMiB  "
        "frames=%-7llu conns=%-4llu slowdown=%.2fx  %s\n",
        arm.label.c_str(), secs, cells / secs / 1e6,
        static_cast<double>(result.shuffleBytes) / kMiB,
        static_cast<double>(t.wireBytes) / kMiB,
        static_cast<unsigned long long>(t.framesReceived),
        static_cast<unsigned long long>(t.connectionsOpened),
        secs / baselineSecs, identical ? "output identical" : "OUTPUT DIFFERS");

    json.metric(arm.label + ".seconds", secs, "s");
    json.metric(arm.label + ".cells_per_sec", cells / secs);
    json.metric(arm.label + ".shuffle_bytes",
                static_cast<double>(result.shuffleBytes), "B");
    json.metric(arm.label + ".wire_bytes", static_cast<double>(t.wireBytes),
                "B");
    json.metric(arm.label + ".frames_received",
                static_cast<double>(t.framesReceived));
    json.metric(arm.label + ".connections_opened",
                static_cast<double>(t.connectionsOpened));
    json.metric(arm.label + ".connections_reused",
                static_cast<double>(t.connectionsReused));
    json.metric(arm.label + ".identical", identical ? 1 : 0);
    if (!identical) {
      std::fprintf(stderr, "FAIL: %s output differs from in-process run\n",
                   arm.label.c_str());
      return 1;
    }
  }
  json.write();
  std::printf("\nwrote BENCH_shuffle_transport.json\n");
  return 0;
}
