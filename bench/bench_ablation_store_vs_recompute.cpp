// Ablation: store vs re-compute for dependency information (paper
// section 3.2.1: "a classic 'store vs re-compute' decision").
//
// SIDR stores all I_l in the job specification at submission (one
// computeAll pass, small I/O cost); the alternative has every reduce
// task recompute its own I_l at startup. This bench measures both over
// Query 1's real geometry and reports the job-spec bytes the stored
// variant adds.
#include <chrono>

#include "scihadoop/split_gen.hpp"
#include "bench_common.hpp"

int main() {
  using namespace sidr;
  using Clock = std::chrono::steady_clock;
  bench::header("Ablation - dependency store vs re-compute (Query 1)",
                "section 3.2.1: submission-time computeAll vs per-task "
                "recomputation");

  sim::WorkloadSpec w = sim::query1Workload();
  auto extraction =
      std::make_shared<const sh::ExtractionMap>(w.query, w.inputShape);
  sh::SplitOptions opts;
  opts.targetElements =
      sh::targetElementsForCount(w.inputShape, w.numSplits);
  auto splits = sh::generateSplits(w.inputShape, *extraction, opts);

  bench::BenchJson json("ablation_store_vs_recompute");
  std::printf("%8s %18s %22s %22s %18s\n", "reduces", "store: computeAll",
              "recompute: scratch", "recompute: indexed", "stored bytes");
  for (std::uint32_t r : {22u, 176u, 528u}) {
    auto plan = std::make_shared<const core::PartitionPlus>(extraction, r, 0);
    core::DependencyCalculator calc(plan);

    auto t0 = Clock::now();
    core::DependencyInfo info = calc.computeAll(splits);
    double storeMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();

    // Re-compute path: every reduce scans the split list itself,
    // re-deriving every split's keyblock set geometrically.
    t0 = Clock::now();
    std::uint64_t total = 0;
    for (std::uint32_t kb = 0; kb < r; ++kb) {
      total += calc.recomputeSplitsFor(kb, splits).size();
    }
    double recomputeMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (total != info.totalConnections()) {
      std::printf("MISMATCH: store and recompute disagree!\n");
      return 1;
    }

    // Indexed re-compute: every reduce reuses the stored per-split
    // keyblock index (recovery no longer re-derives geometry).
    t0 = Clock::now();
    std::uint64_t totalIndexed = 0;
    for (std::uint32_t kb = 0; kb < r; ++kb) {
      totalIndexed += calc.recomputeSplitsFor(kb, splits, info).size();
    }
    double indexedMs =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    if (totalIndexed != info.totalConnections()) {
      std::printf("MISMATCH: indexed recompute disagrees!\n");
      return 1;
    }

    std::uint64_t storedBytes = 0;
    for (const auto& d : info.keyblockToSplits) {
      storedBytes += d.size() * sizeof(std::uint32_t);
    }
    std::printf("%8u %15.1f ms %19.1f ms %19.2f ms %15llu B\n", r, storeMs,
                recomputeMs, indexedMs,
                static_cast<unsigned long long>(storedBytes));
    const std::string pre = "r" + std::to_string(r) + ".";
    json.metric(pre + "store_ms", storeMs, "ms");
    json.metric(pre + "recompute_scratch_ms", recomputeMs, "ms");
    json.metric(pre + "recompute_indexed_ms", indexedMs, "ms");
  }
  json.write();
  std::printf("\nreading: storing costs one pass and a few kilobytes in "
              "the job spec; scratch recomputation repeats the geometric "
              "split scan per task and grows with r; the indexed variant "
              "reuses the stored split->keyblock lists and reduces each "
              "recovery to binary searches — SIDR's choice to store wins "
              "for every configuration the paper ran.\n");
  return 0;
}
