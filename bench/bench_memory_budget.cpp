// Memory-budget sweep: the paper's Query 1 (median over windspeed)
// through the REAL engine at decreasing memory budgets (DESIGN.md
// section 14). Arms:
//
//   * in-memory      — no spill, unlimited budget (the baseline every
//     bounded run must reproduce bit-identically);
//   * spill-eager    — spillDirectory set, budget 0 (the pre-existing
//     write-everything mode);
//   * hybrid-<B>     — spillDirectory + memoryBudgetBytes = B: maps
//     publish in-memory handles, pressure evicts the coldest committed
//     keyblocks, reduces stream evicted inputs through bounded windows;
//   * hybrid-256MiB-z — the 256 MiB arm with varint/delta spill
//     compression on.
//
// Geometry defaults to a scaled Query 1 dataset ({360,36,72,25}, ~23.3M
// cells) so the sweep finishes in seconds; `--quick` shrinks it to a
// smoke configuration and `--full` selects the paper's full
// {7200,360,720,50} geometry (93G cells — expect hours; the scaled
// runs exercise the identical code paths and eviction behavior).
//
// Emits BENCH_memory_budget.json: per-arm wall seconds, throughput,
// peak resident segment bytes, pressure-spill events, compressed spill
// bytes, and an `identical` flag against the in-memory baseline.
#include <chrono>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mapreduce/engine.hpp"
#include "scihadoop/datagen.hpp"
#include "sidr/planner.hpp"

namespace {

using namespace sidr;

struct Arm {
  std::string label;
  bool spill;
  std::uint64_t budget;
  bool compress;
};

bool sameCollected(const std::vector<mr::KeyValue>& xs,
                   const std::vector<mr::KeyValue>& ys) {
  if (xs.size() != ys.size()) return false;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (xs[i].key != ys[i].key || xs[i].value != ys[i].value ||
        xs[i].represents != ys[i].represents) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  bench::header(
      "Memory-budget sweep - Query 1 (median/windspeed), real engine",
      "bounded-memory out-of-core mode, DESIGN.md section 14; every "
      "budget must reproduce the unlimited run bit-identically");

  nd::Coord input{360, 36, 72, 25};          // scaled Query 1
  nd::Coord eshape{2, 6, 12, 5};
  std::size_t splitCount = 48;
  if (quick) {
    input = nd::Coord{144, 36, 36, 10};
    eshape = nd::Coord{2, 6, 6, 5};
    splitCount = 16;
  } else if (full) {
    input = nd::Coord{7200, 360, 720, 50};   // the paper's geometry
    eshape = nd::Coord{2, 36, 36, 10};
    splitCount = 4096;
  }

  sh::StructuralQuery q;
  q.variable = "windspeed";
  q.op = sh::OperatorKind::kMedian;
  q.extractionShape = eshape;
  sh::ValueFn fn = sh::windspeedField(2);
  core::QueryPlanner planner(q, input);

  core::PlanOptions opts;
  opts.system = core::SystemMode::kSidr;
  opts.numReducers = 22;  // the paper's SS-22 configuration
  opts.desiredSplitCount = splitCount;
  opts.mapSlots = 4;
  opts.reduceSlots = 3;
  opts.numThreads = 8;

  constexpr std::uint64_t kMiB = 1ull << 20;
  const std::vector<Arm> arms = {
      {"in-memory", false, 0, false},
      {"spill-eager", true, 0, false},
      {"hybrid-1GiB", true, 1024 * kMiB, false},
      {"hybrid-256MiB", true, 256 * kMiB, false},
      {"hybrid-64MiB", true, 64 * kMiB, false},
      {"hybrid-256MiB-z", true, 256 * kMiB, true},
      // Early-start reduces drain segments almost as fast as maps
      // publish them, so concurrent residency sits far below the total
      // intermediate volume — these arms squeeze below it to put the
      // pressure evictor (and compression, which only encodes evicted
      // keyblocks) on the hot path.
      {"hybrid-16MiB", true, 16 * kMiB, false},
      {"hybrid-8MiB", true, 8 * kMiB, false},
      {"hybrid-8MiB-z", true, 8 * kMiB, true},
  };

  const double cells = static_cast<double>(input.volume());
  std::printf("input %s (%.1fM cells), eshape %s, r=%u, %zu splits\n\n",
              input.toString().c_str(), cells / 1e6,
              eshape.toString().c_str(), opts.numReducers, splitCount);

  bench::BenchJson json("memory_budget");
  json.metric("input_cells", cells);
  std::vector<mr::KeyValue> baseline;
  double baselineSecs = 0;
  for (const Arm& arm : arms) {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("sidr_bench_membudget_" + arm.label))
            .string();
    std::filesystem::remove_all(dir);
    core::QueryPlan plan = planner.plan(fn, opts);
    if (arm.spill) plan.spec.spillDirectory = dir;
    plan.spec.memoryBudgetBytes = arm.budget;
    plan.spec.compressSpill = arm.compress;
    const auto t0 = std::chrono::steady_clock::now();
    mr::JobResult result = mr::Engine(std::move(plan.spec)).run();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    auto collected = result.collectAll();
    std::filesystem::remove_all(dir);

    bool identical = true;
    if (baseline.empty() && arm.label == "in-memory") {
      baseline = std::move(collected);
      baselineSecs = secs;
    } else {
      identical = sameCollected(collected, baseline);
    }
    std::printf(
        "%-16s %7.2fs  %6.1fM cells/s  peak=%6.1fMiB  evictions=%-5llu "
        "zbytes=%8.1fKiB  slowdown=%.2fx  %s\n",
        arm.label.c_str(), secs, cells / secs / 1e6,
        static_cast<double>(result.peakResidentSegmentBytes) / kMiB,
        static_cast<unsigned long long>(result.pressureSpillEvents),
        static_cast<double>(result.spillCompressedBytes) / 1024.0,
        secs / baselineSecs, identical ? "output identical" : "OUTPUT DIFFERS");

    json.metric(arm.label + ".seconds", secs, "s");
    json.metric(arm.label + ".cells_per_sec", cells / secs);
    json.metric(arm.label + ".peak_resident_bytes",
                static_cast<double>(result.peakResidentSegmentBytes), "B");
    json.metric(arm.label + ".pressure_spill_events",
                static_cast<double>(result.pressureSpillEvents));
    json.metric(arm.label + ".spill_compressed_bytes",
                static_cast<double>(result.spillCompressedBytes), "B");
    json.metric(arm.label + ".shuffle_bytes",
                static_cast<double>(result.shuffleBytes), "B");
    json.metric(arm.label + ".identical", identical ? 1 : 0);
    if (!identical) {
      std::fprintf(stderr, "FAIL: %s output differs from in-memory run\n",
                   arm.label.c_str());
      return 1;
    }
  }
  json.write();
  std::printf("\nwrote BENCH_memory_budget.json\n");
  return 0;
}
