// CDL (Common Data Language) text parsing for SNDF metadata.
//
// NetCDF tooling describes dataset structure in CDL — the exact
// notation of the paper's figure 1:
//
//   dimensions:
//     time = 365;
//     lat = 250;
//     lon = 200;
//   variables:
//     int temperature(time, lat, lon);
//
// Metadata::toText() renders this form; parseCdl() reads it back, so
// dataset schemas can be written by hand or exchanged as text.
#pragma once

#include <string>

#include "scifile/metadata.hpp"

namespace sidr::sci {

/// Parses the CDL subset rendered by Metadata::toText(). Throws
/// std::invalid_argument with a line-annotated message on malformed
/// input. Round trip: parseCdl(m.toText()) == m (attributes excluded —
/// CDL attributes are not part of the subset).
Metadata parseCdl(const std::string& text);

}  // namespace sidr::sci
