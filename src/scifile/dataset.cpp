#include "scifile/dataset.hpp"

#include <algorithm>
#include <array>
#include <cstring>
#include <stdexcept>

namespace sidr::sci {

namespace {

constexpr char kMagic[8] = {'S', 'N', 'D', 'F', '1', '\0', '\0', '\0'};

/// Converts `count` doubles to the on-disk representation.
void encodeValues(DataType t, std::span<const double> in,
                  std::vector<std::byte>& out) {
  out.resize(in.size() * dataTypeSize(t));
  switch (t) {
    case DataType::kInt32: {
      auto* p = reinterpret_cast<std::int32_t*>(out.data());
      for (std::size_t i = 0; i < in.size(); ++i) {
        p[i] = static_cast<std::int32_t>(in[i]);
      }
      break;
    }
    case DataType::kInt64: {
      auto* p = reinterpret_cast<std::int64_t*>(out.data());
      for (std::size_t i = 0; i < in.size(); ++i) {
        p[i] = static_cast<std::int64_t>(in[i]);
      }
      break;
    }
    case DataType::kFloat32: {
      auto* p = reinterpret_cast<float*>(out.data());
      for (std::size_t i = 0; i < in.size(); ++i) {
        p[i] = static_cast<float>(in[i]);
      }
      break;
    }
    case DataType::kFloat64: {
      std::memcpy(out.data(), in.data(), in.size() * sizeof(double));
      break;
    }
  }
}

/// Converts `count` on-disk elements to doubles.
void decodeValues(DataType t, std::span<const std::byte> in,
                  std::span<double> out) {
  switch (t) {
    case DataType::kInt32: {
      auto* p = reinterpret_cast<const std::int32_t*>(in.data());
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = p[i];
      break;
    }
    case DataType::kInt64: {
      auto* p = reinterpret_cast<const std::int64_t*>(in.data());
      for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = static_cast<double>(p[i]);
      }
      break;
    }
    case DataType::kFloat32: {
      auto* p = reinterpret_cast<const float*>(in.data());
      for (std::size_t i = 0; i < out.size(); ++i) out[i] = p[i];
      break;
    }
    case DataType::kFloat64: {
      std::memcpy(out.data(), in.data(), out.size() * sizeof(double));
      break;
    }
  }
}

}  // namespace

Dataset::Dataset(std::shared_ptr<Storage> storage, Metadata meta)
    : storage_(std::move(storage)), meta_(std::move(meta)) {
  std::uint64_t off = 0;
  for (std::size_t v = 0; v < meta_.variables().size(); ++v) {
    varOffsets_.push_back(off);
    off += meta_.variableByteSize(v);
  }
}

Dataset Dataset::create(std::shared_ptr<Storage> storage, Metadata metadata) {
  std::vector<std::byte> metaBytes = metadata.serialize();
  Dataset ds(std::move(storage), std::move(metadata));
  std::vector<std::byte> header;
  header.insert(header.end(),
                reinterpret_cast<const std::byte*>(kMagic),
                reinterpret_cast<const std::byte*>(kMagic) + sizeof(kMagic));
  std::uint64_t metaLen = metaBytes.size();
  for (int b = 0; b < 8; ++b) {
    header.push_back(static_cast<std::byte>((metaLen >> (b * 8)) & 0xff));
  }
  header.insert(header.end(), metaBytes.begin(), metaBytes.end());
  ds.dataStart_ = header.size();
  ds.storage_->writeAt(0, header);
  ds.storage_->resize(ds.totalByteSize());
  return ds;
}

Dataset Dataset::open(std::shared_ptr<Storage> storage) {
  std::array<std::byte, 16> head{};
  storage->readAt(0, head);
  if (std::memcmp(head.data(), kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("Dataset::open: bad magic (not an SNDF file)");
  }
  std::uint64_t metaLen = 0;
  for (int b = 0; b < 8; ++b) {
    metaLen |= static_cast<std::uint64_t>(head[8 + static_cast<std::size_t>(b)])
               << (b * 8);
  }
  std::vector<std::byte> metaBytes(metaLen);
  storage->readAt(16, metaBytes);
  Dataset ds(std::move(storage), Metadata::deserialize(metaBytes));
  ds.dataStart_ = 16 + metaLen;
  return ds;
}

std::uint64_t Dataset::variableOffset(std::size_t varIdx) const {
  return dataStart_ + varOffsets_.at(varIdx);
}

std::uint64_t Dataset::totalByteSize() const {
  std::uint64_t total = dataStart_;
  for (std::size_t v = 0; v < meta_.variables().size(); ++v) {
    total += meta_.variableByteSize(v);
  }
  return total;
}

template <typename Fn>
void Dataset::forEachRow(std::size_t varIdx, const nd::Region& region,
                         Fn&& fn) const {
  const nd::Coord varShape = meta_.variableShape(varIdx);
  if (!nd::Region::wholeSpace(varShape).containsRegion(region)) {
    throw std::out_of_range("Dataset: region outside variable bounds");
  }
  const std::size_t elemSize = dataTypeSize(meta_.variable(varIdx).type);
  const std::uint64_t base = variableOffset(varIdx);
  const std::size_t rank = region.rank();
  if (rank == 0) {
    throw std::invalid_argument("Dataset: rank-0 region I/O is not supported");
  }
  const auto rowLen = static_cast<std::uint64_t>(region.shape()[rank - 1]);

  // Iterate the region's prefix (all dims but the innermost); each prefix
  // coordinate identifies one contiguous run of rowLen elements.
  nd::Coord cur = region.corner();
  std::uint64_t valueOffset = 0;
  while (true) {
    std::uint64_t fileOff =
        base + static_cast<std::uint64_t>(nd::linearize(cur, varShape)) *
                   elemSize;
    fn(fileOff, rowLen, valueOffset);
    valueOffset += rowLen;
    // Advance the prefix coordinate (dims [0, rank-1)) in row-major order.
    bool done = true;
    for (std::size_t d = rank - 1; d-- > 0;) {
      if (++cur[d] < region.corner()[d] + region.shape()[d]) {
        done = false;
        break;
      }
      cur[d] = region.corner()[d];
    }
    if (done) break;
  }
}

void Dataset::writeRegion(std::size_t varIdx, const nd::Region& region,
                          std::span<const double> values) {
  if (static_cast<nd::Index>(values.size()) != region.volume()) {
    throw std::invalid_argument("Dataset::writeRegion: value count mismatch");
  }
  const DataType t = meta_.variable(varIdx).type;
  const std::size_t elemSize = dataTypeSize(t);
  std::vector<std::byte> rowBytes;
  forEachRow(varIdx, region,
             [&](std::uint64_t fileOff, std::uint64_t rowLen,
                 std::uint64_t valueOffset) {
               encodeValues(t, values.subspan(valueOffset, rowLen), rowBytes);
               storage_->writeAt(fileOff,
                                 std::span<const std::byte>(
                                     rowBytes.data(), rowLen * elemSize));
             });
}

std::vector<double> Dataset::readRegion(std::size_t varIdx,
                                        const nd::Region& region) const {
  std::vector<double> values(static_cast<std::size_t>(region.volume()));
  const DataType t = meta_.variable(varIdx).type;
  const std::size_t elemSize = dataTypeSize(t);
  std::vector<std::byte> rowBytes;
  forEachRow(varIdx, region,
             [&](std::uint64_t fileOff, std::uint64_t rowLen,
                 std::uint64_t valueOffset) {
               rowBytes.resize(rowLen * elemSize);
               storage_->readAt(fileOff, rowBytes);
               decodeValues(t, rowBytes,
                            std::span<double>(values.data() + valueOffset,
                                              rowLen));
             });
  return values;
}

void Dataset::fill(std::size_t varIdx, double value) {
  const nd::Coord shape = meta_.variableShape(varIdx);
  // Write in 1 MiB chunks of repeated encoded values.
  const DataType t = meta_.variable(varIdx).type;
  const std::size_t elemSize = dataTypeSize(t);
  const std::size_t chunkElems = (1u << 20) / elemSize;
  std::vector<double> chunk(chunkElems, value);
  std::vector<std::byte> encoded;
  encodeValues(t, chunk, encoded);
  std::uint64_t remaining =
      static_cast<std::uint64_t>(shape.volume()) * elemSize;
  std::uint64_t off = variableOffset(varIdx);
  while (remaining > 0) {
    std::uint64_t n = std::min<std::uint64_t>(remaining, encoded.size());
    storage_->writeAt(off, std::span<const std::byte>(encoded.data(), n));
    off += n;
    remaining -= n;
  }
}

}  // namespace sidr::sci
