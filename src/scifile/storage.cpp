#include "scifile/storage.hpp"

#include <cstring>
#include <stdexcept>
#include <system_error>
#include <unistd.h>

namespace sidr::sci {

void MemoryStorage::readAt(std::uint64_t offset,
                           std::span<std::byte> buf) const {
  if (offset + buf.size() > bytes_.size()) {
    throw std::out_of_range("MemoryStorage::readAt: past end");
  }
  std::memcpy(buf.data(), bytes_.data() + offset, buf.size());
}

void MemoryStorage::writeAt(std::uint64_t offset,
                            std::span<const std::byte> buf) {
  if (offset + buf.size() > bytes_.size()) {
    bytes_.resize(offset + buf.size());
  }
  std::memcpy(bytes_.data() + offset, buf.data(), buf.size());
}

namespace {

[[noreturn]] void throwErrno(const std::string& what, const std::string& path) {
  throw std::system_error(errno, std::generic_category(), what + ": " + path);
}

}  // namespace

FileStorage::FileStorage(const std::string& path, Mode mode) : path_(path) {
  const char* flags = nullptr;
  switch (mode) {
    case Mode::kCreate:
      flags = "w+b";
      writable_ = true;
      break;
    case Mode::kOpenExisting:
      flags = "r+b";
      writable_ = true;
      break;
    case Mode::kOpenReadOnly:
      flags = "rb";
      writable_ = false;
      break;
  }
  file_ = std::fopen(path.c_str(), flags);
  if (file_ == nullptr) throwErrno("FileStorage: open failed", path_);
}

FileStorage::~FileStorage() {
  if (file_ != nullptr) std::fclose(file_);
}

void FileStorage::readAt(std::uint64_t offset, std::span<std::byte> buf) const {
  if (::fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
    throwErrno("FileStorage: seek failed", path_);
  }
  if (std::fread(buf.data(), 1, buf.size(), file_) != buf.size()) {
    throw std::runtime_error("FileStorage: short read in " + path_);
  }
}

void FileStorage::writeAt(std::uint64_t offset,
                          std::span<const std::byte> buf) {
  if (!writable_) {
    throw std::logic_error("FileStorage: write to read-only file " + path_);
  }
  if (::fseeko(file_, static_cast<off_t>(offset), SEEK_SET) != 0) {
    throwErrno("FileStorage: seek failed", path_);
  }
  if (std::fwrite(buf.data(), 1, buf.size(), file_) != buf.size()) {
    throwErrno("FileStorage: write failed", path_);
  }
}

std::uint64_t FileStorage::size() const {
  if (::fseeko(file_, 0, SEEK_END) != 0) {
    throwErrno("FileStorage: seek failed", path_);
  }
  off_t pos = ::ftello(file_);
  if (pos < 0) throwErrno("FileStorage: tell failed", path_);
  return static_cast<std::uint64_t>(pos);
}

void FileStorage::resize(std::uint64_t newSize) {
  // Extend by writing a final zero byte (sparse on most filesystems) or
  // truncate via freopen-free ftruncate on the underlying descriptor.
  std::fflush(file_);
  if (::ftruncate(fileno(file_), static_cast<off_t>(newSize)) != 0) {
    throwErrno("FileStorage: ftruncate failed", path_);
  }
}

void FileStorage::flush() {
  if (std::fflush(file_) != 0) throwErrno("FileStorage: flush failed", path_);
  // Durability matters for the output-scaling measurements (Table 2):
  // without it, write timings measure the page cache, not the medium.
  if (::fsync(fileno(file_)) != 0) {
    throwErrno("FileStorage: fsync failed", path_);
  }
}

}  // namespace sidr::sci
