// Byte-addressable storage backends for SNDF containers.
//
// The scientific-library layer (Dataset) translates coordinate accesses
// into positioned byte reads/writes against one of these backends:
// FileStorage for real on-disk datasets (used by the Table 2 output
// micro-benchmark, where seek/write costs are the measurement) and
// MemoryStorage for fast in-process datasets in tests and examples.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace sidr::sci {

class Storage {
 public:
  virtual ~Storage() = default;

  /// Reads exactly buf.size() bytes at `offset`; throws on short read.
  virtual void readAt(std::uint64_t offset, std::span<std::byte> buf) const = 0;

  /// Writes buf at `offset`, extending the backing store if needed.
  virtual void writeAt(std::uint64_t offset,
                       std::span<const std::byte> buf) = 0;

  /// Current size in bytes.
  virtual std::uint64_t size() const = 0;

  /// Grows (zero-filled) or shrinks to exactly `newSize` bytes.
  virtual void resize(std::uint64_t newSize) = 0;

  /// Flushes buffered writes to the backing medium (no-op in memory).
  virtual void flush() {}
};

/// Growable in-memory backend.
class MemoryStorage final : public Storage {
 public:
  void readAt(std::uint64_t offset, std::span<std::byte> buf) const override;
  void writeAt(std::uint64_t offset, std::span<const std::byte> buf) override;
  std::uint64_t size() const override { return bytes_.size(); }
  void resize(std::uint64_t newSize) override { bytes_.resize(newSize); }

 private:
  std::vector<std::byte> bytes_;
};

/// Buffered stdio-backed file storage with RAII ownership of the handle.
class FileStorage final : public Storage {
 public:
  enum class Mode { kCreate, kOpenExisting, kOpenReadOnly };

  FileStorage(const std::string& path, Mode mode);
  ~FileStorage() override;

  FileStorage(const FileStorage&) = delete;
  FileStorage& operator=(const FileStorage&) = delete;

  void readAt(std::uint64_t offset, std::span<std::byte> buf) const override;
  void writeAt(std::uint64_t offset, std::span<const std::byte> buf) override;
  std::uint64_t size() const override;
  void resize(std::uint64_t newSize) override;
  void flush() override;

  const std::string& path() const noexcept { return path_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool writable_ = false;
};

}  // namespace sidr::sci
