#include "scifile/metadata.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace sidr::sci {

std::size_t dataTypeSize(DataType t) {
  switch (t) {
    case DataType::kInt32:
    case DataType::kFloat32:
      return 4;
    case DataType::kInt64:
    case DataType::kFloat64:
      return 8;
  }
  throw std::invalid_argument("dataTypeSize: bad DataType");
}

std::string dataTypeName(DataType t) {
  switch (t) {
    case DataType::kInt32:
      return "int";
    case DataType::kInt64:
      return "long";
    case DataType::kFloat32:
      return "float";
    case DataType::kFloat64:
      return "double";
  }
  throw std::invalid_argument("dataTypeName: bad DataType");
}

std::size_t Metadata::addDimension(std::string name, nd::Index length) {
  if (length <= 0) {
    throw std::invalid_argument("Metadata: dimension length must be positive");
  }
  dims_.push_back(Dimension{std::move(name), length});
  return dims_.size() - 1;
}

std::size_t Metadata::addVariable(std::string name, DataType type,
                                  const std::vector<std::string>& dimNames) {
  Variable v;
  v.name = std::move(name);
  v.type = type;
  for (const auto& dn : dimNames) {
    bool found = false;
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (dims_[i].name == dn) {
        v.dimIndices.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::invalid_argument("Metadata: unknown dimension " + dn);
    }
  }
  if (v.dimIndices.size() > nd::kMaxRank) {
    throw std::length_error("Metadata: variable rank exceeds kMaxRank");
  }
  vars_.push_back(std::move(v));
  return vars_.size() - 1;
}

void Metadata::setAttribute(const std::string& key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(key, std::move(value));
}

std::string Metadata::attribute(const std::string& key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return {};
}

std::size_t Metadata::variableIndex(const std::string& name) const {
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    if (vars_[i].name == name) return i;
  }
  throw std::invalid_argument("Metadata: unknown variable " + name);
}

nd::Coord Metadata::variableShape(std::size_t varIdx) const {
  const Variable& v = vars_.at(varIdx);
  nd::Coord shape = nd::Coord::zeros(v.dimIndices.size());
  for (std::size_t d = 0; d < v.dimIndices.size(); ++d) {
    shape[d] = dims_.at(v.dimIndices[d]).length;
  }
  return shape;
}

std::uint64_t Metadata::variableByteSize(std::size_t varIdx) const {
  return static_cast<std::uint64_t>(variableElementCount(varIdx)) *
         dataTypeSize(vars_.at(varIdx).type);
}

std::string Metadata::toText() const {
  std::ostringstream os;
  os << "dimensions:\n";
  for (const auto& d : dims_) {
    os << "  " << d.name << " = " << d.length << ";\n";
  }
  os << "variables:\n";
  for (const auto& v : vars_) {
    os << "  " << dataTypeName(v.type) << " " << v.name << "(";
    for (std::size_t i = 0; i < v.dimIndices.size(); ++i) {
      if (i != 0) os << ", ";
      os << dims_.at(v.dimIndices[i]).name;
    }
    os << ");\n";
  }
  return os.str();
}

namespace {

void putU64(std::vector<std::byte>& out, std::uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::byte>((x >> (b * 8)) & 0xff));
  }
}

void putString(std::vector<std::byte>& out, const std::string& s) {
  putU64(out, s.size());
  for (char c : s) out.push_back(static_cast<std::byte>(c));
}

class ByteCursor {
 public:
  explicit ByteCursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint64_t getU64() {
    if (pos_ + 8 > bytes_.size()) {
      throw std::out_of_range("Metadata::deserialize: truncated input");
    }
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(b)])
           << (b * 8);
    }
    pos_ += 8;
    return x;
  }

  std::string getString() {
    std::uint64_t n = getU64();
    if (pos_ + n > bytes_.size()) {
      throw std::out_of_range("Metadata::deserialize: truncated string");
    }
    std::string s(n, '\0');
    std::memcpy(s.data(), bytes_.data() + pos_, n);
    pos_ += n;
    return s;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> Metadata::serialize() const {
  std::vector<std::byte> out;
  putU64(out, dims_.size());
  for (const auto& d : dims_) {
    putString(out, d.name);
    putU64(out, static_cast<std::uint64_t>(d.length));
  }
  putU64(out, vars_.size());
  for (const auto& v : vars_) {
    putString(out, v.name);
    putU64(out, static_cast<std::uint64_t>(v.type));
    putU64(out, v.dimIndices.size());
    for (std::size_t di : v.dimIndices) putU64(out, di);
  }
  putU64(out, attrs_.size());
  for (const auto& [k, v] : attrs_) {
    putString(out, k);
    putString(out, v);
  }
  return out;
}

Metadata Metadata::deserialize(std::span<const std::byte> bytes) {
  ByteCursor cur(bytes);
  Metadata m;
  std::uint64_t nDims = cur.getU64();
  for (std::uint64_t i = 0; i < nDims; ++i) {
    std::string name = cur.getString();
    auto length = static_cast<nd::Index>(cur.getU64());
    m.addDimension(std::move(name), length);
  }
  std::uint64_t nVars = cur.getU64();
  for (std::uint64_t i = 0; i < nVars; ++i) {
    Variable v;
    v.name = cur.getString();
    v.type = static_cast<DataType>(cur.getU64());
    std::uint64_t nvd = cur.getU64();
    for (std::uint64_t d = 0; d < nvd; ++d) {
      std::size_t di = cur.getU64();
      if (di >= m.dims_.size()) {
        throw std::out_of_range("Metadata::deserialize: bad dim index");
      }
      v.dimIndices.push_back(di);
    }
    m.vars_.push_back(std::move(v));
  }
  std::uint64_t nAttrs = cur.getU64();
  for (std::uint64_t i = 0; i < nAttrs; ++i) {
    std::string k = cur.getString();
    std::string v = cur.getString();
    m.attrs_.emplace_back(std::move(k), std::move(v));
  }
  return m;
}

}  // namespace sidr::sci
