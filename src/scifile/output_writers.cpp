#include "scifile/output_writers.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

namespace sidr::sci {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

Metadata chunkMetadata(const std::string& varName, DataType type,
                       const nd::Coord& shape) {
  Metadata meta;
  std::vector<std::string> dimNames;
  for (std::size_t d = 0; d < shape.rank(); ++d) {
    std::string name = "dim" + std::to_string(d);
    meta.addDimension(name, shape[d]);
    dimNames.push_back(std::move(name));
  }
  meta.addVariable(varName, type, dimNames);
  return meta;
}

}  // namespace

WriteReport writeDenseChunk(const std::string& path,
                            const std::string& varName, DataType type,
                            const nd::Coord& totalShape,
                            const nd::Region& chunk,
                            std::span<const double> values) {
  auto start = Clock::now();
  Metadata meta = chunkMetadata(varName, type, chunk.shape());
  meta.setAttribute("origin", chunk.corner().toString());
  meta.setAttribute("total_shape", totalShape.toString());
  auto storage = std::make_shared<FileStorage>(path, FileStorage::Mode::kCreate);
  Dataset ds = Dataset::create(storage, meta);
  // The chunk is dense and contiguous: one sequential region write.
  ds.writeRegion(0, nd::Region::wholeSpace(chunk.shape()), values);
  storage->flush();
  WriteReport rep;
  rep.bytesWritten = values.size() * dataTypeSize(type);
  rep.fileSize = storage->size();
  rep.seconds = secondsSince(start);
  return rep;
}

std::pair<nd::Coord, std::vector<double>> readDenseChunk(
    const std::string& path, const std::string& varName) {
  auto storage =
      std::make_shared<FileStorage>(path, FileStorage::Mode::kOpenReadOnly);
  Dataset ds = Dataset::open(storage);
  std::size_t varIdx = ds.metadata().variableIndex(varName);
  nd::Coord origin = nd::Coord::parse(ds.metadata().attribute("origin"));
  nd::Coord shape = ds.metadata().variableShape(varIdx);
  return {origin, ds.readRegion(varIdx, nd::Region::wholeSpace(shape))};
}

WriteReport writeSentinelFile(const std::string& path,
                              const std::string& varName, DataType type,
                              const nd::Coord& totalShape, double sentinel,
                              std::span<const nd::Coord> coords,
                              std::span<const double> values) {
  if (coords.size() != values.size()) {
    throw std::invalid_argument("writeSentinelFile: size mismatch");
  }
  auto start = Clock::now();
  Metadata meta = chunkMetadata(varName, type, totalShape);
  meta.setAttribute("sentinel", std::to_string(sentinel));
  auto storage = std::make_shared<FileStorage>(path, FileStorage::Mode::kCreate);
  Dataset ds = Dataset::create(storage, meta);
  // The whole space is materialized and filled: the file is always the
  // size of the TOTAL output no matter how few keys this task holds.
  ds.fill(0, sentinel);
  const nd::Coord one = nd::Coord::ones(totalShape.rank());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    ds.writeRegion(0, nd::Region(coords[i], one),
                   std::span<const double>(&values[i], 1));
  }
  storage->flush();
  WriteReport rep;
  rep.bytesWritten = ds.metadata().variableByteSize(0) +
                     coords.size() * dataTypeSize(type);
  rep.fileSize = storage->size();
  rep.seconds = secondsSince(start);
  return rep;
}

WriteReport writeCoordPairs(const std::string& path,
                            std::span<const nd::Coord> coords,
                            std::span<const double> values) {
  if (coords.size() != values.size()) {
    throw std::invalid_argument("writeCoordPairs: size mismatch");
  }
  auto start = Clock::now();
  FileStorage storage(path, FileStorage::Mode::kCreate);
  std::vector<std::byte> buf;
  auto putU64 = [&buf](std::uint64_t x) {
    for (int b = 0; b < 8; ++b) {
      buf.push_back(static_cast<std::byte>((x >> (b * 8)) & 0xff));
    }
  };
  putU64(coords.size());
  putU64(coords.empty() ? 0 : coords[0].rank());
  for (std::size_t i = 0; i < coords.size(); ++i) {
    for (nd::Index c : coords[i]) putU64(static_cast<std::uint64_t>(c));
    std::uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(double));
    std::memcpy(&bits, &values[i], sizeof(bits));
    putU64(bits);
  }
  storage.writeAt(0, buf);
  storage.flush();
  WriteReport rep;
  rep.bytesWritten = buf.size();
  rep.fileSize = storage.size();
  rep.seconds = secondsSince(start);
  return rep;
}

std::pair<std::vector<nd::Coord>, std::vector<double>> readCoordPairs(
    const std::string& path) {
  FileStorage storage(path, FileStorage::Mode::kOpenReadOnly);
  std::vector<std::byte> buf(storage.size());
  storage.readAt(0, buf);
  std::size_t pos = 0;
  auto getU64 = [&buf, &pos]() {
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(buf.at(pos++)) << (b * 8);
    }
    return x;
  };
  std::uint64_t count = getU64();
  std::uint64_t rank = getU64();
  std::vector<nd::Coord> coords;
  std::vector<double> values;
  coords.reserve(count);
  values.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    nd::Coord c = nd::Coord::zeros(rank);
    for (std::uint64_t d = 0; d < rank; ++d) {
      c[d] = static_cast<nd::Index>(getU64());
    }
    coords.push_back(c);
    std::uint64_t bits = getU64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    values.push_back(v);
  }
  return {std::move(coords), std::move(values)};
}

}  // namespace sidr::sci
