// Metadata model for the SNDF ("Simple N-Dimensional Format") container.
//
// SNDF stands in for NetCDF/HDF5 in this reproduction. The paper relies
// on two properties of scientific file formats (section 2.1):
//   1. structural metadata (dimensions, variables, types) is stored
//      alongside the data and is cheap to read, and
//   2. data is accessed by logical coordinates, not byte offsets.
// Metadata models (1); Dataset (dataset.hpp) models (2).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ndarray/coord.hpp"

namespace sidr::sci {

/// Element types supported on disk. API-level values are doubles; they
/// are converted to the variable's on-disk type transparently.
enum class DataType : std::uint8_t {
  kInt32 = 0,
  kInt64 = 1,
  kFloat32 = 2,
  kFloat64 = 3,
};

/// Size in bytes of one element of the given type.
std::size_t dataTypeSize(DataType t);

/// Human-readable type name ("int", "long", "float", "double").
std::string dataTypeName(DataType t);

/// A named dimension, e.g. "time = 365".
struct Dimension {
  std::string name;
  nd::Index length = 0;

  friend bool operator==(const Dimension&, const Dimension&) = default;
};

/// A variable defined over an ordered list of dimensions,
/// e.g. "int temperature(time, lat, lon)".
struct Variable {
  std::string name;
  DataType type = DataType::kFloat64;
  std::vector<std::size_t> dimIndices;  ///< indices into Metadata::dimensions

  friend bool operator==(const Variable&, const Variable&) = default;
};

/// Dataset-level structural metadata: the dimension and variable tables.
class Metadata {
 public:
  Metadata() = default;

  /// Adds a dimension and returns its index.
  std::size_t addDimension(std::string name, nd::Index length);

  /// Adds a variable over previously added dimensions (by name) and
  /// returns its index. Throws if a dimension name is unknown.
  std::size_t addVariable(std::string name, DataType type,
                          const std::vector<std::string>& dimNames);

  /// Sets (or replaces) a global string attribute, e.g. the logical
  /// origin of a chunk within a larger dataset (NetCDF-style attribute).
  void setAttribute(const std::string& key, std::string value);

  /// Returns the attribute value, or an empty string when absent.
  std::string attribute(const std::string& key) const;

  const std::vector<Dimension>& dimensions() const noexcept { return dims_; }
  const std::vector<Variable>& variables() const noexcept { return vars_; }
  const std::vector<std::pair<std::string, std::string>>& attributes()
      const noexcept {
    return attrs_;
  }

  /// Index of the variable with the given name; throws if absent.
  std::size_t variableIndex(const std::string& name) const;

  const Variable& variable(std::size_t idx) const { return vars_.at(idx); }

  /// Logical shape of a variable (its dimensions' lengths, in order).
  nd::Coord variableShape(std::size_t varIdx) const;

  /// Total elements in a variable.
  nd::Index variableElementCount(std::size_t varIdx) const {
    return variableShape(varIdx).volume();
  }

  /// Bytes occupied by a variable's dense data.
  std::uint64_t variableByteSize(std::size_t varIdx) const;

  /// CDL-style rendering in the spirit of the paper's figure 1:
  ///   dimensions:         variables:
  ///     time = 365;         int temperature(time, lat, lon);
  std::string toText() const;

  /// Binary (de)serialization used by the SNDF header.
  std::vector<std::byte> serialize() const;
  static Metadata deserialize(std::span<const std::byte> bytes);

  friend bool operator==(const Metadata&, const Metadata&) = default;

 private:
  std::vector<Dimension> dims_;
  std::vector<Variable> vars_;
  std::vector<std::pair<std::string, std::string>> attrs_;
};

}  // namespace sidr::sci
