// SNDF dataset container: coordinate-addressed array I/O over a Storage.
//
// Layout:
//   [magic "SNDF1\0\0\0"] [u64 metadataLength] [metadata bytes]
//   [variable 0 dense payload, row-major] [variable 1 payload] ...
//
// All element access happens through logical coordinates (Regions), as
// with NetCDF/HDF5 access libraries; the dataset translates regions into
// the minimal set of contiguous byte runs (one per innermost row), so
// dense region writes are sequential and scattered writes pay seeks —
// the property the Table 2 experiment measures.
#pragma once

#include <memory>
#include <vector>

#include "ndarray/region.hpp"
#include "scifile/metadata.hpp"
#include "scifile/storage.hpp"

namespace sidr::sci {

class Dataset {
 public:
  /// Creates a new container with the given metadata. The storage is
  /// sized to hold all variables; contents are initially zero (memory)
  /// or sparse (file).
  static Dataset create(std::shared_ptr<Storage> storage, Metadata metadata);

  /// Opens an existing container and parses its header.
  static Dataset open(std::shared_ptr<Storage> storage);

  const Metadata& metadata() const noexcept { return meta_; }

  /// Writes `values` (row-major over `region`) into the variable.
  /// Values are converted to the variable's on-disk type.
  /// Throws if region is out of the variable's bounds or sizes mismatch.
  void writeRegion(std::size_t varIdx, const nd::Region& region,
                   std::span<const double> values);

  /// Reads the region's values (row-major) as doubles.
  std::vector<double> readRegion(std::size_t varIdx,
                                 const nd::Region& region) const;

  /// Fills an entire variable with a constant (used to lay down sentinel
  /// values for the sparse-output experiment).
  void fill(std::size_t varIdx, double value);

  /// Byte offset of a variable's payload within the container.
  std::uint64_t variableOffset(std::size_t varIdx) const;

  /// Total container size in bytes (header + all payloads).
  std::uint64_t totalByteSize() const;

  Storage& storage() noexcept { return *storage_; }

 private:
  Dataset(std::shared_ptr<Storage> storage, Metadata meta);

  /// Invokes fn(byteOffset, rowElements, regionValueOffset) for each
  /// contiguous innermost-dimension run of `region`.
  template <typename Fn>
  void forEachRow(std::size_t varIdx, const nd::Region& region, Fn&& fn) const;

  std::shared_ptr<Storage> storage_;
  Metadata meta_;
  std::uint64_t dataStart_ = 0;
  std::vector<std::uint64_t> varOffsets_;  ///< relative to dataStart_
};

}  // namespace sidr::sci
