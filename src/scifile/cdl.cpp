#include "scifile/cdl.hpp"

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace sidr::sci {

namespace {

struct Line {
  std::size_t number;
  std::string text;
};

[[noreturn]] void fail(const Line& line, const std::string& what) {
  std::ostringstream os;
  os << "parseCdl: " << what << " at line " << line.number << ": \""
     << line.text << "\"";
  throw std::invalid_argument(os.str());
}

std::string strip(const std::string& s) {
  std::size_t a = 0;
  std::size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

std::vector<std::string> splitList(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      parts.push_back(strip(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  parts.push_back(strip(cur));
  return parts;
}

DataType parseType(const Line& line, const std::string& name) {
  if (name == "int") return DataType::kInt32;
  if (name == "long") return DataType::kInt64;
  if (name == "float") return DataType::kFloat32;
  if (name == "double") return DataType::kFloat64;
  fail(line, "unknown type '" + name + "'");
}

}  // namespace

Metadata parseCdl(const std::string& text) {
  Metadata meta;
  enum class Section { kNone, kDimensions, kVariables } section =
      Section::kNone;

  std::istringstream in(text);
  std::string raw;
  std::size_t lineNo = 0;
  while (std::getline(in, raw)) {
    Line line{++lineNo, raw};
    std::string s = strip(raw);
    if (s.empty()) continue;
    if (s == "dimensions:") {
      section = Section::kDimensions;
      continue;
    }
    if (s == "variables:") {
      section = Section::kVariables;
      continue;
    }
    if (s.back() != ';') fail(line, "expected ';'");
    s.pop_back();
    s = strip(s);

    if (section == Section::kDimensions) {
      // name = length
      auto eq = s.find('=');
      if (eq == std::string::npos) fail(line, "expected 'name = length'");
      std::string name = strip(s.substr(0, eq));
      std::string len = strip(s.substr(eq + 1));
      if (name.empty() || len.empty()) fail(line, "empty dimension entry");
      try {
        meta.addDimension(name, std::stoll(len));
      } catch (const std::invalid_argument& e) {
        fail(line, e.what());
      }
    } else if (section == Section::kVariables) {
      // type name(dim, dim, ...)
      auto open = s.find('(');
      auto close = s.rfind(')');
      if (open == std::string::npos || close == std::string::npos ||
          close < open) {
        fail(line, "expected 'type name(dims...)'");
      }
      std::string head = strip(s.substr(0, open));
      auto space = head.find_last_of(" \t");
      if (space == std::string::npos) fail(line, "expected 'type name'");
      std::string typeName = strip(head.substr(0, space));
      std::string varName = strip(head.substr(space + 1));
      std::vector<std::string> dims =
          splitList(s.substr(open + 1, close - open - 1), ',');
      if (dims.size() == 1 && dims[0].empty()) dims.clear();
      try {
        meta.addVariable(varName, parseType(line, typeName), dims);
      } catch (const std::invalid_argument& e) {
        fail(line, e.what());
      }
    } else {
      fail(line, "entry outside 'dimensions:' / 'variables:' sections");
    }
  }
  return meta;
}

}  // namespace sidr::sci
