// Reduce-output writing strategies compared in the paper (section 4.4,
// Table 2).
//
// A Reduce task holds a set of output keys and values in the query's
// output space O. How those land on storage depends on the partitioner:
//  * partition+ gives each Reduce task a dense, contiguous keyblock -> a
//    small standalone chunk file whose global origin is metadata
//    (DenseChunkWriter; the paper's "SIDR" row in Table 2);
//  * Hadoop's modulo partitioner scatters a task's keys across the whole
//    output space -> either a full-size file with sentinel values
//    (SentinelWriter; grows with TOTAL output size) or explicit
//    coordinate/value pairs (CoordPairWriter; constant per useful byte
//    but doubles storage and loses native-format access).
#pragma once

#include <string>
#include <vector>

#include "ndarray/region.hpp"
#include "scifile/dataset.hpp"

namespace sidr::sci {

/// Result of one output-writing run, for benchmarking and tests.
struct WriteReport {
  std::uint64_t bytesWritten = 0;  ///< total bytes the strategy wrote
  std::uint64_t fileSize = 0;      ///< resulting file size on disk
  double seconds = 0.0;            ///< wall time of the write
};

/// SIDR strategy: write exactly the contiguous keyblock `chunk` of the
/// logical space `totalShape`, as a standalone SNDF file. The chunk's
/// global position is recorded in the "origin" attribute.
WriteReport writeDenseChunk(const std::string& path,
                            const std::string& varName, DataType type,
                            const nd::Coord& totalShape,
                            const nd::Region& chunk,
                            std::span<const double> values);

/// Reads back a dense chunk file: returns (origin, values).
std::pair<nd::Coord, std::vector<double>> readDenseChunk(
    const std::string& path, const std::string& varName);

/// Hadoop sentinel strategy: create a file covering the ENTIRE output
/// space, fill it with `sentinel`, then write this task's scattered
/// points. `coords` and `values` are parallel arrays.
WriteReport writeSentinelFile(const std::string& path,
                              const std::string& varName, DataType type,
                              const nd::Coord& totalShape, double sentinel,
                              std::span<const nd::Coord> coords,
                              std::span<const double> values);

/// Hadoop coordinate/value-pair strategy: append (coord, value) records;
/// storage overhead is rank * 8 bytes per element.
WriteReport writeCoordPairs(const std::string& path,
                            std::span<const nd::Coord> coords,
                            std::span<const double> values);

/// Reads back a coord-pair file (for round-trip tests).
std::pair<std::vector<nd::Coord>, std::vector<double>> readCoordPairs(
    const std::string& path);

}  // namespace sidr::sci
