// Dependency derivation: which input splits feed which keyblocks
// (paper section 3.2).
//
// I_l is the set of splits that, when mapped, produce at least one
// intermediate record assigned to keyblock l. SIDR computes every I_l
// when a query begins (the paper's "store" choice) by mapping each
// split's region through the extraction shape into an instance-grid
// range and intersecting with partition+'s keyblock ranges, then
// inverting. A per-task "re-compute" variant is also provided
// (section 3.2.1 presents this as a classic store-vs-recompute choice);
// tests assert the two agree.
#pragma once

#include "mapreduce/job.hpp"
#include "sidr/partition_plus.hpp"

namespace sidr::core {

struct DependencyInfo {
  /// I_l for every keyblock: ids of the splits it depends on, ascending.
  std::vector<std::vector<std::uint32_t>> keyblockToSplits;

  /// Inverse: keyblocks each split contributes to, ascending.
  std::vector<std::vector<std::uint32_t>> splitToKeyblocks;

  /// |K_l|: input pairs mapping into each keyblock — the expected count-
  /// annotation tally a reduce must accumulate before it may start
  /// (section 3.2.1, method 2).
  std::vector<std::uint64_t> expectedRepresents;

  /// Total Map->Reduce fetches SIDR will perform: sum of |I_l|
  /// (Table 3's "SIDR # Connections" column).
  std::uint64_t totalConnections() const {
    std::uint64_t n = 0;
    for (const auto& d : keyblockToSplits) n += d.size();
    return n;
  }
};

class DependencyCalculator {
 public:
  explicit DependencyCalculator(std::shared_ptr<const PartitionPlus> plan);

  /// Two-input (join) variant: splits with InputSplit::input == 1 are
  /// mapped through `secondary` instead of the plan's extraction. Both
  /// extractions must share an instance grid (they route into the same
  /// keyblocks), and expectedRepresents sums BOTH sides' cell volumes.
  DependencyCalculator(std::shared_ptr<const PartitionPlus> plan,
                       std::shared_ptr<const sh::ExtractionMap> secondary);

  /// Keyblocks that split `region` contributes to (ascending), through
  /// the PRIMARY extraction.
  std::vector<std::uint32_t> keyblocksForSplit(const nd::Region& region) const;

  /// Union over a (possibly multi-region, e.g. byte-range) split, through
  /// the extraction selected by InputSplit::input.
  std::vector<std::uint32_t> keyblocksForSplit(
      const mr::InputSplit& split) const;

  /// Full dependency map for a split set (the job-submission-time
  /// computation; its result rides along in the job specification).
  DependencyInfo computeAll(std::span<const mr::InputSplit> splits) const;

  /// Per-task recomputation of one I_l from scratch (store-vs-recompute
  /// ablation): scans all splits and keeps those touching `keyblock`.
  std::vector<std::uint32_t> recomputeSplitsFor(
      std::uint32_t keyblock, std::span<const mr::InputSplit> splits) const;

  /// Per-task recomputation of one I_l against the stored index: reuses
  /// DependencyInfo::splitToKeyblocks (already computed at submission)
  /// with a binary search per split, instead of re-deriving every
  /// split's keyblock set geometrically on each recovery. Agrees with
  /// both computeAll and the from-scratch variant. `info` must come
  /// from computeAll over a split set containing `splits` (ids index
  /// splitToKeyblocks).
  std::vector<std::uint32_t> recomputeSplitsFor(
      std::uint32_t keyblock, std::span<const mr::InputSplit> splits,
      const DependencyInfo& info) const;

 private:
  std::vector<std::uint32_t> keyblocksForSplitIn(
      const nd::Region& region, const sh::ExtractionMap& ex) const;
  const sh::ExtractionMap& extractionFor(const mr::InputSplit& split) const;

  std::shared_ptr<const PartitionPlus> plan_;
  std::shared_ptr<const sh::ExtractionMap> secondary_;  ///< null = one input
};

}  // namespace sidr::core
