// QueryPlanner: turns a StructuralQuery into a runnable mr::JobSpec for
// any of the three systems the paper compares.
//
//   kHadoop    — global barrier + modulo partitioner (structure-
//                oblivious; in the in-process engine it shares
//                SciHadoop's coordinate splits, the performance
//                difference between the two is an I/O-path property
//                modeled by the cluster simulator);
//   kSciHadoop — global barrier + modulo partitioner over coordinate
//                splits (SC '11 system);
//   kSidr      — partition+ keyblocks, derived dependencies I_l,
//                reduce-first scheduling, early-start reduces, count-
//                annotation validation.
#pragma once

#include "mapreduce/engine.hpp"
#include "mapreduce/engine_service.hpp"
#include "mapreduce/partitioners.hpp"
#include "sidr/fingerprint.hpp"
#include "scihadoop/datagen.hpp"
#include "scihadoop/operators.hpp"
#include "scihadoop/split_gen.hpp"
#include "sidr/dependency.hpp"

namespace sidr::core {

enum class SystemMode : std::uint8_t {
  kHadoop,
  kSciHadoop,
  kSidr,
  /// Sailfish (Rao et al., SoCC '12; paper section 5): defers keyblock
  /// assignment until ALL intermediate keys exist, eliminating skew by
  /// partitioning the observed key set — at the price of a STRENGTHENED
  /// barrier (reduces can no longer overlap their copy phase with map
  /// execution). Simulator-only baseline; the planner rejects it.
  kSailfish,
};

std::string systemModeName(SystemMode mode);

struct PlanOptions {
  SystemMode system = SystemMode::kSidr;
  std::uint32_t numReducers = 4;

  /// Split sizing: explicit element target, or derive from a count.
  nd::Index splitTargetElements = 0;   ///< 0: use desiredSplitCount
  std::size_t desiredSplitCount = 16;
  bool alignSplitsToExtraction = false;

  /// Keyblock priority order (SIDR only; empty = keyblock id order).
  std::vector<std::uint32_t> reducePriority;

  /// Skew-adaptive planning (DESIGN.md §18, kSidr only): run a sampling
  /// pass over the input splits estimating the post-filter key
  /// distribution per granule, then refine the partition+ granule deal
  /// so keyblocks carry equal estimated LOAD instead of equal key
  /// counts (PartitionPlus::refine). Purely a planning-stage change:
  /// keyblocks stay contiguous granule runs, dependencies are
  /// recomputed exactly against the refined boundaries, and every
  /// gating/early-result property holds unchanged. Results are
  /// bit-identical to the unrefined plan (pinned by skew_join_test).
  bool skewAdapt = false;
  /// Sampling budget: at most this many records total, and at most
  /// skewSampleFraction of each split's volume (see SkewSampleOptions).
  std::uint64_t skewSampleMaxRecords = 1ull << 16;
  double skewSampleFraction = 0.05;
  std::uint64_t skewSampleSeed = 0x51d25eedULL;

  /// Validate reduce-start correctness with count annotations.
  bool validateAnnotations = true;

  std::uint32_t mapSlots = 4;
  std::uint32_t reduceSlots = 3;
  std::uint32_t numThreads = 4;

  mr::RecoveryModel recovery = mr::RecoveryModel::kPersistAll;
  /// Failure injection (map and reduce attempts) + retry bound,
  /// forwarded to mr::JobSpec::faultPlan.
  mr::FaultPlan faultPlan;

  /// Record a per-attempt / per-phase obs::Trace into JobResult::trace
  /// (forwarded to mr::JobSpec::recordTrace; DESIGN.md section 13).
  bool recordTrace = false;

  /// Out-of-core knobs, forwarded verbatim to the matching
  /// mr::JobSpec fields (DESIGN.md section 14). Empty spillDirectory =
  /// in-memory shuffle; with it set, memoryBudgetBytes selects eager
  /// spill (0) or the pressure-evicting hybrid mode (> 0).
  std::string spillDirectory;
  std::uint32_t spillWriters = 4;
  std::uint64_t memoryBudgetBytes = 0;
  std::size_t mergeWindowBytes = 1 << 20;
  bool compressSpill = false;

  /// Shuffle data plane (DESIGN.md section 17), forwarded verbatim to
  /// mr::JobSpec::transport. Unset (the default) keeps the engine's
  /// zero-copy in-process handoff and the planner records its own
  /// recommendation in QueryPlan::recommendedTransport instead. An
  /// explicit kFileServed is validated here: it requires an eager-spill
  /// plan (spillDirectory set, memoryBudgetBytes == 0), since it serves
  /// committed job<id>/ segment files.
  std::optional<mr::ShuffleTransportKind> transport;
  /// Socket/file-served connection-pool size and per-fetch stall
  /// timeout, forwarded to the matching mr::JobSpec fields.
  std::uint32_t transportConnections = 2;
  std::uint32_t transportTimeoutMillis = 10000;

  /// Multi-job service knobs (DESIGN.md section 15), forwarded to the
  /// matching mr::JobSpec fields / QueryPlan::servicePolicy. jobWeight
  /// is the job's share under mr::SchedulingPolicy::kWeightedFair;
  /// keepSpillOnFailure preserves the job's spill namespace on a
  /// non-success outcome for post-mortem debugging; servicePolicy is
  /// the planner's recommendation for how an EngineService should
  /// schedule this query's tasks against its peers — kSidr plans
  /// recommend the dependency-aware reduce-first policy, the barrier
  /// systems plain FIFO.
  double jobWeight = 1.0;
  bool keepSpillOnFailure = false;

  /// Stable identity of the input data, e.g. a dataset path + version
  /// or a content digest. When non-empty the planner computes the
  /// plan's MapFingerprint (JobSpec::mapFingerprint) — the key under
  /// which an EngineService's segment cache shares committed map output
  /// between byte-identical resubmissions (DESIGN.md §16). Empty (the
  /// default) leaves the fingerprint unset and the job outside the
  /// cache entirely: the planner cannot know that two synthetic reader
  /// factories produce the same bytes, so the CALLER asserts input
  /// identity by naming it.
  std::string datasetId;
};

/// A fully-assembled plan: the JobSpec plus the structural artifacts the
/// caller may want to inspect (keyspace, keyblocks, dependencies).
struct QueryPlan {
  mr::JobSpec spec;
  std::shared_ptr<const sh::ExtractionMap> extraction;
  std::shared_ptr<const PartitionPlus> partitionPlus;  ///< kSidr only
  DependencyInfo dependencies;                         ///< kSidr only
  /// Recommended EngineService scheduling policy for this plan: kSidr
  /// plans carry kReduceFirst (the paper's dependency-aware ordering
  /// lifted to the service level), barrier plans kFifo. Callers
  /// submitting to a service can seed ServiceConfig::policy from it.
  mr::SchedulingPolicy servicePolicy = mr::SchedulingPolicy::kFifo;
  /// Recommended shuffle transport for this plan: eager-spill plans
  /// (spillDirectory set, no memory budget) recommend kFileServed —
  /// their map output is already committed files, so serving those
  /// files through SegmentStream windows adds no residency — everything
  /// else recommends the zero-copy kInProcess handoff. Purely advisory:
  /// the spec carries PlanOptions::transport (or stays unset), never
  /// this field.
  mr::ShuffleTransportKind recommendedTransport =
      mr::ShuffleTransportKind::kInProcess;
};

/// Canonical MapFingerprint: digests exactly the fields that determine
/// the BYTES of a job's committed map output — dataset identity, the
/// structural query (extraction/filter spec), split geometry, the
/// intermediate keySpace and the partition plan (mode + reducer count;
/// skew bound and extraction are already absorbed via the query).
/// Execution knobs that cannot change map-output bytes (threads, slots,
/// spill/budget/compression settings, tracing, fault plans, weights,
/// priorities) MUST NOT leak into the key: a spilling resubmission of
/// an in-memory query is a cache HIT. Returns nullopt when datasetId is
/// empty. The digest is part of the cache key format — pinned by unit
/// tests, frozen like the builder itself.
std::optional<Fingerprint128> computeMapFingerprint(
    const sh::StructuralQuery& query, const nd::Coord& inputShape,
    const std::string& datasetId, const mr::JobSpec& spec);

class QueryPlanner {
 public:
  QueryPlanner(sh::StructuralQuery query, nd::Coord inputShape);

  /// Builds a plan whose record readers synthesize values from `fn`.
  /// Rejects kJoin queries (two inputs) — use planJoin.
  QueryPlan plan(const sh::ValueFn& fn, const PlanOptions& options) const;

  /// Builds a plan reading from a real SNDF dataset variable.
  QueryPlan plan(std::shared_ptr<sci::Dataset> dataset, std::size_t varIdx,
                 const PlanOptions& options) const;

  /// Builds a two-input plan for an OperatorKind::kJoin query
  /// (DESIGN.md §18): the left array (the query's own fields) and the
  /// right array (StructuralQuery::join) are split independently, each
  /// side's splits run its own JoinSideMapper, and both route into the
  /// shared instance-grid keyspace where JoinReducer pairs them. The
  /// query must use KeyMode::kRenumber and the two extraction grids
  /// must be identical. Under kSidr, dependency sets span both inputs
  /// and skewAdapt samples BOTH sides (per-granule load estimate =
  /// product of the sides' estimates, matching the join's output cost).
  QueryPlan planJoin(const sh::ValueFn& leftFn, const sh::ValueFn& rightFn,
                     const PlanOptions& options) const;

  const sh::StructuralQuery& query() const noexcept { return query_; }
  const nd::Coord& inputShape() const noexcept { return inputShape_; }

 private:
  QueryPlan assemble(mr::RecordReaderFactory readerFactory,
                     const PlanOptions& options) const;

  sh::StructuralQuery query_;
  nd::Coord inputShape_;
};

}  // namespace sidr::core
