#include "sidr/partition_plus.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace sidr::core {

namespace {

/// Chooses the granule: a "prefix slab" {1,...,1,c,full,...,full} of the
/// instance grid with volume <= bound. Slabs keep contiguous granule
/// runs contiguous in row-major K' order — the property that makes
/// keyblocks dense (paper footnote 1 trades a little skew for simpler
/// shapes and cheaper routing).
nd::Coord chooseGranuleShape(const nd::Coord& grid, nd::Index bound) {
  nd::Coord unit = nd::Coord::ones(grid.rank());
  nd::Index trailing = 1;
  for (std::size_t d = grid.rank(); d-- > 0;) {
    if (trailing * grid[d] <= bound) {
      unit[d] = grid[d];
      trailing *= grid[d];
    } else {
      nd::Index c = bound / trailing;
      unit[d] = std::max<nd::Index>(1, std::min(c, grid[d]));
      break;
    }
  }
  return unit;
}

}  // namespace

PartitionPlus::PartitionPlus(
    std::shared_ptr<const sh::ExtractionMap> extraction,
    std::uint32_t numReducers, nd::Index skewBound)
    : extraction_(std::move(extraction)),
      numReducers_(numReducers),
      skewBound_(skewBound) {
  if (numReducers_ == 0) {
    throw std::invalid_argument("PartitionPlus: numReducers must be > 0");
  }
  const nd::Coord& grid = extraction_->instanceGridShape();
  const nd::Index n = grid.volume();

  if (skewBound_ <= 0) {
    // System-chosen bound: aim for ~16 granules per keyblock so skew is
    // a small fraction of a keyblock while routing stays cheap.
    skewBound_ = std::max<nd::Index>(1, n / (static_cast<nd::Index>(
                                               numReducers_) *
                                             16));
  }
  granuleShape_ = chooseGranuleShape(grid, skewBound_);
  granuleSize_ = granuleShape_.volume();
  granuleCount_ = (n + granuleSize_ - 1) / granuleSize_;
  granulesPerBlockFloor_ = granuleCount_ / numReducers_;
  blocksWithExtra_ = granuleCount_ % numReducers_;
}

std::uint32_t PartitionPlus::keyblockOfGranule(nd::Index granule) const {
  if (granule < 0 || granule >= granuleCount_) {
    throw std::out_of_range("PartitionPlus: granule index out of range");
  }
  if (refined_) {
    // Owning keyblock k satisfies granuleStart[k] <= granule <
    // granuleStart[k+1]; with equal adjacent starts (empty keyblocks)
    // the LAST k whose start is <= granule is the non-empty owner.
    const auto& starts = refined_->granuleStart;
    auto it = std::upper_bound(starts.begin(), starts.end(), granule);
    return static_cast<std::uint32_t>((it - starts.begin()) - 1);
  }
  // Blocks holding q+1 granules come LAST: the final granule (possibly
  // ragged, shorter than granuleSize_) then always lands in a q+1 block,
  // keeping the max-min keyblock size within one granule.
  const nd::Index q = granulesPerBlockFloor_;
  const nd::Index plainBlocks =
      static_cast<nd::Index>(numReducers_) - blocksWithExtra_;
  const nd::Index boundary = plainBlocks * q;
  if (granule < boundary) {
    return static_cast<std::uint32_t>(granule / q);
  }
  return static_cast<std::uint32_t>(plainBlocks +
                                    (granule - boundary) / (q + 1));
}

std::uint32_t PartitionPlus::keyblockOfInstance(const nd::Coord& g) const {
  nd::Index linear = nd::linearize(g, extraction_->instanceGridShape());
  return keyblockOfGranule(linear / granuleSize_);
}

std::uint32_t PartitionPlus::partition(const nd::Coord& key,
                                       std::uint32_t numReducers) const {
  if (numReducers != numReducers_) {
    throw std::logic_error(
        "PartitionPlus: job reducer count differs from the plan");
  }
  return keyblockOfInstance(extraction_->instanceForKey(key));
}

std::uint32_t PartitionPlus::partitionRun(const nd::Coord& key,
                                          std::uint64_t linearKey,
                                          std::uint32_t numReducers,
                                          std::uint64_t& runEnd) const {
  const nd::Coord& grid = extraction_->instanceGridShape();
  if (grid.rank() == 0) {
    // Degenerate scalar grid: fall back to the single-key default.
    return Partitioner::partitionRun(key, linearKey, numReducers, runEnd);
  }
  if (numReducers != numReducers_) {
    throw std::logic_error(
        "PartitionPlus: job reducer count differs from the plan");
  }
  const nd::Coord g = extraction_->instanceForKey(key);
  const nd::Index linG = nd::linearize(g, grid);
  const std::uint32_t kb = keyblockOfGranule(linG / granuleSize_);
  // The run covers the rest of g's instance-grid row, clipped to the
  // keyblock's (linearly contiguous) instance range: within it every
  // instance shares the keyblock, and — because consecutive same-row
  // instances map to same-row intermediate keys — every VALID key
  // between this one and the run's last key is one of those instances'
  // keys. runEnd is (linear of the run's LAST key) + 1, never the next
  // instance's key: in preserve-coords mode the latter could overshoot
  // the row and claim keys belonging to a different instance row.
  const std::size_t lastD = grid.rank() - 1;
  const nd::Index rowEnd = linG + (grid[lastD] - g[lastD]);
  const nd::Index kbEnd = instanceRange(kb).second;
  const nd::Index gRunEnd = std::min(rowEnd, kbEnd);
  nd::Coord gLast = g;
  gLast[lastD] += gRunEnd - 1 - linG;
  runEnd = static_cast<std::uint64_t>(
               nd::linearize(extraction_->keyForInstance(gLast),
                             extraction_->intermediateSpaceShape())) +
           1;
  return kb;
}

std::pair<nd::Index, nd::Index> PartitionPlus::uniformGranuleRange(
    std::uint32_t keyblock) const {
  const nd::Index q = granulesPerBlockFloor_;
  const auto kb = static_cast<nd::Index>(keyblock);
  const nd::Index plainBlocks =
      static_cast<nd::Index>(numReducers_) - blocksWithExtra_;
  if (kb < plainBlocks) {
    return {kb * q, kb * q + q};
  }
  const nd::Index gFirst = plainBlocks * q + (kb - plainBlocks) * (q + 1);
  return {gFirst, gFirst + (q + 1)};
}

std::pair<nd::Index, nd::Index> PartitionPlus::instanceRange(
    std::uint32_t keyblock) const {
  if (keyblock >= numReducers_) {
    throw std::out_of_range("PartitionPlus: keyblock out of range");
  }
  nd::Index gFirst;
  nd::Index gLast;
  if (refined_) {
    gFirst = refined_->granuleStart[keyblock];
    gLast = refined_->granuleStart[keyblock + 1];
  } else {
    std::tie(gFirst, gLast) = uniformGranuleRange(keyblock);
  }
  const nd::Index n = extraction_->instanceCount();
  nd::Index first = std::min(gFirst * granuleSize_, n);
  nd::Index last = std::min(gLast * granuleSize_, n);
  return {first, last};
}

bool PartitionPlus::refine(std::span<const double> granuleWeights) {
  if (static_cast<nd::Index>(granuleWeights.size()) != granuleCount_) {
    throw std::invalid_argument(
        "PartitionPlus::refine: need one weight per granule");
  }
  double total = 0.0;
  double wmax = 0.0;
  for (double w : granuleWeights) {
    if (!std::isfinite(w) || w < 0.0) {
      throw std::invalid_argument(
          "PartitionPlus::refine: weights must be finite and >= 0");
    }
    total += w;
    wmax = std::max(wmax, w);
  }
  refined_.reset();
  if (total <= 0.0) return false;  // no signal: keep the uniform deal

  // Prefix sums, then boundary k = first granule where the prefix
  // reaches k/r of the total. lower_bound keeps the boundaries
  // monotone (the prefix is non-decreasing), so keyblocks remain
  // contiguous granule runs; a granule heavier than the per-block
  // target simply leaves its neighbour blocks empty.
  std::vector<double> prefix(static_cast<std::size_t>(granuleCount_) + 1, 0.0);
  for (nd::Index g = 0; g < granuleCount_; ++g) {
    prefix[static_cast<std::size_t>(g) + 1] =
        prefix[static_cast<std::size_t>(g)] +
        granuleWeights[static_cast<std::size_t>(g)];
  }
  RefinedPartition r;
  r.granuleStart.assign(static_cast<std::size_t>(numReducers_) + 1, 0);
  r.granuleStart.back() = granuleCount_;
  for (std::uint32_t k = 1; k < numReducers_; ++k) {
    const double target =
        total * (static_cast<double>(k) / static_cast<double>(numReducers_));
    auto it = std::lower_bound(prefix.begin(), prefix.end(), target);
    r.granuleStart[k] = static_cast<nd::Index>(it - prefix.begin());
  }
  r.totalWeight = total;
  r.maxGranuleWeight = wmax;

  bool matchesUniform = true;
  for (std::uint32_t kb = 0; kb < numReducers_; ++kb) {
    auto [uFirst, uLast] = uniformGranuleRange(kb);
    const nd::Index rFirst = r.granuleStart[kb];
    const nd::Index rLast = r.granuleStart[kb + 1];
    if (rFirst != uFirst || rLast != uLast) matchesUniform = false;
    r.maxLoadBefore =
        std::max(r.maxLoadBefore,
                 prefix[static_cast<std::size_t>(
                     std::min(uLast, granuleCount_))] -
                     prefix[static_cast<std::size_t>(
                         std::min(uFirst, granuleCount_))]);
    r.maxLoadAfter = std::max(
        r.maxLoadAfter, prefix[static_cast<std::size_t>(rLast)] -
                            prefix[static_cast<std::size_t>(rFirst)]);
    const nd::Index uCount = std::min(uLast, granuleCount_) -
                             std::min(uFirst, granuleCount_);
    if (rLast - rFirst < uCount) ++r.splitKeyblocks;
    if (rLast - rFirst > uCount) ++r.coalescedKeyblocks;
  }
  // A deal identical to the uniform one routes identically; keeping the
  // plan officially UNREFINED keeps its map fingerprint equal to the
  // unrefined plan's, so the two stay segment-cache-compatible.
  if (matchesUniform) return false;
  // Near-uniform noisy loads can land boundaries that make the WORST
  // keyblock up to one granule heavier than the uniform deal's. A
  // refinement that does not strictly improve the worst load would
  // perturb routing and the fingerprint for nothing — decline it.
  if (r.maxLoadAfter >= r.maxLoadBefore) return false;
  refined_ = std::move(r);
  return true;
}

nd::Index PartitionPlus::realizedSkew() const {
  nd::Index mn = extraction_->instanceCount();
  nd::Index mx = 0;
  for (std::uint32_t kb = 0; kb < numReducers_; ++kb) {
    nd::Index s = keyblockSize(kb);
    mn = std::min(mn, s);
    mx = std::max(mx, s);
  }
  return mx - mn;
}

std::vector<nd::Region> PartitionPlus::keyblockRegions(
    std::uint32_t keyblock) const {
  auto [first, last] = instanceRange(keyblock);
  return linearRangeToRegions(first, last, extraction_->instanceGridShape());
}

}  // namespace sidr::core
