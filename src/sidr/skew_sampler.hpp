// Key-distribution sampling for skew-adaptive planning (DESIGN.md §18).
//
// partition+ balances KEY COUNTS, which is the wrong currency when the
// per-key load varies — a filter whose survivors cluster spatially
// (paper Query 2) or a join whose hot cells multiply (SharesSkew) loads
// a key-balanced deal arbitrarily unevenly. Following Fan et al.'s
// key-distribution load balancing, a cheap pre-pass samples the REAL
// record readers at deterministic pseudo-random coordinates, maps each
// sampled input through the extraction into its granule, and tallies
// estimated surviving records per granule. The planner feeds the
// estimate to PartitionPlus::refine, which re-deals granule boundaries
// by load instead of count.
#pragma once

#include <limits>
#include <span>

#include "mapreduce/job.hpp"
#include "sidr/partition_plus.hpp"

namespace sidr::core {

struct SkewSampleOptions {
  /// Total sampling budget across all splits, apportioned by split
  /// volume (every non-empty split gets at least one sample).
  std::uint64_t maxSampleRecords = 1 << 16;

  /// Per-split cap: never sample more than this fraction of a split's
  /// elements (budget permitting).
  double sampleFraction = 0.05;

  /// Seed for the deterministic per-split sample streams: the same
  /// (seed, splits, readers) always yields the same estimate, so a
  /// refined plan is reproducible.
  std::uint64_t seed = 0x51d25eedULL;

  /// Survival predicate: a sampled value counts only when strictly
  /// greater than this (the planner sets the query's filter threshold
  /// here). The -infinity default counts every sampled record.
  double keepAbove = -std::numeric_limits<double>::infinity();
};

struct SkewEstimate {
  /// Estimated surviving-record count per granule, scaled to the full
  /// population (each split's tallies are multiplied by splitVolume /
  /// samplesTaken). Size == plan.granuleCount().
  std::vector<double> granuleWeights;

  /// Reader records actually sampled / of those, how many survived the
  /// keepAbove predicate (raw, unscaled).
  std::uint64_t sampledRecords = 0;
  std::uint64_t survivingRecords = 0;
};

/// Samples `splits` through `readerFactory` and estimates the surviving
/// key distribution over `plan`'s granules. Only the plan's granule
/// GEOMETRY (granuleSize) is consulted, never its keyblock deal, so the
/// same estimate can refine the plan it was measured against. For
/// two-input jobs call once per side (with that side's extraction,
/// splits and reader) and combine in the planner.
SkewEstimate sampleKeyDistribution(const sh::ExtractionMap& extraction,
                                   const PartitionPlus& plan,
                                   std::span<const mr::InputSplit> splits,
                                   const mr::RecordReaderFactory& readerFactory,
                                   const SkewSampleOptions& options);

}  // namespace sidr::core
