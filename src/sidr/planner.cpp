#include "sidr/planner.hpp"

#include "sidr/skew_sampler.hpp"

namespace sidr::core {

std::string systemModeName(SystemMode mode) {
  switch (mode) {
    case SystemMode::kHadoop:
      return "Hadoop";
    case SystemMode::kSciHadoop:
      return "SciHadoop";
    case SystemMode::kSidr:
      return "SIDR";
    case SystemMode::kSailfish:
      return "Sailfish";
  }
  throw std::invalid_argument("systemModeName: bad mode");
}

QueryPlanner::QueryPlanner(sh::StructuralQuery query, nd::Coord inputShape)
    : query_(std::move(query)), inputShape_(inputShape) {}

std::optional<Fingerprint128> computeMapFingerprint(
    const sh::StructuralQuery& query, const nd::Coord& inputShape,
    const std::string& datasetId, const mr::JobSpec& spec) {
  if (datasetId.empty()) return std::nullopt;
  FingerprintBuilder fb;
  // Version tag: bumping it invalidates every cached entry at once if
  // the canonicalization below ever has to change shape.
  fb.addString("sidr.mapfp.v1");

  // Dataset identity: what the splits' regions address.
  fb.addString(datasetId);
  fb.addCoord(inputShape);

  // Extraction / filter spec: every query field can change which values
  // a map emits, which key it emits them under, or how they combine.
  fb.addString(query.variable);
  fb.addBool(query.subset.has_value());
  if (query.subset) fb.addRegion(*query.subset);
  fb.addU32(static_cast<std::uint32_t>(query.op));
  fb.addCoord(query.extractionShape);
  fb.addBool(query.stride.has_value());
  if (query.stride) fb.addCoord(*query.stride);
  fb.addU32(static_cast<std::uint32_t>(query.edgeMode));
  fb.addU32(static_cast<std::uint32_t>(query.keyMode));
  fb.addDouble(query.filterThreshold);
  fb.addI64(query.skewBound);

  // Split geometry: per (map, keyblock) segment content is a function
  // of which input regions each split covers, in order.
  fb.addU64(spec.splits.size());
  for (const mr::InputSplit& split : spec.splits) {
    fb.addU32(split.id);
    fb.addU64(split.regions.size());
    for (const nd::Region& r : split.regions) fb.addRegion(r);
  }

  // Key space + partition plan: where each intermediate key routes.
  // Mode distinguishes partition+ from the modulo partitioner; both are
  // fully determined by (extraction, numReducers, skewBound), all
  // absorbed above, and numReducers here.
  fb.addCoord(spec.keySpace);
  fb.addU32(static_cast<std::uint32_t>(spec.mode));
  fb.addU32(spec.numReducers);

  // Gated appends below extend the digest WITHOUT disturbing existing
  // single-input / unrefined digests (those take neither branch, so
  // their byte streams — and pinned values — are unchanged).

  // Two-input join: the right side's geometry, both survival
  // thresholds, and which input each split reads all change map bytes.
  if (query.join) {
    fb.addString("sidr.mapfp.join.v1");
    fb.addString(query.join->variable);
    fb.addCoord(query.join->inputShape);
    fb.addCoord(query.join->extractionShape);
    fb.addBool(query.join->stride.has_value());
    if (query.join->stride) fb.addCoord(*query.join->stride);
    fb.addDouble(query.join->leftThreshold);
    fb.addDouble(query.join->rightThreshold);
    for (const mr::InputSplit& split : spec.splits) {
      fb.addU32(split.input);
    }
  }

  // Skew-adapted partition refinement: refined boundaries re-route keys,
  // changing per-(map, keyblock) segment content. A no-op refinement
  // never reaches here (PartitionPlus::refine refuses it), so a
  // refined-but-identical plan keeps the unrefined digest and stays
  // cache-compatible.
  if (const auto* pp =
          dynamic_cast<const PartitionPlus*>(spec.partitioner.get());
      pp != nullptr && pp->refined()) {
    fb.addString("sidr.mapfp.refined.v1");
    const RefinedPartition& rp = *pp->refinement();
    fb.addU64(rp.granuleStart.size());
    for (nd::Index s : rp.granuleStart) {
      fb.addU64(static_cast<std::uint64_t>(s));
    }
  }
  return fb.digest();
}

namespace {

/// Execution-option plumbing shared by single-input and join assembly:
/// everything in PlanOptions that forwards verbatim to the JobSpec.
/// Returns whether the plan spills eagerly (drives transport choices).
bool fillExecutionOptions(mr::JobSpec& spec, const PlanOptions& options) {
  spec.numReducers = options.numReducers;
  spec.mapSlots = options.mapSlots;
  spec.reduceSlots = options.reduceSlots;
  spec.numThreads = options.numThreads;
  spec.recovery = options.recovery;
  spec.faultPlan = options.faultPlan;
  spec.recordTrace = options.recordTrace;
  spec.spillDirectory = options.spillDirectory;
  spec.spillWriters = options.spillWriters;
  spec.memoryBudgetBytes = options.memoryBudgetBytes;
  spec.mergeWindowBytes = options.mergeWindowBytes;
  spec.compressSpill = options.compressSpill;
  // Transport selection (DESIGN.md section 17): kFileServed only makes
  // sense when map output commits to files eagerly — reject the
  // combination here with the same rule validateJobSpec enforces, so a
  // planner caller learns at plan time rather than submit time.
  const bool eagerSpillPlan =
      !options.spillDirectory.empty() && options.memoryBudgetBytes == 0;
  if (options.transport == mr::ShuffleTransportKind::kFileServed &&
      !eagerSpillPlan) {
    throw std::invalid_argument(
        "QueryPlanner: the file-served transport requires an eager-spill "
        "plan (spillDirectory set, memoryBudgetBytes == 0)");
  }
  spec.transport = options.transport;
  spec.transportConnections = options.transportConnections;
  spec.transportTimeoutMillis = options.transportTimeoutMillis;
  spec.weight = options.jobWeight;
  spec.keepSpillOnFailure = options.keepSpillOnFailure;
  return eagerSpillPlan;
}

/// Runs the skew sampler over one side's splits and returns smoothed
/// per-granule weights: estimate + 1% of the mean granule weight, so a
/// granule the sample happened to miss still counts a sliver (a zero
/// would let refine() place a boundary mid-hotspot on a sparse sample).
std::vector<double> smoothedWeights(const SkewEstimate& est) {
  double total = 0.0;
  for (double w : est.granuleWeights) total += w;
  const double smooth =
      est.granuleWeights.empty()
          ? 0.0
          : total / static_cast<double>(est.granuleWeights.size()) * 0.01;
  std::vector<double> weights = est.granuleWeights;
  for (double& w : weights) w += smooth;
  return weights;
}

SkewSampleOptions sampleOptionsFrom(const PlanOptions& options,
                                    double keepAbove) {
  SkewSampleOptions so;
  so.maxSampleRecords = options.skewSampleMaxRecords;
  so.sampleFraction = options.skewSampleFraction;
  so.seed = options.skewSampleSeed;
  so.keepAbove = keepAbove;
  return so;
}

void recordRefinement(mr::JobSpec& spec, const PartitionPlus& pp) {
  if (const RefinedPartition* rp = pp.refinement()) {
    spec.skewStats.refined = true;
    spec.skewStats.splitKeyblocks = rp->splitKeyblocks;
    spec.skewStats.coalescedKeyblocks = rp->coalescedKeyblocks;
  }
}

}  // namespace

QueryPlan QueryPlanner::assemble(mr::RecordReaderFactory readerFactory,
                                 const PlanOptions& options) const {
  if (options.system == SystemMode::kSailfish) {
    throw std::invalid_argument(
        "QueryPlanner: Sailfish is a simulator-only baseline (see "
        "sim::buildWorkload)");
  }
  if (query_.op == sh::OperatorKind::kJoin) {
    throw std::invalid_argument(
        "QueryPlanner: kJoin reads two inputs — use planJoin");
  }
  QueryPlan plan;
  auto extraction =
      std::make_shared<const sh::ExtractionMap>(query_, inputShape_);
  plan.extraction = extraction;

  sh::SplitOptions splitOpts;
  splitOpts.targetElements =
      options.splitTargetElements > 0
          ? options.splitTargetElements
          : sh::targetElementsForCount(
                query_.subset ? query_.subset->shape() : inputShape_,
                options.desiredSplitCount);
  splitOpts.alignToExtraction = options.alignSplitsToExtraction;

  mr::JobSpec spec;
  // Splits cover only the query's domain (SciHadoop reads just the
  // requested coordinate range); subset queries offset the slabs.
  const nd::Region& domain = extraction->domain();
  spec.splits = sh::generateSplits(domain.shape(), *extraction, splitOpts);
  if (domain.corner() != nd::Coord::zeros(domain.rank())) {
    for (mr::InputSplit& split : spec.splits) {
      for (nd::Region& region : split.regions) {
        region = nd::Region(region.corner().plus(domain.corner()),
                            region.shape());
      }
    }
  }
  spec.readerFactory = std::move(readerFactory);
  spec.mapperFactory = sh::makeStructuralMapperFactory(query_, extraction);
  spec.reducerFactory = sh::makeStructuralReducerFactory(query_);
  const bool eagerSpillPlan = fillExecutionOptions(spec, options);
  // The extraction map bounds every intermediate key, so every planner
  // job runs the linearized-key fast path (DESIGN.md section 11). This
  // is the same space both partitioners linearize over: ModuloPartitioner
  // is constructed with it and partition+ expresses its runs in it.
  spec.keySpace = extraction->intermediateSpaceShape();

  if (options.system == SystemMode::kSidr) {
    auto pp = std::make_shared<PartitionPlus>(extraction, options.numReducers,
                                              query_.skewBound);
    if (options.skewAdapt) {
      // Sampling pass (DESIGN.md §18): estimate the post-filter key
      // distribution per granule and re-deal granule boundaries to
      // balance estimated load. Only kFilter drops records; every other
      // operator's load is its key count, which the sampler still
      // measures (non-uniform only under pad-mode clipped cells).
      const double keepAbove =
          query_.op == sh::OperatorKind::kFilter
              ? query_.filterThreshold
              : -std::numeric_limits<double>::infinity();
      SkewEstimate est = sampleKeyDistribution(
          *extraction, *pp, spec.splits, spec.readerFactory,
          sampleOptionsFrom(options, keepAbove));
      spec.skewStats.sampledRecords = est.sampledRecords;
      pp->refine(smoothedWeights(est));
      recordRefinement(spec, *pp);
    }
    std::shared_ptr<const PartitionPlus> frozen = std::move(pp);
    plan.partitionPlus = frozen;
    spec.partitioner = frozen;
    spec.mode = mr::ExecutionMode::kSidr;
    DependencyCalculator calc(frozen);
    plan.dependencies = calc.computeAll(spec.splits);
    spec.reduceDeps = plan.dependencies.keyblockToSplits;
    if (options.validateAnnotations) {
      spec.expectedRepresents = plan.dependencies.expectedRepresents;
    }
    spec.reducePriority = options.reducePriority;
    plan.servicePolicy = mr::SchedulingPolicy::kReduceFirst;
  } else {
    spec.partitioner = std::make_shared<const mr::ModuloPartitioner>(
        extraction->intermediateSpaceShape());
    spec.mode = mr::ExecutionMode::kGlobalBarrier;
    plan.servicePolicy = mr::SchedulingPolicy::kFifo;
  }

  spec.mapFingerprint =
      computeMapFingerprint(query_, inputShape_, options.datasetId, spec);

  // Advisory transport recommendation: an eager-spill plan's map output
  // is already committed files, so file-serving it adds no residency;
  // anything else is best served by the zero-copy in-process handoff.
  plan.recommendedTransport = eagerSpillPlan
                                  ? mr::ShuffleTransportKind::kFileServed
                                  : mr::ShuffleTransportKind::kInProcess;

  plan.spec = std::move(spec);
  return plan;
}

QueryPlan QueryPlanner::planJoin(const sh::ValueFn& leftFn,
                                 const sh::ValueFn& rightFn,
                                 const PlanOptions& options) const {
  if (options.system == SystemMode::kSailfish) {
    throw std::invalid_argument(
        "QueryPlanner: Sailfish is a simulator-only baseline (see "
        "sim::buildWorkload)");
  }
  if (query_.op != sh::OperatorKind::kJoin || !query_.join) {
    throw std::invalid_argument(
        "QueryPlanner::planJoin: query must be kJoin with a JoinSpec");
  }
  if (query_.keyMode != sh::KeyMode::kRenumber) {
    throw std::invalid_argument(
        "QueryPlanner::planJoin: joins key on the shared instance grid "
        "(KeyMode::kRenumber)");
  }
  QueryPlan plan;
  auto leftEx = std::make_shared<const sh::ExtractionMap>(query_, inputShape_);
  const sh::StructuralQuery rightQuery = sh::joinRightQuery(query_);
  auto rightEx = std::make_shared<const sh::ExtractionMap>(
      rightQuery, query_.join->inputShape);
  if (leftEx->instanceGridShape() != rightEx->instanceGridShape()) {
    throw std::invalid_argument(
        "QueryPlanner::planJoin: the two sides' instance grids differ (" +
        leftEx->instanceGridShape().toString() + " vs " +
        rightEx->instanceGridShape().toString() +
        ") — instance g joins instance g, so the grids must match");
  }
  plan.extraction = leftEx;

  mr::JobSpec spec;
  // Each side is split independently over its own domain; ids stay
  // globally unique (right ids follow the left block), and
  // InputSplit::input routes each split to its side's reader/mapper.
  auto splitsFor = [&](const sh::ExtractionMap& ex) {
    sh::SplitOptions so;
    so.targetElements = options.splitTargetElements > 0
                            ? options.splitTargetElements
                            : sh::targetElementsForCount(
                                  ex.domain().shape(), options.desiredSplitCount);
    so.alignToExtraction = options.alignSplitsToExtraction;
    auto splits = sh::generateSplits(ex.domain().shape(), ex, so);
    if (ex.domain().corner() != nd::Coord::zeros(ex.domain().rank())) {
      for (mr::InputSplit& split : splits) {
        for (nd::Region& region : split.regions) {
          region = nd::Region(region.corner().plus(ex.domain().corner()),
                              region.shape());
        }
      }
    }
    return splits;
  };
  spec.splits = splitsFor(*leftEx);
  const std::uint32_t numLeft = static_cast<std::uint32_t>(spec.splits.size());
  std::vector<mr::InputSplit> rightSplits = splitsFor(*rightEx);
  for (mr::InputSplit& split : rightSplits) {
    split.id += numLeft;
    split.input = 1;
    spec.splits.push_back(std::move(split));
  }

  spec.readerFactory = sh::makeSyntheticReaderFactory(leftFn);
  spec.secondaryReaderFactory = sh::makeSyntheticReaderFactory(rightFn);
  spec.mapperFactory = sh::makeJoinMapperFactory(query_, leftEx, 0);
  spec.secondaryMapperFactory = sh::makeJoinMapperFactory(query_, rightEx, 1);
  spec.reducerFactory = sh::makeJoinReducerFactory();
  const bool eagerSpillPlan = fillExecutionOptions(spec, options);
  // Both sides renumber into the shared instance grid, so the grid IS
  // the intermediate key space (checked equal above).
  spec.keySpace = leftEx->intermediateSpaceShape();

  if (options.system == SystemMode::kSidr) {
    auto pp = std::make_shared<PartitionPlus>(leftEx, options.numReducers,
                                              query_.skewBound);
    if (options.skewAdapt) {
      // A join instance's reduce cost is |surviving left| * |surviving
      // right|, so the load estimate is the PRODUCT of the two sides'
      // smoothed per-granule estimates (smoothing keeps unsampled
      // granules from zeroing whole products).
      std::span<const mr::InputSplit> all = spec.splits;
      SkewEstimate leftEst = sampleKeyDistribution(
          *leftEx, *pp, all.subspan(0, numLeft), spec.readerFactory,
          sampleOptionsFrom(options, query_.join->leftThreshold));
      SkewEstimate rightEst = sampleKeyDistribution(
          *rightEx, *pp, all.subspan(numLeft), spec.secondaryReaderFactory,
          sampleOptionsFrom(options, query_.join->rightThreshold));
      spec.skewStats.sampledRecords =
          leftEst.sampledRecords + rightEst.sampledRecords;
      std::vector<double> lw = smoothedWeights(leftEst);
      std::vector<double> rw = smoothedWeights(rightEst);
      for (std::size_t g = 0; g < lw.size(); ++g) lw[g] *= rw[g];
      pp->refine(lw);
      recordRefinement(spec, *pp);
    }
    std::shared_ptr<const PartitionPlus> frozen = std::move(pp);
    plan.partitionPlus = frozen;
    spec.partitioner = frozen;
    spec.mode = mr::ExecutionMode::kSidr;
    DependencyCalculator calc(frozen, rightEx);
    plan.dependencies = calc.computeAll(spec.splits);
    spec.reduceDeps = plan.dependencies.keyblockToSplits;
    if (options.validateAnnotations) {
      spec.expectedRepresents = plan.dependencies.expectedRepresents;
    }
    spec.reducePriority = options.reducePriority;
    plan.servicePolicy = mr::SchedulingPolicy::kReduceFirst;
  } else {
    spec.partitioner = std::make_shared<const mr::ModuloPartitioner>(
        leftEx->intermediateSpaceShape());
    spec.mode = mr::ExecutionMode::kGlobalBarrier;
    plan.servicePolicy = mr::SchedulingPolicy::kFifo;
  }

  spec.mapFingerprint =
      computeMapFingerprint(query_, inputShape_, options.datasetId, spec);
  plan.recommendedTransport = eagerSpillPlan
                                  ? mr::ShuffleTransportKind::kFileServed
                                  : mr::ShuffleTransportKind::kInProcess;
  plan.spec = std::move(spec);
  return plan;
}

QueryPlan QueryPlanner::plan(const sh::ValueFn& fn,
                             const PlanOptions& options) const {
  return assemble(sh::makeSyntheticReaderFactory(fn), options);
}

QueryPlan QueryPlanner::plan(std::shared_ptr<sci::Dataset> dataset,
                             std::size_t varIdx,
                             const PlanOptions& options) const {
  return assemble(sh::makeDatasetReaderFactory(std::move(dataset), varIdx),
                  options);
}

}  // namespace sidr::core
