#include "sidr/planner.hpp"

namespace sidr::core {

std::string systemModeName(SystemMode mode) {
  switch (mode) {
    case SystemMode::kHadoop:
      return "Hadoop";
    case SystemMode::kSciHadoop:
      return "SciHadoop";
    case SystemMode::kSidr:
      return "SIDR";
    case SystemMode::kSailfish:
      return "Sailfish";
  }
  throw std::invalid_argument("systemModeName: bad mode");
}

QueryPlanner::QueryPlanner(sh::StructuralQuery query, nd::Coord inputShape)
    : query_(std::move(query)), inputShape_(inputShape) {}

std::optional<Fingerprint128> computeMapFingerprint(
    const sh::StructuralQuery& query, const nd::Coord& inputShape,
    const std::string& datasetId, const mr::JobSpec& spec) {
  if (datasetId.empty()) return std::nullopt;
  FingerprintBuilder fb;
  // Version tag: bumping it invalidates every cached entry at once if
  // the canonicalization below ever has to change shape.
  fb.addString("sidr.mapfp.v1");

  // Dataset identity: what the splits' regions address.
  fb.addString(datasetId);
  fb.addCoord(inputShape);

  // Extraction / filter spec: every query field can change which values
  // a map emits, which key it emits them under, or how they combine.
  fb.addString(query.variable);
  fb.addBool(query.subset.has_value());
  if (query.subset) fb.addRegion(*query.subset);
  fb.addU32(static_cast<std::uint32_t>(query.op));
  fb.addCoord(query.extractionShape);
  fb.addBool(query.stride.has_value());
  if (query.stride) fb.addCoord(*query.stride);
  fb.addU32(static_cast<std::uint32_t>(query.edgeMode));
  fb.addU32(static_cast<std::uint32_t>(query.keyMode));
  fb.addDouble(query.filterThreshold);
  fb.addI64(query.skewBound);

  // Split geometry: per (map, keyblock) segment content is a function
  // of which input regions each split covers, in order.
  fb.addU64(spec.splits.size());
  for (const mr::InputSplit& split : spec.splits) {
    fb.addU32(split.id);
    fb.addU64(split.regions.size());
    for (const nd::Region& r : split.regions) fb.addRegion(r);
  }

  // Key space + partition plan: where each intermediate key routes.
  // Mode distinguishes partition+ from the modulo partitioner; both are
  // fully determined by (extraction, numReducers, skewBound), all
  // absorbed above, and numReducers here.
  fb.addCoord(spec.keySpace);
  fb.addU32(static_cast<std::uint32_t>(spec.mode));
  fb.addU32(spec.numReducers);
  return fb.digest();
}

QueryPlan QueryPlanner::assemble(mr::RecordReaderFactory readerFactory,
                                 const PlanOptions& options) const {
  if (options.system == SystemMode::kSailfish) {
    throw std::invalid_argument(
        "QueryPlanner: Sailfish is a simulator-only baseline (see "
        "sim::buildWorkload)");
  }
  QueryPlan plan;
  auto extraction =
      std::make_shared<const sh::ExtractionMap>(query_, inputShape_);
  plan.extraction = extraction;

  sh::SplitOptions splitOpts;
  splitOpts.targetElements =
      options.splitTargetElements > 0
          ? options.splitTargetElements
          : sh::targetElementsForCount(
                query_.subset ? query_.subset->shape() : inputShape_,
                options.desiredSplitCount);
  splitOpts.alignToExtraction = options.alignSplitsToExtraction;

  mr::JobSpec spec;
  // Splits cover only the query's domain (SciHadoop reads just the
  // requested coordinate range); subset queries offset the slabs.
  const nd::Region& domain = extraction->domain();
  spec.splits = sh::generateSplits(domain.shape(), *extraction, splitOpts);
  if (domain.corner() != nd::Coord::zeros(domain.rank())) {
    for (mr::InputSplit& split : spec.splits) {
      for (nd::Region& region : split.regions) {
        region = nd::Region(region.corner().plus(domain.corner()),
                            region.shape());
      }
    }
  }
  spec.readerFactory = std::move(readerFactory);
  spec.mapperFactory = sh::makeStructuralMapperFactory(query_, extraction);
  spec.reducerFactory = sh::makeStructuralReducerFactory(query_);
  spec.numReducers = options.numReducers;
  spec.mapSlots = options.mapSlots;
  spec.reduceSlots = options.reduceSlots;
  spec.numThreads = options.numThreads;
  spec.recovery = options.recovery;
  spec.faultPlan = options.faultPlan;
  spec.recordTrace = options.recordTrace;
  spec.spillDirectory = options.spillDirectory;
  spec.spillWriters = options.spillWriters;
  spec.memoryBudgetBytes = options.memoryBudgetBytes;
  spec.mergeWindowBytes = options.mergeWindowBytes;
  spec.compressSpill = options.compressSpill;
  // Transport selection (DESIGN.md section 17): kFileServed only makes
  // sense when map output commits to files eagerly — reject the
  // combination here with the same rule validateJobSpec enforces, so a
  // planner caller learns at plan time rather than submit time.
  const bool eagerSpillPlan =
      !options.spillDirectory.empty() && options.memoryBudgetBytes == 0;
  if (options.transport == mr::ShuffleTransportKind::kFileServed &&
      !eagerSpillPlan) {
    throw std::invalid_argument(
        "QueryPlanner: the file-served transport requires an eager-spill "
        "plan (spillDirectory set, memoryBudgetBytes == 0)");
  }
  spec.transport = options.transport;
  spec.transportConnections = options.transportConnections;
  spec.transportTimeoutMillis = options.transportTimeoutMillis;
  spec.weight = options.jobWeight;
  spec.keepSpillOnFailure = options.keepSpillOnFailure;
  // The extraction map bounds every intermediate key, so every planner
  // job runs the linearized-key fast path (DESIGN.md section 11). This
  // is the same space both partitioners linearize over: ModuloPartitioner
  // is constructed with it and partition+ expresses its runs in it.
  spec.keySpace = extraction->intermediateSpaceShape();

  if (options.system == SystemMode::kSidr) {
    auto pp = std::make_shared<const PartitionPlus>(
        extraction, options.numReducers, query_.skewBound);
    plan.partitionPlus = pp;
    spec.partitioner = pp;
    spec.mode = mr::ExecutionMode::kSidr;
    DependencyCalculator calc(pp);
    plan.dependencies = calc.computeAll(spec.splits);
    spec.reduceDeps = plan.dependencies.keyblockToSplits;
    if (options.validateAnnotations) {
      spec.expectedRepresents = plan.dependencies.expectedRepresents;
    }
    spec.reducePriority = options.reducePriority;
    plan.servicePolicy = mr::SchedulingPolicy::kReduceFirst;
  } else {
    spec.partitioner = std::make_shared<const mr::ModuloPartitioner>(
        extraction->intermediateSpaceShape());
    spec.mode = mr::ExecutionMode::kGlobalBarrier;
    plan.servicePolicy = mr::SchedulingPolicy::kFifo;
  }

  spec.mapFingerprint =
      computeMapFingerprint(query_, inputShape_, options.datasetId, spec);

  // Advisory transport recommendation: an eager-spill plan's map output
  // is already committed files, so file-serving it adds no residency;
  // anything else is best served by the zero-copy in-process handoff.
  plan.recommendedTransport = eagerSpillPlan
                                  ? mr::ShuffleTransportKind::kFileServed
                                  : mr::ShuffleTransportKind::kInProcess;

  plan.spec = std::move(spec);
  return plan;
}

QueryPlan QueryPlanner::plan(const sh::ValueFn& fn,
                             const PlanOptions& options) const {
  return assemble(sh::makeSyntheticReaderFactory(fn), options);
}

QueryPlan QueryPlanner::plan(std::shared_ptr<sci::Dataset> dataset,
                             std::size_t varIdx,
                             const PlanOptions& options) const {
  return assemble(sh::makeDatasetReaderFactory(std::move(dataset), varIdx),
                  options);
}

}  // namespace sidr::core
