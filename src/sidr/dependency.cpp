#include "sidr/dependency.hpp"

#include <algorithm>

namespace sidr::core {

DependencyCalculator::DependencyCalculator(
    std::shared_ptr<const PartitionPlus> plan)
    : plan_(std::move(plan)) {}

std::vector<std::uint32_t> DependencyCalculator::keyblocksForSplit(
    const mr::InputSplit& split) const {
  if (split.regions.size() == 1) {
    return keyblocksForSplit(split.regions.front());
  }
  std::vector<bool> seen(plan_->numReducers(), false);
  for (const nd::Region& region : split.regions) {
    for (std::uint32_t kb : keyblocksForSplit(region)) seen[kb] = true;
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t kb = 0; kb < seen.size(); ++kb) {
    if (seen[kb]) out.push_back(kb);
  }
  return out;
}

std::vector<std::uint32_t> DependencyCalculator::keyblocksForSplit(
    const nd::Region& region) const {
  const sh::ExtractionMap& ex = plan_->extraction();
  std::vector<std::uint32_t> out;
  auto range = ex.instanceRangeOf(region);
  if (!range) return out;  // split maps to nothing (gap / truncated tail)

  const nd::Coord& grid = ex.instanceGridShape();
  std::vector<bool> seen(plan_->numReducers(), false);

  // Walk the instance-grid range row by row; each row is a contiguous
  // linear run, which maps to a contiguous keyblock interval because
  // keyblocks are contiguous in linear instance order.
  const std::size_t rank = grid.rank();
  const nd::Index rowLen = range->shape()[rank - 1];
  nd::Coord prefixShape = range->shape();
  prefixShape[rank - 1] = 1;
  nd::Region prefixRegion(range->corner(), prefixShape);
  for (nd::RegionCursor cur(prefixRegion); cur.valid(); cur.next()) {
    nd::Index rowStart = nd::linearize(cur.coord(), grid);
    std::uint32_t kbFirst =
        plan_->keyblockOfGranule(rowStart / plan_->granuleSize());
    std::uint32_t kbLast = plan_->keyblockOfGranule(
        (rowStart + rowLen - 1) / plan_->granuleSize());
    for (std::uint32_t kb = kbFirst; kb <= kbLast; ++kb) seen[kb] = true;
  }
  for (std::uint32_t kb = 0; kb < seen.size(); ++kb) {
    if (seen[kb]) out.push_back(kb);
  }
  return out;
}

DependencyInfo DependencyCalculator::computeAll(
    std::span<const mr::InputSplit> splits) const {
  DependencyInfo info;
  const std::uint32_t r = plan_->numReducers();
  info.keyblockToSplits.resize(r);
  info.splitToKeyblocks.resize(splits.size());
  for (const mr::InputSplit& split : splits) {
    std::vector<std::uint32_t> kbs = keyblocksForSplit(split);
    for (std::uint32_t kb : kbs) {
      info.keyblockToSplits[kb].push_back(split.id);
    }
    info.splitToKeyblocks[split.id] = std::move(kbs);
  }
  for (auto& deps : info.keyblockToSplits) {
    std::sort(deps.begin(), deps.end());
  }

  // |K_l|: sum of cell volumes over each keyblock's instances. In
  // truncate mode every cell is a full extraction shape; in pad mode
  // edge cells are clipped, so walk the instances.
  const sh::ExtractionMap& ex = plan_->extraction();
  info.expectedRepresents.assign(r, 0);
  for (std::uint32_t kb = 0; kb < r; ++kb) {
    auto [first, last] = plan_->instanceRange(kb);
    std::uint64_t total = 0;
    for (const nd::Region& box : linearRangeToRegions(
             first, last, ex.instanceGridShape())) {
      // Interior boxes are full cells; only boxes touching the grid's
      // upper edge can contain clipped cells.
      bool touchesEdge = false;
      for (std::size_t d = 0; d < box.rank(); ++d) {
        if (box.corner()[d] + box.shape()[d] == ex.instanceGridShape()[d] &&
            ex.inputShape()[d] % ex.stride()[d] != 0) {
          touchesEdge = true;
          break;
        }
      }
      if (!touchesEdge) {
        total += static_cast<std::uint64_t>(box.volume()) *
                 static_cast<std::uint64_t>(ex.extractionShape().volume());
      } else {
        for (nd::RegionCursor g(box); g.valid(); g.next()) {
          total += static_cast<std::uint64_t>(ex.cellVolume(g.coord()));
        }
      }
    }
    info.expectedRepresents[kb] = total;
  }
  return info;
}

std::vector<std::uint32_t> DependencyCalculator::recomputeSplitsFor(
    std::uint32_t keyblock, std::span<const mr::InputSplit> splits) const {
  std::vector<std::uint32_t> out;
  for (const mr::InputSplit& split : splits) {
    std::vector<std::uint32_t> kbs = keyblocksForSplit(split);
    if (std::binary_search(kbs.begin(), kbs.end(), keyblock)) {
      out.push_back(split.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> DependencyCalculator::recomputeSplitsFor(
    std::uint32_t keyblock, std::span<const mr::InputSplit> splits,
    const DependencyInfo& info) const {
  std::vector<std::uint32_t> out;
  for (const mr::InputSplit& split : splits) {
    // keyblocksForSplit results are ascending, so the stored per-split
    // lists admit a binary search — no geometry re-derivation.
    const auto& kbs = info.splitToKeyblocks.at(split.id);
    if (std::binary_search(kbs.begin(), kbs.end(), keyblock)) {
      out.push_back(split.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sidr::core
