#include "sidr/dependency.hpp"

#include <algorithm>
#include <stdexcept>

namespace sidr::core {

DependencyCalculator::DependencyCalculator(
    std::shared_ptr<const PartitionPlus> plan)
    : plan_(std::move(plan)) {}

DependencyCalculator::DependencyCalculator(
    std::shared_ptr<const PartitionPlus> plan,
    std::shared_ptr<const sh::ExtractionMap> secondary)
    : plan_(std::move(plan)), secondary_(std::move(secondary)) {
  if (secondary_ == nullptr) {
    throw std::invalid_argument(
        "DependencyCalculator: secondary extraction is null");
  }
  if (secondary_->instanceGridShape() !=
      plan_->extraction().instanceGridShape()) {
    throw std::invalid_argument(
        "DependencyCalculator: the two inputs' instance grids differ — a "
        "join routes both sides into the SAME keyblocks");
  }
}

const sh::ExtractionMap& DependencyCalculator::extractionFor(
    const mr::InputSplit& split) const {
  if (split.input == 0) return plan_->extraction();
  if (split.input == 1 && secondary_ != nullptr) return *secondary_;
  throw std::invalid_argument(
      "DependencyCalculator: split " + std::to_string(split.id) +
      " references input " + std::to_string(split.input) +
      " but no matching extraction is configured");
}

std::vector<std::uint32_t> DependencyCalculator::keyblocksForSplit(
    const mr::InputSplit& split) const {
  const sh::ExtractionMap& ex = extractionFor(split);
  if (split.regions.size() == 1) {
    return keyblocksForSplitIn(split.regions.front(), ex);
  }
  std::vector<bool> seen(plan_->numReducers(), false);
  for (const nd::Region& region : split.regions) {
    for (std::uint32_t kb : keyblocksForSplitIn(region, ex)) seen[kb] = true;
  }
  std::vector<std::uint32_t> out;
  for (std::uint32_t kb = 0; kb < seen.size(); ++kb) {
    if (seen[kb]) out.push_back(kb);
  }
  return out;
}

std::vector<std::uint32_t> DependencyCalculator::keyblocksForSplit(
    const nd::Region& region) const {
  return keyblocksForSplitIn(region, plan_->extraction());
}

std::vector<std::uint32_t> DependencyCalculator::keyblocksForSplitIn(
    const nd::Region& region, const sh::ExtractionMap& ex) const {
  std::vector<std::uint32_t> out;
  auto range = ex.instanceRangeOf(region);
  if (!range) return out;  // split maps to nothing (gap / truncated tail)

  const nd::Coord& grid = ex.instanceGridShape();
  std::vector<bool> seen(plan_->numReducers(), false);

  // Walk the instance-grid range row by row; each row is a contiguous
  // linear run, which maps to a contiguous keyblock interval because
  // keyblocks are contiguous in linear instance order.
  const std::size_t rank = grid.rank();
  const nd::Index rowLen = range->shape()[rank - 1];
  nd::Coord prefixShape = range->shape();
  prefixShape[rank - 1] = 1;
  nd::Region prefixRegion(range->corner(), prefixShape);
  for (nd::RegionCursor cur(prefixRegion); cur.valid(); cur.next()) {
    nd::Index rowStart = nd::linearize(cur.coord(), grid);
    std::uint32_t kbFirst =
        plan_->keyblockOfGranule(rowStart / plan_->granuleSize());
    std::uint32_t kbLast = plan_->keyblockOfGranule(
        (rowStart + rowLen - 1) / plan_->granuleSize());
    for (std::uint32_t kb = kbFirst; kb <= kbLast; ++kb) {
      // A refined plan can leave EMPTY keyblocks between two occupied
      // ones (RefinedPartition::granuleStart duplicates); the interval
      // walk must not declare the split a dependency of those — an
      // empty keyblock receives no records from anyone. No-op for the
      // uniform deal, whose interior blocks are never empty.
      if (plan_->keyblockSize(kb) > 0) seen[kb] = true;
    }
  }
  for (std::uint32_t kb = 0; kb < seen.size(); ++kb) {
    if (seen[kb]) out.push_back(kb);
  }
  return out;
}

DependencyInfo DependencyCalculator::computeAll(
    std::span<const mr::InputSplit> splits) const {
  DependencyInfo info;
  const std::uint32_t r = plan_->numReducers();
  info.keyblockToSplits.resize(r);
  info.splitToKeyblocks.resize(splits.size());
  for (const mr::InputSplit& split : splits) {
    std::vector<std::uint32_t> kbs = keyblocksForSplit(split);
    for (std::uint32_t kb : kbs) {
      info.keyblockToSplits[kb].push_back(split.id);
    }
    info.splitToKeyblocks[split.id] = std::move(kbs);
  }
  for (auto& deps : info.keyblockToSplits) {
    std::sort(deps.begin(), deps.end());
  }

  // |K_l|: sum of cell volumes over each keyblock's instances. In
  // truncate mode every cell is a full extraction shape; in pad mode
  // edge cells are clipped, so walk the instances. A two-input job
  // consumes BOTH sides' cells per instance, so each configured
  // extraction contributes its own walk.
  auto addSide = [&](const sh::ExtractionMap& ex) {
    for (std::uint32_t kb = 0; kb < r; ++kb) {
      auto [first, last] = plan_->instanceRange(kb);
      std::uint64_t total = 0;
      for (const nd::Region& box : linearRangeToRegions(
               first, last, ex.instanceGridShape())) {
        // Interior boxes are full cells; only boxes touching the grid's
        // upper edge can contain clipped cells.
        bool touchesEdge = false;
        for (std::size_t d = 0; d < box.rank(); ++d) {
          if (box.corner()[d] + box.shape()[d] == ex.instanceGridShape()[d] &&
              ex.inputShape()[d] % ex.stride()[d] != 0) {
            touchesEdge = true;
            break;
          }
        }
        if (!touchesEdge) {
          total += static_cast<std::uint64_t>(box.volume()) *
                   static_cast<std::uint64_t>(ex.extractionShape().volume());
        } else {
          for (nd::RegionCursor g(box); g.valid(); g.next()) {
            total += static_cast<std::uint64_t>(ex.cellVolume(g.coord()));
          }
        }
      }
      info.expectedRepresents[kb] += total;
    }
  };
  info.expectedRepresents.assign(r, 0);
  addSide(plan_->extraction());
  if (secondary_ != nullptr) addSide(*secondary_);
  return info;
}

std::vector<std::uint32_t> DependencyCalculator::recomputeSplitsFor(
    std::uint32_t keyblock, std::span<const mr::InputSplit> splits) const {
  std::vector<std::uint32_t> out;
  for (const mr::InputSplit& split : splits) {
    std::vector<std::uint32_t> kbs = keyblocksForSplit(split);
    if (std::binary_search(kbs.begin(), kbs.end(), keyblock)) {
      out.push_back(split.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::uint32_t> DependencyCalculator::recomputeSplitsFor(
    std::uint32_t keyblock, std::span<const mr::InputSplit> splits,
    const DependencyInfo& info) const {
  std::vector<std::uint32_t> out;
  for (const mr::InputSplit& split : splits) {
    // keyblocksForSplit results are ascending, so the stored per-split
    // lists admit a binary search — no geometry re-derivation.
    const auto& kbs = info.splitToKeyblocks.at(split.id);
    if (std::binary_search(kbs.begin(), kbs.end(), keyblock)) {
      out.push_back(split.id);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace sidr::core
