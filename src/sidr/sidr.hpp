// Umbrella header: the public API of the SIDR library.
//
// Typical use (see examples/quickstart.cpp):
//
//   sidr::sh::StructuralQuery q;
//   q.variable = "temperature";
//   q.op = sidr::sh::OperatorKind::kMean;
//   q.extractionShape = {7, 5, 1};           // weekly, 1/2-degree avgs
//
//   sidr::core::QueryPlanner planner(q, {365, 250, 200});
//   sidr::core::PlanOptions opts;
//   opts.system = sidr::core::SystemMode::kSidr;
//   opts.numReducers = 8;
//   auto plan = planner.plan(sidr::sh::temperatureField(), opts);
//   auto result = sidr::mr::Engine(std::move(plan.spec)).run();
#pragma once

#include "dfs/namenode.hpp"
#include "mapreduce/combiners.hpp"
#include "mapreduce/engine.hpp"
#include "mapreduce/partitioners.hpp"
#include "ndarray/coord.hpp"
#include "ndarray/region.hpp"
#include "ndarray/tiling.hpp"
#include "scifile/cdl.hpp"
#include "scifile/dataset.hpp"
#include "scifile/output_writers.hpp"
#include "scihadoop/datagen.hpp"
#include "scihadoop/operators.hpp"
#include "scihadoop/query_parser.hpp"
#include "scihadoop/split_gen.hpp"
#include "sidr/dependency.hpp"
#include "sidr/partition_plus.hpp"
#include "sidr/planner.hpp"
