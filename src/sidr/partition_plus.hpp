// partition+ : SIDR's structure-aware intermediate-data partitioner
// (paper section 3.1, figure 7).
//
// Because the full intermediate keyspace K'^T of a structural query is
// computable up front (ExtractionMap), partition+ can partition the
// ACTUAL keys instead of the whole representable key range:
//   (A) choose an n-dimensional granule shape whose volume is below the
//       permissible skew bound;
//   (B) deal contiguous runs of granules to keyblocks so every keyblock
//       holds within one granule of the same key count.
// Keyblocks are contiguous in the row-major order of K', so reduce
// output lands as dense, contiguous chunks (section 4.4), and any
// natural alignment between query and data order is preserved
// (section 3.4, figure 8).
#pragma once

#include <memory>

#include "mapreduce/interfaces.hpp"
#include "scihadoop/extraction.hpp"

namespace sidr::core {

class PartitionPlus final : public mr::Partitioner {
 public:
  /// Builds the partition plan for `numReducers` keyblocks.
  /// `skewBound` is the maximum permissible inter-keyblock skew in keys;
  /// pass 0 to let the system choose (paper: "either user-defined as
  /// part of the query or chosen by the system").
  PartitionPlus(std::shared_ptr<const sh::ExtractionMap> extraction,
                std::uint32_t numReducers, nd::Index skewBound = 0);

  // --- mr::Partitioner ---
  /// O(rank) routing of an intermediate key to its keyblock.
  std::uint32_t partition(const nd::Coord& key,
                          std::uint32_t numReducers) const override;

  /// Structure-aware run routing: returns the key's keyblock and bounds
  /// the contiguous same-keyblock run it starts — the rest of the key's
  /// instance-grid row, clipped to the keyblock's linear instance range.
  /// A row-major emitter then routes once per granule row instead of
  /// once per key (the paper's linear-index arithmetic, section 3.1,
  /// extended from point lookups to runs). `runEnd` is exclusive and
  /// expressed over ExtractionMap::intermediateSpaceShape(), matching
  /// JobSpec::keySpace for planner-built jobs.
  std::uint32_t partitionRun(const nd::Coord& key, std::uint64_t linearKey,
                             std::uint32_t numReducers,
                             std::uint64_t& runEnd) const override;

  // --- plan inspection ---
  std::uint32_t numReducers() const noexcept { return numReducers_; }

  /// The granule: the "shape less than the permissible amount of skew"
  /// of figure 7, expressed over the instance grid.
  const nd::Coord& granuleShape() const noexcept { return granuleShape_; }

  /// Instances per granule (the skew guarantee: keyblock sizes differ by
  /// at most this many intermediate keys).
  nd::Index granuleSize() const noexcept { return granuleSize_; }

  /// Total granules tiling the instance grid.
  nd::Index granuleCount() const noexcept { return granuleCount_; }

  /// Keyblock of a granule (by linear granule index).
  std::uint32_t keyblockOfGranule(nd::Index granule) const;

  /// Keyblock of an instance (by instance-grid coordinate).
  std::uint32_t keyblockOfInstance(const nd::Coord& g) const;

  /// Half-open linear instance range [first, last) of a keyblock.
  std::pair<nd::Index, nd::Index> instanceRange(std::uint32_t keyblock) const;

  /// Number of intermediate keys in a keyblock.
  nd::Index keyblockSize(std::uint32_t keyblock) const {
    auto [a, b] = instanceRange(keyblock);
    return b - a;
  }

  /// Max keyblock size minus min keyblock size (the realized skew;
  /// guaranteed <= granuleSize()).
  nd::Index realizedSkew() const;

  /// Decomposes a keyblock's (linearly contiguous) instance range into
  /// axis-aligned boxes of the instance grid, outermost-first. At most
  /// 2*rank boxes; a single box whenever the range is slab-aligned.
  /// These are the dense regions a reduce task writes as output chunks.
  std::vector<nd::Region> keyblockRegions(std::uint32_t keyblock) const;

  const sh::ExtractionMap& extraction() const noexcept { return *extraction_; }

 private:
  std::shared_ptr<const sh::ExtractionMap> extraction_;
  std::uint32_t numReducers_;
  nd::Index skewBound_;
  nd::Coord granuleShape_;
  nd::Index granuleSize_ = 1;
  nd::Index granuleCount_ = 0;
  nd::Index granulesPerBlockFloor_ = 0;  ///< q = floor(M / r)
  nd::Index blocksWithExtra_ = 0;        ///< first (M mod r) blocks get q+1
};

/// Geometry helper re-exported from ndarray for backwards-compatible
/// callers; see nd::linearRangeToRegions.
using nd::linearRangeToRegions;

}  // namespace sidr::core
