// partition+ : SIDR's structure-aware intermediate-data partitioner
// (paper section 3.1, figure 7).
//
// Because the full intermediate keyspace K'^T of a structural query is
// computable up front (ExtractionMap), partition+ can partition the
// ACTUAL keys instead of the whole representable key range:
//   (A) choose an n-dimensional granule shape whose volume is below the
//       permissible skew bound;
//   (B) deal contiguous runs of granules to keyblocks so every keyblock
//       holds within one granule of the same key count.
// Keyblocks are contiguous in the row-major order of K', so reduce
// output lands as dense, contiguous chunks (section 4.4), and any
// natural alignment between query and data order is preserved
// (section 3.4, figure 8).
#pragma once

#include <memory>
#include <optional>
#include <span>

#include "mapreduce/interfaces.hpp"
#include "scihadoop/extraction.hpp"

namespace sidr::core {

/// A skew-adapted granule deal (DESIGN.md §18): instead of the uniform
/// q / q+1 granules per keyblock, boundaries are placed so every
/// keyblock carries an (estimated) equal share of the post-filter load.
/// Keyblocks stay contiguous runs of granules in linear instance order,
/// so every downstream consumer of that property — dependency interval
/// walks, run routing, dense output regions — works unchanged.
struct RefinedPartition {
  /// granuleStart[k] = first granule of keyblock k. Size numReducers+1,
  /// non-decreasing, front() == 0, back() == granuleCount. Equal
  /// adjacent entries denote an EMPTY keyblock (a single granule heavier
  /// than the per-block target cannot be split below granule size; its
  /// neighbours go empty instead).
  std::vector<nd::Index> granuleStart;

  /// Keyblocks that ended up with FEWER granules than the uniform deal
  /// gave them (hot regions split across more blocks) / MORE granules
  /// (cold regions coalesced).
  std::uint32_t splitKeyblocks = 0;
  std::uint32_t coalescedKeyblocks = 0;

  /// Load accounting in the caller's weight units. The refinement
  /// guarantee: maxLoadAfter <= totalWeight / numReducers +
  /// maxGranuleWeight (one granule of quantization slack, the skew-bound
  /// analogue of the uniform deal's one-granule key-count slack).
  double totalWeight = 0.0;
  double maxGranuleWeight = 0.0;
  double maxLoadBefore = 0.0;  ///< heaviest keyblock under the uniform deal
  double maxLoadAfter = 0.0;   ///< heaviest keyblock after refinement
};

class PartitionPlus final : public mr::Partitioner {
 public:
  /// Builds the partition plan for `numReducers` keyblocks.
  /// `skewBound` is the maximum permissible inter-keyblock skew in keys;
  /// pass 0 to let the system choose (paper: "either user-defined as
  /// part of the query or chosen by the system").
  PartitionPlus(std::shared_ptr<const sh::ExtractionMap> extraction,
                std::uint32_t numReducers, nd::Index skewBound = 0);

  // --- mr::Partitioner ---
  /// O(rank) routing of an intermediate key to its keyblock.
  std::uint32_t partition(const nd::Coord& key,
                          std::uint32_t numReducers) const override;

  /// Structure-aware run routing: returns the key's keyblock and bounds
  /// the contiguous same-keyblock run it starts — the rest of the key's
  /// instance-grid row, clipped to the keyblock's linear instance range.
  /// A row-major emitter then routes once per granule row instead of
  /// once per key (the paper's linear-index arithmetic, section 3.1,
  /// extended from point lookups to runs). `runEnd` is exclusive and
  /// expressed over ExtractionMap::intermediateSpaceShape(), matching
  /// JobSpec::keySpace for planner-built jobs.
  std::uint32_t partitionRun(const nd::Coord& key, std::uint64_t linearKey,
                             std::uint32_t numReducers,
                             std::uint64_t& runEnd) const override;

  // --- plan inspection ---
  std::uint32_t numReducers() const noexcept { return numReducers_; }

  /// The granule: the "shape less than the permissible amount of skew"
  /// of figure 7, expressed over the instance grid.
  const nd::Coord& granuleShape() const noexcept { return granuleShape_; }

  /// Instances per granule (the skew guarantee: keyblock sizes differ by
  /// at most this many intermediate keys).
  nd::Index granuleSize() const noexcept { return granuleSize_; }

  /// Total granules tiling the instance grid.
  nd::Index granuleCount() const noexcept { return granuleCount_; }

  // --- skew-adaptive refinement (DESIGN.md §18) ---
  /// Re-deals granule boundaries so keyblocks carry equal estimated
  /// load instead of equal key counts. `granuleWeights` (one finite,
  /// non-negative weight per granule — e.g. sampled post-filter record
  /// counts) drives the deal: boundary k lands on the first granule
  /// where the weight prefix sum reaches k/numReducers of the total.
  /// Returns false — leaving the uniform deal in place — when the
  /// weights carry no signal (all zero), reproduce the uniform deal
  /// exactly, or fail to strictly improve the worst keyblock load (so
  /// a no-op refinement keeps the unrefined plan's map fingerprint and
  /// stays cache-compatible with it). Must be called
  /// before the plan is shared with a running job: refinement changes
  /// routing.
  bool refine(std::span<const double> granuleWeights);

  bool refined() const noexcept { return refined_.has_value(); }

  /// The active refinement, or nullptr for the uniform deal.
  const RefinedPartition* refinement() const noexcept {
    return refined_ ? &*refined_ : nullptr;
  }

  /// Keyblock of a granule (by linear granule index).
  std::uint32_t keyblockOfGranule(nd::Index granule) const;

  /// Keyblock of an instance (by instance-grid coordinate).
  std::uint32_t keyblockOfInstance(const nd::Coord& g) const;

  /// Half-open linear instance range [first, last) of a keyblock.
  std::pair<nd::Index, nd::Index> instanceRange(std::uint32_t keyblock) const;

  /// Number of intermediate keys in a keyblock.
  nd::Index keyblockSize(std::uint32_t keyblock) const {
    auto [a, b] = instanceRange(keyblock);
    return b - a;
  }

  /// Max keyblock size minus min keyblock size (the realized KEY-COUNT
  /// skew; guaranteed <= granuleSize() for the uniform deal — a refined
  /// plan deliberately trades key-count balance for load balance, so
  /// there the interesting bound is RefinedPartition::maxLoadAfter).
  nd::Index realizedSkew() const;

  /// Decomposes a keyblock's (linearly contiguous) instance range into
  /// axis-aligned boxes of the instance grid, outermost-first. At most
  /// 2*rank boxes; a single box whenever the range is slab-aligned.
  /// These are the dense regions a reduce task writes as output chunks.
  std::vector<nd::Region> keyblockRegions(std::uint32_t keyblock) const;

  const sh::ExtractionMap& extraction() const noexcept { return *extraction_; }

 private:
  std::shared_ptr<const sh::ExtractionMap> extraction_;
  std::uint32_t numReducers_;
  nd::Index skewBound_;
  nd::Coord granuleShape_;
  nd::Index granuleSize_ = 1;
  nd::Index granuleCount_ = 0;
  nd::Index granulesPerBlockFloor_ = 0;  ///< q = floor(M / r)
  nd::Index blocksWithExtra_ = 0;        ///< first (M mod r) blocks get q+1
  std::optional<RefinedPartition> refined_;

  /// Uniform-deal granule range [first, last) of a keyblock.
  std::pair<nd::Index, nd::Index> uniformGranuleRange(
      std::uint32_t keyblock) const;
};

/// Geometry helper re-exported from ndarray for backwards-compatible
/// callers; see nd::linearRangeToRegions.
using nd::linearRangeToRegions;

}  // namespace sidr::core
