// Stable 128-bit fingerprints for cache keying.
//
// The service-level segment cache (DESIGN.md §16) keys committed map
// output by a canonical MapFingerprint of everything that determines
// the bytes a map phase produces. `Coord::hash`-style 64-bit mixes are
// fine for hash tables but not for content addressing: a silent
// collision would serve one query's segments to a different query. The
// builder here produces a 128-bit digest over a canonical byte
// serialization, with these guarantees:
//
//  * endian-independent: every value is serialized to explicit
//    little-endian bytes before mixing, so the digest is identical on
//    big- and little-endian hosts;
//  * unambiguous: strings and byte runs are length-prefixed and every
//    scalar has a fixed width, so no two distinct absorb sequences
//    produce the same input stream ("ab"+"c" != "a"+"bc");
//  * frozen: the algorithm is part of the cache key format. Unit tests
//    pin exact digests; any change to the mixing or the serialization
//    is a key-format break and must fail those tests loudly.
//
// Only the Fingerprint128 value type (comparison + hashing) is defined
// inline: the mapreduce layer stores fingerprints in JobSpec and keys
// the cache on them without linking the planner library. The builder
// implementation lives in fingerprint.cpp (sidr_core).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "ndarray/region.hpp"

namespace sidr::core {

/// A 128-bit content fingerprint. Value type: compare, hash, print.
struct Fingerprint128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint128&,
                         const Fingerprint128&) = default;
};

/// Hash functor for unordered containers keyed by fingerprint. The
/// fingerprint is already uniformly mixed; folding the halves suffices.
struct Fingerprint128Hash {
  std::size_t operator()(const Fingerprint128& f) const noexcept {
    return static_cast<std::size_t>(f.hi ^
                                    (f.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// 32 lowercase hex digits, hi half first.
std::string toHex(const Fingerprint128& f);

/// Accumulates a canonical byte stream and digests it. Every absorb
/// method appends a fixed-width or length-prefixed little-endian
/// encoding; digest() may be called repeatedly (it does not consume).
class FingerprintBuilder {
 public:
  FingerprintBuilder& addBytes(std::span<const std::byte> bytes);
  /// Length-prefixed, so adjacent strings cannot alias each other.
  FingerprintBuilder& addString(std::string_view s);
  FingerprintBuilder& addU64(std::uint64_t v);
  FingerprintBuilder& addI64(std::int64_t v);
  FingerprintBuilder& addU32(std::uint32_t v);
  FingerprintBuilder& addBool(bool v);
  /// IEEE-754 bit pattern (not locale/printf text), so -0.0 != 0.0 and
  /// every NaN payload is distinct but deterministic.
  FingerprintBuilder& addDouble(double v);
  /// Rank-prefixed component list.
  FingerprintBuilder& addCoord(const nd::Coord& c);
  /// Corner then shape.
  FingerprintBuilder& addRegion(const nd::Region& r);

  Fingerprint128 digest() const;

 private:
  std::vector<std::byte> buf_;
};

}  // namespace sidr::core
