#include "sidr/skew_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace sidr::core {

SkewEstimate sampleKeyDistribution(const sh::ExtractionMap& extraction,
                                   const PartitionPlus& plan,
                                   std::span<const mr::InputSplit> splits,
                                   const mr::RecordReaderFactory& readerFactory,
                                   const SkewSampleOptions& options) {
  if (!readerFactory) {
    throw std::invalid_argument("sampleKeyDistribution: missing reader");
  }
  if (!(options.sampleFraction > 0.0) || options.sampleFraction > 1.0) {
    throw std::invalid_argument(
        "sampleKeyDistribution: sampleFraction must be in (0, 1]");
  }
  SkewEstimate est;
  est.granuleWeights.assign(static_cast<std::size_t>(plan.granuleCount()),
                            0.0);

  nd::Index totalVolume = 0;
  for (const mr::InputSplit& split : splits) totalVolume += split.volume();
  if (totalVolume == 0 || options.maxSampleRecords == 0) return est;

  const nd::Coord& grid = extraction.instanceGridShape();
  const nd::Coord ones = nd::Coord::ones(grid.rank());

  for (const mr::InputSplit& split : splits) {
    const nd::Index splitVolume = split.volume();
    if (splitVolume == 0) continue;
    // Volume-proportional share of the budget, capped by the per-split
    // fraction; every non-empty split contributes at least one sample
    // so no region of the keyspace is entirely unobserved.
    const auto share = static_cast<nd::Index>(
        static_cast<double>(options.maxSampleRecords) *
        (static_cast<double>(splitVolume) /
         static_cast<double>(totalVolume)));
    const auto cap = static_cast<nd::Index>(std::ceil(
        options.sampleFraction * static_cast<double>(splitVolume)));
    const nd::Index budget =
        std::max<nd::Index>(1, std::min({share, cap, splitVolume}));

    // Deterministic per-split stream: sampling order or parallelism can
    // never change the estimate.
    std::mt19937_64 rng(options.seed ^
                        (static_cast<std::uint64_t>(split.id) + 1) *
                            0x9e3779b97f4a7c15ULL);

    const double scale = static_cast<double>(splitVolume) /
                         static_cast<double>(budget);
    for (nd::Index i = 0; i < budget; ++i) {
      // Pick the region by volume, then a uniform offset inside it,
      // with replacement (cheap, unbiased, deterministic).
      auto pick = static_cast<nd::Index>(
          rng() % static_cast<std::uint64_t>(splitVolume));
      const nd::Region* region = nullptr;
      for (const nd::Region& r : split.regions) {
        if (pick < r.volume()) {
          region = &r;
          break;
        }
        pick -= r.volume();
      }
      const nd::Coord coord = region->coordAtOffset(pick);

      // One point read through the REAL reader (synthetic or dataset):
      // the estimate sees exactly the bytes the map phase would.
      auto reader = readerFactory(nd::Region(coord, ones));
      nd::Coord key;
      double value = 0.0;
      if (!reader->next(key, value)) continue;
      ++est.sampledRecords;
      if (!(value > options.keepAbove)) continue;
      ++est.survivingRecords;

      auto g = extraction.instanceOf(key);
      if (!g) continue;  // stride gap / truncated edge: no intermediate key
      const nd::Index granule = nd::linearize(*g, grid) / plan.granuleSize();
      est.granuleWeights[static_cast<std::size_t>(granule)] += scale;
    }
  }
  return est;
}

}  // namespace sidr::core
