#include "sidr/fingerprint.hpp"

#include <cstring>

namespace sidr::core {

namespace {

// Fixed mixing constants (MurmurHash3 x64 lineage). These, the block
// scheme and the finalizer are part of the frozen key format — the
// digest-pinning unit tests exist to keep them from drifting.
constexpr std::uint64_t kC1 = 0x87c37b91114253d5ULL;
constexpr std::uint64_t kC2 = 0x4cf5ad432745937fULL;

constexpr std::uint64_t rotl64(std::uint64_t x, int r) noexcept {
  return (x << r) | (x >> (64 - r));
}

constexpr std::uint64_t fmix64(std::uint64_t k) noexcept {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Assembles a u64 from up to 8 little-endian bytes (missing bytes are
/// zero) — the explicit byte math is what makes the digest identical
/// across host endiannesses.
std::uint64_t loadLE(const std::byte* p, std::size_t n) noexcept {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < n; ++i) {
    v |= static_cast<std::uint64_t>(std::to_integer<std::uint8_t>(p[i]))
         << (8 * i);
  }
  return v;
}

}  // namespace

std::string toHex(const Fingerprint128& f) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out(32, '0');
  for (int i = 0; i < 16; ++i) {
    const std::uint64_t half = i < 8 ? f.hi : f.lo;
    const int shift = 8 * (7 - (i % 8));
    const auto byte = static_cast<std::uint8_t>(half >> shift);
    out[static_cast<std::size_t>(2 * i)] = kDigits[byte >> 4];
    out[static_cast<std::size_t>(2 * i + 1)] = kDigits[byte & 0xf];
  }
  return out;
}

FingerprintBuilder& FingerprintBuilder::addBytes(
    std::span<const std::byte> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
  return *this;
}

FingerprintBuilder& FingerprintBuilder::addString(std::string_view s) {
  addU64(s.size());
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  buf_.insert(buf_.end(), p, p + s.size());
  return *this;
}

FingerprintBuilder& FingerprintBuilder::addU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xff));
  }
  return *this;
}

FingerprintBuilder& FingerprintBuilder::addI64(std::int64_t v) {
  return addU64(static_cast<std::uint64_t>(v));
}

FingerprintBuilder& FingerprintBuilder::addU32(std::uint32_t v) {
  return addU64(v);
}

FingerprintBuilder& FingerprintBuilder::addBool(bool v) {
  buf_.push_back(static_cast<std::byte>(v ? 1 : 0));
  return *this;
}

FingerprintBuilder& FingerprintBuilder::addDouble(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return addU64(bits);
}

FingerprintBuilder& FingerprintBuilder::addCoord(const nd::Coord& c) {
  addU64(c.rank());
  for (std::size_t d = 0; d < c.rank(); ++d) addI64(c[d]);
  return *this;
}

FingerprintBuilder& FingerprintBuilder::addRegion(const nd::Region& r) {
  addCoord(r.corner());
  addCoord(r.shape());
  return *this;
}

Fingerprint128 FingerprintBuilder::digest() const {
  const std::size_t len = buf_.size();
  // Length participates in the seed AND the finalizer, so zero-padded
  // tails of different lengths cannot collide.
  std::uint64_t h1 = 0x6a09e667f3bcc908ULL ^ (len * kC1);
  std::uint64_t h2 = 0xbb67ae8584caa73bULL ^ (len * kC2);

  const std::byte* p = buf_.data();
  std::size_t remaining = len;
  while (remaining > 0) {
    const std::size_t n1 = remaining < 8 ? remaining : 8;
    std::uint64_t k1 = loadLE(p, n1);
    p += n1;
    remaining -= n1;
    const std::size_t n2 = remaining < 8 ? remaining : 8;
    std::uint64_t k2 = loadLE(p, n2);
    p += n2;
    remaining -= n2;

    k1 *= kC1;
    k1 = rotl64(k1, 31);
    k1 *= kC2;
    h1 ^= k1;
    h1 = rotl64(h1, 27) + h2;
    h1 = h1 * 5 + 0x52dce729ULL;

    k2 *= kC2;
    k2 = rotl64(k2, 33);
    k2 *= kC1;
    h2 ^= k2;
    h2 = rotl64(h2, 31) + h1;
    h2 = h2 * 5 + 0x38495ab5ULL;
  }

  h1 ^= len;
  h2 ^= len;
  h1 += h2;
  h2 += h1;
  h1 = fmix64(h1);
  h2 = fmix64(h2);
  h1 += h2;
  h2 += h1;
  return Fingerprint128{h1, h2};
}

}  // namespace sidr::core
