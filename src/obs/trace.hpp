// Observability layer: lock-free, per-thread span recording with ONE
// stable schema shared by the real engine and the cluster simulator.
//
// A Span covers either a whole task attempt (Phase::kTaskAttempt, one
// per map/reduce execution, matching the attempt ids in the event log
// and spill file names) or one phase inside an attempt (read, map,
// sortPacked, spill-encode, spill-write, rename-commit, fetch, merge,
// reduce, output-commit). Each span carries the task id, attempt,
// keyblock, byte/record counts and the count-annotation tally
// (`represents`), so the paper's scheduling claims — no reduce starts
// before the rename-commit of every map in its I_l, annotation tallies
// cover the key range — become machine-checkable predicates over a
// trace (tests/support/trace_check.hpp).
//
// Recording discipline:
//  - TraceRecorder::record appends to the calling thread's chunked log:
//    owner-only writes, published by one release increment per span, so
//    the hot path takes no lock and never blocks another thread.
//  - SpanScope is the RAII emitter. When no recorder is installed on
//    the thread (ScopedRecorder), constructing one is a thread-local
//    load and a branch — cheap enough to leave in release builds
//    (<2% on bench_map_pipeline, the budget DESIGN.md section 13 pins).
//  - collect() snapshots every thread's committed prefix; callers that
//    want a complete trace collect after joining the producing threads.
//
// The simulator emits the same Span structs directly (virtual lanes
// instead of OS threads), so sim and engine timelines are directly
// comparable by the same invariant checkers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sidr::obs {

/// Which side of the dataflow a span belongs to.
enum class TaskSide : std::uint8_t { kNone = 0, kMap, kReduce };

/// Span kinds. kTaskAttempt brackets one whole execution of a task;
/// the rest are phases nested inside an attempt.
enum class Phase : std::uint8_t {
  kTaskAttempt = 0,
  kRead,          ///< map: one reader batch
  kMap,           ///< map: mapper.map over one batch
  kSortPacked,    ///< map: Segment::sortByKey of one keyblock
  kSpillEncode,   ///< map: segment serialization (spill mode)
  kSpillWrite,    ///< map: attempt-file write (spill mode)
  kRenameCommit,  ///< map: per-keyblock publication (rename / pointer flip)
  kFetch,         ///< reduce: acquiring all dependency segments
  kMerge,         ///< reduce: merge prep + heap construction
  kReduce,        ///< reduce: grouped reduce function
  kOutputCommit,  ///< reduce: committing the keyblock's output
  kPressureSpill, ///< engine: evicting a resident segment under memory pressure
  kCacheFetch,    ///< service: publishing one map's warm cached segments
  kTransportFetch,///< reduce: one ShuffleTransport fetch attempt (inside kFetch)
  kNumPhases,
};

const char* phaseName(Phase phase) noexcept;
const char* taskSideName(TaskSide side) noexcept;

enum class Outcome : std::uint8_t { kOk = 0, kFail };

const char* outcomeName(Outcome outcome) noexcept;

/// Sentinel for "field not applicable" ids (e.g. keyblock on a map
/// read span).
inline constexpr std::uint32_t kNoId = 0xffffffffu;

struct Span {
  double start = 0.0;  ///< seconds since the trace epoch (job start)
  double end = 0.0;
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
  /// Count-annotation tally: original <k,v> pairs this span's data
  /// represents (paper section 3.2.1). Commit spans carry the
  /// segment's annotation; fetch spans the reduce-side tally.
  std::uint64_t represents = 0;
  /// Shuffle connections this span covered (kFetch / kTransportFetch:
  /// the per-(map, reduce) fetch count of Table 3); 0 elsewhere.
  std::uint64_t connections = 0;
  std::uint32_t taskId = kNoId;  ///< map id or keyblock id (by `side`)
  std::uint32_t attempt = 0;     ///< 1-based; 0 = not attempt-scoped
  std::uint32_t keyblock = kNoId;
  /// Recorder lane: registration order of the recording thread, or the
  /// simulator's virtual lane. Spans on one lane are well nested.
  std::uint32_t tid = 0;
  Phase phase = Phase::kTaskAttempt;
  TaskSide side = TaskSide::kNone;
  Outcome outcome = Outcome::kOk;
};

/// One named job-level counter (the registry rows).
struct Counter {
  std::string name;
  std::uint64_t value = 0;
};

/// A collected trace: spans sorted by start time plus the counter
/// registry — the uniform home for metrics that used to live scattered
/// across JobResult fields and thread-local SortStats.
struct Trace {
  /// Identity of the job that produced this trace (JobSpec::jobId,
  /// stamped at finalize); 0 when the trace did not come from a job
  /// run. The Chrome export uses it as the pid, so traces from
  /// concurrent jobs render as separate process groups.
  std::uint64_t jobId = 0;
  std::vector<Span> spans;
  std::vector<Counter> counters;

  /// Adds `value` to counter `name`, creating it at 0 if absent.
  void addCounter(std::string_view name, std::uint64_t value);
  /// Value of counter `name`, or 0 when absent.
  std::uint64_t counterValue(std::string_view name) const noexcept;
  bool hasCounter(std::string_view name) const noexcept;

  /// Stable-sorts spans by (start asc, end desc): an enclosing span
  /// sorts before the spans it contains.
  void sortSpans();
};

/// Collects spans from many threads without making them contend: each
/// thread appends to its own chunked log (plain writes published by a
/// release increment), and collect() acquire-reads the committed
/// prefixes. Safe to collect while producers still run (a consistent
/// snapshot); a complete trace requires joining producers first.
class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  explicit TraceRecorder(Clock::time_point epoch = Clock::now());
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Seconds since the epoch (the same timebase JobResult events use
  /// when the recorder is constructed with the job's start time).
  double now() const noexcept {
    return std::chrono::duration<double>(Clock::now() - epoch_).count();
  }

  /// Appends one span to the calling thread's log. Lock-free after the
  /// thread's first call (which registers its log under a mutex).
  void record(const Span& span);

  Trace collect() const;

  struct ThreadLog;  // public so the thread-local cache can point at it

 private:
  ThreadLog& threadLog();

  Clock::time_point epoch_;
  std::uint64_t id_;  ///< process-unique, guards the thread-local cache
  mutable std::mutex registryMtx_;
  std::vector<std::unique_ptr<ThreadLog>> logs_;
};

namespace detail {
/// The thread's installed recorder (null = recording disabled here).
extern thread_local TraceRecorder* tCurrentRecorder;
}  // namespace detail

inline TraceRecorder* currentRecorder() noexcept {
  return detail::tCurrentRecorder;
}

/// Installs `recorder` (may be null) as the thread's current recorder
/// for the enclosing scope; restores the previous one on exit. Worker
/// threads install it once at loop entry; pool jobs per job.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder* recorder) noexcept
      : prev_(detail::tCurrentRecorder) {
    detail::tCurrentRecorder = recorder;
  }
  ~ScopedRecorder() { detail::tCurrentRecorder = prev_; }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* prev_;
};

/// RAII span: captures the start time at construction and records the
/// span at destruction. When the thread has no recorder installed the
/// constructor is a thread-local load and a branch and nothing else
/// happens — the disabled cost the <2% bench budget measures.
class SpanScope {
 public:
  SpanScope(Phase phase, TaskSide side, std::uint32_t taskId = kNoId,
            std::uint32_t attempt = 0,
            std::uint32_t keyblock = kNoId) noexcept
      : rec_(currentRecorder()) {
    if (rec_ == nullptr) return;
    span_.phase = phase;
    span_.side = side;
    span_.taskId = taskId;
    span_.attempt = attempt;
    span_.keyblock = keyblock;
    span_.start = rec_->now();
  }

  ~SpanScope() {
    if (rec_ == nullptr) return;
    span_.end = rec_->now();
    rec_->record(span_);
  }

  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const noexcept { return rec_ != nullptr; }

  void setBytes(std::uint64_t bytes) noexcept {
    if (rec_ != nullptr) span_.bytes = bytes;
  }
  void setRecords(std::uint64_t records) noexcept {
    if (rec_ != nullptr) span_.records = records;
  }
  void setRepresents(std::uint64_t represents) noexcept {
    if (rec_ != nullptr) span_.represents = represents;
  }
  void setConnections(std::uint64_t connections) noexcept {
    if (rec_ != nullptr) span_.connections = connections;
  }
  void fail() noexcept {
    if (rec_ != nullptr) span_.outcome = Outcome::kFail;
  }

 private:
  TraceRecorder* rec_;
  Span span_;
};

}  // namespace sidr::obs
