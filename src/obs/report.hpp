// Trace exporters: Chrome trace_event JSON for human inspection and a
// per-phase aggregation for machine-readable bench reports.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace sidr::obs {

/// Writes the trace in Chrome trace_event JSON object format:
/// {"traceEvents": [<complete "X" events>], "displayTimeUnit": "ms",
///  "otherData": {"counters": {...}}}. ts/dur are microseconds from
/// the trace epoch; pid is the trace's jobId (1 when unset), so traces
/// from concurrent jobs render as separate process groups; tid is the
/// span's recorder lane.
/// Span fields travel in "args" (task, attempt, keyblock, bytes,
/// records, represents, outcome). Load the file in chrome://tracing or
/// Perfetto (ui.perfetto.dev, "Open trace file") — see DESIGN.md
/// section 13.
void writeChromeTrace(std::ostream& os, const Trace& trace);

/// writeChromeTrace into `path`; returns false when the file cannot be
/// opened (benches treat that as a skipped artifact, not an error).
bool writeChromeTraceFile(const std::string& path, const Trace& trace);

/// One row of the compact run report: totals for a (side, phase) pair.
struct PhaseTotal {
  TaskSide side = TaskSide::kNone;
  Phase phase = Phase::kTaskAttempt;
  std::uint64_t spans = 0;
  double seconds = 0.0;  ///< sum of span durations
  std::uint64_t bytes = 0;
  std::uint64_t records = 0;
};

/// Aggregates spans into per-(side, phase) totals, ordered by side then
/// phase; only pairs present in the trace appear.
std::vector<PhaseTotal> phaseTotals(const Trace& trace);

}  // namespace sidr::obs
