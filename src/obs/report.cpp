#include "obs/report.hpp"

#include <array>
#include <cstdio>
#include <fstream>
#include <ostream>

namespace sidr::obs {

namespace {

/// Locale-independent fixed-point formatting (ostream << double honors
/// the global locale, which could emit decimal commas into the JSON).
void writeFixed(std::ostream& os, double value) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.3f", value);
  os << buf.data();
}

void writeSpanEvent(std::ostream& os, const Span& span, std::uint64_t pid) {
  os << "{\"name\":\"" << taskSideName(span.side) << ':'
     << phaseName(span.phase) << "\",\"cat\":\"" << taskSideName(span.side)
     << "\",\"ph\":\"X\",\"ts\":";
  writeFixed(os, span.start * 1e6);
  os << ",\"dur\":";
  writeFixed(os, (span.end - span.start) * 1e6);
  os << ",\"pid\":" << pid << ",\"tid\":" << span.tid << ",\"args\":{";
  if (span.taskId != kNoId) os << "\"task\":" << span.taskId << ',';
  if (span.attempt != 0) os << "\"attempt\":" << span.attempt << ',';
  if (span.keyblock != kNoId) os << "\"keyblock\":" << span.keyblock << ',';
  if (span.connections != 0) {
    os << "\"connections\":" << span.connections << ',';
  }
  os << "\"bytes\":" << span.bytes << ",\"records\":" << span.records
     << ",\"represents\":" << span.represents << ",\"outcome\":\""
     << outcomeName(span.outcome) << "\"}}";
}

}  // namespace

void writeChromeTrace(std::ostream& os, const Trace& trace) {
  os << "{\"traceEvents\":[";
  // pid groups one job's lanes together; jobId 0 (non-job traces) keeps
  // the historical pid 1.
  const std::uint64_t pid = trace.jobId != 0 ? trace.jobId : 1;
  bool first = true;
  for (const Span& span : trace.spans) {
    if (!first) os << ",\n";
    first = false;
    writeSpanEvent(os, span, pid);
  }
  os << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"counters\":{";
  first = true;
  for (const Counter& c : trace.counters) {
    if (!first) os << ',';
    first = false;
    os << '"' << c.name << "\":" << c.value;
  }
  os << "}}}\n";
}

bool writeChromeTraceFile(const std::string& path, const Trace& trace) {
  std::ofstream os(path);
  if (!os) return false;
  writeChromeTrace(os, trace);
  return os.good();
}

std::vector<PhaseTotal> phaseTotals(const Trace& trace) {
  constexpr std::size_t kSides = 3;
  constexpr auto kPhases = static_cast<std::size_t>(Phase::kNumPhases);
  std::array<PhaseTotal, kSides * kPhases> table{};
  for (const Span& span : trace.spans) {
    const std::size_t idx =
        static_cast<std::size_t>(span.side) * kPhases +
        static_cast<std::size_t>(span.phase);
    PhaseTotal& row = table[idx];
    row.side = span.side;
    row.phase = span.phase;
    ++row.spans;
    row.seconds += span.end - span.start;
    row.bytes += span.bytes;
    row.records += span.records;
  }
  std::vector<PhaseTotal> rows;
  for (const PhaseTotal& row : table) {
    if (row.spans > 0) rows.push_back(row);
  }
  return rows;
}

}  // namespace sidr::obs
