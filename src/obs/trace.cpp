#include "obs/trace.hpp"

#include <algorithm>
#include <array>

namespace sidr::obs {

namespace detail {
thread_local TraceRecorder* tCurrentRecorder = nullptr;
}  // namespace detail

const char* phaseName(Phase phase) noexcept {
  switch (phase) {
    case Phase::kTaskAttempt:
      return "attempt";
    case Phase::kRead:
      return "read";
    case Phase::kMap:
      return "map";
    case Phase::kSortPacked:
      return "sortPacked";
    case Phase::kSpillEncode:
      return "spill-encode";
    case Phase::kSpillWrite:
      return "spill-write";
    case Phase::kRenameCommit:
      return "rename-commit";
    case Phase::kFetch:
      return "fetch";
    case Phase::kMerge:
      return "merge";
    case Phase::kReduce:
      return "reduce";
    case Phase::kOutputCommit:
      return "output-commit";
    case Phase::kPressureSpill:
      return "pressure-spill";
    case Phase::kCacheFetch:
      return "cache-fetch";
    case Phase::kTransportFetch:
      return "transport-fetch";
    case Phase::kNumPhases:
      break;
  }
  return "?";
}

const char* taskSideName(TaskSide side) noexcept {
  switch (side) {
    case TaskSide::kNone:
      return "none";
    case TaskSide::kMap:
      return "map";
    case TaskSide::kReduce:
      return "reduce";
  }
  return "?";
}

const char* outcomeName(Outcome outcome) noexcept {
  return outcome == Outcome::kOk ? "ok" : "fail";
}

void Trace::addCounter(std::string_view name, std::uint64_t value) {
  for (Counter& c : counters) {
    if (c.name == name) {
      c.value += value;
      return;
    }
  }
  counters.push_back(Counter{std::string(name), value});
}

std::uint64_t Trace::counterValue(std::string_view name) const noexcept {
  for (const Counter& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

bool Trace::hasCounter(std::string_view name) const noexcept {
  for (const Counter& c : counters) {
    if (c.name == name) return true;
  }
  return false;
}

void Trace::sortSpans() {
  std::stable_sort(spans.begin(), spans.end(),
                   [](const Span& a, const Span& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.end > b.end;
                   });
}

namespace {
std::atomic<std::uint64_t> gNextRecorderId{1};

/// Per-thread cache of "my log in recorder X". Recorder ids are
/// process-unique and never reused, so a cache left behind by a
/// destroyed recorder can never match a live one — the stale pointer
/// is never dereferenced.
struct LogCache {
  std::uint64_t recorderId = 0;
  TraceRecorder::ThreadLog* log = nullptr;
};
thread_local LogCache tLogCache;
}  // namespace

struct TraceRecorder::ThreadLog {
  static constexpr std::size_t kChunkSpans = 256;

  /// Fixed-size chunk; full chunks link to the next one. Slots are
  /// written only by the owning thread and only before the matching
  /// `committed` increment, so a collector that acquire-loads
  /// `committed` >= i reads slot i after a happens-before edge.
  struct Chunk {
    std::array<Span, kChunkSpans> spans;
    std::atomic<Chunk*> next{nullptr};
  };

  explicit ThreadLog(std::uint32_t tidIn) : tid(tidIn) {
    head = tail = new Chunk;
  }
  ~ThreadLog() {
    Chunk* c = head;
    while (c != nullptr) {
      Chunk* n = c->next.load(std::memory_order_relaxed);
      delete c;
      c = n;
    }
  }
  ThreadLog(const ThreadLog&) = delete;
  ThreadLog& operator=(const ThreadLog&) = delete;

  Chunk* head = nullptr;     ///< owned chain start (collector entry)
  Chunk* tail = nullptr;     ///< producer-only
  std::size_t tailUsed = 0;  ///< producer-only
  std::atomic<std::uint64_t> committed{0};
  std::uint32_t tid = 0;
};

TraceRecorder::TraceRecorder(Clock::time_point epoch)
    : epoch_(epoch),
      id_(gNextRecorderId.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder::ThreadLog& TraceRecorder::threadLog() {
  if (tLogCache.recorderId == id_) return *tLogCache.log;
  // First span from this thread: register a fresh log. This is the
  // only lock on the recording path, taken once per (thread, recorder).
  std::scoped_lock lock(registryMtx_);
  logs_.push_back(
      std::make_unique<ThreadLog>(static_cast<std::uint32_t>(logs_.size())));
  tLogCache = LogCache{id_, logs_.back().get()};
  return *logs_.back();
}

void TraceRecorder::record(const Span& span) {
  ThreadLog& log = threadLog();
  if (log.tailUsed == ThreadLog::kChunkSpans) {
    auto* next = new ThreadLog::Chunk;
    log.tail->next.store(next, std::memory_order_release);
    log.tail = next;
    log.tailUsed = 0;
  }
  Span& slot = log.tail->spans[log.tailUsed];
  slot = span;
  slot.tid = log.tid;
  ++log.tailUsed;
  log.committed.fetch_add(1, std::memory_order_release);
}

Trace TraceRecorder::collect() const {
  Trace trace;
  std::scoped_lock lock(registryMtx_);
  for (const auto& logPtr : logs_) {
    const std::uint64_t n = logPtr->committed.load(std::memory_order_acquire);
    const ThreadLog::Chunk* chunk = logPtr->head;
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto slot =
          static_cast<std::size_t>(i % ThreadLog::kChunkSpans);
      if (i != 0 && slot == 0) {
        chunk = chunk->next.load(std::memory_order_acquire);
      }
      trace.spans.push_back(chunk->spans[slot]);
    }
  }
  trace.sortSpans();
  return trace;
}

}  // namespace sidr::obs
