// EngineService: a long-lived, multi-job engine. Where Engine::run owns
// its worker threads and pools for the duration of ONE JobSpec, the
// service owns them for its lifetime and multiplexes N in-flight jobs
// over them — the serving substrate SIDR's early exact partial results
// assume (many concurrent structural queries sharing one cluster's
// task slots).
//
// Architecture (DESIGN.md section 15):
//  - submit(spec) validates, assigns a service-unique jobId (the spill
//    namespace `spillDirectory/job<id>/`), queues the job and returns a
//    JobHandle immediately;
//  - admission: queued jobs start in FIFO order, gated by
//    maxConcurrentJobs and by the service memory ledger — a job
//    declaring memoryBudgetBytes reserves that much against
//    ServiceConfig::memoryBudgetBytes before it may start (head-of-line
//    blocking keeps admission fair; one job is always admitted even if
//    it alone exceeds the ledger);
//  - execution: every worker thread repeatedly picks one task from one
//    admitted job under the configured SchedulingPolicy and runs it;
//    jobs are isolated by construction in their JobContext (spill
//    namespace, trace recorder, sort counters, fault plan), so results
//    are bit-identical to a solo Engine::run of the same spec;
//  - completion: when a job quiesces (done, failed, or cancelled with
//    no task in flight) a worker finalizes it — computing metrics and
//    trace, removing the spill namespace on non-success — and wakes
//    every JobHandle::wait.
//
// Lock order: service mutex -> job mutex, never the reverse (JobContext
// never calls back into the service).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "mapreduce/job.hpp"

namespace sidr::mr {

/// How the service's workers choose which admitted job's task to run
/// next. Within a job, claims always follow the job's own reduce-first
/// order (a runnable reduce beats an eligible map).
enum class SchedulingPolicy : std::uint8_t {
  /// Admission order: the oldest admitted job with a claimable task
  /// wins. Lowest latency for the head job; later jobs run on its
  /// leftover slots.
  kFifo,
  /// Proportional sharing: the job with the lowest
  /// tasksServiced / JobSpec::weight ratio wins (ties by admission
  /// order), so a weight-2 job receives twice the task throughput of a
  /// weight-1 peer while both have claimable work.
  kWeightedFair,
  /// SIDR's dependency-aware ordering lifted to the service level: any
  /// job with a RUNNABLE REDUCE beats every job that can only offer a
  /// map, minimizing time-to-first-result across the whole job mix;
  /// FIFO breaks ties.
  kReduceFirst,
};

const char* schedulingPolicyName(SchedulingPolicy policy) noexcept;

struct ServiceConfig {
  /// Worker threads executing tasks across ALL jobs (the service-level
  /// analogue of JobSpec::numThreads, which is ignored for submitted
  /// jobs). Per-job mapSlots/reduceSlots still cap each job's
  /// concurrency.
  std::uint32_t numThreads = 4;
  /// Size of the ONE spill-writer pool shared by every spilling job;
  /// 1 = encode+write inline on the claiming worker.
  std::uint32_t spillWriters = 4;
  /// Maximum admitted (running) jobs; 0 = unbounded. Queued jobs wait.
  std::uint32_t maxConcurrentJobs = 4;
  /// Service-wide memory ledger: admission reserves each job's declared
  /// JobSpec::memoryBudgetBytes against this total. 0 = no ledger
  /// (admission gates only on maxConcurrentJobs). Jobs declaring no
  /// budget reserve nothing.
  std::uint64_t memoryBudgetBytes = 0;
  SchedulingPolicy policy = SchedulingPolicy::kFifo;
  /// Service-owned cache of committed immutable map-output segments
  /// keyed by JobSpec::mapFingerprint (DESIGN.md §16): a resubmitted
  /// structural query with a byte-identical fingerprint skips map
  /// execution entirely and shuffles the cached segments warm. Default
  /// OFF — with the cache disabled, behavior is exactly PR 7's. Only
  /// fingerprinted jobs with an empty FaultPlan participate (as donor
  /// or claimant); everything else runs cold, untouched.
  bool segmentCacheEnabled = false;
  /// Resident-byte cap for cached segments; 0 = no dedicated cap (the
  /// admission ledger still sheds the cache under pressure: jobs always
  /// win memory over cache residency). Spill-backed entries demote to
  /// their committed files instead of being dropped.
  std::uint64_t segmentCacheBytes = 0;
  /// Shuffle data plane for submitted jobs that leave JobSpec::transport
  /// unset: submit() resolves the job's transport to this value before
  /// validation. Unset = each job's own default (in-process). A job that
  /// sets its transport explicitly always wins over this service-wide
  /// default; cache-served executions force in-process regardless.
  std::optional<ShuffleTransportKind> defaultTransport;
};

/// Monotonic service-lifetime counters (stats() returns a snapshot).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t succeeded = 0;
  std::uint64_t failed = 0;
  std::uint64_t cancelled = 0;
  /// High-water mark of simultaneously admitted jobs.
  std::uint32_t peakConcurrentJobs = 0;
  /// High-water mark of reserved admission bytes.
  std::uint64_t peakAdmittedBytes = 0;
  // Segment-cache counters (all zero with the cache disabled).
  std::uint64_t cacheHits = 0;
  std::uint64_t cacheMisses = 0;
  std::uint64_t cacheBytesServed = 0;
  std::uint64_t cacheEvictions = 0;
  std::uint64_t cacheDemotions = 0;
  std::uint64_t cacheInsertions = 0;
  /// Gauge: resident cached segment bytes right now.
  std::uint64_t cacheResidentBytes = 0;
};

enum class JobState : std::uint8_t {
  kQueued,     ///< submitted, not yet admitted
  kRunning,    ///< admitted; tasks executing (or cancel draining)
  kSucceeded,  ///< all reduces committed
  kFailed,     ///< terminal error (JobHandle::wait rethrows it)
  kCancelled,  ///< cancelled before completion (wait throws JobCancelled)
};

const char* jobStateName(JobState state) noexcept;

/// Thrown by JobHandle::wait when the job was cancelled before it could
/// complete. Partial results committed before the cancel remain
/// readable through partialResults().
class JobCancelled : public std::runtime_error {
 public:
  explicit JobCancelled(std::uint64_t jobId)
      : std::runtime_error("JobCancelled: job " + std::to_string(jobId) +
                           " was cancelled before completing"),
        jobId_(jobId) {}

  std::uint64_t jobId() const noexcept { return jobId_; }

 private:
  std::uint64_t jobId_;
};

namespace detail {
struct ServiceJob;
struct ServiceState;
}  // namespace detail

/// Async handle for one submitted job. Copyable (shared state); safe to
/// use after the EngineService itself is destroyed (the service drains
/// all jobs on destruction, so every handle is terminal by then).
class JobHandle {
 public:
  JobHandle() = default;

  bool valid() const noexcept { return job_ != nullptr; }
  std::uint64_t id() const;
  JobState status() const;
  /// True once the job reached a terminal state.
  bool done() const;

  /// Blocks until terminal. Returns the result on success; rethrows the
  /// job's error on kFailed; throws JobCancelled on kCancelled. The
  /// reference stays valid while any handle to this job lives.
  const JobResult& wait();

  /// Best-effort cancellation. A queued job is cancelled immediately; a
  /// running job stops claiming new tasks, drains its in-flight ones
  /// and finalizes as kCancelled (its spill namespace is removed unless
  /// keepSpillOnFailure). Returns false when the job is already
  /// terminal — including a job whose last reduce commits before the
  /// cancel lands, which stays kSucceeded.
  bool cancel();

  /// Every reduce output committed so far — SIDR's early exact partial
  /// results, observable while the job runs and after a failure or
  /// cancel (the reduces that did commit remain exact).
  std::vector<ReduceOutput> partialResults() const;

 private:
  friend class EngineService;
  explicit JobHandle(std::shared_ptr<detail::ServiceJob> job)
      : job_(std::move(job)) {}

  std::shared_ptr<detail::ServiceJob> job_;
};

class EngineService {
 public:
  explicit EngineService(ServiceConfig config = ServiceConfig{});
  /// Drains: blocks until every queued and admitted job is terminal.
  ~EngineService();

  EngineService(const EngineService&) = delete;
  EngineService& operator=(const EngineService&) = delete;

  /// Validates the spec (same rules as the Engine constructor,
  /// std::invalid_argument), assigns the service-unique jobId
  /// (overwriting spec.jobId) and queues the job. Throws
  /// std::runtime_error after shutdown began.
  JobHandle submit(JobSpec spec);

  /// Blocks until no job is queued or admitted. New submissions remain
  /// possible afterwards.
  void drain();

  ServiceStats stats() const;
  const ServiceConfig& config() const noexcept { return config_; }

 private:
  ServiceConfig config_;
  std::shared_ptr<detail::ServiceState> state_;
  std::vector<std::jthread> workers_;
};

}  // namespace sidr::mr
