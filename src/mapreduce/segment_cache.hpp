// SegmentCache: a service-owned cache of committed, immutable map-output
// segments keyed by a canonical MapFingerprint (DESIGN.md §16).
//
// SIDR's premise is that structural metadata makes intermediate data
// predictable — predictable enough to route, and therefore predictable
// enough to REUSE: two byte-identical structural queries over the same
// dataset produce byte-identical map output, so the second needs no map
// phase at all. The cache holds one entry per fingerprint: the full
// (map, keyblock) matrix of shared_ptr<const Segment> handles a
// successful job donated at finalize. A later job with the same
// fingerprint claims the matrix and publishes it wholesale — zero map
// tasks, reduces shuffle the warm handles exactly as if its own maps
// had committed them.
//
// Invalidation is trivial by construction: segments are immutable after
// publication and the key is content-addressed (dataset identity is
// part of the fingerprint), so an entry can never go stale — only cold.
//
// Memory: resident entries are charged against the owning service's
// admission ledger (jobs always win — admission pressure sheds the
// cache first). Shedding is LRU by fingerprint; an entry whose segments
// also live in committed spill files (an eager-spill donor's `job<id>/`
// namespace) is DEMOTED to its file paths instead of dropped, and a
// later claim re-loads it through the SegmentStream / codec path.
//
// Thread safety: externally synchronized. EngineService accesses the
// cache only under its service mutex; the claim path's file reloads do
// run I/O under that lock, accepted for the same reason JobContext::
// start() runs namespace creation there — admission is rare and a warm
// claim replaces an entire map phase.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "mapreduce/segment.hpp"
#include "sidr/fingerprint.hpp"

namespace sidr::mr {

/// A successful job's committed map output, staged by JobContext and
/// handed to the cache at finalize. Exactly one of `segments` (resident
/// donor: in-memory or hybrid mode) or `paths` (file-backed donor:
/// eager-spill mode, pointing into the donor's committed `job<id>/`
/// namespace) is populated; both are [numMaps][numReduces].
struct SegmentCacheDonation {
  bool present = false;
  core::Fingerprint128 key{};
  std::uint32_t numMaps = 0;
  std::uint32_t numReduces = 0;
  /// File framing of `paths` entries (donor's compressSpill), and the
  /// key space needed to decode/relinearize them on reload.
  bool compressed = false;
  nd::Coord keySpace;
  std::vector<std::vector<std::shared_ptr<const Segment>>> segments;
  std::vector<std::vector<std::string>> paths;
};

/// Monotonic counters (residentBytes is a gauge). Snapshot via stats().
struct SegmentCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t bytesServed = 0;
  /// Entries dropped entirely (no file backing to demote to).
  std::uint64_t evictions = 0;
  /// Resident entries demoted to their committed spill files.
  std::uint64_t demotions = 0;
  std::uint64_t insertions = 0;
  std::uint64_t residentBytes = 0;
};

class SegmentCache {
 public:
  /// `capBytes`: resident-byte cap enforced after every insert and
  /// promotion; 0 = no own cap (the owning service's admission ledger
  /// still sheds the cache under pressure via shedTo()).
  explicit SegmentCache(std::uint64_t capBytes) : cap_(capBytes) {}

  struct Claimed {
    std::vector<std::vector<std::shared_ptr<const Segment>>> segments;
    std::uint64_t bytesServed = 0;
  };

  /// Looks up `key` and returns handle copies for a job with the given
  /// geometry. A demoted entry is re-loaded from its committed files
  /// (and promoted back to resident); a load failure — e.g. the donor's
  /// namespace was removed out-of-band — drops the entry and counts a
  /// miss, so the claimant just runs cold. A geometry mismatch (same
  /// fingerprint, different matrix shape) would be a canonicalization
  /// bug; it is treated as a miss and the entry is dropped defensively.
  std::optional<Claimed> claim(const core::Fingerprint128& key,
                               std::uint32_t numMaps,
                               std::uint32_t numReduces);

  /// Absorbs a donation. First donor wins on a duplicate key (the
  /// entries are byte-identical by the fingerprint contract); the
  /// duplicate is dropped. Enforces the cap afterwards.
  void insert(SegmentCacheDonation donation);

  /// Sheds LRU-by-fingerprint until residentBytes() <= target: demotes
  /// file-backed entries to their paths, drops memory-only ones.
  void shedTo(std::uint64_t targetResidentBytes);

  std::uint64_t residentBytes() const noexcept {
    return stats_.residentBytes;
  }
  std::size_t entryCount() const noexcept { return entries_.size(); }
  const SegmentCacheStats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    std::uint32_t numMaps = 0;
    std::uint32_t numReduces = 0;
    bool compressed = false;
    nd::Coord keySpace;
    /// Resident handles; all-null rows when demoted to `paths`.
    std::vector<std::vector<std::shared_ptr<const Segment>>> segments;
    /// Committed spill files backing this entry; empty for a resident-
    /// only (in-memory/hybrid donor) entry.
    std::vector<std::vector<std::string>> paths;
    std::uint64_t resident = 0;  ///< bytes charged while resident
    std::uint64_t lruTick = 0;
  };

  bool loadEntryFiles(Entry& entry);
  void dropResident(Entry& entry);

  std::unordered_map<core::Fingerprint128, Entry, core::Fingerprint128Hash>
      entries_;
  std::uint64_t cap_ = 0;
  std::uint64_t tick_ = 0;
  SegmentCacheStats stats_;
};

}  // namespace sidr::mr
