// Key/value model for the structural MapReduce runtime.
//
// Keys are logical coordinates (SciHadoop keeps every dataflow stage in
// coordinate space); values are a small tagged union covering the three
// shapes structural operators need:
//   * kScalar  — a single data point (map input, simple outputs);
//   * kPartial — distributive running aggregate (sum/count/min/max),
//                what combiners ship for mean/sum/min/max queries;
//   * kList    — a list of data points, required by holistic operators
//                (median) and by filter queries whose result per key is
//                "zero or more values" (paper section 2.4.2).
#pragma once

#include <cstdint>
#include <type_traits>
#include <vector>

#include "ndarray/coord.hpp"

namespace sidr::mr {

enum class ValueKind : std::uint8_t { kScalar = 0, kPartial = 1, kList = 2 };

/// Distributive partial aggregate: enough state to finalize sum, count,
/// mean, min and max.
struct Partial {
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::int64_t count = 0;

  static Partial ofValue(double v) { return Partial{v, v, v, 1}; }

  void merge(const Partial& o) {
    if (o.count == 0) return;
    if (count == 0) {
      *this = o;
      return;
    }
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
    count += o.count;
  }

  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  friend bool operator==(const Partial&, const Partial&) = default;
};

class Value {
 public:
  Value() : kind_(ValueKind::kScalar), scalar_(0.0) {}

  static Value scalar(double v) {
    Value x;
    x.kind_ = ValueKind::kScalar;
    x.scalar_ = v;
    return x;
  }

  static Value partial(Partial p) {
    Value x;
    x.kind_ = ValueKind::kPartial;
    x.partial_ = p;
    return x;
  }

  static Value list(std::vector<double> xs) {
    Value x;
    x.kind_ = ValueKind::kList;
    x.list_ = std::move(xs);
    return x;
  }

  ValueKind kind() const noexcept { return kind_; }

  double asScalar() const {
    requireKind(ValueKind::kScalar);
    return scalar_;
  }

  const Partial& asPartial() const {
    requireKind(ValueKind::kPartial);
    return partial_;
  }

  const std::vector<double>& asList() const {
    requireKind(ValueKind::kList);
    return list_;
  }

  std::vector<double>& mutableList() {
    requireKind(ValueKind::kList);
    return list_;
  }

  friend bool operator==(const Value&, const Value&) = default;

 private:
  void requireKind(ValueKind k) const {
    if (kind_ != k) throw std::logic_error("Value: wrong kind access");
  }

  ValueKind kind_;
  double scalar_ = 0.0;
  Partial partial_;
  std::vector<double> list_;
};

/// One intermediate record. `represents` is the count annotation from
/// paper section 3.2.1 method 2: how many original map-input pairs this
/// record stands for after combining (1 when no combiner ran).
struct KeyValue {
  nd::Coord key;
  Value value;
  std::uint64_t represents = 1;
};

/// One record of the linearized fast path's packed representation
/// (DESIGN.md section 11): the key as its row-major linear index in the
/// job's keySpace, the payload inline for scalar/partial values and as
/// an index into an out-of-line list table for list values. The whole
/// point of this layout is that it is trivially copyable — buffer growth
/// is a memmove instead of a per-element KeyValue move (a KeyValue is
/// ~160 bytes and owns a vector), and sorting permutes 16-byte
/// (lin, index) pairs instead of swapping records.
struct PackedRecord {
  std::uint64_t lin = 0;
  std::uint64_t represents = 1;
  union Payload {
    double scalar;
    Partial partial;
    std::uint32_t listIndex;
    Payload() : scalar(0.0) {}
  } payload;
  ValueKind kind = ValueKind::kScalar;
};
static_assert(std::is_trivially_copyable_v<PackedRecord>);

}  // namespace sidr::mr
