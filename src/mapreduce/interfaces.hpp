// User-facing interfaces of the MapReduce runtime: RecordReader, Mapper,
// Combiner, Reducer, Partitioner and their contexts. These mirror the
// Hadoop 1.0 APIs the paper extends, restricted to coordinate keys.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>

#include "mapreduce/kv.hpp"
#include "ndarray/region.hpp"

namespace sidr::mr {

/// Produces (key, value) pairs from one input split. Implementations are
/// file-format specific (the paper's NetCDF reader; our SNDF reader).
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Advances to the next record; returns false at end of split.
  virtual bool next(nd::Coord& key, double& value) = 0;

  /// Batch read: fills the parallel `keys`/`values` arrays with up to
  /// min(keys.size(), values.size()) records and returns how many were
  /// produced; 0 means end of split. A short (non-zero) return does NOT
  /// signal the end — readers may stop early at internal boundaries
  /// (e.g. row ends), so callers must loop until 0. Region-backed
  /// readers override this with a row-run inner loop that pays the
  /// cursor-carry and virtual-dispatch cost once per run instead of
  /// once per record; this default delegates to next().
  virtual std::size_t nextBatch(std::span<nd::Coord> keys,
                                std::span<double> values) {
    const std::size_t cap = std::min(keys.size(), values.size());
    std::size_t n = 0;
    while (n < cap && next(keys[n], values[n])) ++n;
    return n;
  }
};

/// Collects a mapper's intermediate output.
class MapContext {
 public:
  virtual ~MapContext() = default;

  /// Emits an intermediate record. `represents` is the number of map
  /// input pairs this record stands for (count annotation; >1 only when
  /// the mapper pre-aggregates).
  virtual void emit(const nd::Coord& key, Value value,
                    std::uint64_t represents = 1) = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual void map(const nd::Coord& key, double value, MapContext& ctx) = 0;

  /// Called once after the split is exhausted; mappers that buffer
  /// (combining mappers) flush here.
  virtual void finish(MapContext& /*ctx*/) {}
};

/// Collects a reducer's final output.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;

  virtual void emit(const nd::Coord& key, Value value) = 0;
};

class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Called once per distinct intermediate key with every value for that
  /// key (MapReduce guarantee 2).
  virtual void reduce(const nd::Coord& key,
                      std::span<const Value* const> values,
                      ReduceContext& ctx) = 0;
};

/// Optional map-side combiner: merges two values for the same key.
class Combiner {
 public:
  virtual ~Combiner() = default;

  virtual Value combine(const Value& a, const Value& b) const = 0;
};

/// Assigns intermediate keys to keyblocks (one keyblock per Reduce
/// task). Implementations: HashPartitioner / ModuloPartitioner (Hadoop
/// defaults) and sidr::PartitionPlus.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual std::uint32_t partition(const nd::Coord& key,
                                  std::uint32_t numReducers) const = 0;

  /// Linearized-key fast path (see DESIGN.md section 11). `linearKey` is
  /// linearize(key, keySpace) for the job's declared JobSpec::keySpace;
  /// implementations that route by row-major linear index return the
  /// keyblock AND set `runEnd` to an exclusive linear-key bound such
  /// that EVERY valid intermediate key with linear index in
  /// [linearKey, runEnd) lands in the same keyblock. Callers cache the
  /// run and skip the virtual call for keys inside it, so a
  /// structure-aware partitioner (partition+) is consulted once per
  /// granule row rather than once per record. Implementations must
  /// express `runEnd` in the SAME key space the engine linearizes with —
  /// for the planner-built jobs that is
  /// ExtractionMap::intermediateSpaceShape(). This default is always
  /// correct: a run of exactly one key, routed by partition().
  virtual std::uint32_t partitionRun(const nd::Coord& key,
                                     std::uint64_t linearKey,
                                     std::uint32_t numReducers,
                                     std::uint64_t& runEnd) const {
    runEnd = linearKey + 1;
    return partition(key, numReducers);
  }
};

/// Factory signatures used by JobSpec.
using CombinerFactory = std::function<std::unique_ptr<Combiner>()>;
using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;
using RecordReaderFactory =
    std::function<std::unique_ptr<RecordReader>(const nd::Region&)>;

}  // namespace sidr::mr
