// User-facing interfaces of the MapReduce runtime: RecordReader, Mapper,
// Combiner, Reducer, Partitioner and their contexts. These mirror the
// Hadoop 1.0 APIs the paper extends, restricted to coordinate keys.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "mapreduce/kv.hpp"
#include "ndarray/region.hpp"

namespace sidr::mr {

/// Produces (key, value) pairs from one input split. Implementations are
/// file-format specific (the paper's NetCDF reader; our SNDF reader).
class RecordReader {
 public:
  virtual ~RecordReader() = default;

  /// Advances to the next record; returns false at end of split.
  virtual bool next(nd::Coord& key, double& value) = 0;
};

/// Collects a mapper's intermediate output.
class MapContext {
 public:
  virtual ~MapContext() = default;

  /// Emits an intermediate record. `represents` is the number of map
  /// input pairs this record stands for (count annotation; >1 only when
  /// the mapper pre-aggregates).
  virtual void emit(const nd::Coord& key, Value value,
                    std::uint64_t represents = 1) = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;

  virtual void map(const nd::Coord& key, double value, MapContext& ctx) = 0;

  /// Called once after the split is exhausted; mappers that buffer
  /// (combining mappers) flush here.
  virtual void finish(MapContext& /*ctx*/) {}
};

/// Collects a reducer's final output.
class ReduceContext {
 public:
  virtual ~ReduceContext() = default;

  virtual void emit(const nd::Coord& key, Value value) = 0;
};

class Reducer {
 public:
  virtual ~Reducer() = default;

  /// Called once per distinct intermediate key with every value for that
  /// key (MapReduce guarantee 2).
  virtual void reduce(const nd::Coord& key,
                      std::span<const Value* const> values,
                      ReduceContext& ctx) = 0;
};

/// Optional map-side combiner: merges two values for the same key.
class Combiner {
 public:
  virtual ~Combiner() = default;

  virtual Value combine(const Value& a, const Value& b) const = 0;
};

/// Assigns intermediate keys to keyblocks (one keyblock per Reduce
/// task). Implementations: HashPartitioner / ModuloPartitioner (Hadoop
/// defaults) and sidr::PartitionPlus.
class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual std::uint32_t partition(const nd::Coord& key,
                                  std::uint32_t numReducers) const = 0;
};

/// Factory signatures used by JobSpec.
using CombinerFactory = std::function<std::unique_ptr<Combiner>()>;
using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;
using RecordReaderFactory =
    std::function<std::unique_ptr<RecordReader>(const nd::Region&)>;

}  // namespace sidr::mr
