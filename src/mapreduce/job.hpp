// Job specification and result types for the MapReduce runtime.
#pragma once

#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "mapreduce/interfaces.hpp"
#include "mapreduce/segment.hpp"
#include "obs/trace.hpp"
#include "sidr/fingerprint.hpp"

namespace sidr::mr {

/// How Reduce tasks are gated and scheduled.
enum class ExecutionMode {
  /// Stock Hadoop/SciHadoop: every Reduce task waits for ALL Map tasks
  /// (the global MapReduce barrier, paper section 2.3.1), reduces are
  /// taken in id order, maps are all schedulable from the start.
  kGlobalBarrier,
  /// SIDR: Reduce tasks are scheduled first (optionally in a priority
  /// order); scheduling a Reduce marks the Map tasks in its dependency
  /// set I_l schedulable; a Reduce starts processing as soon as its I_l
  /// is complete (paper sections 3.2, 3.3).
  kSidr,
};

/// How intermediate data is protected against Reduce-task failure.
enum class RecoveryModel {
  /// Hadoop: all map output is persisted; a failed reduce re-fetches.
  kPersistAll,
  /// Paper section 6 (future work): intermediate data is volatile; a
  /// failed reduce triggers re-execution of just its I_l map subset.
  kRecomputeDeps,
};

/// Which side of the dataflow a task (or an injected fault) belongs to.
enum class TaskKind : std::uint8_t { kMap, kReduce };

inline const char* taskKindName(TaskKind kind) {
  return kind == TaskKind::kMap ? "map" : "reduce";
}

/// How reduce tasks acquire their dependency segments (DESIGN.md §17).
/// Every backend preserves the commit-rename publication protocol, the
/// count-annotation tallies and the attempt-suffix recovery rules, and
/// each fetch attempt emits one obs::Phase::kTransportFetch span inside
/// the reduce's kFetch span — so the trace invariants hold identically
/// whichever data plane moves the bytes.
enum class ShuffleTransportKind : std::uint8_t {
  /// Same-address-space handoff: resident `shared_ptr<const Segment>`
  /// handles (or direct spill-file reads in eager mode). The default;
  /// byte-identical to the historical fetch path, zero new copies.
  kInProcess = 0,
  /// Localhost TCP: a per-job server thread serves segments over
  /// length-prefixed frames (the exact-size bulk codec is the wire
  /// format); clients batch multiple maps per request across a pooled
  /// set of connections.
  kSocket,
  /// Localhost TCP serving ONLY committed `job<id>/` spill files,
  /// streamed through bounded windows server-side and decoded through
  /// SegmentStream windows client-side. Requires eager spill.
  kFileServed,
};

const char* shuffleTransportName(ShuffleTransportKind kind) noexcept;

/// One injected failure: task `id` dies on its `attempt`-th execution
/// (1-based) after doing its work but before committing any output —
/// a failed map attempt leaves no committed map-output files and
/// publishes no segment handles; a failed reduce attempt commits no
/// reduce output.
struct FaultSpec {
  TaskKind kind = TaskKind::kReduce;
  std::uint32_t id = 0;       ///< map task id or keyblock id
  std::uint32_t attempt = 1;  ///< which attempt dies (1-based)

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// One injected shuffle-transport failure: keyblock `keyblock`'s reduce
/// loses its `fetchAttempt`-th transport fetch (1-based, counted per
/// reduce attempt) — the socket backends drop the connections mid-read,
/// the in-process backend fails before returning any segment. The
/// engine retries with bounded backoff up to FaultPlan::maxFetchAttempts
/// per reduce attempt; a failed fetch's bytes count toward
/// TransportStats::wastedWireBytes, never JobResult::shuffleBytes.
struct FetchFaultSpec {
  std::uint32_t keyblock = 0;
  std::uint32_t fetchAttempt = 1;  ///< which fetch attempt drops (1-based)

  friend bool operator==(const FetchFaultSpec&, const FetchFaultSpec&) =
      default;
};

/// Failure-injection plan plus the engine's retry bound. Generalizes
/// the old fail-once-reduce list: faults may hit map AND reduce tasks,
/// on any attempt number, so multi-failure and repeated-failure
/// scenarios (fail attempts 1 and 2 of the same task) are expressible.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// Maximum executions per task. A task whose `maxAttempts`-th attempt
  /// fails raises JobError from Engine::run() instead of retrying.
  std::uint32_t maxAttempts = 4;

  /// Injected transport-fetch drops (connection failures on the shuffle
  /// data plane), retried independently of task attempts.
  std::vector<FetchFaultSpec> fetchFaults;

  /// Maximum transport fetch attempts per reduce attempt. Exhaustion
  /// raises a JobError naming the reduce task and attempt.
  std::uint32_t maxFetchAttempts = 4;

  FaultPlan& failMap(std::uint32_t id, std::uint32_t attempt = 1) {
    faults.push_back(FaultSpec{TaskKind::kMap, id, attempt});
    return *this;
  }
  FaultPlan& failReduce(std::uint32_t id, std::uint32_t attempt = 1) {
    faults.push_back(FaultSpec{TaskKind::kReduce, id, attempt});
    return *this;
  }
  FaultPlan& dropFetch(std::uint32_t keyblock, std::uint32_t fetchAttempt = 1) {
    fetchFaults.push_back(FetchFaultSpec{keyblock, fetchAttempt});
    return *this;
  }

  bool empty() const noexcept { return faults.empty() && fetchFaults.empty(); }

  bool shouldFail(TaskKind kind, std::uint32_t id,
                  std::uint32_t attempt) const noexcept {
    for (const FaultSpec& f : faults) {
      if (f.kind == kind && f.id == id && f.attempt == attempt) return true;
    }
    return false;
  }

  bool shouldDropFetch(std::uint32_t keyblock,
                       std::uint32_t fetchAttempt) const noexcept {
    for (const FetchFaultSpec& f : fetchFaults) {
      if (f.keyblock == keyblock && f.fetchAttempt == fetchAttempt) return true;
    }
    return false;
  }

  std::uint32_t countFor(TaskKind kind) const noexcept {
    std::uint32_t n = 0;
    for (const FaultSpec& f : faults) {
      if (f.kind == kind) ++n;
    }
    return n;
  }
};

/// Job-level failure: a task exhausted its retry budget. Thrown from
/// Engine::run() with diagnostics naming the task and attempt, instead
/// of wedging slot accounting or surfacing an anonymous error.
class JobError : public std::runtime_error {
 public:
  JobError(TaskKind kind, std::uint32_t taskId, std::uint32_t attempt,
           std::uint32_t maxAttempts, const std::string& detail = "")
      : std::runtime_error(std::string("JobError: ") + taskKindName(kind) +
                           " task " + std::to_string(taskId) +
                           " failed on attempt " + std::to_string(attempt) +
                           " of " + std::to_string(maxAttempts) +
                           " (retry limit exhausted)" +
                           (detail.empty() ? std::string() : ": " + detail)),
        kind_(kind),
        taskId_(taskId),
        attempt_(attempt) {}

  TaskKind taskKind() const noexcept { return kind_; }
  std::uint32_t taskId() const noexcept { return taskId_; }
  std::uint32_t attempt() const noexcept { return attempt_; }

 private:
  TaskKind kind_;
  std::uint32_t taskId_;
  std::uint32_t attempt_;
};

/// One unit of map input (SciHadoop defines splits in logical
/// coordinates, section 2.4.1). A coordinate split is one region;
/// Hadoop's byte-range splits over row-major files correspond to a
/// linear element range, i.e. up to 2*rank+1 regions
/// (sh::generateByteRangeSplits).
struct InputSplit {
  std::uint32_t id = 0;
  std::vector<nd::Region> regions;

  /// Which input array this split reads: 0 = the primary input (always),
  /// 1 = the secondary input of a two-input job (structural join). Splits
  /// with input == 1 run through JobSpec::secondaryReaderFactory /
  /// secondaryMapperFactory; split ids stay globally unique across both
  /// inputs (dependency sets and recovery address splits by id alone).
  std::uint8_t input = 0;

  static InputSplit single(std::uint32_t id, nd::Region region) {
    InputSplit s;
    s.id = id;
    s.regions.push_back(region);
    return s;
  }

  /// Total input elements across all regions.
  nd::Index volume() const {
    nd::Index v = 0;
    for (const nd::Region& r : regions) v += r.volume();
    return v;
  }
};

/// What the skew-adaptive planning stage did (DESIGN.md §18): filled by
/// QueryPlanner when PlanOptions::skewAdapt is on, mirrored into the
/// trace counter registry under `skew.*` at job end. All-zero when the
/// stage did not run or refinement was a no-op.
struct SkewAdaptStats {
  std::uint64_t sampledRecords = 0;  ///< input records the sampler read
  std::uint32_t splitKeyblocks = 0;  ///< hot uniform blocks split apart
  std::uint32_t coalescedKeyblocks = 0;  ///< cold blocks merged away
  bool refined = false;  ///< a non-trivial refined partition is active
};

struct JobSpec {
  /// Identity of this job inside a shared spill directory: every spill
  /// artifact lands under `spillDirectory/job<jobId>/`, so two jobs
  /// sharing a spillDirectory can never clobber each other's committed
  /// segments. EngineService assigns a service-unique id at submission
  /// (overwriting this field); solo Engine::run uses the value as given
  /// (default 0). Within the namespace the attempt-suffix/atomic-rename
  /// protocol is byte-identical to the historical flat layout.
  std::uint64_t jobId = 0;

  /// Share weight for EngineService's weighted-fair scheduling policy:
  /// a job receives task slots in proportion to its weight. Must be
  /// finite and > 0. Ignored by solo Engine::run and by the FIFO /
  /// reduce-first policies.
  double weight = 1.0;

  std::vector<InputSplit> splits;
  RecordReaderFactory readerFactory;
  MapperFactory mapperFactory;
  ReducerFactory reducerFactory;
  /// Second input of a two-input job (structural join, DESIGN.md §18):
  /// splits with InputSplit::input == 1 read through this reader and run
  /// this mapper. Both must be set together (and only when some split
  /// references input 1); single-input jobs leave both empty.
  RecordReaderFactory secondaryReaderFactory;
  MapperFactory secondaryMapperFactory;
  /// Optional map-side combiner applied per (map, keyblock) segment
  /// after the sort; merges equal-key records, preserving the count
  /// annotation totals.
  CombinerFactory combinerFactory;
  std::shared_ptr<const Partitioner> partitioner;
  std::uint32_t numReducers = 1;
  ExecutionMode mode = ExecutionMode::kGlobalBarrier;

  /// Per-keyblock dependency sets I_l (split ids). Required in kSidr
  /// mode; computed by sidr::DependencyCalculator.
  std::vector<std::vector<std::uint32_t>> reduceDeps;

  /// Optional per-keyblock expected count-annotation totals |K_l|; when
  /// present the engine validates each reduce's tally against it
  /// (paper section 3.2.1, method 2 as correctness validation).
  std::vector<std::uint64_t> expectedRepresents;

  /// Optional scheduling priority: keyblock ids, highest priority first
  /// (computational-steering / burst-buffer use cases, section 3.4).
  std::vector<std::uint32_t> reducePriority;

  /// Task slots, as in the paper's per-TaskTracker configuration.
  std::uint32_t mapSlots = 4;
  std::uint32_t reduceSlots = 3;
  /// Worker threads executing tasks (a slot is only a capacity token).
  std::uint32_t numThreads = 4;

  /// Optional bounding shape of the intermediate key space K' (the
  /// output grid). When non-empty (a valid shape whose rank matches
  /// every intermediate key), the engine switches on the linearized-key
  /// fast path (DESIGN.md section 11): emit-time linearization, run-
  /// cached partitioning, (u64, index) permutation sort, and u64 heap
  /// compares in merge — all observably identical to the lexicographic
  /// path because row-major linearization is an order-preserving
  /// injection on the space. The planner populates this from
  /// ExtractionMap::intermediateSpaceShape(); hand-built jobs may leave
  /// it empty (rank 0) to run the fallback path.
  nd::Coord keySpace;

  RecoveryModel recovery = RecoveryModel::kPersistAll;
  /// Failure injection for the recovery experiments: which task
  /// attempts die, and the per-task retry bound.
  FaultPlan faultPlan;

  /// When non-empty, map-output segments are spilled to files under
  /// this directory (as Hadoop's map-output files) instead of held in
  /// memory; reduces tally count annotations by reading ONLY the 32-byte
  /// segment header from disk — the paper's "without having to read and
  /// parse those files" property (section 3.2.1).
  std::string spillDirectory;

  /// Spill-writer pool size: how many threads encode and write map
  /// attempts' per-keyblock spill files concurrently (DESIGN.md section
  /// 12). 1 runs the seed's sequential encode+write inline on the map
  /// worker; larger values overlap keyblocks on a shared pool. Only the
  /// attempt-suffixed TEMPORARY files are written concurrently — the
  /// map worker still commits every keyblock itself via atomic rename
  /// after the whole batch lands, so the publication order the
  /// lock-free reduce fetch relies on is unchanged, and committed bytes
  /// are identical for every pool size. Ignored when spillDirectory is
  /// empty; must be > 0.
  std::uint32_t spillWriters = 4;

  /// Record a per-attempt / per-phase obs::Trace into JobResult::trace
  /// (DESIGN.md section 13). Off by default: with no recorder installed
  /// the span scopes on the hot paths reduce to a thread-local load and
  /// a branch.
  bool recordTrace = false;

  /// Global memory budget for resident intermediate data (DESIGN.md
  /// section 14); 0 = unlimited. With a budget set, spillDirectory must
  /// also be set: map output publishes in-memory handles as usual, but
  /// when the SegmentPagePool crosses its high-water mark the engine
  /// evicts the coldest committed keyblocks' segments to spill files
  /// (same attempt-suffix + atomic-rename protocol) and reduces stream
  /// the evicted inputs back through bounded windows. Must be at least
  /// one page (SegmentPagePool::kPageBytes) when non-zero.
  std::uint64_t memoryBudgetBytes = 0;

  /// Per-input decode window for the streaming reduce merge: a reduce
  /// task never holds more than about this many encoded bytes (plus one
  /// decoded record) per spilled input. Must be non-zero when a budget
  /// is set.
  std::size_t mergeWindowBytes = 1 << 20;

  /// Encode spill (and eviction) files with the varint/delta compressed
  /// framing instead of the fixed-width one. Requires spillDirectory
  /// and a non-empty keySpace (the compressed framing is keyed on
  /// linear keys).
  bool compressSpill = false;

  /// Canonical MapFingerprint of everything that determines this job's
  /// committed map-output bytes — (dataset identity, split geometry,
  /// extraction/filter spec, keySpace, partition plan). Set by the
  /// planner when PlanOptions::datasetId names the input; unset jobs
  /// never interact with the service segment cache. Two specs with
  /// equal fingerprints MUST produce byte-identical map output: the
  /// cache serves one job's committed segments to the other
  /// (DESIGN.md §16). Only the inline Fingerprint128 value type is
  /// used here; the builder stays in the planner library.
  std::optional<core::Fingerprint128> mapFingerprint;

  /// Keep the job's spill namespace (committed .seg files and any
  /// orphaned attempt temporaries) on disk when the job fails or is
  /// cancelled, for post-mortem debugging. By default the whole
  /// `spillDirectory/job<jobId>/` subtree is removed on any non-success
  /// outcome — a failed job no longer strands every segment it already
  /// committed. Successful jobs always leave their committed files (the
  /// caller may want to read them; remove the namespace yourself when
  /// done).
  bool keepSpillOnFailure = false;

  /// Shuffle data plane (DESIGN.md §17). Unset = kInProcess, which is
  /// byte-identical to the historical fetch path. EngineService fills an
  /// unset value from ServiceConfig::defaultTransport at submission.
  /// kFileServed requires eager spill (spillDirectory set, no memory
  /// budget); cache-served runs always use kInProcess regardless of this
  /// field (warm handles have no spill files to serve).
  std::optional<ShuffleTransportKind> transport;

  /// What skew-adaptive planning did for this job (informational; the
  /// engine only mirrors it into trace counters). Filled by the planner.
  SkewAdaptStats skewStats;

  /// Connection-pool size per reduce fetch for the socket-backed
  /// transports: a fetch splits its dependency set across up to this
  /// many pooled connections. Must be > 0. Ignored by kInProcess.
  std::uint32_t transportConnections = 2;

  /// Per-read timeout for socket transports; a peer that stalls longer
  /// than this fails the fetch attempt (typed timeout error, retried
  /// under FaultPlan::maxFetchAttempts). Must be > 0.
  std::uint32_t transportTimeoutMillis = 10000;
};

struct TaskEvent {
  enum class Kind : std::uint8_t {
    kMapStart,
    kMapEnd,       ///< map output committed (atomic attempt commit)
    kMapFail,      ///< map attempt died before committing
    kReduceStart,  ///< reduce begins fetching/merging (deps satisfied)
    kReduceEnd,    ///< reduce output committed (result available)
    kReduceFail,   ///< reduce attempt died before committing
  };
  Kind kind;
  std::uint32_t taskId;
  double seconds;  ///< relative to job start
  /// Which execution of the task this event belongs to (1-based).
  /// Every {kMapStart, kReduceStart} pairs with exactly one end-or-fail
  /// event of the same task AND attempt, so completion-time series can
  /// pair starts and ends correctly across retries.
  std::uint32_t attempt = 1;
};

struct ReduceOutput {
  std::uint32_t keyblock = 0;
  std::vector<KeyValue> records;    ///< sorted by key
  /// Parallel to `records` when JobSpec::keySpace was set and every
  /// output key fits it: linearize(key, keySpace), letting
  /// JobResult::collectAll's k-way merge compare u64s. Empty otherwise.
  std::vector<std::uint64_t> linearKeys;
  double availableAt = 0.0;         ///< commit time (seconds from start)
  std::uint64_t annotationTally = 0;  ///< sum of fetched segment headers
};

/// Shuffle-transport data-plane counters (DESIGN.md §17). All zero for
/// kInProcess runs except fetchRetries/wastedWireBytes, which count
/// injected in-process drops too. Mirrored into the trace counter
/// registry under `net.*` names at job end.
struct TransportStats {
  /// Framed bytes that crossed the wire (payload + frame headers),
  /// successful fetch attempts only.
  std::uint64_t wireBytes = 0;
  std::uint64_t framesSent = 0;
  std::uint64_t framesReceived = 0;
  /// Sockets newly connected vs. taken from the per-reduce-fetch pool.
  std::uint64_t connectionsOpened = 0;
  std::uint64_t connectionsReused = 0;
  /// Transport fetch attempts that failed and were retried (or
  /// exhausted). A retried fetch re-transfers its segments; the retry's
  /// bytes count once in shuffleBytes and the failed attempt's partial
  /// bytes land in wastedWireBytes, never both.
  std::uint64_t fetchRetries = 0;
  /// Partial wire bytes of failed fetch attempts (discarded, re-fetched).
  std::uint64_t wastedWireBytes = 0;
};

struct JobResult {
  std::vector<ReduceOutput> outputs;  ///< indexed by keyblock
  std::vector<TaskEvent> events;
  double totalSeconds = 0.0;
  double firstResultSeconds = 0.0;

  /// Total (map, reduce) fetches performed — Table 3's connection count.
  std::uint64_t shuffleConnections = 0;
  /// Bytes moved through the serialized shuffle path (segment encode on
  /// the map side plus decode on the reduce side). Zero when spill is
  /// disabled: the in-memory store publishes immutable segment handles,
  /// so reduces fetch by pointer and never touch the wire format.
  std::uint64_t shuffleBytes = 0;
  /// Total seconds reduce tasks spent in their fetch phase (header
  /// tallies + segment acquisition), summed across reduces.
  double shuffleFetchSeconds = 0.0;
  /// Fetches that carried at least one record.
  std::uint64_t nonEmptyConnections = 0;
  /// Intermediate records per keyblock (skew measurement, section 4.3).
  std::vector<std::uint64_t> recordsPerReducer;
  /// Annotation tallies that disagreed with expectedRepresents (must be
  /// zero for a correct run).
  std::uint32_t annotationViolations = 0;
  /// Map task executions beyond the first attempt of each — recovery
  /// re-runs plus retries of failed attempts (recovery cost).
  std::uint32_t mapsReExecuted = 0;
  /// Map attempts that were injected failures.
  std::uint32_t mapFailures = 0;
  /// Reduce attempts that were injected failures.
  std::uint32_t reduceFailures = 0;
  /// High-water mark of page-pool resident intermediate bytes
  /// (page-rounded; tracked whether or not a budget was set).
  std::uint64_t peakResidentSegmentBytes = 0;
  /// Segments evicted to disk by memory pressure (tentpole (b)).
  std::uint64_t pressureSpillEvents = 0;
  /// Bytes written through the compressed spill framing (0 when
  /// compressSpill is off).
  std::uint64_t spillCompressedBytes = 0;
  /// Map tasks this job never executed because the service segment
  /// cache served their committed output warm (DESIGN.md §16). Either 0
  /// (cold run) or the job's full map count: a fingerprint hit serves
  /// every map or none.
  std::uint32_t cacheServedMaps = 0;
  /// Resident segment bytes served from the cache (0 on a cold run).
  std::uint64_t cacheBytesServed = 0;
  /// Shuffle data-plane counters for the transport that ran the job
  /// (all-zero wire fields under kInProcess).
  TransportStats transportTotals;

  /// Job-wide sort counters: each map attempt's sorts are captured into
  /// a per-attempt ScopedSortStatsSink and folded in under the job lock,
  /// so concurrent jobs sharing worker threads never bleed counts into
  /// each other. Always populated (trace recording on or off) — the
  /// uniform surface for what used to be visible only to unit tests
  /// running on the sorting thread.
  SortStats sortTotals;

  /// Per-attempt / per-phase spans plus the counter registry, populated
  /// when JobSpec::recordTrace was set; empty otherwise. The registry
  /// absorbs the scalar metrics above and sortTotals under stable names
  /// ("shuffle.bytes", "sort.radixSorts", ...) at job end.
  obs::Trace trace;

  /// Flattens all reduce outputs into one key-sorted list (for oracles).
  std::vector<KeyValue> collectAll() const;
};

}  // namespace sidr::mr
