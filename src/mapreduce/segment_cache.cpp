#include "mapreduce/segment_cache.hpp"

#include <utility>

#include "scifile/storage.hpp"

namespace sidr::mr {

namespace {

std::uint64_t matrixResidentBytes(
    const std::vector<std::vector<std::shared_ptr<const Segment>>>& m) {
  std::uint64_t total = 0;
  for (const auto& row : m) {
    for (const auto& seg : row) {
      if (seg != nullptr) total += seg->residentBytes();
    }
  }
  return total;
}

}  // namespace

/// Re-loads a demoted entry's segments from its committed spill files.
/// Returns false on any failure (missing file, truncated bytes): the
/// caller drops the entry and the claimant runs cold. Decoding mirrors
/// JobContext::loadSpilledSegment — the streaming reader for the
/// compressed framing (which restores linear keys itself), plain
/// deserialize + computeLinearKeys otherwise — so a reloaded segment is
/// indistinguishable from the donor's resident one.
bool SegmentCache::loadEntryFiles(Entry& entry) {
  if (entry.paths.empty()) return false;
  std::vector<std::vector<std::shared_ptr<const Segment>>> loaded(
      entry.numMaps,
      std::vector<std::shared_ptr<const Segment>>(entry.numReduces));
  try {
    for (std::uint32_t m = 0; m < entry.numMaps; ++m) {
      for (std::uint32_t kb = 0; kb < entry.numReduces; ++kb) {
        const std::string& path = entry.paths[m][kb];
        Segment seg;
        if (entry.compressed) {
          SegmentStream stream(path, /*windowBytes=*/1 << 16,
                               /*compressed=*/true, entry.keySpace);
          seg = Segment::fromStream(stream);
        } else {
          sci::FileStorage file(path, sci::FileStorage::Mode::kOpenReadOnly);
          std::vector<std::byte> bytes(file.size());
          file.readAt(0, bytes);
          seg = Segment::deserialize(bytes);
          if (entry.keySpace.rank() > 0 && !seg.hasLinearKeys()) {
            seg.computeLinearKeys(entry.keySpace);
          }
        }
        loaded[m][kb] = std::make_shared<const Segment>(std::move(seg));
      }
    }
  } catch (...) {
    return false;
  }
  entry.segments = std::move(loaded);
  entry.resident = matrixResidentBytes(entry.segments);
  stats_.residentBytes += entry.resident;
  return true;
}

void SegmentCache::dropResident(Entry& entry) {
  stats_.residentBytes -= entry.resident;
  entry.resident = 0;
  for (auto& row : entry.segments) {
    for (auto& seg : row) seg = nullptr;
  }
}

std::optional<SegmentCache::Claimed> SegmentCache::claim(
    const core::Fingerprint128& key, std::uint32_t numMaps,
    std::uint32_t numReduces) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  Entry& entry = it->second;
  if (entry.numMaps != numMaps || entry.numReduces != numReduces) {
    dropResident(entry);
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  // Resident entries hold EVERY slot (empty segments included, which
  // charge zero bytes); demoted entries hold none — one probe decides.
  const bool resident =
      !entry.segments.empty() && entry.segments[0][0] != nullptr;
  if (!resident && !loadEntryFiles(entry)) {
    entries_.erase(it);
    ++stats_.misses;
    return std::nullopt;
  }
  entry.lruTick = ++tick_;
  Claimed claimed;
  claimed.segments = entry.segments;  // shared_ptr copies, no data copy
  claimed.bytesServed = entry.resident;
  ++stats_.hits;
  stats_.bytesServed += entry.resident;
  // A reload may have pushed resident bytes over the cap; the entry
  // just claimed carries the newest tick, so LRU shedding takes every
  // other entry first and only demotes this one if it alone overflows
  // (its handles are already copied out either way).
  if (cap_ > 0 && stats_.residentBytes > cap_) shedTo(cap_);
  return claimed;
}

void SegmentCache::insert(SegmentCacheDonation donation) {
  if (!donation.present || donation.numMaps == 0) return;
  if (entries_.contains(donation.key)) return;  // first donor wins
  Entry entry;
  entry.numMaps = donation.numMaps;
  entry.numReduces = donation.numReduces;
  entry.compressed = donation.compressed;
  entry.keySpace = donation.keySpace;
  if (!donation.segments.empty()) {
    entry.segments = std::move(donation.segments);
    entry.resident = matrixResidentBytes(entry.segments);
  } else {
    // File-backed (eager-spill donor): born demoted, zero resident
    // charge; a claim promotes it.
    entry.segments.assign(
        entry.numMaps,
        std::vector<std::shared_ptr<const Segment>>(entry.numReduces));
  }
  entry.paths = std::move(donation.paths);
  entry.lruTick = ++tick_;
  stats_.residentBytes += entry.resident;
  ++stats_.insertions;
  entries_.emplace(donation.key, std::move(entry));
  if (cap_ > 0 && stats_.residentBytes > cap_) shedTo(cap_);
}

void SegmentCache::shedTo(std::uint64_t targetResidentBytes) {
  while (stats_.residentBytes > targetResidentBytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.resident == 0) continue;  // already demoted / empty
      if (victim == entries_.end() ||
          it->second.lruTick < victim->second.lruTick) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // nothing sheddable
    if (!victim->second.paths.empty()) {
      dropResident(victim->second);
      ++stats_.demotions;
    } else {
      dropResident(victim->second);
      entries_.erase(victim);
      ++stats_.evictions;
    }
  }
}

}  // namespace sidr::mr
