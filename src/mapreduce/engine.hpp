// The MapReduce execution engine: a multi-threaded, in-process runtime
// implementing both the stock global-barrier dataflow and SIDR's
// dependency-gated dataflow over the same task code.
//
// The engine is the "Hadoop" of this reproduction: it owns split
// assignment, map execution, the map-output segment store (one
// immutable segment handle per (map, keyblock) in memory, or one
// bulk-encoded map-output file when spilling, each with a
// count-annotation header), lock-free shuffle fetches, merge/group,
// reduce execution and atomic output commit. Scheduling policy and reduce gating vary with
// JobSpec::mode; everything else is shared, so mode comparisons isolate
// exactly the mechanisms the paper changes.
//
// Every task execution is a numbered ATTEMPT (Hadoop's task-attempt
// discipline): spilled output is written to attempt-suffixed temp files
// and committed by atomic rename, events carry the attempt id, and
// JobSpec::faultPlan injects map/reduce attempt failures with a per-task
// retry bound — exceeding it raises mr::JobError from run() naming the
// task and attempt (see DESIGN.md section 10).
#pragma once

#include "mapreduce/job.hpp"

namespace sidr::mr {

class Engine {
 public:
  /// Validates the spec (throws std::invalid_argument on structural
  /// problems: missing factories, bad dependency ids, ...).
  explicit Engine(JobSpec spec);

  /// Runs the job to completion and returns outputs, events and metrics.
  /// Thread-safe against concurrent runs of other engines; a single
  /// Engine instance is single-use. Implemented as one JobContext
  /// driven by numThreads workers (job_context.hpp); submit to an
  /// EngineService instead to multiplex many jobs over shared pools.
  JobResult run();

 private:
  JobSpec spec_;
};

}  // namespace sidr::mr
