// One job's complete execution state — the former Engine::Impl, pulled
// out so a long-lived EngineService can multiplex many in-flight jobs
// over shared worker threads while the one-shot Engine keeps its exact
// historical behavior.
//
// A JobContext scopes everything that used to be global-ish per run:
//  - the spill namespace: every artifact lands under
//    `spillDirectory/job<jobId>/` (jobSpillDirName), so jobs sharing a
//    spill directory can never clobber each other's committed segments;
//    within the namespace the attempt-suffix + atomic-rename protocol
//    is byte-identical to the historical flat layout;
//  - the trace recorder: installed per claimed task (and per spill-pool
//    item), so spans land on the owning job's trace no matter which
//    jobs share the thread;
//  - sort counters: each map attempt redirects the thread's SortStats
//    into a task-local sink (ScopedSortStatsSink) and folds it into
//    JobResult::sortTotals under the job mutex — replacing the old
//    per-thread baseline/delta fold that miscounted the moment pool
//    threads interleaved work from two jobs;
//  - end-of-job cleanup: finalize() removes the job's spill namespace
//    on any non-success outcome (opt out with
//    JobSpec::keepSpillOnFailure), so a failed or cancelled job leaves
//    zero files behind.
//
// Two driving modes share one claim path:
//  - solo (Engine::run): N threads call workerLoop(), which claims and
//    runs tasks until the job is terminal, blocking on the job's cv;
//  - service (EngineService): external workers call tryClaimTask() /
//    tryClaimReduce() under their own scheduling policy and run each
//    claim via runClaimedTask(); they never block inside the job.
//
// Lock discipline: JobContext only ever takes its own mutex and never
// calls out while holding it, so a service may take job mutexes while
// holding its service mutex (service -> job order) without deadlock.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mapreduce/job.hpp"
#include "mapreduce/segment_cache.hpp"
#include "mapreduce/shuffle_transport.hpp"
#include "mapreduce/spill_pool.hpp"
#include "obs/trace.hpp"

namespace sidr::mr {

/// Validates a JobSpec's structural invariants (missing factories, bad
/// dependency ids, inconsistent out-of-core knobs, non-positive share
/// weight, ...), throwing std::invalid_argument. Called by the Engine
/// constructor and by EngineService::submit, so both fronts reject the
/// same specs with the same messages.
void validateJobSpec(const JobSpec& spec);

/// One claimed unit of work: the claim already did the scheduling
/// bookkeeping (slot counts, queue pops), so it MUST be handed to
/// runClaimedTask exactly once.
struct ClaimedTask {
  TaskKind kind = TaskKind::kMap;
  std::uint32_t id = 0;  ///< map task id or keyblock id (by `kind`)
};

/// Terminal summary of one job, produced exactly once by finalize().
struct JobOutcome {
  /// Fully populated result — metrics, trace and the outputs of every
  /// reduce that committed — even for failed/cancelled jobs, so early
  /// exact partial results survive a non-success outcome.
  JobResult result;
  /// Non-null: the job failed with this error (retry budget exhausted,
  /// spill I/O failure, ...). Solo Engine::run rethrows it.
  std::exception_ptr error;
  /// True: requestCancel() arrived before the job could complete (and
  /// no error claimed precedence). A job whose last reduce committed
  /// before the cancel landed still counts as succeeded.
  bool cancelled = false;
  /// Per keyblock: whether its reduce committed output — the mask that
  /// distinguishes real partial results from default-constructed slots
  /// in `result.outputs` after a failure or cancel.
  std::vector<bool> completedKeyblocks;
  /// Committed map output staged for the service segment cache
  /// (DESIGN.md §16). `present` only when donation was enabled AND the
  /// job SUCCEEDED — a failed or cancelled job can never donate
  /// partially-committed output, by construction of where this is
  /// filled (finalize, after the outcome is known).
  SegmentCacheDonation donation;
};

class JobContext : private TransportSource {
 public:
  /// `sharedPool`: spill-writer pool owned by the caller (the service
  /// mode); null makes the context own a pool per the solo Engine rule
  /// (spillWriters > 1, capped at the keyblock count).
  /// The spec's jobId must already be final: it names the on-disk
  /// namespace.
  JobContext(JobSpec spec, SpillWriterPool* sharedPool);

  JobContext(const JobContext&) = delete;
  JobContext& operator=(const JobContext&) = delete;

  /// Hands this job the full [numMaps][numReduces] matrix of warm
  /// segment handles a previous byte-identical job committed (a service
  /// segment-cache hit on spec.mapFingerprint). Call before start():
  /// start() then publishes every handle wholesale — per-keyblock
  /// commit + count annotations, zero map tasks — and reduces shuffle
  /// the warm segments exactly as if this job's own maps had committed
  /// them. Mutually exclusive with enableCacheDonation.
  void attachCachedSegments(
      std::vector<std::vector<std::shared_ptr<const Segment>>> warm);

  /// Marks this job a cache donor: committed map output is staged
  /// during the run and, ONLY if the job succeeds, surfaced through
  /// JobOutcome::donation at finalize. Call before start(). The caller
  /// (EngineService) must only enable donation for jobs with a
  /// mapFingerprint and an empty FaultPlan — fault-free jobs run every
  /// map exactly once, so the staged handles are exactly the committed
  /// first-attempt output and recovery republication can never race a
  /// cache-origin segment.
  void enableCacheDonation();

  /// Resolves dependencies, sizes all state, creates the spill
  /// namespace directory and performs initial scheduling. Call once,
  /// before any claim.
  void start();

  /// Claims the next task under the job's internal reduce-first order
  /// (a runnable reduce beats an eligible map), or nullopt when nothing
  /// is claimable right now (slots full, dependencies pending, job
  /// terminal or cancel requested).
  std::optional<ClaimedTask> tryClaimTask();

  /// Like tryClaimTask but only ever claims a reduce — the probe the
  /// service's SIDR-style reduce-first policy uses across jobs.
  std::optional<ClaimedTask> tryClaimReduce();

  /// True when tryClaimTask would succeed (advisory: another claimer
  /// may win the race).
  bool hasClaimableTask();

  /// Executes one claimed task, installing the job's trace recorder for
  /// the duration and absorbing any task failure into the job's retry /
  /// error bookkeeping. Never throws.
  void runClaimedTask(const ClaimedTask& task);

  /// True when the job is terminal (failed, cancel requested, or all
  /// reduces done) AND no claimed task is still executing — the gate
  /// for finalize().
  bool quiescentTerminal();

  /// Requests cooperative cancellation: no further task is claimable;
  /// in-flight tasks finish normally. The job becomes terminal once
  /// running tasks drain.
  void requestCancel();

  /// Snapshot of every committed reduce output so far — SIDR's early
  /// exact partial results, observable while the job still runs.
  std::vector<ReduceOutput> partialOutputs();

  /// Joins the owned spill pool, computes final metrics and the trace,
  /// removes the spill namespace on non-success (unless
  /// keepSpillOnFailure) and returns the outcome. Call exactly once,
  /// after quiescentTerminal() (or after joining solo workers).
  JobOutcome finalize();

  /// Solo driving mode: claim-and-run until the job is terminal,
  /// blocking on the job's cv while nothing is claimable. Run from as
  /// many threads as the spec's numThreads.
  void workerLoop();

  const JobSpec& jobSpec() const noexcept { return spec; }

 private:
  using Clock = std::chrono::steady_clock;

  const JobSpec spec;
  std::uint32_t numMaps = 0;
  std::uint32_t numReduces = 0;

  /// Mutable: TransportSource::residentSegmentLocked is a const
  /// interface method but must take the engine lock for its snapshot
  /// (transport server threads never observed the publication order).
  mutable std::mutex mtx;
  std::condition_variable cv;

  /// Cooperative cancel flag (requestCancel). Blocks further claims;
  /// checked under mtx.
  bool cancelRequested = false;

  /// Claims handed out by tryClaim*() whose runClaimedTask() has not
  /// yet fully returned. Distinct from runningMaps/runningReduces: a
  /// task body decrements its slot counter before its trailing
  /// job-owned work (pressure spill, recorder uninstall) finishes.
  /// quiescentTerminal() requires this to reach zero, so a service
  /// never destroys a context a worker is still executing on.
  std::uint32_t activeClaims = 0;

  // --- map state ---
  std::deque<std::uint32_t> eligibleMaps;  // schedulable, not yet running
  std::vector<bool> mapQueued;             // present in eligibleMaps
  std::vector<bool> mapEverEligible;
  std::vector<bool> mapDone;
  std::uint32_t runningMaps = 0;

  // --- segment store: map output per (map, keyblock) ---
  // In-memory mode publishes one immutable, shared segment handle per
  // (map, keyblock): runMap builds the Segment outside the lock and the
  // commit section only moves the pointer into its slot (an
  // availability flip, not a data copy). A reduce fetch is then a plain
  // pointer read with NO lock held: the reduce only runs after
  // observing (under mtx) that every dependency flipped segAvail, and
  // that same critical section published the handles, so the mutex
  // release/acquire pair establishes the happens-before edge. Segments
  // are never mutated after publication; a recovery re-run republishes
  // a fresh handle under mtx ONLY into slots whose segAvail was revoked
  // — a still-available slot's reduce may be mid-fetch, so its handle
  // (identical content: map execution is deterministic) is never
  // overwritten, and any still-referenced old handle stays alive
  // through shared ownership.
  std::vector<std::vector<std::shared_ptr<const Segment>>> segments;
  std::vector<std::vector<bool>> segAvail;

  // --- service segment cache interaction (DESIGN.md §16) ---
  /// Warm handles attached before start(); moved into `segments` during
  /// start()'s cache publication, then cleared.
  std::vector<std::vector<std::shared_ptr<const Segment>>> cachedWarm;
  /// True when this job's map output was served from the cache: zero
  /// map tasks run, and reduces fetch handles even in eager-spill specs
  /// (there are no spill files to read).
  bool cacheServed = false;
  /// True when committed map output should be staged for donation.
  bool donateToCache = false;
  /// Donor staging: per (map, keyblock) copies of the published
  /// handles, taken at commit time (in-memory / hybrid modes). These
  /// are pointer copies of the SAME immutable segments the job
  /// publishes, so staging changes no donor behavior — but it does keep
  /// hybrid-mode segments alive past their pressure eviction until the
  /// donation lands in the cache (the cache then owns the residency).
  /// Eager-spill donors stage nothing: their donation references the
  /// committed files in `jobDir` instead (built at finalize).
  std::vector<std::vector<std::shared_ptr<const Segment>>> stagedDonation;
  /// Resident bytes published from the cache (result.cacheBytesServed).
  std::uint64_t cacheBytesServed = 0;

  // --- memory budget / hybrid out-of-core state (DESIGN.md §14) ---
  // With spillDirectory set AND memoryBudgetBytes > 0 the engine runs in
  // hybrid mode: maps publish in-memory handles exactly like the
  // in-memory engine, every published segment's resident footprint is
  // charged against `pagePool`, and when the pool crosses its high-water
  // mark the coldest committed keyblocks are evicted — encoded through
  // the same attempt-file + atomic-rename protocol eager spill uses —
  // until the pool drops to its low-water mark. A reduce whose handle
  // slot is null streams the evicted file back through a bounded
  // SegmentStream window instead of materializing it.
  std::unique_ptr<SegmentPagePool> pagePool;
  /// Pages charged for the published segment in segments[m][kb] (bytes
  /// after page rounding); 0 when nothing is charged for the slot.
  std::vector<std::vector<std::uint64_t>> segCharge;
  /// True while a pressure eviction of (m, kb) is writing its file.
  std::vector<std::vector<bool>> segEvicting;
  /// Per keyblock: number of in-flight evictions of its segments. A
  /// reduce is never pushed runnable while this is non-zero — the
  /// lock-free fetch must observe either the handle or the committed
  /// file, never a half-evicted slot — so every runnable push site gates
  /// on it and eviction finalize re-checks the push.
  std::vector<std::uint32_t> evictingCount;
  /// Attempt whose segments are currently published, per map: names the
  /// attempt-suffixed temporary file an eviction writes.
  std::vector<std::uint32_t> publishedAttempt;
  /// Keyblock -> position in priorityOrder (larger = colder, evicted
  /// first: it runs latest, so its pages are reclaimed longest).
  std::vector<std::uint32_t> posOf;
  std::atomic<std::uint64_t> pressureSpills{0};
  std::atomic<std::uint64_t> compressedSpillBytes{0};

  // --- reduce state ---
  std::vector<std::vector<std::uint32_t>> deps;  // resolved I_l per keyblock
  std::vector<std::vector<std::uint32_t>> mapToReduces;
  std::vector<std::uint32_t> remainingDeps;
  std::vector<bool> reduceScheduled;
  std::vector<bool> reduceRunnableFlag;
  std::deque<std::uint32_t> runnableReduces;
  std::vector<bool> reduceDone;
  std::uint32_t scheduledActive = 0;  // scheduled && !done (slot holders)
  std::uint32_t nextPriorityPos = 0;
  std::uint32_t runningReduces = 0;
  std::uint32_t completedReduces = 0;

  std::vector<std::uint32_t> priorityOrder;

  std::vector<bool> runningMapSet;
  // Attempts STARTED per task (1-based attempt ids). Incremented when
  // an execution begins, so injected faults and events name the attempt
  // they belong to; compared against spec.faultPlan.maxAttempts when an
  // attempt fails.
  std::vector<std::uint32_t> mapAttempts;
  std::vector<std::uint32_t> reduceAttempts;

  Clock::time_point startTime;
  JobResult result;
  std::exception_ptr firstError;

  /// This job's spill namespace: spillDirectory + "/" + job<jobId>.
  /// Every spill artifact (attempt temporaries, committed segments,
  /// pressure evictions) lives under it; cleanup removes the whole
  /// subtree.
  std::string jobDir;

  /// Spill writers executing this job's encode+write items: the
  /// caller's shared pool, the owned pool, or null (spillWriters == 1:
  /// encode+write runs inline on the claiming worker, as the seed did).
  SpillWriterPool* spillPool = nullptr;
  SpillWriterPool* sharedSpillPool = nullptr;
  std::unique_ptr<SpillWriterPool> ownedSpillPool;

  /// Span/counter recorder; null unless spec.recordTrace. Shares the
  /// event log's epoch (`startTime`), so span times and event times are
  /// on one timebase.
  std::unique_ptr<obs::TraceRecorder> recorder;

  double now() const {
    return std::chrono::duration<double>(Clock::now() - startTime).count();
  }

  void recordEvent(TaskEvent::Kind kind, std::uint32_t id, double t,
                   std::uint32_t attempt) {
    result.events.push_back(TaskEvent{kind, id, t, attempt});
  }

  bool isSidr() const { return spec.mode == ExecutionMode::kSidr; }

  // ---- map-output segment store (in-memory or spilled to files) ----

  bool spillEnabled() const { return !spec.spillDirectory.empty(); }
  bool budgetEnabled() const { return spec.memoryBudgetBytes > 0; }
  /// Eager spill = the pre-budget spill mode: every map attempt encodes
  /// all keyblocks to files and reduces always load from disk. With a
  /// budget the spill directory is instead the eviction target and maps
  /// publish in-memory handles.
  bool eagerSpill() const { return spillEnabled() && !budgetEnabled(); }

  std::string segmentPath(std::uint32_t m, std::uint32_t kb) const;
  void spillSegmentAttempt(std::uint32_t m, std::uint32_t kb,
                           std::uint32_t attempt,
                           std::span<const std::byte> bytes) const;
  SegmentHeader peekSpilledHeader(std::uint32_t m, std::uint32_t kb) const;
  Segment loadSpilledSegment(std::uint32_t m, std::uint32_t kb,
                             std::uint64_t& bytesFetched) const;

  // ---- shuffle data plane (DESIGN.md §17) ----
  // The resolved backend: spec.transport, forced to kInProcess for
  // cache-served runs (warm handles have no spill files to serve).
  // Constructed at the end of start(), stopped first in finalize().
  ShuffleTransportKind transportKind = ShuffleTransportKind::kInProcess;
  std::unique_ptr<ShuffleTransport> transport;

  // TransportSource: the data plane's view of the segment store.
  std::shared_ptr<const Segment> residentSegment(
      std::uint32_t m, std::uint32_t kb) const override {
    return segments[m][kb];
  }
  std::shared_ptr<const Segment> residentSegmentLocked(
      std::uint32_t m, std::uint32_t kb) const override {
    std::scoped_lock lock(mtx);
    return segments[m][kb];
  }
  std::string committedSegmentPath(std::uint32_t m,
                                   std::uint32_t kb) const override {
    return segmentPath(m, kb);
  }
  SegmentHeader peekCommittedHeader(std::uint32_t m,
                                    std::uint32_t kb) const override {
    return peekSpilledHeader(m, kb);
  }
  Segment loadCommittedSegment(std::uint32_t m, std::uint32_t kb,
                               std::uint64_t& bytesFetched) const override {
    return loadSpilledSegment(m, kb, bytesFetched);
  }
  bool servesFromFiles() const noexcept override {
    return eagerSpill() && !cacheServed;
  }
  bool streamsEvicted() const noexcept override { return budgetEnabled(); }
  bool compressedFiles() const noexcept override { return spec.compressSpill; }
  const nd::Coord& keySpace() const override { return spec.keySpace; }
  std::size_t mergeWindowBytes() const override {
    return spec.mergeWindowBytes;
  }

  void markMapEligible(std::uint32_t m);
  void scheduleReducesLocked();
  std::optional<ClaimedTask> tryClaimLocked(bool reduceOnly);
  bool terminalLocked() const {
    return firstError != nullptr || cancelRequested ||
           completedReduces == numReduces;
  }

  void runMap(std::uint32_t m);
  void runReduce(std::uint32_t kb);
  void maybePressureSpill();
  void publishCachedSegmentsLocked();
};

}  // namespace sidr::mr
