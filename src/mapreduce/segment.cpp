#include "mapreduce/segment.hpp"

#include "mapreduce/interfaces.hpp"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace sidr::mr {

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<KeyValue> records)
    : records_(std::move(records)) {
  header_.mapTask = mapTask;
  header_.keyblock = keyblock;
  header_.numRecords = records_.size();
  header_.represents = 0;
  for (const KeyValue& kv : records_) header_.represents += kv.represents;
}

void Segment::sortByKey() {
  std::sort(records_.begin(), records_.end(),
            [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
}

void Segment::combineWith(const Combiner& combiner) {
  if (records_.empty()) return;
  std::vector<KeyValue> combined;
  combined.push_back(std::move(records_.front()));
  for (std::size_t i = 1; i < records_.size(); ++i) {
    KeyValue& last = combined.back();
    if (records_[i].key == last.key) {
      last.value = combiner.combine(last.value, records_[i].value);
      last.represents += records_[i].represents;
    } else {
      combined.push_back(std::move(records_[i]));
    }
  }
  records_ = std::move(combined);
  header_.numRecords = records_.size();
  // header_.represents is preserved: combining merges values but still
  // stands for the same original input pairs.
}

bool Segment::isSorted() const {
  return std::is_sorted(
      records_.begin(), records_.end(),
      [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
}

namespace {

void putU64(std::vector<std::byte>& out, std::uint64_t x) {
  for (int b = 0; b < 8; ++b) {
    out.push_back(static_cast<std::byte>((x >> (b * 8)) & 0xff));
  }
}

void putF64(std::vector<std::byte>& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  putU64(out, bits);
}

class Cursor {
 public:
  explicit Cursor(std::span<const std::byte> bytes) : bytes_(bytes) {}

  std::uint64_t getU64() {
    if (pos_ + 8 > bytes_.size()) {
      throw std::out_of_range("Segment::deserialize: truncated");
    }
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(bytes_[pos_ + static_cast<std::size_t>(b)])
           << (b * 8);
    }
    pos_ += 8;
    return x;
  }

  double getF64() {
    std::uint64_t bits = getU64();
    double v = 0;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::byte> Segment::serialize() const {
  std::vector<std::byte> out;
  putU64(out, header_.mapTask);
  putU64(out, header_.keyblock);
  putU64(out, header_.numRecords);
  putU64(out, header_.represents);
  for (const KeyValue& kv : records_) {
    putU64(out, kv.key.rank());
    for (nd::Index c : kv.key) putU64(out, static_cast<std::uint64_t>(c));
    putU64(out, kv.represents);
    putU64(out, static_cast<std::uint64_t>(kv.value.kind()));
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        putF64(out, kv.value.asScalar());
        break;
      case ValueKind::kPartial: {
        const Partial& p = kv.value.asPartial();
        putF64(out, p.sum);
        putF64(out, p.min);
        putF64(out, p.max);
        putU64(out, static_cast<std::uint64_t>(p.count));
        break;
      }
      case ValueKind::kList: {
        const auto& xs = kv.value.asList();
        putU64(out, xs.size());
        for (double x : xs) putF64(out, x);
        break;
      }
    }
  }
  return out;
}

Segment Segment::deserialize(std::span<const std::byte> bytes) {
  Cursor cur(bytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.getU64());
  h.keyblock = static_cast<std::uint32_t>(cur.getU64());
  h.numRecords = cur.getU64();
  h.represents = cur.getU64();
  std::vector<KeyValue> records;
  records.reserve(h.numRecords);
  for (std::uint64_t i = 0; i < h.numRecords; ++i) {
    KeyValue kv;
    std::uint64_t rank = cur.getU64();
    nd::Coord key = nd::Coord::zeros(rank);
    for (std::uint64_t d = 0; d < rank; ++d) {
      key[d] = static_cast<nd::Index>(cur.getU64());
    }
    kv.key = key;
    kv.represents = cur.getU64();
    auto kind = static_cast<ValueKind>(cur.getU64());
    switch (kind) {
      case ValueKind::kScalar:
        kv.value = Value::scalar(cur.getF64());
        break;
      case ValueKind::kPartial: {
        Partial p;
        p.sum = cur.getF64();
        p.min = cur.getF64();
        p.max = cur.getF64();
        p.count = static_cast<std::int64_t>(cur.getU64());
        kv.value = Value::partial(p);
        break;
      }
      case ValueKind::kList: {
        std::uint64_t n = cur.getU64();
        std::vector<double> xs(n);
        for (auto& x : xs) x = cur.getF64();
        kv.value = Value::list(std::move(xs));
        break;
      }
      default:
        throw std::runtime_error("Segment::deserialize: bad value kind");
    }
    records.push_back(std::move(kv));
  }
  Segment s(h.mapTask, h.keyblock, std::move(records));
  if (s.header_.represents != h.represents) {
    throw std::runtime_error("Segment::deserialize: annotation mismatch");
  }
  return s;
}

SegmentHeader Segment::peekHeader(std::span<const std::byte> bytes) {
  Cursor cur(bytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.getU64());
  h.keyblock = static_cast<std::uint32_t>(cur.getU64());
  h.numRecords = cur.getU64();
  h.represents = cur.getU64();
  return h;
}

SegmentMerger::SegmentMerger(std::span<const Segment* const> segments) {
  for (const Segment* s : segments) {
    if (s != nullptr && !s->empty()) heap_.push_back(Cursor{s, 0});
  }
  // Build a binary min-heap on the cursors' current keys.
  for (std::size_t i = heap_.size(); i-- > 0;) siftDown(i);
}

bool SegmentMerger::cursorLess(const Cursor& a, const Cursor& b) const {
  return a.segment->records()[a.pos].key < b.segment->records()[b.pos].key;
}

void SegmentMerger::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t l = 2 * i + 1;
    std::size_t r = 2 * i + 2;
    if (l < n && cursorLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && cursorLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void SegmentMerger::pop() {
  Cursor& c = heap_.front();
  if (c.pos + 1 < c.segment->records().size()) {
    ++c.pos;
  } else {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
  }
  siftDown(0);
}

}  // namespace sidr::mr
