#include "mapreduce/segment.hpp"

#include "mapreduce/interfaces.hpp"
#include "obs/trace.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>

namespace sidr::mr {

SortStats& sortStats() noexcept {
  thread_local SortStats stats;
  return stats;
}

void radixSortPacked(std::vector<PackedRecord>& records) {
  SortStats& stats = sortStats();
  const std::size_t n = records.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    // The pair buffer indexes with u32 (as the comparison path does);
    // beyond that a stable comparison sort preserves the contract.
    ++stats.comparisonSorts;
    std::stable_sort(records.begin(), records.end(),
                     [](const PackedRecord& a, const PackedRecord& b) {
                       return a.lin < b.lin;
                     });
    return;
  }
  ++stats.radixSorts;
  if (n <= 1) return;
  struct LinIdx {
    std::uint64_t lin;
    std::uint32_t idx;
  };
  std::vector<LinIdx> front(n), back(n);
  // One scan builds all eight byte histograms while filling the pair
  // buffer, so skippable passes are known before any scatter runs.
  std::array<std::array<std::uint32_t, 256>, 8> counts{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = records[i].lin;
    front[i] = LinIdx{k, static_cast<std::uint32_t>(i)};
    for (int b = 0; b < 8; ++b) ++counts[b][(k >> (8 * b)) & 0xff];
  }
  LinIdx* src = front.data();
  LinIdx* dst = back.data();
  for (int pass = 0; pass < 8; ++pass) {
    std::array<std::uint32_t, 256>& c = counts[pass];
    const int shift = 8 * pass;
    // A byte that is constant across the segment contributes nothing to
    // the order: a stable counting scatter on it is the identity.
    if (c[(src[0].lin >> shift) & 0xff] == n) {
      ++stats.radixPassesSkipped;
      continue;
    }
    std::uint32_t sum = 0;
    for (std::uint32_t& bucket : c) {
      const std::uint32_t count = bucket;
      bucket = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[c[(src[i].lin >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    ++stats.radixPasses;
  }
  // LSD counting passes are stable, so equal keys still carry ascending
  // idx here — the same permutation the (lin, idx) comparison sort
  // yields. Apply it to the 40-byte records once.
  std::vector<PackedRecord> sorted;
  sorted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sorted.push_back(records[src[i].idx]);
  records = std::move(sorted);
}

std::string segmentFileName(std::uint32_t mapTask, std::uint32_t keyblock) {
  return "map" + std::to_string(mapTask) + "_kb" + std::to_string(keyblock) +
         ".seg";
}

std::string segmentAttemptFileName(std::uint32_t mapTask,
                                   std::uint32_t keyblock,
                                   std::uint32_t attempt) {
  return segmentFileName(mapTask, keyblock) + ".attempt" +
         std::to_string(attempt) + ".tmp";
}

void commitSegmentFile(const std::string& dir, std::uint32_t mapTask,
                       std::uint32_t keyblock, std::uint32_t attempt) {
  std::filesystem::rename(
      std::filesystem::path(dir) /
          segmentAttemptFileName(mapTask, keyblock, attempt),
      std::filesystem::path(dir) / segmentFileName(mapTask, keyblock));
}

void discardSegmentAttemptFile(const std::string& dir, std::uint32_t mapTask,
                               std::uint32_t keyblock,
                               std::uint32_t attempt) {
  std::error_code ec;  // swallowed: cleanup of a dead attempt is advisory
  std::filesystem::remove(
      std::filesystem::path(dir) /
          segmentAttemptFileName(mapTask, keyblock, attempt),
      ec);
}

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<KeyValue> records)
    : records_(std::move(records)) {
  header_.mapTask = mapTask;
  header_.keyblock = keyblock;
  header_.numRecords = records_.size();
  header_.represents = 0;
  for (const KeyValue& kv : records_) header_.represents += kv.represents;
}

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<KeyValue> records,
                 std::vector<std::uint64_t> linearKeys)
    : Segment(mapTask, keyblock, std::move(records)) {
  if (linearKeys.size() != records_.size()) {
    throw std::invalid_argument(
        "Segment: linearKeys size does not match records");
  }
  linearKeys_ = std::move(linearKeys);
}

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<PackedRecord> packed,
                 std::vector<std::vector<double>> lists, nd::Coord keySpace)
    : packed_(std::move(packed)),
      lists_(std::move(lists)),
      packedMode_(true),
      keySpace_(std::move(keySpace)) {
  if (keySpace_.rank() == 0 || !keySpace_.isValidShape()) {
    throw std::invalid_argument(
        "Segment: packed form requires a valid non-empty keySpace");
  }
  header_.mapTask = mapTask;
  header_.keyblock = keyblock;
  header_.numRecords = packed_.size();
  header_.represents = 0;
  for (const PackedRecord& r : packed_) header_.represents += r.represents;
}

void Segment::materializeNow() const {
  // Builds the KeyValue view in final order with exact capacity. Dense
  // sorted runs delinearize by bumping the innermost coordinate instead
  // of re-dividing (mappers over row-major input emit dense runs).
  std::vector<KeyValue> records;
  std::vector<std::uint64_t> linearKeys;
  records.reserve(packed_.size());
  linearKeys.reserve(packed_.size());
  const std::size_t lastD = keySpace_.rank() - 1;
  nd::Coord cur;
  std::uint64_t prevLin = 0;
  bool havePrev = false;
  for (const PackedRecord& r : packed_) {
    if (havePrev && r.lin == prevLin + 1 && cur[lastD] + 1 < keySpace_[lastD]) {
      ++cur[lastD];
    } else if (!havePrev || r.lin != prevLin) {
      cur = nd::delinearize(static_cast<nd::Index>(r.lin), keySpace_);
    }
    prevLin = r.lin;
    havePrev = true;
    KeyValue& kv = records.emplace_back();
    kv.key = cur;
    kv.represents = r.represents;
    switch (r.kind) {
      case ValueKind::kScalar:
        kv.value = Value::scalar(r.payload.scalar);
        break;
      case ValueKind::kPartial:
        kv.value = Value::partial(r.payload.partial);
        break;
      case ValueKind::kList:
        kv.value = Value::list(std::move(lists_[r.payload.listIndex]));
        break;
    }
    linearKeys.push_back(r.lin);
  }
  records_ = std::move(records);
  linearKeys_ = std::move(linearKeys);
  packed_.clear();
  packed_.shrink_to_fit();
  lists_.clear();
  lists_.shrink_to_fit();
  packedMode_ = false;
}

void Segment::computeLinearKeys(const nd::Coord& keySpace) {
  if (packedMode_) return;  // packed records ARE linear keys already
  std::vector<std::uint64_t> lin;
  lin.reserve(records_.size());
  for (const KeyValue& kv : records_) {
    if (kv.key.rank() != keySpace.rank()) {
      throw std::out_of_range("Segment::computeLinearKeys: key rank mismatch");
    }
    for (std::size_t d = 0; d < keySpace.rank(); ++d) {
      if (kv.key[d] < 0 || kv.key[d] >= keySpace[d]) {
        throw std::out_of_range(
            "Segment::computeLinearKeys: key outside space");
      }
    }
    lin.push_back(static_cast<std::uint64_t>(nd::linearize(kv.key, keySpace)));
  }
  linearKeys_ = std::move(lin);
}

void Segment::sortByKey() {
  obs::SpanScope span(obs::Phase::kSortPacked, obs::TaskSide::kMap,
                      header_.mapTask, 0, header_.keyblock);
  span.setRecords(header_.numRecords);
  if (packedMode_) {
    sortPacked();
    return;
  }
  if (hasLinearKeys() && !records_.empty()) {
    sortByLinearKey();
    return;
  }
  // Already-sorted detection matters on both paths: mappers that walk a
  // region emit in row-major order, so the common case is a no-op scan.
  auto lexLess = [](const KeyValue& a, const KeyValue& b) {
    return a.key < b.key;
  };
  if (std::is_sorted(records_.begin(), records_.end(), lexLess)) {
    ++sortStats().sortedSkips;
    return;
  }
  // stable_sort, not sort: duplicate keys must keep emission order so the
  // fallback and linearized paths build byte-identical segments.
  ++sortStats().comparisonSorts;
  std::stable_sort(records_.begin(), records_.end(), lexLess);
}

void Segment::sortByLinearKey() {
  if (std::is_sorted(linearKeys_.begin(), linearKeys_.end())) {
    ++sortStats().sortedSkips;
    return;
  }
  ++sortStats().comparisonSorts;
  // Sort compact (u64 key, u32 index) pairs and permute the ~130-byte
  // KeyValues once, instead of swapping them under Coord compares. The
  // index tie-break makes the sort stable. Segments beyond u32 indexing
  // would need a wider pair; no in-memory map output gets near that.
  struct KeyIdx {
    std::uint64_t key;
    std::uint32_t idx;
  };
  if (records_.size() > std::numeric_limits<std::uint32_t>::max()) {
    linearKeys_.clear();  // cache dropped; fall back to a stable lex sort
    std::stable_sort(
        records_.begin(), records_.end(),
        [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
    return;
  }
  std::vector<KeyIdx> order(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    order[i] = {linearKeys_[i], static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(), [](const KeyIdx& a, const KeyIdx& b) {
    return a.key < b.key || (a.key == b.key && a.idx < b.idx);
  });
  std::vector<KeyValue> sorted;
  sorted.reserve(records_.size());
  std::vector<std::uint64_t> sortedLin;
  sortedLin.reserve(records_.size());
  for (const KeyIdx& ki : order) {
    sorted.push_back(std::move(records_[ki.idx]));
    sortedLin.push_back(ki.key);
  }
  records_ = std::move(sorted);
  linearKeys_ = std::move(sortedLin);
}

void Segment::sortPacked() {
  // Mappers over row-major input usually emit each keyblock's records
  // already key-ordered; detect that in O(n) and skip the sort.
  const auto linLess = [](const PackedRecord& a, const PackedRecord& b) {
    return a.lin < b.lin;
  };
  if (std::is_sorted(packed_.begin(), packed_.end(), linLess)) {
    ++sortStats().sortedSkips;
    return;
  }
  if (packed_.size() >= kRadixSortMinRecords) {
    // List indices stay valid on every path: the side table is never
    // permuted.
    radixSortPacked(packed_);
    return;
  }
  // Small segment: the comparison sort on (lin, idx) pairs wins below
  // the radix threshold. Buffer order is emission order, so the index
  // tie-break keeps the sort stable — the same record order
  // std::stable_sort produces in the lexicographic fallback.
  ++sortStats().comparisonSorts;
  struct LinIdx {
    std::uint64_t lin;
    std::uint32_t idx;
  };
  std::vector<LinIdx> order(packed_.size());
  for (std::size_t i = 0; i < packed_.size(); ++i) {
    order[i] = {packed_[i].lin, static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(), [](const LinIdx& a, const LinIdx& b) {
    return a.lin < b.lin || (a.lin == b.lin && a.idx < b.idx);
  });
  std::vector<PackedRecord> sorted;
  sorted.reserve(packed_.size());
  for (const LinIdx& li : order) sorted.push_back(packed_[li.idx]);
  packed_ = std::move(sorted);
}

void Segment::combineWith(const Combiner& combiner) {
  if (packedMode_) materializeNow();  // combiners consume full Values
  if (records_.empty()) return;
  const bool lin = hasLinearKeys();
  std::vector<KeyValue> combined;
  std::vector<std::uint64_t> combinedLin;
  combined.push_back(std::move(records_.front()));
  if (lin) combinedLin.push_back(linearKeys_.front());
  for (std::size_t i = 1; i < records_.size(); ++i) {
    KeyValue& last = combined.back();
    // Equal-run detection on the cached u64 when present: linearization
    // is injective over the key space, so u64 equality == Coord equality.
    const bool sameKey =
        lin ? linearKeys_[i] == combinedLin.back() : records_[i].key == last.key;
    if (sameKey) {
      last.value = combiner.combine(last.value, records_[i].value);
      last.represents += records_[i].represents;
    } else {
      combined.push_back(std::move(records_[i]));
      if (lin) combinedLin.push_back(linearKeys_[i]);
    }
  }
  records_ = std::move(combined);
  linearKeys_ = std::move(combinedLin);
  header_.numRecords = records_.size();
  // header_.represents is preserved: combining merges values but still
  // stands for the same original input pairs.
}

bool Segment::isSorted() const {
  if (packedMode_) {
    return std::is_sorted(
        packed_.begin(), packed_.end(),
        [](const PackedRecord& a, const PackedRecord& b) {
          return a.lin < b.lin;
        });
  }
  return std::is_sorted(
      records_.begin(), records_.end(),
      [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
}

namespace {

// Fixed little-endian u64 words; on little-endian hosts every word is a
// single memcpy (and runs of words — keys, list payloads — are a single
// bulk memcpy), big-endian hosts fall back to byte shifts.

inline void storeU64(std::byte* dst, std::uint64_t x) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, &x, 8);
  } else {
    for (int b = 0; b < 8; ++b) {
      dst[b] = static_cast<std::byte>((x >> (b * 8)) & 0xff);
    }
  }
}

inline std::uint64_t loadU64(const std::byte* src) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t x;
    std::memcpy(&x, src, 8);
    return x;
  } else {
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(src[b]) << (b * 8);
    }
    return x;
  }
}

/// Appends words into a preallocated, exact-size buffer.
class Writer {
 public:
  explicit Writer(std::byte* p) : p_(p) {}

  void u64(std::uint64_t x) {
    storeU64(p_, x);
    p_ += 8;
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Bulk-writes `n` contiguous 8-byte values (int64/double arrays).
  template <typename T>
  void words(const T* src, std::size_t n) {
    static_assert(sizeof(T) == 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p_, src, n * 8);
      p_ += n * 8;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t bits;
        std::memcpy(&bits, src + i, 8);
        u64(bits);
      }
    }
  }

  const std::byte* pos() const noexcept { return p_; }

 private:
  std::byte* p_;
};

/// Bounds-checked reading cursor: every read (and every length-derived
/// allocation) is validated against the remaining byte count first.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

  void require(std::size_t n) const {
    if (remaining() < n) {
      throw std::out_of_range("Segment::deserialize: truncated");
    }
  }

  std::uint64_t u64() {
    require(8);
    return u64Unchecked();
  }

  /// Read after a covering require(): bounds already validated.
  std::uint64_t u64Unchecked() {
    std::uint64_t x = loadU64(p_);
    p_ += 8;
    return x;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  double f64Unchecked() {
    std::uint64_t bits = u64Unchecked();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Bulk-reads `n` contiguous 8-byte values after a covering
  /// require().
  template <typename T>
  void wordsUnchecked(T* dst, std::size_t n) {
    static_assert(sizeof(T) == 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, p_, n * 8);
      p_ += n * 8;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t bits = u64Unchecked();
        std::memcpy(dst + i, &bits, 8);
      }
    }
  }

 private:
  const std::byte* p_;
  const std::byte* end_;
};

/// Smallest possible encoded record: rank-0 key + represents + kind +
/// scalar payload. Used to validate numRecords before reserving.
constexpr std::size_t kMinRecordBytes = 8 + 8 + 8 + 8;

}  // namespace

std::size_t Segment::serializedSize() const {
  if (packedMode_) materializeNow();  // the wire format is the KeyValue view
  std::size_t size = kHeaderBytes;
  for (const KeyValue& kv : records_) {
    size += 8 + 8 * kv.key.rank();  // rank word + coordinates
    size += 8 + 8;                  // represents + value kind
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        size += 8;
        break;
      case ValueKind::kPartial:
        size += 4 * 8;
        break;
      case ValueKind::kList:
        size += 8 + 8 * kv.value.asList().size();
        break;
    }
  }
  return size;
}

std::vector<std::byte> Segment::serialize() const {
  std::vector<std::byte> out;
  serializeInto(out);
  return out;
}

void Segment::serializeInto(std::vector<std::byte>& out) const {
  out.resize(serializedSize());  // materializes a packed segment
  Writer w(out.data());
  w.u64(header_.mapTask);
  w.u64(header_.keyblock);
  w.u64(header_.numRecords);
  w.u64(header_.represents);
  for (const KeyValue& kv : records_) {
    w.u64(kv.key.rank());
    w.words(kv.key.begin(), kv.key.rank());
    w.u64(kv.represents);
    w.u64(static_cast<std::uint64_t>(kv.value.kind()));
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        w.f64(kv.value.asScalar());
        break;
      case ValueKind::kPartial: {
        const Partial& p = kv.value.asPartial();
        w.f64(p.sum);
        w.f64(p.min);
        w.f64(p.max);
        w.u64(static_cast<std::uint64_t>(p.count));
        break;
      }
      case ValueKind::kList: {
        const auto& xs = kv.value.asList();
        w.u64(xs.size());
        w.words(xs.data(), xs.size());
        break;
      }
    }
  }
}

Segment Segment::deserialize(std::span<const std::byte> bytes) {
  Reader cur(bytes);
  cur.require(kHeaderBytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.u64());
  h.keyblock = static_cast<std::uint32_t>(cur.u64());
  h.numRecords = cur.u64();
  h.represents = cur.u64();
  // A corrupt header must not drive a huge reserve: every record costs
  // at least kMinRecordBytes on the wire, so the claimed count is
  // bounded by the bytes actually present.
  if (h.numRecords > cur.remaining() / kMinRecordBytes) {
    throw std::out_of_range("Segment::deserialize: record count exceeds input");
  }
  // Records are constructed in place (no build-then-move), and bounds
  // checks are hoisted: one covering require() per record's fixed part
  // and one per payload, instead of one per word. reserve + emplace
  // avoids zero-initializing the whole array up front.
  std::vector<KeyValue> records;
  records.reserve(h.numRecords);
  for (std::uint64_t i = 0; i < h.numRecords; ++i) {
    KeyValue& kv = records.emplace_back();
    std::uint64_t rank = cur.u64();
    if (rank > nd::kMaxRank) {
      throw std::runtime_error("Segment::deserialize: bad key rank");
    }
    cur.require(8 * rank + 16);  // coords + represents + value kind
    kv.key = nd::Coord::zeros(rank);
    cur.wordsUnchecked(kv.key.begin(), rank);
    kv.represents = cur.u64Unchecked();
    auto kind = static_cast<ValueKind>(cur.u64Unchecked());
    switch (kind) {
      case ValueKind::kScalar:
        kv.value = Value::scalar(cur.f64());
        break;
      case ValueKind::kPartial: {
        cur.require(4 * 8);
        Partial p;
        p.sum = cur.f64Unchecked();
        p.min = cur.f64Unchecked();
        p.max = cur.f64Unchecked();
        p.count = static_cast<std::int64_t>(cur.u64Unchecked());
        kv.value = Value::partial(p);
        break;
      }
      case ValueKind::kList: {
        std::uint64_t n = cur.u64();
        if (n > cur.remaining() / 8) {
          throw std::out_of_range(
              "Segment::deserialize: list length exceeds input");
        }
        std::vector<double> xs(n);
        cur.wordsUnchecked(xs.data(), n);
        kv.value = Value::list(std::move(xs));
        break;
      }
      default:
        throw std::runtime_error("Segment::deserialize: bad value kind");
    }
  }
  if (cur.remaining() != 0) {
    throw std::runtime_error("Segment::deserialize: trailing bytes");
  }
  Segment s(h.mapTask, h.keyblock, std::move(records));
  if (s.header_.represents != h.represents) {
    throw std::runtime_error("Segment::deserialize: annotation mismatch");
  }
  return s;
}

SegmentHeader Segment::peekHeader(std::span<const std::byte> bytes) {
  Reader cur(bytes);
  cur.require(kHeaderBytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.u64());
  h.keyblock = static_cast<std::uint32_t>(cur.u64());
  h.numRecords = cur.u64();
  h.represents = cur.u64();
  return h;
}

SegmentMerger::SegmentMerger(std::span<const Segment* const> segments) {
  // The u64 heap is only valid when EVERY participating segment carries
  // the cache: a mixed heap would compare a u64 against a Coord.
  bool allLinear = true;
  for (const Segment* s : segments) {
    if (s != nullptr && !s->empty() && !s->hasLinearKeys()) {
      allLinear = false;
      break;
    }
  }
  for (const Segment* s : segments) {
    if (s != nullptr && !s->empty()) {
      heap_.push_back(
          Cursor{s, 0, allLinear ? s->linearKeys().data() : nullptr});
    }
  }
  // Build a binary min-heap on the cursors' current keys.
  for (std::size_t i = heap_.size(); i-- > 0;) siftDown(i);
}

bool SegmentMerger::cursorLess(const Cursor& a, const Cursor& b) const {
  if (a.lin != nullptr && b.lin != nullptr) {
    return a.lin[a.pos] < b.lin[b.pos];
  }
  return a.segment->records()[a.pos].key < b.segment->records()[b.pos].key;
}

void SegmentMerger::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t l = 2 * i + 1;
    std::size_t r = 2 * i + 2;
    if (l < n && cursorLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && cursorLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void SegmentMerger::pop() {
  Cursor& c = heap_.front();
  if (c.pos + 1 < c.segment->records().size()) {
    ++c.pos;
  } else {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
  }
  siftDown(0);
}

}  // namespace sidr::mr
