#include "mapreduce/segment.hpp"

#include "mapreduce/interfaces.hpp"
#include "obs/trace.hpp"
#include "scifile/storage.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <limits>
#include <stdexcept>

namespace sidr::mr {

SortStats& sortStats() noexcept {
  thread_local SortStats stats;
  return stats;
}

namespace {
/// Innermost ScopedSortStatsSink on this thread; null = fall back to
/// the thread-local sortStats().
thread_local SortStats* tSortSink = nullptr;
}  // namespace

SortStats& activeSortStats() noexcept {
  return tSortSink != nullptr ? *tSortSink : sortStats();
}

ScopedSortStatsSink::ScopedSortStatsSink(SortStats* sink) noexcept
    : prev_(tSortSink) {
  tSortSink = sink;
}

ScopedSortStatsSink::~ScopedSortStatsSink() { tSortSink = prev_; }

void radixSortPacked(std::vector<PackedRecord>& records) {
  SortStats& stats = activeSortStats();
  const std::size_t n = records.size();
  if (n > std::numeric_limits<std::uint32_t>::max()) {
    // The pair buffer indexes with u32 (as the comparison path does);
    // beyond that a stable comparison sort preserves the contract.
    ++stats.comparisonSorts;
    std::stable_sort(records.begin(), records.end(),
                     [](const PackedRecord& a, const PackedRecord& b) {
                       return a.lin < b.lin;
                     });
    return;
  }
  ++stats.radixSorts;
  if (n <= 1) return;
  struct LinIdx {
    std::uint64_t lin;
    std::uint32_t idx;
  };
  std::vector<LinIdx> front(n), back(n);
  // One scan builds all eight byte histograms while filling the pair
  // buffer, so skippable passes are known before any scatter runs.
  std::array<std::array<std::uint32_t, 256>, 8> counts{};
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = records[i].lin;
    front[i] = LinIdx{k, static_cast<std::uint32_t>(i)};
    for (int b = 0; b < 8; ++b) ++counts[b][(k >> (8 * b)) & 0xff];
  }
  LinIdx* src = front.data();
  LinIdx* dst = back.data();
  for (int pass = 0; pass < 8; ++pass) {
    std::array<std::uint32_t, 256>& c = counts[pass];
    const int shift = 8 * pass;
    // A byte that is constant across the segment contributes nothing to
    // the order: a stable counting scatter on it is the identity.
    if (c[(src[0].lin >> shift) & 0xff] == n) {
      ++stats.radixPassesSkipped;
      continue;
    }
    std::uint32_t sum = 0;
    for (std::uint32_t& bucket : c) {
      const std::uint32_t count = bucket;
      bucket = sum;
      sum += count;
    }
    for (std::size_t i = 0; i < n; ++i) {
      dst[c[(src[i].lin >> shift) & 0xff]++] = src[i];
    }
    std::swap(src, dst);
    ++stats.radixPasses;
  }
  // LSD counting passes are stable, so equal keys still carry ascending
  // idx here — the same permutation the (lin, idx) comparison sort
  // yields. Apply it to the 40-byte records once.
  std::vector<PackedRecord> sorted;
  sorted.reserve(n);
  for (std::size_t i = 0; i < n; ++i) sorted.push_back(records[src[i].idx]);
  records = std::move(sorted);
}

std::string segmentFileName(std::uint32_t mapTask, std::uint32_t keyblock) {
  return "map" + std::to_string(mapTask) + "_kb" + std::to_string(keyblock) +
         ".seg";
}

std::string jobSpillDirName(std::uint64_t jobId) {
  return "job" + std::to_string(jobId);
}

std::string segmentFileName(std::uint64_t jobId, std::uint32_t mapTask,
                            std::uint32_t keyblock) {
  return jobSpillDirName(jobId) + "/" + segmentFileName(mapTask, keyblock);
}

std::string segmentAttemptFileName(std::uint32_t mapTask,
                                   std::uint32_t keyblock,
                                   std::uint32_t attempt) {
  return segmentFileName(mapTask, keyblock) + ".attempt" +
         std::to_string(attempt) + ".tmp";
}

void commitSegmentFile(const std::string& dir, std::uint32_t mapTask,
                       std::uint32_t keyblock, std::uint32_t attempt) {
  std::filesystem::rename(
      std::filesystem::path(dir) /
          segmentAttemptFileName(mapTask, keyblock, attempt),
      std::filesystem::path(dir) / segmentFileName(mapTask, keyblock));
}

void discardSegmentAttemptFile(const std::string& dir, std::uint32_t mapTask,
                               std::uint32_t keyblock,
                               std::uint32_t attempt) {
  std::error_code ec;  // swallowed: cleanup of a dead attempt is advisory
  std::filesystem::remove(
      std::filesystem::path(dir) /
          segmentAttemptFileName(mapTask, keyblock, attempt),
      ec);
}

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<KeyValue> records)
    : records_(std::move(records)) {
  header_.mapTask = mapTask;
  header_.keyblock = keyblock;
  header_.numRecords = records_.size();
  header_.represents = 0;
  for (const KeyValue& kv : records_) header_.represents += kv.represents;
}

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<KeyValue> records,
                 std::vector<std::uint64_t> linearKeys)
    : Segment(mapTask, keyblock, std::move(records)) {
  if (linearKeys.size() != records_.size()) {
    throw std::invalid_argument(
        "Segment: linearKeys size does not match records");
  }
  linearKeys_ = std::move(linearKeys);
}

Segment::Segment(std::uint32_t mapTask, std::uint32_t keyblock,
                 std::vector<PackedRecord> packed,
                 std::vector<std::vector<double>> lists, nd::Coord keySpace)
    : packed_(std::move(packed)),
      lists_(std::move(lists)),
      packedMode_(true),
      keySpace_(std::move(keySpace)) {
  if (keySpace_.rank() == 0 || !keySpace_.isValidShape()) {
    throw std::invalid_argument(
        "Segment: packed form requires a valid non-empty keySpace");
  }
  header_.mapTask = mapTask;
  header_.keyblock = keyblock;
  header_.numRecords = packed_.size();
  header_.represents = 0;
  for (const PackedRecord& r : packed_) header_.represents += r.represents;
}

void Segment::materializeNow() const {
  // Builds the KeyValue view in final order with exact capacity. Dense
  // sorted runs delinearize by bumping the innermost coordinate instead
  // of re-dividing (mappers over row-major input emit dense runs).
  std::vector<KeyValue> records;
  std::vector<std::uint64_t> linearKeys;
  records.reserve(packed_.size());
  linearKeys.reserve(packed_.size());
  const std::size_t lastD = keySpace_.rank() - 1;
  nd::Coord cur;
  std::uint64_t prevLin = 0;
  bool havePrev = false;
  for (const PackedRecord& r : packed_) {
    if (havePrev && r.lin == prevLin + 1 && cur[lastD] + 1 < keySpace_[lastD]) {
      ++cur[lastD];
    } else if (!havePrev || r.lin != prevLin) {
      cur = nd::delinearize(static_cast<nd::Index>(r.lin), keySpace_);
    }
    prevLin = r.lin;
    havePrev = true;
    KeyValue& kv = records.emplace_back();
    kv.key = cur;
    kv.represents = r.represents;
    switch (r.kind) {
      case ValueKind::kScalar:
        kv.value = Value::scalar(r.payload.scalar);
        break;
      case ValueKind::kPartial:
        kv.value = Value::partial(r.payload.partial);
        break;
      case ValueKind::kList:
        kv.value = Value::list(std::move(lists_[r.payload.listIndex]));
        break;
    }
    linearKeys.push_back(r.lin);
  }
  records_ = std::move(records);
  linearKeys_ = std::move(linearKeys);
  packed_.clear();
  packed_.shrink_to_fit();
  lists_.clear();
  lists_.shrink_to_fit();
  packedMode_ = false;
}

void Segment::computeLinearKeys(const nd::Coord& keySpace) {
  if (packedMode_) return;  // packed records ARE linear keys already
  std::vector<std::uint64_t> lin;
  lin.reserve(records_.size());
  for (const KeyValue& kv : records_) {
    if (kv.key.rank() != keySpace.rank()) {
      throw std::out_of_range("Segment::computeLinearKeys: key rank mismatch");
    }
    for (std::size_t d = 0; d < keySpace.rank(); ++d) {
      if (kv.key[d] < 0 || kv.key[d] >= keySpace[d]) {
        throw std::out_of_range(
            "Segment::computeLinearKeys: key outside space");
      }
    }
    lin.push_back(static_cast<std::uint64_t>(nd::linearize(kv.key, keySpace)));
  }
  linearKeys_ = std::move(lin);
}

void Segment::sortByKey() {
  obs::SpanScope span(obs::Phase::kSortPacked, obs::TaskSide::kMap,
                      header_.mapTask, 0, header_.keyblock);
  span.setRecords(header_.numRecords);
  if (packedMode_) {
    sortPacked();
    return;
  }
  if (hasLinearKeys() && !records_.empty()) {
    sortByLinearKey();
    return;
  }
  // Already-sorted detection matters on both paths: mappers that walk a
  // region emit in row-major order, so the common case is a no-op scan.
  auto lexLess = [](const KeyValue& a, const KeyValue& b) {
    return a.key < b.key;
  };
  if (std::is_sorted(records_.begin(), records_.end(), lexLess)) {
    ++activeSortStats().sortedSkips;
    return;
  }
  // stable_sort, not sort: duplicate keys must keep emission order so the
  // fallback and linearized paths build byte-identical segments.
  ++activeSortStats().comparisonSorts;
  std::stable_sort(records_.begin(), records_.end(), lexLess);
}

void Segment::sortByLinearKey() {
  if (std::is_sorted(linearKeys_.begin(), linearKeys_.end())) {
    ++activeSortStats().sortedSkips;
    return;
  }
  ++activeSortStats().comparisonSorts;
  // Sort compact (u64 key, u32 index) pairs and permute the ~130-byte
  // KeyValues once, instead of swapping them under Coord compares. The
  // index tie-break makes the sort stable. Segments beyond u32 indexing
  // would need a wider pair; no in-memory map output gets near that.
  struct KeyIdx {
    std::uint64_t key;
    std::uint32_t idx;
  };
  if (records_.size() > std::numeric_limits<std::uint32_t>::max()) {
    linearKeys_.clear();  // cache dropped; fall back to a stable lex sort
    std::stable_sort(
        records_.begin(), records_.end(),
        [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
    return;
  }
  std::vector<KeyIdx> order(records_.size());
  for (std::size_t i = 0; i < records_.size(); ++i) {
    order[i] = {linearKeys_[i], static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(), [](const KeyIdx& a, const KeyIdx& b) {
    return a.key < b.key || (a.key == b.key && a.idx < b.idx);
  });
  std::vector<KeyValue> sorted;
  sorted.reserve(records_.size());
  std::vector<std::uint64_t> sortedLin;
  sortedLin.reserve(records_.size());
  for (const KeyIdx& ki : order) {
    sorted.push_back(std::move(records_[ki.idx]));
    sortedLin.push_back(ki.key);
  }
  records_ = std::move(sorted);
  linearKeys_ = std::move(sortedLin);
}

void Segment::sortPacked() {
  // Mappers over row-major input usually emit each keyblock's records
  // already key-ordered; detect that in O(n) and skip the sort.
  const auto linLess = [](const PackedRecord& a, const PackedRecord& b) {
    return a.lin < b.lin;
  };
  if (std::is_sorted(packed_.begin(), packed_.end(), linLess)) {
    ++activeSortStats().sortedSkips;
    return;
  }
  if (packed_.size() >= kRadixSortMinRecords) {
    // List indices stay valid on every path: the side table is never
    // permuted.
    radixSortPacked(packed_);
    return;
  }
  // Small segment: the comparison sort on (lin, idx) pairs wins below
  // the radix threshold. Buffer order is emission order, so the index
  // tie-break keeps the sort stable — the same record order
  // std::stable_sort produces in the lexicographic fallback.
  ++activeSortStats().comparisonSorts;
  struct LinIdx {
    std::uint64_t lin;
    std::uint32_t idx;
  };
  std::vector<LinIdx> order(packed_.size());
  for (std::size_t i = 0; i < packed_.size(); ++i) {
    order[i] = {packed_[i].lin, static_cast<std::uint32_t>(i)};
  }
  std::sort(order.begin(), order.end(), [](const LinIdx& a, const LinIdx& b) {
    return a.lin < b.lin || (a.lin == b.lin && a.idx < b.idx);
  });
  std::vector<PackedRecord> sorted;
  sorted.reserve(packed_.size());
  for (const LinIdx& li : order) sorted.push_back(packed_[li.idx]);
  packed_ = std::move(sorted);
}

void Segment::combineWith(const Combiner& combiner) {
  if (packedMode_) materializeNow();  // combiners consume full Values
  if (records_.empty()) return;
  const bool lin = hasLinearKeys();
  std::vector<KeyValue> combined;
  std::vector<std::uint64_t> combinedLin;
  combined.push_back(std::move(records_.front()));
  if (lin) combinedLin.push_back(linearKeys_.front());
  for (std::size_t i = 1; i < records_.size(); ++i) {
    KeyValue& last = combined.back();
    // Equal-run detection on the cached u64 when present: linearization
    // is injective over the key space, so u64 equality == Coord equality.
    const bool sameKey =
        lin ? linearKeys_[i] == combinedLin.back() : records_[i].key == last.key;
    if (sameKey) {
      last.value = combiner.combine(last.value, records_[i].value);
      last.represents += records_[i].represents;
    } else {
      combined.push_back(std::move(records_[i]));
      if (lin) combinedLin.push_back(linearKeys_[i]);
    }
  }
  records_ = std::move(combined);
  linearKeys_ = std::move(combinedLin);
  header_.numRecords = records_.size();
  // header_.represents is preserved: combining merges values but still
  // stands for the same original input pairs.
}

bool Segment::isSorted() const {
  if (packedMode_) {
    return std::is_sorted(
        packed_.begin(), packed_.end(),
        [](const PackedRecord& a, const PackedRecord& b) {
          return a.lin < b.lin;
        });
  }
  return std::is_sorted(
      records_.begin(), records_.end(),
      [](const KeyValue& a, const KeyValue& b) { return a.key < b.key; });
}

namespace {

// Fixed little-endian u64 words; on little-endian hosts every word is a
// single memcpy (and runs of words — keys, list payloads — are a single
// bulk memcpy), big-endian hosts fall back to byte shifts.

inline void storeU64(std::byte* dst, std::uint64_t x) {
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(dst, &x, 8);
  } else {
    for (int b = 0; b < 8; ++b) {
      dst[b] = static_cast<std::byte>((x >> (b * 8)) & 0xff);
    }
  }
}

inline std::uint64_t loadU64(const std::byte* src) {
  if constexpr (std::endian::native == std::endian::little) {
    std::uint64_t x;
    std::memcpy(&x, src, 8);
    return x;
  } else {
    std::uint64_t x = 0;
    for (int b = 0; b < 8; ++b) {
      x |= static_cast<std::uint64_t>(src[b]) << (b * 8);
    }
    return x;
  }
}

/// Appends words into a preallocated, exact-size buffer.
class Writer {
 public:
  explicit Writer(std::byte* p) : p_(p) {}

  void u64(std::uint64_t x) {
    storeU64(p_, x);
    p_ += 8;
  }

  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u64(bits);
  }

  /// Bulk-writes `n` contiguous 8-byte values (int64/double arrays).
  template <typename T>
  void words(const T* src, std::size_t n) {
    static_assert(sizeof(T) == 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(p_, src, n * 8);
      p_ += n * 8;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t bits;
        std::memcpy(&bits, src + i, 8);
        u64(bits);
      }
    }
  }

  void u8(std::uint8_t b) { *p_++ = static_cast<std::byte>(b); }

  /// LEB128: 7 payload bits per byte, low bits first, high bit set on
  /// every byte but the last (at most 10 bytes for a u64).
  void varint(std::uint64_t x) {
    while (x >= 0x80) {
      u8(static_cast<std::uint8_t>((x & 0x7f) | 0x80));
      x >>= 7;
    }
    u8(static_cast<std::uint8_t>(x));
  }

  const std::byte* pos() const noexcept { return p_; }

 private:
  std::byte* p_;
};

/// Bounds-checked reading cursor: every read (and every length-derived
/// allocation) is validated against the remaining byte count first.
class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes)
      : p_(bytes.data()), end_(bytes.data() + bytes.size()) {}

  std::size_t remaining() const noexcept {
    return static_cast<std::size_t>(end_ - p_);
  }

  void require(std::size_t n) const {
    if (remaining() < n) {
      throw std::out_of_range("Segment::deserialize: truncated");
    }
  }

  std::uint64_t u64() {
    require(8);
    return u64Unchecked();
  }

  /// Read after a covering require(): bounds already validated.
  std::uint64_t u64Unchecked() {
    std::uint64_t x = loadU64(p_);
    p_ += 8;
    return x;
  }

  double f64() {
    std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  double f64Unchecked() {
    std::uint64_t bits = u64Unchecked();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }

  /// Bulk-reads `n` contiguous 8-byte values after a covering
  /// require().
  template <typename T>
  void wordsUnchecked(T* dst, std::size_t n) {
    static_assert(sizeof(T) == 8);
    if constexpr (std::endian::native == std::endian::little) {
      std::memcpy(dst, p_, n * 8);
      p_ += n * 8;
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t bits = u64Unchecked();
        std::memcpy(dst + i, &bits, 8);
      }
    }
  }

 private:
  const std::byte* p_;
  const std::byte* end_;
};

/// Smallest possible encoded record: rank-0 key + represents + kind +
/// scalar payload. Used to validate numRecords before reserving.
constexpr std::size_t kMinRecordBytes = 8 + 8 + 8 + 8;

/// Compressed-framing floor: 1-byte delta + 1-byte represents + kind
/// byte + smallest payload (an empty list's 1-byte length varint).
constexpr std::size_t kMinCompressedRecordBytes = 1 + 1 + 1 + 1;

inline std::size_t varintLen(std::uint64_t x) {
  std::size_t n = 1;
  while (x >= 0x80) {
    x >>= 7;
    ++n;
  }
  return n;
}

/// Decodes a LEB128 varint at *p without reading past `end`. Returns
/// false WITHOUT moving *p when the encoding runs off the buffer (the
/// streaming caller refills and retries); throws std::runtime_error on
/// an encoding that cannot fit 64 bits.
bool readVarint(const std::byte*& p, const std::byte* end,
                std::uint64_t& out) {
  std::uint64_t x = 0;
  int shift = 0;
  const std::byte* q = p;
  while (true) {
    if (q == end) return false;
    const auto b = static_cast<std::uint8_t>(*q++);
    if (shift == 63 && (b & 0x7f) > 1) {
      throw std::runtime_error("SegmentStream: varint overflow");
    }
    x |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) break;
    shift += 7;
    if (shift >= 64) throw std::runtime_error("SegmentStream: varint overflow");
  }
  p = q;
  out = x;
  return true;
}

inline double loadF64(const std::byte* p) {
  const std::uint64_t bits = loadU64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Range-checked linearization for the compressed encode of segments
/// without a linear-key cache (deserialize output, hand-built tests).
std::uint64_t checkedLinearize(const nd::Coord& key,
                               const nd::Coord& keySpace) {
  if (key.rank() != keySpace.rank()) {
    throw std::out_of_range("Segment::serializeCompressed: key rank mismatch");
  }
  for (std::size_t d = 0; d < keySpace.rank(); ++d) {
    if (key[d] < 0 || key[d] >= keySpace[d]) {
      throw std::out_of_range("Segment::serializeCompressed: key outside space");
    }
  }
  return static_cast<std::uint64_t>(nd::linearize(key, keySpace));
}

}  // namespace

std::size_t Segment::serializedSize() const {
  std::size_t size = kHeaderBytes;
  if (packedMode_) {
    // Packed records all share the key space's rank; only list payloads
    // vary in size.
    const std::size_t rank = keySpace_.rank();
    for (const PackedRecord& r : packed_) {
      size += 8 + 8 * rank + 16;
      switch (r.kind) {
        case ValueKind::kScalar:
          size += 8;
          break;
        case ValueKind::kPartial:
          size += 4 * 8;
          break;
        case ValueKind::kList:
          size += 8 + 8 * lists_[r.payload.listIndex].size();
          break;
      }
    }
    return size;
  }
  for (const KeyValue& kv : records_) {
    size += 8 + 8 * kv.key.rank();  // rank word + coordinates
    size += 8 + 8;                  // represents + value kind
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        size += 8;
        break;
      case ValueKind::kPartial:
        size += 4 * 8;
        break;
      case ValueKind::kList:
        size += 8 + 8 * kv.value.asList().size();
        break;
    }
  }
  return size;
}

std::vector<std::byte> Segment::serialize() const {
  std::vector<std::byte> out;
  serializeInto(out);
  return out;
}

void Segment::serializeInto(std::vector<std::byte>& out) const {
  out.resize(serializedSize());
  Writer w(out.data());
  w.u64(header_.mapTask);
  w.u64(header_.keyblock);
  w.u64(header_.numRecords);
  w.u64(header_.represents);
  if (packedMode_) {
    // Encode straight from the packed form: delinearize each record
    // with the same dense-run bump materializeNow uses, producing the
    // exact bytes the materialized encode would — without ever building
    // the ~160-byte-per-record KeyValue view (which matters most at
    // eviction time, when memory is the thing being reclaimed).
    const std::size_t rank = keySpace_.rank();
    const std::size_t lastD = rank - 1;
    nd::Coord cur;
    std::uint64_t prevLin = 0;
    bool havePrev = false;
    for (const PackedRecord& r : packed_) {
      if (havePrev && r.lin == prevLin + 1 &&
          cur[lastD] + 1 < keySpace_[lastD]) {
        ++cur[lastD];
      } else if (!havePrev || r.lin != prevLin) {
        cur = nd::delinearize(static_cast<nd::Index>(r.lin), keySpace_);
      }
      prevLin = r.lin;
      havePrev = true;
      w.u64(rank);
      w.words(cur.begin(), rank);
      w.u64(r.represents);
      w.u64(static_cast<std::uint64_t>(r.kind));
      switch (r.kind) {
        case ValueKind::kScalar:
          w.f64(r.payload.scalar);
          break;
        case ValueKind::kPartial: {
          const Partial& p = r.payload.partial;
          w.f64(p.sum);
          w.f64(p.min);
          w.f64(p.max);
          w.u64(static_cast<std::uint64_t>(p.count));
          break;
        }
        case ValueKind::kList: {
          const auto& xs = lists_[r.payload.listIndex];
          w.u64(xs.size());
          w.words(xs.data(), xs.size());
          break;
        }
      }
    }
    return;
  }
  for (const KeyValue& kv : records_) {
    w.u64(kv.key.rank());
    w.words(kv.key.begin(), kv.key.rank());
    w.u64(kv.represents);
    w.u64(static_cast<std::uint64_t>(kv.value.kind()));
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        w.f64(kv.value.asScalar());
        break;
      case ValueKind::kPartial: {
        const Partial& p = kv.value.asPartial();
        w.f64(p.sum);
        w.f64(p.min);
        w.f64(p.max);
        w.u64(static_cast<std::uint64_t>(p.count));
        break;
      }
      case ValueKind::kList: {
        const auto& xs = kv.value.asList();
        w.u64(xs.size());
        w.words(xs.data(), xs.size());
        break;
      }
    }
  }
}

std::uint64_t Segment::residentBytes() const noexcept {
  std::uint64_t bytes = 0;
  if (packedMode_) {
    bytes += packed_.size() * sizeof(PackedRecord);
    for (const auto& xs : lists_) {
      bytes += sizeof(std::vector<double>) + xs.size() * sizeof(double);
    }
    return bytes;
  }
  bytes += records_.size() * sizeof(KeyValue);
  for (const KeyValue& kv : records_) {
    if (kv.value.kind() == ValueKind::kList) {
      bytes += kv.value.asList().size() * sizeof(double);
    }
  }
  bytes += linearKeys_.size() * sizeof(std::uint64_t);
  return bytes;
}

std::size_t Segment::serializedCompressedSize(const nd::Coord& keySpace) const {
  if (keySpace.rank() == 0 || !keySpace.isValidShape()) {
    throw std::invalid_argument(
        "Segment::serializeCompressed: needs a valid non-empty key space");
  }
  if (packedMode_ && !(keySpace == keySpace_)) {
    throw std::invalid_argument(
        "Segment::serializeCompressed: key space differs from the packed "
        "segment's");
  }
  std::size_t size = kHeaderBytes + varintLen(keySpace.rank());
  for (std::size_t d = 0; d < keySpace.rank(); ++d) {
    size += varintLen(static_cast<std::uint64_t>(keySpace[d]));
  }
  std::uint64_t prev = 0;
  bool have = false;
  const auto recordFixed = [&](std::uint64_t lin, std::uint64_t represents) {
    if (have && lin < prev) {
      throw std::logic_error(
          "Segment::serializeCompressed: records not sorted by linear key");
    }
    size += varintLen(have ? lin - prev : lin) + varintLen(represents) + 1;
    prev = lin;
    have = true;
  };
  if (packedMode_) {
    for (const PackedRecord& r : packed_) {
      recordFixed(r.lin, r.represents);
      switch (r.kind) {
        case ValueKind::kScalar:
          size += 8;
          break;
        case ValueKind::kPartial:
          size += 24 + varintLen(static_cast<std::uint64_t>(r.payload.partial.count));
          break;
        case ValueKind::kList: {
          const auto& xs = lists_[r.payload.listIndex];
          size += varintLen(xs.size()) + 8 * xs.size();
          break;
        }
      }
    }
    return size;
  }
  const bool cached = linearKeys_.size() == records_.size();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const KeyValue& kv = records_[i];
    recordFixed(cached ? linearKeys_[i] : checkedLinearize(kv.key, keySpace),
                kv.represents);
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        size += 8;
        break;
      case ValueKind::kPartial:
        size +=
            24 + varintLen(static_cast<std::uint64_t>(kv.value.asPartial().count));
        break;
      case ValueKind::kList: {
        const auto& xs = kv.value.asList();
        size += varintLen(xs.size()) + 8 * xs.size();
        break;
      }
    }
  }
  return size;
}

void Segment::serializeCompressedInto(std::vector<std::byte>& out,
                                      const nd::Coord& keySpace) const {
  out.resize(serializedCompressedSize(keySpace));  // validates everything
  Writer w(out.data());
  w.u64(header_.mapTask);
  w.u64(header_.keyblock);
  w.u64(header_.numRecords);
  w.u64(header_.represents);
  w.varint(keySpace.rank());
  for (std::size_t d = 0; d < keySpace.rank(); ++d) {
    w.varint(static_cast<std::uint64_t>(keySpace[d]));
  }
  std::uint64_t prev = 0;
  bool have = false;
  const auto delta = [&](std::uint64_t lin) {
    const std::uint64_t d = have ? lin - prev : lin;
    prev = lin;
    have = true;
    return d;
  };
  if (packedMode_) {
    for (const PackedRecord& r : packed_) {
      w.varint(delta(r.lin));
      w.varint(r.represents);
      w.u8(static_cast<std::uint8_t>(r.kind));
      switch (r.kind) {
        case ValueKind::kScalar:
          w.f64(r.payload.scalar);
          break;
        case ValueKind::kPartial: {
          const Partial& p = r.payload.partial;
          w.f64(p.sum);
          w.f64(p.min);
          w.f64(p.max);
          w.varint(static_cast<std::uint64_t>(p.count));
          break;
        }
        case ValueKind::kList: {
          const auto& xs = lists_[r.payload.listIndex];
          w.varint(xs.size());
          w.words(xs.data(), xs.size());
          break;
        }
      }
    }
    return;
  }
  const bool cached = linearKeys_.size() == records_.size();
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const KeyValue& kv = records_[i];
    w.varint(delta(cached ? linearKeys_[i]
                          : checkedLinearize(kv.key, keySpace)));
    w.varint(kv.represents);
    w.u8(static_cast<std::uint8_t>(kv.value.kind()));
    switch (kv.value.kind()) {
      case ValueKind::kScalar:
        w.f64(kv.value.asScalar());
        break;
      case ValueKind::kPartial: {
        const Partial& p = kv.value.asPartial();
        w.f64(p.sum);
        w.f64(p.min);
        w.f64(p.max);
        w.varint(static_cast<std::uint64_t>(p.count));
        break;
      }
      case ValueKind::kList: {
        const auto& xs = kv.value.asList();
        w.varint(xs.size());
        w.words(xs.data(), xs.size());
        break;
      }
    }
  }
}

std::vector<std::byte> Segment::serializeCompressed(
    const nd::Coord& keySpace) const {
  std::vector<std::byte> out;
  serializeCompressedInto(out, keySpace);
  return out;
}

Segment Segment::fromStream(SegmentStream& stream) {
  const SegmentHeader h = stream.header();
  std::vector<KeyValue> records;
  records.reserve(h.numRecords);  // bounded by the stream's count check
  std::vector<std::uint64_t> lin;
  const bool hasLin = stream.hasLin();
  if (hasLin) lin.reserve(h.numRecords);
  while (!stream.exhausted()) {
    if (hasLin) lin.push_back(stream.currentLin());
    records.push_back(stream.take());
  }
  if (hasLin) {
    return Segment(h.mapTask, h.keyblock, std::move(records), std::move(lin));
  }
  return Segment(h.mapTask, h.keyblock, std::move(records));
}

Segment Segment::deserialize(std::span<const std::byte> bytes) {
  Reader cur(bytes);
  cur.require(kHeaderBytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.u64());
  h.keyblock = static_cast<std::uint32_t>(cur.u64());
  h.numRecords = cur.u64();
  h.represents = cur.u64();
  // A corrupt header must not drive a huge reserve: every record costs
  // at least kMinRecordBytes on the wire, so the claimed count is
  // bounded by the bytes actually present.
  if (h.numRecords > cur.remaining() / kMinRecordBytes) {
    throw std::out_of_range("Segment::deserialize: record count exceeds input");
  }
  // Records are constructed in place (no build-then-move), and bounds
  // checks are hoisted: one covering require() per record's fixed part
  // and one per payload, instead of one per word. reserve + emplace
  // avoids zero-initializing the whole array up front.
  std::vector<KeyValue> records;
  records.reserve(h.numRecords);
  for (std::uint64_t i = 0; i < h.numRecords; ++i) {
    KeyValue& kv = records.emplace_back();
    std::uint64_t rank = cur.u64();
    if (rank > nd::kMaxRank) {
      throw std::runtime_error("Segment::deserialize: bad key rank");
    }
    cur.require(8 * rank + 16);  // coords + represents + value kind
    kv.key = nd::Coord::zeros(rank);
    cur.wordsUnchecked(kv.key.begin(), rank);
    kv.represents = cur.u64Unchecked();
    auto kind = static_cast<ValueKind>(cur.u64Unchecked());
    switch (kind) {
      case ValueKind::kScalar:
        kv.value = Value::scalar(cur.f64());
        break;
      case ValueKind::kPartial: {
        cur.require(4 * 8);
        Partial p;
        p.sum = cur.f64Unchecked();
        p.min = cur.f64Unchecked();
        p.max = cur.f64Unchecked();
        p.count = static_cast<std::int64_t>(cur.u64Unchecked());
        kv.value = Value::partial(p);
        break;
      }
      case ValueKind::kList: {
        std::uint64_t n = cur.u64();
        if (n > cur.remaining() / 8) {
          throw std::out_of_range(
              "Segment::deserialize: list length exceeds input");
        }
        std::vector<double> xs(n);
        cur.wordsUnchecked(xs.data(), n);
        kv.value = Value::list(std::move(xs));
        break;
      }
      default:
        throw std::runtime_error("Segment::deserialize: bad value kind");
    }
  }
  if (cur.remaining() != 0) {
    throw std::runtime_error("Segment::deserialize: trailing bytes");
  }
  Segment s(h.mapTask, h.keyblock, std::move(records));
  if (s.header_.represents != h.represents) {
    throw std::runtime_error("Segment::deserialize: annotation mismatch");
  }
  return s;
}

SegmentHeader Segment::peekHeader(std::span<const std::byte> bytes) {
  Reader cur(bytes);
  cur.require(kHeaderBytes);
  SegmentHeader h;
  h.mapTask = static_cast<std::uint32_t>(cur.u64());
  h.keyblock = static_cast<std::uint32_t>(cur.u64());
  h.numRecords = cur.u64();
  h.represents = cur.u64();
  return h;
}

// ---- SegmentStream: bounded-window decode of spilled segments ----

SegmentStream::SegmentStream(const std::string& path, std::size_t windowBytes,
                             bool compressed, const nd::Coord& keySpace)
    : SegmentStream(
          std::unique_ptr<sci::Storage>(std::make_unique<sci::FileStorage>(
              path, sci::FileStorage::Mode::kOpenReadOnly)),
          windowBytes, compressed, keySpace) {}

SegmentStream::SegmentStream(std::unique_ptr<sci::Storage> storage,
                             std::size_t windowBytes, bool compressed,
                             const nd::Coord& keySpace)
    : storage_(std::move(storage)),
      windowBytes_(windowBytes),
      compressed_(compressed),
      keySpace_(keySpace) {
  init();
}

SegmentStream::~SegmentStream() = default;

void SegmentStream::init() {
  if (windowBytes_ == 0) {
    throw std::invalid_argument("SegmentStream: window must be non-zero");
  }
  fileSize_ = storage_->size();
  if (fileSize_ < Segment::kHeaderBytes) {
    throw std::out_of_range("SegmentStream: truncated");
  }
  std::array<std::byte, Segment::kHeaderBytes> hdr;
  storage_->readAt(0, hdr);
  header_ = Segment::peekHeader(hdr);
  fileOffset_ = Segment::kHeaderBytes;
  bytesRead_ = Segment::kHeaderBytes;
  // Same guard as deserialize: a corrupt count must not drive a huge
  // reserve downstream — every record costs at least the framing's
  // per-record floor on the wire.
  const std::uint64_t minRecord =
      compressed_ ? kMinCompressedRecordBytes : kMinRecordBytes;
  if (header_.numRecords > (fileSize_ - Segment::kHeaderBytes) / minRecord) {
    throw std::out_of_range("SegmentStream: record count exceeds input");
  }
  if (compressed_) {
    while (!tryDecodeKeySpace()) {
      if (fileOffset_ >= fileSize_) {
        throw std::out_of_range("SegmentStream: truncated");
      }
      refill();
    }
    hasLin_ = true;
  } else {
    hasLin_ = keySpace_.rank() > 0;
  }
  if (header_.numRecords == 0) {
    finishChecks();
    return;  // exhausted_ stays true
  }
  exhausted_ = false;
  decodeNext();
}

bool SegmentStream::tryDecodeKeySpace() {
  const std::byte* p = buf_.data() + bufPos_;
  const std::byte* end = buf_.data() + buf_.size();
  std::uint64_t rank = 0;
  if (!readVarint(p, end, rank)) return false;
  if (rank == 0 || rank > nd::kMaxRank) {
    throw std::runtime_error("SegmentStream: bad key rank");
  }
  nd::Coord space = nd::Coord::zeros(rank);
  std::uint64_t total = 1;
  constexpr auto kMaxIndex =
      static_cast<std::uint64_t>(std::numeric_limits<nd::Index>::max());
  for (std::size_t d = 0; d < rank; ++d) {
    std::uint64_t ext = 0;
    if (!readVarint(p, end, ext)) return false;
    if (ext == 0 || ext > kMaxIndex) {
      throw std::runtime_error("SegmentStream: bad key space extent");
    }
    if (total > kMaxIndex / ext) {
      throw std::runtime_error("SegmentStream: key space overflow");
    }
    total *= ext;
    space[d] = static_cast<nd::Index>(ext);
  }
  if (keySpace_.rank() != 0 && !(space == keySpace_)) {
    throw std::runtime_error("SegmentStream: key space mismatch");
  }
  fileKeySpace_ = std::move(space);
  spaceSize_ = total;
  bufPos_ = static_cast<std::size_t>(p - buf_.data());
  return true;
}

void SegmentStream::refill() {
  // Slide the consumed prefix out, then fetch up to one window of new
  // bytes. A single record larger than the window keeps accumulating
  // across calls (the buffer grows past windowBytes_ only then).
  if (bufPos_ > 0) {
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(bufPos_));
    bufPos_ = 0;
  }
  const std::uint64_t want =
      std::min<std::uint64_t>(windowBytes_, fileSize_ - fileOffset_);
  const std::size_t old = buf_.size();
  buf_.resize(old + static_cast<std::size_t>(want));
  storage_->readAt(fileOffset_, std::span<std::byte>(buf_.data() + old,
                                                     static_cast<std::size_t>(want)));
  fileOffset_ += want;
  bytesRead_ += want;
  peakWindow_ = std::max(peakWindow_, buf_.size());
}

void SegmentStream::decodeNext() {
  while (!(compressed_ ? tryDecodeCompressed() : tryDecodeUncompressed())) {
    if (fileOffset_ >= fileSize_) {
      throw std::out_of_range("SegmentStream: truncated");
    }
    refill();
  }
  ++decoded_;
  repSum_ += cur_.represents;
}

bool SegmentStream::tryDecodeUncompressed() {
  const std::byte* base = buf_.data();
  const std::byte* p = base + bufPos_;
  const std::byte* end = base + buf_.size();
  if (end - p < 8) return false;
  const std::uint64_t rank = loadU64(p);
  if (rank > nd::kMaxRank) {
    throw std::runtime_error("SegmentStream: bad key rank");
  }
  const std::size_t fixed = 8 + 8 * static_cast<std::size_t>(rank) + 16;
  if (static_cast<std::size_t>(end - p) < fixed) return false;
  p += 8;
  nd::Coord key = nd::Coord::zeros(rank);
  for (std::size_t d = 0; d < rank; ++d) {
    key[d] = static_cast<nd::Index>(loadU64(p));
    p += 8;
  }
  const std::uint64_t represents = loadU64(p);
  p += 8;
  const std::uint64_t kindWord = loadU64(p);
  p += 8;
  Value value;
  switch (kindWord) {
    case 0:
      if (end - p < 8) return false;
      value = Value::scalar(loadF64(p));
      p += 8;
      break;
    case 1: {
      if (end - p < 4 * 8) return false;
      Partial pa;
      pa.sum = loadF64(p);
      pa.min = loadF64(p + 8);
      pa.max = loadF64(p + 16);
      pa.count = static_cast<std::int64_t>(loadU64(p + 24));
      p += 4 * 8;
      value = Value::partial(pa);
      break;
    }
    case 2: {
      if (end - p < 8) return false;
      const std::uint64_t n = loadU64(p);
      // Bound against ALL remaining file bytes (buffered + unfetched):
      // a garbage length must throw, not refill forever.
      const std::uint64_t rest = static_cast<std::uint64_t>(end - p) - 8 +
                                 (fileSize_ - fileOffset_);
      if (n > rest / 8) {
        throw std::out_of_range("SegmentStream: list length exceeds input");
      }
      if (static_cast<std::uint64_t>(end - p) < 8 + 8 * n) return false;
      p += 8;
      std::vector<double> xs(n);
      if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(xs.data(), p, static_cast<std::size_t>(n) * 8);
      } else {
        for (std::uint64_t i = 0; i < n; ++i) xs[i] = loadF64(p + 8 * i);
      }
      p += 8 * n;
      value = Value::list(std::move(xs));
      break;
    }
    default:
      throw std::runtime_error("SegmentStream: bad value kind");
  }
  // Commit: nothing above mutated stream state, so a false return (from
  // any insufficient-bytes check) leaves the cursor untouched.
  bufPos_ = static_cast<std::size_t>(p - base);
  cur_.key = std::move(key);
  cur_.represents = represents;
  cur_.value = std::move(value);
  if (hasLin_) {
    curLin_ = checkedLinearize(cur_.key, keySpace_);
  }
  return true;
}

bool SegmentStream::tryDecodeCompressed() {
  const std::byte* base = buf_.data();
  const std::byte* p = base + bufPos_;
  const std::byte* end = base + buf_.size();
  std::uint64_t delta = 0;
  std::uint64_t represents = 0;
  if (!readVarint(p, end, delta)) return false;
  if (!readVarint(p, end, represents)) return false;
  if (p == end) return false;
  const auto kindByte = static_cast<std::uint8_t>(*p++);
  Value value;
  switch (kindByte) {
    case 0:
      if (end - p < 8) return false;
      value = Value::scalar(loadF64(p));
      p += 8;
      break;
    case 1: {
      if (end - p < 3 * 8) return false;
      Partial pa;
      pa.sum = loadF64(p);
      pa.min = loadF64(p + 8);
      pa.max = loadF64(p + 16);
      p += 3 * 8;
      std::uint64_t count = 0;
      if (!readVarint(p, end, count)) return false;
      pa.count = static_cast<std::int64_t>(count);
      value = Value::partial(pa);
      break;
    }
    case 2: {
      std::uint64_t n = 0;
      if (!readVarint(p, end, n)) return false;
      const std::uint64_t rest =
          static_cast<std::uint64_t>(end - p) + (fileSize_ - fileOffset_);
      if (n > rest / 8) {
        throw std::out_of_range("SegmentStream: list length exceeds input");
      }
      if (static_cast<std::uint64_t>(end - p) < 8 * n) return false;
      std::vector<double> xs(n);
      if constexpr (std::endian::native == std::endian::little) {
        std::memcpy(xs.data(), p, static_cast<std::size_t>(n) * 8);
      } else {
        for (std::uint64_t i = 0; i < n; ++i) xs[i] = loadF64(p + 8 * i);
      }
      p += 8 * n;
      value = Value::list(std::move(xs));
      break;
    }
    default:
      throw std::runtime_error("SegmentStream: bad value kind");
  }
  std::uint64_t lin;
  if (!havePrev_) {
    lin = delta;
  } else {
    if (delta > std::numeric_limits<std::uint64_t>::max() - prevLin_) {
      throw std::out_of_range("SegmentStream: lin outside key space");
    }
    lin = prevLin_ + delta;
  }
  if (lin >= spaceSize_) {
    throw std::out_of_range("SegmentStream: lin outside key space");
  }
  // Delinearize with the dense-run bump (sorted runs over row-major
  // emission make lin == prev + 1 the common case).
  const std::size_t lastD = fileKeySpace_.rank() - 1;
  if (havePrev_ && lin == prevLin_ + 1 &&
      prevKey_[lastD] + 1 < fileKeySpace_[lastD]) {
    ++prevKey_[lastD];
  } else if (!havePrev_ || lin != prevLin_) {
    prevKey_ = nd::delinearize(static_cast<nd::Index>(lin), fileKeySpace_);
  }
  bufPos_ = static_cast<std::size_t>(p - base);
  prevLin_ = lin;
  havePrev_ = true;
  cur_.key = prevKey_;
  cur_.represents = represents;
  cur_.value = std::move(value);
  curLin_ = lin;
  return true;
}

void SegmentStream::advance() {
  if (exhausted_) {
    throw std::logic_error("SegmentStream: advance past end");
  }
  if (decoded_ == header_.numRecords) {
    finishChecks();
    exhausted_ = true;
    cur_ = KeyValue{};
    return;
  }
  decodeNext();
}

KeyValue SegmentStream::take() {
  KeyValue kv = std::move(cur_);
  advance();
  return kv;
}

void SegmentStream::finishChecks() {
  // Unconsumed buffered bytes or unfetched file bytes after the last
  // record are both trailing garbage.
  if (bufPos_ < buf_.size() || fileOffset_ < fileSize_) {
    throw std::runtime_error("SegmentStream: trailing bytes");
  }
  if (repSum_ != header_.represents) {
    throw std::runtime_error("SegmentStream: annotation mismatch");
  }
}

SegmentMerger::SegmentMerger(std::span<const Segment* const> segments) {
  std::vector<Input> inputs(segments.size());
  for (std::size_t i = 0; i < segments.size(); ++i) {
    inputs[i].segment = segments[i];
  }
  init(inputs);
}

SegmentMerger::SegmentMerger(std::span<const Input> inputs) { init(inputs); }

void SegmentMerger::init(std::span<const Input> inputs) {
  // The u64 heap is only valid when EVERY participating input serves
  // linear keys: a mixed heap would compare a u64 against a Coord.
  for (const Input& in : inputs) {
    if (in.segment != nullptr) {
      if (!in.segment->empty() && !in.segment->hasLinearKeys()) {
        allLinear_ = false;
      }
    } else if (in.stream != nullptr) {
      if (!in.stream->exhausted() && !in.stream->hasLin()) {
        allLinear_ = false;
      }
    } else if (in.run != nullptr) {
      if (!in.run->empty() && in.runLin == nullptr) allLinear_ = false;
    }
  }
  // Cursor creation order == input order: the heap's evolution depends
  // only on key comparisons and this sequence, never on which KIND of
  // source carries the records — the bit-identical-output property the
  // out-of-core parity suite asserts.
  for (const Input& in : inputs) {
    Cursor c{};
    if (in.segment != nullptr && !in.segment->empty()) {
      c.segment = in.segment;
      if (in.segment->packed() && allLinear_) {
        // Iterate the packed form directly — merging never builds the
        // segment's KeyValue view.
        c.kind = Kind::kPacked;
        c.packed = in.segment->packedRecords().data();
        c.count = in.segment->packedRecords().size();
      } else {
        c.kind = Kind::kMaterialized;
        c.recs = in.segment->records().data();
        c.count = in.segment->records().size();
        c.lin = allLinear_ ? in.segment->linearKeys().data() : nullptr;
      }
    } else if (in.stream != nullptr && !in.stream->exhausted()) {
      c.kind = Kind::kStream;
      c.stream = in.stream;
    } else if (in.run != nullptr && !in.run->empty()) {
      c.kind = Kind::kRun;
      c.recs = in.run->data();
      c.count = in.run->size();
      c.lin = allLinear_ ? in.runLin : nullptr;
    } else {
      continue;  // empty or absent input
    }
    heap_.push_back(c);
  }
  // Build a binary min-heap on the cursors' current keys.
  for (std::size_t i = heap_.size(); i-- > 0;) siftDown(i);
}

std::uint64_t SegmentMerger::linAt(const Cursor& c) const {
  switch (c.kind) {
    case Kind::kPacked:
      return c.packed[c.pos].lin;
    case Kind::kStream:
      return c.stream->currentLin();
    case Kind::kRun:
    case Kind::kMaterialized:
      break;
  }
  return c.lin[c.pos];
}

const nd::Coord& SegmentMerger::keyAt(const Cursor& c) const {
  // Never sees kPacked: packed cursors exist only on the allLinear_
  // path, where every compare goes through linAt.
  if (c.kind == Kind::kStream) return c.stream->current().key;
  return c.recs[c.pos].key;
}

nd::Coord SegmentMerger::topKey() const {
  const Cursor& c = heap_.front();
  if (c.kind == Kind::kPacked) {
    return nd::delinearize(static_cast<nd::Index>(c.packed[c.pos].lin),
                           c.segment->keySpaceShape());
  }
  return keyAt(c);
}

std::uint64_t SegmentMerger::topLin() const { return linAt(heap_.front()); }

bool SegmentMerger::topKeyEquals(const nd::Coord& key,
                                 std::uint64_t keyLin) const {
  const Cursor& c = heap_.front();
  if (allLinear_) return linAt(c) == keyLin;
  return keyAt(c) == key;
}

const KeyValue& SegmentMerger::topRecord() const {
  return heap_.front().recs[heap_.front().pos];
}

void SegmentMerger::requireRunCursors() const {
  for (const Cursor& c : heap_) {
    if (c.kind != Kind::kRun && c.kind != Kind::kMaterialized) {
      throw std::logic_error(
          "SegmentMerger::forEachRecord: needs run or materialized inputs");
    }
  }
}

std::uint64_t SegmentMerger::takeTopValue() {
  Cursor& c = heap_.front();
  std::uint64_t represents = 0;
  switch (c.kind) {
    case Kind::kRun:
    case Kind::kMaterialized: {
      const KeyValue& kv = c.recs[c.pos];
      groupValues_.push_back(&kv.value);
      represents = kv.represents;
      break;
    }
    case Kind::kPacked: {
      const PackedRecord& r = c.packed[c.pos];
      represents = r.represents;
      switch (r.kind) {
        case ValueKind::kScalar:
          hold_.push_back(Value::scalar(r.payload.scalar));
          break;
        case ValueKind::kPartial:
          hold_.push_back(Value::partial(r.payload.partial));
          break;
        case ValueKind::kList:
          // Copy, not move: the segment stays intact (recovery may
          // republish it).
          hold_.push_back(
              Value::list(c.segment->packedListAt(r.payload.listIndex)));
          break;
      }
      groupValues_.push_back(&hold_.back());
      break;
    }
    case Kind::kStream: {
      represents = c.stream->current().represents;
      hold_.push_back(c.stream->takeValue());
      groupValues_.push_back(&hold_.back());
      break;
    }
  }
  pop();
  return represents;
}

bool SegmentMerger::cursorLess(const Cursor& a, const Cursor& b) const {
  if (allLinear_) return linAt(a) < linAt(b);
  return keyAt(a) < keyAt(b);
}

void SegmentMerger::siftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    std::size_t l = 2 * i + 1;
    std::size_t r = 2 * i + 2;
    if (l < n && cursorLess(heap_[l], heap_[smallest])) smallest = l;
    if (r < n && cursorLess(heap_[r], heap_[smallest])) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void SegmentMerger::pop() {
  Cursor& c = heap_.front();
  bool more;
  if (c.kind == Kind::kStream) {
    c.stream->advance();
    more = !c.stream->exhausted();
  } else {
    more = c.pos + 1 < c.count;
    if (more) ++c.pos;
  }
  if (!more) {
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (heap_.empty()) return;
  }
  siftDown(0);
}

}  // namespace sidr::mr
