// Map-output segments: one per (map task, keyblock) pair.
//
// A segment models one Hadoop map-output partition file. Its header
// carries the paper's count annotation (section 3.2.1, method 2): the
// number of original <k,v> input pairs represented by all <k',v'>
// records in the segment. A Reduce task can tally these headers without
// parsing record bodies and safely begin once the tally covers its whole
// key range — the mechanism SIDR uses to validate early-start
// correctness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mapreduce/kv.hpp"

namespace sidr::mr {

// ---- spilled map-output file naming and atomic attempt commit ----
//
// Spill mode follows Hadoop's task-commit discipline: an attempt writes
// its output under an attempt-scoped temporary name and only an atomic
// rename publishes it under the committed name. A concurrent reader
// that already opened the committed file keeps reading the old inode;
// a reader opening the path sees either the old or the new complete
// file — never a truncated in-place rewrite.

/// Committed map-output file name for (map, keyblock).
std::string segmentFileName(std::uint32_t mapTask, std::uint32_t keyblock);

/// Attempt-scoped temporary name a map attempt writes before commit.
std::string segmentAttemptFileName(std::uint32_t mapTask,
                                   std::uint32_t keyblock,
                                   std::uint32_t attempt);

/// Atomically publishes `dir/segmentAttemptFileName(...)` as
/// `dir/segmentFileName(...)` via std::filesystem::rename (which
/// replaces any previously committed file in one step).
void commitSegmentFile(const std::string& dir, std::uint32_t mapTask,
                       std::uint32_t keyblock, std::uint32_t attempt);

/// Best-effort removal of a failed attempt's temporary file; missing
/// files are ignored (the attempt may have died before writing it).
void discardSegmentAttemptFile(const std::string& dir, std::uint32_t mapTask,
                               std::uint32_t keyblock, std::uint32_t attempt);

struct SegmentHeader {
  std::uint32_t mapTask = 0;      ///< producing map task id
  std::uint32_t keyblock = 0;     ///< destination keyblock / reduce task
  std::uint64_t numRecords = 0;   ///< <k',v'> records in the segment
  std::uint64_t represents = 0;   ///< count annotation: original <k,v> pairs

  friend bool operator==(const SegmentHeader&, const SegmentHeader&) = default;
};

class Segment {
 public:
  Segment() = default;
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<KeyValue> records);

  const SegmentHeader& header() const noexcept { return header_; }
  const std::vector<KeyValue>& records() const noexcept { return records_; }
  std::vector<KeyValue>& mutableRecords() noexcept { return records_; }

  bool empty() const noexcept { return records_.empty(); }

  /// Sorts records by key (row-major lexicographic order). Map tasks sort
  /// their output before serving it to reducers, as Hadoop does.
  void sortByKey();

  /// Applies a combiner: merges runs of equal-key records into one,
  /// summing their count annotations (so the paper's section 3.2.1
  /// tally stays exact across combining). Precondition: isSorted().
  void combineWith(const class Combiner& combiner);

  /// True when records are sorted by key.
  bool isSorted() const;

  /// Encoded size of the fixed header prefix (4 little-endian u64
  /// words); peekHeader needs exactly this many bytes.
  static constexpr std::size_t kHeaderBytes = 32;

  /// Exact byte size of serialize()'s output, computed without
  /// encoding anything. serialize() allocates once from this.
  std::size_t serializedSize() const noexcept;

  /// Flat binary encoding (header + records), as written to the local
  /// map-output file a reducer fetches. Wire format: fixed-width
  /// little-endian u64 words (doubles as IEEE-754 bit patterns),
  /// written with bulk stores into a single exact-size allocation.
  std::vector<std::byte> serialize() const;

  /// serialize() into a caller-owned buffer, reusing its capacity —
  /// the map side encodes one segment per keyblock and can amortize
  /// one allocation across all of them.
  void serializeInto(std::vector<std::byte>& out) const;

  /// Decodes serialize()'s output. Every length field (record count,
  /// key rank, list length) is validated against the remaining byte
  /// count BEFORE any allocation, so corrupt or truncated input throws
  /// (std::out_of_range / std::runtime_error) instead of triggering a
  /// huge reserve. Trailing bytes after the last record are rejected.
  static Segment deserialize(std::span<const std::byte> bytes);

  /// Reads ONLY the header fields from an encoded segment — the cheap
  /// "partially understand the data without reading and parsing it"
  /// access the paper describes for the annotation tally.
  static SegmentHeader peekHeader(std::span<const std::byte> bytes);

 private:
  SegmentHeader header_;
  std::vector<KeyValue> records_;
};

/// k-way merge of sorted segments into one key-grouped stream:
/// for each distinct key (ascending), calls
///   fn(key, span<const Value*> values, totalRepresents).
/// This is the sort/merge/group step that precedes the Reduce function.
class SegmentMerger {
 public:
  explicit SegmentMerger(std::span<const Segment* const> segments);

  /// Grouped iteration; see class comment.
  template <typename Fn>
  void forEachGroup(Fn&& fn) {
    while (!heap_.empty()) {
      const nd::Coord key = top().key;
      groupValues_.clear();
      std::uint64_t represents = 0;
      while (!heap_.empty() && top().key == key) {
        groupValues_.push_back(&top().value);
        represents += top().represents;
        pop();
      }
      fn(key, std::span<const Value* const>(groupValues_), represents);
    }
  }

 private:
  struct Cursor {
    const Segment* segment;
    std::size_t pos;
  };

  const KeyValue& top() const {
    const Cursor& c = heap_.front();
    return c.segment->records()[c.pos];
  }

  void pop();
  void siftDown(std::size_t i);
  bool cursorLess(const Cursor& a, const Cursor& b) const;

  std::vector<Cursor> heap_;
  std::vector<const Value*> groupValues_;
};

}  // namespace sidr::mr
