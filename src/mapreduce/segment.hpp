// Map-output segments: one per (map task, keyblock) pair.
//
// A segment models one Hadoop map-output partition file. Its header
// carries the paper's count annotation (section 3.2.1, method 2): the
// number of original <k,v> input pairs represented by all <k',v'>
// records in the segment. A Reduce task can tally these headers without
// parsing record bodies and safely begin once the tally covers its whole
// key range — the mechanism SIDR uses to validate early-start
// correctness.
#pragma once

#include <atomic>
#include <cstddef>
#include <deque>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "mapreduce/kv.hpp"

namespace sidr::sci {
class Storage;
}  // namespace sidr::sci

namespace sidr::mr {

// ---- memory-budget accounting: the segment page pool ----

/// Job-wide ledger of resident intermediate-data bytes, accounted in
/// fixed-size pages against JobSpec::memoryBudgetBytes (DESIGN.md
/// section 14). The pool does not allocate memory itself: packed record
/// buffers and published segments keep their own storage, and charge /
/// release page-rounded footprints here so the engine can observe
/// pressure. All operations are lock-free (a single atomic counter plus
/// a CAS-maintained peak), so the map-side emit path can charge pages
/// without taking any engine lock.
///
/// Watermarks: pressure eviction starts when resident bytes exceed the
/// high-water mark (budget - budget/8) and stops once they drop to the
/// low-water mark (budget - budget/4). A budget of 0 means unlimited —
/// charges are still counted (for the peak statistic) but overHighWater
/// never fires.
class SegmentPagePool {
 public:
  /// Accounting granule. Budgets below one page are rejected by the
  /// Engine constructor: they could never admit a single charge.
  static constexpr std::uint64_t kPageBytes = 64 * 1024;

  explicit SegmentPagePool(std::uint64_t budgetBytes) noexcept
      : budget_(budgetBytes) {}

  /// Rounds `bytes` up to whole pages, adds them to the resident total,
  /// and returns the page-rounded amount (pass it back to release()).
  std::uint64_t charge(std::uint64_t bytes) noexcept {
    const std::uint64_t pages = pageRound(bytes);
    const std::uint64_t now =
        resident_.fetch_add(pages, std::memory_order_relaxed) + pages;
    std::uint64_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now, std::memory_order_relaxed)) {
    }
    return pages;
  }

  /// Returns a charge obtained from charge() (already page-rounded).
  void release(std::uint64_t chargedBytes) noexcept {
    resident_.fetch_sub(chargedBytes, std::memory_order_relaxed);
  }

  std::uint64_t residentBytes() const noexcept {
    return resident_.load(std::memory_order_relaxed);
  }
  std::uint64_t peakResidentBytes() const noexcept {
    return peak_.load(std::memory_order_relaxed);
  }
  std::uint64_t budgetBytes() const noexcept { return budget_; }
  bool unlimited() const noexcept { return budget_ == 0; }

  std::uint64_t highWaterBytes() const noexcept {
    return budget_ - budget_ / 8;
  }
  std::uint64_t lowWaterBytes() const noexcept { return budget_ - budget_ / 4; }

  /// True when a bounded pool is over its high-water mark (eviction
  /// should run until residentBytes() <= lowWaterBytes()).
  bool overHighWater() const noexcept {
    return budget_ > 0 && residentBytes() > highWaterBytes();
  }

  static std::uint64_t pageRound(std::uint64_t bytes) noexcept {
    return (bytes + kPageBytes - 1) / kPageBytes * kPageBytes;
  }

 private:
  std::uint64_t budget_;
  std::atomic<std::uint64_t> resident_{0};
  std::atomic<std::uint64_t> peak_{0};
};

// ---- spilled map-output file naming and atomic attempt commit ----
//
// Spill mode follows Hadoop's task-commit discipline: an attempt writes
// its output under an attempt-scoped temporary name and only an atomic
// rename publishes it under the committed name. A concurrent reader
// that already opened the committed file keeps reading the old inode;
// a reader opening the path sees either the old or the new complete
// file — never a truncated in-place rewrite.
//
// Every job owns a NAMESPACE under its spill directory: spill files
// live at `spillDirectory/job<J>/map<M>_kb<K>.seg`, never flat in the
// shared directory. Two jobs pointed at the same spillDirectory (the
// normal EngineService configuration) therefore cannot clobber each
// other's committed segments, and end-of-job cleanup can remove one
// job's artifacts without touching its neighbours'.

/// Per-job spill namespace directory name ("job<J>").
std::string jobSpillDirName(std::uint64_t jobId);

/// Committed map-output file name for (map, keyblock), relative to the
/// job's spill namespace directory.
std::string segmentFileName(std::uint32_t mapTask, std::uint32_t keyblock);

/// Committed map-output path for (job, map, keyblock), relative to the
/// shared spill directory: "job<J>/map<M>_kb<K>.seg".
std::string segmentFileName(std::uint64_t jobId, std::uint32_t mapTask,
                            std::uint32_t keyblock);

/// Attempt-scoped temporary name a map attempt writes before commit.
std::string segmentAttemptFileName(std::uint32_t mapTask,
                                   std::uint32_t keyblock,
                                   std::uint32_t attempt);

/// Atomically publishes `dir/segmentAttemptFileName(...)` as
/// `dir/segmentFileName(...)` via std::filesystem::rename (which
/// replaces any previously committed file in one step).
void commitSegmentFile(const std::string& dir, std::uint32_t mapTask,
                       std::uint32_t keyblock, std::uint32_t attempt);

/// Best-effort removal of a failed attempt's temporary file; missing
/// files are ignored (the attempt may have died before writing it).
void discardSegmentAttemptFile(const std::string& dir, std::uint32_t mapTask,
                               std::uint32_t keyblock, std::uint32_t attempt);

// ---- packed-sort instrumentation and the radix sort itself ----

/// Counters describing what Segment's key sort actually did. The sort
/// code increments whatever sink is installed on the calling thread
/// (ScopedSortStatsSink); with none installed the counts land in the
/// thread-local sortStats(), so tests that drive sorts directly read
/// them on the sorting thread. The engine installs a per-task sink for
/// the duration of each map attempt and folds it into the owning job's
/// JobResult::sortTotals — counters can never bleed between jobs that
/// share worker threads (the old thread_local baseline/delta fold
/// miscounted exactly there).
struct SortStats {
  std::uint64_t sortedSkips = 0;      ///< sorts skipped by the O(n) sorted check
  std::uint64_t comparisonSorts = 0;  ///< comparison-sorted segments (fallbacks)
  std::uint64_t radixSorts = 0;       ///< radix-sorted segments
  std::uint64_t radixPasses = 0;      ///< byte passes actually scattered
  std::uint64_t radixPassesSkipped = 0;  ///< passes skipped (constant key byte)

  void reset() { *this = SortStats{}; }

  /// Field-wise difference against an earlier snapshot of the same
  /// thread's counters — how workers compute their per-run delta.
  SortStats minus(const SortStats& earlier) const noexcept {
    return SortStats{sortedSkips - earlier.sortedSkips,
                     comparisonSorts - earlier.comparisonSorts,
                     radixSorts - earlier.radixSorts,
                     radixPasses - earlier.radixPasses,
                     radixPassesSkipped - earlier.radixPassesSkipped};
  }

  /// Field-wise accumulation (JobResult::sortTotals aggregation).
  void add(const SortStats& other) noexcept {
    sortedSkips += other.sortedSkips;
    comparisonSorts += other.comparisonSorts;
    radixSorts += other.radixSorts;
    radixPasses += other.radixPasses;
    radixPassesSkipped += other.radixPassesSkipped;
  }
};

/// This thread's fallback sort counters (used when no sink is
/// installed).
SortStats& sortStats() noexcept;

/// The counters the sort code on this thread currently increments: the
/// innermost installed ScopedSortStatsSink, or sortStats() when none.
SortStats& activeSortStats() noexcept;

/// Redirects this thread's sort counters into `sink` for the enclosing
/// scope (restoring the previous sink on exit). The engine wraps each
/// map attempt in one of these pointing at a task-local SortStats, so
/// the attempt's counts are attributed to the job that ran it, no
/// matter which jobs share the worker thread.
class ScopedSortStatsSink {
 public:
  explicit ScopedSortStatsSink(SortStats* sink) noexcept;
  ~ScopedSortStatsSink();
  ScopedSortStatsSink(const ScopedSortStatsSink&) = delete;
  ScopedSortStatsSink& operator=(const ScopedSortStatsSink&) = delete;

 private:
  SortStats* prev_;
};

/// Below this record count Segment::sortPacked keeps the comparison
/// sort: the radix pass's 256-bucket histograms and scratch buffers do
/// not amortize on tiny segments.
inline constexpr std::size_t kRadixSortMinRecords = 64;

/// Stable LSD radix sort of packed records by `lin`, ties keeping
/// buffer (emission) order — the exact permutation the stable
/// comparison sort produces. Byte-wise passes over a (u64 lin, u32
/// index) double buffer; all eight histograms are built in one scan and
/// passes whose key byte is constant across the whole segment are
/// skipped (common when a keyblock spans a narrow linear range). The
/// records themselves are permuted once at the end. Exposed as a free
/// function so the differential suite can drive it against a frozen
/// comparison oracle at ANY size; Segment::sortPacked routes through it
/// at or above kRadixSortMinRecords.
void radixSortPacked(std::vector<PackedRecord>& records);

struct SegmentHeader {
  std::uint32_t mapTask = 0;      ///< producing map task id
  std::uint32_t keyblock = 0;     ///< destination keyblock / reduce task
  std::uint64_t numRecords = 0;   ///< <k',v'> records in the segment
  std::uint64_t represents = 0;   ///< count annotation: original <k,v> pairs

  friend bool operator==(const SegmentHeader&, const SegmentHeader&) = default;
};

class Segment {
 public:
  Segment() = default;
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<KeyValue> records);

  /// Constructs a segment that carries the linearized-key cache: one
  /// row-major u64 per record (linearize(key, JobSpec::keySpace)),
  /// computed by the map pipeline at emit time. The cache is an
  /// in-memory acceleration only — it never reaches the wire format —
  /// and because linearization is an order-preserving injection, u64
  /// compares on it agree exactly with lexicographic Coord compares.
  /// Throws std::invalid_argument when sizes differ.
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<KeyValue> records,
          std::vector<std::uint64_t> linearKeys);

  /// Constructs a segment in PACKED form (DESIGN.md section 11): the
  /// records stay as trivially-copyable PackedRecords (keys linearized
  /// in `keySpace`, list payloads out-of-line in `lists`) until a
  /// consumer needs full KeyValues. Sorting and the annotation header
  /// work directly on the packed form; records()/linearKeys()/
  /// serialize() materialize the KeyValue view lazily, exactly once.
  /// This keeps the map side free of the dominant per-record cost
  /// (writing ~160-byte KeyValues); the cost moves to whoever actually
  /// needs the materialized view (spill encoding, the reduce-side
  /// merge). Throws std::invalid_argument when keySpace is not a valid
  /// non-empty shape.
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<PackedRecord> packed,
          std::vector<std::vector<double>> lists, nd::Coord keySpace);

  const SegmentHeader& header() const noexcept { return header_; }

  /// Record access; materializes a packed segment on first use. Lazy
  /// materialization is NOT internally synchronized: concurrent first
  /// access from multiple threads needs external ordering. The engine
  /// provides it — each segment is consumed by exactly one reduce task
  /// (its keyblock's), attempts are serialized, and publication/
  /// consumption are ordered by the engine mutex.
  const std::vector<KeyValue>& records() const {
    if (packedMode_) materializeNow();
    return records_;
  }

  /// Mutable record access drops the linear-key cache (the caller may
  /// reorder or rewrite keys, which would desynchronize it).
  std::vector<KeyValue>& mutableRecords() {
    if (packedMode_) materializeNow();
    linearKeys_.clear();
    return records_;
  }

  bool empty() const noexcept {
    return packedMode_ ? packed_.empty() : records_.empty();
  }

  /// True when the segment still holds the packed representation.
  bool packed() const noexcept { return packedMode_; }

  /// Packed-form record view (empty span when not packed). Does NOT
  /// materialize — this is how the merger iterates a packed segment
  /// without ever building its KeyValue vector (DESIGN.md section 14).
  std::span<const PackedRecord> packedRecords() const noexcept {
    return packedMode_ ? std::span<const PackedRecord>(packed_)
                       : std::span<const PackedRecord>();
  }

  /// Out-of-line list payload of a packed record (valid while packed).
  const std::vector<double>& packedListAt(std::uint32_t idx) const {
    return lists_[idx];
  }

  /// The keySpace a packed segment's linear keys were computed in
  /// (rank 0 for segments built from full KeyValues).
  const nd::Coord& keySpaceShape() const noexcept { return keySpace_; }

  /// Approximate heap footprint of the record data in its CURRENT
  /// representation — what a published in-memory segment costs against
  /// the page pool. Packed form counts the packed array plus list
  /// payloads; materialized form counts KeyValues, list payloads and
  /// the linear-key cache.
  std::uint64_t residentBytes() const noexcept;

  /// True when every record has a cached linear key (trivially true in
  /// packed form — the linear key IS the stored key).
  bool hasLinearKeys() const noexcept {
    return packedMode_ || linearKeys_.size() == records_.size();
  }

  /// Cached linear keys, parallel to records(); empty when not cached.
  /// Materializes a packed segment (see records() for the threading
  /// contract).
  std::span<const std::uint64_t> linearKeys() const {
    if (packedMode_) materializeNow();
    return {linearKeys_.data(), linearKeys_.size()};
  }

  /// (Re)builds the linear-key cache from the records — used after
  /// deserialize() so spilled segments merge on u64s too. Throws
  /// std::out_of_range when a key falls outside `keySpace` (possible
  /// with corrupt spill files: the codec validates structure, not
  /// coordinate ranges).
  void computeLinearKeys(const nd::Coord& keySpace);

  /// Sorts records by key (row-major lexicographic order), ties broken
  /// by emission order (stable, so the fallback and linearized paths
  /// produce identical segments). Map tasks sort their output before
  /// serving it to reducers, as Hadoop does. Packed segments radix-sort
  /// (see radixSortPacked) above kRadixSortMinRecords and comparison-
  /// sort (u64, u32 index) pairs below it; materialized segments with a
  /// linear-key cache comparison-sort the same pairs; non-linear keys
  /// fall back to a stable lexicographic sort. Already-sorted output
  /// (the common case: mappers emit in row-major order) is detected in
  /// O(n) on every path.
  void sortByKey();

  /// Applies a combiner: merges runs of equal-key records into one,
  /// summing their count annotations (so the paper's section 3.2.1
  /// tally stays exact across combining). Precondition: isSorted().
  void combineWith(const class Combiner& combiner);

  /// True when records are sorted by key.
  bool isSorted() const;

  /// Encoded size of the fixed header prefix (4 little-endian u64
  /// words); peekHeader needs exactly this many bytes.
  static constexpr std::size_t kHeaderBytes = 32;

  /// Exact byte size of serialize()'s output, computed without
  /// encoding anything. serialize() allocates once from this. Works on
  /// the packed form directly — sizing never materializes.
  std::size_t serializedSize() const;

  /// Flat binary encoding (header + records), as written to the local
  /// map-output file a reducer fetches. Wire format: fixed-width
  /// little-endian u64 words (doubles as IEEE-754 bit patterns),
  /// written with bulk stores into a single exact-size allocation.
  std::vector<std::byte> serialize() const;

  /// serialize() into a caller-owned buffer, reusing its capacity —
  /// the map side encodes one segment per keyblock and can amortize
  /// one allocation across all of them. A packed segment encodes
  /// straight from its packed form (delinearizing per record into the
  /// exact bytes the materialized encode would produce), so spilling or
  /// evicting one never builds its KeyValue view.
  void serializeInto(std::vector<std::byte>& out) const;

  /// Decodes serialize()'s output. Every length field (record count,
  /// key rank, list length) is validated against the remaining byte
  /// count BEFORE any allocation, so corrupt or truncated input throws
  /// (std::out_of_range / std::runtime_error) instead of triggering a
  /// huge reserve. Trailing bytes after the last record are rejected.
  static Segment deserialize(std::span<const std::byte> bytes);

  /// Reads ONLY the header fields from an encoded segment — the cheap
  /// "partially understand the data without reading and parsing it"
  /// access the paper describes for the annotation tally.
  static SegmentHeader peekHeader(std::span<const std::byte> bytes);

  // ---- compressed spill framing (JobSpec::compressSpill) ----
  //
  // Same 32-byte uncompressed header (peekHeader and the annotation
  // tally work unchanged), then a self-describing key space (varint
  // rank + extents) and one record per entry as
  //   varint(lin delta) varint(represents) kind-byte payload
  // where scalar/partial/list payloads keep their raw 8-byte words
  // (varint only the list length and partial count). Records are
  // sorted by linear key, so deltas are small and the stream drops the
  // dominant per-record cost: the 8-byte-per-coordinate key encoding.

  /// Exact encoded size of serializeCompressedInto's output.
  std::size_t serializedCompressedSize(const nd::Coord& keySpace) const;

  /// Compressed encoding into a caller-owned buffer. Encodes STRAIGHT
  /// from the packed form when present — eviction of a packed segment
  /// never materializes its KeyValue view — and from the materialized
  /// records otherwise (using the linear-key cache, or linearizing
  /// against `keySpace` when the cache is absent). Throws
  /// std::invalid_argument when keySpace is empty or (packed form)
  /// differs from the segment's own, std::out_of_range when a key falls
  /// outside it, and std::logic_error when records are not sorted by
  /// linear key (deltas must be non-negative).
  void serializeCompressedInto(std::vector<std::byte>& out,
                               const nd::Coord& keySpace) const;

  std::vector<std::byte> serializeCompressed(const nd::Coord& keySpace) const;

  /// Drains a SegmentStream (either framing) into a fully materialized
  /// segment — the non-windowed decode used where whole-segment access
  /// is still wanted. Validates exactly what deserialize() validates
  /// (the stream itself checks truncation, structure, trailing bytes
  /// and the annotation sum).
  static Segment fromStream(class SegmentStream& stream);

 private:
  void sortByLinearKey();
  void sortPacked();
  void materializeNow() const;

  SegmentHeader header_;
  // Lazy materialization: these are written once by materializeNow()
  // under const access (see records() for the threading contract).
  mutable std::vector<KeyValue> records_;
  /// Parallel to records_: row-major linear key per record, or empty
  /// when the producing job declared no keySpace (and after
  /// deserialize(), until computeLinearKeys() rebuilds it).
  mutable std::vector<std::uint64_t> linearKeys_;
  /// Packed form (packedMode_ only); cleared by materializeNow().
  mutable std::vector<PackedRecord> packed_;
  mutable std::vector<std::vector<double>> lists_;
  mutable bool packedMode_ = false;
  nd::Coord keySpace_;
};

/// Bounded-window streaming decoder over one encoded segment
/// (DESIGN.md section 14). Reads the file through a sliding buffer of
/// at most `windowBytes` (growing only for a single record larger than
/// the window), decoding one record at a time, so a reduce task's
/// resident cost per spilled input is the window — never the whole
/// decoded segment. Handles both framings: the fixed-width uncompressed
/// wire format and the varint/delta compressed one (compressed = true).
///
/// Validation matches Segment::deserialize: structural corruption
/// (bad kind byte, over-long varint, rank/extent garbage, a linear key
/// outside the key space) throws std::runtime_error /
/// std::out_of_range; truncation mid-record throws std::out_of_range;
/// after the last record, trailing bytes and a represents-sum mismatch
/// with the header annotation are rejected. Short reads from storage
/// propagate as the storage layer's own exceptions.
class SegmentStream {
 public:
  /// Opens `path` read-only. `keySpace` lets the uncompressed framing
  /// serve linear keys (currentLin); pass an empty Coord to skip that.
  /// For the compressed framing the embedded key space is
  /// authoritative; a non-empty `keySpace` must match it.
  SegmentStream(const std::string& path, std::size_t windowBytes,
                bool compressed, const nd::Coord& keySpace);

  /// Same, over caller-provided storage (tests stream MemoryStorage).
  SegmentStream(std::unique_ptr<sci::Storage> storage,
                std::size_t windowBytes, bool compressed,
                const nd::Coord& keySpace);

  ~SegmentStream();
  SegmentStream(const SegmentStream&) = delete;
  SegmentStream& operator=(const SegmentStream&) = delete;

  const SegmentHeader& header() const noexcept { return header_; }

  /// True once every record has been consumed (end-of-stream checks
  /// have run by then). A zero-record segment starts exhausted.
  bool exhausted() const noexcept { return exhausted_; }

  /// The record at the cursor; valid until advance()/take().
  const KeyValue& current() const noexcept { return cur_; }

  /// Row-major linear key of current(), when hasLin().
  std::uint64_t currentLin() const noexcept { return curLin_; }
  bool hasLin() const noexcept { return hasLin_; }

  /// Decodes the next record (or runs end-of-stream validation).
  void advance();

  /// Moves the current record out, then advances.
  KeyValue take();

  /// Moves just the current value out. The cursor MUST be advanced
  /// before the record is read again (the merger does exactly that).
  Value takeValue() { return std::move(cur_.value); }

  /// File bytes fetched so far (shuffle accounting).
  std::uint64_t bytesRead() const noexcept { return bytesRead_; }

  /// Largest number of encoded bytes ever resident in the window.
  std::size_t peakWindowBytes() const noexcept { return peakWindow_; }

 private:
  void init();
  bool tryDecodeKeySpace();
  void decodeNext();
  bool tryDecodeUncompressed();
  bool tryDecodeCompressed();
  void refill();
  void finishChecks();

  std::unique_ptr<sci::Storage> storage_;
  std::size_t windowBytes_;
  bool compressed_;
  /// Job key space for uncompressed lin computation (may be empty).
  nd::Coord keySpace_;
  /// Compressed framing's embedded key space and its element count
  /// (bounds every decoded linear key).
  nd::Coord fileKeySpace_;
  std::uint64_t spaceSize_ = 0;

  SegmentHeader header_;
  std::vector<std::byte> buf_;
  std::size_t bufPos_ = 0;        ///< consumed prefix within buf_
  std::uint64_t fileOffset_ = 0;  ///< next file byte to fetch
  std::uint64_t fileSize_ = 0;

  KeyValue cur_;
  std::uint64_t curLin_ = 0;
  bool hasLin_ = false;
  bool exhausted_ = true;
  std::uint64_t decoded_ = 0;  ///< records decoded so far
  std::uint64_t repSum_ = 0;   ///< running represents sum (tally check)
  std::uint64_t prevLin_ = 0;  ///< delta base / dense-run detection
  bool havePrev_ = false;
  nd::Coord prevKey_;  ///< dense-run coord cache (compressed decode)
  std::uint64_t bytesRead_ = 0;
  std::size_t peakWindow_ = 0;
};

/// k-way merge of sorted inputs into one key-grouped stream:
/// for each distinct key (ascending), calls
///   fn(key, span<const Value*> values, totalRepresents).
/// This is the sort/merge/group step that precedes the Reduce function.
///
/// Inputs may be in-memory segments (iterated in packed form without
/// materializing when possible), windowed SegmentStreams over spilled
/// files, or plain sorted KeyValue runs (collectAll's reduce outputs).
/// When every input serves linear keys, the heap orders cursors and
/// detects group boundaries by comparing u64s instead of lexicographic
/// Coords; since linearization is an order-preserving injection the pop
/// order is identical either way. The heap's comparison sequence
/// depends only on key order and input order, so a merge over the same
/// records produces the same output no matter which source kinds carry
/// them — the property the out-of-core parity suite pins down.
class SegmentMerger {
 public:
  /// One merge input: exactly one of segment / stream / run set.
  /// `runLin` optionally parallels `*run` with cached linear keys.
  struct Input {
    const Segment* segment = nullptr;
    SegmentStream* stream = nullptr;
    const std::vector<KeyValue>* run = nullptr;
    const std::uint64_t* runLin = nullptr;
  };

  explicit SegmentMerger(std::span<const Segment* const> segments);
  explicit SegmentMerger(std::span<const Input> inputs);

  /// True when every input serves linear keys (u64 compare path).
  bool allLinear() const noexcept { return allLinear_; }

  /// Grouped iteration; see class comment. Value pointers passed to
  /// `fn` are valid only during that call (packed/stream sources hold
  /// decoded values in a per-group buffer).
  template <typename Fn>
  void forEachGroup(Fn&& fn) {
    while (!heap_.empty()) {
      const nd::Coord key = topKey();
      const std::uint64_t keyLin = allLinear_ ? topLin() : 0;
      groupValues_.clear();
      hold_.clear();
      std::uint64_t represents = 0;
      while (!heap_.empty() && topKeyEquals(key, keyLin)) {
        represents += takeTopValue();
      }
      fn(key, std::span<const Value* const>(groupValues_), represents);
    }
  }

  /// Flat merged-record iteration: fn(const KeyValue&, lin) per record
  /// in merge order (lin meaningful only when allLinear()). Only valid
  /// for run-backed inputs (collectAll); throws std::logic_error
  /// otherwise.
  template <typename Fn>
  void forEachRecord(Fn&& fn) {
    requireRunCursors();
    while (!heap_.empty()) {
      fn(topRecord(), allLinear_ ? topLin() : 0);
      pop();
    }
  }

 private:
  enum class Kind : std::uint8_t { kRun, kMaterialized, kPacked, kStream };

  struct Cursor {
    Kind kind;
    /// kMaterialized / kPacked: owning segment (list payloads, key
    /// space for delinearization).
    const Segment* segment;
    SegmentStream* stream;      ///< kStream
    const KeyValue* recs;       ///< kRun / kMaterialized base pointer
    const PackedRecord* packed; ///< kPacked base pointer
    /// Cached linear keys parallel to recs (null on the Coord path).
    const std::uint64_t* lin;
    std::size_t pos;
    std::size_t count;
  };

  void init(std::span<const Input> inputs);

  /// Current linear key / key of a cursor. linAt is only meaningful on
  /// the allLinear_ path; keyAt never sees a kPacked cursor (packed
  /// inputs materialize when any input lacks linear keys).
  std::uint64_t linAt(const Cursor& c) const;
  const nd::Coord& keyAt(const Cursor& c) const;

  nd::Coord topKey() const;
  std::uint64_t topLin() const;
  bool topKeyEquals(const nd::Coord& key, std::uint64_t keyLin) const;
  const KeyValue& topRecord() const;
  /// Appends the top cursor's value to groupValues_ (holding a decoded
  /// copy in hold_ for packed/stream sources), returns its represents
  /// count, and advances past it.
  std::uint64_t takeTopValue();
  void requireRunCursors() const;

  void pop();
  void siftDown(std::size_t i);
  bool cursorLess(const Cursor& a, const Cursor& b) const;

  std::vector<Cursor> heap_;
  std::vector<const Value*> groupValues_;
  /// Per-group storage for values that have no stable in-memory home
  /// (packed list copies, stream-decoded records). A deque: growing it
  /// never moves elements already pointed to by groupValues_.
  std::deque<Value> hold_;
  bool allLinear_ = true;
};

}  // namespace sidr::mr
