// Map-output segments: one per (map task, keyblock) pair.
//
// A segment models one Hadoop map-output partition file. Its header
// carries the paper's count annotation (section 3.2.1, method 2): the
// number of original <k,v> input pairs represented by all <k',v'>
// records in the segment. A Reduce task can tally these headers without
// parsing record bodies and safely begin once the tally covers its whole
// key range — the mechanism SIDR uses to validate early-start
// correctness.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "mapreduce/kv.hpp"

namespace sidr::mr {

// ---- spilled map-output file naming and atomic attempt commit ----
//
// Spill mode follows Hadoop's task-commit discipline: an attempt writes
// its output under an attempt-scoped temporary name and only an atomic
// rename publishes it under the committed name. A concurrent reader
// that already opened the committed file keeps reading the old inode;
// a reader opening the path sees either the old or the new complete
// file — never a truncated in-place rewrite.

/// Committed map-output file name for (map, keyblock).
std::string segmentFileName(std::uint32_t mapTask, std::uint32_t keyblock);

/// Attempt-scoped temporary name a map attempt writes before commit.
std::string segmentAttemptFileName(std::uint32_t mapTask,
                                   std::uint32_t keyblock,
                                   std::uint32_t attempt);

/// Atomically publishes `dir/segmentAttemptFileName(...)` as
/// `dir/segmentFileName(...)` via std::filesystem::rename (which
/// replaces any previously committed file in one step).
void commitSegmentFile(const std::string& dir, std::uint32_t mapTask,
                       std::uint32_t keyblock, std::uint32_t attempt);

/// Best-effort removal of a failed attempt's temporary file; missing
/// files are ignored (the attempt may have died before writing it).
void discardSegmentAttemptFile(const std::string& dir, std::uint32_t mapTask,
                               std::uint32_t keyblock, std::uint32_t attempt);

// ---- packed-sort instrumentation and the radix sort itself ----

/// Counters describing what Segment's key sort actually did. The
/// differential sort suite and the sorted-skip regression test assert
/// on these; production code never reads them. Thread-local (each map
/// worker sorts its own segments), so tests must drive the sort on the
/// thread that reads the counters.
struct SortStats {
  std::uint64_t sortedSkips = 0;      ///< sorts skipped by the O(n) sorted check
  std::uint64_t comparisonSorts = 0;  ///< comparison-sorted segments (fallbacks)
  std::uint64_t radixSorts = 0;       ///< radix-sorted segments
  std::uint64_t radixPasses = 0;      ///< byte passes actually scattered
  std::uint64_t radixPassesSkipped = 0;  ///< passes skipped (constant key byte)

  void reset() { *this = SortStats{}; }

  /// Field-wise difference against an earlier snapshot of the same
  /// thread's counters — how workers compute their per-run delta.
  SortStats minus(const SortStats& earlier) const noexcept {
    return SortStats{sortedSkips - earlier.sortedSkips,
                     comparisonSorts - earlier.comparisonSorts,
                     radixSorts - earlier.radixSorts,
                     radixPasses - earlier.radixPasses,
                     radixPassesSkipped - earlier.radixPassesSkipped};
  }

  /// Field-wise accumulation (JobResult::sortTotals aggregation).
  void add(const SortStats& other) noexcept {
    sortedSkips += other.sortedSkips;
    comparisonSorts += other.comparisonSorts;
    radixSorts += other.radixSorts;
    radixPasses += other.radixPasses;
    radixPassesSkipped += other.radixPassesSkipped;
  }
};

/// This thread's sort counters.
SortStats& sortStats() noexcept;

/// Below this record count Segment::sortPacked keeps the comparison
/// sort: the radix pass's 256-bucket histograms and scratch buffers do
/// not amortize on tiny segments.
inline constexpr std::size_t kRadixSortMinRecords = 64;

/// Stable LSD radix sort of packed records by `lin`, ties keeping
/// buffer (emission) order — the exact permutation the stable
/// comparison sort produces. Byte-wise passes over a (u64 lin, u32
/// index) double buffer; all eight histograms are built in one scan and
/// passes whose key byte is constant across the whole segment are
/// skipped (common when a keyblock spans a narrow linear range). The
/// records themselves are permuted once at the end. Exposed as a free
/// function so the differential suite can drive it against a frozen
/// comparison oracle at ANY size; Segment::sortPacked routes through it
/// at or above kRadixSortMinRecords.
void radixSortPacked(std::vector<PackedRecord>& records);

struct SegmentHeader {
  std::uint32_t mapTask = 0;      ///< producing map task id
  std::uint32_t keyblock = 0;     ///< destination keyblock / reduce task
  std::uint64_t numRecords = 0;   ///< <k',v'> records in the segment
  std::uint64_t represents = 0;   ///< count annotation: original <k,v> pairs

  friend bool operator==(const SegmentHeader&, const SegmentHeader&) = default;
};

class Segment {
 public:
  Segment() = default;
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<KeyValue> records);

  /// Constructs a segment that carries the linearized-key cache: one
  /// row-major u64 per record (linearize(key, JobSpec::keySpace)),
  /// computed by the map pipeline at emit time. The cache is an
  /// in-memory acceleration only — it never reaches the wire format —
  /// and because linearization is an order-preserving injection, u64
  /// compares on it agree exactly with lexicographic Coord compares.
  /// Throws std::invalid_argument when sizes differ.
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<KeyValue> records,
          std::vector<std::uint64_t> linearKeys);

  /// Constructs a segment in PACKED form (DESIGN.md section 11): the
  /// records stay as trivially-copyable PackedRecords (keys linearized
  /// in `keySpace`, list payloads out-of-line in `lists`) until a
  /// consumer needs full KeyValues. Sorting and the annotation header
  /// work directly on the packed form; records()/linearKeys()/
  /// serialize() materialize the KeyValue view lazily, exactly once.
  /// This keeps the map side free of the dominant per-record cost
  /// (writing ~160-byte KeyValues); the cost moves to whoever actually
  /// needs the materialized view (spill encoding, the reduce-side
  /// merge). Throws std::invalid_argument when keySpace is not a valid
  /// non-empty shape.
  Segment(std::uint32_t mapTask, std::uint32_t keyblock,
          std::vector<PackedRecord> packed,
          std::vector<std::vector<double>> lists, nd::Coord keySpace);

  const SegmentHeader& header() const noexcept { return header_; }

  /// Record access; materializes a packed segment on first use. Lazy
  /// materialization is NOT internally synchronized: concurrent first
  /// access from multiple threads needs external ordering. The engine
  /// provides it — each segment is consumed by exactly one reduce task
  /// (its keyblock's), attempts are serialized, and publication/
  /// consumption are ordered by the engine mutex.
  const std::vector<KeyValue>& records() const {
    if (packedMode_) materializeNow();
    return records_;
  }

  /// Mutable record access drops the linear-key cache (the caller may
  /// reorder or rewrite keys, which would desynchronize it).
  std::vector<KeyValue>& mutableRecords() {
    if (packedMode_) materializeNow();
    linearKeys_.clear();
    return records_;
  }

  bool empty() const noexcept {
    return packedMode_ ? packed_.empty() : records_.empty();
  }

  /// True when the segment still holds the packed representation.
  bool packed() const noexcept { return packedMode_; }

  /// True when every record has a cached linear key (trivially true in
  /// packed form — the linear key IS the stored key).
  bool hasLinearKeys() const noexcept {
    return packedMode_ || linearKeys_.size() == records_.size();
  }

  /// Cached linear keys, parallel to records(); empty when not cached.
  /// Materializes a packed segment (see records() for the threading
  /// contract).
  std::span<const std::uint64_t> linearKeys() const {
    if (packedMode_) materializeNow();
    return {linearKeys_.data(), linearKeys_.size()};
  }

  /// (Re)builds the linear-key cache from the records — used after
  /// deserialize() so spilled segments merge on u64s too. Throws
  /// std::out_of_range when a key falls outside `keySpace` (possible
  /// with corrupt spill files: the codec validates structure, not
  /// coordinate ranges).
  void computeLinearKeys(const nd::Coord& keySpace);

  /// Sorts records by key (row-major lexicographic order), ties broken
  /// by emission order (stable, so the fallback and linearized paths
  /// produce identical segments). Map tasks sort their output before
  /// serving it to reducers, as Hadoop does. Packed segments radix-sort
  /// (see radixSortPacked) above kRadixSortMinRecords and comparison-
  /// sort (u64, u32 index) pairs below it; materialized segments with a
  /// linear-key cache comparison-sort the same pairs; non-linear keys
  /// fall back to a stable lexicographic sort. Already-sorted output
  /// (the common case: mappers emit in row-major order) is detected in
  /// O(n) on every path.
  void sortByKey();

  /// Applies a combiner: merges runs of equal-key records into one,
  /// summing their count annotations (so the paper's section 3.2.1
  /// tally stays exact across combining). Precondition: isSorted().
  void combineWith(const class Combiner& combiner);

  /// True when records are sorted by key.
  bool isSorted() const;

  /// Encoded size of the fixed header prefix (4 little-endian u64
  /// words); peekHeader needs exactly this many bytes.
  static constexpr std::size_t kHeaderBytes = 32;

  /// Exact byte size of serialize()'s output, computed without
  /// encoding anything. serialize() allocates once from this.
  /// Materializes a packed segment first (the wire format is the
  /// KeyValue encoding — packed form never travels).
  std::size_t serializedSize() const;

  /// Flat binary encoding (header + records), as written to the local
  /// map-output file a reducer fetches. Wire format: fixed-width
  /// little-endian u64 words (doubles as IEEE-754 bit patterns),
  /// written with bulk stores into a single exact-size allocation.
  std::vector<std::byte> serialize() const;

  /// serialize() into a caller-owned buffer, reusing its capacity —
  /// the map side encodes one segment per keyblock and can amortize
  /// one allocation across all of them.
  void serializeInto(std::vector<std::byte>& out) const;

  /// Decodes serialize()'s output. Every length field (record count,
  /// key rank, list length) is validated against the remaining byte
  /// count BEFORE any allocation, so corrupt or truncated input throws
  /// (std::out_of_range / std::runtime_error) instead of triggering a
  /// huge reserve. Trailing bytes after the last record are rejected.
  static Segment deserialize(std::span<const std::byte> bytes);

  /// Reads ONLY the header fields from an encoded segment — the cheap
  /// "partially understand the data without reading and parsing it"
  /// access the paper describes for the annotation tally.
  static SegmentHeader peekHeader(std::span<const std::byte> bytes);

 private:
  void sortByLinearKey();
  void sortPacked();
  void materializeNow() const;

  SegmentHeader header_;
  // Lazy materialization: these are written once by materializeNow()
  // under const access (see records() for the threading contract).
  mutable std::vector<KeyValue> records_;
  /// Parallel to records_: row-major linear key per record, or empty
  /// when the producing job declared no keySpace (and after
  /// deserialize(), until computeLinearKeys() rebuilds it).
  mutable std::vector<std::uint64_t> linearKeys_;
  /// Packed form (packedMode_ only); cleared by materializeNow().
  mutable std::vector<PackedRecord> packed_;
  mutable std::vector<std::vector<double>> lists_;
  mutable bool packedMode_ = false;
  nd::Coord keySpace_;
};

/// k-way merge of sorted segments into one key-grouped stream:
/// for each distinct key (ascending), calls
///   fn(key, span<const Value*> values, totalRepresents).
/// This is the sort/merge/group step that precedes the Reduce function.
/// When every non-empty input segment carries a linear-key cache, the
/// heap orders cursors and detects group boundaries by comparing u64s
/// instead of lexicographic Coords; since linearization is an
/// order-preserving injection the pop order is identical either way.
class SegmentMerger {
 public:
  explicit SegmentMerger(std::span<const Segment* const> segments);

  /// Grouped iteration; see class comment.
  template <typename Fn>
  void forEachGroup(Fn&& fn) {
    while (!heap_.empty()) {
      const nd::Coord key = top().key;
      const std::uint64_t keyLin =
          heap_.front().lin ? heap_.front().lin[heap_.front().pos] : 0;
      groupValues_.clear();
      std::uint64_t represents = 0;
      while (!heap_.empty() && topKeyEquals(key, keyLin)) {
        groupValues_.push_back(&top().value);
        represents += top().represents;
        pop();
      }
      fn(key, std::span<const Value* const>(groupValues_), represents);
    }
  }

 private:
  struct Cursor {
    const Segment* segment;
    std::size_t pos;
    /// Segment's cached linear keys; nullptr when any merged segment
    /// lacks the cache (then every compare falls back to Coord order).
    const std::uint64_t* lin;
  };

  const KeyValue& top() const {
    const Cursor& c = heap_.front();
    return c.segment->records()[c.pos];
  }

  bool topKeyEquals(const nd::Coord& key, std::uint64_t keyLin) const {
    const Cursor& c = heap_.front();
    if (c.lin != nullptr) return c.lin[c.pos] == keyLin;
    return c.segment->records()[c.pos].key == key;
  }

  void pop();
  void siftDown(std::size_t i);
  bool cursorLess(const Cursor& a, const Cursor& b) const;

  std::vector<Cursor> heap_;
  std::vector<const Value*> groupValues_;
};

}  // namespace sidr::mr
