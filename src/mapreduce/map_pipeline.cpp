#include "mapreduce/map_pipeline.hpp"

#include <stdexcept>
#include <string>
#include <utility>

#include "obs/trace.hpp"

namespace sidr::mr {

BufferingMapContext::BufferingMapContext(const Partitioner& partitioner,
                                         std::uint32_t numReducers,
                                         nd::Coord keySpace,
                                         SegmentPagePool* pool)
    : partitioner_(partitioner), keySpace_(std::move(keySpace)), pool_(pool) {
  if (linearized()) {
    packed_.resize(numReducers);
    lists_.resize(numReducers);
    emitSorted_.assign(numReducers, true);
    lastLin_.assign(numReducers, 0);
  } else {
    buffers_.resize(numReducers);
  }
}

BufferingMapContext::~BufferingMapContext() {
  if (pool_ != nullptr && charged_ != 0) pool_->release(charged_);
}

std::uint64_t BufferingMapContext::linearizeChecked(
    const nd::Coord& key) const {
  if (key.rank() != keySpace_.rank()) {
    throw std::logic_error(
        "BufferingMapContext: emitted key rank does not match keySpace");
  }
  // Bounds check and row-major accumulation fused into one pass — this
  // runs once per emitted record.
  std::uint64_t lin = 0;
  for (std::size_t d = 0; d < keySpace_.rank(); ++d) {
    if (key[d] < 0 || key[d] >= keySpace_[d]) {
      throw std::logic_error(
          "BufferingMapContext: emitted key outside declared keySpace");
    }
    lin = lin * static_cast<std::uint64_t>(keySpace_[d]) +
          static_cast<std::uint64_t>(key[d]);
  }
  return lin;
}

void BufferingMapContext::emit(const nd::Coord& key, Value value,
                               std::uint64_t represents) {
  if (pool_ != nullptr) {
    // Approximate footprint of this emission in its buffered form;
    // charged in whole pages once enough accumulates, so the pool's
    // atomic is touched once per ~kPageBytes, not once per record.
    pending_ += linearized() ? sizeof(PackedRecord) : sizeof(KeyValue);
    if (value.kind() == ValueKind::kList) {
      pending_ += sizeof(std::vector<double>) +
                  value.asList().size() * sizeof(double);
    }
    if (pending_ >= SegmentPagePool::kPageBytes) {
      charged_ += pool_->charge(pending_);
      pending_ = 0;
    }
  }
  if (!linearized()) {
    const auto numReducers = static_cast<std::uint32_t>(buffers_.size());
    std::uint32_t kb = partitioner_.partition(key, numReducers);
    if (kb >= buffers_.size()) {
      throw std::logic_error("Partitioner returned out-of-range keyblock");
    }
    buffers_[kb].push_back(KeyValue{key, std::move(value), represents});
    return;
  }
  const auto numReducers = static_cast<std::uint32_t>(packed_.size());
  const std::uint64_t lin = linearizeChecked(key);
  std::uint32_t kb;
  if (lin >= runBegin_ && lin < runEnd_) {
    // Inside the cached same-keyblock run: no virtual dispatch at all.
    kb = runKb_;
  } else {
    kb = partitioner_.partitionRun(key, lin, numReducers, runEnd_);
    if (kb >= packed_.size()) {
      throw std::logic_error("Partitioner returned out-of-range keyblock");
    }
    if (runEnd_ <= lin) {
      throw std::logic_error("Partitioner returned an empty partition run");
    }
    runBegin_ = lin;
    runKb_ = kb;
  }
  std::vector<PackedRecord>& buf = packed_[kb];
  if (buf.empty()) {
    if (reserveHint_ > 0) buf.reserve(reserveHint_);
  } else if (lin < lastLin_[kb]) {
    emitSorted_[kb] = false;
  }
  lastLin_[kb] = lin;
  PackedRecord r;
  r.lin = lin;
  r.represents = represents;
  r.kind = value.kind();
  switch (r.kind) {
    case ValueKind::kScalar:
      r.payload.scalar = value.asScalar();
      break;
    case ValueKind::kPartial:
      r.payload.partial = value.asPartial();
      break;
    case ValueKind::kList:
      // Out-of-line payload; u32 index cannot overflow in practice (each
      // list costs >=24 bytes of heap, so 2^32 of them exceed any node).
      r.payload.listIndex = static_cast<std::uint32_t>(lists_[kb].size());
      lists_[kb].push_back(std::move(value.mutableList()));
      break;
  }
  buf.push_back(r);
}

Segment BufferingMapContext::takeSegment(std::uint32_t mapTask,
                                         std::uint32_t kb,
                                         const Combiner* combiner) {
  Segment seg = linearized()
                    ? Segment(mapTask, kb, std::move(packed_[kb]),
                              std::move(lists_[kb]), keySpace_)
                    : Segment(mapTask, kb, std::move(buffers_[kb]));
  // A keyblock whose emissions were tracked as already nondecreasing
  // needs no sort at all — skipping the call also skips the O(n)
  // sorted rescan, and guarantees sorted combiner output is never
  // re-examined after the combine merge.
  if (!linearized() || !emitSorted_[kb]) seg.sortByKey();
  if (combiner != nullptr) seg.combineWith(*combiner);
  return seg;
}

std::vector<Segment> runMapPipeline(const InputSplit& split,
                                    std::uint32_t mapTask,
                                    const RecordReaderFactory& readerFactory,
                                    Mapper& mapper,
                                    const Partitioner& partitioner,
                                    std::uint32_t numReducers,
                                    const Combiner* combiner,
                                    const nd::Coord& keySpace,
                                    SegmentPagePool* pagePool) {
  BufferingMapContext ctx(partitioner, numReducers, keySpace, pagePool);
  if (numReducers > 0) {
    ctx.reserveHint(static_cast<std::size_t>(split.volume()) / numReducers);
  }
  // One batch's worth of key/value staging, reused across regions. 512
  // records keeps the working set (~37 KiB) inside L1/L2 while
  // amortizing the virtual nextBatch call over whole row runs.
  constexpr std::size_t kBatch = 512;
  std::vector<nd::Coord> keys(kBatch);
  std::vector<double> values(kBatch);
  // A split may carry several regions (byte-range splits decompose into
  // up to 2*rank+1 boxes); the mapper sees them as one record stream.
  for (const nd::Region& region : split.regions) {
    auto reader = readerFactory(region);
    while (true) {
      std::size_t n;
      {
        obs::SpanScope readSpan(obs::Phase::kRead, obs::TaskSide::kMap,
                                mapTask);
        n = reader->nextBatch({keys.data(), kBatch}, {values.data(), kBatch});
        readSpan.setRecords(n);
      }
      if (n == 0) break;
      obs::SpanScope mapSpan(obs::Phase::kMap, obs::TaskSide::kMap, mapTask);
      for (std::size_t i = 0; i < n; ++i) mapper.map(keys[i], values[i], ctx);
      mapSpan.setRecords(n);
    }
  }
  mapper.finish(ctx);
  std::vector<Segment> segs;
  segs.reserve(numReducers);
  for (std::uint32_t kb = 0; kb < numReducers; ++kb) {
    segs.push_back(ctx.takeSegment(mapTask, kb, combiner));
  }
  return segs;
}

}  // namespace sidr::mr
