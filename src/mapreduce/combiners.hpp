// Concrete map-side combiners.
//
// Hadoop combiners shrink intermediate data by pre-reducing equal-key
// records inside each map task. For structural queries, distributive
// operators combine into constant-size partials; list-valued operators
// can only concatenate (the paper's reason median floods the shuffle).
#pragma once

#include "mapreduce/interfaces.hpp"

namespace sidr::mr {

/// Merges Partial aggregates (scalars are promoted). Usable by every
/// distributive operator (mean/sum/min/max/count/range).
class PartialMergeCombiner final : public Combiner {
 public:
  Value combine(const Value& a, const Value& b) const override {
    Partial merged = toPartial(a);
    merged.merge(toPartial(b));
    return Value::partial(merged);
  }

 private:
  static Partial toPartial(const Value& v) {
    return v.kind() == ValueKind::kScalar ? Partial::ofValue(v.asScalar())
                                          : v.asPartial();
  }
};

/// Concatenates value lists — the only legal combine for holistic and
/// list-valued operators (median, sort, filter).
class ListConcatCombiner final : public Combiner {
 public:
  Value combine(const Value& a, const Value& b) const override {
    std::vector<double> xs = a.asList();
    const auto& ys = b.asList();
    xs.insert(xs.end(), ys.begin(), ys.end());
    return Value::list(std::move(xs));
  }
};

}  // namespace sidr::mr
