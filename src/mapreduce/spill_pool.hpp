// Shared pool of threads that encode and write map attempts' per-
// keyblock spill files, so keyblocks overlap instead of running
// sequentially on the map worker (DESIGN.md section 12). Only the
// attempt-suffixed TEMPORARY files are written here: the submitting
// map worker waits for its whole batch, and only then commits each
// keyblock with the atomic rename itself — so the per-(map, keyblock)
// publication order the lock-free reduce fetch relies on, and the
// crash/recovery guarantees, are exactly the sequential path's.
//
// The pool is job-agnostic: batches from different jobs interleave
// freely on the same workers (EngineService owns ONE pool for all
// in-flight jobs; the one-shot Engine owns one per run). Per-job
// isolation is the submitter's problem — every job closure installs
// its own trace recorder and writes only into its own spill namespace.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sidr::mr {

class SpillWriterPool {
 public:
  /// One work item: encode one segment into the worker's reusable
  /// buffer and write one attempt file.
  using Job = std::function<void(std::vector<std::byte>& encodeBuf)>;

  /// Completion handle for one map attempt's group of writes.
  class Batch {
   public:
    /// Blocks until every job submitted against this batch finished;
    /// rethrows the first encode/write failure. Must be called before
    /// the batch (or anything its jobs reference) is destroyed.
    void wait() {
      std::unique_lock lock(mtx_);
      cv_.wait(lock, [this] { return pending_ == 0; });
      if (error_) std::rethrow_exception(error_);
    }

   private:
    friend class SpillWriterPool;
    std::mutex mtx_;
    std::condition_variable cv_;
    std::size_t pending_ = 0;
    std::exception_ptr error_;
  };

  explicit SpillWriterPool(std::uint32_t numThreads) {
    workers_.reserve(numThreads);
    for (std::uint32_t i = 0; i < numThreads; ++i) {
      workers_.emplace_back([this] { workerLoop(); });
    }
  }

  /// Drains any queued jobs, then joins the workers (jthread dtors).
  ~SpillWriterPool() {
    {
      std::scoped_lock lock(mtx_);
      stop_ = true;
    }
    cv_.notify_all();
  }

  void submit(Batch& batch, Job job) {
    {
      std::scoped_lock lock(batch.mtx_);
      ++batch.pending_;
    }
    {
      std::scoped_lock lock(mtx_);
      queue_.push_back(Item{&batch, std::move(job)});
    }
    cv_.notify_one();
  }

 private:
  struct Item {
    Batch* batch;
    Job job;
  };

  void workerLoop() {
    // One encode buffer per worker, reused across jobs — the same
    // allocation amortization the sequential path got from its single
    // spillBuf.
    std::vector<std::byte> encodeBuf;
    std::unique_lock lock(mtx_);
    while (true) {
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and everything drained
      Item item = std::move(queue_.front());
      queue_.pop_front();
      lock.unlock();
      std::exception_ptr error;
      try {
        item.job(encodeBuf);
      } catch (...) {
        error = std::current_exception();
      }
      {
        std::scoped_lock batchLock(item.batch->mtx_);
        if (error && !item.batch->error_) item.batch->error_ = error;
        --item.batch->pending_;
        // Notify under the batch mutex: the submitter destroys the
        // stack-allocated Batch right after wait() returns, so the
        // last touch of the cv must happen-before the waiter can
        // observe pending_ == 0.
        item.batch->cv_.notify_all();
      }
      lock.lock();
    }
  }

  std::mutex mtx_;
  std::condition_variable cv_;
  std::deque<Item> queue_;
  bool stop_ = false;
  std::vector<std::jthread> workers_;
};

}  // namespace sidr::mr
