#include "mapreduce/engine_service.hpp"

#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "mapreduce/job_context.hpp"
#include "mapreduce/segment_cache.hpp"
#include "mapreduce/spill_pool.hpp"

namespace sidr::mr {

const char* schedulingPolicyName(SchedulingPolicy policy) noexcept {
  switch (policy) {
    case SchedulingPolicy::kFifo:
      return "fifo";
    case SchedulingPolicy::kWeightedFair:
      return "weighted-fair";
    case SchedulingPolicy::kReduceFirst:
      return "reduce-first";
  }
  return "unknown";
}

const char* jobStateName(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace detail {

/// One submitted job's service-side record. Shared between the service
/// (queues, workers) and every JobHandle; holds the ServiceState alive
/// so handles outlive the service safely.
struct ServiceJob {
  std::uint64_t id = 0;
  std::uint64_t seq = 0;  ///< submission order (FIFO / tie-break key)
  double weight = 1.0;
  JobState state = JobState::kQueued;
  JobSpec spec;  ///< held until admission, then moved into ctx
  std::unique_ptr<JobContext> ctx;  ///< non-null from admission to finalize
  JobResult result;                 ///< stored at finalize (every outcome)
  std::exception_ptr error;         ///< non-null iff kFailed
  std::vector<bool> completedKeyblocks;  ///< stored at finalize
  std::uint64_t admissionCharge = 0;  ///< bytes reserved on the ledger
  std::uint64_t tasksServiced = 0;    ///< weighted-fair accounting
  bool finalizing = false;  ///< one worker owns the finalize transition
  std::shared_ptr<ServiceState> svc;
};

/// All mutable service state, shared by workers and handles. Guarded by
/// `mtx` except where noted; `cv` signals submission, task completion,
/// admission and finalization.
struct ServiceState {
  ServiceConfig config;
  std::mutex mtx;
  std::condition_variable cv;
  std::deque<std::shared_ptr<ServiceJob>> queued;
  std::vector<std::shared_ptr<ServiceJob>> admitted;  // admission order
  /// The ONE spill-writer pool shared by every spilling job (null when
  /// spillWriters == 1: encode+write runs inline on workers).
  std::unique_ptr<SpillWriterPool> spillPool;
  std::uint64_t admittedBytes = 0;  ///< ledger: reserved admission bytes
  /// Warm map-output cache (DESIGN.md §16); null unless
  /// ServiceConfig::segmentCacheEnabled. Accessed ONLY under `mtx` —
  /// the cache itself is externally synchronized.
  std::unique_ptr<SegmentCache> cache;
  std::uint64_t nextJobId = 1;
  std::uint64_t nextSeq = 0;
  bool stopping = false;
  ServiceStats stats;
};

}  // namespace detail

namespace {

using detail::ServiceJob;
using detail::ServiceState;

bool isTerminal(JobState state) noexcept {
  return state == JobState::kSucceeded || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

/// Whether a job may interact with the segment cache at all, as donor
/// or claimant. Requires a planner-computed MapFingerprint (the caller
/// asserted input identity) and an EMPTY FaultPlan: fault injection
/// triggers retries and recovery republication, and keeping faulted
/// jobs out of the cache entirely makes "recovery never republishes
/// over a cache-served slot" true by construction — a cache-served job
/// has no faults, so no recovery path ever runs in it.
bool cacheEligible(const JobSpec& spec) noexcept {
  return spec.mapFingerprint.has_value() && spec.faultPlan.empty() &&
         !spec.splits.empty();
}

/// Admits queued jobs in FIFO order while slots and ledger allow.
/// Head-of-line blocking is deliberate: a large job at the front waits
/// for reservations to free rather than being starved by smaller jobs
/// slipping past it forever. Caller holds s.mtx.
void admitLocked(ServiceState& s) {
  while (!s.queued.empty()) {
    if (s.config.maxConcurrentJobs > 0 &&
        s.admitted.size() >= s.config.maxConcurrentJobs) {
      return;
    }
    std::shared_ptr<ServiceJob>& head = s.queued.front();
    const std::uint64_t cost =
        s.config.memoryBudgetBytes > 0 ? head->spec.memoryBudgetBytes : 0;
    if (cost > 0 && s.cache != nullptr) {
      // Admission pressure sheds the cache FIRST: jobs always win the
      // ledger over cache residency. LRU-by-fingerprint; spill-backed
      // entries demote to their committed files instead of dropping.
      const std::uint64_t need = s.admittedBytes + cost;
      if (need + s.cache->residentBytes() > s.config.memoryBudgetBytes) {
        s.cache->shedTo(s.config.memoryBudgetBytes > need
                            ? s.config.memoryBudgetBytes - need
                            : 0);
      }
    }
    if (cost > 0 && !s.admitted.empty() &&
        s.admittedBytes + cost > s.config.memoryBudgetBytes) {
      return;  // wait for a running job's reservation to free
    }
    std::shared_ptr<ServiceJob> job = std::move(head);
    s.queued.pop_front();
    job->admissionCharge = cost;
    s.admittedBytes += cost;
    s.stats.peakAdmittedBytes =
        std::max(s.stats.peakAdmittedBytes, s.admittedBytes);
    job->ctx =
        std::make_unique<JobContext>(std::move(job->spec), s.spillPool.get());
    if (s.cache != nullptr && cacheEligible(job->ctx->jobSpec())) {
      // Claim-or-donate, decided at admission under s.mtx (the claim's
      // file reloads run I/O under the lock, like start()'s namespace
      // creation below — admission is rare and a hit deletes a whole
      // map phase). A miss marks the job a donor; its committed output
      // is inserted at finalize ONLY on success.
      const JobSpec& jspec = job->ctx->jobSpec();
      if (std::optional<SegmentCache::Claimed> warm = s.cache->claim(
              *jspec.mapFingerprint,
              static_cast<std::uint32_t>(jspec.splits.size()),
              jspec.numReducers)) {
        job->ctx->attachCachedSegments(std::move(warm->segments));
      } else {
        job->ctx->enableCacheDonation();
      }
    }
    try {
      job->ctx->start();
      job->state = JobState::kRunning;
      s.admitted.push_back(job);
      s.stats.peakConcurrentJobs =
          std::max(s.stats.peakConcurrentJobs,
                   static_cast<std::uint32_t>(s.admitted.size()));
    } catch (...) {
      // start() can fail on filesystem errors (spill namespace
      // creation); surface it as the job's terminal error instead of
      // killing the worker thread.
      job->ctx.reset();
      job->error = std::current_exception();
      job->state = JobState::kFailed;
      s.admittedBytes -= job->admissionCharge;
      ++s.stats.failed;
    }
    s.cv.notify_all();
  }
}

/// Finalizes every quiescent-terminal admitted job (dropping the lock
/// for each finalize, which does filesystem work and trace collection).
/// Caller holds `lock`; it is held again on return.
void finalizeReadyLocked(ServiceState& s, std::unique_lock<std::mutex>& lock) {
  while (true) {
    std::shared_ptr<ServiceJob> job;
    for (const std::shared_ptr<ServiceJob>& j : s.admitted) {
      if (!j->finalizing && j->ctx->quiescentTerminal()) {
        job = j;
        break;
      }
    }
    if (job == nullptr) return;
    job->finalizing = true;
    lock.unlock();
    JobOutcome outcome = job->ctx->finalize();
    lock.lock();
    job->result = std::move(outcome.result);
    job->error = outcome.error;
    job->completedKeyblocks = std::move(outcome.completedKeyblocks);
    if (outcome.error != nullptr) {
      job->state = JobState::kFailed;
      ++s.stats.failed;
    } else if (outcome.cancelled) {
      job->state = JobState::kCancelled;
      ++s.stats.cancelled;
    } else {
      job->state = JobState::kSucceeded;
      ++s.stats.succeeded;
    }
    s.admittedBytes -= job->admissionCharge;
    if (s.cache != nullptr && outcome.donation.present &&
        job->state == JobState::kSucceeded) {
      s.cache->insert(std::move(outcome.donation));
      // Keep cache residency inside the service ledger's slack.
      if (s.config.memoryBudgetBytes > 0 &&
          s.admittedBytes + s.cache->residentBytes() >
              s.config.memoryBudgetBytes) {
        s.cache->shedTo(s.config.memoryBudgetBytes -
                        std::min(s.admittedBytes,
                                 s.config.memoryBudgetBytes));
      }
    }
    std::erase(s.admitted, job);
    job->ctx.reset();
    s.cv.notify_all();
  }
}

struct Pick {
  std::shared_ptr<ServiceJob> job;
  ClaimedTask task;
};

/// Chooses one task from one admitted job under the configured policy.
/// Caller holds s.mtx (claims take each job's mutex underneath — the
/// service -> job lock order).
std::optional<Pick> pickTaskLocked(ServiceState& s) {
  switch (s.config.policy) {
    case SchedulingPolicy::kFifo:
      break;  // admitted order IS the policy order
    case SchedulingPolicy::kReduceFirst: {
      // Pass 1: any job offering a runnable reduce wins (SIDR's
      // reduce-first ordering across the whole job mix).
      for (const std::shared_ptr<ServiceJob>& j : s.admitted) {
        if (j->finalizing) continue;
        if (std::optional<ClaimedTask> t = j->ctx->tryClaimReduce()) {
          return Pick{j, *t};
        }
      }
      break;  // pass 2 below: any claimable task, FIFO order
    }
    case SchedulingPolicy::kWeightedFair: {
      std::vector<std::shared_ptr<ServiceJob>> order(s.admitted.begin(),
                                                     s.admitted.end());
      std::stable_sort(order.begin(), order.end(),
                       [](const std::shared_ptr<ServiceJob>& a,
                          const std::shared_ptr<ServiceJob>& b) {
                         const double fa =
                             static_cast<double>(a->tasksServiced) / a->weight;
                         const double fb =
                             static_cast<double>(b->tasksServiced) / b->weight;
                         if (fa != fb) return fa < fb;
                         return a->seq < b->seq;
                       });
      for (const std::shared_ptr<ServiceJob>& j : order) {
        if (j->finalizing) continue;
        if (std::optional<ClaimedTask> t = j->ctx->tryClaimTask()) {
          return Pick{j, *t};
        }
      }
      return std::nullopt;
    }
  }
  for (const std::shared_ptr<ServiceJob>& j : s.admitted) {
    if (j->finalizing) continue;
    if (std::optional<ClaimedTask> t = j->ctx->tryClaimTask()) {
      return Pick{j, *t};
    }
  }
  return std::nullopt;
}

void serviceWorkerLoop(const std::shared_ptr<ServiceState>& s) {
  std::unique_lock lock(s->mtx);
  while (true) {
    admitLocked(*s);
    finalizeReadyLocked(*s, lock);
    if (std::optional<Pick> pick = pickTaskLocked(*s)) {
      ++pick->job->tasksServiced;
      JobContext* ctx = pick->job->ctx.get();
      lock.unlock();
      ctx->runClaimedTask(pick->task);
      lock.lock();
      // A completed task may have unblocked reduces in its job, made
      // the job quiescent-terminal, or freed ledger slots — wake every
      // sleeping worker and waiter to re-evaluate.
      s->cv.notify_all();
      continue;
    }
    if (s->stopping && s->queued.empty() && s->admitted.empty()) return;
    s->cv.wait(lock);
  }
}

}  // namespace

std::uint64_t JobHandle::id() const { return job_->id; }

JobState JobHandle::status() const {
  std::scoped_lock lock(job_->svc->mtx);
  return job_->state;
}

bool JobHandle::done() const {
  std::scoped_lock lock(job_->svc->mtx);
  return isTerminal(job_->state);
}

const JobResult& JobHandle::wait() {
  std::unique_lock lock(job_->svc->mtx);
  job_->svc->cv.wait(lock, [this] { return isTerminal(job_->state); });
  if (job_->state == JobState::kFailed) std::rethrow_exception(job_->error);
  if (job_->state == JobState::kCancelled) throw JobCancelled(job_->id);
  return job_->result;
}

bool JobHandle::cancel() {
  ServiceState& s = *job_->svc;
  std::scoped_lock lock(s.mtx);
  if (job_->state == JobState::kQueued) {
    std::erase(s.queued, job_);
    job_->state = JobState::kCancelled;
    ++s.stats.cancelled;
    s.cv.notify_all();
    return true;
  }
  if (job_->state == JobState::kRunning && !job_->finalizing) {
    job_->ctx->requestCancel();
    s.cv.notify_all();
    return true;
  }
  return false;
}

std::vector<ReduceOutput> JobHandle::partialResults() const {
  std::unique_lock lock(job_->svc->mtx);
  if (job_->state == JobState::kQueued) return {};
  if (job_->state == JobState::kRunning) {
    if (job_->finalizing) {
      // The finalize transition is moving the result out of the
      // context; wait for it to land rather than reading a torn view.
      job_->svc->cv.wait(lock, [this] { return isTerminal(job_->state); });
    } else {
      return job_->ctx->partialOutputs();
    }
  }
  // Terminal: committed keyblocks live in the stored result; the mask
  // distinguishes them from default-constructed slots after a failure
  // or cancel.
  std::vector<ReduceOutput> done;
  for (std::size_t kb = 0; kb < job_->result.outputs.size(); ++kb) {
    if (kb < job_->completedKeyblocks.size() && job_->completedKeyblocks[kb]) {
      done.push_back(job_->result.outputs[kb]);
    }
  }
  return done;
}

EngineService::EngineService(ServiceConfig config) : config_(config) {
  if (config_.spillWriters == 0) {
    throw std::invalid_argument("EngineService: spillWriters must be > 0");
  }
  config_.numThreads = std::max(1u, config_.numThreads);
  state_ = std::make_shared<ServiceState>();
  state_->config = config_;
  if (config_.spillWriters > 1) {
    state_->spillPool = std::make_unique<SpillWriterPool>(config_.spillWriters);
  }
  if (config_.segmentCacheEnabled) {
    state_->cache = std::make_unique<SegmentCache>(config_.segmentCacheBytes);
  }
  workers_.reserve(config_.numThreads);
  for (std::uint32_t i = 0; i < config_.numThreads; ++i) {
    workers_.emplace_back([s = state_] { serviceWorkerLoop(s); });
  }
}

EngineService::~EngineService() {
  {
    std::scoped_lock lock(state_->mtx);
    state_->stopping = true;
  }
  state_->cv.notify_all();
  workers_.clear();  // joins: workers drain every queued and admitted job
  // Join the shared spill-writer pool too; handles outliving the
  // service must not keep idle pool threads alive.
  state_->spillPool.reset();
}

JobHandle EngineService::submit(JobSpec spec) {
  // Resolve the service-wide transport default before validation so an
  // invalid combination (file-served without eager spill) is rejected
  // at submit time, whichever side chose the transport.
  if (!spec.transport.has_value()) {
    spec.transport = config_.defaultTransport;
  }
  validateJobSpec(spec);
  auto job = std::make_shared<ServiceJob>();
  {
    std::scoped_lock lock(state_->mtx);
    if (state_->stopping) {
      throw std::runtime_error("EngineService: submit after shutdown");
    }
    job->id = state_->nextJobId++;
    job->seq = state_->nextSeq++;
    job->weight = spec.weight;
    spec.jobId = job->id;  // names the spill namespace job<id>/
    job->spec = std::move(spec);
    job->svc = state_;
    state_->queued.push_back(job);
    ++state_->stats.submitted;
  }
  state_->cv.notify_all();
  return JobHandle(std::move(job));
}

void EngineService::drain() {
  std::unique_lock lock(state_->mtx);
  state_->cv.wait(lock, [this] {
    return state_->queued.empty() && state_->admitted.empty();
  });
}

ServiceStats EngineService::stats() const {
  std::scoped_lock lock(state_->mtx);
  ServiceStats out = state_->stats;
  if (state_->cache != nullptr) {
    const SegmentCacheStats& cs = state_->cache->stats();
    out.cacheHits = cs.hits;
    out.cacheMisses = cs.misses;
    out.cacheBytesServed = cs.bytesServed;
    out.cacheEvictions = cs.evictions;
    out.cacheDemotions = cs.demotions;
    out.cacheInsertions = cs.insertions;
    out.cacheResidentBytes = cs.residentBytes;
  }
  return out;
}

}  // namespace sidr::mr
